// Custom hierarchy: define your own memory hierarchy, map allocator
// pools onto its layers explicitly (the paper's example: "a dedicated
// pool for 74-byte blocks onto the L1 64 KB scratchpad, a general pool
// and a dedicated pool for 1500-byte blocks in the 4 MB main memory"),
// and optionally interpose a simulated cache in front of the DRAM.
//
//	go run ./examples/custom_hierarchy
package main

import (
	"fmt"
	"log"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/workload"
)

func main() {
	// A three-level platform built from scratch (not a preset): a tiny
	// 16 KB tightly-coupled memory, 128 KB of on-chip SRAM, and SDRAM.
	hier, err := memhier.New(
		memhier.Layer{
			Name: "tcm", Capacity: 16 * 1024,
			ReadEnergy: 0.18, WriteEnergy: 0.21, ReadCycles: 1, WriteCycles: 1,
		},
		memhier.Layer{
			Name: "sram", Capacity: 128 * 1024,
			ReadEnergy: 0.9, WriteEnergy: 1.1, ReadCycles: 3, WriteCycles: 4,
		},
		memhier.Layer{
			Name:       "sdram", // unbounded
			ReadEnergy: 7.2, WriteEnergy: 7.9, ReadCycles: 14, WriteCycles: 16,
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's canonical mapping, adapted to this platform: 74-byte
	// control blocks in the TCM, MTU frames in SRAM, everything else in
	// a general SDRAM pool.
	cfg := alloc.Config{
		Label: "mapped",
		Fixed: []alloc.FixedConfig{
			{
				SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: "tcm",
				Order: alloc.LIFO, Links: alloc.SingleLink,
				Growth: alloc.GrowFixedChunk, ChunkSlots: 64, MaxBytes: 12 * 1024,
			},
			{
				SlotBytes: 1500, MatchLo: 1300, MatchHi: 1500, Layer: "sram",
				Order: alloc.LIFO, Links: alloc.SingleLink,
				Growth: alloc.GrowFixedChunk, ChunkSlots: 16, MaxBytes: 100 * 1024,
			},
		},
		General: alloc.GeneralConfig{
			Layer: "sdram", Classes: "linear:64:2048", RoundToClass: true,
			Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
			Split: alloc.SplitNever, Coalesce: alloc.CoalesceNever,
			Headers: alloc.HeaderMinimal, Growth: alloc.GrowFixedChunk,
			ChunkBytes: 16 * 1024,
		},
	}

	params := workload.DefaultEasyportParams()
	params.Packets = 6000
	tr, err := params.Generate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hierarchy: %s\n", hier)
	fmt.Printf("workload:  %s\n\n", tr.Name)

	for _, withCache := range []bool{false, true} {
		opts := profile.Options{}
		tag := "no cache"
		if withCache {
			// 16 KB, 8-word lines, 4-way in front of the SDRAM.
			opts.Caches = map[string]profile.CacheSpec{
				"sdram": {SizeWords: 2048, LineWords: 8, Ways: 4},
			}
			tag = "16KB cache on sdram"
		}
		m, err := profile.Run(tr, cfg, hier, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s]\n", tag)
		for _, lm := range m.PerLayer {
			fmt.Printf("  %-8s %10d accesses, peak %7d bytes\n",
				lm.Name, lm.Accesses(), lm.PeakBytes)
		}
		fmt.Printf("  energy %.1f uJ, time %d cycles\n\n", m.EnergyNJ/1000, m.Cycles)
	}
}
