// Quickstart: profile two dynamic-memory allocator configurations against
// the same workload and compare the paper's four metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/workload"
)

func main() {
	// 1. A platform: 64 KB scratchpad + 4 MB SDRAM.
	hier := memhier.EmbeddedSoC()

	// 2. A workload: a synthetic allocation mix (deterministic by seed).
	params := workload.DefaultSyntheticParams()
	params.Ops = 10000
	tr, err := params.Generate()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Two configurations: a Lea-style general-purpose heap, and a
	// custom allocator with a dedicated 74-byte pool on the scratchpad.
	baseline := alloc.LeaConfig(memhier.LayerDRAM)
	custom := alloc.Config{
		Label: "custom-d74@scratchpad",
		Fixed: []alloc.FixedConfig{{
			SlotBytes: 74, MatchLo: 74, MatchHi: 74,
			Layer: memhier.LayerScratchpad,
			Order: alloc.LIFO, Links: alloc.SingleLink,
			Growth: alloc.GrowFixedChunk, ChunkSlots: 128,
			MaxBytes: 32 * 1024,
		}},
		General: alloc.GeneralConfig{
			Layer:   memhier.LayerDRAM,
			Classes: "pow2:16:65536", RoundToClass: true,
			Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
			Split: alloc.SplitNever, Coalesce: alloc.CoalesceNever,
			Headers: alloc.HeaderMinimal, Growth: alloc.GrowFixedChunk,
			ChunkBytes: 8 * 1024,
		},
	}

	fmt.Printf("workload: %s (%d events)\n", tr.Name, tr.Len())
	fmt.Printf("%-24s %12s %12s %12s %12s\n",
		"configuration", "accesses", "footprint", "energy(uJ)", "cycles")
	for _, cfg := range []alloc.Config{baseline, custom} {
		m, err := profile.Run(tr, cfg, hier, profile.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %12d %12d %12.1f %12d\n",
			cfg.Label, m.Accesses, m.FootprintBytes, m.EnergyNJ/1000, m.Cycles)
	}
}
