// Easyport case study: the paper's first experiment end-to-end — explore
// the allocator configuration space for a wireless-network packet
// workload, extract the Pareto front over (memory accesses, memory
// footprint), and report the ranges and the trade-offs within the front.
//
//	go run ./examples/easyport [-scale 25]
package main

import (
	"flag"
	"fmt"
	"log"

	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/workload"
)

func main() {
	scale := flag.Int("scale", 25, "workload scale in percent of the full trace")
	flag.Parse()

	params := workload.DefaultEasyportParams()
	params.Packets = params.Packets * *scale / 100
	tr, err := params.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Easyport workload: %d packets, %d trace events\n", params.Packets, tr.Len())

	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr}
	space := core.EasyportSpace()
	fmt.Printf("exploring %d configurations...\n", space.Size())
	results, err := runner.Explore(space)
	if err != nil {
		log.Fatal(err)
	}

	feasible := core.Feasible(results)
	objectives := []string{profile.ObjAccesses, profile.ObjFootprint}
	front, _, err := core.ParetoSet(feasible, objectives)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d feasible configurations\n", len(feasible))
	for _, obj := range objectives {
		r, err := core.Range(feasible, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s spread across the sweep: factor %.1f\n", obj, r.Factor)
	}

	fmt.Printf("\nPareto front: %d configurations\n", len(front))
	for _, obj := range []string{profile.ObjAccesses, profile.ObjFootprint, profile.ObjEnergy, profile.ObjCycles} {
		f, err := core.ParetoImprovement(front, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s: up to %.1f%% reduction by choosing along the front\n",
			obj, core.ReductionPercent(f))
	}

	fmt.Println("\nthe front, cheapest-accesses first:")
	for _, r := range front {
		fmt.Printf("  accesses=%-9d footprint=%-8d  %v\n",
			r.Metrics.Accesses, r.Metrics.FootprintBytes, r.Labels)
	}
}
