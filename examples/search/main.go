// Search strategies: approximate the Pareto front of a large
// configuration space with a fraction of the simulations an exhaustive
// sweep needs, and compare the approximation against the true front.
//
//	go run ./examples/search
package main

import (
	"fmt"
	"log"

	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/pareto"
	"dmexplore/internal/profile"
	"dmexplore/internal/workload"
)

func main() {
	params := workload.DefaultEasyportParams()
	params.Packets = 4000
	tr, err := params.Generate()
	if err != nil {
		log.Fatal(err)
	}
	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr}
	space := core.EasyportSpace()
	objectives := []string{profile.ObjAccesses, profile.ObjFootprint}

	// Ground truth: the exhaustive sweep.
	all, err := runner.Explore(space)
	if err != nil {
		log.Fatal(err)
	}
	trueFront, truePoints, err := core.ParetoSet(core.Feasible(all), objectives)
	if err != nil {
		log.Fatal(err)
	}
	ref := hvRef(truePoints)
	trueHV := pareto.Hypervolume2D(truePoints, ref)
	fmt.Printf("exhaustive: %4d simulations, front %2d, hypervolume 100.0%%\n",
		space.Size(), len(trueFront))

	// Screen-and-refine at a quarter of the budget.
	budget := space.Size() / 4
	screened, err := runner.ScreenAndRefine(space, objectives, budget/4, budget, 7)
	if err != nil {
		log.Fatal(err)
	}
	reportApprox("screen+refine", screened, objectives, ref, trueHV)

	// Plain random sampling at the same budget, for contrast.
	sampled, err := runner.Sample(space, budget, 7)
	if err != nil {
		log.Fatal(err)
	}
	reportApprox("random sample", sampled, objectives, ref, trueHV)

	// Scalarized hill climbing: one balanced trade-off point.
	hc, err := runner.HillClimb(space, []core.Weighted{
		{Objective: profile.ObjAccesses, Weight: 1},
		{Objective: profile.ObjFootprint, Weight: 1},
	}, budget/2, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hill climb: %4d simulations, best %v (accesses=%d footprint=%d)\n",
		len(hc.Evaluated), hc.Best.Labels,
		hc.Best.Metrics.Accesses, hc.Best.Metrics.FootprintBytes)
}

func reportApprox(name string, results []core.Result, objectives []string, ref [2]float64, trueHV float64) {
	front, points, err := core.ParetoSet(core.Feasible(results), objectives)
	if err != nil {
		log.Fatal(err)
	}
	hv := pareto.Hypervolume2D(points, ref)
	fmt.Printf("%-13s: %4d simulations, front %2d, hypervolume %5.1f%%\n",
		name, len(results), len(front), 100*hv/trueHV)
}

// hvRef builds a reference point dominated by every observed point.
func hvRef(points []pareto.Point) [2]float64 {
	var ref [2]float64
	for _, p := range points {
		for d := 0; d < 2; d++ {
			if p.Values[d] > ref[d] {
				ref[d] = p.Values[d]
			}
		}
	}
	ref[0] *= 1.01
	ref[1] *= 1.01
	return ref
}
