// Multi-application SoC: interleave two applications (the Easyport packet
// engine and the MPEG-4 VTC decoder) into one combined allocation trace,
// derive an exploration space automatically from the combined profile,
// and explore it — the scenario the paper's conclusions point toward.
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"

	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

func main() {
	ep := workload.DefaultEasyportParams()
	ep.Packets = 4000
	epTrace, err := ep.Generate()
	if err != nil {
		log.Fatal(err)
	}
	vp := workload.DefaultVTCParams()
	vp.Tiles = 12
	vtcTrace, err := vp.Generate()
	if err != nil {
		log.Fatal(err)
	}
	combined, err := trace.Interleave("easyport+vtc", 1, epTrace, vtcTrace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined trace: %d events (%d + %d)\n",
		combined.Len(), epTrace.Len(), vtcTrace.Len())

	// Automation step: derive the exploration input from the combined
	// application profile (dominant sizes -> pool candidates).
	prof := trace.Analyze(combined)
	fmt.Print("dominant sizes:")
	for _, vc := range prof.DominantSizes(3) {
		fmt.Printf(" %dB x%d", vc.Value, vc.Count)
	}
	fmt.Println()

	hier := memhier.EmbeddedSoC()
	space, err := core.SuggestSpace("multiapp-auto", prof, hier)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suggested space: %d configurations over %d axes\n",
		space.Size(), len(space.Axes))

	runner := &core.Runner{Hierarchy: hier, Trace: combined}
	results, err := runner.Explore(space)
	if err != nil {
		log.Fatal(err)
	}
	feasible := core.Feasible(results)
	front, _, err := core.ParetoSet(feasible,
		[]string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d feasible, %d Pareto-optimal\n", len(feasible), len(front))
	for _, obj := range []string{profile.ObjAccesses, profile.ObjFootprint, profile.ObjEnergy} {
		f, err := core.ParetoImprovement(front, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s up to %.1f%% reduction within the front\n",
			obj, core.ReductionPercent(f))
	}
}
