// VTC case study: the paper's second experiment — explore allocator
// configurations for the MPEG-4 Visual Texture deCoder workload and
// report how much energy and execution time a designer saves by picking
// the right Pareto-optimal configuration (the paper: up to 82.4% energy,
// up to 5.4% execution time).
//
//	go run ./examples/vtc [-tiles 24]
package main

import (
	"flag"
	"fmt"
	"log"

	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/workload"
)

func main() {
	tiles := flag.Int("tiles", 24, "texture tiles to decode")
	flag.Parse()

	params := workload.DefaultVTCParams()
	params.Tiles = *tiles
	tr, err := params.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VTC workload: %d tiles, %d trace events\n", params.Tiles, tr.Len())

	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr}
	space := core.VTCSpace()
	fmt.Printf("exploring %d configurations...\n", space.Size())
	results, err := runner.Explore(space)
	if err != nil {
		log.Fatal(err)
	}

	feasible := core.Feasible(results)
	front, _, err := core.ParetoSet(feasible, []string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		log.Fatal(err)
	}

	energy, err := core.ParetoImprovement(front, profile.ObjEnergy)
	if err != nil {
		log.Fatal(err)
	}
	cycles, err := core.ParetoImprovement(front, profile.ObjCycles)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d feasible, %d Pareto-optimal configurations\n", len(feasible), len(front))
	fmt.Printf("within the Pareto set:\n")
	fmt.Printf("  energy:         up to %.1f%% reduction (paper: up to 82.4%%)\n",
		core.ReductionPercent(energy))
	fmt.Printf("  execution time: up to %.1f%% reduction (paper: up to 5.4%%)\n",
		core.ReductionPercent(cycles))

	// Show the energy extremes of the front with their layer breakdown.
	var lo, hi *core.Result
	for i := range front {
		if lo == nil || front[i].Metrics.EnergyNJ < lo.Metrics.EnergyNJ {
			lo = &front[i]
		}
		if hi == nil || front[i].Metrics.EnergyNJ > hi.Metrics.EnergyNJ {
			hi = &front[i]
		}
	}
	for _, r := range []*core.Result{lo, hi} {
		fmt.Printf("\nconfig %v: %.1f uJ\n", r.Labels, r.Metrics.EnergyNJ/1000)
		for _, lm := range r.Metrics.PerLayer {
			fmt.Printf("  %-16s %10d accesses, peak %d bytes\n",
				lm.Name, lm.Accesses(), lm.PeakBytes)
		}
	}
}
