GO ?= go

# tier1 is the CI gate: static checks plus the full test suite under the
# race detector (the exploration fan-out is lock-free and must stay clean).
.PHONY: tier1
tier1: vet race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) build ./... && $(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# bench-replay refreshes BENCH_replay.json with the replay-engine and
# runner fan-out benchmark numbers.
.PHONY: bench-replay
bench-replay:
	$(GO) run scripts/benchreplay.go
