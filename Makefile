GO ?= go

# tier1 is the CI gate: static checks plus the full test suite under the
# race detector (the exploration fan-out is lock-free and must stay clean).
.PHONY: tier1
tier1: vet race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) build ./... && $(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# bench-replay refreshes BENCH_replay.json with the replay-engine and
# runner fan-out benchmark numbers.
.PHONY: bench-replay
bench-replay:
	$(GO) run scripts/benchreplay.go

# bench-search refreshes BENCH_search.json: the same seeded NSGA-II run
# at 1/2/4/8 workers against a latency-modelled evaluation backend. Fails
# if the 8-worker speedup drops below 3x or any worker count diverges
# from the serial run.
.PHONY: bench-search
bench-search:
	$(GO) run scripts/benchsearch.go

# bench-telemetry compares the instrumented steady-state replay loop
# (telemetry shard attached, as Runner workers run it) against the plain
# one. The overhead budget is <2%; benchreplay.go computes the ratio.
.PHONY: bench-telemetry
bench-telemetry:
	$(GO) test ./internal/profile/ -run '^$$' -bench 'BenchmarkReplay(Easyport|Telemetry)' -benchtime 2s -benchmem
