GO ?= go

# tier1 is the CI gate: static checks plus the full test suite under the
# race detector (the exploration fan-out is lock-free and must stay clean),
# plus a short real fuzz of every decoder.
.PHONY: tier1
tier1: vet race fuzz-smoke

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) build ./... && $(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# bench-replay refreshes BENCH_replay.json with the replay-engine and
# runner fan-out benchmark numbers.
.PHONY: bench-replay
bench-replay:
	$(GO) run scripts/benchreplay.go

# bench-search refreshes BENCH_search.json: the same seeded NSGA-II run
# at 1/2/4/8 workers against a latency-modelled evaluation backend. Fails
# if the 8-worker speedup drops below 3x or any worker count diverges
# from the serial run.
.PHONY: bench-search
bench-search:
	$(GO) run scripts/benchsearch.go

# bench-incremental refreshes BENCH_incremental.json: raw columnar replay
# throughput against the frozen pre-Replayer baseline, and the seeded
# hill-climb over the full Easyport space with incremental re-evaluation
# off and on, in both the raw-simulation and the latency-modelled backend
# regime (the one BENCH_search.json's batched baseline is recorded in).
# Fails if columnar replay drops below 1.5x, the backend-regime effective
# evals/sec gain drops below 3x, or any run diverges bit-wise.
.PHONY: bench-incremental
bench-incremental:
	$(GO) run scripts/benchincremental.go

# bench-parse refreshes BENCH_parse.json: serial vs parallel ingestion of
# a synthetic block-framed profile log (raw and latency-modelled storage)
# plus the parallel trace-read bit-identity check. Fails if the
# latency-modelled 8-worker speedup drops below 2x, any summary diverges,
# or the parallel trace read is not bit-identical. CI runs it small; the
# committed BENCH_parse.json comes from the default 1 GiB run.
.PHONY: bench-parse
bench-parse:
	$(GO) run scripts/benchparse.go

# bench-surrogate refreshes BENCH_surrogate.json: the exact 512-simulation
# screen-and-refine of the full Easyport space against the surrogate-
# assisted run at a fifth of the budget, compared by 2-D hypervolume
# against a shared reference point. Fails if the simulation reduction
# drops below 3x, the surrogate hypervolume falls more than 5% short of
# the exact run, or any worker count diverges from the serial run.
.PHONY: bench-surrogate
bench-surrogate:
	$(GO) run scripts/benchsurrogate.go

# bench-serve gates the distributed exploration service: the same
# 512-evaluation island-model NSGA-II job (4 islands, 5 ms modelled
# backend latency per simulation) through the loopback-HTTP coordinator
# at 1, 2 and 4 single-backend workers against the serial single-process
# Evolve. Fails if 4 workers deliver below 2.5x the serial effective
# evals/sec, or any fleet shape diverges (per-island walks and final
# front must be identical at every worker count). Writes BENCH_serve.json.
.PHONY: bench-serve
bench-serve:
	$(GO) run scripts/benchserve.go

# fuzz-smoke runs each native fuzz target for a few seconds — enough to
# execute the seed corpus plus a short mutation run on every decoder.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime 5s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzReadText$$' -fuzztime 5s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzTraceFeatures$$' -fuzztime 5s
	$(GO) test ./internal/profile/ -run '^$$' -fuzz '^FuzzParseLog$$' -fuzztime 5s

# bench-telemetry compares the instrumented steady-state replay loop
# (telemetry shard attached, as Runner workers run it) against the plain
# one. The overhead budget is <2%; benchreplay.go computes the ratio.
.PHONY: bench-telemetry
bench-telemetry:
	$(GO) test ./internal/profile/ -run '^$$' -bench 'BenchmarkReplay(Easyport|Telemetry)' -benchtime 2s -benchmem

# bench-observe gates the observability layer: the same seeded
# surrogate-assisted hill-climb with the span flight recorder attached
# and without must match bit-for-bit (evaluation sequence, metrics,
# provenance) at 1 and 4 workers, and recording must cost at most 2% of
# wall time (interleaved best-of-N minimums). Writes BENCH_observe.json
# plus the CI artifacts results/observe/run.trace.json (Perfetto-loadable)
# and results/observe/metrics.txt (the /metrics exposition).
.PHONY: bench-observe
bench-observe:
	$(GO) run scripts/benchobserve.go
