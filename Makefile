GO ?= go

# tier1 is the CI gate: static checks plus the full test suite under the
# race detector (the exploration fan-out is lock-free and must stay clean).
.PHONY: tier1
tier1: vet race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) build ./... && $(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# bench-replay refreshes BENCH_replay.json with the replay-engine and
# runner fan-out benchmark numbers.
.PHONY: bench-replay
bench-replay:
	$(GO) run scripts/benchreplay.go

# bench-telemetry compares the instrumented steady-state replay loop
# (telemetry shard attached, as Runner workers run it) against the plain
# one. The overhead budget is <2%; benchreplay.go computes the ratio.
.PHONY: bench-telemetry
bench-telemetry:
	$(GO) test ./internal/profile/ -run '^$$' -bench 'BenchmarkReplay(Easyport|Telemetry)' -benchtime 2s -benchmem
