package bench

import (
	"bytes"
	"testing"

	"dmexplore/internal/alloc"
	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/pareto"
	"dmexplore/internal/profile"
	"dmexplore/internal/report"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// Integration tests: end-to-end properties of the whole pipeline
// (workload -> sweep -> Pareto -> report) at reduced scale.

func smallEasyportTrace(t *testing.T, seed uint64) *trace.Trace {
	t.Helper()
	return easyportTraceN(t, seed, 3000)
}

func easyportTraceN(t *testing.T, seed uint64, packets int) *trace.Trace {
	t.Helper()
	p := workload.DefaultEasyportParams()
	p.Packets = packets
	p.Seed = seed
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEndToEndSweepInvariants(t *testing.T) {
	tr := smallEasyportTrace(t, 1)
	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr}
	space := core.EasyportSpace()
	results, err := runner.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	feasible := core.Feasible(results)
	if len(feasible) < space.Size()/2 {
		t.Fatalf("only %d/%d feasible", len(feasible), space.Size())
	}

	// Every feasible run conserves operations and respects bounds.
	prof := trace.Analyze(tr)
	for _, r := range feasible {
		m := r.Metrics
		if m.Mallocs != uint64(prof.Allocs) || m.Frees != uint64(prof.Frees) {
			t.Fatalf("config %d: op counts %d/%d", r.Index, m.Mallocs, m.Frees)
		}
		if m.FootprintBytes < m.PeakRequestedBytes {
			t.Fatalf("config %d: footprint %d < demand %d", r.Index, m.FootprintBytes, m.PeakRequestedBytes)
		}
		if m.EnergyNJ <= 0 || m.Cycles == 0 || m.Accesses == 0 {
			t.Fatalf("config %d: empty metrics", r.Index)
		}
		// Energy must be bounded by worst-case pricing of the accesses
		// (every access at the most expensive layer + leakage slack).
		worst := m.EnergyNJ / (float64(m.Accesses) * 8.4 * 1.5)
		if worst > 1 {
			t.Fatalf("config %d: energy %v implausibly high for %d accesses", r.Index, m.EnergyNJ, m.Accesses)
		}
	}

	// Pareto front: mutual non-domination against the whole feasible set.
	front, points, err := core.ParetoSet(feasible, []string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 || len(points) < len(front) {
		t.Fatalf("front %d points %d", len(front), len(points))
	}
	for _, f := range front {
		for _, r := range feasible {
			if r.Metrics.Accesses < f.Metrics.Accesses && r.Metrics.FootprintBytes < f.Metrics.FootprintBytes {
				t.Fatalf("front config %d dominated by %d", f.Index, r.Index)
			}
		}
	}
	if k := pareto.Knee(points); k < 0 {
		t.Fatal("no knee on a non-empty front")
	}
}

func TestEndToEndSeedRobustness(t *testing.T) {
	// The paper's qualitative conclusions must not depend on the workload
	// seed: across seeds, dedicated-pool configurations keep winning
	// accesses, and the sweep keeps a wide accesses range.
	for _, seed := range []uint64{1, 2, 3} {
		tr := smallEasyportTrace(t, seed)
		runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr}
		results, err := runner.Explore(core.EasyportSpace())
		if err != nil {
			t.Fatal(err)
		}
		feasible := core.Feasible(results)
		accRange, err := core.Range(feasible, profile.ObjAccesses)
		if err != nil {
			t.Fatal(err)
		}
		if accRange.Factor < 5 {
			t.Fatalf("seed %d: accesses factor %.1f collapsed", seed, accRange.Factor)
		}
		// The access-minimal configuration must use dedicated pools.
		best := results[accRange.BestIndex]
		if best.Labels[0] == "none" {
			t.Fatalf("seed %d: access-optimal config has no pools: %v", seed, best.Labels)
		}
		front, _, err := core.ParetoSet(feasible, []string{profile.ObjAccesses, profile.ObjFootprint})
		if err != nil {
			t.Fatal(err)
		}
		if len(front) < 5 || len(front) > 60 {
			t.Fatalf("seed %d: front size %d implausible", seed, len(front))
		}
	}
}

func TestEndToEndCSVRoundTripPreservesPareto(t *testing.T) {
	tr := smallEasyportTrace(t, 1)
	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr}
	space := core.EasyportSpace()
	results, err := runner.Sample(space, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteResultsCSV(&buf, space.AxisLabels(), results); err != nil {
		t.Fatal(err)
	}
	parsed, err := report.ReadResultsCSV(bytes.NewReader(buf.Bytes()), len(space.Axes))
	if err != nil {
		t.Fatal(err)
	}
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	f1, _, err := core.ParetoSet(core.Feasible(results), objs)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := core.ParetoSet(core.Feasible(parsed), objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != len(f2) {
		t.Fatalf("front size changed through CSV: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].Index != f2[i].Index {
			t.Fatalf("front member %d changed: %d vs %d", i, f1[i].Index, f2[i].Index)
		}
	}
}

func TestEndToEndBaselinesAreDominatedOrMatched(t *testing.T) {
	// The paper's motivation: no OS-style baseline beats the custom
	// front on both objectives at once. This needs the full-size
	// workload: at toy scales the dedicated pools' slab overhead is not
	// yet amortized.
	if testing.Short() {
		t.Skip("full-scale sweep")
	}
	tr := easyportTraceN(t, 1, 30000)
	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr}
	results, err := runner.Explore(core.EasyportSpace())
	if err != nil {
		t.Fatal(err)
	}
	front, _, err := core.ParetoSet(core.Feasible(results),
		[]string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		t.Fatal(err)
	}
	energyMin, err := core.Range(front, profile.ObjEnergy)
	if err != nil {
		t.Fatal(err)
	}
	for _, preset := range []alloc.Config{
		alloc.KingsleyConfig(memhier.LayerDRAM),
		alloc.LeaConfig(memhier.LayerDRAM),
		alloc.SimpleFirstFitConfig(memhier.LayerDRAM),
	} {
		m, err := profile.Run(tr, preset, memhier.EmbeddedSoC(), profile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// A baseline may squeeze into a sliver of objective space the
		// curated axes don't cover exactly, so the claim is tested with a
		// 10% footprint tolerance: some custom front point is at least as
		// fast AND within 10% of the baseline's footprint.
		nearDominated := false
		for _, f := range front {
			if f.Metrics.Accesses <= m.Accesses &&
				float64(f.Metrics.FootprintBytes) <= 1.10*float64(m.FootprintBytes) {
				nearDominated = true
				break
			}
		}
		if !nearDominated {
			t.Fatalf("%s beats the entire custom front", preset.Label)
		}
		// And the custom space always wins big on energy — the baselines
		// cannot use the scratchpad (A3's >=2.2x in EXPERIMENTS.md).
		if energyMin.Min > 0.6*m.EnergyNJ {
			t.Fatalf("%s energy %.0f not clearly beaten by front minimum %.0f",
				preset.Label, m.EnergyNJ, energyMin.Min)
		}
	}
}

func TestEndToEndVTCPipeline(t *testing.T) {
	p := workload.DefaultVTCParams()
	p.Tiles = 16
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr}
	results, err := runner.Explore(core.VTCSpace())
	if err != nil {
		t.Fatal(err)
	}
	feasible := core.Feasible(results)
	front, _, err := core.ParetoSet(feasible, []string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		t.Fatal(err)
	}
	energy, err := core.ParetoImprovement(front, profile.ObjEnergy)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := core.ParetoImprovement(front, profile.ObjCycles)
	if err != nil {
		t.Fatal(err)
	}
	// The VTC asymmetry must hold at any scale: energy moves much more
	// than execution time.
	if energy < 1.5 {
		t.Fatalf("VTC energy spread %.2f collapsed", energy)
	}
	if cycles > 1.5 {
		t.Fatalf("VTC time spread %.2f too large (should be CPU-bound)", cycles)
	}
	if energy <= cycles {
		t.Fatalf("VTC asymmetry inverted: energy %.2f <= cycles %.2f", energy, cycles)
	}
}
