// Package bench is the experiment harness: one benchmark per table,
// figure or quantitative claim of the paper's evaluation (§3), plus the
// ablations called out in DESIGN.md. Each benchmark regenerates its
// experiment from scratch (workload generation -> configuration sweep ->
// Pareto reduction) and reports the paper-comparable quantities as custom
// benchmark metrics; EXPERIMENTS.md records paper-vs-measured per row.
//
// The heavyweight configuration sweeps are shared across benchmarks
// through cached fixtures, so `go test -bench=.` performs each sweep
// once. The timed loop measures the analysis stage (range + Pareto
// extraction over the sweep); the sweep cost itself is reported once as
// the "sweep-seconds" metric of E1/E4.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dmexplore/internal/alloc"
	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/pareto"
	"dmexplore/internal/profile"
	"dmexplore/internal/report"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// sweep bundles one case study's exploration results.
type sweep struct {
	trace    *trace.Trace
	space    *core.Space
	results  []core.Result
	feasible []core.Result
	front    []core.Result
	points   []pareto.Point
	seconds  float64
}

var (
	easyportOnce sync.Once
	easyportData *sweep
	easyportErr  error

	vtcOnce sync.Once
	vtcData *sweep
	vtcErr  error
)

func runSweep(gen workload.Generator, space *core.Space) (*sweep, error) {
	tr, err := gen.Generate()
	if err != nil {
		return nil, err
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		return nil, err
	}
	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Compiled: ct}
	start := nowSeconds()
	results, err := runner.Explore(space)
	if err != nil {
		return nil, err
	}
	elapsed := nowSeconds() - start
	feasible := core.Feasible(results)
	front, points, err := core.ParetoSet(feasible,
		[]string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		return nil, err
	}
	return &sweep{
		trace: tr, space: space, results: results,
		feasible: feasible, front: front, points: points,
		seconds: elapsed,
	}, nil
}

func easyportSweep(b *testing.B) *sweep {
	b.Helper()
	easyportOnce.Do(func() {
		easyportData, easyportErr = runSweep(workload.DefaultEasyportParams(), core.EasyportSpace())
	})
	if easyportErr != nil {
		b.Fatal(easyportErr)
	}
	return easyportData
}

func vtcSweep(b *testing.B) *sweep {
	b.Helper()
	vtcOnce.Do(func() {
		vtcData, vtcErr = runSweep(workload.DefaultVTCParams(), core.VTCSpace())
	})
	if vtcErr != nil {
		b.Fatal(vtcErr)
	}
	return vtcData
}

func nowSeconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}

// mustRange is a helper failing the benchmark on analysis errors.
func mustRange(b *testing.B, rs []core.Result, obj string) core.ObjectiveRange {
	b.Helper()
	r, err := core.Range(rs, obj)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// distinctPoints counts distinct objective vectors on the front —
// placement-equivalent twins (same pools on scratchpad vs DRAM) tie on
// (accesses, footprint), and the paper's "15 Pareto-optimal
// configurations" counts trade-off points.
func distinctPoints(front []core.Result, objs []string) int {
	seen := make(map[string]bool)
	for _, r := range front {
		key := ""
		for _, obj := range objs {
			v, _ := r.Metrics.Objective(obj)
			key += fmt.Sprintf("%.6g|", v)
		}
		seen[key] = true
	}
	return len(seen)
}

// BenchmarkE1EasyportFullRange reproduces §3's sweep-wide ranges for the
// Easyport study: "a range in the total memory footprint of a factor 11
// and for the memory accesses of a factor 54".
func BenchmarkE1EasyportFullRange(b *testing.B) {
	s := easyportSweep(b)
	b.ResetTimer()
	var acc, fp core.ObjectiveRange
	for i := 0; i < b.N; i++ {
		acc = mustRange(b, s.feasible, profile.ObjAccesses)
		fp = mustRange(b, s.feasible, profile.ObjFootprint)
	}
	b.ReportMetric(acc.Factor, "accesses-factor(paper:54)")
	b.ReportMetric(fp.Factor, "footprint-factor(paper:11)")
	b.ReportMetric(float64(len(s.feasible)), "feasible-configs")
	b.ReportMetric(s.seconds, "sweep-seconds")
}

// BenchmarkE2EasyportPareto reproduces §3's Pareto-set claims for
// Easyport: "15 Pareto-optimal configurations", footprint decrease "up to
// a factor of 2.9" and accesses "up to a factor of 4.1" within the set
// (the abstract's 66% and 76%).
func BenchmarkE2EasyportPareto(b *testing.B) {
	s := easyportSweep(b)
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	b.ResetTimer()
	var front []core.Result
	for i := 0; i < b.N; i++ {
		var err error
		front, _, err = core.ParetoSet(s.feasible, objs)
		if err != nil {
			b.Fatal(err)
		}
	}
	accF, err := core.ParetoImprovement(front, profile.ObjAccesses)
	if err != nil {
		b.Fatal(err)
	}
	fpF, err := core.ParetoImprovement(front, profile.ObjFootprint)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(distinctPoints(front, objs)), "pareto-points(paper:15)")
	b.ReportMetric(accF, "accesses-tradeoff(paper:4.1)")
	b.ReportMetric(fpF, "footprint-tradeoff(paper:2.9)")
	b.ReportMetric(core.ReductionPercent(accF), "accesses-reduction-pct(paper:76)")
	b.ReportMetric(core.ReductionPercent(fpF), "footprint-reduction-pct(paper:66)")
}

// BenchmarkE3EasyportEnergyTime reproduces §3's Easyport energy/time
// claims: "decrease the total memory energy consumption up to 71.74% and
// the execution time up to 27.92% within all the Pareto-optimal DM
// allocator configurations".
func BenchmarkE3EasyportEnergyTime(b *testing.B) {
	s := easyportSweep(b)
	b.ResetTimer()
	var energy, cycles float64
	for i := 0; i < b.N; i++ {
		var err error
		energy, err = core.ParetoImprovement(s.front, profile.ObjEnergy)
		if err != nil {
			b.Fatal(err)
		}
		cycles, err = core.ParetoImprovement(s.front, profile.ObjCycles)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.ReductionPercent(energy), "energy-reduction-pct(paper:71.74)")
	b.ReportMetric(core.ReductionPercent(cycles), "time-reduction-pct(paper:27.92)")
}

// BenchmarkE4VTCEnergyTime reproduces §3's VTC claims: "a reduction of up
// to 82.4% for energy consumption and up to 5.4% for execution time
// within the available Pareto-optimal configurations".
func BenchmarkE4VTCEnergyTime(b *testing.B) {
	s := vtcSweep(b)
	b.ResetTimer()
	var energy, cycles float64
	for i := 0; i < b.N; i++ {
		var err error
		energy, err = core.ParetoImprovement(s.front, profile.ObjEnergy)
		if err != nil {
			b.Fatal(err)
		}
		cycles, err = core.ParetoImprovement(s.front, profile.ObjCycles)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.ReductionPercent(energy), "energy-reduction-pct(paper:82.4)")
	b.ReportMetric(core.ReductionPercent(cycles), "time-reduction-pct(paper:5.4)")
	b.ReportMetric(float64(len(s.front)), "pareto-configs")
	b.ReportMetric(s.seconds, "sweep-seconds")
}

// BenchmarkE5SpaceCardinality reproduces the "tens of thousands of highly
// customized DM allocators" claim: the full parameter product, validated
// configuration materialization included.
func BenchmarkE5SpaceCardinality(b *testing.B) {
	space := core.FullEasyportSpace()
	h := memhier.EmbeddedSoC()
	size := space.Size()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Materialize and validate a configuration (round-robin over the
		// space) — the per-config cost of the generation step.
		cfg, _, err := space.Config(i % size)
		if err != nil {
			b.Fatal(err)
		}
		if err := cfg.Validate(h); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size), "space-size(paper:10k+)")
}

// BenchmarkE6LogParse reproduces the profiling-pipeline claim: raw
// profile logs "can reach Gigabytes for one single configuration" and are
// parsed in "less than 20 seconds". The benchmark measures the streaming
// parser's throughput on a real profile log and reports the projected
// time to parse one gigabyte.
func BenchmarkE6LogParse(b *testing.B) {
	// Emit one real log from a profiled configuration.
	params := workload.DefaultEasyportParams()
	params.Packets = 8000
	tr, err := params.Generate()
	if err != nil {
		b.Fatal(err)
	}
	tmp, err := os.CreateTemp(b.TempDir(), "profile-*.log")
	if err != nil {
		b.Fatal(err)
	}
	_, err = profile.Run(tr, alloc.LeaConfig(memhier.LayerDRAM), memhier.EmbeddedSoC(),
		profile.Options{LogWriter: tmp})
	if err != nil {
		b.Fatal(err)
	}
	info, err := tmp.Stat()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(info.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tmp.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		if _, err := profile.ParseLog(tmp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perByteNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(info.Size())
	b.ReportMetric(perByteNs*float64(1<<30)/1e9, "seconds-per-GB(paper:<20)")
}

// BenchmarkF1ParetoCurve regenerates Figure 1 (lower part): the Gnuplot
// data and script for the Easyport Pareto curve — memory accesses vs
// memory footprint, all configurations plus the highlighted front. The
// series is written to results/f1_pareto.{dat,plt}.
func BenchmarkF1ParetoCurve(b *testing.B) {
	s := easyportSweep(b)
	dir := "results"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	datPath := filepath.Join(dir, "f1_pareto.dat")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Create(datPath)
		if err != nil {
			b.Fatal(err)
		}
		err = report.WriteParetoDat(f, s.feasible, s.front, profile.ObjAccesses, profile.ObjFootprint)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	pf, err := os.Create(filepath.Join(dir, "f1_pareto.plt"))
	if err != nil {
		b.Fatal(err)
	}
	defer pf.Close()
	if err := report.WriteGnuplotScript(pf, datPath,
		"Easyport: Pareto-optimal DM allocator configurations",
		profile.ObjAccesses, profile.ObjFootprint); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(s.front)), "series-points")
}

// BenchmarkA1PlacementAblation isolates the pool-to-layer mapping choice
// (the paper's scratchpad example): the identical allocator with its
// 74-byte pool on the scratchpad vs in DRAM. Mapping must cut energy
// substantially while leaving accesses and footprint unchanged.
func BenchmarkA1PlacementAblation(b *testing.B) {
	params := workload.DefaultEasyportParams()
	params.Packets = 10000
	tr, err := params.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	mk := func(layer string) alloc.Config {
		return alloc.Config{
			Label: "d74@" + layer,
			Fixed: []alloc.FixedConfig{{
				SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: layer,
				Order: alloc.LIFO, Links: alloc.SingleLink,
				Growth: alloc.GrowFixedChunk, ChunkSlots: 512, MaxBytes: 48 * 1024,
			}},
			General: alloc.GeneralConfig{
				Layer: memhier.LayerDRAM, Classes: "pow2:16:65536", RoundToClass: true,
				Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
				Split: alloc.SplitNever, Coalesce: alloc.CoalesceNever,
				Headers: alloc.HeaderMinimal, Growth: alloc.GrowFixedChunk,
				ChunkBytes: 8 * 1024,
			},
		}
	}
	var sp, dram *profile.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sp, err = profile.Run(tr, mk(memhier.LayerScratchpad), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
		if dram, err = profile.Run(tr, mk(memhier.LayerDRAM), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dram.EnergyNJ/sp.EnergyNJ, "energy-ratio-dram/sp")
	b.ReportMetric(float64(dram.Accesses)/float64(sp.Accesses), "accesses-ratio(~1)")
	b.ReportMetric(float64(dram.Cycles)/float64(sp.Cycles), "cycles-ratio")
}

// BenchmarkA2CoalesceAblation isolates the coalescing policy on the
// Easyport workload: never vs immediate vs deferred on an otherwise
// identical single-list allocator — the accesses-vs-footprint knob.
func BenchmarkA2CoalesceAblation(b *testing.B) {
	params := workload.DefaultEasyportParams()
	params.Packets = 10000
	tr, err := params.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	mk := func(mode alloc.CoalesceMode, every int, label string) alloc.Config {
		return alloc.Config{
			Label: label,
			General: alloc.GeneralConfig{
				Layer: memhier.LayerDRAM, Classes: "single",
				Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
				Split: alloc.SplitAlways, Coalesce: mode, CoalesceEvery: every,
				Headers: alloc.HeaderBoundaryTag, Growth: alloc.GrowFixedChunk,
				ChunkBytes: 8 * 1024,
			},
		}
	}
	var never, immediate, deferred *profile.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if never, err = profile.Run(tr, mk(alloc.CoalesceNever, 0, "never"), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
		if immediate, err = profile.Run(tr, mk(alloc.CoalesceImmediate, 0, "immediate"), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
		if deferred, err = profile.Run(tr, mk(alloc.CoalesceDeferred, 32, "deferred"), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(never.FootprintBytes)/float64(immediate.FootprintBytes), "footprint-never/immediate")
	b.ReportMetric(float64(immediate.Accesses)/float64(never.Accesses), "accesses-immediate/never")
	b.ReportMetric(float64(deferred.FootprintBytes)/float64(immediate.FootprintBytes), "footprint-deferred/immediate")
}

// BenchmarkA3Baselines compares the best custom Pareto configurations
// against the OS-style general-purpose baselines (Kingsley, Lea,
// first-fit) on the Easyport workload — the paper's motivating claim that
// customized allocators beat the "very restricted group of a few OS-based
// DM allocators".
func BenchmarkA3Baselines(b *testing.B) {
	s := easyportSweep(b)
	h := memhier.EmbeddedSoC()
	baselines := []alloc.Config{
		alloc.KingsleyConfig(memhier.LayerDRAM),
		alloc.LeaConfig(memhier.LayerDRAM),
		alloc.SimpleFirstFitConfig(memhier.LayerDRAM),
	}
	var metrics []*profile.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics = metrics[:0]
		for _, cfg := range baselines {
			m, err := profile.Run(s.trace, cfg, h, profile.Options{})
			if err != nil {
				b.Fatal(err)
			}
			metrics = append(metrics, m)
		}
	}
	b.StopTimer()
	bestAcc := mustRange(b, s.front, profile.ObjAccesses).Min
	bestFp := mustRange(b, s.front, profile.ObjFootprint).Min
	bestEnergy := mustRange(b, s.front, profile.ObjEnergy).Min
	for i, m := range metrics {
		prefix := baselines[i].Label
		b.ReportMetric(float64(m.Accesses)/bestAcc, prefix+"-accesses-vs-best")
		b.ReportMetric(float64(m.FootprintBytes)/bestFp, prefix+"-footprint-vs-best")
		b.ReportMetric(m.EnergyNJ/bestEnergy, prefix+"-energy-vs-best")
	}
}

// BenchmarkA4LinksAblation isolates free-list linkage: double linkage
// pays one extra word per insert but makes arbitrary removal O(1) — under
// immediate coalescing (which removes neighbours constantly) it must cut
// accesses on a single-list allocator.
func BenchmarkA4LinksAblation(b *testing.B) {
	params := workload.DefaultEasyportParams()
	params.Packets = 10000
	tr, err := params.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	mk := func(links alloc.ListLinks, label string) alloc.Config {
		return alloc.Config{
			Label: label,
			General: alloc.GeneralConfig{
				Layer: memhier.LayerDRAM, Classes: "single",
				Fit: alloc.FirstFit, Order: alloc.FIFO, Links: links,
				Split: alloc.SplitAlways, Coalesce: alloc.CoalesceImmediate,
				Headers: alloc.HeaderBoundaryTag, Growth: alloc.GrowFixedChunk,
				ChunkBytes: 8 * 1024,
			},
		}
	}
	var single, double *profile.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if single, err = profile.Run(tr, mk(alloc.SingleLink, "single"), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
		if double, err = profile.Run(tr, mk(alloc.DoubleLink, "double"), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(single.Accesses)/float64(double.Accesses), "accesses-single/double")
	b.ReportMetric(float64(double.FootprintBytes)/float64(single.FootprintBytes), "footprint-double/single")
}

// BenchmarkA5HeadersAblation isolates the header layout: boundary tags
// cost one extra word per block (footprint) but enable backward
// coalescing (fewer stranded fragments under churn).
func BenchmarkA5HeadersAblation(b *testing.B) {
	params := workload.DefaultEasyportParams()
	params.Packets = 10000
	tr, err := params.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	mk := func(hdr alloc.HeaderMode, label string) alloc.Config {
		return alloc.Config{
			Label: label,
			General: alloc.GeneralConfig{
				Layer: memhier.LayerDRAM, Classes: "single",
				Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
				Split: alloc.SplitAlways, Coalesce: alloc.CoalesceImmediate,
				Headers: hdr, Growth: alloc.GrowFixedChunk,
				ChunkBytes: 8 * 1024,
			},
		}
	}
	var minimal, btag *profile.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if minimal, err = profile.Run(tr, mk(alloc.HeaderMinimal, "minimal"), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
		if btag, err = profile.Run(tr, mk(alloc.HeaderBoundaryTag, "btag"), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(minimal.FootprintBytes)/float64(btag.FootprintBytes), "footprint-minimal/btag")
	b.ReportMetric(float64(btag.Accesses)/float64(minimal.Accesses), "accesses-btag/minimal")
}

// BenchmarkA6BuddyVsSegregated compares the binary-buddy organisation
// against Kingsley-style segregated storage on the same workload: both
// round to powers of two, but buddy pays split/merge chains for the
// ability to coalesce.
func BenchmarkA6BuddyVsSegregated(b *testing.B) {
	params := workload.DefaultEasyportParams()
	params.Packets = 10000
	tr, err := params.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	buddy := alloc.Config{
		Label:   "buddy",
		General: alloc.GeneralConfig{Layer: memhier.LayerDRAM, Classes: "buddy:64:65536"},
	}
	kingsley := alloc.KingsleyConfig(memhier.LayerDRAM)
	var bm, km *profile.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bm, err = profile.Run(tr, buddy, h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
		if km, err = profile.Run(tr, kingsley, h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bm.Accesses)/float64(km.Accesses), "accesses-buddy/kingsley")
	b.ReportMetric(float64(km.FootprintBytes)/float64(bm.FootprintBytes), "footprint-kingsley/buddy")
}

// BenchmarkA7ReclaimAblation isolates chunk reclamation on the dedicated
// pools: reclaiming returns burst memory at the cost of unlink work.
func BenchmarkA7ReclaimAblation(b *testing.B) {
	params := workload.DefaultEasyportParams()
	params.Packets = 10000
	tr, err := params.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	mk := func(reclaim bool, label string) alloc.Config {
		return alloc.Config{
			Label: label,
			Fixed: []alloc.FixedConfig{{
				SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: memhier.LayerDRAM,
				Order: alloc.LIFO, Links: alloc.SingleLink,
				Growth: alloc.GrowFixedChunk, ChunkSlots: 64, Reclaim: reclaim,
			}},
			General: alloc.GeneralConfig{
				Layer: memhier.LayerDRAM, Classes: "pow2:16:65536", RoundToClass: true,
				Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
				Split: alloc.SplitNever, Coalesce: alloc.CoalesceNever,
				Headers: alloc.HeaderMinimal, Growth: alloc.GrowFixedChunk,
				ChunkBytes: 8 * 1024,
			},
		}
	}
	var keep, reclaim *profile.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if keep, err = profile.Run(tr, mk(false, "keep"), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
		if reclaim, err = profile.Run(tr, mk(true, "reclaim"), h, profile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(reclaim.Accesses)/float64(keep.Accesses), "accesses-reclaim/keep")
	b.ReportMetric(float64(keep.FootprintBytes)/float64(reclaim.FootprintBytes), "footprint-keep/reclaim")
}

// BenchmarkA8EvolveVsExhaustive measures how much of the true Pareto
// front's hypervolume the evolutionary search recovers at a quarter of
// the exhaustive simulation budget.
func BenchmarkA8EvolveVsExhaustive(b *testing.B) {
	s := easyportSweep(b)
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	var ref [2]float64
	for _, p := range s.points {
		for d := 0; d < 2; d++ {
			if p.Values[d] > ref[d] {
				ref[d] = p.Values[d]
			}
		}
	}
	ref[0] *= 1.01
	ref[1] *= 1.01
	trueHV := pareto.Hypervolume2D(s.points, ref)

	ct, err := trace.Compile(s.trace)
	if err != nil {
		b.Fatal(err)
	}
	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: s.trace, Compiled: ct}
	budget := s.space.Size() / 4
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evolved, err := runner.Evolve(s.space, objs, core.EvolveOptions{
			Population: 32, Budget: budget, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		_, pts, err := core.ParetoSet(core.Feasible(evolved), objs)
		if err != nil {
			b.Fatal(err)
		}
		frac = pareto.Hypervolume2D(pts, ref) / trueHV
	}
	b.ReportMetric(frac*100, "hypervolume-pct-of-true")
	b.ReportMetric(float64(budget), "budget-sims")
}

// BenchmarkF2FootprintSeries regenerates the footprint-over-time plot the
// paper's GUI shows: allocator footprint vs application demand for a
// coalescing and a non-coalescing configuration, written to
// results/f2_footprint_{immediate,never}.dat plus a .plt.
func BenchmarkF2FootprintSeries(b *testing.B) {
	params := workload.DefaultEasyportParams()
	params.Packets = 10000
	tr, err := params.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	if err := os.MkdirAll("results", 0o755); err != nil {
		b.Fatal(err)
	}
	mk := func(mode alloc.CoalesceMode, label string) alloc.Config {
		return alloc.Config{
			Label: label,
			General: alloc.GeneralConfig{
				Layer: memhier.LayerDRAM, Classes: "single",
				Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
				Split: alloc.SplitAlways, Coalesce: mode,
				Headers: alloc.HeaderBoundaryTag, Growth: alloc.GrowFixedChunk,
				ChunkBytes: 8 * 1024,
			},
		}
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var finals [2]int64
		for j, cfg := range []alloc.Config{
			mk(alloc.CoalesceImmediate, "immediate"),
			mk(alloc.CoalesceNever, "never"),
		} {
			m, err := profile.Run(tr, cfg, h, profile.Options{SampleEvery: 400})
			if err != nil {
				b.Fatal(err)
			}
			f, err := os.Create(filepath.Join("results", "f2_footprint_"+cfg.Label+".dat"))
			if err != nil {
				b.Fatal(err)
			}
			err = report.WriteSeriesDat(f, m.Series)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			finals[j] = m.Series[len(m.Series)-1].ReservedBytes
		}
		ratio = float64(finals[1]) / float64(finals[0])
	}
	b.StopTimer()
	pf, err := os.Create(filepath.Join("results", "f2_footprint.plt"))
	if err != nil {
		b.Fatal(err)
	}
	defer pf.Close()
	if err := report.WriteSeriesScript(pf, "results/f2_footprint_never.dat",
		"Easyport footprint over time (never-coalesce; compare immediate)"); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(ratio, "final-footprint-never/immediate")
}

// BenchmarkX1MultiApplication is the extension experiment the paper's
// conclusions point toward: several dynamic applications (Easyport + VTC)
// sharing one DM subsystem. The combined interleaved trace is explored
// with the same tool; the trade-off structure must survive the mix.
func BenchmarkX1MultiApplication(b *testing.B) {
	ep := workload.DefaultEasyportParams()
	ep.Packets = 8000
	epTrace, err := ep.Generate()
	if err != nil {
		b.Fatal(err)
	}
	vp := workload.DefaultVTCParams()
	vp.Tiles = 24
	vtcTrace, err := vp.Generate()
	if err != nil {
		b.Fatal(err)
	}
	combined, err := trace.Interleave("easyport+vtc", 1, epTrace, vtcTrace)
	if err != nil {
		b.Fatal(err)
	}
	if err := combined.Validate(); err != nil {
		b.Fatal(err)
	}

	ctCombined, err := trace.Compile(combined)
	if err != nil {
		b.Fatal(err)
	}
	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: combined, Compiled: ctCombined}
	space := core.EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	var accF, fpF float64
	var frontLen int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := runner.Explore(space)
		if err != nil {
			b.Fatal(err)
		}
		front, _, err := core.ParetoSet(core.Feasible(results), objs)
		if err != nil {
			b.Fatal(err)
		}
		frontLen = len(front)
		if accF, err = core.ParetoImprovement(front, profile.ObjAccesses); err != nil {
			b.Fatal(err)
		}
		if fpF, err = core.ParetoImprovement(front, profile.ObjFootprint); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(frontLen), "pareto-configs")
	b.ReportMetric(core.ReductionPercent(accF), "accesses-reduction-pct")
	b.ReportMetric(core.ReductionPercent(fpF), "footprint-reduction-pct")
}

// BenchmarkA9RowBufferAblation enables the SDRAM open-page model and
// measures how much it rewards configurations with sequential access
// behaviour: dedicated pools (linear slab traffic) gain more than the
// pointer-chasing single-list allocator, widening the energy gap.
func BenchmarkA9RowBufferAblation(b *testing.B) {
	params := workload.DefaultEasyportParams()
	params.Packets = 10000
	tr, err := params.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	pools := alloc.Config{
		Label: "pools",
		Fixed: []alloc.FixedConfig{{
			SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: memhier.LayerDRAM,
			Order: alloc.LIFO, Links: alloc.SingleLink,
			Growth: alloc.GrowFixedChunk, ChunkSlots: 512,
		}},
		General: alloc.GeneralConfig{
			Layer: memhier.LayerDRAM, Classes: "pow2:16:65536", RoundToClass: true,
			Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
			Split: alloc.SplitNever, Coalesce: alloc.CoalesceNever,
			Headers: alloc.HeaderMinimal, Growth: alloc.GrowFixedChunk,
			ChunkBytes: 8 * 1024,
		},
	}
	list := alloc.SimpleFirstFitConfig(memhier.LayerDRAM)
	rbOpts := profile.Options{RowBuffers: map[string]profile.RowBufferSpec{
		memhier.LayerDRAM: {RowWords: 256, Banks: 4},
	}}

	var gainPools, gainList float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gain := func(cfg alloc.Config) float64 {
			flat, err := profile.Run(tr, cfg, h, profile.Options{})
			if err != nil {
				b.Fatal(err)
			}
			open, err := profile.Run(tr, cfg, h, rbOpts)
			if err != nil {
				b.Fatal(err)
			}
			return flat.EnergyNJ / open.EnergyNJ
		}
		gainPools = gain(pools)
		gainList = gain(list)
	}
	b.ReportMetric(gainPools, "pools-energy-gain")
	b.ReportMetric(gainList, "list-energy-gain")
	b.ReportMetric(gainPools/gainList, "gain-ratio-pools/list")
}
