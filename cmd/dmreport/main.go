// Command dmreport post-processes exploration results without re-running
// any simulation — the counterpart of the paper's separate Perl/O'Caml
// result parser. It reads a results.csv written by dmexplore, recomputes
// ranges and Pareto fronts for any objective pair, and emits the same
// report set (summary, Gnuplot data and script, HTML).
//
// Examples:
//
//	dmreport -in results/results.csv -axes 7
//	dmreport -in results/results.csv -axes 7 -objectives energy,cycles -out rep/
//	dmreport -journal results/journal.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dmexplore/internal/core"
	"dmexplore/internal/profile"
	"dmexplore/internal/report"
	"dmexplore/internal/stats"
	"dmexplore/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dmreport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dmreport", flag.ContinueOnError)
	var (
		inPath      = fs.String("in", "", "results CSV written by dmexplore (required unless -journal)")
		journalPath = fs.String("journal", "", "summarize a journal.jsonl written by dmexplore instead of a results CSV")
		lineage     = fs.Bool("lineage", false, "with -journal: reconstruct the ancestry tree of every Pareto-front member from the journaled provenance")
		axes        = fs.Int("axes", 0, "number of leading axis-label columns in the CSV (required)")
		objectives  = fs.String("objectives", "accesses,footprint", "comma-separated minimization objectives")
		outDir      = fs.String("out", "", "directory for regenerated reports (none when empty)")
		title       = fs.String("title", "dmreport", "report title")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	objs := strings.Split(*objectives, ",")
	for i := range objs {
		objs[i] = strings.TrimSpace(objs[i])
	}
	if len(objs) < 2 {
		return fmt.Errorf("need at least two objectives")
	}
	if *lineage {
		if *journalPath == "" {
			return fmt.Errorf("-lineage needs -journal journal.jsonl")
		}
		return lineageReport(out, *journalPath, objs)
	}
	if *journalPath != "" {
		return summarizeJournal(out, *journalPath)
	}
	if *inPath == "" {
		return fmt.Errorf("need -in results.csv (or -journal journal.jsonl)")
	}
	if *axes <= 0 {
		return fmt.Errorf("need -axes (the CSV's leading label column count)")
	}

	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	results, err := report.ReadResultsCSV(f, *axes)
	f.Close()
	if err != nil {
		return err
	}
	feasible := core.Feasible(results)
	front, _, err := core.ParetoSet(feasible, objs)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "results    %d rows, %d feasible\n", len(results), len(feasible))
	for _, obj := range objs {
		r, err := core.Range(feasible, obj)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-10s range %.4g .. %.4g (factor %.2f)\n", obj, r.Min, r.Max, r.Factor)
	}
	fmt.Fprintf(out, "Pareto front: %d configurations\n", len(front))
	for _, obj := range objs {
		fct, err := core.ParetoImprovement(front, obj)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-10s trade-off factor %.2f (%.1f%% reduction)\n",
			obj, fct, core.ReductionPercent(fct))
	}

	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	axisNames := make([]string, *axes)
	for i := range axisNames {
		axisNames[i] = fmt.Sprintf("axis%d", i)
	}
	datPath := filepath.Join(*outDir, "pareto.dat")
	df, err := os.Create(datPath)
	if err != nil {
		return err
	}
	err = report.WriteParetoDat(df, feasible, front, objs[0], objs[1])
	if cerr := df.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	pf, err := os.Create(filepath.Join(*outDir, "pareto.plt"))
	if err != nil {
		return err
	}
	err = report.WriteGnuplotScript(pf, datPath, *title, objs[0], objs[1])
	if cerr := pf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	hf, err := os.Create(filepath.Join(*outDir, "report.html"))
	if err != nil {
		return err
	}
	err = report.WriteHTML(hf, *title, axisNames, feasible, front, objs[0], objs[1])
	if cerr := hf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	md, err := report.MarkdownSummary(*title, feasible, front, objs)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*outDir, "summary.md"), []byte(md), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "reports written to %s\n", *outDir)
	return nil
}

// lineageReport reconstructs the search's provenance from a journal:
// the Pareto front for the requested objectives, then for each front
// member the full ancestry tree — which operator produced it, in which
// wave, from which parents, and what the surrogate decided — ending in
// an operator-attribution summary of the whole front.
func lineageReport(out io.Writer, path string, objs []string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	recs, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("journal %s has no records", path)
	}
	byIdx := telemetry.LineageIndex(recs)

	// Rebuild the results in index order (map iteration would make the
	// report ordering run-dependent) and reduce to the front.
	idxs := make([]int, 0, len(byIdx))
	for idx := range byIdx {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	results := make([]core.Result, 0, len(idxs))
	strategies := make(map[string]bool)
	for _, idx := range idxs {
		rec := byIdx[idx]
		results = append(results, journalResult(rec))
		if rec.Origin != nil {
			strategies[rec.Origin.Strategy] = true
		}
	}
	front, _, err := core.ParetoSet(core.Feasible(results), objs)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(strategies))
	for s := range strategies {
		names = append(names, s)
	}
	sort.Strings(names)
	strategy := strings.Join(names, "+")
	if strategy == "" {
		strategy = "(no provenance)"
	}
	fmt.Fprintf(out, "lineage    %s: %d records, %d configurations, strategy %s\n",
		path, len(recs), len(byIdx), strategy)
	fmt.Fprintf(out, "front      %d members (objectives %s)\n", len(front), strings.Join(objs, ", "))

	frontIdx := make([]int, len(front))
	for i, m := range front {
		frontIdx[i] = m.Index
		rec := byIdx[m.Index]
		fmt.Fprintf(out, "\n#%-6d %s  [%s]", m.Index, strings.Join(m.Labels, ","), describeOrigin(rec.Origin))
		for _, obj := range objs {
			if v, ok := recordObjective(rec, obj); ok {
				fmt.Fprintf(out, "  %s=%.4g", obj, v)
			}
		}
		fmt.Fprintln(out)
		printAncestry(out, byIdx, m.Index, "  ", map[int]bool{m.Index: true})
	}

	fmt.Fprintf(out, "\nfront operators:")
	for _, oc := range telemetry.CountOps(byIdx, frontIdx) {
		fmt.Fprintf(out, "  %s %d", oc.Op, oc.Count)
	}
	fmt.Fprintln(out)
	return nil
}

// printAncestry renders idx's parents as a tree, recursing until the
// ancestry bottoms out in parentless origins. seen collapses shared
// ancestors: an index already expanded in this tree is listed but not
// expanded again, so diamonds (and cycles in damaged journals) stay
// finite.
func printAncestry(out io.Writer, byIdx map[int]telemetry.Record, idx int, prefix string, seen map[int]bool) {
	rec, ok := byIdx[idx]
	if !ok || rec.Origin == nil {
		return
	}
	parents := rec.Origin.Parents
	for i, p := range parents {
		glyph, cont := "├─ ", "│  "
		if i == len(parents)-1 {
			glyph, cont = "└─ ", "   "
		}
		expanded := seen[p]
		note := ""
		if expanded {
			note = "  (see above)"
		}
		fmt.Fprintf(out, "%s%s#%d %s%s\n", prefix, glyph, p, describeOrigin(byIdx[p].Origin), note)
		if expanded {
			continue
		}
		seen[p] = true
		printAncestry(out, byIdx, p, prefix+cont, seen)
	}
}

// describeOrigin renders one origin as "op wave N" plus the surrogate's
// decision when it made one.
func describeOrigin(o *telemetry.Origin) string {
	if o == nil {
		return "(no provenance)"
	}
	s := fmt.Sprintf("%s wave %d", o.Op, o.Wave)
	if o.SurrogateRank > 0 {
		s += fmt.Sprintf(", surrogate rank %d", o.SurrogateRank)
	}
	if o.Admit != "" {
		s += ", admit " + o.Admit
	}
	return s
}

// journalResult rebuilds the core result a journal record was written
// from — enough for feasibility filtering and Pareto reduction.
func journalResult(rec telemetry.Record) core.Result {
	res := core.Result{Index: rec.Index, Labels: rec.Labels}
	if rec.Error != "" {
		res.Err = fmt.Errorf("%s", rec.Error)
		return res
	}
	res.Metrics = &profile.Metrics{
		Accesses:       rec.Accesses,
		FootprintBytes: rec.FootprintBytes,
		EnergyNJ:       rec.EnergyNJ,
		Cycles:         rec.Cycles,
		Failures:       rec.Failures,
	}
	return res
}

// summarizeJournal digests a run journal: where the sweep's time went,
// what the cache did, which configurations failed and which were slow.
func summarizeJournal(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	recs, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		return err
	}
	d := telemetry.Digest(recs)
	fmt.Fprintf(out, "journal    %s: %d configurations\n", path, d.Records)
	fmt.Fprintf(out, "  cache    %d hits, %d memo hits\n", d.CacheHits, d.MemoHits)
	fmt.Fprintf(out, "  eval     %d composed (memo), %d partial, %d full\n",
		d.Composed, d.Incremental-d.Composed,
		d.Records-d.Incremental-d.CacheHits-d.MemoHits-d.Errors)
	fmt.Fprintf(out, "  time     %.2fs total worker time, slowest #%d at %.2fms\n",
		d.TotalSec, d.MaxIndex, d.MaxMS)
	fmt.Fprintf(out, "  outcome  %d errors, %d infeasible\n", d.Errors, d.Infeasible)
	surrogateAccuracy(out, recs, d)
	for _, r := range recs {
		if r.Error != "" {
			fmt.Fprintf(out, "    #%-6d %s\n", r.Index, r.Error)
		}
	}
	return nil
}

// surrogateAccuracy prints the surrogate-accuracy section of the journal
// summary: rank correlation and mean absolute error of the predictions
// journaled at submission time against the exact results measured on the
// same records. Nothing is printed for journals without predictions.
func surrogateAccuracy(out io.Writer, recs []telemetry.Record, d telemetry.JournalDigest) {
	preds := make(map[string][]float64)
	actuals := make(map[string][]float64)
	for _, r := range recs {
		if r.Error != "" || r.Failures > 0 || len(r.Predicted) == 0 {
			continue
		}
		for obj, p := range r.Predicted {
			a, ok := recordObjective(r, obj)
			if !ok {
				continue
			}
			preds[obj] = append(preds[obj], p)
			actuals[obj] = append(actuals[obj], a)
		}
	}
	if d.Predicted == 0 || len(preds) == 0 {
		return
	}
	objs := make([]string, 0, len(preds))
	for obj := range preds {
		objs = append(objs, obj)
	}
	sort.Strings(objs)
	fmt.Fprintf(out, "  surrogate %d of %d records carry predictions\n", d.Predicted, d.Records)
	for _, obj := range objs {
		fmt.Fprintf(out, "    %-10s Spearman %.3f, MAE %.4g over %d pairs\n",
			obj, stats.Spearman(preds[obj], actuals[obj]),
			stats.MeanAbsError(preds[obj], actuals[obj]), len(preds[obj]))
	}
}

// recordObjective reads the named objective off a journal record.
func recordObjective(r telemetry.Record, obj string) (float64, bool) {
	switch obj {
	case profile.ObjAccesses:
		return float64(r.Accesses), true
	case profile.ObjFootprint:
		return float64(r.FootprintBytes), true
	case profile.ObjEnergy:
		return r.EnergyNJ, true
	case profile.ObjCycles:
		return float64(r.Cycles), true
	}
	return 0, false
}
