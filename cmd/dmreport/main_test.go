package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmexplore/internal/core"
	"dmexplore/internal/profile"
	"dmexplore/internal/report"
	"dmexplore/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func writeSampleCSV(t *testing.T) string {
	t.Helper()
	results := []core.Result{
		{Index: 0, Labels: []string{"none", "single"}, Metrics: &profile.Metrics{
			ConfigLabel: "a", Accesses: 100, FootprintBytes: 5000,
			EnergyNJ: 10, Cycles: 1000, PeakRequestedBytes: 100,
		}},
		{Index: 1, Labels: []string{"d74", "pow2"}, Metrics: &profile.Metrics{
			ConfigLabel: "b", Accesses: 50, FootprintBytes: 9000,
			EnergyNJ: 7, Cycles: 900, PeakRequestedBytes: 100,
		}},
		{Index: 2, Labels: []string{"d74", "single"}, Metrics: &profile.Metrics{
			ConfigLabel: "c", Accesses: 200, FootprintBytes: 9500,
			EnergyNJ: 20, Cycles: 2000, PeakRequestedBytes: 100,
		}},
	}
	path := filepath.Join(t.TempDir(), "results.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteResultsCSV(f, []string{"pools", "classes"}, results); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportFromCSV(t *testing.T) {
	path := writeSampleCSV(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-axes", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "3 rows, 3 feasible") {
		t.Fatalf("output:\n%s", s)
	}
	// Config 2 is dominated by config 0: front is 2 configurations.
	if !strings.Contains(s, "Pareto front: 2 configurations") {
		t.Fatalf("front wrong:\n%s", s)
	}
}

func TestReportWritesFiles(t *testing.T) {
	path := writeSampleCSV(t)
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-axes", "2", "-out", dir,
		"-objectives", "energy,cycles"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"pareto.dat", "pareto.plt", "report.html", "summary.md"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestReportErrors(t *testing.T) {
	path := writeSampleCSV(t)
	cases := [][]string{
		{},            // no input
		{"-in", path}, // no axes
		{"-in", "/nonexistent", "-axes", "2"},
		{"-in", path, "-axes", "2", "-objectives", "accesses"},
		{"-in", path, "-axes", "5"}, // wrong axis count
		{"-in", path, "-axes", "2", "-objectives", "bogus,accesses"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestJournalSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := telemetry.NewJournal(f)
	j.Record(telemetry.Record{Index: 0, Labels: []string{"a", "b"}, DurationMS: 1.5, Accesses: 10})
	j.Record(telemetry.Record{Index: 3, Labels: []string{"c", "d"}, DurationMS: 4.5, CacheHit: true})
	j.Record(telemetry.Record{Index: 4, DurationMS: 0.8, Accesses: 11, Incremental: true, EventsSkipped: 900})
	j.Record(telemetry.Record{Index: 5, DurationMS: 0.1, Accesses: 12, Incremental: true, Composed: true, EventsSkipped: 1200})
	j.Record(telemetry.Record{Index: 7, Error: "configuration 7 [x y]: boom"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-journal", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"5 configurations", "1 hits", "1 errors", "slowest #3", "boom",
		"1 composed (memo), 1 partial, 1 full"} {
		if !strings.Contains(s, want) {
			t.Errorf("journal summary lacks %q:\n%s", want, s)
		}
	}
}

// TestJournalSurrogateGolden pins the full -journal output for a journal
// carrying surrogate predictions against a golden file: the accuracy
// section (Spearman rank correlation and MAE per objective, computed
// over records that have both a prediction and an exact feasible result)
// must render exactly as recorded.
func TestJournalSurrogateGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-journal", filepath.Join("testdata", "surrogate-journal.jsonl")}, &out); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "surrogate-journal.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Fatalf("journal summary diverged from golden file:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

// TestJournalSummaryNoPredictions guards the inverse: a journal without
// predictions must not grow a surrogate section.
func TestJournalSummaryNoPredictions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := telemetry.NewJournal(f)
	j.Record(telemetry.Record{Index: 0, DurationMS: 1, Accesses: 10})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-journal", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "surrogate") {
		t.Fatalf("surrogate section on a prediction-free journal:\n%s", out.String())
	}
}

func TestJournalSummaryMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-journal", "/nonexistent/journal.jsonl"}, &out); err == nil {
		t.Fatal("missing journal accepted")
	}
}

// TestLineageGolden pins `dmreport -lineage` against a recorded journal
// (testdata/journal.jsonl: a seeded surrogate-assisted NSGA-II run).
// The rendered ancestry trees are a contract — regenerate with
// `go test ./cmd/dmreport -run Lineage -update` after deliberate
// format changes.
func TestLineageGolden(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-lineage", "-journal", filepath.Join("testdata", "journal.jsonl"),
		"-objectives", "accesses,footprint",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()

	golden := filepath.Join("testdata", "lineage.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./cmd/dmreport -run Lineage -update)", err)
	}
	if got != string(want) {
		t.Fatalf("lineage output drifted from %s:\n%s", golden, got)
	}
}

// TestLineageTreesComplete verifies the semantics independently of the
// golden bytes: every front member is printed with its operator and
// every ancestor the journal knows about appears in its tree.
func TestLineageTreesComplete(t *testing.T) {
	path := filepath.Join("testdata", "journal.jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	byIdx := telemetry.LineageIndex(recs)

	var out bytes.Buffer
	if err := run([]string{"-lineage", "-journal", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"strategy nsga2", "front operators:", "surrogate rank", "admit"} {
		if !strings.Contains(s, want) {
			t.Fatalf("lineage output missing %q:\n%s", want, s)
		}
	}

	// Recompute the front exactly as the report does and check each
	// member's full ancestor closure is rendered.
	idxs := make([]int, 0, len(byIdx))
	for idx := range byIdx {
		idxs = append(idxs, idx)
	}
	results := make([]core.Result, 0, len(idxs))
	for _, rec := range byIdx {
		results = append(results, journalResult(rec))
	}
	front, _, err := core.ParetoSet(core.Feasible(results), []string{"accesses", "footprint"})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("recorded journal yields an empty front")
	}
	for _, m := range front {
		if !strings.Contains(s, fmt.Sprintf("#%-6d", m.Index)) {
			t.Errorf("front member #%d not reported", m.Index)
		}
		for _, anc := range telemetry.Ancestors(byIdx, m.Index) {
			if !strings.Contains(s, fmt.Sprintf("#%d ", anc)) {
				t.Errorf("ancestor #%d of #%d missing from the tree", anc, m.Index)
			}
		}
	}
}

func TestLineageRequiresJournal(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-lineage"}, &out); err == nil {
		t.Fatal("-lineage without -journal accepted")
	}
}
