// Command dmworker is one evaluation process of the distributed
// exploration service. It polls a dmserve coordinator for shard leases,
// evaluates them on the unchanged single-process stack and streams
// results back as they complete. Run as many as the fleet needs —
// workers are stateless; killing one only delays its shards until the
// lease expires and another worker steals them.
//
// Example:
//
//	dmworker -coordinator http://localhost:8710 -slots 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dmexplore/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "dmworker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dmworker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "http://localhost:8710", "coordinator base URL")
		id          = fs.String("id", "", "worker name in leases and journal records (default w<pid>)")
		slots       = fs.Int("slots", 1, "shards evaluated concurrently (island jobs need islands <= fleet's summed slots)")
		sessWorkers = fs.Int("session-workers", 0, "parallel simulations per job session (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &serve.Worker{
		Coordinator:    *coordinator,
		ID:             *id,
		Slots:          *slots,
		SessionWorkers: *sessWorkers,
	}
	fmt.Printf("dmworker: polling %s (slots %d)\n", *coordinator, *slots)
	return w.Run(ctx)
}
