// Command dmtrace generates, inspects and converts allocation traces.
//
// Examples:
//
//	dmtrace -workload easyport -o easyport.dmt            # binary trace (v2)
//	dmtrace -workload vtc -format text -o vtc.trace       # text trace
//	dmtrace -in easyport.dmt -stats                       # analyze a trace
//	dmtrace -in big.dmt -workers 8 -o big.trace -format text   # convert
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"dmexplore/internal/telemetry"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dmtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dmtrace", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "", "generate: workload name ("+strings.Join(workload.Names(), "|")+")")
		scale        = fs.Int("scale", 100, "generate: workload scale in percent")
		seed         = fs.Uint64("seed", 1, "generate: workload RNG seed")
		inPath       = fs.String("in", "", "inspect: read a trace file instead of generating")
		outPath      = fs.String("o", "", "write the trace to this file")
		format       = fs.String("format", "binary", "output format: binary|v2|v1|text (binary = v2)")
		workers      = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for reading block-framed (v2) traces")
		showStats    = fs.Bool("stats", false, "print trace statistics")
		validate     = fs.Bool("validate", true, "validate the trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *trace.Trace
	switch {
	case *inPath != "":
		ingest := telemetry.NewIngest()
		var err error
		tr, err = trace.ReadFile(*inPath, *workers, ingest)
		if err != nil {
			return err
		}
		if snap := ingest.Snapshot(); snap.Blocks > 0 {
			fmt.Fprintf(out, "ingest %s\n", snap)
		}
	case *workloadName != "":
		gen, err := workload.New(*workloadName, *seed, *scale)
		if err != nil {
			return err
		}
		tr, err = gen.Generate()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -workload to generate or -in to read a trace")
	}

	if *validate {
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("invalid trace: %w", err)
		}
	}

	fmt.Fprintf(out, "trace %s: %d events\n", tr.Name, tr.Len())
	if *showStats {
		printStats(out, tr)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		switch *format {
		case "binary", "v2":
			err = trace.WriteBinaryV2(f, tr)
		case "v1":
			err = trace.WriteBinary(f, tr)
		case "text":
			err = trace.WriteText(f, tr)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%s)\n", *outPath, *format)
	}
	return nil
}

func printStats(out io.Writer, tr *trace.Trace) {
	p := trace.Analyze(tr)
	fmt.Fprintf(out, "  allocs            %d\n", p.Allocs)
	fmt.Fprintf(out, "  frees             %d\n", p.Frees)
	fmt.Fprintf(out, "  access events     %d (%d words)\n", p.Accesses, p.AccessWords)
	fmt.Fprintf(out, "  cpu cycles        %d\n", p.TickCycles)
	fmt.Fprintf(out, "  peak live         %d bytes / %d blocks\n", p.PeakLiveBytes, p.PeakLiveBlocks)
	fmt.Fprintf(out, "  final live        %d bytes\n", p.FinalLiveBytes)
	fmt.Fprintf(out, "  size spectrum     %s\n", p.Sizes)
	fmt.Fprintf(out, "  dominant sizes    ")
	for i, vc := range p.DominantSizes(5) {
		if i > 0 {
			fmt.Fprint(out, ", ")
		}
		fmt.Fprintf(out, "%dB x%d", vc.Value, vc.Count)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "  lifetime p50/p90  %d / %d events\n",
		p.Lifetimes.Percentile(0.5), p.Lifetimes.Percentile(0.9))
}
