package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmexplore/internal/trace"
)

func TestGenerateAndStats(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "easyport", "-scale", "5", "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"trace easyport", "allocs", "peak live", "dominant sizes", "74B"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestWriteAndReadBack(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"binary", "text"} {
		path := filepath.Join(dir, "trace."+format)
		var out bytes.Buffer
		if err := run([]string{"-workload", "synthetic", "-scale", "5", "-format", format, "-o", path}, &out); err != nil {
			t.Fatalf("%s write: %v", format, err)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		out.Reset()
		if err := run([]string{"-in", path, "-stats"}, &out); err != nil {
			t.Fatalf("%s read: %v", format, err)
		}
		if !strings.Contains(out.String(), "allocs") {
			t.Fatalf("%s stats:\n%s", format, out.String())
		}
	}
}

func TestBinaryDenserOnDisk(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.dmt")
	txt := filepath.Join(dir, "t.trace")
	var out bytes.Buffer
	if err := run([]string{"-workload", "vtc", "-scale", "10", "-o", bin}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-workload", "vtc", "-scale", "10", "-format", "text", "-o", txt}, &out); err != nil {
		t.Fatal(err)
	}
	bi, _ := os.Stat(bin)
	ti, _ := os.Stat(txt)
	if bi.Size() >= ti.Size() {
		t.Fatalf("binary %d not denser than text %d", bi.Size(), ti.Size())
	}
}

// TestConvertRoundTripBitIdentical drives the CLI through every format
// conversion chain and pins that the events survive bit-identically:
// v2 -> text -> v1 -> v2 must reproduce the original event sequence.
func TestConvertRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	paths := map[string]string{
		"v2":   filepath.Join(dir, "a.dmt"),
		"text": filepath.Join(dir, "b.trace"),
		"v1":   filepath.Join(dir, "c.dmt"),
		"back": filepath.Join(dir, "d.dmt"),
	}
	var out bytes.Buffer
	if err := run([]string{"-workload", "easyport", "-scale", "5", "-o", paths["v2"]}, &out); err != nil {
		t.Fatal(err)
	}
	chain := [][2]string{
		{paths["v2"], "text"}, {paths["text"], "v1"}, {paths["v1"], "v2"},
	}
	dsts := []string{paths["text"], paths["v1"], paths["back"]}
	for i, step := range chain {
		if err := run([]string{"-in", step[0], "-format", step[1], "-o", dsts[i]}, &out); err != nil {
			t.Fatalf("convert %s -> %s: %v", step[0], step[1], err)
		}
	}
	want, err := trace.ReadFile(paths["v2"], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dsts {
		got, err := trace.ReadFile(p, 4, nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got.Name != want.Name || len(got.Events) != len(want.Events) {
			t.Fatalf("%s: shape diverged (%d events vs %d)", p, len(got.Events), len(want.Events))
		}
		for i := range got.Events {
			if got.Events[i] != want.Events[i] {
				t.Fatalf("%s: event %d diverged: %+v vs %+v", p, i, got.Events[i], want.Events[i])
			}
		}
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                          // neither -workload nor -in
		{"-workload", "nope"},       // unknown workload
		{"-in", "/nonexistent.dmt"}, // missing file
		{"-workload", "easyport", "-scale", "5", "-format", "nope", "-o", "/tmp/x"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
