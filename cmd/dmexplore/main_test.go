package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallExploration(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-sample", "24",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"explored 24 configurations",
		"Pareto-optimal configurations:",
		"accesses", "footprint", "energy", "cycles", "knee:",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWritesReports(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-workload", "vtc", "-scale", "10", "-quiet",
		"-sample", "16", "-out", dir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"results.csv", "pareto.dat", "pareto.plt", "summary.md", "report.html"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing report %s: %v", f, err)
		}
	}
}

func TestRunScreenStrategy(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-strategy", "screen", "-sample", "16", "-budget", "48",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "explored 48 configurations") {
		t.Fatalf("screen output:\n%s", out.String())
	}
}

func TestRunSpaceFile(t *testing.T) {
	spec := `{
	  "name": "cli-spec",
	  "base": {"general": {"layer": "main-dram", "classes": "single",
	    "fit": "first", "order": "lifo", "links": "single",
	    "split": "always", "coalesce": "immediate", "headers": "btag",
	    "growth": "chunk", "chunk_bytes": 8192}},
	  "axes": [{"name": "fit", "options": [
	    {"label": "first", "general": {"fit": "first"}},
	    {"label": "best", "general": {"fit": "best"}}]},
	   {"name": "order", "options": [
	    {"label": "lifo", "general": {"order": "lifo"}},
	    {"label": "addr", "general": {"order": "addr"}}]}]
	}`
	path := filepath.Join(t.TempDir(), "space.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-workload", "synthetic", "-scale", "10", "-quiet",
		"-spacefile", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cli-spec: 4 configurations") {
		t.Fatalf("spacefile output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "nope"},
		{"-hierarchy", "nope"},
		{"-objectives", "accesses"},
		{"-objectives", "accesses,bogus", "-scale", "5", "-sample", "4"},
		{"-strategy", "bogus"},
		{"-spacefile", "/nonexistent/space.json"},
		{"-space", "bogus"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(append(args, "-quiet"), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
