package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dmexplore/internal/serve"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/telemetry/span"
)

func TestRunSmallExploration(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-sample", "24",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"explored 24 configurations",
		"Pareto-optimal configurations:",
		"accesses", "footprint", "energy", "cycles", "knee:",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWritesReports(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-workload", "vtc", "-scale", "10", "-quiet",
		"-sample", "16", "-out", dir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"results.csv", "pareto.dat", "pareto.plt", "summary.md", "report.html"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing report %s: %v", f, err)
		}
	}
}

func TestRunScreenStrategy(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-strategy", "screen", "-sample", "16", "-budget", "48",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "explored 48 configurations") {
		t.Fatalf("screen output:\n%s", out.String())
	}
}

func TestRunSpaceFile(t *testing.T) {
	spec := `{
	  "name": "cli-spec",
	  "base": {"general": {"layer": "main-dram", "classes": "single",
	    "fit": "first", "order": "lifo", "links": "single",
	    "split": "always", "coalesce": "immediate", "headers": "btag",
	    "growth": "chunk", "chunk_bytes": 8192}},
	  "axes": [{"name": "fit", "options": [
	    {"label": "first", "general": {"fit": "first"}},
	    {"label": "best", "general": {"fit": "best"}}]},
	   {"name": "order", "options": [
	    {"label": "lifo", "general": {"order": "lifo"}},
	    {"label": "addr", "general": {"order": "addr"}}]}]
	}`
	path := filepath.Join(t.TempDir(), "space.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-workload", "synthetic", "-scale", "10", "-quiet",
		"-spacefile", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cli-spec: 4 configurations") {
		t.Fatalf("spacefile output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "nope"},
		{"-hierarchy", "nope"},
		{"-objectives", "accesses"},
		{"-objectives", "accesses,bogus", "-scale", "5", "-sample", "4"},
		{"-strategy", "bogus"},
		{"-spacefile", "/nonexistent/space.json"},
		{"-space", "bogus"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(append(args, "-quiet"), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunJournalAndSummary pins the acceptance contract: a -out run
// emits a parseable JSONL journal plus a run-summary.json whose
// per-configuration count and cache-hit totals match the sweep exactly —
// across a cold and a fully cached run.
func TestRunJournalAndSummary(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache.jsonl")
	runOnce := func(out string) {
		t.Helper()
		var buf bytes.Buffer
		err := run([]string{
			"-workload", "easyport", "-scale", "5", "-quiet",
			"-sample", "24", "-out", out, "-cache", cache,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
	}

	cold := filepath.Join(dir, "cold")
	runOnce(cold)
	f, err := os.Open(filepath.Join(cold, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 24 {
		t.Fatalf("cold journal has %d records", len(recs))
	}
	sum, err := telemetry.ReadRunSummary(filepath.Join(cold, "run-summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Configurations != 24 || sum.JournalRecords != 24 {
		t.Fatalf("cold summary: %+v", sum)
	}
	if sum.Telemetry.CacheHits != 0 || sum.Cache == nil || sum.Cache.Hits != 0 {
		t.Fatalf("cold summary cache: %+v %+v", sum.Telemetry, sum.Cache)
	}
	if got := int(sum.Telemetry.Sims + sum.Telemetry.CacheHits + sum.Telemetry.MemoHits); got != 24 {
		t.Fatalf("cold sweep unaccounted: %+v", sum.Telemetry)
	}

	warm := filepath.Join(dir, "warm")
	runOnce(warm)
	f, err = os.Open(filepath.Join(warm, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err = telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range recs {
		if r.CacheHit {
			hits++
		}
	}
	sum, err = telemetry.ReadRunSummary(filepath.Join(warm, "run-summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if hits != 24 || sum.Telemetry.CacheHits != 24 || sum.Cache.Hits != 24 {
		t.Fatalf("warm run: journal hits %d, telemetry %+v, cache %+v",
			hits, sum.Telemetry, sum.Cache)
	}
	if sum.Telemetry.Sims != 0 {
		t.Fatalf("warm run simulated: %+v", sum.Telemetry)
	}
}

// TestRunMetricsAddr boots the expvar/pprof endpoint on an ephemeral
// port and requires its address in the tool output.
func TestRunMetricsAddr(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-sample", "8", "-metrics-addr", "127.0.0.1:0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "/debug/vars") {
		t.Fatalf("metrics address not announced:\n%s", out.String())
	}
}

// TestRunProgressLine checks the rewritten reporter: a non-quiet run
// ends with a complete final progress line.
func TestRunProgressLine(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-sample", "16",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "profiled 16/16 (100%)") {
		t.Fatalf("final progress line missing:\n%s", s)
	}
	if !strings.Contains(s, "telemetry") {
		t.Fatalf("telemetry summary missing:\n%s", s)
	}
}

// TestRunTraceOutAndStageSummary pins the flight-recorder acceptance:
// -trace-out writes a Chrome trace-event JSON with events on every
// active ring, run-summary.json carries the per-stage breakdown, and
// the dominant stages account for the evaluation wall time.
func TestRunTraceOutAndStageSummary(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace.json")
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-sample", "24", "-workers", "2",
		"-out", dir, "-trace-out", tracePath,
		"-cache", filepath.Join(dir, "cache.jsonl"),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pipeline stages") {
		t.Fatalf("stage breakdown not printed:\n%s", out.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	events, dropped, err := span.ReadTrace(data)
	if err != nil {
		t.Fatalf("trace not loadable: %v", err)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d spans in a tiny run", dropped)
	}
	byStage := map[string]int{}
	for _, ev := range events {
		if ev.Phase == "X" {
			byStage[ev.Name]++
		}
	}
	for _, stage := range []string{"compile", "full-sim", "batch-wave", "cache-probe"} {
		if byStage[stage] == 0 {
			t.Fatalf("trace has no %q events: %v", stage, byStage)
		}
	}
	if byStage["full-sim"] != 24 {
		t.Fatalf("full-sim events %d, want 24", byStage["full-sim"])
	}

	sum, err := telemetry.ReadRunSummary(filepath.Join(dir, "run-summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Stages) == 0 || sum.Interrupted {
		t.Fatalf("summary stages %v interrupted %v", sum.Stages, sum.Interrupted)
	}
	stageSec := map[string]float64{}
	for _, st := range sum.Stages {
		if st.Count == 0 {
			t.Fatalf("summary carries an idle stage: %+v", st)
		}
		stageSec[st.Name] = st.Seconds
	}
	// The coordinator's batch wave encloses the whole evaluation: its
	// recorded time must be within the run's wall clock, and the sim
	// time within the wave time (cross-checked against the collector).
	if stageSec["batch-wave"] <= 0 || stageSec["batch-wave"] > sum.ElapsedSec {
		t.Fatalf("batch-wave %.4fs vs elapsed %.4fs", stageSec["batch-wave"], sum.ElapsedSec)
	}
	if stageSec["full-sim"] <= 0 || stageSec["full-sim"] > sum.Telemetry.SimSecTotal*1.05+0.001 {
		t.Fatalf("full-sim %.4fs vs telemetry sim %.4fs", stageSec["full-sim"], sum.Telemetry.SimSecTotal)
	}
}

// TestRunSigintFlushesJournal re-executes the test binary as a real
// dmexplore sweep (helper process below), interrupts it mid-run, and
// requires the journal tail, an Interrupted run summary and the span
// trace on disk — the flight recorder's crash-forensics contract.
func TestRunSigintFlushesJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperSlowSweep", "-test.v")
	cmd.Env = append(os.Environ(), "DMEXPLORE_HELPER_SWEEP=1", "DMEXPLORE_HELPER_DIR="+dir)
	var cmdOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &cmdOut, &cmdOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the sweep to be demonstrably underway: journal on disk
	// with a few flushed-or-buffered records behind it.
	journalPath := filepath.Join(dir, "journal.jsonl")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(journalPath); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("sweep never started:\n%s", cmdOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("exit %v (want code 130):\n%s", err, cmdOut.String())
	}

	// Every journal line must parse — an unflushed buffer would truncate
	// the tail mid-record.
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatalf("journal tail corrupt after SIGINT: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("journal empty after SIGINT")
	}
	for _, rec := range recs {
		if rec.Origin == nil {
			t.Fatalf("record %d lost its origin", rec.Index)
		}
	}

	sum, err := telemetry.ReadRunSummary(filepath.Join(dir, "run-summary.json"))
	if err != nil {
		t.Fatalf("no run summary after SIGINT: %v", err)
	}
	if !sum.Interrupted {
		t.Fatalf("summary not marked interrupted: %+v", sum)
	}
	if sum.Configurations == 0 || len(sum.Stages) == 0 {
		t.Fatalf("interrupted summary empty: %+v", sum)
	}

	data, err := os.ReadFile(filepath.Join(dir, "run.trace.json"))
	if err != nil {
		t.Fatalf("no trace after SIGINT: %v", err)
	}
	events, _, err := span.ReadTrace(data)
	if err != nil || len(events) == 0 {
		t.Fatalf("trace after SIGINT: %d events, err %v", len(events), err)
	}
}

// TestHelperSlowSweep is not a test: it is the child process body for
// TestRunSigintFlushesJournal — a deliberately slow sweep (modelled
// backend latency) that the parent interrupts.
func TestHelperSlowSweep(t *testing.T) {
	if os.Getenv("DMEXPLORE_HELPER_SWEEP") != "1" {
		t.Skip("helper process body")
	}
	dir := os.Getenv("DMEXPLORE_HELPER_DIR")
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-sample", "256", "-workers", "2", "-eval-latency", "25ms",
		"-out", dir, "-trace-out", filepath.Join(dir, "run.trace.json"),
	}, io.Discard)
	// The signal handler exits 130 before run returns; reaching here
	// means the parent never interrupted us.
	t.Fatalf("sweep ran to completion (err=%v)", err)
}

func TestRunHillClimbAndAnnealStrategies(t *testing.T) {
	for _, strategy := range []string{"hillclimb", "anneal"} {
		var out bytes.Buffer
		err := run([]string{
			"-workload", "easyport", "-scale", "5", "-quiet",
			"-strategy", strategy, "-budget", "40",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		s := out.String()
		if !strings.Contains(s, strategy+" best: config #") {
			t.Fatalf("%s output missing best line:\n%s", strategy, s)
		}
		if !strings.Contains(s, "Pareto-optimal configurations:") {
			t.Fatalf("%s output missing front summary:\n%s", strategy, s)
		}
	}
}

func TestValidateFlagRejectsContradictions(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"surrogate-warm alone", []string{"-surrogate-warm", "j.jsonl"}, "-surrogate-warm requires -surrogate"},
		{"pool-memo alone", []string{"-pool-memo", "m.jsonl"}, "-pool-memo requires -incremental"},
		{"partition budget alone", []string{"-partition-cache-mb", "64"}, "-partition-cache-mb only applies with -incremental"},
		{"pool memo budget alone", []string{"-pool-memo-mb", "64"}, "-pool-memo-mb only applies with -incremental"},
		{"budget on exhaustive", []string{"-budget", "100"}, "-budget has no effect with -strategy exhaustive"},
		{"sample on hillclimb", []string{"-strategy", "hillclimb", "-sample", "10"}, "-sample is not used"},
		{"negative latency", []string{"-eval-latency", "-5ms"}, "-eval-latency must be >= 0"},
		{"duplicate objectives", []string{"-objectives", "accesses,accesses"}, "duplicate objective"},
		{"islands without submit", []string{"-strategy", "evolve", "-islands", "4"}, "-islands only applies with -submit"},
		{"migrate-every without submit", []string{"-strategy", "evolve", "-migrate-every", "2"}, "-migrate-every only applies with -submit"},
		{"submit with cache", []string{"-submit", "http://x", "-cache", "c.jsonl"}, "-cache is local-only"},
		{"submit with surrogate", []string{"-submit", "http://x", "-strategy", "evolve", "-surrogate"}, "-surrogate is local-only"},
		{"submit with trace", []string{"-submit", "http://x", "-trace", "t.bin"}, "-trace is local-only"},
		{"submit with guided local strategy", []string{"-submit", "http://x", "-strategy", "anneal"}, "-submit supports -strategy exhaustive|evolve"},
		{"submit with auto space", []string{"-submit", "http://x", "-space", "auto"}, "-space auto is local-only"},
		{"islands on submitted sweep", []string{"-submit", "http://x", "-islands", "4"}, "-islands requires -strategy evolve"},
		{"zero islands", []string{"-submit", "http://x", "-strategy", "evolve", "-islands", "0"}, "-islands must be >= 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("args %v: error %q, want it to mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestRunPoolMemoPersists runs the same incremental sweep twice sharing
// a -pool-memo file: the second invocation must load the first's runs.
func TestRunPoolMemoPersists(t *testing.T) {
	memo := filepath.Join(t.TempDir(), "memo.jsonl")
	args := []string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-sample", "32", "-incremental", "-pool-memo", memo,
	}
	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "pool-memo  "+memo+" (0 runs)") {
		t.Fatalf("first run did not start from an empty memo:\n%s", first.String())
	}
	if _, err := os.Stat(memo); err != nil {
		t.Fatalf("first run saved no memo: %v", err)
	}
	var second bytes.Buffer
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	s := second.String()
	if strings.Contains(s, "(0 runs)") || !strings.Contains(s, "pool-memo  "+memo) {
		t.Fatalf("second run did not load the persisted memo:\n%s", s)
	}
}

// TestRunSubmitMode drives the full service path through the CLI: an
// in-process coordinator and worker, a submitted island search, the
// followed journal written to -out.
func TestRunSubmitMode(t *testing.T) {
	coord, err := serve.NewCoordinator(serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	w := &serve.Worker{Coordinator: srv.URL, ID: "cli-test", Slots: 2, SessionWorkers: 2, Poll: 10 * time.Millisecond}
	go func() {
		defer close(workerDone)
		_ = w.Run(ctx)
	}()
	defer func() {
		cancel()
		<-workerDone
	}()

	dir := t.TempDir()
	var out bytes.Buffer
	err = run([]string{
		"-submit", srv.URL, "-strategy", "evolve",
		"-workload", "easyport", "-scale", "5",
		"-sample", "8", "-budget", "64", "-sample-seed", "11",
		"-islands", "2", "-migrate-every", "2",
		"-out", dir, "-quiet",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"submitted  job", "done in", "Pareto-optimal configurations:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("submit output missing %q:\n%s", want, s)
		}
	}
	jf, err := os.Open(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(jf)
	jf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("followed journal is empty")
	}
	islands := map[int]bool{}
	for _, rec := range recs {
		if rec.Worker != "cli-test" {
			t.Fatalf("record missing worker stamp: %+v", rec)
		}
		islands[rec.Island] = true
	}
	if !islands[1] || !islands[2] {
		t.Fatalf("journal missing island stamps: %v", islands)
	}
}
