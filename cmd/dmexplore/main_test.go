package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmexplore/internal/telemetry"
)

func TestRunSmallExploration(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-sample", "24",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"explored 24 configurations",
		"Pareto-optimal configurations:",
		"accesses", "footprint", "energy", "cycles", "knee:",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWritesReports(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-workload", "vtc", "-scale", "10", "-quiet",
		"-sample", "16", "-out", dir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"results.csv", "pareto.dat", "pareto.plt", "summary.md", "report.html"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing report %s: %v", f, err)
		}
	}
}

func TestRunScreenStrategy(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-strategy", "screen", "-sample", "16", "-budget", "48",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "explored 48 configurations") {
		t.Fatalf("screen output:\n%s", out.String())
	}
}

func TestRunSpaceFile(t *testing.T) {
	spec := `{
	  "name": "cli-spec",
	  "base": {"general": {"layer": "main-dram", "classes": "single",
	    "fit": "first", "order": "lifo", "links": "single",
	    "split": "always", "coalesce": "immediate", "headers": "btag",
	    "growth": "chunk", "chunk_bytes": 8192}},
	  "axes": [{"name": "fit", "options": [
	    {"label": "first", "general": {"fit": "first"}},
	    {"label": "best", "general": {"fit": "best"}}]},
	   {"name": "order", "options": [
	    {"label": "lifo", "general": {"order": "lifo"}},
	    {"label": "addr", "general": {"order": "addr"}}]}]
	}`
	path := filepath.Join(t.TempDir(), "space.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-workload", "synthetic", "-scale", "10", "-quiet",
		"-spacefile", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cli-spec: 4 configurations") {
		t.Fatalf("spacefile output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "nope"},
		{"-hierarchy", "nope"},
		{"-objectives", "accesses"},
		{"-objectives", "accesses,bogus", "-scale", "5", "-sample", "4"},
		{"-strategy", "bogus"},
		{"-spacefile", "/nonexistent/space.json"},
		{"-space", "bogus"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(append(args, "-quiet"), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunJournalAndSummary pins the acceptance contract: a -out run
// emits a parseable JSONL journal plus a run-summary.json whose
// per-configuration count and cache-hit totals match the sweep exactly —
// across a cold and a fully cached run.
func TestRunJournalAndSummary(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache.jsonl")
	runOnce := func(out string) {
		t.Helper()
		var buf bytes.Buffer
		err := run([]string{
			"-workload", "easyport", "-scale", "5", "-quiet",
			"-sample", "24", "-out", out, "-cache", cache,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
	}

	cold := filepath.Join(dir, "cold")
	runOnce(cold)
	f, err := os.Open(filepath.Join(cold, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 24 {
		t.Fatalf("cold journal has %d records", len(recs))
	}
	sum, err := telemetry.ReadRunSummary(filepath.Join(cold, "run-summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Configurations != 24 || sum.JournalRecords != 24 {
		t.Fatalf("cold summary: %+v", sum)
	}
	if sum.Telemetry.CacheHits != 0 || sum.Cache == nil || sum.Cache.Hits != 0 {
		t.Fatalf("cold summary cache: %+v %+v", sum.Telemetry, sum.Cache)
	}
	if got := int(sum.Telemetry.Sims + sum.Telemetry.CacheHits + sum.Telemetry.MemoHits); got != 24 {
		t.Fatalf("cold sweep unaccounted: %+v", sum.Telemetry)
	}

	warm := filepath.Join(dir, "warm")
	runOnce(warm)
	f, err = os.Open(filepath.Join(warm, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err = telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range recs {
		if r.CacheHit {
			hits++
		}
	}
	sum, err = telemetry.ReadRunSummary(filepath.Join(warm, "run-summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if hits != 24 || sum.Telemetry.CacheHits != 24 || sum.Cache.Hits != 24 {
		t.Fatalf("warm run: journal hits %d, telemetry %+v, cache %+v",
			hits, sum.Telemetry, sum.Cache)
	}
	if sum.Telemetry.Sims != 0 {
		t.Fatalf("warm run simulated: %+v", sum.Telemetry)
	}
}

// TestRunMetricsAddr boots the expvar/pprof endpoint on an ephemeral
// port and requires its address in the tool output.
func TestRunMetricsAddr(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-quiet",
		"-sample", "8", "-metrics-addr", "127.0.0.1:0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "/debug/vars") {
		t.Fatalf("metrics address not announced:\n%s", out.String())
	}
}

// TestRunProgressLine checks the rewritten reporter: a non-quiet run
// ends with a complete final progress line.
func TestRunProgressLine(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "easyport", "-scale", "5", "-sample", "16",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "profiled 16/16 (100%)") {
		t.Fatalf("final progress line missing:\n%s", s)
	}
	if !strings.Contains(s, "telemetry") {
		t.Fatalf("telemetry summary missing:\n%s", s)
	}
}

func TestRunHillClimbAndAnnealStrategies(t *testing.T) {
	for _, strategy := range []string{"hillclimb", "anneal"} {
		var out bytes.Buffer
		err := run([]string{
			"-workload", "easyport", "-scale", "5", "-quiet",
			"-strategy", strategy, "-budget", "40",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		s := out.String()
		if !strings.Contains(s, strategy+" best: config #") {
			t.Fatalf("%s output missing best line:\n%s", strategy, s)
		}
		if !strings.Contains(s, "Pareto-optimal configurations:") {
			t.Fatalf("%s output missing front summary:\n%s", strategy, s)
		}
	}
}
