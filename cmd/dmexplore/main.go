// Command dmexplore runs the automated exploration of dynamic-memory
// allocator configurations for a workload on a target memory hierarchy,
// reduces the sweep to its Pareto-optimal set and emits CSV/Gnuplot
// reports — the end-to-end flow of the paper's tool.
//
// Examples:
//
//	dmexplore -workload easyport -space narrow -out results/
//	dmexplore -workload vtc -sample 2000 -space full
//	dmexplore -workload easyport -objectives energy,cycles
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/pareto"
	"dmexplore/internal/profile"
	"dmexplore/internal/report"
	"dmexplore/internal/serve"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/telemetry/span"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dmexplore:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dmexplore", flag.ContinueOnError)
	var (
		workloadName  = fs.String("workload", "easyport", "workload: "+strings.Join(workload.Names(), "|"))
		scale         = fs.Int("scale", 100, "workload scale in percent of the default trace length")
		seed          = fs.Uint64("seed", 1, "workload RNG seed")
		spaceKind     = fs.String("space", "narrow", "configuration space: narrow|full|auto (auto derives pools from the workload's profile)")
		spaceFile     = fs.String("spacefile", "", "JSON space specification file (overrides -space)")
		sample        = fs.Int("sample", 0, "profile only N sampled configurations (0 = exhaustive)")
		sampleSeed    = fs.Uint64("sample-seed", 1, "sampling RNG seed")
		strategy      = fs.String("strategy", "exhaustive", "search strategy: exhaustive|screen|evolve|hillclimb|anneal (-sample = screening size / population, -budget = total simulations)")
		budget        = fs.Int("budget", 0, "screen strategy: total simulation budget")
		objectives    = fs.String("objectives", "accesses,footprint", "comma-separated minimization objectives")
		hierName      = fs.String("hierarchy", "soc", "memory hierarchy: soc|soc3|flat")
		workers       = fs.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		outDir        = fs.String("out", "", "directory for CSV/Gnuplot reports (none when empty)")
		cachePath     = fs.String("cache", "", "results cache file: resume interrupted sweeps, skip repeated configurations")
		tracePath     = fs.String("trace", "", "replay a trace file instead of generating the workload")
		incremental   = fs.Bool("incremental", false, "partial re-evaluation: configurations sharing a fixed-pool signature replay only the ops that reach the general pool (bit-identical results)")
		partitionMB   = fs.Int("partition-cache-mb", 256, "incremental partition-cache budget in MiB (0 = unbounded)")
		poolMemoMB    = fs.Int("pool-memo-mb", 128, "incremental pool-run memo budget in MiB (0 = unbounded)")
		surrogate     = fs.Bool("surrogate", false, "surrogate-assisted screening: rank candidates with online per-objective models so guided strategies spend the budget on the most promising simulations")
		surrogateWarm = fs.String("surrogate-warm", "", "warm-start the surrogate from a prior journal.jsonl (same space and workload)")
		quiet         = fs.Bool("quiet", false, "suppress progress output")
		metricsAddr   = fs.String("metrics-addr", "", "serve Prometheus /metrics, /healthz, expvar and pprof at this address, e.g. localhost:6060")
		traceOut      = fs.String("trace-out", "", "write the pipeline flight recorder as Chrome trace-event JSON (load in Perfetto) to this file")
		evalLatency   = fs.Duration("eval-latency", 0, "model a per-simulation backend latency, e.g. 2ms (cache/memo hits skip it)")
		poolMemoPath  = fs.String("pool-memo", "", "pool-run memo file: persist the incremental general-pool replay memo across invocations")
		submitURL     = fs.String("submit", "", "submit the job to a dmserve coordinator at this URL and follow its journal instead of running locally")
		islands       = fs.Int("islands", 1, "submit mode, evolve strategy: NSGA-II islands (shards), exchanging front members through the coordinator")
		migrateEvery  = fs.Int("migrate-every", 0, "submit mode: generations between migrations (0 = default)")
		migrateK      = fs.Int("migrate-k", 0, "submit mode: immigrants per migration (0 = population/4)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(fs); err != nil {
		return err
	}

	if *submitURL != "" {
		spec := serve.JobSpec{
			Workload:      *workloadName,
			WorkloadSeed:  *seed,
			Scale:         *scale,
			Space:         *spaceKind,
			Hierarchy:     *hierName,
			Objectives:    splitObjectives(*objectives),
			Incremental:   *incremental,
			EvalLatencyMS: float64(*evalLatency) / float64(time.Millisecond),
		}
		if *strategy == "evolve" {
			spec.Strategy = "nsga2"
			pop := *sample
			if pop <= 0 {
				pop = 32
			}
			if pop%2 != 0 {
				pop++
			}
			total := *budget
			if total <= 0 {
				total = 16 * pop
			}
			// dmexplore's -budget is the job total; the spec's budget is
			// per island, so the fleet spends the same total regardless of
			// how many islands split it.
			spec.Population = pop
			spec.Budget = total / *islands
			spec.Seed = *sampleSeed
			spec.Islands = *islands
			spec.MigrationEvery = *migrateEvery
			spec.MigrationK = *migrateK
		} else {
			spec.Strategy = "sweep"
			spec.Sample = *sample
			spec.SampleSeed = *sampleSeed
		}
		return runSubmit(out, *submitURL, spec, *outDir)
	}

	hier, err := pickHierarchy(*hierName)
	if err != nil {
		return err
	}
	workerN := *workers
	if workerN <= 0 {
		workerN = runtime.GOMAXPROCS(0)
	}
	// The flight recorder is opt-in: tracing costs nothing measurable,
	// but the overhead gate (make bench-observe) compares against a run
	// with no recorder attached at all. Created before ingest/compile so
	// those stages land spans too.
	var spans *span.Recorder
	if *traceOut != "" || *metricsAddr != "" {
		spans = span.NewRecorder(workerN, span.DefaultRingCapacity)
	}
	var tr *trace.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		ingestStart := time.Now()
		tr, err = trace.ReadAuto(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("trace %s: %w", *tracePath, err)
		}
		if spans != nil {
			spans.Coord().Since(span.StageTraceIngest, ingestStart, int64(tr.Len()))
		}
	} else {
		gen, err := workload.New(*workloadName, *seed, *scale)
		if err != nil {
			return err
		}
		tr, err = gen.Generate()
		if err != nil {
			return err
		}
	}
	var space *core.Space
	if *spaceKind == "auto" && *spaceFile == "" {
		prof := trace.Analyze(tr)
		space, err = core.SuggestSpace(*workloadName+"-auto", prof, hier)
		if err != nil {
			return err
		}
	} else if *spaceFile != "" {
		f, err := os.Open(*spaceFile)
		if err != nil {
			return err
		}
		space, err = core.LoadSpaceSpec(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		space, err = pickSpace(*workloadName, *spaceKind)
		if err != nil {
			return err
		}
	}
	objs := splitObjectives(*objectives)
	if len(objs) < 2 {
		return fmt.Errorf("need at least two objectives, got %q", *objectives)
	}

	fmt.Fprintf(out, "workload   %s (%d events)\n", tr.Name, tr.Len())
	fmt.Fprintf(out, "hierarchy  %s\n", hier)
	fmt.Fprintf(out, "space      %s: %d configurations", space.Name, space.Size())
	if *sample > 0 && *sample < space.Size() {
		fmt.Fprintf(out, " (sampling %d)", *sample)
	}
	fmt.Fprintln(out)

	// Compile the trace once up front: every configuration the sweep
	// profiles replays the same compiled form.
	compileStart := time.Now()
	ct, err := trace.Compile(tr)
	if err != nil {
		return err
	}
	if spans != nil {
		spans.Coord().Since(span.StageCompile, compileStart, int64(tr.Len()))
	}
	col := telemetry.NewCollector(workerN)
	runner := &core.Runner{Hierarchy: hier, Trace: tr, Compiled: ct, Workers: *workers, Telemetry: col, Incremental: *incremental, EvalLatency: *evalLatency, Spans: spans,
		PartitionBudgetBytes: cacheBudgetBytes(*partitionMB),
		PoolMemoBudgetBytes:  cacheBudgetBytes(*poolMemoMB)}
	var surReport *core.SurrogateReport
	if *surrogate {
		surReport = &core.SurrogateReport{}
		runner.Surrogate = &core.SurrogateOptions{Report: surReport}
		if *surrogateWarm != "" {
			wf, err := os.Open(*surrogateWarm)
			if err != nil {
				return err
			}
			warm, err := telemetry.ReadJournal(wf)
			wf.Close()
			if err != nil {
				return err
			}
			runner.Surrogate.WarmStart = warm
			fmt.Fprintf(out, "surrogate  warm start from %s (%d records)\n", *surrogateWarm, len(warm))
		}
	}
	if *poolMemoPath != "" {
		store, err := core.OpenPoolMemoStore(*poolMemoPath, cacheBudgetBytes(*poolMemoMB))
		if err != nil {
			return err
		}
		runner.PoolMemo = store
		fmt.Fprintf(out, "pool-memo  %s (%d runs)\n", *poolMemoPath, store.Len())
		defer func() {
			if err := store.Save(); err != nil {
				fmt.Fprintf(out, "warning: saving pool memo: %v\n", err)
			}
		}()
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, col, spans)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "metrics    http://%s/metrics (expvar at /debug/vars, pprof at /debug/pprof/)\n", srv.Addr)
	}
	if *cachePath != "" {
		cache, err := core.OpenResultsCache(*cachePath)
		if err != nil {
			return err
		}
		runner.Cache = cache
		col.AddCacheStale(cache.Stats().Stale)
		fmt.Fprintf(out, "cache      %s (%d entries)\n", *cachePath, cache.Len())
		defer func() {
			if err := cache.Save(); err != nil {
				fmt.Fprintf(out, "warning: saving cache: %v\n", err)
			}
		}()
	}
	var journal *telemetry.Journal
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		journal, err = telemetry.CreateJournal(filepath.Join(*outDir, "journal.jsonl"))
		if err != nil {
			return err
		}
		defer journal.Close()
		// The journal is the sweep's flight recorder: one line per
		// configuration, appended as workers complete them, so an
		// interrupted run still explains itself.
		runner.Observer = func(res core.Result) {
			_ = journal.Record(res.JournalRecord())
		}
	}
	if !*quiet {
		runner.Progress = telemetry.NewProgress(out, col, 0).Update
	}

	start := time.Now()
	// An interrupted sweep must still explain itself: on SIGINT/SIGTERM
	// flush the journal tail, write an Interrupted run summary and the
	// span trace, then exit 128+signal like a shell would. The Once makes
	// the normal completion path and the signal path mutually exclusive.
	var finalizeOnce sync.Once
	writeTrace := func() {
		if *traceOut == "" || spans == nil {
			return
		}
		if err := spans.WriteTraceFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "dmexplore: writing trace: %v\n", err)
		}
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() {
		// Stop guarantees no further sends, so the close below cleanly
		// unblocks the handler goroutine when run returns normally.
		signal.Stop(sigc)
		close(sigc)
	}()
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		finalizeOnce.Do(func() {
			if journal != nil {
				_ = journal.Flush()
			}
			if *outDir != "" {
				snap := col.Snapshot()
				sum := telemetry.RunSummary{
					Tool:           "dmexplore",
					Workload:       tr.Name,
					Space:          space.Name,
					Strategy:       *strategy,
					Objectives:     objs,
					Configurations: int(snap.Done()),
					ElapsedSec:     time.Since(start).Seconds(),
					Telemetry:      snap,
					Stages:         activeStages(spans),
					Interrupted:    true,
				}
				if journal != nil {
					sum.JournalRecords = journal.Len()
				}
				_ = telemetry.WriteRunSummary(filepath.Join(*outDir, "run-summary.json"), sum)
			}
			writeTrace()
			fmt.Fprintf(os.Stderr, "dmexplore: interrupted (%v), journal flushed\n", sig)
		})
		code := 130
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()
	var results []core.Result
	switch {
	case *strategy == "screen":
		screen := *sample
		if screen <= 0 {
			screen = 64
		}
		total := *budget
		if total <= 0 {
			total = 4 * screen
		}
		results, err = runner.ScreenAndRefine(space, objs, screen, total, *sampleSeed)
	case *strategy == "evolve":
		pop := *sample
		if pop <= 0 {
			pop = 32
		}
		if pop%2 != 0 {
			pop++
		}
		total := *budget
		if total <= 0 {
			total = 16 * pop
		}
		results, err = runner.Evolve(space, objs, core.EvolveOptions{
			Population: pop, Budget: total, Seed: *sampleSeed,
		})
	case *strategy == "hillclimb" || *strategy == "anneal":
		total := *budget
		if total <= 0 {
			total = 256
		}
		// The single-solution searches scalarize the objectives with
		// equal weights; -objectives still picks which metrics count.
		weights := make([]core.Weighted, len(objs))
		for i, obj := range objs {
			weights[i] = core.Weighted{Objective: obj, Weight: 1}
		}
		var sr *core.SearchResult
		if *strategy == "hillclimb" {
			sr, err = runner.HillClimb(space, weights, total, *sampleSeed)
		} else {
			sr, err = runner.Anneal(space, weights, total, *sampleSeed)
		}
		if err == nil {
			results = sr.Evaluated
			fmt.Fprintf(out, "\n%s best: config #%d %s (score %.4g)\n",
				*strategy, sr.Best.Index, strings.Join(sr.Best.Labels, ","), sr.BestScore)
		}
	case *strategy != "exhaustive":
		return fmt.Errorf("unknown strategy %q", *strategy)
	case *sample > 0:
		results, err = runner.Sample(space, *sample, *sampleSeed)
	default:
		results, err = runner.Explore(space)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	snap := col.Snapshot()

	feasible := core.Feasible(results)
	front, points, err := core.ParetoSet(feasible, objs)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "\nexplored %d configurations in %v (%d feasible)\n",
		len(results), elapsed.Round(time.Millisecond), len(feasible))
	fmt.Fprintf(out, "telemetry  %s\n", snap)
	if surReport != nil {
		if surReport.Trained == 0 {
			fmt.Fprintf(out, "surrogate  unused (only the guided strategies screen: screen|evolve|hillclimb|anneal)\n")
		} else {
			fmt.Fprintf(out, "surrogate  trained on %d results, scored %d candidates, screened out %d\n",
				surReport.Trained, surReport.Predictions, surReport.ScreenedOut)
			for _, obj := range objs {
				if mae, ok := surReport.MAE[obj]; ok {
					fmt.Fprintf(out, "  %-10s Spearman %.3f, MAE %.4g (%d prediction/exact pairs)\n",
						obj, surReport.Spearman[obj], mae, surReport.Pairs)
				}
			}
		}
	}
	for _, obj := range objs {
		r, err := core.Range(feasible, obj)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-10s range %.4g .. %.4g  (factor %.1f)\n", obj, r.Min, r.Max, r.Factor)
	}
	fmt.Fprintf(out, "\nPareto-optimal configurations: %d\n", len(front))
	for _, obj := range objs {
		f, err := core.ParetoImprovement(front, obj)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-10s trade-off factor %.2f (up to %.1f%% reduction within the front)\n",
			obj, f, core.ReductionPercent(f))
	}
	// The paper's §3 also reports how much energy and execution time vary
	// across the Pareto set even when they are not the front's objectives
	// (picking the right trade-off point saves energy/time too).
	for _, extra := range []string{profile.ObjEnergy, profile.ObjCycles} {
		if contains(objs, extra) {
			continue
		}
		f, err := core.ParetoImprovement(front, extra)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-10s varies by factor %.2f across the front (up to %.2f%% reduction)\n",
			extra, f, core.ReductionPercent(f))
	}
	if k := pareto.Knee(points); k >= 0 && len(front) > 0 {
		knee := front[min(k, len(front)-1)]
		fmt.Fprintf(out, "  knee: config %d %v\n", knee.Index, knee.Labels)
	}
	if spans != nil {
		fmt.Fprintln(out, "\npipeline stages (spans, total time):")
		for _, st := range activeStages(spans) {
			fmt.Fprintf(out, "  %-16s %8d %10.3fs\n", st.Name, st.Count, st.Seconds)
		}
		if d := spans.Dropped(); d > 0 {
			fmt.Fprintf(out, "  (%d spans dropped: per-worker ring wrapped)\n", d)
		}
	}
	fmt.Fprintln(out, "\nfront (index, labels, objectives):")
	for _, r := range front {
		fmt.Fprintf(out, "  #%-6d %-60s", r.Index, strings.Join(r.Labels, ","))
		for _, obj := range objs {
			v, _ := r.Metrics.Objective(obj)
			fmt.Fprintf(out, " %s=%.4g", obj, v)
		}
		fmt.Fprintln(out)
	}

	if *outDir != "" {
		if err := writeReports(*outDir, space, results, feasible, front, objs); err != nil {
			return err
		}
	}
	var finErr error
	finalizeOnce.Do(func() {
		if *outDir != "" {
			journalRecords := journal.Len()
			if err := journal.Close(); err != nil {
				finErr = fmt.Errorf("closing journal: %w", err)
				return
			}
			sum := telemetry.RunSummary{
				Tool:           "dmexplore",
				Workload:       tr.Name,
				Space:          space.Name,
				Strategy:       *strategy,
				Objectives:     objs,
				Configurations: len(results),
				Feasible:       len(feasible),
				ParetoFront:    len(front),
				JournalRecords: journalRecords,
				ElapsedSec:     elapsed.Seconds(),
				Telemetry:      snap,
				Stages:         activeStages(spans),
			}
			if runner.Cache != nil {
				cs := runner.Cache.Stats()
				sum.Cache = &telemetry.CacheSummary{
					Path:    *cachePath,
					Entries: runner.Cache.Len(),
					Hits:    cs.Hits,
					Misses:  cs.Misses,
					Stale:   cs.Stale,
				}
			}
			if finErr = telemetry.WriteRunSummary(filepath.Join(*outDir, "run-summary.json"), sum); finErr != nil {
				return
			}
			fmt.Fprintf(out, "\nreports written to %s\n", *outDir)
		}
		writeTrace()
	})
	if finErr != nil {
		return finErr
	}
	if *traceOut != "" {
		fmt.Fprintf(out, "trace      %s (load at https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	return nil
}

// validateFlags rejects contradictory flag combinations up front with an
// error naming the conflict, instead of silently ignoring one side.
// Only flags the user explicitly set (fs.Visit) count — defaults never
// conflict.
func validateFlags(fs *flag.FlagSet) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	val := func(name string) string { return fs.Lookup(name).Value.String() }
	on := func(name string) bool { return val(name) == "true" }

	if set["surrogate-warm"] && !on("surrogate") {
		return fmt.Errorf("-surrogate-warm requires -surrogate")
	}
	if set["pool-memo"] && !on("incremental") {
		return fmt.Errorf("-pool-memo requires -incremental (the memo stores incremental general-pool replays)")
	}
	for _, name := range []string{"partition-cache-mb", "pool-memo-mb"} {
		if set[name] && !on("incremental") {
			return fmt.Errorf("-%s only applies with -incremental", name)
		}
	}
	strategy := val("strategy")
	if set["budget"] && strategy == "exhaustive" {
		return fmt.Errorf("-budget has no effect with -strategy exhaustive (use screen|evolve|hillclimb|anneal)")
	}
	if set["sample"] && (strategy == "hillclimb" || strategy == "anneal") {
		return fmt.Errorf("-sample is not used by -strategy %s (its budget is -budget)", strategy)
	}
	if d, err := time.ParseDuration(val("eval-latency")); err == nil && d < 0 {
		return fmt.Errorf("-eval-latency must be >= 0, got %v", d)
	}
	seen := map[string]bool{}
	for _, obj := range splitObjectives(val("objectives")) {
		if seen[obj] {
			return fmt.Errorf("duplicate objective %q in -objectives", obj)
		}
		seen[obj] = true
	}
	if set["submit"] {
		for _, name := range []string{"trace", "spacefile", "cache", "surrogate", "surrogate-warm", "metrics-addr", "trace-out", "pool-memo", "workers"} {
			if set[name] {
				return fmt.Errorf("-%s is local-only and cannot be combined with -submit", name)
			}
		}
		if strategy != "exhaustive" && strategy != "evolve" {
			return fmt.Errorf("-submit supports -strategy exhaustive|evolve, not %q", strategy)
		}
		if val("space") == "auto" {
			return fmt.Errorf("-space auto is local-only; submitted jobs name a fixed space (narrow|full)")
		}
		if set["islands"] {
			if n, err := strconv.Atoi(val("islands")); err != nil || n < 1 {
				return fmt.Errorf("-islands must be >= 1, got %s", val("islands"))
			}
			if strategy != "evolve" {
				return fmt.Errorf("-islands requires -strategy evolve (sweeps shard by index range, not by island)")
			}
		}
	} else {
		for _, name := range []string{"islands", "migrate-every", "migrate-k"} {
			if set[name] {
				return fmt.Errorf("-%s only applies with -submit (local runs are single-island)", name)
			}
		}
	}
	return nil
}

// splitObjectives parses the -objectives list.
func splitObjectives(s string) []string {
	objs := strings.Split(s, ",")
	for i := range objs {
		objs[i] = strings.TrimSpace(objs[i])
	}
	return objs
}

// runSubmit posts the job to a dmserve coordinator, follows its journal
// (reconnecting across coordinator restarts) and prints the final front.
// With -out, the streamed records land in journal.jsonl exactly as a
// local run would write them — plus their shard/island/worker stamps.
func runSubmit(out io.Writer, base string, spec serve.JobSpec, outDir string) error {
	client := &serve.Client{Base: base}
	id, err := client.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "submitted  job %s to %s (%s on %s/%s)\n", id, base, spec.Strategy, spec.Workload, spec.Space)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var journal *telemetry.Journal
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		journal, err = telemetry.CreateJournal(filepath.Join(outDir, "journal.jsonl"))
		if err != nil {
			return err
		}
		defer journal.Close()
	}
	start := time.Now()
	st, err := client.FollowJournal(ctx, id, 0, func(rec telemetry.Record) {
		if journal != nil {
			_ = journal.Record(rec)
		}
	})
	if err != nil {
		return err
	}
	if st.State == "failed" {
		return fmt.Errorf("job %s failed: %s", id, st.Error)
	}
	fmt.Fprintf(out, "job %s done in %v: %d configurations, %d journal records\n",
		id, time.Since(start).Round(time.Millisecond), st.Results, st.Records)
	fmt.Fprintf(out, "\nPareto-optimal configurations: %d\n", len(st.Front))
	for _, p := range st.Front {
		fmt.Fprintf(out, "  #%-6d %-60s", p.Index, strings.Join(p.Labels, ","))
		for i, obj := range spec.Objectives {
			if i < len(p.Values) {
				fmt.Fprintf(out, " %s=%.4g", obj, p.Values[i])
			}
		}
		fmt.Fprintln(out)
	}
	if journal != nil {
		fmt.Fprintf(out, "\njournal written to %s\n", filepath.Join(outDir, "journal.jsonl"))
	}
	return nil
}

// activeStages reduces the flight recorder to the stages that actually
// ran — the run summary's per-stage time breakdown.
func activeStages(rec *span.Recorder) []span.StageSnapshot {
	if rec == nil {
		return nil
	}
	var out []span.StageSnapshot
	for _, st := range rec.Snapshot() {
		if st.Count > 0 {
			out = append(out, st)
		}
	}
	return out
}

// cacheBudgetBytes maps a MiB flag value onto the Runner budget knobs:
// 0 on the command line means unbounded (negative for the Runner, whose
// own zero means "use the default").
func cacheBudgetBytes(mb int) int64 {
	if mb <= 0 {
		return -1
	}
	return int64(mb) << 20
}

func pickHierarchy(name string) (*memhier.Hierarchy, error) {
	switch name {
	case "soc":
		return memhier.EmbeddedSoC(), nil
	case "soc3":
		return memhier.EmbeddedSoC3Level(), nil
	case "flat":
		return memhier.FlatDRAM(), nil
	default:
		return nil, fmt.Errorf("unknown hierarchy %q", name)
	}
}

func pickSpace(workloadName, kind string) (*core.Space, error) {
	switch workloadName + "/" + kind {
	case "easyport/narrow", "synthetic/narrow":
		return core.EasyportSpace(), nil
	case "easyport/full", "synthetic/full":
		return core.FullEasyportSpace(), nil
	case "vtc/narrow":
		return core.VTCSpace(), nil
	case "vtc/full":
		return core.FullEasyportSpace(), nil // full product applies to any workload
	default:
		return nil, fmt.Errorf("no %s space for workload %s", kind, workloadName)
	}
}

func writeReports(dir string, space *core.Space, all, feasible, front []core.Result, objs []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	resultsPath := filepath.Join(dir, "results.csv")
	f, err := os.Create(resultsPath)
	if err != nil {
		return err
	}
	if err := report.WriteResultsCSV(f, space.AxisLabels(), all); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	if len(objs) >= 2 {
		datPath := filepath.Join(dir, "pareto.dat")
		df, err := os.Create(datPath)
		if err != nil {
			return err
		}
		if err := report.WriteParetoDat(df, feasible, front, objs[0], objs[1]); err != nil {
			df.Close()
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
		pf, err := os.Create(filepath.Join(dir, "pareto.plt"))
		if err != nil {
			return err
		}
		title := fmt.Sprintf("%s: Pareto-optimal DM allocator configurations", space.Name)
		if err := report.WriteGnuplotScript(pf, datPath, title, objs[0], objs[1]); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
	}

	md, err := report.MarkdownSummary(space.Name, feasible, front, objs)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.md"), []byte(md), 0o644); err != nil {
		return err
	}

	hf, err := os.Create(filepath.Join(dir, "report.html"))
	if err != nil {
		return err
	}
	defer hf.Close()
	title := fmt.Sprintf("%s exploration report", space.Name)
	return report.WriteHTML(hf, title, space.AxisLabels(), feasible, front, objs[0], objs[1])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
