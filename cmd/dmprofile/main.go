// Command dmprofile profiles a single allocator configuration against a
// workload on a memory hierarchy and prints the per-layer metric
// breakdown — the inner step of the exploration, exposed for debugging
// and for profiling hand-written configurations from JSON files.
//
// Examples:
//
//	dmprofile -workload easyport -preset lea
//	dmprofile -workload vtc -config custom.json -log run.log
//	dmprofile -workload easyport -preset kingsley -cache 32768:8:4
//	dmprofile -parselog run.log -workers 8                # ingest a raw log
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/report"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dmprofile:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dmprofile", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "easyport", "workload: "+strings.Join(workload.Names(), "|"))
		scale        = fs.Int("scale", 100, "workload scale in percent")
		seed         = fs.Uint64("seed", 1, "workload RNG seed")
		preset       = fs.String("preset", "", "allocator preset: kingsley|lea|firstfit")
		configPath   = fs.String("config", "", "allocator configuration JSON file")
		hierName     = fs.String("hierarchy", "soc", "memory hierarchy: soc|soc3|flat")
		logPath      = fs.String("log", "", "write the raw access log to this file")
		logFormat    = fs.String("log-format", "v2", "raw log encoding: v2 (block-framed, parallel-parsable)|v1 (legacy stream)")
		parseLogPath = fs.String("parselog", "", "parse a raw access log and print its summary instead of profiling")
		workers      = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for -parselog ingestion")
		cacheSpec    = fs.String("cache", "", "attach a cache to DRAM: sizeWords:lineWords:ways")
		seriesPath   = fs.String("series", "", "write a footprint-over-time .dat to this file")
		emitJSON     = fs.Bool("json", false, "emit metrics as JSON")
		metricsAddr  = fs.String("metrics-addr", "", "serve live telemetry (expvar) and pprof at this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *parseLogPath != "" {
		return parseLog(out, *parseLogPath, *workers)
	}

	hier, err := pickHierarchy(*hierName)
	if err != nil {
		return err
	}
	gen, err := workload.New(*workloadName, *seed, *scale)
	if err != nil {
		return err
	}
	tr, err := gen.Generate()
	if err != nil {
		return err
	}

	cfg, err := pickConfig(*preset, *configPath)
	if err != nil {
		return err
	}

	opts := profile.Options{}
	switch *logFormat {
	case "v2":
		opts.LogFormat = profile.LogV2
	case "v1":
		opts.LogFormat = profile.LogV1
	default:
		return fmt.Errorf("unknown log format %q", *logFormat)
	}
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.LogWriter = f
	}
	if *seriesPath != "" {
		opts.SampleEvery = 200
	}
	if *cacheSpec != "" {
		var size, line uint64
		var ways int
		if _, err := fmt.Sscanf(*cacheSpec, "%d:%d:%d", &size, &line, &ways); err != nil {
			return fmt.Errorf("bad cache spec %q: %v", *cacheSpec, err)
		}
		opts.Caches = map[string]profile.CacheSpec{
			memhier.LayerDRAM: {SizeWords: size, LineWords: line, Ways: ways},
		}
	}

	col := telemetry.NewCollector(1)
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, col, nil)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "metrics     http://%s/metrics (expvar at /debug/vars, pprof at /debug/pprof/)\n", srv.Addr)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		return err
	}
	rep := profile.NewReplayer()
	rep.Shard = col.Shard(0)
	m, err := rep.Run(ct, cfg, hier, opts)
	if err != nil {
		return err
	}
	snap := col.Snapshot()
	if *seriesPath != "" {
		f, err := os.Create(*seriesPath)
		if err != nil {
			return err
		}
		err = report.WriteSeriesDat(f, m.Series)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		pf, err := os.Create(*seriesPath + ".plt")
		if err != nil {
			return err
		}
		err = report.WriteSeriesScript(pf, *seriesPath, cfg.Label+" footprint over time")
		if cerr := pf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	if *emitJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}

	fmt.Fprintf(out, "workload    %s (%d events)\n", tr.Name, tr.Len())
	fmt.Fprintf(out, "config      %s\n", cfg.Label)
	fmt.Fprintf(out, "hierarchy   %s\n\n", hier)
	fmt.Fprintf(out, "%-16s %12s %12s %12s\n", "layer", "reads", "writes", "peak bytes")
	for _, lm := range m.PerLayer {
		fmt.Fprintf(out, "%-16s %12d %12d %12d\n", lm.Name, lm.Reads, lm.Writes, lm.PeakBytes)
	}
	eventsPerSec := 0.0
	if snap.SimSecTotal > 0 {
		eventsPerSec = float64(snap.Events) / snap.SimSecTotal
	}
	fmt.Fprintf(out, "\nreplay      %d events in %.1fms (%.3g events/s)\n",
		snap.Events, snap.SimSecTotal*1e3, eventsPerSec)
	fmt.Fprintf(out, "accesses    %d\n", m.Accesses)
	fmt.Fprintf(out, "footprint   %d bytes (%.2fx peak demand of %d)\n",
		m.FootprintBytes, m.FootprintOverhead(), m.PeakRequestedBytes)
	fmt.Fprintf(out, "energy      %.1f uJ\n", m.EnergyNJ/1000)
	fmt.Fprintf(out, "time        %d cycles\n", m.Cycles)
	fmt.Fprintf(out, "ops         %d mallocs, %d frees, %d failures\n", m.Mallocs, m.Frees, m.Failures)
	if !m.Feasible() {
		fmt.Fprintln(out, "NOTE: configuration is infeasible for this workload (allocation failures)")
	}
	return nil
}

// parseLog ingests a raw access log (v1 or block-framed v2) with the
// parallel parser and prints the per-layer summary plus ingest rate.
func parseLog(out io.Writer, path string, workers int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	ingest := telemetry.NewIngest()
	s, err := profile.ParseLogParallel(f, fi.Size(), workers, ingest)
	if err != nil {
		return err
	}
	snap := ingest.Snapshot()
	fmt.Fprintf(out, "log         %s (%d bytes, %d workers)\n", path, fi.Size(), workers)
	fmt.Fprintf(out, "records     %d (%d words)\n", s.Records, s.TotalWords())
	if snap.Blocks > 0 {
		fmt.Fprintf(out, "ingest      %s\n", snap)
	} else {
		fmt.Fprintf(out, "ingest      legacy v1 stream (serial parse)\n")
	}
	fmt.Fprintf(out, "\n%-8s %16s %16s\n", "layer", "read words", "written words")
	for layer := range s.Reads {
		if s.Reads[layer] == 0 && s.Writes[layer] == 0 {
			continue
		}
		fmt.Fprintf(out, "%-8d %16d %16d\n", layer, s.Reads[layer], s.Writes[layer])
	}
	return nil
}

func pickHierarchy(name string) (*memhier.Hierarchy, error) {
	switch name {
	case "soc":
		return memhier.EmbeddedSoC(), nil
	case "soc3":
		return memhier.EmbeddedSoC3Level(), nil
	case "flat":
		return memhier.FlatDRAM(), nil
	default:
		return nil, fmt.Errorf("unknown hierarchy %q", name)
	}
}

func pickConfig(preset, path string) (alloc.Config, error) {
	switch {
	case preset != "" && path != "":
		return alloc.Config{}, fmt.Errorf("-preset and -config are mutually exclusive")
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return alloc.Config{}, err
		}
		var cfg alloc.Config
		if err := json.Unmarshal(data, &cfg); err != nil {
			return alloc.Config{}, fmt.Errorf("parsing %s: %w", path, err)
		}
		return cfg, nil
	case preset == "kingsley":
		return alloc.KingsleyConfig(memhier.LayerDRAM), nil
	case preset == "lea":
		return alloc.LeaConfig(memhier.LayerDRAM), nil
	case preset == "firstfit":
		return alloc.SimpleFirstFitConfig(memhier.LayerDRAM), nil
	case preset == "":
		return alloc.Config{}, fmt.Errorf("need -preset or -config")
	default:
		return alloc.Config{}, fmt.Errorf("unknown preset %q", preset)
	}
}
