package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPresets(t *testing.T) {
	for _, preset := range []string{"kingsley", "lea", "firstfit"} {
		var out bytes.Buffer
		err := run([]string{"-workload", "easyport", "-scale", "5", "-preset", preset}, &out)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		s := out.String()
		for _, want := range []string{"config      " + preset, "accesses", "footprint", "energy", "mallocs"} {
			if !strings.Contains(s, want) {
				t.Fatalf("%s output missing %q:\n%s", preset, want, s)
			}
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "vtc", "-scale", "10", "-preset", "lea", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if m["Accesses"] == nil || m["PerLayer"] == nil {
		t.Fatalf("JSON missing fields: %v", m)
	}
}

func TestConfigFile(t *testing.T) {
	cfg := `{
	  "label": "from-file",
	  "fixed": [{"slot_bytes": 74, "match_lo": 74, "match_hi": 74,
	    "layer": "L1-scratchpad", "order": "lifo", "links": "single",
	    "growth": "chunk", "chunk_slots": 64, "max_bytes": 16384}],
	  "general": {"layer": "main-dram", "classes": "pow2:16:65536",
	    "fit": "first", "order": "lifo", "links": "single",
	    "split": "never", "coalesce": "never", "headers": "minimal",
	    "growth": "chunk", "chunk_bytes": 8192, "round_to_class": true}
	}`
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-workload", "easyport", "-scale", "5", "-config", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "from-file") {
		t.Fatalf("output:\n%s", out.String())
	}
	// The scratchpad must show traffic (74B pool mapped there).
	if !strings.Contains(out.String(), "L1-scratchpad") {
		t.Fatal("no scratchpad row")
	}
}

func TestLogEmission(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.log")
	var out bytes.Buffer
	err := run([]string{"-workload", "easyport", "-scale", "5", "-preset", "kingsley", "-log", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty log")
	}
}

func TestCacheFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "easyport", "-scale", "5", "-preset", "lea",
		"-cache", "4096:8:4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var bad bytes.Buffer
	if err := run([]string{"-workload", "easyport", "-scale", "5", "-preset", "lea",
		"-cache", "garbage"}, &bad); err == nil {
		t.Fatal("bad cache spec accepted")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                 // no preset/config
		{"-preset", "nope"},                // unknown preset
		{"-preset", "lea", "-config", "x"}, // mutually exclusive
		{"-config", "/nonexistent.json"},   // missing file
		{"-workload", "nope", "-preset", "lea"},
		{"-hierarchy", "nope", "-preset", "lea"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestReplayTelemetryLine(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "easyport", "-scale", "5", "-preset", "lea"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replay      ") ||
		!strings.Contains(out.String(), "events/s") {
		t.Fatalf("replay telemetry line missing:\n%s", out.String())
	}
}

func TestMetricsAddr(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "easyport", "-scale", "5", "-preset", "lea",
		"-metrics-addr", "127.0.0.1:0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "/debug/vars") {
		t.Fatalf("metrics address not announced:\n%s", out.String())
	}
}

// TestLogEmitAndParseLog profiles with a raw log in both encodings, then
// re-ingests each through the -parselog mode and checks the summaries
// agree with each other and with the run's access count.
func TestLogEmitAndParseLog(t *testing.T) {
	dir := t.TempDir()
	var words []string
	for _, format := range []string{"v2", "v1"} {
		logPath := filepath.Join(dir, "run."+format+".log")
		var out bytes.Buffer
		err := run([]string{"-workload", "easyport", "-scale", "5", "-preset", "lea",
			"-log", logPath, "-log-format", format}, &out)
		if err != nil {
			t.Fatalf("%s profile: %v", format, err)
		}
		out.Reset()
		if err := run([]string{"-parselog", logPath, "-workers", "4"}, &out); err != nil {
			t.Fatalf("%s parselog: %v", format, err)
		}
		s := out.String()
		if !strings.Contains(s, "records") {
			t.Fatalf("%s parselog output:\n%s", format, s)
		}
		if format == "v2" && !strings.Contains(s, "blocks") {
			t.Fatalf("v2 parselog missing ingest counters:\n%s", s)
		}
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "records") {
				words = append(words, line)
			}
		}
	}
	if len(words) != 2 || words[0] != words[1] {
		t.Fatalf("v2 and v1 logs summarize differently: %q", words)
	}
}

func TestBadLogFormatRejected(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "easyport", "-scale", "5", "-preset", "lea",
		"-log-format", "v9"}, &out)
	if err == nil {
		t.Fatal("bad -log-format accepted")
	}
}
