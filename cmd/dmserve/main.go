// Command dmserve is the coordinator of the distributed exploration
// service. It accepts sweep and search jobs over HTTP/JSON, partitions
// them into work-stealing shards, leases the shards to dmworker
// processes, streams the merged journal to followers and checkpoints
// every result — restart the coordinator and every running job resumes
// from its journal.
//
// Examples:
//
//	dmserve -addr localhost:8710 -state state/
//	dmexplore -submit http://localhost:8710 -strategy evolve -islands 4
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmexplore/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dmserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dmserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8710", "listen address")
		stateDir = fs.String("state", "dmserve-state", "checkpoint directory: jobs found here resume on startup")
		leaseTTL = fs.Duration("lease-ttl", serve.DefaultLeaseTTL, "shard lease TTL; a worker silent for this long forfeits its shards")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	coord, err := serve.NewCoordinator(serve.Options{StateDir: *stateDir, LeaseTTL: *leaseTTL})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	fmt.Printf("dmserve: listening on http://%s (state in %s)\n", ln.Addr(), *stateDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "dmserve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		return nil
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}
