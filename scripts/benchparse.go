//go:build ignore

// benchparse measures the block-framed (v2) ingestion path: it generates
// a synthetic raw profile log, parses it serially and with
// profile.ParseLogParallel at several worker counts, and records raw
// throughput plus the speedup under a latency-modelled storage backend
// in BENCH_parse.json at the repository root. A second section does the
// same for trace.ReadBinaryParallel and verifies the parallel read is
// bit-identical to the sequential one, through Compile.
//
// Two regimes are reported:
//
//   - raw: the file is served from the page cache. On a multi-core host
//     this shows the CPU-bound parallel decode win; on a single-core CI
//     box the worker pool shares one core and the numbers honestly show
//     ~1x (GOMAXPROCS is recorded next to them).
//
//   - latency-modelled: every storage request costs a fixed latency,
//     modelling the regime the format is built for (network filesystems,
//     SD/eMMC, debug links on embedded targets — the paper's gigabyte
//     logs rarely live on a local NVMe). The serial parser streams
//     through a ~1 MiB buffer and pays every request in sequence; the
//     parallel reader coalesces blocks into 4 MiB fetch windows and
//     overlaps them across workers — the two levers the footer index
//     exists to enable. This regime works at any GOMAXPROCS, like the
//     batched-evaluation model in benchsearch.go.
//
// Usage, from the repository root:
//
//	go run scripts/benchparse.go [-mb 1024] [-latency 10ms]
//
// Exits non-zero if the latency-modelled 8-worker speedup falls below
// 2x, if any parallel summary diverges from the serial one, or if the
// parallel trace read is not bit-identical.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"dmexplore/internal/profile"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

const minSpeedup = 2.0

type logRun struct {
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_seconds"`
	GBPerSec     float64 `json:"gb_per_sec"`
	SpeedupVsSer float64 `json:"speedup_vs_serial,omitempty"`
	Modelled     bool    `json:"latency_modelled"`
}

type output struct {
	GeneratedBy string  `json:"generated_by"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	LatencyMS   float64 `json:"request_latency_ms"`

	LogBytes   int64    `json:"log_bytes"`
	LogRecords int      `json:"log_records"`
	LogRuns    []logRun `json:"log_runs"`
	Speedup8x  float64  `json:"speedup_8_workers_latency_modelled"`

	TraceEvents        int     `json:"trace_events"`
	TraceBytes         int     `json:"trace_bytes"`
	TraceSerialGBs     float64 `json:"trace_serial_gb_per_sec"`
	TraceParallelGBs   float64 `json:"trace_parallel_gb_per_sec"`
	TraceBitIdentical  bool    `json:"trace_parallel_bit_identical"`
	SummariesIdentical bool    `json:"log_summaries_identical"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchparse:", err)
		os.Exit(1)
	}
}

// latencyFile serves ReadAt from an os.File with a fixed per-request
// cost: the seek/RPC overhead of slow storage. Goroutines overlap the
// stalls, so the model exercises the parallel reader's request
// coalescing and overlap at any GOMAXPROCS.
type latencyFile struct {
	f   *os.File
	lat time.Duration
}

func (l *latencyFile) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(l.lat)
	return l.f.ReadAt(p, off)
}

// latencyReader is the serial view of the same storage: sequential reads,
// each request paying the same fixed cost.
type latencyReader struct {
	lf  *latencyFile
	off int64
}

func (r *latencyReader) Read(p []byte) (int, error) {
	n, err := r.lf.ReadAt(p, r.off)
	r.off += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

func run() error {
	mb := flag.Int("mb", 1024, "synthetic log size in MiB")
	latency := flag.Duration("latency", 10*time.Millisecond, "modelled per-request storage latency")
	flag.Parse()

	out := output{
		GeneratedBy: "go run scripts/benchparse.go",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		LatencyMS:   float64(*latency) / float64(time.Millisecond),
	}

	path, records, err := generateLog(int64(*mb) << 20)
	if err != nil {
		return err
	}
	defer os.Remove(path)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	out.LogBytes, out.LogRecords = fi.Size(), records
	fmt.Fprintf(os.Stderr, "log: %d records, %.2f GiB\n", records, float64(fi.Size())/(1<<30))

	// Raw page-cache parses: serial baseline, then the parallel reader.
	serialSummary, serialWall, err := timeSerial(f)
	if err != nil {
		return err
	}
	out.LogRuns = append(out.LogRuns, report("raw", logRun{
		Workers: 1, WallSeconds: serialWall,
		GBPerSec: gbs(fi.Size(), serialWall),
	}, serialWall))
	out.SummariesIdentical = true
	for _, workers := range []int{2, 8} {
		start := time.Now()
		s, err := profile.ParseLogParallel(f, fi.Size(), workers, nil)
		if err != nil {
			return fmt.Errorf("raw workers=%d: %w", workers, err)
		}
		wall := time.Since(start).Seconds()
		if !profile.SameSummary(s, serialSummary) {
			return fmt.Errorf("raw workers=%d: summary diverged from serial", workers)
		}
		out.LogRuns = append(out.LogRuns, report("raw", logRun{
			Workers: workers, WallSeconds: wall,
			GBPerSec: gbs(fi.Size(), wall), SpeedupVsSer: serialWall / wall,
		}, serialWall))
	}

	// Latency-modelled parses: the gated regime.
	lf := &latencyFile{f: f, lat: *latency}
	start := time.Now()
	s, err := profile.ParseLog(&latencyReader{lf: lf})
	if err != nil {
		return err
	}
	modelSerialWall := time.Since(start).Seconds()
	if !profile.SameSummary(s, serialSummary) {
		return fmt.Errorf("latency-modelled serial: summary diverged")
	}
	out.LogRuns = append(out.LogRuns, report("modelled", logRun{
		Workers: 1, WallSeconds: modelSerialWall,
		GBPerSec: gbs(fi.Size(), modelSerialWall), Modelled: true,
	}, modelSerialWall))
	for _, workers := range []int{2, 4, 8} {
		start := time.Now()
		s, err := profile.ParseLogParallel(lf, fi.Size(), workers, nil)
		if err != nil {
			return fmt.Errorf("modelled workers=%d: %w", workers, err)
		}
		wall := time.Since(start).Seconds()
		if !profile.SameSummary(s, serialSummary) {
			return fmt.Errorf("modelled workers=%d: summary diverged from serial", workers)
		}
		rr := report("modelled", logRun{
			Workers: workers, WallSeconds: wall,
			GBPerSec: gbs(fi.Size(), wall), SpeedupVsSer: modelSerialWall / wall,
			Modelled: true,
		}, modelSerialWall)
		out.LogRuns = append(out.LogRuns, rr)
		if workers == 8 {
			out.Speedup8x = rr.SpeedupVsSer
		}
	}

	if err := benchTrace(&out); err != nil {
		return err
	}

	bf, err := os.Create("BENCH_parse.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(bf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		bf.Close()
		return err
	}
	if err := bf.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote BENCH_parse.json")
	if out.Speedup8x < minSpeedup {
		return fmt.Errorf("latency-modelled 8-worker speedup %.2fx below the %.1fx bar", out.Speedup8x, minSpeedup)
	}
	return nil
}

// generateLog writes a block-framed synthetic log of roughly wantBytes
// to a temp file, returning its path and record count.
func generateLog(wantBytes int64) (string, int, error) {
	// The xorshift stream averages just under 6 bytes per record (flags
	// byte, ~4-byte address varint, 1-byte word count).
	records := int(wantBytes / 6)
	path := filepath.Join(os.TempDir(), "benchparse.dmpl")
	f, err := os.Create(path)
	if err != nil {
		return "", 0, err
	}
	if err := profile.WriteSyntheticLog(f, records, profile.LogV2, 42); err != nil {
		f.Close()
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		return "", 0, err
	}
	return path, records, nil
}

func timeSerial(f *os.File) (*profile.LogSummary, float64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	s, err := profile.ParseLog(f)
	if err != nil {
		return nil, 0, err
	}
	return s, time.Since(start).Seconds(), nil
}

func benchTrace(out *output) error {
	p := workload.DefaultEasyportParams()
	p.Packets = 20000
	tr, err := p.Generate()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := trace.WriteBinaryV2(&buf, tr); err != nil {
		return err
	}
	data := buf.Bytes()
	out.TraceEvents, out.TraceBytes = tr.Len(), len(data)

	start := time.Now()
	seq, err := trace.ReadBinary(bytes.NewReader(data))
	if err != nil {
		return err
	}
	serialWall := time.Since(start).Seconds()
	start = time.Now()
	par, err := trace.ReadBinaryParallel(bytes.NewReader(data), int64(len(data)), 8, nil)
	if err != nil {
		return err
	}
	parWall := time.Since(start).Seconds()
	out.TraceSerialGBs = gbs(int64(len(data)), serialWall)
	out.TraceParallelGBs = gbs(int64(len(data)), parWall)

	cseq, err := trace.Compile(seq)
	if err != nil {
		return err
	}
	cpar, err := trace.Compile(par)
	if err != nil {
		return err
	}
	out.TraceBitIdentical = reflect.DeepEqual(seq, par) && reflect.DeepEqual(cseq, cpar)
	fmt.Fprintf(os.Stderr, "trace: %d events, serial %.2f GB/s, parallel(8) %.2f GB/s, bit-identical=%v\n",
		out.TraceEvents, out.TraceSerialGBs, out.TraceParallelGBs, out.TraceBitIdentical)
	if !out.TraceBitIdentical {
		return fmt.Errorf("parallel trace read is not bit-identical to the sequential one")
	}
	return nil
}

func report(regime string, r logRun, serialWall float64) logRun {
	speedup := 1.0
	if r.WallSeconds > 0 {
		speedup = serialWall / r.WallSeconds
	}
	fmt.Fprintf(os.Stderr, "%-8s workers=%d  %6.2fs  %6.2f GB/s  speedup=%.2fx\n",
		regime, r.Workers, r.WallSeconds, r.GBPerSec, speedup)
	return r
}

func gbs(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e9
}
