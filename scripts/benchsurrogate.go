//go:build ignore

// benchsurrogate measures what the surrogate screening layer buys the
// guided searches: how many exact simulations a surrogate-assisted
// screen-and-refine run needs to reach (nearly) the hypervolume of the
// exact run at the full budget. It writes BENCH_surrogate.json at the
// repository root.
//
// The exact run is screen-and-refine on the full Easyport space with a
// 512-simulation budget — the configuration the earlier PRs benchmark.
// The surrogate run enables Runner.Surrogate and spends an order of
// magnitude less: the online per-objective models rank the candidate
// pool so the budget goes to the configurations most likely to extend
// the front. Quality is compared by 2-D hypervolume against a shared
// reference point derived from the exact run's feasible points.
//
// The script also verifies the determinism contract the surrogate must
// keep: the assisted run produces the identical evaluation sequence and
// front at every worker count, because all model updates and predictions
// happen on the strategy's coordinating goroutine in batch order.
//
// Usage, from the repository root:
//
//	go run scripts/benchsurrogate.go
//
// Exits non-zero if the simulation reduction falls below 3x, the
// surrogate hypervolume drops more than 5% below the exact run, or any
// worker count diverges from the serial surrogate run.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/pareto"
	"dmexplore/internal/profile"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

const (
	exactScreen     = 128
	exactBudget     = 512
	surrogateScreen = 40
	surrogateBudget = 102
	seed            = 42

	// Gate thresholds: the headline claim is >=5x fewer simulations
	// within 5% of the exact hypervolume; the CI gate keeps slack at
	// 3x so machine-to-machine noise in the tiny workload cannot flake
	// the build, while the JSON records the actual ratio.
	minReduction = 3.0
	maxHVLoss    = 0.05
)

type runResult struct {
	Name        string  `json:"name"`
	Budget      int     `json:"budget"`
	Evaluations int     `json:"evaluations"`
	FrontSize   int     `json:"front_size"`
	Hypervolume float64 `json:"hypervolume"`
	HVFraction  float64 `json:"hv_fraction_of_exact"`
	WallSeconds float64 `json:"wall_seconds"`
}

type output struct {
	GeneratedBy    string      `json:"generated_by"`
	GoVersion      string      `json:"go_version"`
	GOMAXPROCS     int         `json:"gomaxprocs"`
	Space          string      `json:"space"`
	SpaceSize      int         `json:"space_size"`
	Seed           uint64      `json:"seed"`
	Runs           []runResult `json:"runs"`
	SimReduction   float64     `json:"sim_reduction"`
	HVFraction     float64     `json:"hv_fraction_of_exact"`
	SurrogateStats struct {
		Trained     int                `json:"trained"`
		Predictions uint64             `json:"predictions"`
		ScreenedOut uint64             `json:"screened_out"`
		Pairs       int                `json:"accuracy_pairs"`
		Spearman    map[string]float64 `json:"spearman"`
		MAE         map[string]float64 `json:"mae"`
	} `json:"surrogate"`
	DeterministicWorkers []int `json:"deterministic_workers"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsurrogate:", err)
		os.Exit(1)
	}
}

// fingerprint captures the determinism contract: the exact evaluation
// sequence (index + metrics) and the resulting front.
type fingerprint struct {
	seq   []int
	acc   []uint64
	foot  []int64
	front []int
}

func run() error {
	p := workload.DefaultEasyportParams()
	p.Packets = 400
	tr, err := p.Generate()
	if err != nil {
		return err
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		return err
	}
	space := core.FullEasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}

	out := output{
		GeneratedBy: "go run scripts/benchsurrogate.go",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Space:       space.Name,
		SpaceSize:   space.Size(),
		Seed:        seed,
	}

	newRunner := func(workers int) *core.Runner {
		return &core.Runner{
			Hierarchy: memhier.EmbeddedSoC(),
			Trace:     tr,
			Compiled:  ct,
			Workers:   workers,
		}
	}

	// Exact reference run: full budget, no surrogate.
	start := time.Now()
	exact, err := newRunner(8).ScreenAndRefine(space, objs, exactScreen, exactBudget, seed)
	if err != nil {
		return fmt.Errorf("exact run: %w", err)
	}
	exactWall := time.Since(start).Seconds()
	exactFront, exactPoints, err := core.ParetoSet(core.Feasible(exact), objs)
	if err != nil {
		return err
	}
	ref := hvRef(exactPoints)
	exactHV := pareto.Hypervolume2D(exactPoints, ref)
	if exactHV <= 0 {
		return fmt.Errorf("exact run produced zero hypervolume")
	}
	out.Runs = append(out.Runs, runResult{
		Name: "exact", Budget: exactBudget, Evaluations: len(exact),
		FrontSize: len(exactFront), Hypervolume: exactHV, HVFraction: 1,
		WallSeconds: exactWall,
	})
	fmt.Fprintf(os.Stderr, "exact      %4d sims  front=%2d  hv=100.0%%  %.2fs\n",
		len(exact), len(exactFront), exactWall)

	// Surrogate run: a fraction of the budget, models ranking the pool.
	rep := &core.SurrogateReport{}
	r := newRunner(8)
	r.Surrogate = &core.SurrogateOptions{Report: rep}
	start = time.Now()
	assisted, err := r.ScreenAndRefine(space, objs, surrogateScreen, surrogateBudget, seed)
	if err != nil {
		return fmt.Errorf("surrogate run: %w", err)
	}
	surWall := time.Since(start).Seconds()
	surFront, surPoints, err := core.ParetoSet(core.Feasible(assisted), objs)
	if err != nil {
		return err
	}
	surHV := pareto.Hypervolume2D(surPoints, ref)
	frac := surHV / exactHV
	out.Runs = append(out.Runs, runResult{
		Name: "surrogate", Budget: surrogateBudget, Evaluations: len(assisted),
		FrontSize: len(surFront), Hypervolume: surHV, HVFraction: frac,
		WallSeconds: surWall,
	})
	out.SimReduction = float64(len(exact)) / float64(len(assisted))
	out.HVFraction = frac
	out.SurrogateStats.Trained = rep.Trained
	out.SurrogateStats.Predictions = rep.Predictions
	out.SurrogateStats.ScreenedOut = rep.ScreenedOut
	out.SurrogateStats.Pairs = rep.Pairs
	out.SurrogateStats.Spearman = rep.Spearman
	out.SurrogateStats.MAE = rep.MAE
	fmt.Fprintf(os.Stderr, "surrogate  %4d sims  front=%2d  hv=%5.1f%%  %.2fs  (%.1fx fewer sims)\n",
		len(assisted), len(surFront), 100*frac, surWall, out.SimReduction)

	// Determinism: the assisted run must be bit-identical at every
	// worker count.
	var serial fingerprint
	for _, workers := range []int{1, 2, 4, 8} {
		r := newRunner(workers)
		r.Surrogate = &core.SurrogateOptions{}
		results, err := r.ScreenAndRefine(space, objs, surrogateScreen, surrogateBudget, seed)
		if err != nil {
			return fmt.Errorf("workers=%d: %w", workers, err)
		}
		front, _, err := core.ParetoSet(core.Feasible(results), objs)
		if err != nil {
			return err
		}
		fp := fingerprint{}
		for _, res := range results {
			fp.seq = append(fp.seq, res.Index)
			fp.acc = append(fp.acc, res.Metrics.Accesses)
			fp.foot = append(fp.foot, res.Metrics.FootprintBytes)
		}
		for _, res := range front {
			fp.front = append(fp.front, res.Index)
		}
		if workers == 1 {
			serial = fp
		} else if !sameFingerprint(serial, fp) {
			return fmt.Errorf("workers=%d diverged from the serial surrogate run", workers)
		}
		out.DeterministicWorkers = append(out.DeterministicWorkers, workers)
	}
	fmt.Fprintf(os.Stderr, "determinism verified for workers=%v\n", out.DeterministicWorkers)

	f, err := os.Create("BENCH_surrogate.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote BENCH_surrogate.json")

	if out.SimReduction < minReduction {
		return fmt.Errorf("simulation reduction %.2fx below the %.1fx bar", out.SimReduction, minReduction)
	}
	if frac < 1-maxHVLoss {
		return fmt.Errorf("surrogate hypervolume %.1f%% of exact, below the %.0f%% bar",
			100*frac, 100*(1-maxHVLoss))
	}
	return nil
}

// hvRef builds a reference point dominated by every point the exact run
// observed, so both runs' hypervolumes are measured against the same
// corner.
func hvRef(points []pareto.Point) [2]float64 {
	var ref [2]float64
	for _, p := range points {
		for d := 0; d < 2; d++ {
			if p.Values[d] > ref[d] {
				ref[d] = p.Values[d]
			}
		}
	}
	ref[0] *= 1.01
	ref[1] *= 1.01
	return ref
}

func sameFingerprint(a, b fingerprint) bool {
	if len(a.seq) != len(b.seq) || len(a.front) != len(b.front) {
		return false
	}
	for i := range a.seq {
		if a.seq[i] != b.seq[i] || a.acc[i] != b.acc[i] || a.foot[i] != b.foot[i] {
			return false
		}
	}
	for i := range a.front {
		if a.front[i] != b.front[i] {
			return false
		}
	}
	return true
}
