//go:build ignore

// benchreplay runs the replay-engine benchmark suite and records the
// results in BENCH_replay.json at the repository root, next to the frozen
// pre-Replayer baseline numbers, so the perf trajectory of the compiled
// replay path is tracked in one place.
//
// Usage, from the repository root:
//
//	go run scripts/benchreplay.go
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// baseline is the pre-change replay path measured at the commit that
// introduced the compiled replay engine: BenchmarkRun (trace replayed
// through the old map-based profile.Run loop), easyport 3000 packets,
// MB/s where bytes = events, i.e. Mevents/sec. Frozen for comparison.
var baseline = map[string]float64{
	"easyport/kingsley": 6.58e6,
	"easyport/lea":      3.71e6,
	"easyport/firstfit": 4.37e6,
}

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	SpeedupX   float64            `json:"speedup_vs_baseline,omitempty"`
}

type output struct {
	GeneratedBy string             `json:"generated_by"`
	GoVersion   string             `json:"go_version"`
	Baseline    map[string]float64 `json:"baseline_pre_change_events_per_sec"`
	Results     []benchResult      `json:"results"`
	// TelemetryOverheadPct compares BenchmarkReplayTelemetry against
	// BenchmarkReplayEasyport per configuration: percent of events/sec
	// lost to the attached telemetry shard. Budget: < 2%.
	TelemetryOverheadPct map[string]float64 `json:"telemetry_overhead_pct,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		os.Exit(1)
	}
}

func run() error {
	out := output{
		GeneratedBy: "go run scripts/benchreplay.go",
		GoVersion:   goVersion(),
		Baseline:    baseline,
	}
	suites := []struct {
		pkg   string
		bench string
		args  []string
	}{
		{"./internal/profile/", "BenchmarkReplay", []string{"-benchmem", "-benchtime", "2s"}},
		{"./internal/core/", "BenchmarkRunnerFanout", []string{"-benchtime", "2x"}},
	}
	for _, s := range suites {
		args := append([]string{"test", s.pkg, "-run", "^$", "-bench", s.bench}, s.args...)
		fmt.Fprintf(os.Stderr, "running go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		text, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
		}
		results, err := parseBench(string(text))
		if err != nil {
			return err
		}
		out.Results = append(out.Results, results...)
	}
	for i := range out.Results {
		r := &out.Results[i]
		key := baselineKey(r.Name)
		if base, ok := baseline[key]; ok {
			if eps, ok := r.Metrics["events/sec"]; ok && base > 0 {
				r.SpeedupX = eps / base
			}
		}
	}
	out.TelemetryOverheadPct = telemetryOverhead(out.Results)
	for cfg, pct := range out.TelemetryOverheadPct {
		status := "ok"
		if pct >= 2 {
			status = "OVER BUDGET (2%)"
		}
		fmt.Fprintf(os.Stderr, "telemetry overhead %-10s %+.2f%% %s\n", cfg, pct, status)
	}
	f, err := os.Create("BENCH_replay.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote BENCH_replay.json")
	return nil
}

// parseBench extracts benchmark lines from `go test -bench` output. Each
// line is "BenchmarkName-P  iterations  (value unit)...".
func parseBench(text string) ([]benchResult, error) {
	var results []benchResult
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		r := benchResult{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %v", line, err)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", text)
	}
	return results, nil
}

// telemetryOverhead pairs each BenchmarkReplayTelemetry/<cfg> result
// with its plain BenchmarkReplayEasyport/<cfg> twin (same workload,
// same steady-state loop, only the shard differs) and returns the
// percentage of throughput lost to observation. Negative values mean
// the instrumented run measured faster — i.e. overhead below noise.
func telemetryOverhead(results []benchResult) map[string]float64 {
	eps := func(name string) float64 {
		for _, r := range results {
			if r.Name == name {
				return r.Metrics["events/sec"]
			}
		}
		return 0
	}
	overhead := map[string]float64{}
	for _, cfg := range []string{"kingsley", "lea", "firstfit"} {
		plain := eps("BenchmarkReplayEasyport/" + cfg)
		instr := eps("BenchmarkReplayTelemetry/" + cfg)
		if plain > 0 && instr > 0 {
			overhead[cfg] = (plain - instr) / plain * 100
		}
	}
	return overhead
}

// baselineKey maps "BenchmarkReplayEasyport/kingsley" to the baseline
// table's "easyport/kingsley".
func baselineKey(name string) string {
	name = strings.TrimPrefix(name, "BenchmarkReplay")
	return strings.ToLower(name)
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
