//go:build ignore

// benchserve measures what the distributed exploration service buys:
// the same 512-evaluation island-model NSGA-II job (4 islands x
// population 16, budget 128 per island) run through a loopback-HTTP
// coordinator with 1, 2 and 4 in-process workers, against the serial
// single-process Evolve at the same total budget. The evaluation cost is
// dominated by Runner.EvalLatency (5 ms per simulation), modelling the
// regime the service is built for: a per-configuration backend latency
// (on-target profiling, co-simulation) that a single process cannot
// hide, while islands spread across workers evaluate concurrently.
//
// Every worker runs SessionWorkers=1 — one modelled backend per worker
// process — so the scaling measured here is the service's horizontal
// scaling, not the in-process pool's. The script also verifies the
// determinism contract: every fleet shape must produce the identical
// per-island evaluation walks and the identical final front.
//
// Usage, from the repository root:
//
//	go run scripts/benchserve.go
//
// Writes BENCH_serve.json and exits non-zero if the 4-worker effective
// evals/sec falls below 2.5x the serial baseline, or any fleet shape
// diverges.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/serve"
	"dmexplore/internal/telemetry"
)

const (
	islands     = 4
	population  = 16
	budgetPer   = 128 // per island; islands*budgetPer = the serial budget
	serialPop   = 32
	seed        = 42
	evalLatency = 5 * time.Millisecond
	minSpeedup  = 2.5
)

type runResult struct {
	Workers     int     `json:"workers"`
	SlotsEach   int     `json:"slots_per_worker"`
	WallSeconds float64 `json:"wall_seconds"`
	Evaluations int     `json:"evaluations"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	Speedup     float64 `json:"speedup_vs_serial"`
	FrontSize   int     `json:"front_size"`
	Matches     bool    `json:"matches_1_worker_run"`
}

type output struct {
	GeneratedBy   string      `json:"generated_by"`
	GoVersion     string      `json:"go_version"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	Islands       int         `json:"islands"`
	Population    int         `json:"population_per_island"`
	BudgetPer     int         `json:"budget_per_island"`
	Seed          uint64      `json:"seed"`
	EvalLatencyMS float64     `json:"eval_latency_ms"`
	SerialWallSec float64     `json:"serial_wall_seconds"`
	SerialEvals   int         `json:"serial_evaluations"`
	SerialRate    float64     `json:"serial_evals_per_sec"`
	Runs          []runResult `json:"runs"`
	Speedup4x     float64     `json:"speedup_4_workers_vs_serial"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

func spec() serve.JobSpec {
	return serve.JobSpec{
		Workload: "easyport", WorkloadSeed: 1, Scale: 5,
		Space: "narrow", Hierarchy: "soc",
		Objectives: []string{"accesses", "footprint"},
		Strategy:   "nsga2", Islands: islands,
		Population: population, Budget: budgetPer, Seed: seed,
		MigrationEvery: 4, MigrationK: 4,
		EvalLatencyMS: float64(evalLatency) / float64(time.Millisecond),
	}
}

// fleetRun is one distributed run's fingerprint: per-island walks and
// the sorted front.
type fleetRun struct {
	wall  time.Duration
	evals int
	walks map[int][]int
	front []int
}

func runFleet(workers int) (fleetRun, error) {
	var fr fleetRun
	coord, err := serve.NewCoordinator(serve.Options{})
	if err != nil {
		return fr, err
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &serve.Client{Base: srv.URL}

	slots := (islands + workers - 1) / workers
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make([]chan struct{}, workers)
	for i := 0; i < workers; i++ {
		done[i] = make(chan struct{})
		w := &serve.Worker{
			Coordinator:    srv.URL,
			ID:             fmt.Sprintf("bench-w%d", i+1),
			Slots:          slots,
			SessionWorkers: 1, // one modelled backend per worker process
			Poll:           5 * time.Millisecond,
		}
		go func(ch chan struct{}) {
			defer close(ch)
			_ = w.Run(ctx)
		}(done[i])
	}

	start := time.Now()
	id, err := client.Submit(spec())
	if err != nil {
		return fr, err
	}
	var st serve.JobStatus
	for {
		st, err = client.Status(id)
		if err != nil {
			return fr, err
		}
		if st.State != "running" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fr.wall = time.Since(start)
	cancel()
	for _, ch := range done {
		<-ch
	}
	if st.State != "done" {
		return fr, fmt.Errorf("%d-worker job ended %s: %s", workers, st.State, st.Error)
	}

	fr.walks = make(map[int][]int)
	followCtx, followCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer followCancel()
	if _, err := client.FollowJournal(followCtx, id, 0, func(rec telemetry.Record) {
		fr.evals++
		fr.walks[rec.Island] = append(fr.walks[rec.Island], rec.Index)
	}); err != nil {
		return fr, err
	}
	for _, p := range st.Front {
		fr.front = append(fr.front, p.Index)
	}
	sort.Ints(fr.front)
	return fr, nil
}

func sameFleet(a, b fleetRun) bool {
	if a.evals != b.evals || len(a.walks) != len(b.walks) || len(a.front) != len(b.front) {
		return false
	}
	for island, wa := range a.walks {
		wb := b.walks[island]
		if len(wa) != len(wb) {
			return false
		}
		for i := range wa {
			if wa[i] != wb[i] {
				return false
			}
		}
	}
	for i := range a.front {
		if a.front[i] != b.front[i] {
			return false
		}
	}
	return true
}

func run() error {
	// Serial single-process baseline: same total budget, one modelled
	// backend, the path a user without a fleet runs.
	sp := spec()
	env, err := serve.BuildEnv(sp, 1, nil)
	if err != nil {
		return err
	}
	fmt.Printf("space %s: %d configurations, trace %d events\n",
		env.Space.Name, env.Space.Size(), env.Trace.Len())
	serialStart := time.Now()
	serial, err := env.Runner.Evolve(env.Space, sp.Objectives, core.EvolveOptions{
		Population: serialPop, Budget: islands * budgetPer, Seed: seed,
	})
	if err != nil {
		return err
	}
	serialWall := time.Since(serialStart)
	serialRate := float64(len(serial)) / serialWall.Seconds()
	fmt.Printf("serial    %4d evals in %7.2fs  (%6.1f evals/s)\n",
		len(serial), serialWall.Seconds(), serialRate)

	out := output{
		GeneratedBy: "scripts/benchserve.go", GoVersion: runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Islands:    islands, Population: population, BudgetPer: budgetPer,
		Seed: seed, EvalLatencyMS: sp.EvalLatencyMS,
		SerialWallSec: serialWall.Seconds(), SerialEvals: len(serial), SerialRate: serialRate,
	}

	var ref fleetRun
	for _, workers := range []int{1, 2, 4} {
		fr, err := runFleet(workers)
		if err != nil {
			return err
		}
		if workers == 1 {
			ref = fr
		}
		rate := float64(fr.evals) / fr.wall.Seconds()
		rr := runResult{
			Workers: workers, SlotsEach: (islands + workers - 1) / workers,
			WallSeconds: fr.wall.Seconds(), Evaluations: fr.evals,
			EvalsPerSec: rate, Speedup: rate / serialRate,
			FrontSize: len(fr.front), Matches: sameFleet(ref, fr),
		}
		out.Runs = append(out.Runs, rr)
		fmt.Printf("workers %d %4d evals in %7.2fs  (%6.1f evals/s, %.2fx serial, front %d, deterministic %v)\n",
			workers, fr.evals, fr.wall.Seconds(), rate, rr.Speedup, rr.FrontSize, rr.Matches)
		if !rr.Matches {
			return fmt.Errorf("%d-worker fleet diverged from the 1-worker run", workers)
		}
		if workers == 4 {
			out.Speedup4x = rr.Speedup
		}
	}

	f, err := os.Create("BENCH_serve.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_serve.json")

	if out.Speedup4x < minSpeedup {
		return fmt.Errorf("4-worker effective rate %.2fx serial, below the %.1fx gate", out.Speedup4x, minSpeedup)
	}
	return nil
}
