//go:build ignore

// benchincremental records the two performance contracts of the columnar
// replay engine in BENCH_incremental.json at the repository root:
//
//  1. Raw columnar replay throughput — the slab-based decode/replay loop
//     against the frozen pre-Replayer baseline (the map-based profile.Run
//     path, measured at the commit that introduced the compiled engine).
//     Gate: >= 1.5x events/sec on every baseline configuration.
//
//  2. Effective guided-search throughput with incremental re-evaluation —
//     the same seeded hill-climb over the full Easyport space with
//     Runner.Incremental off and on, in the two regimes that matter:
//
//     sim: no EvalLatency — raw in-process simulation is the whole
//     evaluation cost. Reported for the record, ungated: roughly half
//     of an Easyport replay is pool ops, which a partial replay must
//     still simulate, so this regime bounds the win at the event mix.
//
//     backend: EvalLatency = 5ms, the exact regime BENCH_search.json
//     (the PR 4 batched baseline) is recorded in — an evaluation
//     backend with per-configuration latency (on-target profiling,
//     co-simulation). A partial re-evaluation replays only the
//     partition's recorded ops, so it charges the backend pro-rata;
//     that is where incremental re-evaluation compounds with batching.
//     The pool-run memo raises the bar further: evaluations whose
//     recorded fallback sequence and general vector were already
//     replayed compose from cached runs with no simulation and no
//     backend charge at all, and the hill-climb's neighbourhood
//     flooding re-visits exactly such combinations. Gate: >= 4x
//     effective evals/sec over the full-replay run (3.3x was typical
//     before the memo), with the memo hit rate recorded per run, and a
//     bit-identical evaluation fingerprint across all four runs. For
//     calibration: the PR 4 tree (commit f62f4a7) runs this exact
//     seeded hill-climb at ~185 evals/sec on the same host, within
//     noise of the full-replay run here — the full run is an honest
//     stand-in for the frozen baseline on whatever machine CI gives us.
//
// Usage, from the repository root:
//
//	go run scripts/benchincremental.go
//
// Exits non-zero if either gate fails or the fingerprints diverge.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"dmexplore/internal/alloc"
	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

const (
	colPackets    = 3000
	colMinSpeedup = 1.5
	colMinWindow  = time.Second

	// The hill-climb regime mirrors scripts/benchsearch.go (the PR 4
	// batched baseline recorded in BENCH_search.json): same trace scale,
	// space, budget, seed and backend latency.
	hcPackets    = 400
	hcBudget     = 512
	hcSeed       = 42
	hcLatency    = 5 * time.Millisecond
	hcMinSpeedup = 4.0
)

// colBaseline is the frozen pre-Replayer replay path (map-based
// profile.Run, easyport 3000 packets) in events/sec — the same numbers
// scripts/benchreplay.go tracks.
var colBaseline = map[string]float64{
	"kingsley": 6.58e6,
	"lea":      3.71e6,
	"firstfit": 4.37e6,
}

type columnarResult struct {
	Config       string  `json:"config"`
	EventsPerSec float64 `json:"events_per_sec"`
	BaselineEPS  float64 `json:"baseline_events_per_sec"`
	SpeedupX     float64 `json:"speedup_vs_baseline"`
}

type hillClimbRun struct {
	Regime        string  `json:"regime"` // "sim" or "backend"
	Incremental   bool    `json:"incremental"`
	WallSeconds   float64 `json:"wall_seconds"`
	Evaluations   int     `json:"evaluations"`
	EvalsPerSec   float64 `json:"evals_per_sec"`
	PartialEvals  int     `json:"partial_evals,omitempty"`
	ComposedEvals int     `json:"composed_evals,omitempty"`
	MemoHitRate   float64 `json:"memo_hit_rate,omitempty"`
	EventsSkipped uint64  `json:"events_skipped,omitempty"`
}

type output struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	ColumnarPackets    int              `json:"columnar_trace_packets"`
	ColumnarEvents     int              `json:"columnar_trace_events"`
	Columnar           []columnarResult `json:"columnar_replay"`
	ColumnarMinSpeedup float64          `json:"columnar_min_speedup"`

	HillClimbSpace     string         `json:"hillclimb_space"`
	HillClimbPackets   int            `json:"hillclimb_trace_packets"`
	HillClimbBudget    int            `json:"hillclimb_budget"`
	HillClimbSeed      uint64         `json:"hillclimb_seed"`
	HillClimbLatencyMS float64        `json:"hillclimb_backend_latency_ms"`
	HillClimb          []hillClimbRun `json:"hillclimb"`
	SimSpeedup         float64        `json:"sim_evals_speedup"`
	EffectiveSpeedup   float64        `json:"effective_evals_speedup"`
	BitIdentical       bool           `json:"bit_identical"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchincremental:", err)
		os.Exit(1)
	}
}

func run() error {
	out := output{
		GeneratedBy: "go run scripts/benchincremental.go",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if err := columnar(&out); err != nil {
		return err
	}
	if err := hillclimb(&out); err != nil {
		return err
	}

	f, err := os.Create("BENCH_incremental.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote BENCH_incremental.json")

	if out.ColumnarMinSpeedup < colMinSpeedup {
		return fmt.Errorf("columnar replay speedup %.2fx below the %.1fx bar",
			out.ColumnarMinSpeedup, colMinSpeedup)
	}
	if !out.BitIdentical {
		return fmt.Errorf("incremental hill-climb diverged from the full run")
	}
	if out.EffectiveSpeedup < hcMinSpeedup {
		return fmt.Errorf("incremental effective evals/sec speedup %.2fx below the %.1fx bar",
			out.EffectiveSpeedup, hcMinSpeedup)
	}
	return nil
}

// columnar measures steady-state replay throughput of the slab loop —
// trace compiled once, one Replayer reused — for each baseline
// configuration, exactly the regime core.Runner workers run in.
func columnar(out *output) error {
	p := workload.DefaultEasyportParams()
	p.Packets = colPackets
	tr, err := p.Generate()
	if err != nil {
		return err
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		return err
	}
	out.ColumnarPackets = colPackets
	out.ColumnarEvents = ct.Len()
	h := memhier.EmbeddedSoC()

	out.ColumnarMinSpeedup = math.Inf(1)
	for _, cfg := range []alloc.Config{
		alloc.KingsleyConfig(memhier.LayerDRAM),
		alloc.LeaConfig(memhier.LayerDRAM),
		alloc.SimpleFirstFitConfig(memhier.LayerDRAM),
	} {
		rep := profile.NewReplayer()
		if _, err := rep.Run(ct, cfg, h, profile.Options{}); err != nil {
			return fmt.Errorf("%s: %w", cfg.Label, err)
		}
		runs := 0
		start := time.Now()
		for time.Since(start) < colMinWindow {
			if _, err := rep.Run(ct, cfg, h, profile.Options{}); err != nil {
				return fmt.Errorf("%s: %w", cfg.Label, err)
			}
			runs++
		}
		eps := float64(runs) * float64(ct.Len()) / time.Since(start).Seconds()
		speedup := eps / colBaseline[cfg.Label]
		out.Columnar = append(out.Columnar, columnarResult{
			Config:       cfg.Label,
			EventsPerSec: eps,
			BaselineEPS:  colBaseline[cfg.Label],
			SpeedupX:     speedup,
		})
		if speedup < out.ColumnarMinSpeedup {
			out.ColumnarMinSpeedup = speedup
		}
		fmt.Fprintf(os.Stderr, "columnar %-9s %.3g events/sec  (baseline %.3g, %.2fx)\n",
			cfg.Label, eps, colBaseline[cfg.Label], speedup)
	}
	return nil
}

// fingerprint captures the bit-identity contract for a hill-climb run:
// the exact evaluation walk and every headline metric, floats by bits.
type fingerprint struct {
	seq    []int
	acc    []uint64
	foot   []int64
	energy []uint64
	cycles []uint64
	best   int
	score  uint64
}

func climb(regime string, incremental bool, tr *trace.Trace, ct *trace.Compiled, space *core.Space) (fingerprint, hillClimbRun, error) {
	r := &core.Runner{
		Hierarchy:   memhier.EmbeddedSoC(),
		Trace:       tr,
		Compiled:    ct,
		Workers:     1, // serial, like BENCH_search's baseline row
		Incremental: incremental,
	}
	if regime == "backend" {
		r.EvalLatency = hcLatency
	}
	weights := []core.Weighted{
		{Objective: profile.ObjAccesses, Weight: 1},
		{Objective: profile.ObjFootprint, Weight: 1},
	}
	start := time.Now()
	sr, err := r.HillClimb(space, weights, hcBudget, hcSeed)
	if err != nil {
		return fingerprint{}, hillClimbRun{}, err
	}
	wall := time.Since(start).Seconds()

	fp := fingerprint{best: sr.Best.Index, score: math.Float64bits(sr.BestScore)}
	hr := hillClimbRun{
		Regime:      regime,
		Incremental: incremental,
		WallSeconds: wall,
		Evaluations: len(sr.Evaluated),
		EvalsPerSec: float64(len(sr.Evaluated)) / wall,
	}
	for _, res := range sr.Evaluated {
		fp.seq = append(fp.seq, res.Index)
		fp.acc = append(fp.acc, res.Metrics.Accesses)
		fp.foot = append(fp.foot, res.Metrics.FootprintBytes)
		fp.energy = append(fp.energy, math.Float64bits(res.Metrics.EnergyNJ))
		fp.cycles = append(fp.cycles, res.Metrics.Cycles)
		if res.Incremental {
			hr.PartialEvals++
			hr.EventsSkipped += res.EventsSkipped
		}
		if res.Composed {
			hr.ComposedEvals++
		}
	}
	if hr.Evaluations > 0 {
		hr.MemoHitRate = float64(hr.ComposedEvals) / float64(hr.Evaluations)
	}
	return fp, hr, nil
}

// hillclimb runs the same seeded search with the partial path off and on
// in both regimes (see the package comment). The gate rides the backend
// regime — the one the PR 4 batching layer and BENCH_search.json define —
// while the sim regime is recorded ungated.
func hillclimb(out *output) error {
	p := workload.DefaultEasyportParams()
	p.Packets = hcPackets
	tr, err := p.Generate()
	if err != nil {
		return err
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		return err
	}
	space := core.FullEasyportSpace()
	out.HillClimbSpace = space.Name
	out.HillClimbPackets = hcPackets
	out.HillClimbBudget = hcBudget
	out.HillClimbSeed = hcSeed
	out.HillClimbLatencyMS = float64(hcLatency) / float64(time.Millisecond)

	out.BitIdentical = true
	var ref fingerprint
	speedups := map[string]float64{}
	for _, regime := range []string{"sim", "backend"} {
		var fullRate float64
		for _, incremental := range []bool{false, true} {
			fp, hr, err := climb(regime, incremental, tr, ct, space)
			if err != nil {
				return fmt.Errorf("%s hill-climb (incremental=%v): %w", regime, incremental, err)
			}
			if ref.seq == nil {
				ref = fp
			} else if !sameFingerprint(ref, fp) {
				out.BitIdentical = false
			}
			if incremental {
				speedups[regime] = hr.EvalsPerSec / fullRate
			} else {
				fullRate = hr.EvalsPerSec
			}
			out.HillClimb = append(out.HillClimb, hr)
			mode := "full       "
			if incremental {
				mode = "incremental"
			}
			fmt.Fprintf(os.Stderr,
				"hillclimb %-7s %s %6.2fs  %4d evals  %7.1f evals/sec  (%d partial, %d composed [%.0f%% memo], %.3g events skipped)\n",
				regime, mode, hr.WallSeconds, hr.Evaluations, hr.EvalsPerSec,
				hr.PartialEvals-hr.ComposedEvals, hr.ComposedEvals, 100*hr.MemoHitRate,
				float64(hr.EventsSkipped))
		}
	}
	out.SimSpeedup = speedups["sim"]
	out.EffectiveSpeedup = speedups["backend"]
	fmt.Fprintf(os.Stderr, "sim speedup %.2fx  effective (backend) speedup %.2fx  bit-identical %v\n",
		out.SimSpeedup, out.EffectiveSpeedup, out.BitIdentical)
	return nil
}

func sameFingerprint(a, b fingerprint) bool {
	if len(a.seq) != len(b.seq) || a.best != b.best || a.score != b.score {
		return false
	}
	for i := range a.seq {
		if a.seq[i] != b.seq[i] || a.acc[i] != b.acc[i] || a.foot[i] != b.foot[i] ||
			a.energy[i] != b.energy[i] || a.cycles[i] != b.cycles[i] {
			return false
		}
	}
	return true
}
