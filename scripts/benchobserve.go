//go:build ignore

// benchobserve gates the observability layer's two contracts and
// records the evidence in BENCH_observe.json at the repository root:
//
//  1. Zero perturbation: the same seeded surrogate-assisted hill-climb,
//     run with the flight recorder attached and without, must produce
//     the bit-identical evaluation sequence, metrics and provenance —
//     at one worker and at four.
//  2. Bounded overhead: recording spans for every pipeline stage must
//     cost at most maxOverheadPct of wall time. Timing compares
//     best-of-rounds interleaved minimums, the standard defence against
//     scheduler noise on shared CI runners.
//
// It also emits the CI artifacts for a human to look at:
//
//	results/observe/run.trace.json — Chrome trace-event JSON of the
//	    instrumented run (load at https://ui.perfetto.dev)
//	results/observe/metrics.txt    — the /metrics Prometheus exposition
//	    scraped over HTTP from the live telemetry server
//
// Usage, from the repository root:
//
//	go run scripts/benchobserve.go
//
// Exits non-zero on any divergence or an overhead above the budget.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/telemetry/span"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

const (
	budget         = 384
	seed           = 42
	rounds         = 5
	maxOverheadPct = 2.0
	artifactDir    = "results/observe"
)

type output struct {
	GeneratedBy    string               `json:"generated_by"`
	GoVersion      string               `json:"go_version"`
	GOMAXPROCS     int                  `json:"gomaxprocs"`
	Space          string               `json:"space"`
	SpaceSize      int                  `json:"space_size"`
	Budget         int                  `json:"budget"`
	Seed           uint64               `json:"seed"`
	Rounds         int                  `json:"rounds"`
	PlainSeconds   float64              `json:"plain_seconds_min"`
	TracedSeconds  float64              `json:"traced_seconds_min"`
	OverheadPct    float64              `json:"span_overhead_pct"`
	MaxOverheadPct float64              `json:"max_overhead_pct"`
	SpansRecorded  uint64               `json:"spans_recorded"`
	Identical      bool                 `json:"traced_matches_plain"`
	Stages         []span.StageSnapshot `json:"stages"`
}

// evalRecord is one step of the determinism fingerprint: evaluation
// order, exact metrics, and full provenance.
type evalRecord struct {
	Index    int
	Accesses uint64
	Foot     int64
	Origin   telemetry.Origin
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchobserve:", err)
		os.Exit(1)
	}
}

func run() error {
	p := workload.DefaultEasyportParams()
	p.Packets = 400
	tr, err := p.Generate()
	if err != nil {
		return err
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		return err
	}
	space := core.FullEasyportSpace()
	weights := []core.Weighted{
		{Objective: profile.ObjAccesses, Weight: 1},
		{Objective: profile.ObjFootprint, Weight: 0.5},
	}

	// sweep runs the seeded search once and returns its wall time,
	// fingerprint, and (when traced) the recorder and collector.
	sweep := func(workers int, traced bool) (time.Duration, []evalRecord, *span.Recorder, *telemetry.Collector, error) {
		col := telemetry.NewCollector(workers)
		var rec *span.Recorder
		r := &core.Runner{
			Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Compiled: ct,
			Workers: workers, Telemetry: col,
			Surrogate: &core.SurrogateOptions{},
		}
		if traced {
			rec = span.NewRecorder(workers, span.DefaultRingCapacity)
			r.Spans = rec
		}
		start := time.Now()
		sr, err := r.HillClimb(space, weights, budget, seed)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		wall := time.Since(start)
		fp := make([]evalRecord, 0, len(sr.Evaluated))
		for _, res := range sr.Evaluated {
			er := evalRecord{Index: res.Index, Accesses: res.Metrics.Accesses, Foot: res.Metrics.FootprintBytes}
			if res.Origin != nil {
				er.Origin = *res.Origin
			}
			fp = append(fp, er)
		}
		return wall, fp, rec, col, nil
	}

	// Contract 1: identity, traced vs plain, serial and parallel.
	_, plain1, _, _, err := sweep(1, false)
	if err != nil {
		return err
	}
	for _, workers := range []int{1, 4} {
		_, traced, _, _, err := sweep(workers, true)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(plain1, traced) {
			return fmt.Errorf("workers=%d: traced run diverges from the plain serial run", workers)
		}
	}
	fmt.Printf("identity: traced == plain at 1 and 4 workers (%d evaluations)\n", len(plain1))

	// Contract 2: overhead, interleaved best-of-%d minimums at 4 workers.
	minPlain, minTraced := time.Duration(1<<62), time.Duration(1<<62)
	var lastRec *span.Recorder
	var lastCol *telemetry.Collector
	for i := 0; i < rounds; i++ {
		wp, _, _, _, err := sweep(4, false)
		if err != nil {
			return err
		}
		if wp < minPlain {
			minPlain = wp
		}
		wt, _, rec, col, err := sweep(4, true)
		if err != nil {
			return err
		}
		if wt < minTraced {
			minTraced = wt
		}
		lastRec, lastCol = rec, col
	}
	overhead := 100 * (minTraced.Seconds()/minPlain.Seconds() - 1)
	fmt.Printf("overhead: plain %.4fs, traced %.4fs → %+.2f%% (budget %.1f%%)\n",
		minPlain.Seconds(), minTraced.Seconds(), overhead, maxOverheadPct)

	var spans uint64
	for i := 0; i < lastRec.Workers(); i++ {
		spans += lastRec.Ring(i).Len()
	}
	spans += lastRec.Coord().Len()
	stages := make([]span.StageSnapshot, 0)
	for _, st := range lastRec.Snapshot() {
		if st.Count > 0 {
			stages = append(stages, st)
		}
	}

	// Artifacts: the trace of the final instrumented run, and the
	// /metrics body scraped from the live HTTP server.
	if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		return err
	}
	tracePath := filepath.Join(artifactDir, "run.trace.json")
	if err := lastRec.WriteTraceFile(tracePath); err != nil {
		return err
	}
	srv, err := telemetry.Serve("127.0.0.1:0", lastCol, lastRec)
	if err != nil {
		return err
	}
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		srv.Close()
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if cerr := srv.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	metricsPath := filepath.Join(artifactDir, "metrics.txt")
	if err := os.WriteFile(metricsPath, body, 0o644); err != nil {
		return err
	}
	fmt.Printf("artifacts: %s (%d events ring-recorded), %s (%d bytes)\n",
		tracePath, spans, metricsPath, len(body))

	out := output{
		GeneratedBy:    "go run scripts/benchobserve.go",
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Space:          space.Name,
		SpaceSize:      space.Size(),
		Budget:         budget,
		Seed:           seed,
		Rounds:         rounds,
		PlainSeconds:   minPlain.Seconds(),
		TracedSeconds:  minTraced.Seconds(),
		OverheadPct:    overhead,
		MaxOverheadPct: maxOverheadPct,
		SpansRecorded:  spans,
		Identical:      true,
		Stages:         stages,
	}
	f, err := os.Create("BENCH_observe.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(out)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	if overhead > maxOverheadPct {
		return fmt.Errorf("span overhead %.2f%% exceeds the %.1f%% budget", overhead, maxOverheadPct)
	}
	fmt.Println("benchobserve: OK")
	return nil
}
