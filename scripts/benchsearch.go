//go:build ignore

// benchsearch measures what the batched evaluation session buys the
// guided searches: it runs the same seeded NSGA-II exploration of the
// full Easyport space at several worker counts and records wall-clock,
// throughput, and the speedup of 8 workers over the serial baseline in
// BENCH_search.json at the repository root.
//
// The evaluation cost is dominated by Runner.EvalLatency, modelling the
// regime the batching layer is built for: an evaluation backend with
// per-configuration latency (on-target profiling runs, co-simulation),
// where a generation-wide batch keeps the whole worker pool saturated
// while a per-configuration loop leaves it idle. The script also verifies
// the determinism contract — every worker count must produce the
// identical evaluation sequence and front.
//
// Usage, from the repository root:
//
//	go run scripts/benchsearch.go
//
// Exits non-zero if the 8-worker speedup falls below 3x or any worker
// count diverges from the serial run.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

const (
	population  = 32
	budget      = 512
	seed        = 42
	evalLatency = 5 * time.Millisecond
	minSpeedup  = 3.0
)

type runResult struct {
	Workers       int     `json:"workers"`
	WallSeconds   float64 `json:"wall_seconds"`
	Evaluations   int     `json:"evaluations"`
	EvalsPerSec   float64 `json:"evals_per_sec"`
	FrontSize     int     `json:"front_size"`
	SpeedupVsSer  float64 `json:"speedup_vs_serial,omitempty"`
	Deterministic bool    `json:"matches_serial_run"`
}

type output struct {
	GeneratedBy   string      `json:"generated_by"`
	GoVersion     string      `json:"go_version"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	Space         string      `json:"space"`
	SpaceSize     int         `json:"space_size"`
	Population    int         `json:"population"`
	Budget        int         `json:"budget"`
	Seed          uint64      `json:"seed"`
	EvalLatencyMS float64     `json:"eval_latency_ms"`
	Runs          []runResult `json:"runs"`
	Speedup8x     float64     `json:"speedup_8_workers_vs_serial"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsearch:", err)
		os.Exit(1)
	}
}

// fingerprint captures everything the determinism contract covers: the
// evaluation sequence (index + metrics) and the resulting front.
type fingerprint struct {
	seq   []int
	acc   []uint64
	foot  []int64
	front []int
}

func run() error {
	p := workload.DefaultEasyportParams()
	p.Packets = 400
	tr, err := p.Generate()
	if err != nil {
		return err
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		return err
	}
	space := core.FullEasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}

	out := output{
		GeneratedBy:   "go run scripts/benchsearch.go",
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Space:         space.Name,
		SpaceSize:     space.Size(),
		Population:    population,
		Budget:        budget,
		Seed:          seed,
		EvalLatencyMS: float64(evalLatency) / float64(time.Millisecond),
	}

	var serial fingerprint
	var serialWall float64
	for _, workers := range []int{1, 2, 4, 8} {
		r := &core.Runner{
			Hierarchy:   memhier.EmbeddedSoC(),
			Trace:       tr,
			Compiled:    ct,
			Workers:     workers,
			EvalLatency: evalLatency,
		}
		start := time.Now()
		results, err := r.Evolve(space, objs, core.EvolveOptions{
			Population: population, Budget: budget, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("workers=%d: %w", workers, err)
		}
		wall := time.Since(start).Seconds()
		front, _, err := core.ParetoSet(core.Feasible(results), objs)
		if err != nil {
			return err
		}
		fp := fingerprint{}
		for _, res := range results {
			fp.seq = append(fp.seq, res.Index)
			fp.acc = append(fp.acc, res.Metrics.Accesses)
			fp.foot = append(fp.foot, res.Metrics.FootprintBytes)
		}
		for _, res := range front {
			fp.front = append(fp.front, res.Index)
		}

		rr := runResult{
			Workers:     workers,
			WallSeconds: wall,
			Evaluations: len(results),
			EvalsPerSec: float64(len(results)) / wall,
			FrontSize:   len(front),
		}
		if workers == 1 {
			serial, serialWall = fp, wall
			rr.Deterministic = true
		} else {
			rr.Deterministic = sameFingerprint(serial, fp)
			rr.SpeedupVsSer = serialWall / wall
			if !rr.Deterministic {
				return fmt.Errorf("workers=%d diverged from the serial run", workers)
			}
		}
		out.Runs = append(out.Runs, rr)
		fmt.Fprintf(os.Stderr,
			"workers=%d  %6.2fs  %4d evals  %6.1f evals/sec  front=%d  speedup=%.2fx\n",
			workers, wall, rr.Evaluations, rr.EvalsPerSec, rr.FrontSize, serialWall/wall)
	}
	out.Speedup8x = serialWall / out.Runs[len(out.Runs)-1].WallSeconds

	f, err := os.Create("BENCH_search.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote BENCH_search.json")
	if out.Speedup8x < minSpeedup {
		return fmt.Errorf("8-worker speedup %.2fx below the %.1fx bar", out.Speedup8x, minSpeedup)
	}
	return nil
}

func sameFingerprint(a, b fingerprint) bool {
	if len(a.seq) != len(b.seq) || len(a.front) != len(b.front) {
		return false
	}
	for i := range a.seq {
		if a.seq[i] != b.seq[i] || a.acc[i] != b.acc[i] || a.foot[i] != b.foot[i] {
			return false
		}
	}
	for i := range a.front {
		if a.front[i] != b.front[i] {
			return false
		}
	}
	return true
}
