set title "Easyport footprint over time (never-coalesce; compare immediate)"
set xlabel "trace event"
set ylabel "bytes"
set key top left
set grid
plot "results/f2_footprint_never.dat" using 1:2 with lines lw 2 lc rgb "#cc0000" title "allocator footprint", \
     "results/f2_footprint_never.dat" using 1:3 with lines lw 1 lc rgb "#555555" title "application demand"
