set title "Easyport: Pareto-optimal DM allocator configurations"
set xlabel "accesses"
set ylabel "footprint"
set key top right
set grid
plot "results/f1_pareto.dat" index 0 using 1:2 with points pt 7 ps 0.5 lc rgb "#bbbbbb" title "all configurations", \
     "results/f1_pareto.dat" index 1 using 1:2 with linespoints pt 5 ps 1 lc rgb "#cc0000" title "Pareto-optimal"
