package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/pareto"
	"dmexplore/internal/profile"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/workload"
)

// Options configure a Coordinator.
type Options struct {
	// StateDir, when non-empty, checkpoints every job as a JSONL journal
	// (job-<id>.jsonl) flushed per line; a Coordinator opened over the
	// same directory resumes every job from its checkpoint. Empty
	// disables persistence.
	StateDir string

	// LeaseTTL is how long a lease survives without a heartbeat before
	// its shard is re-issued (default DefaultLeaseTTL).
	LeaseTTL time.Duration

	// Now overrides the clock (tests advance it to expire leases
	// deterministically). Nil uses time.Now.
	Now func() time.Time
}

// Coordinator is the distributed exploration service's brain: it owns
// the job set, the shard queues, the lease table and the migration
// barriers. All state lives behind one mutex — the coordinator does no
// evaluation itself, every handler is bookkeeping in microseconds — and
// every mutation that must survive a restart appends one line to the
// job's checkpoint journal before it is acknowledged.
type Coordinator struct {
	opts Options

	mu        sync.Mutex
	jobs      map[string]*job
	jobOrder  []string
	leases    map[string]*lease
	workers   map[string]*workerState
	nextJob   int
	nextLease int
}

type lease struct {
	token   string
	worker  string
	jobID   string
	shardID int
	expires time.Time
}

type workerState struct {
	lastSeen time.Time
	snap     *telemetry.Snapshot
}

type seenKey struct {
	shard, index int
}

// migRound is one migration barrier: fronts posted so far, and a channel
// closed when the round resolves (immigrants computed, or the job died).
type migRound struct {
	fronts map[int][]core.IslandMember
	ready  chan struct{}
}

type job struct {
	id      string
	spec    JobSpec
	space   *core.Space
	shards  []ShardState
	queue   []int          // pending shard IDs, lease order
	done    map[int]bool   // shard ID → completed
	leased  map[int]string // shard ID → live lease token
	state   string         // running|done|failed
	failure string

	results map[int]*profile.Metrics // configuration index → exact metrics (first write wins)
	labels  map[int][]string
	records []telemetry.Record // the job's journal, arrival order
	seen    map[seenKey]bool   // (shard, index) dedup for re-issued shards

	rounds map[int]*migRound // generation → open barrier
	migOut map[int][]int     // generation → resolved immigrants (memo + checkpoint)

	cond *sync.Cond // broadcast on record append / state change (journal followers)

	ckpt     *json.Encoder // nil when persistence is off
	ckptFile *os.File
}

// ckptLine is one checkpoint journal line. The "t" tag picks the
// variant: spec, result, shard_done, migration, done, failed.
type ckptLine struct {
	T       string            `json:"t"`
	Spec    *JobSpec          `json:"spec,omitempty"`
	Shard   int               `json:"shard,omitempty"`
	Record  *telemetry.Record `json:"record,omitempty"`
	Metrics *profile.Metrics  `json:"metrics,omitempty"`
	Gen     int               `json:"gen,omitempty"`
	Imm     []int             `json:"imm,omitempty"`
	Err     string            `json:"err,omitempty"`
}

// NewCoordinator builds a coordinator, resuming every job checkpointed
// under opts.StateDir: completed jobs stay queryable, unfinished shards
// of running jobs return to the lease queue, and resolved migration
// generations replay from the checkpoint so resumed islands see exactly
// the immigrants the original run saw.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	c := &Coordinator{
		opts:    opts,
		jobs:    make(map[string]*job),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerState),
	}
	if opts.StateDir == "" {
		return c, nil
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, err
	}
	names, err := filepath.Glob(filepath.Join(opts.StateDir, "job-*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		if err := c.loadJob(name); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Close releases the checkpoint files. In-flight handlers must have
// drained (close the HTTP server first).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for _, j := range c.jobs {
		if j.ckptFile != nil {
			if cerr := j.ckptFile.Close(); err == nil {
				err = cerr
			}
			j.ckptFile = nil
			j.ckpt = nil
		}
	}
	return err
}

// loadJob replays one checkpoint journal into a live job.
func (c *Coordinator) loadJob(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base := filepath.Base(path)
	id := strings.TrimSuffix(strings.TrimPrefix(base, "job-"), ".jsonl")
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "j")); err == nil && n >= c.nextJob {
		c.nextJob = n
	}
	var j *job
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var l ckptLine
		if err := json.Unmarshal([]byte(text), &l); err != nil {
			return fmt.Errorf("serve: checkpoint %s line %d: %w", path, line, err)
		}
		switch l.T {
		case "spec":
			if l.Spec == nil {
				return fmt.Errorf("serve: checkpoint %s line %d: spec line without spec", path, line)
			}
			j, err = c.newJob(id, *l.Spec)
			if err != nil {
				return err
			}
		case "result":
			if j == nil || l.Record == nil {
				continue
			}
			c.applyResult(j, l.Shard, *l.Record, l.Metrics)
		case "shard_done":
			if j == nil {
				continue
			}
			j.done[l.Shard] = true
		case "migration":
			if j == nil {
				continue
			}
			j.migOut[l.Gen] = append([]int(nil), l.Imm...)
		case "done":
			if j == nil {
				continue
			}
			j.state = "done"
		case "failed":
			if j == nil {
				continue
			}
			j.state = "failed"
			j.failure = l.Err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if j == nil {
		return nil
	}
	// Rebuild the pending queue: every shard neither done nor (by
	// definition after restart) leased.
	j.queue = j.queue[:0]
	for _, sh := range j.shards {
		if !j.done[sh.ID] {
			j.queue = append(j.queue, sh.ID)
		}
	}
	if j.state == "running" && len(j.queue) == 0 {
		j.state = "done"
	}
	if j.state == "running" || j.state == "" {
		j.state = "running"
		ck, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		j.ckptFile = ck
		j.ckpt = json.NewEncoder(ck)
	}
	c.jobs[id] = j
	c.jobOrder = append(c.jobOrder, id)
	return nil
}

// newJob builds the in-memory job (no checkpoint writes). Caller holds
// no particular lock during load; Submit holds c.mu.
func (c *Coordinator) newJob(id string, spec JobSpec) (*job, error) {
	space, err := ResolveSpace(spec.Workload, spec.Space)
	if err != nil {
		return nil, err
	}
	j := &job{
		id:      id,
		spec:    spec,
		space:   space,
		shards:  planShards(spec, space),
		done:    make(map[int]bool),
		leased:  make(map[int]string),
		state:   "running",
		results: make(map[int]*profile.Metrics),
		labels:  make(map[int][]string),
		seen:    make(map[seenKey]bool),
		rounds:  make(map[int]*migRound),
		migOut:  make(map[int][]int),
	}
	j.cond = sync.NewCond(&c.mu)
	for _, sh := range j.shards {
		j.queue = append(j.queue, sh.ID)
	}
	return j, nil
}

// applyResult folds one journal record (+ metrics) into the job's state:
// dedup by (shard, index), first-wins results map, append to the
// journal. Used both by the live results stream and checkpoint replay.
func (c *Coordinator) applyResult(j *job, shardID int, rec telemetry.Record, m *profile.Metrics) bool {
	key := seenKey{shard: shardID, index: rec.Index}
	if j.seen[key] {
		return false
	}
	j.seen[key] = true
	j.records = append(j.records, rec)
	if m != nil {
		if _, ok := j.results[rec.Index]; !ok {
			j.results[rec.Index] = m
			j.labels[rec.Index] = rec.Labels
		}
	}
	return true
}

// checkpoint appends one line to the job's journal. Persistence off or
// write errors are silent by design: the in-memory run proceeds, only
// restart durability degrades.
func (c *Coordinator) checkpoint(j *job, l ckptLine) {
	if j.ckpt == nil {
		return
	}
	_ = j.ckpt.Encode(l)
}

// Submit registers a job and returns its ID.
func (c *Coordinator) Submit(spec JobSpec) (string, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return "", err
	}
	if _, err := workload.New(spec.Workload, spec.WorkloadSeed, spec.Scale); err != nil {
		return "", err
	}
	if _, err := ResolveHierarchy(spec.Hierarchy); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextJob++
	id := fmt.Sprintf("j%d", c.nextJob)
	j, err := c.newJob(id, spec)
	if err != nil {
		return "", err
	}
	if c.opts.StateDir != "" {
		path := filepath.Join(c.opts.StateDir, "job-"+id+".jsonl")
		f, err := os.Create(path)
		if err != nil {
			return "", err
		}
		j.ckptFile = f
		j.ckpt = json.NewEncoder(f)
	}
	c.jobs[id] = j
	c.jobOrder = append(c.jobOrder, id)
	c.checkpoint(j, ckptLine{T: "spec", Spec: &spec})
	return id, nil
}

// sweepLeases requeues the shards of every expired lease — the lazy half
// of work-stealing: the next worker to ask for work inherits them.
// Caller holds c.mu.
func (c *Coordinator) sweepLeases() {
	now := c.opts.Now()
	for token, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, token)
		j := c.jobs[l.jobID]
		if j == nil {
			continue
		}
		if j.leased[l.shardID] == token {
			delete(j.leased, l.shardID)
			if !j.done[l.shardID] && j.state == "running" {
				j.queue = append(j.queue, l.shardID)
			}
		}
	}
}

// grantLeases hands out up to slots shards across the running jobs, in
// submission order. Caller holds c.mu.
func (c *Coordinator) grantLeases(worker string, slots int) []LeaseGrant {
	var grants []LeaseGrant
	now := c.opts.Now()
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		if j.state != "running" {
			continue
		}
		for slots > len(grants) && len(j.queue) > 0 {
			shardID := j.queue[0]
			j.queue = j.queue[1:]
			if j.done[shardID] {
				continue
			}
			sh := j.shards[shardID-1]
			c.nextLease++
			token := fmt.Sprintf("L%d", c.nextLease)
			c.leases[token] = &lease{
				token: token, worker: worker, jobID: j.id,
				shardID: shardID, expires: now.Add(c.opts.LeaseTTL),
			}
			j.leased[shardID] = token
			g := LeaseGrant{
				Lease: token, JobID: j.id, Spec: j.spec, Shard: sh,
				TTLMS: c.opts.LeaseTTL.Milliseconds(),
			}
			switch sh.Kind {
			case "range":
				g.Indices = append([]int(nil), sweepIndices(j.spec, j.space.Size())[sh.Lo:sh.Hi]...)
			case "island":
				// Ship the job's checkpointed results so a resumed island
				// fast-forwards its deterministic walk through the session
				// memo — bit-identical, no re-simulation, no modelled
				// backend latency.
				g.Warm = warmResults(j)
			}
			grants = append(grants, g)
		}
	}
	return grants
}

func warmResults(j *job) []WarmResult {
	if len(j.results) == 0 {
		return nil
	}
	indices := make([]int, 0, len(j.results))
	for idx := range j.results {
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	warm := make([]WarmResult, 0, len(indices))
	for _, idx := range indices {
		warm = append(warm, WarmResult{Index: idx, Metrics: j.results[idx]})
	}
	return warm
}

// shardDone marks a shard complete, retires its lease, resolves any
// migration rounds the retirement completes, and finishes the job when
// it was the last shard. Caller holds c.mu.
func (c *Coordinator) shardDone(j *job, shardID int, token string) {
	if j.done[shardID] {
		return
	}
	j.done[shardID] = true
	delete(j.leased, shardID)
	delete(c.leases, token)
	c.checkpoint(j, ckptLine{T: "shard_done", Shard: shardID})
	// An island's retirement can complete open migration barriers.
	for gen, round := range j.rounds {
		c.checkRound(j, gen, round)
	}
	allDone := true
	for _, sh := range j.shards {
		if !j.done[sh.ID] {
			allDone = false
			break
		}
	}
	if allDone && j.state == "running" {
		j.state = "done"
		c.checkpoint(j, ckptLine{T: "done"})
		if j.ckptFile != nil {
			j.ckptFile.Close()
			j.ckptFile = nil
			j.ckpt = nil
		}
	}
	j.cond.Broadcast()
}

// jobFailed moves the job to the failed state and releases every waiter
// (journal followers, migration barriers). Caller holds c.mu.
func (c *Coordinator) jobFailed(j *job, msg string) {
	if j.state != "running" {
		return
	}
	j.state = "failed"
	j.failure = msg
	c.checkpoint(j, ckptLine{T: "failed", Err: msg})
	if j.ckptFile != nil {
		j.ckptFile.Close()
		j.ckptFile = nil
		j.ckpt = nil
	}
	for gen, round := range j.rounds {
		close(round.ready)
		delete(j.rounds, gen)
	}
	j.cond.Broadcast()
}

// islandRetired reports whether the island can no longer post fronts:
// its shard is done. Caller holds c.mu.
func (j *job) islandRetired(island int) bool {
	for _, sh := range j.shards {
		if sh.Kind == "island" && sh.Island == island {
			return j.done[sh.ID]
		}
	}
	return true
}

// checkRound resolves a migration barrier when every live island has
// posted (or retired): merge the posted fronts into the global Pareto
// front, cap at MigrationK, memoize and checkpoint. Deterministic given
// the fronts — posting order cannot matter because the merge reads the
// fronts keyed by island. Caller holds c.mu.
func (c *Coordinator) checkRound(j *job, gen int, round *migRound) {
	if _, resolved := j.migOut[gen]; resolved {
		return
	}
	for i := 0; i < j.spec.Islands; i++ {
		if _, posted := round.fronts[i]; posted {
			continue
		}
		if !j.islandRetired(i) {
			return // barrier still waiting on island i
		}
	}
	islands := make([]int, 0, len(round.fronts))
	for i := range round.fronts {
		islands = append(islands, i)
	}
	sort.Ints(islands)
	fronts := make([][]pareto.Point, 0, len(islands))
	for _, i := range islands {
		pts := make([]pareto.Point, 0, len(round.fronts[i]))
		for _, m := range round.fronts[i] {
			pts = append(pts, pareto.Point{Tag: strconv.Itoa(m.Index), Values: m.Values})
		}
		fronts = append(fronts, pts)
	}
	merged := pareto.MergeFronts(fronts...)
	imm := make([]int, 0, j.spec.MigrationK)
	for _, p := range merged {
		if len(imm) >= j.spec.MigrationK {
			break
		}
		idx, err := strconv.Atoi(p.Tag)
		if err != nil {
			continue
		}
		imm = append(imm, idx)
	}
	j.migOut[gen] = imm
	c.checkpoint(j, ckptLine{T: "migration", Gen: gen, Imm: imm})
	delete(j.rounds, gen)
	close(round.ready)
}

// status builds the job's status (front included when includeFront).
// Caller holds c.mu.
func (c *Coordinator) status(j *job, includeFront bool) JobStatus {
	st := JobStatus{
		ID: j.id, Spec: j.spec, State: j.state,
		Shards: len(j.shards), Results: len(j.results), Records: len(j.records),
		Error: j.failure,
	}
	for _, sh := range j.shards {
		if j.done[sh.ID] {
			st.ShardsDone++
		}
	}
	if !includeFront {
		return st
	}
	rs := make([]core.Result, 0, len(j.results))
	for idx, m := range j.results {
		rs = append(rs, core.Result{Index: idx, Labels: j.labels[idx], Metrics: m})
	}
	front, points, err := core.ParetoSet(core.Feasible(rs), j.spec.Objectives)
	if err != nil {
		return st
	}
	byTag := make(map[string][]float64, len(points))
	for _, p := range points {
		byTag[p.Tag] = p.Values
	}
	for _, r := range front {
		st.Front = append(st.Front, FrontPoint{
			Index: r.Index, Labels: r.Labels, Values: byTag[strconv.Itoa(r.Index)],
		})
	}
	return st
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", c.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/journal", c.handleJournal)
	mux.HandleFunc("POST /api/v1/lease", c.handleLease)
	mux.HandleFunc("POST /api/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/results", c.handleResults)
	mux.HandleFunc("POST /api/v1/migrate", c.handleMigrate)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, err := c.Submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, SubmitResponse{ID: id})
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]JobStatus, 0, len(c.jobOrder))
	for _, id := range c.jobOrder {
		out = append(out, c.status(c.jobs[id], false))
	}
	c.mu.Unlock()
	writeJSON(w, out)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j := c.jobs[r.PathValue("id")]
	if j == nil {
		c.mu.Unlock()
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	st := c.status(j, true)
	c.mu.Unlock()
	writeJSON(w, st)
}

// handleJournal streams the job's journal as JSONL from record `from`
// onward. With follow=1 the stream stays open, pushing records as they
// arrive, until the job reaches a terminal state — the resumable
// streaming contract: a client that disconnects at record N reconnects
// with from=N and misses nothing.
func (c *Coordinator) handleJournal(w http.ResponseWriter, r *http.Request) {
	from, _ := strconv.Atoi(r.URL.Query().Get("from"))
	if from < 0 {
		from = 0
	}
	follow := r.URL.Query().Get("follow") == "1"
	c.mu.Lock()
	j := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		c.mu.Lock()
		for follow && from >= len(j.records) && j.state == "running" && r.Context().Err() == nil {
			j.cond.Wait()
		}
		batch := append([]telemetry.Record(nil), j.records[min(from, len(j.records)):]...)
		terminal := j.state != "running"
		c.mu.Unlock()
		for _, rec := range batch {
			if err := enc.Encode(rec); err != nil {
				return
			}
			from++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if !follow || terminal || r.Context().Err() != nil {
			return
		}
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Slots <= 0 {
		req.Slots = 1
	}
	c.mu.Lock()
	c.sweepLeases()
	c.touchWorker(req.Worker, nil)
	grants := c.grantLeases(req.Worker, req.Slots)
	c.mu.Unlock()
	writeJSON(w, LeaseResponse{Grants: grants})
}

func (c *Coordinator) touchWorker(name string, snap *telemetry.Snapshot) {
	if name == "" {
		return
	}
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{}
		c.workers[name] = ws
	}
	ws.lastSeen = c.opts.Now()
	if snap != nil {
		ws.snap = snap
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.sweepLeases()
	c.touchWorker(req.Worker, req.Telemetry)
	now := c.opts.Now()
	var resp HeartbeatResponse
	for _, token := range req.Leases {
		if l, ok := c.leases[token]; ok && l.worker == req.Worker {
			l.expires = now.Add(c.opts.LeaseTTL)
		} else {
			resp.Lost = append(resp.Lost, token)
		}
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

// handleResults consumes a worker's chunked JSONL result stream for one
// lease. Each line lands in the job's journal (deduplicated against
// re-issued shards) and checkpoint before the next is read, so a
// coordinator killed mid-stream loses at most the line in flight.
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("lease")
	c.mu.Lock()
	c.sweepLeases()
	l := c.leases[token]
	if l == nil {
		c.mu.Unlock()
		http.Error(w, "unknown lease", http.StatusConflict)
		return
	}
	j := c.jobs[l.jobID]
	shardID := l.shardID
	c.mu.Unlock()

	dec := json.NewDecoder(r.Body)
	for {
		var line ResultLine
		if err := dec.Decode(&line); err != nil {
			// EOF (normal or abandoned stream) or a malformed line: stop
			// reading. An abandoned shard's lease expires and re-issues.
			break
		}
		c.mu.Lock()
		if cur := c.leases[token]; cur == nil {
			// Lease expired mid-stream (missed heartbeats): drop the rest;
			// the shard's re-issue will deliver these results again.
			c.mu.Unlock()
			http.Error(w, "lease expired", http.StatusConflict)
			return
		}
		switch {
		case line.Record != nil:
			if c.applyResult(j, shardID, *line.Record, line.Metrics) {
				c.checkpoint(j, ckptLine{T: "result", Shard: shardID, Record: line.Record, Metrics: line.Metrics})
				j.cond.Broadcast()
			}
		case line.Done:
			c.shardDone(j, shardID, token)
		case line.Failed != "":
			c.jobFailed(j, fmt.Sprintf("shard %d: %s", shardID, line.Failed))
			delete(c.leases, token)
			delete(j.leased, shardID)
		}
		c.mu.Unlock()
	}
	writeJSON(w, struct{}{})
}

// handleMigrate implements the migration barrier. The posting island
// blocks until the round resolves; a generation already resolved (memo
// or checkpoint) returns immediately, which is what lets a re-leased
// island replay its past migrations deterministically.
func (c *Coordinator) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.sweepLeases()
	j := c.jobs[req.JobID]
	if j == nil {
		c.mu.Unlock()
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	if imm, ok := j.migOut[req.Gen]; ok {
		c.mu.Unlock()
		writeJSON(w, MigrateResponse{Immigrants: imm})
		return
	}
	if j.state != "running" {
		c.mu.Unlock()
		http.Error(w, "job is "+j.state, http.StatusConflict)
		return
	}
	if l := c.leases[req.Lease]; l == nil || l.jobID != req.JobID {
		c.mu.Unlock()
		http.Error(w, "unknown lease", http.StatusConflict)
		return
	}
	round := j.rounds[req.Gen]
	if round == nil {
		round = &migRound{fronts: make(map[int][]core.IslandMember), ready: make(chan struct{})}
		j.rounds[req.Gen] = round
	}
	if _, posted := round.fronts[req.Island]; !posted {
		round.fronts[req.Island] = req.Front
	}
	c.checkRound(j, req.Gen, round)
	ready := round.ready
	c.mu.Unlock()

	select {
	case <-ready:
	case <-r.Context().Done():
		return
	}
	c.mu.Lock()
	imm, ok := j.migOut[req.Gen]
	failed := j.state == "failed"
	c.mu.Unlock()
	if !ok || failed {
		http.Error(w, "job failed", http.StatusConflict)
		return
	}
	writeJSON(w, MigrateResponse{Immigrants: imm})
}

// handleMetrics exposes coordinator state and per-worker / per-island
// telemetry in Prometheus text format under dmserve_* names.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	states := map[string]int{"running": 0, "done": 0, "failed": 0}
	var shardSamples, resultSamples, islandSamples []telemetry.PromSample
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		states[j.state]++
		doneShards := 0
		for _, sh := range j.shards {
			if j.done[sh.ID] {
				doneShards++
			}
		}
		jobLabel := telemetry.PromLabel("job", j.id)
		shardSamples = append(shardSamples,
			telemetry.PromSample{Labels: jobLabel + "," + telemetry.PromLabel("state", "done"), Value: float64(doneShards)},
			telemetry.PromSample{Labels: jobLabel + "," + telemetry.PromLabel("state", "pending"), Value: float64(len(j.queue))},
			telemetry.PromSample{Labels: jobLabel + "," + telemetry.PromLabel("state", "leased"), Value: float64(len(j.leased))},
		)
		resultSamples = append(resultSamples, telemetry.PromSample{Labels: jobLabel, Value: float64(len(j.results))})
		if j.spec.Strategy == "nsga2" {
			perIsland := make(map[int]int)
			for _, rec := range j.records {
				if rec.Island > 0 {
					perIsland[rec.Island]++
				}
			}
			islands := make([]int, 0, len(perIsland))
			for i := range perIsland {
				islands = append(islands, i)
			}
			sort.Ints(islands)
			for _, i := range islands {
				islandSamples = append(islandSamples, telemetry.PromSample{
					Labels: jobLabel + "," + telemetry.PromLabel("island", strconv.Itoa(i)),
					Value:  float64(perIsland[i]),
				})
			}
		}
	}
	var jobSamples []telemetry.PromSample
	for _, state := range []string{"running", "done", "failed"} {
		jobSamples = append(jobSamples, telemetry.PromSample{
			Labels: telemetry.PromLabel("state", state), Value: float64(states[state]),
		})
	}
	workerNames := make([]string, 0, len(c.workers))
	for name := range c.workers {
		workerNames = append(workerNames, name)
	}
	sort.Strings(workerNames)
	var wSims, wComposed, wMemo, wCache []telemetry.PromSample
	for _, name := range workerNames {
		ws := c.workers[name]
		if ws.snap == nil {
			continue
		}
		label := telemetry.PromLabel("worker", name)
		wSims = append(wSims, telemetry.PromSample{Labels: label, Value: float64(ws.snap.Sims)})
		wComposed = append(wComposed, telemetry.PromSample{Labels: label, Value: float64(ws.snap.ComposedEvals)})
		wMemo = append(wMemo, telemetry.PromSample{Labels: label, Value: float64(ws.snap.MemoHits)})
		wCache = append(wCache, telemetry.PromSample{Labels: label, Value: float64(ws.snap.CacheHits)})
	}
	leases := len(c.leases)
	c.mu.Unlock()

	var b strings.Builder
	telemetry.WritePromSeries(&b, "dmserve_jobs", "gauge", "Jobs by state.", jobSamples)
	telemetry.WritePromSeries(&b, "dmserve_leases", "gauge", "Live leases.", []telemetry.PromSample{{Value: float64(leases)}})
	telemetry.WritePromSeries(&b, "dmserve_shards", "gauge", "Shards by job and state.", shardSamples)
	telemetry.WritePromSeries(&b, "dmserve_results_total", "counter", "Distinct configurations evaluated per job.", resultSamples)
	if islandSamples != nil {
		telemetry.WritePromSeries(&b, "dmserve_island_records_total", "counter", "Journal records per island.", islandSamples)
	}
	telemetry.WritePromSeries(&b, "dmserve_worker_sims_total", "counter", "Simulations per worker (last heartbeat).", wSims)
	telemetry.WritePromSeries(&b, "dmserve_worker_composed_evals_total", "counter", "Composed evaluations per worker (last heartbeat).", wComposed)
	telemetry.WritePromSeries(&b, "dmserve_worker_memo_hits_total", "counter", "Memo hits per worker (last heartbeat).", wMemo)
	telemetry.WritePromSeries(&b, "dmserve_worker_cache_hits_total", "counter", "Cache hits per worker (last heartbeat).", wCache)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(b.String()))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
