package serve

import (
	"context"
	"io"
	"math"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/telemetry"
)

// startCoordinator spins up a coordinator behind an httptest server and
// returns it with a client pointed at it.
func startCoordinator(t *testing.T, opts Options) (*Coordinator, *httptest.Server, *Client) {
	t.Helper()
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		srv.Close()
		coord.Close()
	})
	return coord, srv, &Client{Base: srv.URL}
}

// startWorker runs a worker against the coordinator until the returned
// stop function is called (which waits for the worker to drain).
func startWorker(t *testing.T, base, id string, slots int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	w := &Worker{Coordinator: base, ID: id, Slots: slots, SessionWorkers: 2, Poll: 10 * time.Millisecond}
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

// waitJob polls until the job leaves the running state.
func waitJob(t *testing.T, client *Client, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := client.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after %v: %+v", id, timeout, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// collectJournal drains the job's full journal.
func collectJournal(t *testing.T, client *Client, id string) []telemetry.Record {
	t.Helper()
	var recs []telemetry.Record
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := client.FollowJournal(ctx, id, 0, func(rec telemetry.Record) {
		recs = append(recs, rec)
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

// assertRecordMatchesResult compares a journal record's headline metrics
// bit-for-bit against a locally evaluated result.
func assertRecordMatchesResult(t *testing.T, rec telemetry.Record, res core.Result) {
	t.Helper()
	if rec.Index != res.Index {
		t.Fatalf("record index %d vs local %d — the walks diverged", rec.Index, res.Index)
	}
	m := res.Metrics
	if m == nil {
		t.Fatalf("local result %d has no metrics", res.Index)
	}
	if rec.Accesses != m.Accesses || rec.FootprintBytes != m.FootprintBytes ||
		rec.Cycles != m.Cycles ||
		math.Float64bits(rec.EnergyNJ) != math.Float64bits(m.EnergyNJ) {
		t.Fatalf("config %d: distributed metrics diverge from local\n  rec %+v\n  loc %+v",
			res.Index, rec, m)
	}
}

func sweepSpec() JobSpec {
	return JobSpec{
		Workload: "easyport", WorkloadSeed: 1, Scale: 5,
		Space: "narrow", Hierarchy: "soc",
		Objectives: []string{"accesses", "footprint"},
		Strategy:   "sweep", Sample: 64, SampleSeed: 5, ShardSize: 20,
	}
}

func islandSpec(islands int) JobSpec {
	return JobSpec{
		Workload: "easyport", WorkloadSeed: 1, Scale: 5,
		Space: "narrow", Hierarchy: "soc",
		Objectives: []string{"accesses", "footprint"},
		Strategy:   "nsga2", Islands: islands,
		Population: 8, Budget: 48, Seed: 11,
		MigrationEvery: 2, MigrationK: 2,
	}
}

// TestSweepShardsMatchLocal: a sharded, sampled sweep over the service
// must evaluate exactly the configurations a local run draws, with
// bit-identical metrics.
func TestSweepShardsMatchLocal(t *testing.T) {
	_, _, client := startCoordinator(t, Options{})
	id, err := client.Submit(sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, client.Base, "w1", 2)
	st := waitJob(t, client, id, 60*time.Second)
	if st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	spec := sweepSpec().withDefaults()
	if st.Results != spec.Sample {
		t.Fatalf("evaluated %d configurations, want %d", st.Results, spec.Sample)
	}
	if want := (spec.Sample + spec.ShardSize - 1) / spec.ShardSize; st.ShardsDone != want {
		t.Fatalf("%d shards done, want %d", st.ShardsDone, want)
	}

	// Local reference over the same environment and index order.
	env, err := BuildEnv(spec, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := env.Runner.NewSession(env.Space)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	indices := sweepIndices(spec, env.Space.Size())
	local, err := sess.Eval(indices)
	if err != nil {
		t.Fatal(err)
	}
	byIndex := make(map[int]core.Result, len(local))
	for _, res := range local {
		byIndex[res.Index] = res
	}

	recs := collectJournal(t, client, id)
	if len(recs) != spec.Sample {
		t.Fatalf("journal has %d records, want %d", len(recs), spec.Sample)
	}
	for _, rec := range recs {
		res, ok := byIndex[rec.Index]
		if !ok {
			t.Fatalf("service evaluated index %d the local sample never drew", rec.Index)
		}
		assertRecordMatchesResult(t, rec, res)
		if rec.Shard == 0 || rec.Worker == "" {
			t.Fatalf("record missing distributed provenance: %+v", rec)
		}
		if rec.Island != 0 {
			t.Fatalf("sweep record carries island stamp: %+v", rec)
		}
	}
}

// TestOneIslandMatchesSerialEvolve is the determinism acceptance test:
// a 1-island job on one worker must stream the exact evaluation walk —
// same configurations, same order, bit-identical metrics — as the
// serial NSGA-II at the same seed.
func TestOneIslandMatchesSerialEvolve(t *testing.T) {
	spec := islandSpec(1).withDefaults()
	_, _, client := startCoordinator(t, Options{})
	id, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, client.Base, "w1", 1)
	if st := waitJob(t, client, id, 60*time.Second); st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	env, err := BuildEnv(spec, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := env.Runner.Evolve(env.Space, spec.Objectives, core.EvolveOptions{
		Population: spec.Population, Budget: spec.Budget, Seed: spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	recs := collectJournal(t, client, id)
	if len(recs) != len(serial) {
		t.Fatalf("distributed walk evaluated %d configurations, serial %d", len(recs), len(serial))
	}
	for i, rec := range recs {
		assertRecordMatchesResult(t, rec, serial[i])
		if rec.Island != 1 {
			t.Fatalf("record %d island stamp %d, want 1", i, rec.Island)
		}
	}
}

// TestMultiIslandDeterministicAcrossWorkerCounts: the per-island walks
// and the final front must not depend on how the islands are packed onto
// workers — 1 worker holding both islands versus 2 workers holding one
// each.
func TestMultiIslandDeterministicAcrossWorkerCounts(t *testing.T) {
	type islandWalks map[int][]int

	runFleet := func(workers int) (islandWalks, []FrontPoint) {
		t.Helper()
		_, _, client := startCoordinator(t, Options{})
		id, err := client.Submit(islandSpec(2))
		if err != nil {
			t.Fatal(err)
		}
		var stops []func()
		if workers == 1 {
			stops = append(stops, startWorker(t, client.Base, "w1", 2))
		} else {
			for i := 0; i < workers; i++ {
				stops = append(stops, startWorker(t, client.Base, "w"+string(rune('1'+i)), 1))
			}
		}
		st := waitJob(t, client, id, 60*time.Second)
		if st.State != "done" {
			t.Fatalf("%d-worker job ended %s: %s", workers, st.State, st.Error)
		}
		walks := islandWalks{}
		for _, rec := range collectJournal(t, client, id) {
			walks[rec.Island] = append(walks[rec.Island], rec.Index)
		}
		for _, stop := range stops {
			stop()
		}
		sort.Slice(st.Front, func(i, k int) bool { return st.Front[i].Index < st.Front[k].Index })
		return walks, st.Front
	}

	walks1, front1 := runFleet(1)
	walks2, front2 := runFleet(2)

	if len(walks1) != 2 || len(walks2) != 2 {
		t.Fatalf("island walks missing: %d vs %d islands", len(walks1), len(walks2))
	}
	for island, w1 := range walks1 {
		w2 := walks2[island]
		if len(w1) != len(w2) {
			t.Fatalf("island %d walk length %d vs %d across fleet shapes", island, len(w1), len(w2))
		}
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatalf("island %d walk diverges at step %d: %d vs %d", island, i, w1[i], w2[i])
			}
		}
	}
	if len(front1) != len(front2) {
		t.Fatalf("front size %d vs %d across fleet shapes", len(front1), len(front2))
	}
	for i := range front1 {
		if front1[i].Index != front2[i].Index {
			t.Fatalf("front member %d: %d vs %d", i, front1[i].Index, front2[i].Index)
		}
	}
}

// TestCoordinatorKillAndResume: kill the coordinator and the worker
// mid-job, reopen the coordinator over the same state directory, attach
// a fresh worker — the job must complete with the same results and the
// same front an uninterrupted run produces.
func TestCoordinatorKillAndResume(t *testing.T) {
	spec := islandSpec(1)
	spec.Budget = 96
	spec.EvalLatencyMS = 5 // slow the walk so the kill lands mid-run

	// Uninterrupted reference.
	_, _, refClient := startCoordinator(t, Options{})
	refID, err := refClient.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, refClient.Base, "ref", 1)
	refSt := waitJob(t, refClient, refID, 120*time.Second)
	if refSt.State != "done" {
		t.Fatalf("reference job ended %s: %s", refSt.State, refSt.Error)
	}
	refRecs := collectJournal(t, refClient, refID)

	// Interrupted run over a persistent state directory.
	stateDir := t.TempDir()
	coord, err := NewCoordinator(Options{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	client := &Client{Base: srv.URL}
	id, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stop := startWorker(t, client.Base, "victim", 1)
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := client.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Records >= 16 || st.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job produced no records to interrupt")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop() // worker drains its in-flight shard, which is abandoned (no Done)
	srv.Close()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same state: the shard re-issues with warm results,
	// the resumed island fast-forwards and finishes the walk.
	_, _, client2 := startCoordinator(t, Options{StateDir: stateDir})
	startWorker(t, client2.Base, "heir", 1)
	st := waitJob(t, client2, id, 120*time.Second)
	if st.State != "done" {
		t.Fatalf("resumed job ended %s: %s", st.State, st.Error)
	}
	if st.Results != refSt.Results {
		t.Fatalf("resumed job evaluated %d configurations, reference %d", st.Results, refSt.Results)
	}
	recs := collectJournal(t, client2, id)
	if len(recs) != len(refRecs) {
		t.Fatalf("resumed journal %d records, reference %d", len(recs), len(refRecs))
	}
	for i := range recs {
		if recs[i].Index != refRecs[i].Index {
			t.Fatalf("resumed walk diverges at record %d: %d vs %d", i, recs[i].Index, refRecs[i].Index)
		}
		if recs[i].Accesses != refRecs[i].Accesses ||
			recs[i].FootprintBytes != refRecs[i].FootprintBytes ||
			math.Float64bits(recs[i].EnergyNJ) != math.Float64bits(refRecs[i].EnergyNJ) {
			t.Fatalf("resumed metrics diverge at record %d (index %d)", i, recs[i].Index)
		}
	}
	sort.Slice(st.Front, func(i, k int) bool { return st.Front[i].Index < st.Front[k].Index })
	sort.Slice(refSt.Front, func(i, k int) bool { return refSt.Front[i].Index < refSt.Front[k].Index })
	if len(st.Front) != len(refSt.Front) {
		t.Fatalf("resumed front %d members, reference %d", len(st.Front), len(refSt.Front))
	}
	for i := range st.Front {
		if st.Front[i].Index != refSt.Front[i].Index {
			t.Fatalf("resumed front member %d: %d vs %d", i, st.Front[i].Index, refSt.Front[i].Index)
		}
	}
}

// TestLeaseExpiryReissuesShard drives the work-stealing path with an
// injected clock: a worker that stops heartbeating forfeits its shard to
// the next worker, and learns the lease is lost on its next heartbeat.
func TestLeaseExpiryReissuesShard(t *testing.T) {
	now := time.Unix(1000, 0)
	_, _, client := startCoordinator(t, Options{
		LeaseTTL: time.Second,
		Now:      func() time.Time { return now },
	})
	spec := sweepSpec()
	spec.Sample = 10
	spec.ShardSize = 10 // one shard
	id, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	_ = id

	first, err := client.Lease("w1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Grants) != 1 {
		t.Fatalf("w1 got %d grants, want the single shard", len(first.Grants))
	}
	// The shard is leased: nothing left for w2.
	starve, err := client.Lease("w2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(starve.Grants) != 0 {
		t.Fatalf("w2 stole a live lease: %+v", starve.Grants)
	}
	// w1 goes silent past the TTL: the shard re-issues to w2.
	now = now.Add(2 * time.Second)
	stolen, err := client.Lease("w2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stolen.Grants) != 1 || stolen.Grants[0].Shard.ID != first.Grants[0].Shard.ID {
		t.Fatalf("expired shard not re-issued: %+v", stolen.Grants)
	}
	if stolen.Grants[0].Lease == first.Grants[0].Lease {
		t.Fatal("re-issue reused the dead lease token")
	}
	// w1's late heartbeat learns the lease is gone.
	hb, err := client.Heartbeat(HeartbeatRequest{Worker: "w1", Leases: []string{first.Grants[0].Lease}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Lost) != 1 || hb.Lost[0] != first.Grants[0].Lease {
		t.Fatalf("heartbeat did not report the lost lease: %+v", hb)
	}
	// w2's heartbeat keeps its stolen lease alive.
	hb2, err := client.Heartbeat(HeartbeatRequest{Worker: "w2", Leases: []string{stolen.Grants[0].Lease}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb2.Lost) != 0 {
		t.Fatalf("live lease reported lost: %+v", hb2)
	}
}

// TestJournalResumesFromOffset: a follower that reconnects with from=N
// receives exactly the records it missed.
func TestJournalResumesFromOffset(t *testing.T) {
	_, _, client := startCoordinator(t, Options{})
	spec := sweepSpec()
	spec.Sample = 30
	id, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, client.Base, "w1", 1)
	if st := waitJob(t, client, id, 60*time.Second); st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	all := collectJournal(t, client, id)
	if len(all) != 30 {
		t.Fatalf("journal has %d records", len(all))
	}
	const from = 12
	var tail []telemetry.Record
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := client.FollowJournal(ctx, id, from, func(rec telemetry.Record) {
		tail = append(tail, rec)
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(all)-from {
		t.Fatalf("from=%d stream delivered %d records, want %d", from, len(tail), len(all)-from)
	}
	for i, rec := range tail {
		if rec.Index != all[from+i].Index {
			t.Fatalf("offset stream record %d is index %d, want %d", i, rec.Index, all[from+i].Index)
		}
	}
}

// TestMetricsExposeWorkersAndIslands spot-checks the Prometheus text:
// job states, per-worker telemetry from heartbeats, per-island record
// counters.
func TestMetricsExposeWorkersAndIslands(t *testing.T) {
	_, srv, client := startCoordinator(t, Options{})
	id, err := client.Submit(islandSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, client.Base, "mw", 2)
	if st := waitJob(t, client, id, 60*time.Second); st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	// A heartbeat delivers the worker's telemetry snapshot for /metrics.
	snap := telemetry.NewCollector(1).Snapshot()
	if _, err := client.Heartbeat(HeartbeatRequest{Worker: "mw", Telemetry: &snap}); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`dmserve_jobs{state="done"} 1`,
		`dmserve_shards{job="` + id + `",state="done"} 2`,
		`dmserve_island_records_total{job="` + id + `",island="1"}`,
		`dmserve_island_records_total{job="` + id + `",island="2"}`,
		`dmserve_worker_sims_total{worker="mw"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
