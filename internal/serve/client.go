package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"dmexplore/internal/telemetry"
)

// Client is the coordinator's HTTP client, shared by workers, the
// dmexplore submit mode, and tests.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://localhost:8710".
	Base string
	// HTTP overrides the transport. The default client has no timeout —
	// migration barriers legitimately block until every island arrives.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

func (c *Client) postJSON(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := c.httpClient().Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hr.Body, 4096))
		return &StatusError{Code: hr.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(hr.Body).Decode(resp)
}

func (c *Client) getJSON(path string, resp any) error {
	hr, err := c.httpClient().Get(c.Base + path)
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hr.Body, 4096))
		return &StatusError{Code: hr.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	}
	return json.NewDecoder(hr.Body).Decode(resp)
}

// StatusError is a non-200 coordinator response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: coordinator returned %d: %s", e.Code, e.Msg)
}

// Submit posts a job and returns its ID.
func (c *Client) Submit(spec JobSpec) (string, error) {
	var resp SubmitResponse
	if err := c.postJSON("/api/v1/jobs", spec, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Status fetches one job's status (front included).
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON("/api/v1/jobs/"+id, &st)
	return st, err
}

// Jobs lists all jobs.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out []JobStatus
	err := c.getJSON("/api/v1/jobs", &out)
	return out, err
}

// Lease asks for up to slots shards.
func (c *Client) Lease(worker string, slots int) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.postJSON("/api/v1/lease", LeaseRequest{Worker: worker, Slots: slots}, &resp)
	return resp, err
}

// Heartbeat renews leases and reports telemetry.
func (c *Client) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.postJSON("/api/v1/heartbeat", req, &resp)
	return resp, err
}

// Migrate posts an island's front export and blocks until the round
// resolves (see MigrateRequest).
func (c *Client) Migrate(req MigrateRequest) ([]int, error) {
	var resp MigrateResponse
	if err := c.postJSON("/api/v1/migrate", req, &resp); err != nil {
		return nil, err
	}
	return resp.Immigrants, nil
}

// ResultStream is one open chunked upload of ResultLines for a lease.
// Send each line as the evaluation completes; Close terminates the
// stream and reports the coordinator's verdict.
type ResultStream struct {
	pw   *io.PipeWriter
	enc  *json.Encoder
	done chan error
}

// StreamResults opens the result stream for a lease. Lines are
// transferred as they are sent (chunked encoding), so the coordinator
// checkpoints each one within a line of wire latency.
func (c *Client) StreamResults(lease string) *ResultStream {
	pr, pw := io.Pipe()
	s := &ResultStream{pw: pw, enc: json.NewEncoder(pw), done: make(chan error, 1)}
	go func() {
		resp, err := c.httpClient().Post(
			c.Base+"/api/v1/results?lease="+lease, "application/jsonl", pr)
		if err != nil {
			pr.CloseWithError(err)
			s.done <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			err = &StatusError{Code: resp.StatusCode, Msg: "result stream rejected"}
			pr.CloseWithError(err)
		}
		s.done <- err
	}()
	return s
}

// Send writes one line. An error means the coordinator dropped the
// stream (lease expired, restart): the caller should abandon the shard.
func (s *ResultStream) Send(line ResultLine) error {
	return s.enc.Encode(line)
}

// Close ends the stream and waits for the coordinator's response.
func (s *ResultStream) Close() error {
	s.pw.Close()
	return <-s.done
}

// FollowJournal streams a job's journal records from position `from`,
// invoking fn for each, reconnecting (from the last delivered position)
// until the job reaches a terminal state. Returns the final status.
func (c *Client) FollowJournal(ctx context.Context, id string, from int, fn func(telemetry.Record)) (JobStatus, error) {
	for {
		st, err := c.followOnce(ctx, id, &from, fn)
		if err == nil && st.State != "running" {
			return st, nil
		}
		if ctx.Err() != nil {
			return st, ctx.Err()
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func (c *Client) followOnce(ctx context.Context, id string, from *int, fn func(telemetry.Record)) (JobStatus, error) {
	url := c.Base + "/api/v1/jobs/" + id + "/journal?follow=1&from=" + strconv.Itoa(*from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, &StatusError{Code: resp.StatusCode, Msg: "journal stream rejected"}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var rec telemetry.Record
		if err := dec.Decode(&rec); err != nil {
			break // stream closed: job terminal, or connection lost
		}
		fn(rec)
		*from++
	}
	return c.Status(id)
}
