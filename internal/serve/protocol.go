// Package serve is the distributed exploration service: an HTTP/JSON
// coordinator (cmd/dmserve) that accepts sweep and search jobs,
// partitions them into shards, and hands the shards to worker processes
// (cmd/dmworker) over work-stealing leases. Each worker wraps the
// existing single-process evaluation stack — core.EvalSession,
// evalBatcher, incremental replay, pool-run memo, surrogate — unchanged;
// the service adds horizontal scale, not new evaluation semantics.
//
// Search jobs run the island model: one NSGA-II population per shard,
// seed-split per island ID, exchanging Pareto-front members through the
// coordinator every G generations (see core.EvolveIslandSession). Sweep
// jobs split the index space into range shards. Results stream back as
// journal records over chunked HTTP and the coordinator checkpoints
// every line, so jobs survive coordinator and worker restarts; a lease
// that misses its heartbeats expires and the shard is re-issued.
package serve

import (
	"fmt"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/profile"
	"dmexplore/internal/telemetry"
)

// JobSpec describes one exploration job. Everything a worker needs to
// rebuild the evaluation environment is in the spec — workloads are
// regenerated from (name, seed, scale), never shipped — so a spec is a
// complete, deterministic description of the job.
type JobSpec struct {
	Name string `json:"name,omitempty"` // optional human label

	// Evaluation environment.
	Workload     string   `json:"workload"`
	WorkloadSeed uint64   `json:"workload_seed"`
	Scale        int      `json:"scale"`     // percent of the default trace length
	Space        string   `json:"space"`     // narrow|full
	Hierarchy    string   `json:"hierarchy"` // soc|soc3|flat
	Objectives   []string `json:"objectives"`

	// Strategy is "sweep" (exhaustive or sampled, range shards) or
	// "nsga2" (island-model evolutionary search, one island per shard).
	Strategy string `json:"strategy"`

	// Sweep parameters.
	Sample     int    `json:"sample,omitempty"` // 0 = exhaustive
	SampleSeed uint64 `json:"sample_seed,omitempty"`
	ShardSize  int    `json:"shard_size,omitempty"` // indices per range shard (default 256)

	// Search parameters. Budget is per island; the job's total
	// simulation budget is Islands*Budget.
	Islands        int    `json:"islands,omitempty"`
	Population     int    `json:"population,omitempty"`
	Budget         int    `json:"budget,omitempty"`
	Seed           uint64 `json:"seed,omitempty"`
	MigrationEvery int    `json:"migration_every,omitempty"`
	MigrationK     int    `json:"migration_k,omitempty"`

	// Evaluation knobs, passed through to the worker's core.Runner.
	Incremental   bool    `json:"incremental,omitempty"`
	EvalLatencyMS float64 `json:"eval_latency_ms,omitempty"`
}

func (s JobSpec) withDefaults() JobSpec {
	if s.Workload == "" {
		s.Workload = "easyport"
	}
	if s.WorkloadSeed == 0 {
		s.WorkloadSeed = 1
	}
	if s.Scale == 0 {
		s.Scale = 100
	}
	if s.Space == "" {
		s.Space = "narrow"
	}
	if s.Hierarchy == "" {
		s.Hierarchy = "soc"
	}
	if len(s.Objectives) == 0 {
		s.Objectives = []string{"accesses", "footprint"}
	}
	if s.Strategy == "" {
		s.Strategy = "sweep"
	}
	if s.ShardSize <= 0 {
		s.ShardSize = 256
	}
	if s.Strategy == "nsga2" {
		if s.Islands <= 0 {
			s.Islands = 1
		}
		if s.Population <= 0 {
			s.Population = 32
		}
		if s.Budget <= 0 {
			s.Budget = 16 * s.Population
		}
		if s.MigrationEvery <= 0 {
			s.MigrationEvery = 4
		}
		if s.MigrationK <= 0 {
			s.MigrationK = s.Population / 4
			if s.MigrationK < 1 {
				s.MigrationK = 1
			}
		}
	}
	return s
}

// Validate rejects specs the coordinator cannot shard.
func (s JobSpec) Validate() error {
	switch s.Strategy {
	case "sweep":
	case "nsga2":
		if s.Population < 4 || s.Population%2 != 0 {
			return fmt.Errorf("serve: population %d must be an even number >= 4", s.Population)
		}
		if s.Budget < s.Population {
			return fmt.Errorf("serve: budget %d below population %d", s.Budget, s.Population)
		}
	default:
		return fmt.Errorf("serve: unknown strategy %q (sweep|nsga2)", s.Strategy)
	}
	if len(s.Objectives) < 2 {
		return fmt.Errorf("serve: need at least two objectives")
	}
	return nil
}

// ShardState is one unit of leased work: a contiguous index range of a
// sweep, or one island of a search. IDs are 1-based (0 marks "local/
// unset" in journal records).
type ShardState struct {
	ID     int    `json:"id"`
	Kind   string `json:"kind"`             // "range"|"island"
	Lo     int    `json:"lo,omitempty"`     // range: first position in the job's index order
	Hi     int    `json:"hi,omitempty"`     // range: one past the last position
	Island int    `json:"island,omitempty"` // island: 0-based island ID
}

// WarmResult is one already-known evaluation shipped with an island
// lease so a resumed island fast-forwards its deterministic walk through
// the session memo instead of re-simulating (see core.EvalSession.Warm).
type WarmResult struct {
	Index   int              `json:"index"`
	Metrics *profile.Metrics `json:"metrics"`
}

// LeaseRequest asks the coordinator for up to Slots shards. Workers poll
// this endpoint whenever they have free capacity — the work-stealing
// loop: a fast worker drains the queue, a dead worker's expired shards
// return to it.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Slots  int    `json:"slots"`
}

// LeaseGrant hands one shard to a worker under a lease token. The lease
// must be renewed by heartbeat within TTLMS or the shard is re-issued.
type LeaseGrant struct {
	Lease   string       `json:"lease"`
	JobID   string       `json:"job_id"`
	Spec    JobSpec      `json:"spec"`
	Shard   ShardState   `json:"shard"`
	Indices []int        `json:"indices,omitempty"` // range shards: the configuration indices to evaluate
	Warm    []WarmResult `json:"warm,omitempty"`    // island shards: checkpointed results for resume
	TTLMS   int64        `json:"ttl_ms"`
}

// LeaseResponse carries zero or more grants (zero: no work available).
type LeaseResponse struct {
	Grants []LeaseGrant `json:"grants"`
}

// HeartbeatRequest renews a worker's leases and reports its merged
// telemetry snapshot for the coordinator's per-worker /metrics labels.
type HeartbeatRequest struct {
	Worker    string              `json:"worker"`
	Leases    []string            `json:"leases"`
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// HeartbeatResponse lists leases the coordinator no longer recognizes
// (expired and re-issued); the worker must abandon those shards.
type HeartbeatResponse struct {
	Lost []string `json:"lost,omitempty"`
}

// ResultLine is one line of a worker's chunked result stream. A line
// carries either a journal record (with the full metrics riding along so
// the coordinator's checkpoint can warm-serve resumes bit-exactly), or a
// shard terminator.
type ResultLine struct {
	Record  *telemetry.Record `json:"record,omitempty"`
	Metrics *profile.Metrics  `json:"metrics,omitempty"`
	Done    bool              `json:"done,omitempty"`
	Failed  string            `json:"failed,omitempty"`
}

// MigrateRequest posts one island's Pareto-front export at a migration
// generation. The call blocks until every live island of the job has
// posted (or retired) at that generation — the migration barrier — and
// returns the merged immigrants.
type MigrateRequest struct {
	JobID  string              `json:"job_id"`
	Lease  string              `json:"lease"`
	Island int                 `json:"island"`
	Gen    int                 `json:"gen"`
	Front  []core.IslandMember `json:"front"`
}

// MigrateResponse returns the immigrant configuration indices for the
// generation: the global Pareto merge of every island's export, capped
// at the spec's MigrationK, identical for all islands. Deterministic
// given the fronts — and memoized per generation, so a resumed island
// replaying an old generation receives exactly what the original run
// received.
type MigrateResponse struct {
	Immigrants []int `json:"immigrants"`
}

// SubmitResponse acknowledges a job submission.
type SubmitResponse struct {
	ID string `json:"id"`
}

// FrontPoint is one Pareto-front member in a job status.
type FrontPoint struct {
	Index  int       `json:"index"`
	Labels []string  `json:"labels,omitempty"`
	Values []float64 `json:"values"`
}

// JobStatus is the coordinator's view of one job.
type JobStatus struct {
	ID         string       `json:"id"`
	Spec       JobSpec      `json:"spec"`
	State      string       `json:"state"` // running|done|failed
	Shards     int          `json:"shards"`
	ShardsDone int          `json:"shards_done"`
	Results    int          `json:"results"` // distinct configurations evaluated
	Records    int          `json:"records"` // journal lines
	Error      string       `json:"error,omitempty"`
	Front      []FrontPoint `json:"front,omitempty"`
}

// DefaultLeaseTTL is how long a lease survives without a heartbeat
// before its shard is re-issued. Workers heartbeat at TTL/3.
const DefaultLeaseTTL = 10 * time.Second
