package serve

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/profile"
	"dmexplore/internal/telemetry"
)

// Worker is one evaluation process of the distributed service. It polls
// the coordinator for shard leases (the work-stealing pull), evaluates
// them on the unchanged single-process stack — one core.EvalSession per
// job, shared by every shard of that job the worker holds, so islands
// multiplex one bounded simulation pool and one memo — and streams each
// result back as it completes. A heartbeat goroutine renews the leases;
// a lease the coordinator reports lost cancels its shard.
type Worker struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ID names the worker in leases, heartbeats and journal records
	// (default "w<pid>").
	ID string
	// Slots is the number of shards evaluated concurrently (default 1).
	// An island-model job with more islands than the fleet's summed
	// slots cannot complete its migration barriers — size fleets so
	// islands <= sum(slots).
	Slots int
	// SessionWorkers sizes each job's evaluation session pool (default
	// GOMAXPROCS). Determinism does not depend on it.
	SessionWorkers int
	// Poll is the idle lease-poll interval (default 200ms).
	Poll time.Duration

	client *Client
	col    *telemetry.Collector

	mu     sync.Mutex
	cancel map[string]context.CancelFunc // lease token → shard cancel
	envs   map[string]*workerEnv         // job ID → shared environment
	ttl    time.Duration
}

type workerEnv struct {
	once sync.Once
	err  error
	env  *Env
	sess *core.EvalSession
}

// Run pulls and evaluates shards until ctx is cancelled. It returns
// ctx's error after in-flight shards have been cancelled and drained.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		w.ID = fmt.Sprintf("w%d", os.Getpid())
	}
	if w.Slots <= 0 {
		w.Slots = 1
	}
	if w.Poll <= 0 {
		w.Poll = 200 * time.Millisecond
	}
	w.client = &Client{Base: w.Coordinator}
	w.col = telemetry.NewCollector(maxInt(w.SessionWorkers, 1))
	w.cancel = make(map[string]context.CancelFunc)
	w.envs = make(map[string]*workerEnv)
	w.ttl = DefaultLeaseTTL

	var active atomic.Int64
	var wg sync.WaitGroup

	heartbeatCtx, stopHeartbeat := context.WithCancel(context.Background())
	defer stopHeartbeat()
	go w.heartbeatLoop(heartbeatCtx)

	for ctx.Err() == nil {
		free := w.Slots - int(active.Load())
		granted := 0
		if free > 0 {
			resp, err := w.client.Lease(w.ID, free)
			if err == nil {
				for _, g := range resp.Grants {
					granted++
					active.Add(1)
					wg.Add(1)
					shardCtx, cancel := context.WithCancel(ctx)
					w.mu.Lock()
					w.cancel[g.Lease] = cancel
					if g.TTLMS > 0 {
						w.ttl = time.Duration(g.TTLMS) * time.Millisecond
					}
					w.mu.Unlock()
					go func(g LeaseGrant) {
						defer func() {
							w.mu.Lock()
							delete(w.cancel, g.Lease)
							w.mu.Unlock()
							cancel()
							active.Add(-1)
							wg.Done()
						}()
						w.runShard(shardCtx, g)
					}(g)
				}
			}
		}
		if granted == 0 {
			select {
			case <-ctx.Done():
			case <-time.After(w.Poll):
			}
		}
	}
	// Cancel in-flight shards and drain.
	w.mu.Lock()
	for _, cancel := range w.cancel {
		cancel()
	}
	w.mu.Unlock()
	wg.Wait()
	stopHeartbeat()
	w.mu.Lock()
	for _, we := range w.envs {
		if we.sess != nil {
			we.sess.Close()
		}
	}
	w.mu.Unlock()
	return ctx.Err()
}

// heartbeatLoop renews the worker's leases at a third of the lease TTL
// and abandons shards the coordinator reports lost.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		interval := w.ttl / 3
		w.mu.Unlock()
		if interval <= 0 {
			interval = time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
		w.mu.Lock()
		leases := make([]string, 0, len(w.cancel))
		for token := range w.cancel {
			leases = append(leases, token)
		}
		w.mu.Unlock()
		snap := w.col.Snapshot()
		resp, err := w.client.Heartbeat(HeartbeatRequest{
			Worker: w.ID, Leases: leases, Telemetry: &snap,
		})
		if err != nil {
			continue // coordinator unreachable: keep working, retry next beat
		}
		for _, lost := range resp.Lost {
			w.mu.Lock()
			cancel := w.cancel[lost]
			w.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		}
	}
}

// envFor returns the job's shared evaluation environment, building it on
// first use. Every shard of one job on this worker shares one session —
// one compiled trace, one worker pool, one memo — which is also what
// lets N islands run on a worker with fewer session workers than
// islands: a migration-blocked island occupies no session worker.
func (w *Worker) envFor(jobID string, spec JobSpec) (*workerEnv, error) {
	w.mu.Lock()
	we := w.envs[jobID]
	if we == nil {
		we = &workerEnv{}
		w.envs[jobID] = we
	}
	w.mu.Unlock()
	we.once.Do(func() {
		we.env, we.err = BuildEnv(spec, w.SessionWorkers, w.col)
		if we.err != nil {
			return
		}
		we.sess, we.err = we.env.Runner.NewSession(we.env.Space)
	})
	return we, we.err
}

// runShard evaluates one leased shard and streams its results. Errors
// in the evaluation itself fail the job (Failed line); transport errors
// and cancellations abandon the shard silently — its lease expires and
// the coordinator re-issues it.
func (w *Worker) runShard(ctx context.Context, g LeaseGrant) {
	we, err := w.envFor(g.JobID, g.Spec)
	if err != nil {
		stream := w.client.StreamResults(g.Lease)
		stream.Send(ResultLine{Failed: err.Error()})
		stream.Close()
		return
	}
	stream := w.client.StreamResults(g.Lease)
	defer stream.Close()

	warmSession(we.sess, g.Warm)

	var evalErr error
	switch g.Shard.Kind {
	case "range":
		evalErr = w.runRange(ctx, we, g, stream)
	case "island":
		evalErr = w.runIsland(ctx, we, g, stream)
	default:
		evalErr = fmt.Errorf("unknown shard kind %q", g.Shard.Kind)
	}
	switch {
	case ctx.Err() != nil:
		// Cancelled (shutdown or lost lease): abandon without a verdict.
	case evalErr != nil:
		stream.Send(ResultLine{Failed: evalErr.Error()})
	default:
		stream.Send(ResultLine{Done: true})
	}
}

// stamp converts a result to its wire line, branding it with the shard,
// island and worker identity.
func (w *Worker) stamp(res core.Result, sh ShardState) ResultLine {
	rec := res.JournalRecord()
	rec.Shard = sh.ID
	if sh.Kind == "island" {
		rec.Island = sh.Island + 1
	}
	rec.Worker = w.ID
	return ResultLine{Record: &rec, Metrics: res.Metrics}
}

// runRange evaluates a sweep shard's indices in bounded waves, streaming
// each wave's results in request order.
func (w *Worker) runRange(ctx context.Context, we *workerEnv, g LeaseGrant, stream *ResultStream) error {
	const wave = 64
	indices := g.Indices
	for lo := 0; lo < len(indices); lo += wave {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		hi := lo + wave
		if hi > len(indices) {
			hi = len(indices)
		}
		batch := indices[lo:hi]
		origins := make([]*telemetry.Origin, len(batch))
		for i := range origins {
			origins[i] = &telemetry.Origin{Strategy: "sweep", Op: "sweep", Wave: 1}
		}
		results, err := we.sess.EvalAnnotated(batch, nil, origins)
		if err != nil {
			return err
		}
		for _, res := range results {
			if err := stream.Send(w.stamp(res, g.Shard)); err != nil {
				return ctx.Err() // stream dropped: treat as abandonment
			}
		}
	}
	return nil
}

// runIsland runs one island of an island-model NSGA-II search over the
// job's shared session. Results stream in batcher request order (the
// deterministic order at any session worker count); migration points
// call back to the coordinator's barrier. A 1-island job sets no hook,
// which makes its walk bit-identical to the serial core.Evolve path.
func (w *Worker) runIsland(ctx context.Context, we *workerEnv, g LeaseGrant, stream *ResultStream) error {
	spec := g.Spec
	var streamErr atomic.Value
	opts := core.IslandOptions{
		EvolveOptions: core.EvolveOptions{
			Population: spec.Population,
			Budget:     spec.Budget,
			Seed:       spec.Seed,
		},
		Island:         g.Shard.Island,
		MigrationEvery: spec.MigrationEvery,
		MigrationK:     spec.MigrationK,
		OnResult: func(res core.Result) {
			if err := stream.Send(w.stamp(res, g.Shard)); err != nil {
				streamErr.Store(err)
			}
		},
	}
	if spec.Islands > 1 {
		opts.Migrate = func(gen int, front []core.IslandMember) ([]int, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err, _ := streamErr.Load().(error); err != nil {
				return nil, err
			}
			return w.client.Migrate(MigrateRequest{
				JobID: g.JobID, Lease: g.Lease,
				Island: g.Shard.Island, Gen: gen, Front: front,
			})
		}
	}
	_, err := we.env.Runner.EvolveIslandSession(we.sess, we.env.Space, spec.Objectives, opts)
	if err == nil {
		if serr, _ := streamErr.Load().(error); serr != nil {
			return ctx.Err() // stream dropped mid-walk: abandon
		}
	}
	return err
}

// warmSession pre-loads the session memo from a grant's checkpointed
// results so a resumed island's deterministic walk fast-forwards through
// already-evaluated configurations (see core.EvalSession.Warm).
func warmSession(sess *core.EvalSession, warm []WarmResult) {
	if len(warm) == 0 {
		return
	}
	m := make(map[int]*profile.Metrics, len(warm))
	for _, wr := range warm {
		m[wr.Index] = wr.Metrics
	}
	sess.Warm(m)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
