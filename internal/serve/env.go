package serve

import (
	"fmt"
	"time"

	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/stats"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// ResolveHierarchy maps a spec's hierarchy name to the model, mirroring
// dmexplore's -hierarchy choices.
func ResolveHierarchy(name string) (*memhier.Hierarchy, error) {
	switch name {
	case "soc":
		return memhier.EmbeddedSoC(), nil
	case "soc3":
		return memhier.EmbeddedSoC3Level(), nil
	case "flat":
		return memhier.FlatDRAM(), nil
	default:
		return nil, fmt.Errorf("serve: unknown hierarchy %q", name)
	}
}

// ResolveSpace maps a spec's (workload, space kind) pair to the
// configuration space, mirroring dmexplore's -space choices.
func ResolveSpace(workloadName, kind string) (*core.Space, error) {
	switch workloadName + "/" + kind {
	case "easyport/narrow", "synthetic/narrow":
		return core.EasyportSpace(), nil
	case "easyport/full", "synthetic/full", "vtc/full":
		return core.FullEasyportSpace(), nil
	case "vtc/narrow":
		return core.VTCSpace(), nil
	default:
		return nil, fmt.Errorf("serve: no %s space for workload %s", kind, workloadName)
	}
}

// Env is a fully resolved evaluation environment for one job spec: the
// regenerated and compiled trace, the space, the hierarchy, and a Runner
// configured with the spec's evaluation knobs. Workers build one Env per
// job and share its session across every shard of that job they hold.
type Env struct {
	Trace     *trace.Trace
	Compiled  *trace.Compiled
	Space     *core.Space
	Hierarchy *memhier.Hierarchy
	Runner    *core.Runner
}

// BuildEnv resolves a spec into an evaluation environment. workers caps
// the Runner's session pool; collector, when non-nil, receives the
// environment's telemetry (pass nil to use a private collector).
func BuildEnv(spec JobSpec, workers int, collector *telemetry.Collector) (*Env, error) {
	hier, err := ResolveHierarchy(spec.Hierarchy)
	if err != nil {
		return nil, err
	}
	space, err := ResolveSpace(spec.Workload, spec.Space)
	if err != nil {
		return nil, err
	}
	gen, err := workload.New(spec.Workload, spec.WorkloadSeed, spec.Scale)
	if err != nil {
		return nil, err
	}
	tr, err := gen.Generate()
	if err != nil {
		return nil, err
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		return nil, err
	}
	r := &core.Runner{
		Hierarchy:   hier,
		Trace:       tr,
		Compiled:    ct,
		Workers:     workers,
		Telemetry:   collector,
		Incremental: spec.Incremental,
		EvalLatency: time.Duration(spec.EvalLatencyMS * float64(time.Millisecond)),
	}
	return &Env{Trace: tr, Compiled: ct, Space: space, Hierarchy: hier, Runner: r}, nil
}

// sweepIndices materializes a sweep job's index order: the identity
// order for exhaustive sweeps, or the same seeded permutation prefix
// core.Runner.Sample draws. Range shards slice this order, so the
// sharded sweep evaluates exactly the set a local run would.
func sweepIndices(spec JobSpec, size int) []int {
	if spec.Sample > 0 && spec.Sample < size {
		rng := stats.NewRNG(spec.SampleSeed)
		return rng.Perm(size)[:spec.Sample]
	}
	indices := make([]int, size)
	for i := range indices {
		indices[i] = i
	}
	return indices
}

// planShards partitions a job into its shards: one island shard per
// island for searches, ShardSize-index range shards for sweeps.
func planShards(spec JobSpec, space *core.Space) []ShardState {
	var shards []ShardState
	if spec.Strategy == "nsga2" {
		for i := 0; i < spec.Islands; i++ {
			shards = append(shards, ShardState{ID: i + 1, Kind: "island", Island: i})
		}
		return shards
	}
	n := len(sweepIndices(spec, space.Size()))
	id := 1
	for lo := 0; lo < n; lo += spec.ShardSize {
		hi := lo + spec.ShardSize
		if hi > n {
			hi = n
		}
		shards = append(shards, ShardState{ID: id, Kind: "range", Lo: lo, Hi: hi})
		id++
	}
	return shards
}
