package profile

// Native fuzz target for the raw profile-log parser. Seeds cover both
// encodings (v1 bare stream, v2 block-framed) from the deterministic
// synthetic generator, so the fuzzer mutates from deep inside the valid
// format space. The property under test: whenever the serial parser
// accepts an input, the parallel parser must accept it too and produce
// the identical summary.

import (
	"bytes"
	"testing"
)

func FuzzParseLog(f *testing.F) {
	for _, format := range []LogFormat{LogV1, LogV2} {
		for _, records := range []int{0, 1, 1000} {
			var buf bytes.Buffer
			if err := WriteSyntheticLog(&buf, records, format, 7); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte(logMagic + "\x02\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseLog(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, workers := range []int{1, 4} {
			p, perr := ParseLogParallel(bytes.NewReader(data), int64(len(data)), workers, nil)
			if perr != nil {
				// The parallel path additionally requires the footer index;
				// a truncated-but-serially-parsable v2 tail may fail here.
				// It must never fail on v1 input (pure serial fallback).
				if !bytes.HasPrefix(data, []byte(logMagic)) {
					t.Fatalf("workers=%d: parallel rejected v1 input the serial parser accepted: %v", workers, perr)
				}
				continue
			}
			if !SameSummary(p, s) {
				t.Fatalf("workers=%d: parallel summary diverged from serial", workers)
			}
		}
	})
}
