package profile

import (
	"bytes"
	"io"
	"testing"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
)

// syntheticLog returns a v2 (or v1) synthetic log and its serial summary.
func syntheticLog(t *testing.T, records int, format LogFormat) ([]byte, *LogSummary) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSyntheticLog(&buf, records, format, 99); err != nil {
		t.Fatal(err)
	}
	s, err := ParseLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != uint64(records) {
		t.Fatalf("synthetic log parsed %d records, wrote %d", s.Records, records)
	}
	return buf.Bytes(), s
}

func TestParseLogParallelMatchesSerial(t *testing.T) {
	defer func(w int64) { logFetchWindowBytes = w }(logFetchWindowBytes)
	logFetchWindowBytes = 64 << 10 // several fetch windows on a small log

	data, want := syntheticLog(t, 400_000, LogV2) // a few MB, many blocks
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := ParseLogParallel(bytes.NewReader(data), int64(len(data)), workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !SameSummary(got, want) {
			t.Fatalf("workers=%d: parallel summary diverged: %d records vs %d", workers, got.Records, want.Records)
		}
	}
}

func TestParseLogV1StillReadable(t *testing.T) {
	data, want := syntheticLog(t, 50_000, LogV1)
	if bytes.HasPrefix(data, []byte(logMagic)) {
		t.Fatal("v1 log carries the v2 magic")
	}
	// The parallel entry point must fall back to the serial parser.
	got, err := ParseLogParallel(bytes.NewReader(data), int64(len(data)), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !SameSummary(got, want) {
		t.Fatal("v1 fallback summary diverged")
	}
}

func TestLogFormatsAgree(t *testing.T) {
	// The same records in both encodings must summarize identically.
	v1, s1 := syntheticLog(t, 30_000, LogV1)
	v2, s2 := syntheticLog(t, 30_000, LogV2)
	if !SameSummary(s1, s2) {
		t.Fatal("v1 and v2 of the same records disagree")
	}
	if len(v2) >= len(v1)+4096 {
		t.Fatalf("v2 framing overhead too large: %d vs %d bytes", len(v2), len(v1))
	}
}

func TestParseLogV2DetectsCorruption(t *testing.T) {
	data, _ := syntheticLog(t, 100_000, LogV2)
	corrupt := bytes.Clone(data)
	corrupt[len(corrupt)/3] ^= 0x10
	if _, err := ParseLog(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("serial parse accepted corruption")
	}
	if _, err := ParseLogParallel(bytes.NewReader(corrupt), int64(len(corrupt)), 4, nil); err == nil {
		t.Fatal("parallel parse accepted corruption")
	}
}

func TestParseLogRejectsUnknownVersion(t *testing.T) {
	bad := append([]byte(logMagic), 9, 0, 0, 0)
	if _, err := ParseLog(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown log version accepted")
	}
	if _, err := ParseLogParallel(bytes.NewReader(bad), int64(len(bad)), 4, nil); err == nil {
		t.Fatal("unknown log version accepted by parallel parser")
	}
}

// failingWriter accepts n bytes, then fails every write.
type failingWriter struct {
	n   int
	err error
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

func TestRunSurfacesLogWriteErrorEarly(t *testing.T) {
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	for _, format := range []LogFormat{LogV2, LogV1} {
		fw := &failingWriter{n: 4096, err: io.ErrShortWrite}
		_, err := Run(tr, alloc.LeaConfig(memhier.LayerDRAM), h, Options{
			LogWriter: fw,
			LogFormat: format,
		})
		if err == nil {
			t.Fatalf("format %d: dead log writer not surfaced", format)
		}
	}
}

func TestRunLogRoundTripsThroughParallelParse(t *testing.T) {
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	var buf bytes.Buffer
	m, err := Run(tr, alloc.KingsleyConfig(memhier.LayerDRAM), h, Options{LogWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseLogParallel(bytes.NewReader(buf.Bytes()), int64(buf.Len()), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalWords() != m.Accesses {
		t.Fatalf("parallel log words %d != metrics accesses %d", got.TotalWords(), m.Accesses)
	}
}
