package profile

import (
	"testing"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/workload"
)

// BenchmarkRun measures simulation throughput: trace events replayed per
// second through a full configuration — the quantity that bounds how many
// configurations per minute an exploration covers.
func BenchmarkRun(b *testing.B) {
	p := workload.DefaultEasyportParams()
	p.Packets = 3000
	tr, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	for _, cfg := range []alloc.Config{
		alloc.KingsleyConfig(memhier.LayerDRAM),
		alloc.LeaConfig(memhier.LayerDRAM),
		alloc.SimpleFirstFitConfig(memhier.LayerDRAM),
	} {
		b.Run(cfg.Label, func(b *testing.B) {
			b.SetBytes(int64(tr.Len())) // "bytes" = events replayed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(tr, cfg, h, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
