package profile

import (
	"testing"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// BenchmarkRun measures one-shot simulation throughput: trace events
// replayed per second through a full configuration, including the
// per-call trace compilation profile.Run performs.
func BenchmarkRun(b *testing.B) {
	p := workload.DefaultEasyportParams()
	p.Packets = 3000
	tr, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	for _, cfg := range []alloc.Config{
		alloc.KingsleyConfig(memhier.LayerDRAM),
		alloc.LeaConfig(memhier.LayerDRAM),
		alloc.SimpleFirstFitConfig(memhier.LayerDRAM),
	} {
		b.Run(cfg.Label, func(b *testing.B) {
			b.SetBytes(int64(tr.Len())) // "bytes" = events replayed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(tr, cfg, h, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchReplay measures steady-state exploration throughput: the trace is
// compiled once and a single Replayer is reused across configurations,
// exactly as core.Runner workers replay. The events/sec metric is the
// perf-trajectory number tracked in BENCH_replay.json.
func benchReplay(b *testing.B, gen workload.Generator) {
	b.Helper()
	tr, err := gen.Generate()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	for _, cfg := range []alloc.Config{
		alloc.KingsleyConfig(memhier.LayerDRAM),
		alloc.LeaConfig(memhier.LayerDRAM),
		alloc.SimpleFirstFitConfig(memhier.LayerDRAM),
	} {
		b.Run(cfg.Label, func(b *testing.B) {
			rep := NewReplayer()
			if _, err := rep.Run(ct, cfg, h, Options{}); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(ct.Len())) // "bytes" = events replayed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rep.Run(ct, cfg, h, Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			eventsPerSec := float64(ct.Len()) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(eventsPerSec, "events/sec")
		})
	}
}

// BenchmarkReplayEasyport tracks compiled-replay throughput on the
// Easyport workload (short-lived packet descriptors, high churn).
func BenchmarkReplayEasyport(b *testing.B) {
	p := workload.DefaultEasyportParams()
	p.Packets = 3000
	benchReplay(b, p)
}

// BenchmarkReplayVTC tracks compiled-replay throughput on the VTC
// workload (long-residency tile buffers).
func BenchmarkReplayVTC(b *testing.B) {
	p := workload.DefaultVTCParams()
	benchReplay(b, p)
}

// BenchmarkReplayTelemetry is the instrumented twin of
// BenchmarkReplayEasyport: the same steady-state replay loop with a
// telemetry shard attached, as core.Runner workers run it. Comparing
// its events/sec against the plain benchmark bounds the observation
// overhead (scripts/benchreplay.go computes the ratio; the budget is
// <2%). ReportAllocs doubles as the zero-allocation guard.
func BenchmarkReplayTelemetry(b *testing.B) {
	p := workload.DefaultEasyportParams()
	p.Packets = 3000
	tr, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		b.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	col := telemetry.NewCollector(1)
	for _, cfg := range []alloc.Config{
		alloc.KingsleyConfig(memhier.LayerDRAM),
		alloc.LeaConfig(memhier.LayerDRAM),
		alloc.SimpleFirstFitConfig(memhier.LayerDRAM),
	} {
		b.Run(cfg.Label, func(b *testing.B) {
			rep := NewReplayer()
			rep.Shard = col.Shard(0)
			if _, err := rep.Run(ct, cfg, h, Options{}); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(ct.Len())) // "bytes" = events replayed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rep.Run(ct, cfg, h, Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			eventsPerSec := float64(ct.Len()) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(eventsPerSec, "events/sec")
		})
	}
}
