package profile

import (
	"bytes"
	"testing"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

func smallEasyport(t *testing.T) *trace.Trace {
	t.Helper()
	p := workload.DefaultEasyportParams()
	p.Packets = 1500
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunBaselineOnEasyport(t *testing.T) {
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	m, err := Run(tr, alloc.LeaConfig(memhier.LayerDRAM), h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Feasible() {
		t.Fatalf("lea infeasible: %d failures", m.Failures)
	}
	prof := trace.Analyze(tr)
	if m.Mallocs != uint64(prof.Allocs) || m.Frees != uint64(prof.Frees) {
		t.Fatalf("op counts %d/%d vs %d/%d", m.Mallocs, m.Frees, prof.Allocs, prof.Frees)
	}
	if m.Accesses == 0 || m.EnergyNJ <= 0 || m.Cycles == 0 {
		t.Fatalf("empty metrics %+v", m)
	}
	if m.FootprintBytes < m.PeakRequestedBytes {
		t.Fatalf("footprint %d below peak demand %d", m.FootprintBytes, m.PeakRequestedBytes)
	}
	if m.FootprintOverhead() < 1 {
		t.Fatalf("footprint overhead %v < 1", m.FootprintOverhead())
	}
	if len(m.PerLayer) != h.NumLayers() {
		t.Fatalf("per-layer entries %d", len(m.PerLayer))
	}
	var sum uint64
	for _, lm := range m.PerLayer {
		sum += lm.Accesses()
	}
	if sum != m.Accesses {
		t.Fatalf("per-layer accesses %d != total %d", sum, m.Accesses)
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	cfg := alloc.KingsleyConfig(memhier.LayerDRAM)
	a, err := Run(tr, cfg, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, cfg, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Accesses != b.Accesses || a.FootprintBytes != b.FootprintBytes ||
		a.EnergyNJ != b.EnergyNJ || a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRunCustomConfigUsesScratchpad(t *testing.T) {
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	custom := alloc.Config{
		Label: "custom",
		Fixed: []alloc.FixedConfig{{
			SlotBytes: 74, MatchLo: 74, MatchHi: 74,
			Layer: memhier.LayerScratchpad,
			Order: alloc.LIFO, Links: alloc.SingleLink,
			Growth: alloc.GrowFixedChunk, ChunkSlots: 64,
			MaxBytes: 24 * 1024,
		}},
		General: alloc.GeneralConfig{
			Layer: memhier.LayerDRAM, Classes: "pow2:16:65536",
			Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
			Split: alloc.SplitAlways, Coalesce: alloc.CoalesceImmediate,
			Headers: alloc.HeaderBoundaryTag, Growth: alloc.GrowFixedChunk,
			ChunkBytes: 64 * 1024,
		},
	}
	m, err := Run(tr, custom, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Feasible() {
		t.Fatalf("custom config infeasible: %d failures", m.Failures)
	}
	sp := m.PerLayer[0]
	if sp.Name != memhier.LayerScratchpad {
		t.Fatalf("layer order: %s", sp.Name)
	}
	if sp.Accesses() == 0 || sp.PeakBytes == 0 {
		t.Fatal("scratchpad unused by custom config")
	}

	// And the custom config must beat the DRAM-only baseline on energy:
	// the dominant 74-byte traffic moved to the cheap layer.
	base, err := Run(tr, alloc.KingsleyConfig(memhier.LayerDRAM), h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.EnergyNJ >= base.EnergyNJ {
		t.Fatalf("custom energy %v not below baseline %v", m.EnergyNJ, base.EnergyNJ)
	}
}

func TestRunInfeasibleConfigCountsFailures(t *testing.T) {
	// Force the general pool into a tiny budget: allocations must fail
	// but the run must complete.
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	cfg := alloc.KingsleyConfig(memhier.LayerDRAM)
	cfg.General.MaxBytes = 32 * 1024
	m, err := Run(tr, cfg, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Feasible() {
		t.Fatal("32KB-budget run reported feasible")
	}
	if m.Mallocs+m.Failures == 0 || m.Mallocs == 0 {
		t.Fatalf("implausible counts %+v", m)
	}
}

func TestObjectives(t *testing.T) {
	m := &Metrics{Accesses: 10, FootprintBytes: 20, EnergyNJ: 30, Cycles: 40}
	for name, want := range map[string]float64{
		ObjAccesses: 10, ObjFootprint: 20, ObjEnergy: 30, ObjCycles: 40,
	} {
		got, err := m.Objective(name)
		if err != nil || got != want {
			t.Errorf("objective %s: %v %v", name, got, err)
		}
	}
	if _, err := m.Objective("nope"); err == nil {
		t.Error("unknown objective accepted")
	}
}

func TestRunWithCache(t *testing.T) {
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	cfg := alloc.LeaConfig(memhier.LayerDRAM)
	plain, err := Run(tr, cfg, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(tr, cfg, h, Options{
		Caches: map[string]CacheSpec{
			memhier.LayerDRAM: {SizeWords: 4096, LineWords: 8, Ways: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Line fills amplify *word* traffic (8-word fetches for single-word
	// misses) but burst timing makes the sequential application accesses
	// much faster: execution time must drop.
	if cached.Cycles >= plain.Cycles {
		t.Fatalf("cache did not reduce execution time: %d vs %d cycles", cached.Cycles, plain.Cycles)
	}
	if _, err := Run(tr, cfg, h, Options{
		Caches: map[string]CacheSpec{"nowhere": {SizeWords: 64, LineWords: 4, Ways: 1}},
	}); err == nil {
		t.Fatal("cache on unknown layer accepted")
	}
	if _, err := Run(tr, cfg, h, Options{
		Caches: map[string]CacheSpec{memhier.LayerDRAM: {SizeWords: 0, LineWords: 4, Ways: 1}},
	}); err == nil {
		t.Fatal("invalid cache spec accepted")
	}
}

func TestRunEmitsParsableLog(t *testing.T) {
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	var buf bytes.Buffer
	m, err := Run(tr, alloc.KingsleyConfig(memhier.LayerDRAM), h, Options{LogWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no log emitted")
	}
	sum, err := ParseLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalWords() != m.Accesses {
		t.Fatalf("log words %d != metrics accesses %d", sum.TotalWords(), m.Accesses)
	}
	dram, _ := h.ByName(memhier.LayerDRAM)
	if sum.Reads[dram] != m.PerLayer[dram].Reads || sum.Writes[dram] != m.PerLayer[dram].Writes {
		t.Fatal("per-layer log summary mismatch")
	}
}

func TestParseLogErrors(t *testing.T) {
	if _, err := ParseLog(bytes.NewReader([]byte{0x00})); err == nil {
		t.Fatal("truncated record accepted")
	}
	s, err := ParseLog(bytes.NewReader(nil))
	if err != nil || s.Records != 0 {
		t.Fatalf("empty log: %v %v", s, err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	cfg := alloc.KingsleyConfig("not-a-layer")
	if _, err := Run(tr, cfg, h, Options{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRunFootprintSeries(t *testing.T) {
	tr := smallEasyport(t)
	h := memhier.EmbeddedSoC()
	m, err := Run(tr, alloc.LeaConfig(memhier.LayerDRAM), h, Options{SampleEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Series) < tr.Len()/500 {
		t.Fatalf("series has %d samples for %d events", len(m.Series), tr.Len())
	}
	var peakSeen int64
	prevEvent := -1
	for _, s := range m.Series {
		if s.Event <= prevEvent {
			t.Fatalf("series not increasing in event index: %d after %d", s.Event, prevEvent)
		}
		prevEvent = s.Event
		if s.ReservedBytes < s.RequestedBytes {
			t.Fatalf("event %d: footprint %d below demand %d", s.Event, s.ReservedBytes, s.RequestedBytes)
		}
		if s.ReservedBytes > peakSeen {
			peakSeen = s.ReservedBytes
		}
	}
	if peakSeen > m.FootprintBytes {
		t.Fatalf("series peak %d exceeds metric peak %d", peakSeen, m.FootprintBytes)
	}
	// The final sample is at trace end.
	if last := m.Series[len(m.Series)-1]; last.Event != tr.Len() {
		t.Fatalf("final sample at %d, want %d", last.Event, tr.Len())
	}
}

func TestRunWithoutSampling(t *testing.T) {
	tr := smallEasyport(t)
	m, err := Run(tr, alloc.KingsleyConfig(memhier.LayerDRAM), memhier.EmbeddedSoC(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Series != nil {
		t.Fatal("series collected without SampleEvery")
	}
}
