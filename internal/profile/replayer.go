package profile

import (
	"errors"
	"fmt"
	"time"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/telemetry/span"
	"dmexplore/internal/trace"
)

// Replayer replays compiled traces against allocator configurations. Its
// scratch state — a flat pointer table indexed by dense allocation ID —
// is allocated once and reused across runs, so the steady-state replay
// loop performs no Go heap allocations per event. A Replayer is not safe
// for concurrent use; explorations run one per worker.
type Replayer struct {
	// Shard, when non-nil, receives per-run telemetry: simulation wall
	// time and events replayed. Recording is a few uncontended atomic
	// adds outside the replay loop, so the zero-alloc guarantee holds
	// with telemetry enabled.
	Shard *telemetry.Shard

	// Spans, when non-nil, is this worker's flight-recorder ring: every
	// full run, partial run and partition build lands one typed span.
	// Recording shares the Shard's timing reads and is itself
	// allocation-free, so the zero-alloc guarantee holds with the
	// recorder attached too.
	Spans *span.Ring

	ptrs []alloc.Ptr // dense ID -> payload pointer
	live []bool      // dense ID -> allocation currently live (not failed)

	genAddrs []uint64 // partial-replay scratch: recorded-alloc payload addrs
}

// NewReplayer returns a Replayer with empty scratch state. The first Run
// sizes the tables to the trace's dense ID space.
func NewReplayer() *Replayer {
	return &Replayer{}
}

// Reset prepares the scratch tables for a trace with n dense IDs,
// reusing the packed pointer and live tables when capacity suffices.
// Run calls it automatically; checkpoint restores and partial replays
// (see RunPartial) call it directly to reuse a warmed Replayer without
// reallocating.
func (r *Replayer) Reset(n int) { r.reset(n) }

// reset prepares the scratch tables for a trace with n dense IDs.
func (r *Replayer) reset(n int) {
	if cap(r.ptrs) < n {
		r.ptrs = make([]alloc.Ptr, n)
		r.live = make([]bool, n)
		return
	}
	r.ptrs = r.ptrs[:n]
	r.live = r.live[:n]
	for i := range r.ptrs {
		r.ptrs[i] = alloc.Ptr{}
		r.live[i] = false
	}
}

// applyOptions attaches the run options' models to a fresh context and
// returns the log writer, if any.
func applyOptions(ctx *simheap.Context, h *memhier.Hierarchy, opts Options) (*logWriter, error) {
	var lw *logWriter
	if opts.LogWriter != nil {
		lw = newLogWriter(opts.LogWriter, opts.LogFormat)
		ctx.SetTracer(lw)
	}
	for layerName, spec := range opts.Caches {
		id, ok := h.ByName(layerName)
		if !ok {
			return nil, fmt.Errorf("profile: cache on unknown layer %q", layerName)
		}
		c, err := memhier.NewCache(spec.SizeWords, spec.LineWords, spec.Ways)
		if err != nil {
			return nil, fmt.Errorf("profile: cache for %s: %w", layerName, err)
		}
		if err := ctx.AttachCache(id, c); err != nil {
			return nil, err
		}
	}
	for layerName, spec := range opts.RowBuffers {
		id, ok := h.ByName(layerName)
		if !ok {
			return nil, fmt.Errorf("profile: row buffer on unknown layer %q", layerName)
		}
		rb, err := memhier.NewRowBuffer(spec.RowWords, spec.Banks)
		if err != nil {
			return nil, fmt.Errorf("profile: row buffer for %s: %w", layerName, err)
		}
		if err := ctx.AttachRowBuffer(id, rb); err != nil {
			return nil, err
		}
	}
	return lw, nil
}

// Run profiles cfg against the compiled trace ct on hierarchy h. The
// compiled trace is shared read-only; the Replayer's scratch state is
// reset, not reallocated, between runs.
func (r *Replayer) Run(ct *trace.Compiled, cfg alloc.Config, h *memhier.Hierarchy, opts Options) (*Metrics, error) {
	var start time.Time
	if r.Shard != nil || r.Spans != nil {
		start = time.Now()
	}
	ctx := simheap.NewContext(h)
	lw, err := applyOptions(ctx, h, opts)
	if err != nil {
		return nil, err
	}
	a, err := cfg.Build(ctx)
	if err != nil {
		return nil, fmt.Errorf("profile: building %s: %w", cfg.ID(), err)
	}

	m := &Metrics{
		ConfigID:    cfg.ID(),
		ConfigLabel: cfg.Label,
		Workload:    ct.Name,
	}
	if opts.SampleEvery > 0 {
		m.Series = make([]FootprintSample, 0, ct.Len()/opts.SampleEvery+2)
	}
	r.reset(ct.NumIDs)
	if err := r.replay(ct, a, ctx, m, opts.SampleEvery, lw); err != nil {
		return nil, err
	}

	if lw != nil {
		if err := lw.Flush(); err != nil {
			return nil, fmt.Errorf("profile: flushing log: %w", err)
		}
	}
	for i := 0; i < h.NumLayers(); i++ {
		c := ctx.Counters(memhier.LayerID(i))
		m.PerLayer = append(m.PerLayer, LayerMetrics{
			Name:      h.Layer(memhier.LayerID(i)).Name,
			Reads:     c.Reads,
			Writes:    c.Writes,
			PeakBytes: c.PeakBytes,
		})
	}
	m.Accesses = ctx.TotalAccesses()
	m.FootprintBytes = ctx.TotalPeakBytes()
	m.EnergyNJ = ctx.Energy()
	m.Cycles = ctx.Cycles()
	m.PeakRequestedBytes = ct.PeakRequestedBytes
	if r.Shard != nil {
		r.Shard.ObserveSim(time.Since(start), ct.Len())
	}
	r.Spans.Since(span.StageFullSim, start, int64(ct.Len()))
	return m, nil
}

// logErrCheckMask throttles the log writer's deferred-error poll to one
// branch per 64Ki events: a dead log file stops a multi-gigabyte emit
// within a bounded window instead of at the final Flush, and the check
// stays invisible on the hot path.
const logErrCheckMask = 1<<16 - 1

// replay is the steady-state hot loop: every per-event branch works on
// flat pre-sized state, and footprint samples read the context's running
// reserved-bytes total instead of looping over layers. The loop streams
// the compiled trace's columnar slabs — a 1-byte kind column drives the
// dispatch and each arm loads only the argument words its kind uses.
func (r *Replayer) replay(ct *trace.Compiled, a alloc.Allocator, ctx *simheap.Context, m *Metrics, sampleEvery int, lw *logWriter) error {
	kinds, ids, argA, argB := ct.Slabs()
	var liveRequested int64
	for i := range kinds {
		if lw != nil && i&logErrCheckMask == logErrCheckMask {
			if err := lw.Err(); err != nil {
				return fmt.Errorf("profile: writing log (event %d): %w", i, err)
			}
		}
		if sampleEvery > 0 && i%sampleEvery == 0 {
			m.Series = append(m.Series, FootprintSample{
				Event:          i,
				ReservedBytes:  ctx.TotalReservedBytes(),
				RequestedBytes: liveRequested,
			})
		}
		switch kinds[i] {
		case trace.KindAlloc:
			size := int64(argA[i])
			liveRequested += size
			ptr, err := a.Malloc(size)
			if err != nil {
				if errors.Is(err, alloc.ErrOutOfMemory) {
					m.Failures++
					continue
				}
				return fmt.Errorf("profile: event %d: %w", i, err)
			}
			m.Mallocs++
			id := ids[i]
			r.ptrs[id] = ptr
			r.live[id] = true
		case trace.KindFree:
			liveRequested -= int64(argA[i])
			id := ids[i]
			if !r.live[id] {
				// The allocation failed; nothing to free.
				continue
			}
			r.live[id] = false
			if err := a.Free(r.ptrs[id]); err != nil {
				return fmt.Errorf("profile: event %d: %w", i, err)
			}
			m.Frees++
		case trace.KindAccess:
			id := ids[i]
			if !r.live[id] {
				continue
			}
			ptr := r.ptrs[id]
			if reads := argA[i]; reads > 0 {
				ctx.Read(ptr.Layer, ptr.Addr, reads)
			}
			if writes := argB[i]; writes > 0 {
				ctx.Write(ptr.Layer, ptr.Addr, writes)
			}
		case trace.KindTick:
			ctx.Compute(argA[i])
		default:
			return fmt.Errorf("profile: event %d: unknown kind %d", i, kinds[i])
		}
	}
	if sampleEvery > 0 {
		m.Series = append(m.Series, FootprintSample{
			Event:          ct.Len(),
			ReservedBytes:  ctx.TotalReservedBytes(),
			RequestedBytes: liveRequested,
		})
	}
	return nil
}
