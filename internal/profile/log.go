package profile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dmexplore/internal/memhier"
)

// Raw profile-log format. The paper's profiling tools dump every memory
// access of a run (logs "can reach Gigabytes for one single
// configuration") and the result parser processes them in under 20
// seconds. dmexplore reproduces the pipeline: the emitter below streams
// one record per charged access; ParseLog aggregates a log back into
// per-layer counters at hundreds of MB/s (benchmark E6).
//
// Record layout (little-endian varints):
//
//	flags byte: bit0 = write, bits 1..7 = layer id
//	uvarint    address
//	uvarint    word count
const logMaxLayers = 127

// logWriter implements simheap.AccessTracer, streaming records to w.
type logWriter struct {
	bw  *bufio.Writer
	buf [2 * binary.MaxVarintLen64]byte
	err error
}

func newLogWriter(w io.Writer) *logWriter {
	return &logWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// TraceAccess implements simheap.AccessTracer.
func (l *logWriter) TraceAccess(layer memhier.LayerID, addr uint64, words uint64, write bool) {
	if l.err != nil {
		return
	}
	flags := byte(layer) << 1
	if write {
		flags |= 1
	}
	if err := l.bw.WriteByte(flags); err != nil {
		l.err = err
		return
	}
	n := binary.PutUvarint(l.buf[:], addr)
	n += binary.PutUvarint(l.buf[n:], words)
	if _, err := l.bw.Write(l.buf[:n]); err != nil {
		l.err = err
	}
}

// Flush drains the buffer and returns any deferred write error.
func (l *logWriter) Flush() error {
	if l.err != nil {
		return l.err
	}
	return l.bw.Flush()
}

// LogSummary aggregates a raw profile log.
type LogSummary struct {
	Records uint64
	// Reads/Writes are word counts per layer id.
	Reads  [logMaxLayers + 1]uint64
	Writes [logMaxLayers + 1]uint64
}

// TotalWords returns the total words accessed.
func (s *LogSummary) TotalWords() uint64 {
	var t uint64
	for i := range s.Reads {
		t += s.Reads[i] + s.Writes[i]
	}
	return t
}

// ParseLog streams a raw profile log and aggregates per-layer counters.
// It is the performance-critical path of the result pipeline and avoids
// any per-record allocation.
func ParseLog(r io.Reader) (*LogSummary, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	s := &LogSummary{}
	for {
		flags, err := br.ReadByte()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		if _, err := binary.ReadUvarint(br); err != nil { // address (unused by the summary)
			return nil, fmt.Errorf("profile: record %d: bad address: %w", s.Records, err)
		}
		words, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("profile: record %d: bad word count: %w", s.Records, err)
		}
		layer := flags >> 1
		if flags&1 == 1 {
			s.Writes[layer] += words
		} else {
			s.Reads[layer] += words
		}
		s.Records++
	}
}
