package profile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dmexplore/internal/blockio"
	"dmexplore/internal/memhier"
)

// Raw profile-log format. The paper's profiling tools dump every memory
// access of a run (logs "can reach Gigabytes for one single
// configuration") and the result parser processes them in under 20
// seconds. dmexplore reproduces the pipeline: the emitter below streams
// one record per charged access; ParseLog aggregates a log back into
// per-layer counters at hundreds of MB/s (benchmark E6), and
// ParseLogParallel splits a block-framed log across every core.
//
// Record layout (little-endian varints):
//
//	flags byte: bit0 = write, bits 1..7 = layer id
//	uvarint    address
//	uvarint    word count
//
// A v1 log is a bare record stream with no header. A v2 log starts with
// "DMPL" and a version byte, then frames the same records into CRC32C
// blocks with a seekable footer index (internal/blockio), so corruption
// is detected per block and a multi-gigabyte log can be ingested in
// parallel.
const logMaxLayers = 127

const (
	logMagic     = "DMPL"
	logVersionV2 = 2

	// logWriterBufBytes sizes the v1 emitter's bufio. 64 KiB was the
	// original choice; growing to 256 KiB quarters the flush syscalls
	// and measured ~2% faster on a gigabyte-scale emit (returns diminish
	// beyond that), while staying noise next to a worker's replay state.
	logWriterBufBytes = 256 * 1024
)

// LogFormat selects the raw log encoding an emitter writes.
type LogFormat uint8

const (
	// LogV2 is the block-framed format (default): CRC32C blocks plus a
	// footer index, parseable sequentially or in parallel.
	LogV2 LogFormat = iota
	// LogV1 is the legacy bare record stream.
	LogV1
)

// logWriter implements simheap.AccessTracer, streaming records to w in
// the selected format. Errors are sticky and surfaced by Err, so the
// profiler can abort a doomed multi-gigabyte emit early instead of
// discovering the dead file at Flush.
type logWriter struct {
	// v1 stream state.
	bw *bufio.Writer
	// v2 block state.
	blk     *blockio.Writer
	scratch [1 + 2*binary.MaxVarintLen64]byte
	err     error
}

func newLogWriter(w io.Writer, format LogFormat) *logWriter {
	if format == LogV1 {
		return &logWriter{bw: bufio.NewWriterSize(w, logWriterBufBytes)}
	}
	blk := blockio.NewWriter(w, 0)
	blk.WriteHeader([]byte{logMagic[0], logMagic[1], logMagic[2], logMagic[3], logVersionV2})
	return &logWriter{blk: blk}
}

// TraceAccess implements simheap.AccessTracer.
func (l *logWriter) TraceAccess(layer memhier.LayerID, addr uint64, words uint64, write bool) {
	if l.err != nil {
		return
	}
	flags := byte(layer) << 1
	if write {
		flags |= 1
	}
	l.scratch[0] = flags
	n := 1 + binary.PutUvarint(l.scratch[1:], addr)
	n += binary.PutUvarint(l.scratch[n:], words)
	if l.blk != nil {
		l.blk.Record(l.scratch[:n])
		return
	}
	if _, err := l.bw.Write(l.scratch[:n]); err != nil {
		l.err = err
	}
}

// Err returns the first deferred write error without finalizing the log.
// The replay loop polls it so a full disk stops the simulation within a
// bounded number of events.
func (l *logWriter) Err() error {
	if l.err != nil {
		return l.err
	}
	if l.blk != nil {
		return l.blk.Err()
	}
	return nil
}

// Flush finalizes the log (for v2: the last block, end marker and footer
// index) and returns any deferred write error.
func (l *logWriter) Flush() error {
	if l.err != nil {
		return l.err
	}
	if l.blk != nil {
		return l.blk.Close()
	}
	return l.bw.Flush()
}

// LogSummary aggregates a raw profile log.
type LogSummary struct {
	Records uint64
	// Reads/Writes are word counts per layer id.
	Reads  [logMaxLayers + 1]uint64
	Writes [logMaxLayers + 1]uint64
}

// TotalWords returns the total words accessed.
func (s *LogSummary) TotalWords() uint64 {
	var t uint64
	for i := range s.Reads {
		t += s.Reads[i] + s.Writes[i]
	}
	return t
}

// merge adds o's counters into s.
func (s *LogSummary) merge(o *LogSummary) {
	s.Records += o.Records
	for i := range s.Reads {
		s.Reads[i] += o.Reads[i]
		s.Writes[i] += o.Writes[i]
	}
}

// parseLogRecords aggregates the records in one in-memory chunk.
func parseLogRecords(buf []byte, s *LogSummary) error {
	for len(buf) > 0 {
		flags := buf[0]
		_, n := binary.Uvarint(buf[1:]) // address (unused by the summary)
		if n <= 0 {
			return fmt.Errorf("profile: record %d: bad address", s.Records)
		}
		words, k := binary.Uvarint(buf[1+n:])
		if k <= 0 {
			return fmt.Errorf("profile: record %d: bad word count", s.Records)
		}
		buf = buf[1+n+k:]
		layer := flags >> 1
		if flags&1 == 1 {
			s.Writes[layer] += words
		} else {
			s.Reads[layer] += words
		}
		s.Records++
	}
	return nil
}

// ParseLog streams a raw profile log and aggregates per-layer counters,
// sniffing the format: block-framed v2 logs (with per-block CRC checks)
// and bare v1 streams are both accepted. It is the performance-critical
// path of the result pipeline and avoids any per-record allocation.
func ParseLog(r io.Reader) (*LogSummary, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(len(logMagic) + 1)
	if err == nil && string(head[:len(logMagic)]) == logMagic {
		if head[len(logMagic)] != logVersionV2 {
			return nil, fmt.Errorf("profile: unsupported log version %d", head[len(logMagic)])
		}
		br.Discard(len(logMagic) + 1)
		return parseLogV2(br, nil)
	}
	return parseLogV1(br)
}

// parseLogV1 aggregates a bare (unframed) record stream.
func parseLogV1(br *bufio.Reader) (*LogSummary, error) {
	s := &LogSummary{}
	for {
		flags, err := br.ReadByte()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		if _, err := binary.ReadUvarint(br); err != nil { // address (unused by the summary)
			return nil, fmt.Errorf("profile: record %d: bad address: %w", s.Records, err)
		}
		words, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("profile: record %d: bad word count: %w", s.Records, err)
		}
		layer := flags >> 1
		if flags&1 == 1 {
			s.Writes[layer] += words
		} else {
			s.Reads[layer] += words
		}
		s.Records++
	}
}

// parseLogV2 aggregates a block-framed log positioned after the header.
func parseLogV2(br *bufio.Reader, stats blockio.Stats) (*LogSummary, error) {
	s := &LogSummary{}
	blocks := blockio.NewReader(br, stats)
	for {
		records, payload, err := blocks.Next()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		before := s.Records
		if err := parseLogRecords(payload, s); err != nil {
			return nil, err
		}
		if s.Records-before != uint64(records) {
			return nil, fmt.Errorf("profile: block holds %d records, header says %d", s.Records-before, records)
		}
	}
}

// ParseLogParallel aggregates a raw profile log with up to workers
// goroutines. Block-framed v2 logs are split along the footer index and
// each worker merges its blocks into a private partial LogSummary; the
// partials sum at the end, so the totals are identical to ParseLog on
// the same bytes. V1 logs have no frame boundaries to split on and fall
// back to the serial parser. stats may be nil.
func ParseLogParallel(ra io.ReaderAt, size int64, workers int, stats blockio.Stats) (*LogSummary, error) {
	header := make([]byte, len(logMagic)+1)
	if n, _ := ra.ReadAt(header, 0); n < len(header) || string(header[:len(logMagic)]) != logMagic || workers <= 1 {
		return ParseLog(io.NewSectionReader(ra, 0, size))
	}
	if header[len(logMagic)] != logVersionV2 {
		return nil, fmt.Errorf("profile: unsupported log version %d", header[len(logMagic)])
	}
	blocks, err := blockio.ReadIndex(ra, size)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	groups := groupLogBlocks(blocks)
	if len(groups) == 0 {
		return &LogSummary{}, nil
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	jobs := make(chan logGroup)
	partials := make([]LogSummary, workers)
	errs := make([]error, workers)
	done := make(chan int)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- w }()
			var buf []byte
			for g := range jobs {
				if err := parseLogGroup(ra, g, &partials[w], &buf, stats); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	for _, g := range groups {
		jobs <- g
	}
	close(jobs)
	s := &LogSummary{}
	for w := 0; w < workers; w++ {
		<-done
	}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		s.merge(&partials[w])
	}
	return s, nil
}

// logGroup is a contiguous run of blocks fetched with one ReadAt.
type logGroup struct {
	off, length int64
	blocks      int
}

// groupLogBlocks coalesces adjacent index entries into fetch windows.
func groupLogBlocks(blocks []blockio.Block) []logGroup {
	var groups []logGroup
	for i := 0; i < len(blocks); {
		g := logGroup{off: blocks[i].Offset}
		end := blocks[i].Offset
		for i < len(blocks) {
			blkEnd := blocks[i].Offset + blocks[i].DataLen()
			if blkEnd-g.off > logFetchWindowBytes && g.blocks > 0 {
				break
			}
			end = blkEnd
			g.blocks++
			i++
		}
		g.length = end - g.off
		groups = append(groups, g)
	}
	return groups
}

// logFetchWindowBytes mirrors the trace reader's fetch window: one
// ReadAt per ~4 MiB of contiguous blocks. A variable for tests.
var logFetchWindowBytes int64 = 4 << 20

// parseLogGroup fetches one window and aggregates its blocks into s.
func parseLogGroup(ra io.ReaderAt, g logGroup, s *LogSummary, buf *[]byte, stats blockio.Stats) error {
	if int64(cap(*buf)) < g.length {
		*buf = make([]byte, g.length)
	}
	window := (*buf)[:g.length]
	if _, err := ra.ReadAt(window, g.off); err != nil {
		return fmt.Errorf("profile: reading log blocks at offset %d: %w", g.off, err)
	}
	for b := 0; b < g.blocks; b++ {
		records, payload, rest, err := blockio.ParseBlock(window, stats)
		if err != nil {
			return fmt.Errorf("profile: log block at offset %d: %w", g.off, err)
		}
		window = rest
		before := s.Records
		if err := parseLogRecords(payload, s); err != nil {
			return err
		}
		if s.Records-before != uint64(records) {
			return fmt.Errorf("profile: log block holds %d records, header says %d", s.Records-before, records)
		}
	}
	return nil
}

// WriteSyntheticLog emits a deterministic pseudo-random raw profile log
// of the given record count in the selected format — the workload for
// ingestion benchmarks and fuzz corpora, cheap enough to synthesize
// gigabytes in seconds.
func WriteSyntheticLog(w io.Writer, records int, format LogFormat, seed uint64) error {
	lw := newLogWriter(w, format)
	state := seed | 1
	for i := 0; i < records; i++ {
		// xorshift64: cheap, deterministic, spreads layers and sizes.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		layer := memhier.LayerID(state % 4)
		addr := (state >> 8) % (1 << 28)
		words := state%64 + 1
		lw.TraceAccess(layer, addr, words, state&(1<<7) != 0)
		if err := lw.Err(); err != nil {
			return err
		}
	}
	return lw.Flush()
}

// SameSummary reports whether two log summaries are identical — the
// serial/parallel equivalence check used by tests and the ingestion
// benchmark.
func SameSummary(a, b *LogSummary) bool {
	return a.Records == b.Records && a.Reads == b.Reads && a.Writes == b.Writes
}
