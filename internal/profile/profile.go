// Package profile runs an allocation trace against one allocator
// configuration on a memory hierarchy and collects the paper's four
// metrics — memory accesses, memory footprint, energy and execution time —
// broken down per hierarchy layer. It also implements the raw profile-log
// emitter and the fast streaming parser (the paper stresses parsing
// gigabyte logs in under 20 seconds).
package profile

import (
	"fmt"
	"io"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/trace"
)

// LayerMetrics are the per-layer profiling results.
type LayerMetrics struct {
	Name      string
	Reads     uint64
	Writes    uint64
	PeakBytes int64
}

// Accesses returns reads+writes.
func (m LayerMetrics) Accesses() uint64 { return m.Reads + m.Writes }

// Metrics are the complete profiling results of one configuration run.
type Metrics struct {
	ConfigID    string
	ConfigLabel string
	Workload    string

	PerLayer []LayerMetrics

	Accesses       uint64  // total word accesses, all layers
	FootprintBytes int64   // sum of per-layer peak reserved bytes
	EnergyNJ       float64 // dynamic + leakage energy
	Cycles         uint64  // execution time in CPU cycles

	Mallocs  uint64
	Frees    uint64
	Failures uint64 // allocations the configuration could not satisfy

	// PeakRequestedBytes is the workload's own peak live demand — the
	// lower bound any allocator's footprint is compared against.
	PeakRequestedBytes int64

	// Series holds footprint-over-time samples when Options.SampleEvery
	// is set: one sample per SampleEvery trace events, plus a final one.
	Series []FootprintSample
}

// FootprintSample is one point of the footprint-over-time series.
type FootprintSample struct {
	Event          int   // trace event index
	ReservedBytes  int64 // allocator footprint at that point
	RequestedBytes int64 // application live demand at that point
}

// Feasible reports whether the configuration served every allocation.
func (m *Metrics) Feasible() bool { return m.Failures == 0 }

// FootprintOverhead returns footprint / peak requested bytes (>= 1 for
// feasible runs; 0 when the workload made no requests).
func (m *Metrics) FootprintOverhead() float64 {
	if m.PeakRequestedBytes == 0 {
		return 0
	}
	return float64(m.FootprintBytes) / float64(m.PeakRequestedBytes)
}

// Objective names used across the reporter and Pareto tooling.
const (
	ObjAccesses  = "accesses"
	ObjFootprint = "footprint"
	ObjEnergy    = "energy"
	ObjCycles    = "cycles"
)

// Objective returns the named objective value (smaller is better).
func (m *Metrics) Objective(name string) (float64, error) {
	switch name {
	case ObjAccesses:
		return float64(m.Accesses), nil
	case ObjFootprint:
		return float64(m.FootprintBytes), nil
	case ObjEnergy:
		return m.EnergyNJ, nil
	case ObjCycles:
		return float64(m.Cycles), nil
	default:
		return 0, fmt.Errorf("profile: unknown objective %q", name)
	}
}

// Options tune a profiling run.
type Options struct {
	// LogWriter, when non-nil, receives the raw access log (every charged
	// word access) in the format parsed by ParseLog.
	LogWriter io.Writer

	// LogFormat selects the raw log encoding: LogV2 (default) frames
	// records into CRC32C blocks with a footer index so ParseLogParallel
	// can ingest the file on every core; LogV1 is the legacy bare stream.
	LogFormat LogFormat

	// Caches attaches a simulated cache in front of the named layers.
	Caches map[string]CacheSpec

	// SampleEvery enables the footprint-over-time series: one sample per
	// this many trace events (0 disables sampling).
	SampleEvery int

	// RowBuffers enables the SDRAM open-page model on the named layers
	// (ignored where a cache is also attached).
	RowBuffers map[string]RowBufferSpec
}

// RowBufferSpec describes an open-page model to attach to a layer.
type RowBufferSpec struct {
	RowWords uint64
	Banks    int
}

// CacheSpec describes a cache to attach to a layer.
type CacheSpec struct {
	SizeWords uint64
	LineWords uint64
	Ways      int
}

// Run profiles cfg against tr on hierarchy h. It compiles the trace and
// replays it once; callers profiling many configurations against the same
// trace should trace.Compile once and reuse a Replayer instead.
func Run(tr *trace.Trace, cfg alloc.Config, h *memhier.Hierarchy, opts Options) (*Metrics, error) {
	ct, err := trace.Compile(tr)
	if err != nil {
		return nil, err
	}
	return NewReplayer().Run(ct, cfg, h, opts)
}
