// Package profile runs an allocation trace against one allocator
// configuration on a memory hierarchy and collects the paper's four
// metrics — memory accesses, memory footprint, energy and execution time —
// broken down per hierarchy layer. It also implements the raw profile-log
// emitter and the fast streaming parser (the paper stresses parsing
// gigabyte logs in under 20 seconds).
package profile

import (
	"errors"
	"fmt"
	"io"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
	"dmexplore/internal/trace"
)

// LayerMetrics are the per-layer profiling results.
type LayerMetrics struct {
	Name      string
	Reads     uint64
	Writes    uint64
	PeakBytes int64
}

// Accesses returns reads+writes.
func (m LayerMetrics) Accesses() uint64 { return m.Reads + m.Writes }

// Metrics are the complete profiling results of one configuration run.
type Metrics struct {
	ConfigID    string
	ConfigLabel string
	Workload    string

	PerLayer []LayerMetrics

	Accesses       uint64  // total word accesses, all layers
	FootprintBytes int64   // sum of per-layer peak reserved bytes
	EnergyNJ       float64 // dynamic + leakage energy
	Cycles         uint64  // execution time in CPU cycles

	Mallocs  uint64
	Frees    uint64
	Failures uint64 // allocations the configuration could not satisfy

	// PeakRequestedBytes is the workload's own peak live demand — the
	// lower bound any allocator's footprint is compared against.
	PeakRequestedBytes int64

	// Series holds footprint-over-time samples when Options.SampleEvery
	// is set: one sample per SampleEvery trace events, plus a final one.
	Series []FootprintSample
}

// FootprintSample is one point of the footprint-over-time series.
type FootprintSample struct {
	Event          int   // trace event index
	ReservedBytes  int64 // allocator footprint at that point
	RequestedBytes int64 // application live demand at that point
}

// Feasible reports whether the configuration served every allocation.
func (m *Metrics) Feasible() bool { return m.Failures == 0 }

// FootprintOverhead returns footprint / peak requested bytes (>= 1 for
// feasible runs; 0 when the workload made no requests).
func (m *Metrics) FootprintOverhead() float64 {
	if m.PeakRequestedBytes == 0 {
		return 0
	}
	return float64(m.FootprintBytes) / float64(m.PeakRequestedBytes)
}

// Objective names used across the reporter and Pareto tooling.
const (
	ObjAccesses  = "accesses"
	ObjFootprint = "footprint"
	ObjEnergy    = "energy"
	ObjCycles    = "cycles"
)

// Objective returns the named objective value (smaller is better).
func (m *Metrics) Objective(name string) (float64, error) {
	switch name {
	case ObjAccesses:
		return float64(m.Accesses), nil
	case ObjFootprint:
		return float64(m.FootprintBytes), nil
	case ObjEnergy:
		return m.EnergyNJ, nil
	case ObjCycles:
		return float64(m.Cycles), nil
	default:
		return 0, fmt.Errorf("profile: unknown objective %q", name)
	}
}

// Options tune a profiling run.
type Options struct {
	// LogWriter, when non-nil, receives the raw access log (every charged
	// word access) in the format parsed by ParseLog.
	LogWriter io.Writer

	// Caches attaches a simulated cache in front of the named layers.
	Caches map[string]CacheSpec

	// SampleEvery enables the footprint-over-time series: one sample per
	// this many trace events (0 disables sampling).
	SampleEvery int

	// RowBuffers enables the SDRAM open-page model on the named layers
	// (ignored where a cache is also attached).
	RowBuffers map[string]RowBufferSpec
}

// RowBufferSpec describes an open-page model to attach to a layer.
type RowBufferSpec struct {
	RowWords uint64
	Banks    int
}

// CacheSpec describes a cache to attach to a layer.
type CacheSpec struct {
	SizeWords uint64
	LineWords uint64
	Ways      int
}

// Run profiles cfg against tr on hierarchy h.
func Run(tr *trace.Trace, cfg alloc.Config, h *memhier.Hierarchy, opts Options) (*Metrics, error) {
	ctx := simheap.NewContext(h)

	var lw *logWriter
	if opts.LogWriter != nil {
		lw = newLogWriter(opts.LogWriter)
		ctx.SetTracer(lw)
	}
	for layerName, spec := range opts.Caches {
		id, ok := h.ByName(layerName)
		if !ok {
			return nil, fmt.Errorf("profile: cache on unknown layer %q", layerName)
		}
		c, err := memhier.NewCache(spec.SizeWords, spec.LineWords, spec.Ways)
		if err != nil {
			return nil, fmt.Errorf("profile: cache for %s: %w", layerName, err)
		}
		if err := ctx.AttachCache(id, c); err != nil {
			return nil, err
		}
	}

	for layerName, spec := range opts.RowBuffers {
		id, ok := h.ByName(layerName)
		if !ok {
			return nil, fmt.Errorf("profile: row buffer on unknown layer %q", layerName)
		}
		rb, err := memhier.NewRowBuffer(spec.RowWords, spec.Banks)
		if err != nil {
			return nil, fmt.Errorf("profile: row buffer for %s: %w", layerName, err)
		}
		if err := ctx.AttachRowBuffer(id, rb); err != nil {
			return nil, err
		}
	}

	a, err := cfg.Build(ctx)
	if err != nil {
		return nil, fmt.Errorf("profile: building %s: %w", cfg.ID(), err)
	}

	m := &Metrics{
		ConfigID:    cfg.ID(),
		ConfigLabel: cfg.Label,
		Workload:    tr.Name,
	}

	ptrs := make(map[uint64]alloc.Ptr)
	reqSize := make(map[uint64]int64)
	var liveRequested, peakRequested int64

	sample := func(i int) {
		m.Series = append(m.Series, FootprintSample{
			Event:          i,
			ReservedBytes:  ctx.TotalReservedBytes(),
			RequestedBytes: liveRequested,
		})
	}
	for i, e := range tr.Events {
		if opts.SampleEvery > 0 && i%opts.SampleEvery == 0 {
			sample(i)
		}
		switch e.Kind {
		case trace.KindAlloc:
			liveRequested += e.Size
			reqSize[e.ID] = e.Size
			if liveRequested > peakRequested {
				peakRequested = liveRequested
			}
			ptr, err := a.Malloc(e.Size)
			if err != nil {
				if errors.Is(err, alloc.ErrOutOfMemory) {
					m.Failures++
					continue
				}
				return nil, fmt.Errorf("profile: event %d: %w", i, err)
			}
			m.Mallocs++
			ptrs[e.ID] = ptr
		case trace.KindFree:
			liveRequested -= reqSize[e.ID]
			delete(reqSize, e.ID)
			ptr, ok := ptrs[e.ID]
			if !ok {
				// The allocation failed; nothing to free.
				continue
			}
			if err := a.Free(ptr); err != nil {
				return nil, fmt.Errorf("profile: event %d: %w", i, err)
			}
			m.Frees++
			delete(ptrs, e.ID)
		case trace.KindAccess:
			ptr, ok := ptrs[e.ID]
			if !ok {
				continue
			}
			if e.Reads > 0 {
				ctx.Read(ptr.Layer, ptr.Addr, e.Reads)
			}
			if e.Writes > 0 {
				ctx.Write(ptr.Layer, ptr.Addr, e.Writes)
			}
		case trace.KindTick:
			ctx.Compute(e.Cycles)
		default:
			return nil, fmt.Errorf("profile: event %d: unknown kind %d", i, e.Kind)
		}
	}

	if opts.SampleEvery > 0 {
		sample(len(tr.Events))
	}
	if lw != nil {
		if err := lw.Flush(); err != nil {
			return nil, fmt.Errorf("profile: flushing log: %w", err)
		}
	}

	for i := 0; i < h.NumLayers(); i++ {
		c := ctx.Counters(memhier.LayerID(i))
		m.PerLayer = append(m.PerLayer, LayerMetrics{
			Name:      h.Layer(memhier.LayerID(i)).Name,
			Reads:     c.Reads,
			Writes:    c.Writes,
			PeakBytes: c.PeakBytes,
		})
	}
	m.Accesses = ctx.TotalAccesses()
	m.FootprintBytes = ctx.TotalPeakBytes()
	m.EnergyNJ = ctx.Energy()
	m.Cycles = ctx.Cycles()
	m.PeakRequestedBytes = peakRequested
	return m, nil
}
