package profile

import (
	"fmt"
	"time"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
	"dmexplore/internal/telemetry/span"
	"dmexplore/internal/trace"
)

// Incremental re-evaluation: configurations that share their fixed-pool
// signature (the Fixed slice plus the general pool's layer) differ only
// in the fallback pool's policy. Request routing in alloc.Composed is a
// pure function of the fixed pools — a request reaches the general pool
// iff no fixed pool matches-and-serves it — so the fixed-side simulation
// (routing cycles, fixed-pool metadata traffic, application accesses,
// ticks) is invariant across every such configuration.
//
// Partition replays the trace once per signature with the real fixed
// pools composed over an inert recording fallback, capturing (a) the
// invariant per-layer counters and cycles and (b) the exact sequence of
// ops that reached the fallback. RunPartial then replays only that op
// sequence against a candidate's standalone general pool and composes
// the two runs into bit-identical full-replay metrics.
//
// Exactness on the shared layer: fixed pools and the general pool may
// reserve from the same layer (e.g. both on DRAM). The layer's reserved
// bytes decompose as F(t)+G(t) with F driven only by fixed-side events
// and G only by fallback ops. G is monotone non-decreasing — fallback
// pools never release arenas — and constant between fallback ops, so
//
//	peak(F+G) = max over gaps j of (max F within gap j) + (G after op j)
//
// where a "gap" is the run of events between consecutive fallback ops.
// Every candidate value is attained at a real reserve instant and every
// real reserve instant is dominated by a candidate, so the composed peak
// is exact. When the shared layer is bounded the composed peak is also
// how capacity divergence is detected: the real run's first failing
// reserve would make some candidate exceed the capacity, so RunPartial
// bails to a full replay whenever the composed peak overflows (and
// whenever the standalone pool itself errors), leaving the incremental
// path to serve only runs it reproduces exactly.
//
// The partial path requires fast-path profiling (no tracer, caches or
// row buffers, no footprint series): the recording fallback hands out
// synthetic addresses, which only the flat address-independent cost
// model may observe.

// recBase is the synthetic address base the recording fallback hands
// out. Real reservations are bump-allocated from zero and never approach
// 2^48 bytes, so synthetic addresses cannot collide with fixed-pool
// payload addresses in the composed live map.
const recBase = uint64(1) << 48

// recordingFallback is the inert general pool behind Partition's
// invariant replay: it satisfies every request without touching the
// simulation counters, records the op sequence for later standalone
// replay, and samples the fixed-side reserved bytes on the general
// layer at each op boundary (closing one "gap").
type recordingFallback struct {
	ctx   *simheap.Context
	layer memhier.LayerID

	// ops is the recorded fallback sequence: v > 0 is an allocation of v
	// bytes; v < 0 frees the (^v)-th recorded allocation.
	ops    []int64
	sizes  []int64 // requested bytes per recorded allocation
	live   int
	allocs int

	fMax   []int64 // per closed gap: max fixed-side reserved bytes
	gapMax int64   // running max within the open gap
}

// observe folds the current fixed-side reservation level on the general
// layer into the open gap's maximum. The partition loop calls it after
// every event; within one event the level moves at most once (one chunk
// reserve or release), so the post-event sample captures the event's
// maximum.
func (p *recordingFallback) observe() {
	if f := p.ctx.Counters(p.layer).ReservedBytes; f > p.gapMax {
		p.gapMax = f
	}
}

// boundary closes the open gap at a fallback op: the fixed-side level is
// unchanged since the last observe (fixed pools do not move during a
// fallback op), so the recorded maximum is final.
func (p *recordingFallback) boundary() {
	p.fMax = append(p.fMax, p.gapMax)
	p.gapMax = p.ctx.Counters(p.layer).ReservedBytes
}

func (p *recordingFallback) Malloc(size int64) (alloc.Ptr, int64, error) {
	p.boundary()
	k := len(p.sizes)
	p.sizes = append(p.sizes, size)
	p.ops = append(p.ops, size)
	p.live++
	p.allocs++
	return alloc.Ptr{Layer: p.layer, Addr: recBase + uint64(k)*simheap.WordSize}, size, nil
}

func (p *recordingFallback) Free(addr uint64) (int64, error) {
	p.boundary()
	k := int64((addr - recBase) / simheap.WordSize)
	if k < 0 || k >= int64(len(p.sizes)) {
		return 0, fmt.Errorf("profile: recording fallback: free of unknown addr %#x", addr)
	}
	p.ops = append(p.ops, ^k)
	p.live--
	return p.sizes[k], nil
}

func (p *recordingFallback) Owns(addr uint64) bool { return addr >= recBase }
func (p *recordingFallback) LiveBlocks() int       { return p.live }
func (p *recordingFallback) ArenaBytes() int64     { return 0 }

// Partition is the fixed-side-invariant decomposition of one compiled
// trace under one fixed-pool signature: everything a partial replay
// needs except the candidate's general pool. It is immutable once built
// and shared read-only by all workers evaluating configurations with
// the same signature.
type Partition struct {
	genLayer memhier.LayerID
	events   int

	counters []simheap.LayerCounters // invariant per-layer counters
	cycles   uint64
	mallocs  uint64
	frees    uint64

	ops    []int64 // recorded fallback ops (see recordingFallback.ops)
	allocs int
	fMax   []int64 // len(ops)+1 gap maxima on genLayer
}

// Ops returns the number of recorded fallback ops a partial replay
// re-simulates.
func (p *Partition) Ops() int { return len(p.ops) }

// Events returns the compiled trace's event count the partition covers.
func (p *Partition) Events() int { return p.events }

// SkippedEvents returns how many trace events a partial replay avoids
// re-simulating compared to a full replay.
func (p *Partition) SkippedEvents() int { return p.events - len(p.ops) }

// Partition replays ct once with cfg's fixed pools composed over an
// inert recording fallback, producing the invariant decomposition shared
// by every configuration with the same fixed-pool signature. It uses the
// fast-path cost model only (the equivalent of Run with zero Options).
func (r *Replayer) Partition(ct *trace.Compiled, cfg alloc.Config, h *memhier.Hierarchy) (*Partition, error) {
	var start time.Time
	if r.Shard != nil || r.Spans != nil {
		start = time.Now()
	}
	genLayer, ok := h.ByName(cfg.General.Layer)
	if !ok {
		return nil, fmt.Errorf("profile: unknown general layer %q", cfg.General.Layer)
	}
	ctx := simheap.NewContext(h)
	rec := &recordingFallback{ctx: ctx, layer: genLayer}
	a, err := cfg.BuildWithFallback(ctx, rec)
	if err != nil {
		return nil, fmt.Errorf("profile: building fixed side of %s: %w", cfg.ID(), err)
	}
	// Gap 0 opens after the fixed pools' construction-time reserves — the
	// instant the real build would construct the general pool.
	rec.gapMax = ctx.Counters(genLayer).ReservedBytes

	p := &Partition{genLayer: genLayer, events: ct.Len()}
	r.reset(ct.NumIDs)
	kinds, ids, argA, argB := ct.Slabs()
	for i := range kinds {
		switch kinds[i] {
		case trace.KindAlloc:
			ptr, err := a.Malloc(int64(argA[i]))
			if err != nil {
				// The recording fallback cannot fail, so any error is a
				// fixed-side fault the full replay path must surface.
				return nil, fmt.Errorf("profile: partition event %d: %w", i, err)
			}
			p.mallocs++
			id := ids[i]
			r.ptrs[id] = ptr
			r.live[id] = true
		case trace.KindFree:
			id := ids[i]
			if !r.live[id] {
				continue
			}
			r.live[id] = false
			if err := a.Free(r.ptrs[id]); err != nil {
				return nil, fmt.Errorf("profile: partition event %d: %w", i, err)
			}
			p.frees++
		case trace.KindAccess:
			id := ids[i]
			if !r.live[id] {
				continue
			}
			ptr := r.ptrs[id]
			if reads := argA[i]; reads > 0 {
				ctx.Read(ptr.Layer, ptr.Addr, reads)
			}
			if writes := argB[i]; writes > 0 {
				ctx.Write(ptr.Layer, ptr.Addr, writes)
			}
		case trace.KindTick:
			ctx.Compute(argA[i])
		default:
			return nil, fmt.Errorf("profile: partition event %d: unknown kind %d", i, kinds[i])
		}
		rec.observe()
	}
	rec.boundary() // close the final gap; the trailing level is unused

	p.counters = make([]simheap.LayerCounters, h.NumLayers())
	for i := range p.counters {
		p.counters[i] = ctx.Counters(memhier.LayerID(i))
	}
	p.cycles = ctx.Cycles()
	p.ops = rec.ops
	p.allocs = rec.allocs
	p.fMax = rec.fMax[:len(rec.ops)+1]
	if r.Shard != nil {
		r.Shard.ObservePartitionBuild(time.Since(start), ct.Len())
	}
	r.Spans.Since(span.StagePartitionBuild, start, int64(ct.Len()))
	return p, nil
}

// RunPartial profiles cfg by replaying only part's recorded fallback ops
// against a standalone general pool and composing the result with the
// partition's invariant half. cfg must share part's fixed-pool signature.
// The returned metrics are bit-identical to a full fast-path Run. ok is
// false when the partial path cannot reproduce the full replay exactly —
// the standalone pool errored (the real run would record allocation
// failures) or the composed peak overflows the general layer's capacity
// (fixed and general reserves interact) — and the caller must fall back
// to a full replay.
func (r *Replayer) RunPartial(ct *trace.Compiled, part *Partition, cfg alloc.Config, h *memhier.Hierarchy) (*Metrics, bool) {
	var start time.Time
	if r.Shard != nil || r.Spans != nil {
		start = time.Now()
	}
	ctx := simheap.NewContext(h)
	pool, err := cfg.BuildGeneral(ctx)
	if err != nil {
		return nil, false
	}
	genLayer := part.genLayer
	if cap(r.genAddrs) < part.allocs {
		r.genAddrs = make([]uint64, 0, part.allocs)
	}
	addrs := r.genAddrs[:0]
	maxSum := part.fMax[0] + ctx.Counters(genLayer).ReservedBytes
	for j, op := range part.ops {
		if op > 0 {
			ptr, _, err := pool.Malloc(op)
			if err != nil {
				return nil, false
			}
			addrs = append(addrs, ptr.Addr)
		} else {
			if _, err := pool.Free(addrs[^op]); err != nil {
				return nil, false
			}
		}
		if s := part.fMax[j+1] + ctx.Counters(genLayer).ReservedBytes; s > maxSum {
			maxSum = s
		}
	}
	if layer := h.Layer(genLayer); layer.Bounded() && maxSum > layer.Capacity {
		return nil, false
	}

	counters := make([]simheap.LayerCounters, h.NumLayers())
	for i := range counters {
		inv := part.counters[i]
		gen := ctx.Counters(memhier.LayerID(i))
		counters[i] = simheap.LayerCounters{
			Reads:     inv.Reads + gen.Reads,
			Writes:    inv.Writes + gen.Writes,
			PeakBytes: inv.PeakBytes,
		}
		if memhier.LayerID(i) == genLayer {
			counters[i].PeakBytes = maxSum
		}
	}
	cycles := part.cycles + ctx.Cycles()

	m := &Metrics{
		ConfigID:    cfg.ID(),
		ConfigLabel: cfg.Label,
		Workload:    ct.Name,
	}
	var accesses uint64
	var footprint int64
	for i := range counters {
		m.PerLayer = append(m.PerLayer, LayerMetrics{
			Name:      h.Layer(memhier.LayerID(i)).Name,
			Reads:     counters[i].Reads,
			Writes:    counters[i].Writes,
			PeakBytes: counters[i].PeakBytes,
		})
		accesses += counters[i].Accesses()
		footprint += counters[i].PeakBytes
	}
	m.Accesses = accesses
	m.FootprintBytes = footprint
	m.EnergyNJ = simheap.EnergyOf(h, counters, cycles, 0)
	m.Cycles = cycles
	m.Mallocs = part.mallocs
	m.Frees = part.frees
	m.PeakRequestedBytes = ct.PeakRequestedBytes
	if r.Shard != nil {
		r.Shard.ObservePartialSim(time.Since(start), len(part.ops), part.SkippedEvents())
	}
	r.Spans.Since(span.StagePartialSim, start, int64(len(part.ops)))
	return m, true
}
