package profile

import (
	"errors"
	"fmt"
	"time"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
	"dmexplore/internal/telemetry/span"
	"dmexplore/internal/trace"
)

// Incremental re-evaluation: configurations that share their fixed-pool
// signature (the Fixed slice plus the general pool's layer) differ only
// in the fallback pool's policy. Request routing in alloc.Composed is a
// pure function of the fixed pools — a request reaches the general pool
// iff no fixed pool matches-and-serves it — so the fixed-side simulation
// (routing cycles, fixed-pool metadata traffic, application accesses,
// ticks) is invariant across every such configuration.
//
// Partition replays the trace once per signature with the real fixed
// pools composed over an inert recording fallback, capturing (a) the
// invariant per-layer counters and cycles and (b) the exact sequence of
// ops that reached the fallback. RunPartial then replays only that op
// sequence against a candidate's standalone general pool and composes
// the two runs into bit-identical full-replay metrics.
//
// Exactness on the shared layer: fixed pools and the general pool may
// reserve from the same layer (e.g. both on DRAM). The layer's reserved
// bytes decompose as F(t)+G(t) with F driven only by fixed-side events
// and G only by fallback ops. G is monotone non-decreasing — fallback
// pools never release arenas — and constant between fallback ops, so
//
//	peak(F+G) = max over gaps j of (max F within gap j) + (G after op j)
//
// where a "gap" is the run of events between consecutive fallback ops.
// Every candidate value is attained at a real reserve instant and every
// real reserve instant is dominated by a candidate, so the composed peak
// is exact. When the shared layer is bounded the composed peak is also
// how capacity divergence is detected: the real run's first failing
// reserve would make some candidate exceed the capacity, so RunPartial
// bails to a full replay whenever the composed peak overflows (and
// whenever the standalone pool itself errors), leaving the incremental
// path to serve only runs it reproduces exactly.
//
// The partial path requires fast-path profiling (no tracer, caches or
// row buffers, no footprint series): the recording fallback hands out
// synthetic addresses, which only the flat address-independent cost
// model may observe.
//
// The partial replay itself splits further (PoolReplay/Compose): the
// standalone general-pool run depends only on the recorded op sequence
// and the general pool's parameters — not on which fixed-pool signature
// recorded the sequence — so a PoolRun captured under one partition
// composes exactly with any partition whose recorded ops are
// content-identical. The session memoizes PoolRuns by (ops content hash,
// GeneralConfig.ID), turning a fixed-axis move whose neighbour records
// the same fallback sequence (reclaim flips, pool-set swaps that route
// identically, NSGA-II crossover offspring mixing a seen fixed signature
// with a seen general vector) into an O(ops) composition with no
// simulation at all.
//
// Exactness extends to capacity-failing runs when no fixed pool shares
// the general layer: the standalone pool then sees exactly the reserve
// headroom the real composed run would (fixed-side occupancy on the
// general layer is identically zero), so its allocation failures — pool
// budget or layer capacity — reproduce the real run's failures
// op-for-op. PoolReplay records them; Compose subtracts the partition's
// charges for the events the real replay loop would have skipped (the
// failed allocation's accesses, and the free-dispatch cycles of its
// skipped KindFree). When a fixed pool does share the general layer a
// failing run still declines to a full replay: the standalone pool
// cannot see the fixed-side occupancy that decides which reserve fails
// first.

// recBase is the synthetic address base the recording fallback hands
// out. Real reservations are bump-allocated from zero and never approach
// 2^48 bytes, so synthetic addresses cannot collide with fixed-pool
// payload addresses in the composed live map.
const recBase = uint64(1) << 48

// recordingFallback is the inert general pool behind Partition's
// invariant replay: it satisfies every request without touching the
// simulation counters, records the op sequence for later standalone
// replay, and samples the fixed-side reserved bytes on the general
// layer at each op boundary (closing one "gap").
type recordingFallback struct {
	ctx   *simheap.Context
	layer memhier.LayerID

	// ops is the recorded fallback sequence: v > 0 is an allocation of v
	// bytes; v < 0 frees the (^v)-th recorded allocation.
	ops    []int64
	sizes  []int64 // requested bytes per recorded allocation
	live   int
	allocs int

	fMax   []int64 // per closed gap: max fixed-side reserved bytes
	gapMax int64   // running max within the open gap
}

// observe folds the current fixed-side reservation level on the general
// layer into the open gap's maximum. The partition loop calls it after
// every event; within one event the level moves at most once (one chunk
// reserve or release), so the post-event sample captures the event's
// maximum.
func (p *recordingFallback) observe() {
	if f := p.ctx.Counters(p.layer).ReservedBytes; f > p.gapMax {
		p.gapMax = f
	}
}

// boundary closes the open gap at a fallback op: the fixed-side level is
// unchanged since the last observe (fixed pools do not move during a
// fallback op), so the recorded maximum is final.
func (p *recordingFallback) boundary() {
	p.fMax = append(p.fMax, p.gapMax)
	p.gapMax = p.ctx.Counters(p.layer).ReservedBytes
}

func (p *recordingFallback) Malloc(size int64) (alloc.Ptr, int64, error) {
	p.boundary()
	k := len(p.sizes)
	p.sizes = append(p.sizes, size)
	p.ops = append(p.ops, size)
	p.live++
	p.allocs++
	return alloc.Ptr{Layer: p.layer, Addr: recBase + uint64(k)*simheap.WordSize}, size, nil
}

func (p *recordingFallback) Free(addr uint64) (int64, error) {
	p.boundary()
	k := int64((addr - recBase) / simheap.WordSize)
	if k < 0 || k >= int64(len(p.sizes)) {
		return 0, fmt.Errorf("profile: recording fallback: free of unknown addr %#x", addr)
	}
	p.ops = append(p.ops, ^k)
	p.live--
	return p.sizes[k], nil
}

func (p *recordingFallback) Owns(addr uint64) bool { return addr >= recBase }
func (p *recordingFallback) LiveBlocks() int       { return p.live }
func (p *recordingFallback) ArenaBytes() int64     { return 0 }

// Partition is the fixed-side-invariant decomposition of one compiled
// trace under one fixed-pool signature: everything a partial replay
// needs except the candidate's general pool. It is immutable once built
// and shared read-only by all workers evaluating configurations with
// the same signature.
type Partition struct {
	genLayer memhier.LayerID
	events   int

	counters []simheap.LayerCounters // invariant per-layer counters
	cycles   uint64
	mallocs  uint64
	frees    uint64

	ops    []int64 // recorded fallback ops (see recordingFallback.ops)
	allocs int
	fMax   []int64 // len(ops)+1 gap maxima on genLayer

	// opsHash is a content hash of ops — the pool-run memo key half that
	// lets content-identical sequences recorded under different fixed-pool
	// signatures share one standalone general-pool run.
	opsHash uint64

	// numFixed is the configuration's fixed-pool count; the composed
	// free-dispatch cost is numFixed+1 compute cycles, which failure
	// replay must subtract for each free the real run skips.
	numFixed int

	// sharesGen records whether any fixed pool reserves from the general
	// layer. Failure replay is exact only when false (the standalone pool
	// then sees the real run's exact reserve headroom).
	sharesGen bool

	// recReads/recWrites tally, per recorded allocation, the word reads
	// and writes the trace charges to it — the general-layer traffic the
	// real replay loop skips when that allocation fails.
	recReads  []uint64
	recWrites []uint64
}

// Ops returns the number of recorded fallback ops a partial replay
// re-simulates.
func (p *Partition) Ops() int { return len(p.ops) }

// Events returns the compiled trace's event count the partition covers.
func (p *Partition) Events() int { return p.events }

// SkippedEvents returns how many trace events a partial replay avoids
// re-simulating compared to a full replay.
func (p *Partition) SkippedEvents() int { return p.events - len(p.ops) }

// OpsHash returns the content hash of the recorded fallback op sequence
// (FNV-1a over the op words). Equal hashes are a memo-probe filter, not
// a correctness guarantee: pool-run reuse additionally verifies the full
// sequence (see PoolRun.MatchesOps).
func (p *Partition) OpsHash() uint64 { return p.opsHash }

// SharesGeneralLayer reports whether a fixed pool reserves from the
// general pool's layer. When it does, capacity-failing candidates cannot
// be served by the partial path.
func (p *Partition) SharesGeneralLayer() bool { return p.sharesGen }

// MemBytes estimates the partition's retained heap footprint, the unit
// the session's size-aware cache bound accounts in.
func (p *Partition) MemBytes() int64 {
	return int64(len(p.ops))*8 + int64(len(p.fMax))*8 +
		int64(len(p.recReads))*16 + int64(len(p.counters))*32 + 256
}

// Partition replays ct once with cfg's fixed pools composed over an
// inert recording fallback, producing the invariant decomposition shared
// by every configuration with the same fixed-pool signature. It uses the
// fast-path cost model only (the equivalent of Run with zero Options).
func (r *Replayer) Partition(ct *trace.Compiled, cfg alloc.Config, h *memhier.Hierarchy) (*Partition, error) {
	var start time.Time
	if r.Shard != nil || r.Spans != nil {
		start = time.Now()
	}
	genLayer, ok := h.ByName(cfg.General.Layer)
	if !ok {
		return nil, fmt.Errorf("profile: unknown general layer %q", cfg.General.Layer)
	}
	ctx := simheap.NewContext(h)
	rec := &recordingFallback{ctx: ctx, layer: genLayer}
	a, err := cfg.BuildWithFallback(ctx, rec)
	if err != nil {
		return nil, fmt.Errorf("profile: building fixed side of %s: %w", cfg.ID(), err)
	}
	// Gap 0 opens after the fixed pools' construction-time reserves — the
	// instant the real build would construct the general pool.
	rec.gapMax = ctx.Counters(genLayer).ReservedBytes

	p := &Partition{genLayer: genLayer, events: ct.Len(), numFixed: len(cfg.Fixed)}
	for _, f := range cfg.Fixed {
		if id, ok := h.ByName(f.Layer); ok && id == genLayer {
			p.sharesGen = true
		}
	}
	r.reset(ct.NumIDs)
	kinds, ids, argA, argB := ct.Slabs()
	for i := range kinds {
		switch kinds[i] {
		case trace.KindAlloc:
			ptr, err := a.Malloc(int64(argA[i]))
			if err != nil {
				// The recording fallback cannot fail, so any error is a
				// fixed-side fault the full replay path must surface.
				return nil, fmt.Errorf("profile: partition event %d: %w", i, err)
			}
			p.mallocs++
			id := ids[i]
			r.ptrs[id] = ptr
			r.live[id] = true
		case trace.KindFree:
			id := ids[i]
			if !r.live[id] {
				continue
			}
			r.live[id] = false
			if err := a.Free(r.ptrs[id]); err != nil {
				return nil, fmt.Errorf("profile: partition event %d: %w", i, err)
			}
			p.frees++
		case trace.KindAccess:
			id := ids[i]
			if !r.live[id] {
				continue
			}
			ptr := r.ptrs[id]
			if ptr.Addr >= recBase {
				// Traffic charged to a recorded (fallback-served)
				// allocation: tallied per allocation so failure replay can
				// subtract the accesses the real run never performs.
				k := int((ptr.Addr - recBase) / simheap.WordSize)
				for k >= len(p.recReads) {
					p.recReads = append(p.recReads, 0)
					p.recWrites = append(p.recWrites, 0)
				}
				p.recReads[k] += argA[i]
				p.recWrites[k] += argB[i]
			}
			if reads := argA[i]; reads > 0 {
				ctx.Read(ptr.Layer, ptr.Addr, reads)
			}
			if writes := argB[i]; writes > 0 {
				ctx.Write(ptr.Layer, ptr.Addr, writes)
			}
		case trace.KindTick:
			ctx.Compute(argA[i])
		default:
			return nil, fmt.Errorf("profile: partition event %d: unknown kind %d", i, kinds[i])
		}
		rec.observe()
	}
	rec.boundary() // close the final gap; the trailing level is unused

	p.counters = make([]simheap.LayerCounters, h.NumLayers())
	for i := range p.counters {
		p.counters[i] = ctx.Counters(memhier.LayerID(i))
	}
	p.cycles = ctx.Cycles()
	p.ops = rec.ops
	p.allocs = rec.allocs
	p.fMax = rec.fMax[:len(rec.ops)+1]
	p.opsHash = hashOps(rec.ops)
	if r.Shard != nil {
		r.Shard.ObservePartitionBuild(time.Since(start), ct.Len())
	}
	r.Spans.Since(span.StagePartitionBuild, start, int64(ct.Len()))
	return p, nil
}

// PoolRun is one standalone general-pool replay of a recorded fallback
// op sequence: everything Compose needs to assemble full-run metrics in
// O(ops) additions without re-simulating. It depends only on the op
// sequence's content and the general pool's parameters — not on which
// partition recorded the sequence — so it is shareable (via the
// session's pool-run memo) across every partition whose recorded ops are
// content-identical. Immutable once built.
type PoolRun struct {
	ops []int64 // the replayed sequence (shared with the recording partition)

	gAfter   []int64 // len(ops)+1: pool-reserved bytes after build and after each op
	counters []simheap.LayerCounters
	cycles   uint64

	// Failure replay: failed[k] marks the k-th recorded allocation as
	// failed (nil when the run is clean), failures counts them, and
	// skippedFrees counts the recorded frees of failed allocations — the
	// KindFree events the real replay loop skips.
	failed       []bool
	failures     uint64
	skippedFrees uint64
}

// Ops returns the length of the replayed op sequence.
func (pr *PoolRun) Ops() int { return len(pr.ops) }

// Failures returns the allocation failures the standalone replay
// recorded.
func (pr *PoolRun) Failures() uint64 { return pr.failures }

// MatchesOps verifies the run's op sequence is content-identical to the
// partition's — the collision-safety check behind the hash-keyed memo. A
// mismatch means a hash collision; the caller must replay instead of
// composing.
func (pr *PoolRun) MatchesOps(part *Partition) bool {
	if len(pr.ops) != len(part.ops) {
		return false
	}
	for i, op := range pr.ops {
		if op != part.ops[i] {
			return false
		}
	}
	return true
}

// MemBytes estimates the run's retained heap footprint (the shared ops
// slice is charged to the partition that recorded it).
func (pr *PoolRun) MemBytes() int64 {
	return int64(len(pr.gAfter))*8 + int64(len(pr.failed)) +
		int64(len(pr.counters))*32 + 192
}

// failedAddr is the placeholder payload address recorded for a failed
// allocation; it is never dereferenced (frees of failed allocations are
// skipped), the sentinel only keeps the slot occupied so later recorded
// allocation indices stay aligned.
const failedAddr = ^uint64(0)

// PoolReplay replays part's recorded fallback ops against a standalone
// instance of cfg's general pool, producing the sharable PoolRun half of
// a partial evaluation. Allocation failures wrapping alloc.ErrOutOfMemory
// — pool budget exhausted or layer capacity overflow — are recorded and
// replayed through, exactly as the real replay loop records a failure
// and skips the allocation's later frees; any other pool error returns
// ok=false (a full replay must surface it).
func (r *Replayer) PoolReplay(part *Partition, cfg alloc.Config, h *memhier.Hierarchy) (*PoolRun, bool) {
	ctx := simheap.NewContext(h)
	pool, err := cfg.BuildGeneral(ctx)
	if err != nil {
		return nil, false
	}
	genLayer := part.genLayer
	if cap(r.genAddrs) < part.allocs {
		r.genAddrs = make([]uint64, 0, part.allocs)
	}
	addrs := r.genAddrs[:0]
	run := &PoolRun{
		ops:    part.ops,
		gAfter: make([]int64, len(part.ops)+1),
	}
	run.gAfter[0] = ctx.Counters(genLayer).ReservedBytes
	allocIdx := 0
	for j, op := range part.ops {
		if op > 0 {
			k := allocIdx
			allocIdx++
			ptr, _, err := pool.Malloc(op)
			switch {
			case err == nil:
				addrs = append(addrs, ptr.Addr)
			case errors.Is(err, alloc.ErrOutOfMemory):
				if run.failed == nil {
					run.failed = make([]bool, part.allocs)
				}
				run.failed[k] = true
				run.failures++
				addrs = append(addrs, failedAddr)
			default:
				return nil, false
			}
		} else {
			k := ^op
			if run.failed != nil && run.failed[k] {
				run.skippedFrees++
			} else if _, err := pool.Free(addrs[k]); err != nil {
				return nil, false
			}
		}
		run.gAfter[j+1] = ctx.Counters(genLayer).ReservedBytes
	}
	run.counters = make([]simheap.LayerCounters, h.NumLayers())
	for i := range run.counters {
		run.counters[i] = ctx.Counters(memhier.LayerID(i))
	}
	run.cycles = ctx.Cycles()
	return run, true
}

// Compose assembles full-run metrics from a partition's invariant half
// and a standalone PoolRun of its recorded op sequence — O(ops)
// additions, no simulation. run must have been produced by PoolReplay on
// an op sequence content-identical to part's (the memo verifies this via
// MatchesOps), and cfg must share part's fixed-pool signature with run's
// general-pool parameters. The result is bit-identical to a full
// fast-path Run. ok is false when composition cannot reproduce the full
// replay exactly: the composed peak overflows the general layer's
// capacity, or the run recorded allocation failures while a fixed pool
// shares the general layer (the standalone pool's failure points then
// diverge from the real run's).
func (r *Replayer) Compose(ct *trace.Compiled, part *Partition, run *PoolRun, cfg alloc.Config, h *memhier.Hierarchy) (*Metrics, bool) {
	if run.failures > 0 && part.sharesGen {
		return nil, false
	}
	genLayer := part.genLayer
	maxSum := part.fMax[0] + run.gAfter[0]
	for j := 1; j < len(run.gAfter); j++ {
		if s := part.fMax[j] + run.gAfter[j]; s > maxSum {
			maxSum = s
		}
	}
	if layer := h.Layer(genLayer); layer.Bounded() && maxSum > layer.Capacity {
		return nil, false
	}

	// Failure corrections: the real replay loop skips a failed
	// allocation's accesses and frees entirely, but the partition's
	// invariant half charged them (its recording fallback never fails).
	// Subtract the general-layer traffic tallied against each failed
	// allocation and the free-dispatch cycles of each skipped free.
	var adjReads, adjWrites uint64
	if run.failures > 0 {
		for k, failed := range run.failed {
			if failed && k < len(part.recReads) {
				adjReads += part.recReads[k]
				adjWrites += part.recWrites[k]
			}
		}
	}
	genLayerInfo := h.Layer(genLayer)
	cycles := part.cycles + run.cycles -
		adjReads*uint64(genLayerInfo.ReadCycles) -
		adjWrites*uint64(genLayerInfo.WriteCycles) -
		run.skippedFrees*uint64(part.numFixed+1)

	counters := make([]simheap.LayerCounters, h.NumLayers())
	for i := range counters {
		inv := part.counters[i]
		gen := run.counters[i]
		counters[i] = simheap.LayerCounters{
			Reads:     inv.Reads + gen.Reads,
			Writes:    inv.Writes + gen.Writes,
			PeakBytes: inv.PeakBytes,
		}
		if memhier.LayerID(i) == genLayer {
			counters[i].Reads -= adjReads
			counters[i].Writes -= adjWrites
			counters[i].PeakBytes = maxSum
		}
	}

	m := &Metrics{
		ConfigID:    cfg.ID(),
		ConfigLabel: cfg.Label,
		Workload:    ct.Name,
	}
	var accesses uint64
	var footprint int64
	for i := range counters {
		m.PerLayer = append(m.PerLayer, LayerMetrics{
			Name:      h.Layer(memhier.LayerID(i)).Name,
			Reads:     counters[i].Reads,
			Writes:    counters[i].Writes,
			PeakBytes: counters[i].PeakBytes,
		})
		accesses += counters[i].Accesses()
		footprint += counters[i].PeakBytes
	}
	m.Accesses = accesses
	m.FootprintBytes = footprint
	m.EnergyNJ = simheap.EnergyOf(h, counters, cycles, 0)
	m.Cycles = cycles
	m.Mallocs = part.mallocs - run.failures
	m.Frees = part.frees - run.skippedFrees
	m.Failures = run.failures
	m.PeakRequestedBytes = ct.PeakRequestedBytes
	return m, true
}

// RunPartial profiles cfg by replaying only part's recorded fallback ops
// against a standalone general pool (PoolReplay) and composing the
// result with the partition's invariant half (Compose). cfg must share
// part's fixed-pool signature. The returned metrics are bit-identical to
// a full fast-path Run — including runs with allocation failures, when
// no fixed pool shares the general layer. ok is false when the partial
// path cannot reproduce the full replay exactly and the caller must fall
// back to a full replay.
func (r *Replayer) RunPartial(ct *trace.Compiled, part *Partition, cfg alloc.Config, h *memhier.Hierarchy) (*Metrics, bool) {
	var start time.Time
	if r.Shard != nil || r.Spans != nil {
		start = time.Now()
	}
	run, ok := r.PoolReplay(part, cfg, h)
	if !ok {
		return nil, false
	}
	m, ok := r.Compose(ct, part, run, cfg, h)
	if !ok {
		return nil, false
	}
	if r.Shard != nil {
		r.Shard.ObservePartialSim(time.Since(start), len(part.ops), part.SkippedEvents())
	}
	r.Spans.Since(span.StagePartialSim, start, int64(len(part.ops)))
	return m, true
}

// hashOps is FNV-1a over the op words — the memo-key content hash of a
// recorded fallback sequence. Collisions are tolerated (PoolRun.MatchesOps
// verifies the full sequence before reuse), the hash only has to make
// them vanishingly rare.
func hashOps(ops []int64) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for _, op := range ops {
		v := uint64(op)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// PoolRunState is PoolRun's serializable form, used by the persistent
// pool-run memo to carry standalone general-pool replays across tool
// invocations. The memo key (recorded-op content hash + general-pool
// parameters) is process-independent, and reuse re-verifies the full op
// sequence against the probing partition (MatchesOps), so a loaded state
// composes exactly like a freshly built run.
type PoolRunState struct {
	Ops          []int64                 `json:"ops"`
	GAfter       []int64                 `json:"g_after"`
	Counters     []simheap.LayerCounters `json:"counters"`
	Cycles       uint64                  `json:"cycles"`
	Failed       []bool                  `json:"failed,omitempty"`
	Failures     uint64                  `json:"failures,omitempty"`
	SkippedFrees uint64                  `json:"skipped_frees,omitempty"`
}

// State exports the run for persistence.
func (pr *PoolRun) State() PoolRunState {
	return PoolRunState{
		Ops:          pr.ops,
		GAfter:       pr.gAfter,
		Counters:     pr.counters,
		Cycles:       pr.cycles,
		Failed:       pr.failed,
		Failures:     pr.failures,
		SkippedFrees: pr.skippedFrees,
	}
}

// PoolRunFromState rebuilds a run from its serialized form. Shape errors
// (a truncated or hand-edited memo file) return nil rather than a run
// Compose could misuse.
func PoolRunFromState(st PoolRunState) *PoolRun {
	if len(st.GAfter) != len(st.Ops)+1 {
		return nil
	}
	if st.Failed != nil && len(st.Failed) > len(st.Ops) {
		return nil
	}
	return &PoolRun{
		ops:          st.Ops,
		gAfter:       st.GAfter,
		counters:     st.Counters,
		cycles:       st.Cycles,
		failed:       st.Failed,
		failures:     st.Failures,
		skippedFrees: st.SkippedFrees,
	}
}
