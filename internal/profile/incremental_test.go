package profile

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// easyportCompiled builds a scaled-down easyport trace: bursty 74/1500-byte
// packet traffic with enough churn to exercise fixed pools, fallback ops
// and coalescing in both the full and partial replay paths.
func easyportCompiled(t *testing.T, packets int) *trace.Compiled {
	t.Helper()
	p := workload.DefaultEasyportParams()
	p.Packets = packets
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// incrementalConfigs enumerates fixed-pool signatures crossed with
// general-pool policies: no fixed pools, a dedicated pool sharing the
// general layer (DRAM — the composed-peak case), a scratchpad pool
// (disjoint layers), and a two-pool mix, each against several general
// pool shapes including the buddy allocator.
func incrementalConfigs() []alloc.Config {
	dram74 := alloc.FixedConfig{
		SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: memhier.LayerDRAM,
		Order: alloc.LIFO, Links: alloc.SingleLink,
		Growth: alloc.GrowFixedChunk, ChunkSlots: 512,
	}
	sp74 := dram74
	sp74.Layer = memhier.LayerScratchpad
	sp74.MaxBytes = 48 * 1024
	mtu := alloc.FixedConfig{
		SlotBytes: 1500, MatchLo: 1300, MatchHi: 1500, Layer: memhier.LayerDRAM,
		Order: alloc.LIFO, Links: alloc.SingleLink,
		Growth: alloc.GrowFixedChunk, ChunkSlots: 128,
	}
	pools := [][]alloc.FixedConfig{
		nil,
		{dram74},
		{sp74},
		{sp74, mtu},
	}
	generals := []alloc.GeneralConfig{
		{Layer: memhier.LayerDRAM, Classes: "single", Fit: alloc.FirstFit,
			Order: alloc.LIFO, Links: alloc.SingleLink, Split: alloc.SplitAlways,
			Coalesce: alloc.CoalesceImmediate, Headers: alloc.HeaderBoundaryTag,
			Growth: alloc.GrowFixedChunk, ChunkBytes: 8 * 1024},
		{Layer: memhier.LayerDRAM, Classes: "single", Fit: alloc.BestFit,
			Order: alloc.AddrOrder, Links: alloc.DoubleLink, Split: alloc.SplitAlways,
			Coalesce: alloc.CoalesceNever, Headers: alloc.HeaderMinimal,
			Growth: alloc.GrowDouble, ChunkBytes: 8 * 1024},
		{Layer: memhier.LayerDRAM, Classes: "pow2:16:65536", RoundToClass: true,
			Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
			Split: alloc.SplitAlways, Coalesce: alloc.CoalesceImmediate,
			Headers: alloc.HeaderBoundaryTag, Growth: alloc.GrowFixedChunk,
			ChunkBytes: 64 * 1024},
		{Layer: memhier.LayerDRAM, Classes: "buddy:64:65536", Fit: alloc.FirstFit,
			Order: alloc.LIFO, Links: alloc.SingleLink, Split: alloc.SplitAlways,
			Coalesce: alloc.CoalesceImmediate, Headers: alloc.HeaderBoundaryTag,
			Growth: alloc.GrowFixedChunk, ChunkBytes: 8 * 1024},
	}
	var cfgs []alloc.Config
	for pi, fixed := range pools {
		for gi, gen := range generals {
			cfgs = append(cfgs, alloc.Config{
				Label:   fmt.Sprintf("pools%d/gen%d", pi, gi),
				Fixed:   fixed,
				General: gen,
			})
		}
	}
	return cfgs
}

// TestRunPartialMatchesFullReplay is the profile-level exactness check:
// for every configuration where the partial path accepts the replay, its
// metrics must be bit-identical to a full fast-path Run — including the
// float energy total.
func TestRunPartialMatchesFullReplay(t *testing.T) {
	ct := easyportCompiled(t, 400)
	h := memhier.EmbeddedSoC()
	rep := NewReplayer()

	partials, sharedLayerOK, scratchpadOK := 0, false, false
	parts := map[string]*Partition{}
	for _, cfg := range incrementalConfigs() {
		full, err := rep.Run(ct, cfg, h, Options{})
		if err != nil {
			t.Fatalf("%s: full replay: %v", cfg.Label, err)
		}
		sig := cfg.ID() // one partition per full config is fine for the test
		part := parts[sig]
		if part == nil {
			part, err = rep.Partition(ct, cfg, h)
			if err != nil {
				t.Fatalf("%s: partition: %v", cfg.Label, err)
			}
			parts[sig] = part
			if part.Ops() <= 0 || part.SkippedEvents() <= 0 {
				t.Fatalf("%s: degenerate partition: %d ops over %d events",
					cfg.Label, part.Ops(), part.Events())
			}
		}
		pm, ok := rep.RunPartial(ct, part, cfg, h)
		if !ok {
			// The partial path may bail (capacity interaction, pool
			// failures); the full replay must then show why.
			continue
		}
		partials++
		if len(cfg.Fixed) > 0 && cfg.Fixed[0].Layer == memhier.LayerDRAM {
			sharedLayerOK = true
		}
		for _, f := range cfg.Fixed {
			if f.Layer == memhier.LayerScratchpad {
				scratchpadOK = true
			}
		}
		if math.Float64bits(pm.EnergyNJ) != math.Float64bits(full.EnergyNJ) {
			t.Errorf("%s: energy %v != %v (bit mismatch)", cfg.Label, pm.EnergyNJ, full.EnergyNJ)
		}
		if !reflect.DeepEqual(pm, full) {
			t.Errorf("%s: partial metrics diverge:\n  partial %+v\n  full    %+v", cfg.Label, pm, full)
		}
	}
	if partials == 0 {
		t.Fatal("no configuration took the partial path")
	}
	if !sharedLayerOK {
		t.Error("no accepted partial replay with a fixed pool sharing the general layer")
	}
	if !scratchpadOK {
		t.Error("no accepted partial replay with a scratchpad fixed pool")
	}
	t.Logf("%d partial replays accepted across %d configurations", partials, len(incrementalConfigs()))
}

// TestPartialSharesPartitionAcrossNeighbours checks the intended usage:
// one Partition built for a fixed-pool signature serves every general-pool
// variation (the Hamming-1 neighbours along general axes) exactly.
func TestPartialSharesPartitionAcrossNeighbours(t *testing.T) {
	ct := easyportCompiled(t, 300)
	h := memhier.EmbeddedSoC()
	rep := NewReplayer()

	cfgs := incrementalConfigs()[4:8] // the dram74 signature, four general pools
	part, err := rep.Partition(ct, cfgs[0], h)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, cfg := range cfgs {
		full, err := rep.Run(ct, cfg, h, Options{})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label, err)
		}
		pm, ok := rep.RunPartial(ct, part, cfg, h)
		if !ok {
			continue
		}
		accepted++
		if !reflect.DeepEqual(pm, full) {
			t.Errorf("%s: shared-partition partial diverges from full replay", cfg.Label)
		}
	}
	if accepted == 0 {
		t.Fatal("shared partition accepted no neighbour")
	}
}

// TestReplayerResetReuse exercises the exported Reset path: a warmed
// Replayer reused across traces of different ID-space sizes must behave
// like a fresh one.
func TestReplayerResetReuse(t *testing.T) {
	big := easyportCompiled(t, 300)
	small := easyportCompiled(t, 50)
	cfg := incrementalConfigs()[0]
	h := memhier.EmbeddedSoC()

	warm := NewReplayer()
	if _, err := warm.Run(big, cfg, h, Options{}); err != nil {
		t.Fatal(err)
	}
	warm.Reset(small.NumIDs)
	got, err := warm.Run(small, cfg, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewReplayer().Run(small, cfg, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reused Replayer diverges:\n  got  %+v\n  want %+v", got, want)
	}
}
