package profile

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// easyportCompiled builds a scaled-down easyport trace: bursty 74/1500-byte
// packet traffic with enough churn to exercise fixed pools, fallback ops
// and coalescing in both the full and partial replay paths.
func easyportCompiled(t *testing.T, packets int) *trace.Compiled {
	t.Helper()
	p := workload.DefaultEasyportParams()
	p.Packets = packets
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// incrementalConfigs enumerates fixed-pool signatures crossed with
// general-pool policies: no fixed pools, a dedicated pool sharing the
// general layer (DRAM — the composed-peak case), a scratchpad pool
// (disjoint layers), and a two-pool mix, each against several general
// pool shapes including the buddy allocator.
func incrementalConfigs() []alloc.Config {
	dram74 := alloc.FixedConfig{
		SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: memhier.LayerDRAM,
		Order: alloc.LIFO, Links: alloc.SingleLink,
		Growth: alloc.GrowFixedChunk, ChunkSlots: 512,
	}
	sp74 := dram74
	sp74.Layer = memhier.LayerScratchpad
	sp74.MaxBytes = 48 * 1024
	mtu := alloc.FixedConfig{
		SlotBytes: 1500, MatchLo: 1300, MatchHi: 1500, Layer: memhier.LayerDRAM,
		Order: alloc.LIFO, Links: alloc.SingleLink,
		Growth: alloc.GrowFixedChunk, ChunkSlots: 128,
	}
	pools := [][]alloc.FixedConfig{
		nil,
		{dram74},
		{sp74},
		{sp74, mtu},
	}
	generals := []alloc.GeneralConfig{
		{Layer: memhier.LayerDRAM, Classes: "single", Fit: alloc.FirstFit,
			Order: alloc.LIFO, Links: alloc.SingleLink, Split: alloc.SplitAlways,
			Coalesce: alloc.CoalesceImmediate, Headers: alloc.HeaderBoundaryTag,
			Growth: alloc.GrowFixedChunk, ChunkBytes: 8 * 1024},
		{Layer: memhier.LayerDRAM, Classes: "single", Fit: alloc.BestFit,
			Order: alloc.AddrOrder, Links: alloc.DoubleLink, Split: alloc.SplitAlways,
			Coalesce: alloc.CoalesceNever, Headers: alloc.HeaderMinimal,
			Growth: alloc.GrowDouble, ChunkBytes: 8 * 1024},
		{Layer: memhier.LayerDRAM, Classes: "pow2:16:65536", RoundToClass: true,
			Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
			Split: alloc.SplitAlways, Coalesce: alloc.CoalesceImmediate,
			Headers: alloc.HeaderBoundaryTag, Growth: alloc.GrowFixedChunk,
			ChunkBytes: 64 * 1024},
		{Layer: memhier.LayerDRAM, Classes: "buddy:64:65536", Fit: alloc.FirstFit,
			Order: alloc.LIFO, Links: alloc.SingleLink, Split: alloc.SplitAlways,
			Coalesce: alloc.CoalesceImmediate, Headers: alloc.HeaderBoundaryTag,
			Growth: alloc.GrowFixedChunk, ChunkBytes: 8 * 1024},
	}
	var cfgs []alloc.Config
	for pi, fixed := range pools {
		for gi, gen := range generals {
			cfgs = append(cfgs, alloc.Config{
				Label:   fmt.Sprintf("pools%d/gen%d", pi, gi),
				Fixed:   fixed,
				General: gen,
			})
		}
	}
	return cfgs
}

// TestRunPartialMatchesFullReplay is the profile-level exactness check:
// for every configuration where the partial path accepts the replay, its
// metrics must be bit-identical to a full fast-path Run — including the
// float energy total.
func TestRunPartialMatchesFullReplay(t *testing.T) {
	ct := easyportCompiled(t, 400)
	h := memhier.EmbeddedSoC()
	rep := NewReplayer()

	partials, sharedLayerOK, scratchpadOK := 0, false, false
	parts := map[string]*Partition{}
	for _, cfg := range incrementalConfigs() {
		full, err := rep.Run(ct, cfg, h, Options{})
		if err != nil {
			t.Fatalf("%s: full replay: %v", cfg.Label, err)
		}
		sig := cfg.ID() // one partition per full config is fine for the test
		part := parts[sig]
		if part == nil {
			part, err = rep.Partition(ct, cfg, h)
			if err != nil {
				t.Fatalf("%s: partition: %v", cfg.Label, err)
			}
			parts[sig] = part
			if part.Ops() <= 0 || part.SkippedEvents() <= 0 {
				t.Fatalf("%s: degenerate partition: %d ops over %d events",
					cfg.Label, part.Ops(), part.Events())
			}
		}
		pm, ok := rep.RunPartial(ct, part, cfg, h)
		if !ok {
			// The partial path may bail (capacity interaction, pool
			// failures); the full replay must then show why.
			continue
		}
		partials++
		if len(cfg.Fixed) > 0 && cfg.Fixed[0].Layer == memhier.LayerDRAM {
			sharedLayerOK = true
		}
		for _, f := range cfg.Fixed {
			if f.Layer == memhier.LayerScratchpad {
				scratchpadOK = true
			}
		}
		if math.Float64bits(pm.EnergyNJ) != math.Float64bits(full.EnergyNJ) {
			t.Errorf("%s: energy %v != %v (bit mismatch)", cfg.Label, pm.EnergyNJ, full.EnergyNJ)
		}
		if !reflect.DeepEqual(pm, full) {
			t.Errorf("%s: partial metrics diverge:\n  partial %+v\n  full    %+v", cfg.Label, pm, full)
		}
	}
	if partials == 0 {
		t.Fatal("no configuration took the partial path")
	}
	if !sharedLayerOK {
		t.Error("no accepted partial replay with a fixed pool sharing the general layer")
	}
	if !scratchpadOK {
		t.Error("no accepted partial replay with a scratchpad fixed pool")
	}
	t.Logf("%d partial replays accepted across %d configurations", partials, len(incrementalConfigs()))
}

// TestPartialSharesPartitionAcrossNeighbours checks the intended usage:
// one Partition built for a fixed-pool signature serves every general-pool
// variation (the Hamming-1 neighbours along general axes) exactly.
func TestPartialSharesPartitionAcrossNeighbours(t *testing.T) {
	ct := easyportCompiled(t, 300)
	h := memhier.EmbeddedSoC()
	rep := NewReplayer()

	cfgs := incrementalConfigs()[4:8] // the dram74 signature, four general pools
	part, err := rep.Partition(ct, cfgs[0], h)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, cfg := range cfgs {
		full, err := rep.Run(ct, cfg, h, Options{})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label, err)
		}
		pm, ok := rep.RunPartial(ct, part, cfg, h)
		if !ok {
			continue
		}
		accepted++
		if !reflect.DeepEqual(pm, full) {
			t.Errorf("%s: shared-partition partial diverges from full replay", cfg.Label)
		}
	}
	if accepted == 0 {
		t.Fatal("shared partition accepted no neighbour")
	}
}

// oomFixedTrace mixes dedicated-pool traffic (74-byte packet records)
// with general-pool allocations whose big outlier overflows a
// budget-capped general pool — the failure-replay fixture.
func oomFixedTrace(t *testing.T) *trace.Compiled {
	t.Helper()
	b := trace.NewBuilder("oomfixed")
	var pkts []uint64
	for i := 0; i < 8; i++ {
		p := b.Alloc(74)
		b.Access(p, 4, 2)
		pkts = append(pkts, p)
	}
	small := b.Alloc(512)
	b.Access(small, 8, 4)
	big := b.Alloc(8 * 1024) // exceeds the capped general pool below
	b.Access(big, 16, 16)    // accesses to the failed allocation: skipped
	b.Tick(50)
	b.Free(big) // free of the failed allocation: skipped
	mid := b.Alloc(1024)
	b.Access(mid, 4, 4)
	b.Free(small)
	for _, p := range pkts {
		b.Free(p)
	}
	b.FreeAll()
	ct, err := trace.Compile(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// cappedGeneral caps the general pool so oomFixedTrace's 8 KB allocation
// fails with alloc.ErrOutOfMemory.
func cappedGeneral() alloc.GeneralConfig {
	gen := alloc.SimpleFirstFitConfig(memhier.LayerDRAM).General
	gen.ChunkBytes = 2 * 1024
	gen.MaxBytes = 4 * 1024
	return gen
}

// TestRunPartialFailureReplay pins the failure-replay extension: with a
// scratchpad fixed pool (no fixed pool on the general layer), a
// capacity-failing run must be served by the partial path bit-identically
// to a full replay — failures, skipped frees and skipped accesses
// included.
func TestRunPartialFailureReplay(t *testing.T) {
	ct := oomFixedTrace(t)
	h := memhier.EmbeddedSoC()
	rep := NewReplayer()
	cfg := alloc.Config{
		Label: "oom/sp74",
		Fixed: []alloc.FixedConfig{{
			SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: memhier.LayerScratchpad,
			Order: alloc.LIFO, Links: alloc.SingleLink,
			Growth: alloc.GrowFixedChunk, ChunkSlots: 16, MaxBytes: 4 * 1024,
		}},
		General: cappedGeneral(),
	}

	full, err := rep.Run(ct, cfg, h, Options{})
	if err != nil {
		t.Fatalf("full replay: %v", err)
	}
	if full.Failures == 0 {
		t.Fatal("fixture did not trigger an allocation failure")
	}
	part, err := rep.Partition(ct, cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	if part.SharesGeneralLayer() {
		t.Fatal("scratchpad fixed pool reported as sharing the general layer")
	}
	run, ok := rep.PoolReplay(part, cfg, h)
	if !ok {
		t.Fatal("PoolReplay declined a budget-capped general pool")
	}
	if run.Failures() != full.Failures {
		t.Fatalf("standalone replay recorded %d failures, full replay %d",
			run.Failures(), full.Failures)
	}
	pm, ok := rep.RunPartial(ct, part, cfg, h)
	if !ok {
		t.Fatal("partial path declined a failure-replayable run")
	}
	if math.Float64bits(pm.EnergyNJ) != math.Float64bits(full.EnergyNJ) {
		t.Errorf("energy bits diverge: %v vs %v", pm.EnergyNJ, full.EnergyNJ)
	}
	if !reflect.DeepEqual(pm, full) {
		t.Errorf("failure replay diverges from full replay:\n  partial %+v\n  full    %+v", pm, full)
	}
}

// TestRunPartialFailureDeclinesSharedLayer guards the exactness boundary:
// when a fixed pool reserves from the general layer, a failing run's
// failure points depend on fixed-side occupancy the standalone pool
// cannot see, so the partial path must decline.
func TestRunPartialFailureDeclinesSharedLayer(t *testing.T) {
	ct := oomFixedTrace(t)
	h := memhier.EmbeddedSoC()
	rep := NewReplayer()
	cfg := alloc.Config{
		Label: "oom/d74",
		Fixed: []alloc.FixedConfig{{
			SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: memhier.LayerDRAM,
			Order: alloc.LIFO, Links: alloc.SingleLink,
			Growth: alloc.GrowFixedChunk, ChunkSlots: 16,
		}},
		General: cappedGeneral(),
	}
	part, err := rep.Partition(ct, cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	if !part.SharesGeneralLayer() {
		t.Fatal("DRAM fixed pool not flagged as sharing the general layer")
	}
	run, ok := rep.PoolReplay(part, cfg, h)
	if !ok || run.Failures() == 0 {
		t.Fatalf("standalone replay should record failures (ok=%v)", ok)
	}
	if _, ok := rep.Compose(ct, part, run, cfg, h); ok {
		t.Fatal("Compose accepted a failing run with a fixed pool on the general layer")
	}
	if _, ok := rep.RunPartial(ct, part, cfg, h); ok {
		t.Fatal("RunPartial accepted a failing run with a fixed pool on the general layer")
	}
}

// TestPoolRunComposesAcrossPartitions is the memo-sharing property: two
// fixed-pool signatures that route requests identically record
// content-identical fallback sequences, so a PoolRun replayed under one
// partition composes exactly with the other — the mechanism that turns a
// decomposable multi-axis delta (fixed axis × general axis) into a
// no-simulation composition.
func TestPoolRunComposesAcrossPartitions(t *testing.T) {
	ct := easyportCompiled(t, 300)
	h := memhier.EmbeddedSoC()
	rep := NewReplayer()

	pool := func(order alloc.ListOrder) []alloc.FixedConfig {
		return []alloc.FixedConfig{{
			SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: memhier.LayerDRAM,
			Order: order, Links: alloc.SingleLink,
			Growth: alloc.GrowFixedChunk, ChunkSlots: 512,
		}}
	}
	gen := incrementalConfigs()[0].General
	cfgA := alloc.Config{Label: "lifo74", Fixed: pool(alloc.LIFO), General: gen}
	cfgB := alloc.Config{Label: "fifo74", Fixed: pool(alloc.FIFO), General: gen}

	partA, err := rep.Partition(ct, cfgA, h)
	if err != nil {
		t.Fatal(err)
	}
	partB, err := rep.Partition(ct, cfgB, h)
	if err != nil {
		t.Fatal(err)
	}
	// Routing is a pure function of the match ranges, so the recorded
	// sequences must agree — the premise of cross-partition memo sharing.
	if partA.OpsHash() != partB.OpsHash() {
		t.Fatalf("routing-identical signatures hash differently: %016x vs %016x",
			partA.OpsHash(), partB.OpsHash())
	}
	runA, ok := rep.PoolReplay(partA, cfgA, h)
	if !ok {
		t.Fatal("PoolReplay declined")
	}
	if !runA.MatchesOps(partB) {
		t.Fatal("run recorded under signature A does not match signature B's ops")
	}
	full, err := rep.Run(ct, cfgB, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rep.Compose(ct, partB, runA, cfgB, h)
	if !ok {
		t.Fatal("cross-partition Compose declined")
	}
	if math.Float64bits(got.EnergyNJ) != math.Float64bits(full.EnergyNJ) {
		t.Errorf("energy bits diverge: %v vs %v", got.EnergyNJ, full.EnergyNJ)
	}
	if !reflect.DeepEqual(got, full) {
		t.Errorf("cross-partition composition diverges:\n  composed %+v\n  full     %+v", got, full)
	}
}

// TestReplayerResetReuse exercises the exported Reset path: a warmed
// Replayer reused across traces of different ID-space sizes must behave
// like a fresh one.
func TestReplayerResetReuse(t *testing.T) {
	big := easyportCompiled(t, 300)
	small := easyportCompiled(t, 50)
	cfg := incrementalConfigs()[0]
	h := memhier.EmbeddedSoC()

	warm := NewReplayer()
	if _, err := warm.Run(big, cfg, h, Options{}); err != nil {
		t.Fatal(err)
	}
	warm.Reset(small.NumIDs)
	got, err := warm.Run(small, cfg, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewReplayer().Run(small, cfg, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reused Replayer diverges:\n  got  %+v\n  want %+v", got, want)
	}
}
