package profile

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/telemetry/span"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// referenceRun is the pre-compilation replay loop, kept verbatim as the
// behavioural oracle: sparse-ID maps for pointers and requested sizes,
// and footprint samples recomputed by summing every layer's reserved
// bytes. The compiled Replayer must produce byte-identical Metrics.
func referenceRun(tr *trace.Trace, cfg alloc.Config, h *memhier.Hierarchy, opts Options) (*Metrics, error) {
	ctx := simheap.NewContext(h)
	lw, err := applyOptions(ctx, h, opts)
	if err != nil {
		return nil, err
	}
	a, err := cfg.Build(ctx)
	if err != nil {
		return nil, fmt.Errorf("profile: building %s: %w", cfg.ID(), err)
	}
	m := &Metrics{
		ConfigID:    cfg.ID(),
		ConfigLabel: cfg.Label,
		Workload:    tr.Name,
	}

	ptrs := make(map[uint64]alloc.Ptr)
	reqSize := make(map[uint64]int64)
	var liveRequested, peakRequested int64

	sample := func(i int) {
		m.Series = append(m.Series, FootprintSample{
			Event:          i,
			ReservedBytes:  sumReserved(ctx, h),
			RequestedBytes: liveRequested,
		})
	}
	for i, e := range tr.Events {
		if opts.SampleEvery > 0 && i%opts.SampleEvery == 0 {
			sample(i)
		}
		switch e.Kind {
		case trace.KindAlloc:
			liveRequested += e.Size
			reqSize[e.ID] = e.Size
			if liveRequested > peakRequested {
				peakRequested = liveRequested
			}
			ptr, err := a.Malloc(e.Size)
			if err != nil {
				if errors.Is(err, alloc.ErrOutOfMemory) {
					m.Failures++
					continue
				}
				return nil, fmt.Errorf("profile: event %d: %w", i, err)
			}
			m.Mallocs++
			ptrs[e.ID] = ptr
		case trace.KindFree:
			liveRequested -= reqSize[e.ID]
			delete(reqSize, e.ID)
			ptr, ok := ptrs[e.ID]
			if !ok {
				continue
			}
			if err := a.Free(ptr); err != nil {
				return nil, fmt.Errorf("profile: event %d: %w", i, err)
			}
			m.Frees++
			delete(ptrs, e.ID)
		case trace.KindAccess:
			ptr, ok := ptrs[e.ID]
			if !ok {
				continue
			}
			if e.Reads > 0 {
				ctx.Read(ptr.Layer, ptr.Addr, e.Reads)
			}
			if e.Writes > 0 {
				ctx.Write(ptr.Layer, ptr.Addr, e.Writes)
			}
		case trace.KindTick:
			ctx.Compute(e.Cycles)
		default:
			return nil, fmt.Errorf("profile: event %d: unknown kind %d", i, e.Kind)
		}
	}
	if opts.SampleEvery > 0 {
		sample(len(tr.Events))
	}
	if lw != nil {
		if err := lw.Flush(); err != nil {
			return nil, fmt.Errorf("profile: flushing log: %w", err)
		}
	}
	for i := 0; i < h.NumLayers(); i++ {
		c := ctx.Counters(memhier.LayerID(i))
		m.PerLayer = append(m.PerLayer, LayerMetrics{
			Name:      h.Layer(memhier.LayerID(i)).Name,
			Reads:     c.Reads,
			Writes:    c.Writes,
			PeakBytes: c.PeakBytes,
		})
	}
	m.Accesses = ctx.TotalAccesses()
	m.FootprintBytes = ctx.TotalPeakBytes()
	m.EnergyNJ = ctx.Energy()
	m.Cycles = ctx.Cycles()
	m.PeakRequestedBytes = peakRequested
	return m, nil
}

// sumReserved recomputes the instantaneous footprint the slow way,
// layer by layer — what sampling did before the context kept a running
// total.
func sumReserved(ctx *simheap.Context, h *memhier.Hierarchy) int64 {
	var total int64
	for i := 0; i < h.NumLayers(); i++ {
		total += ctx.Counters(memhier.LayerID(i)).ReservedBytes
	}
	return total
}

// presetConfigs are the three preset allocators the equivalence tests
// sweep.
func presetConfigs() []alloc.Config {
	return []alloc.Config{
		alloc.KingsleyConfig(memhier.LayerDRAM),
		alloc.LeaConfig(memhier.LayerDRAM),
		alloc.SimpleFirstFitConfig(memhier.LayerDRAM),
	}
}

// checkEquivalence replays tr through the reference loop and the compiled
// Replayer under every preset and requires identical Metrics.
func checkEquivalence(t *testing.T, tr *trace.Trace, opts Options) {
	t.Helper()
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	for _, cfg := range presetConfigs() {
		want, err := referenceRun(tr, cfg, h, opts)
		if err != nil {
			t.Fatalf("%s: reference: %v", cfg.Label, err)
		}
		got, err := NewReplayer().Run(ct, cfg, h, opts)
		if err != nil {
			t.Fatalf("%s: replayer: %v", cfg.Label, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: compiled replay diverges from reference\nwant %+v\ngot  %+v", cfg.Label, want, got)
		}
	}
}

func TestReplayerMatchesReferenceEasyport(t *testing.T) {
	p := workload.DefaultEasyportParams()
	p.Packets = 800
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, tr, Options{SampleEvery: 200})
}

func TestReplayerMatchesReferenceVTC(t *testing.T) {
	tr, err := workload.DefaultVTCParams().Generate()
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, tr, Options{SampleEvery: 500})
}

// oomTrace builds a synthetic trace whose large allocation overflows a
// budget-capped pool: the replay must survive the failed allocation, the
// accesses to it and its free.
func oomTrace() *trace.Trace {
	b := trace.NewBuilder("oomtest")
	small := b.Alloc(512)
	b.Access(small, 8, 4)
	big := b.Alloc(8 * 1024) // exceeds the pool budget below
	b.Access(big, 16, 16)    // access to a failed allocation: skipped
	b.Tick(50)
	b.Free(big) // free of a failed allocation: skipped
	mid := b.Alloc(1024)
	b.Access(mid, 4, 4)
	b.Free(small)
	b.FreeAll()
	return b.Build()
}

// oomConfig caps the general pool so oomTrace's big allocation fails.
func oomConfig() alloc.Config {
	cfg := alloc.SimpleFirstFitConfig(memhier.LayerDRAM)
	cfg.General.ChunkBytes = 2 * 1024
	cfg.General.MaxBytes = 4 * 1024
	return cfg
}

func TestReplayerMatchesReferenceOOM(t *testing.T) {
	tr := oomTrace()
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	cfg := oomConfig()
	opts := Options{SampleEvery: 2}
	want, err := referenceRun(tr, cfg, h, opts)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if want.Failures == 0 {
		t.Fatal("oom trace did not trigger an allocation failure")
	}
	got, err := NewReplayer().Run(ct, cfg, h, opts)
	if err != nil {
		t.Fatalf("replayer: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("compiled replay diverges on failed allocations\nwant %+v\ngot  %+v", want, got)
	}
}

// TestSeriesMatchesPerLayerRecompute pins the sampling optimisation: the
// Series values produced from the context's running reserved-bytes total
// must equal a per-layer recomputation at every sample point.
func TestSeriesMatchesPerLayerRecompute(t *testing.T) {
	p := workload.DefaultSyntheticParams()
	p.Ops = 2000
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	cfg := alloc.LeaConfig(memhier.LayerDRAM)
	opts := Options{SampleEvery: 50}
	want, err := referenceRun(tr, cfg, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewReplayer().Run(ct, cfg, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) == 0 {
		t.Fatal("no samples collected")
	}
	if !reflect.DeepEqual(want.Series, got.Series) {
		t.Errorf("series diverges\nwant %+v\ngot  %+v", want.Series, got.Series)
	}
}

// TestReplaySteadyStateZeroAllocs is the hot-path guard: once the
// allocator and the Replayer's scratch tables are warm, replaying a
// compiled trace performs no Go heap allocations at all. The trace ends
// with FreeAll, so the same allocator instance can replay it repeatedly.
func TestReplaySteadyStateZeroAllocs(t *testing.T) {
	p := workload.DefaultEasyportParams()
	p.Packets = 200
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	for _, cfg := range presetConfigs() {
		ctx := simheap.NewContext(h)
		a, err := cfg.Build(ctx)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label, err)
		}
		r := NewReplayer()
		// Warm pass: arenas grow, maps and scratch tables size themselves.
		r.reset(ct.NumIDs)
		var warm Metrics
		if err := r.replay(ct, a, ctx, &warm, 0, nil); err != nil {
			t.Fatalf("%s: warm replay: %v", cfg.Label, err)
		}
		avg := testing.AllocsPerRun(5, func() {
			r.reset(ct.NumIDs)
			var m Metrics
			if err := r.replay(ct, a, ctx, &m, 0, nil); err != nil {
				t.Errorf("%s: replay: %v", cfg.Label, err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: steady-state replay allocates %.1f times per run, want 0", cfg.Label, avg)
		}
	}
}

// TestReplayTelemetryZeroAllocs extends the hot-path guard to the
// instrumented path: a Replayer with a telemetry shard attached — the
// exact shape core.Runner workers use — must still replay a warm
// compiled trace with zero heap allocations, ObserveSim included.
func TestReplayTelemetryZeroAllocs(t *testing.T) {
	p := workload.DefaultEasyportParams()
	p.Packets = 200
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	col := telemetry.NewCollector(1)
	for _, cfg := range presetConfigs() {
		ctx := simheap.NewContext(h)
		a, err := cfg.Build(ctx)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label, err)
		}
		r := NewReplayer()
		r.Shard = col.Shard(0)
		r.reset(ct.NumIDs)
		var warm Metrics
		if err := r.replay(ct, a, ctx, &warm, 0, nil); err != nil {
			t.Fatalf("%s: warm replay: %v", cfg.Label, err)
		}
		avg := testing.AllocsPerRun(5, func() {
			start := time.Now()
			r.reset(ct.NumIDs)
			var m Metrics
			if err := r.replay(ct, a, ctx, &m, 0, nil); err != nil {
				t.Errorf("%s: replay: %v", cfg.Label, err)
			}
			r.Shard.ObserveSim(time.Since(start), ct.Len())
		})
		if avg != 0 {
			t.Errorf("%s: instrumented replay allocates %.1f times per run, want 0", cfg.Label, avg)
		}
	}
	if s := col.Snapshot(); s.Sims == 0 || s.Events == 0 {
		t.Fatalf("telemetry recorded nothing: %+v", s)
	}
}

// TestReplaySpansZeroAllocs proves the flight recorder preserves the
// replay hot path's zero-allocation guarantee: a full Run with both a
// telemetry shard and a span ring attached performs no heap allocations
// in steady state beyond the Metrics result itself — so the per-event
// loop and the span Record stay allocation-free.
func TestReplaySpansZeroAllocs(t *testing.T) {
	p := workload.DefaultEasyportParams()
	p.Packets = 200
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	h := memhier.EmbeddedSoC()
	col := telemetry.NewCollector(1)
	rec := span.NewRecorder(1, 1024)
	for _, cfg := range presetConfigs() {
		ctx := simheap.NewContext(h)
		a, err := cfg.Build(ctx)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label, err)
		}
		r := NewReplayer()
		r.Shard = col.Shard(0)
		r.Spans = rec.Ring(0)
		r.reset(ct.NumIDs)
		var warm Metrics
		if err := r.replay(ct, a, ctx, &warm, 0, nil); err != nil {
			t.Fatalf("%s: warm replay: %v", cfg.Label, err)
		}
		avg := testing.AllocsPerRun(5, func() {
			start := time.Now()
			r.reset(ct.NumIDs)
			var m Metrics
			if err := r.replay(ct, a, ctx, &m, 0, nil); err != nil {
				t.Errorf("%s: replay: %v", cfg.Label, err)
			}
			r.Shard.ObserveSim(time.Since(start), ct.Len())
			r.Spans.Since(span.StageFullSim, start, int64(ct.Len()))
		})
		if avg != 0 {
			t.Errorf("%s: span-instrumented replay allocates %.1f times per run, want 0", cfg.Label, avg)
		}
	}
	if n := rec.Ring(0).Len(); n == 0 {
		t.Fatal("span ring recorded nothing")
	}
	if snap := rec.Snapshot(); snap[span.StageFullSim].Count == 0 {
		t.Fatalf("full-sim stage empty: %+v", snap)
	}
}
