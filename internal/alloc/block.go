package alloc

import (
	"fmt"

	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
)

// Block is the simulator's view of one heap block: a contiguous byte run
// inside an arena, either free (on a free list, links stored in its first
// payload words on the target) or allocated. size includes the metadata
// overhead (header word, plus footer word under boundary tags).
//
// Blocks form a doubly-linked adjacency chain per arena (prevAdj/nextAdj)
// mirroring physical contiguity; splitting and coalescing splice it. The
// chain itself is simulator bookkeeping — the target finds neighbours
// arithmetically (next = addr+size) or via boundary tags, and the access
// charges in generalpool.go model those target-side reads, not this chain.
type Block struct {
	addr uint64 // address of the block start (header word)
	size int64  // total bytes including overhead
	free bool

	prevAdj, nextAdj *Block // physical neighbours within the arena

	flPrev, flNext *Block // free-list links (simulator side)
	list           *FreeList

	arena *arena
}

// Addr returns the block's start address.
func (b *Block) Addr() uint64 { return b.addr }

// Size returns the block's total size in bytes.
func (b *Block) Size() int64 { return b.size }

// Free reports whether the block is on a free list.
func (b *Block) Free() bool { return b.free }

// End returns the first address past the block.
func (b *Block) End() uint64 { return b.addr + uint64(b.size) }

func (b *Block) String() string {
	state := "alloc"
	if b.free {
		state = "free"
	}
	return fmt.Sprintf("block[%#x +%d %s]", b.addr, b.size, state)
}

// arena is one region reserved from a layer, carved into blocks.
type arena struct {
	region *simheap.Region
	first  *Block // head of the adjacency chain
}

// newArena reserves size bytes from the layer and returns the arena with
// a single free-spanning block.
func newArena(ctx *simheap.Context, layer memhier.LayerID, size int64) (*arena, *Block, error) {
	region, err := ctx.Reserve(layer, size)
	if err != nil {
		return nil, nil, err
	}
	a := &arena{region: region}
	b := &Block{addr: region.Base(), size: size, free: true, arena: a}
	a.first = b
	return a, b, nil
}

// splitBlock carves the trailing part of b into a new block of size
// remainder and returns it. The caller charges the header writes; this
// only updates simulator bookkeeping. b must be at least remainder+1
// bytes large. reuse, when non-nil, is recycled as the remainder's Block
// object so steady-state split/merge churn performs no Go allocations.
func splitBlock(b *Block, keep int64, reuse *Block) *Block {
	if keep <= 0 || keep >= b.size {
		panic(fmt.Sprintf("alloc: bad split keep=%d of %v", keep, b))
	}
	rest := reuse
	if rest == nil {
		rest = &Block{}
	}
	*rest = Block{
		addr:  b.addr + uint64(keep),
		size:  b.size - keep,
		free:  true,
		arena: b.arena,
	}
	b.size = keep
	rest.prevAdj = b
	rest.nextAdj = b.nextAdj
	if b.nextAdj != nil {
		b.nextAdj.prevAdj = rest
	}
	b.nextAdj = rest
	return rest
}

// mergeWithNext absorbs b's physical successor into b and returns the
// absorbed Block object so the caller can recycle it. The successor must
// be free and not on any list.
func mergeWithNext(b *Block) *Block {
	n := b.nextAdj
	if n == nil || !n.free || n.list != nil {
		panic(fmt.Sprintf("alloc: bad merge of %v with %v", b, n))
	}
	b.size += n.size
	b.nextAdj = n.nextAdj
	if n.nextAdj != nil {
		n.nextAdj.prevAdj = b
	}
	n.prevAdj, n.nextAdj = nil, nil
	return n
}
