package alloc

import (
	"fmt"
	"math/bits"

	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
)

// BuddyPoolParams configures a binary-buddy pool — the classic
// power-of-two splitting allocator (Knowlton 1965; surveyed in Wilson et
// al. 1995, the paper's reference [2]). Requests round up to the next
// power of two; blocks split recursively in halves and merge with their
// buddy on free. O(log n) worst case with very cheap buddy location
// (address arithmetic), at the price of power-of-two internal
// fragmentation.
type BuddyPoolParams struct {
	Layer memhier.LayerID

	MinBlock int64 // smallest block size (power of two, >= one word + header)
	MaxBlock int64 // largest block size == arena size per growth (power of two)

	MaxBytes int64 // cap on total arena bytes; 0 = unlimited
}

// Validate reports configuration errors.
func (p BuddyPoolParams) Validate() error {
	if p.MinBlock <= 0 || p.MinBlock&(p.MinBlock-1) != 0 {
		return fmt.Errorf("alloc: buddy min block %d not a positive power of two", p.MinBlock)
	}
	if p.MaxBlock < p.MinBlock || p.MaxBlock&(p.MaxBlock-1) != 0 {
		return fmt.Errorf("alloc: buddy max block %d invalid", p.MaxBlock)
	}
	if p.MinBlock < 2*simheap.WordSize {
		return fmt.Errorf("alloc: buddy min block %d below header+payload minimum", p.MinBlock)
	}
	if p.MaxBytes < 0 {
		return fmt.Errorf("alloc: negative buddy cap")
	}
	return nil
}

// buddyBlock is one block in the buddy system.
type buddyBlock struct {
	addr  uint64
	order int // size = MinBlock << order
	free  bool

	flNext, flPrev *buddyBlock // free-list links within its order
}

// BuddyPool implements the binary-buddy system on the simulated heap.
// Free lists are one LIFO per order; the per-block header word stores
// order and status (read/written like any other block header).
type BuddyPool struct {
	params BuddyPoolParams
	ctx    *simheap.Context

	meta   *simheap.Region
	orders int

	heads  []*buddyBlock          // free list head per order (Go side)
	blocks map[uint64]*buddyBlock // all blocks by address

	arenas     []*simheap.Region
	arenaBytes int64

	live map[uint64]*buddyBlock // payload addr -> block
}

// NewBuddyPool reserves the order-vector metadata and returns the pool.
func NewBuddyPool(ctx *simheap.Context, params BuddyPoolParams) (*BuddyPool, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	orders := bits.TrailingZeros64(uint64(params.MaxBlock)) -
		bits.TrailingZeros64(uint64(params.MinBlock)) + 1
	meta, err := ctx.Reserve(params.Layer, int64(orders)*simheap.WordSize)
	if err != nil {
		return nil, fmt.Errorf("alloc: reserving buddy metadata: %w", err)
	}
	return &BuddyPool{
		params: params,
		ctx:    ctx,
		meta:   meta,
		orders: orders,
		heads:  make([]*buddyBlock, orders),
		blocks: make(map[uint64]*buddyBlock),
		live:   make(map[uint64]*buddyBlock),
	}, nil
}

// Layer returns the pool's hierarchy layer.
func (p *BuddyPool) Layer() memhier.LayerID { return p.params.Layer }

func (p *BuddyPool) blockSize(order int) int64 { return p.params.MinBlock << uint(order) }

// orderFor returns the smallest order whose block holds payload+header,
// or -1 when the request exceeds MaxBlock.
func (p *BuddyPool) orderFor(payload int64) int {
	need := payload + simheap.WordSize // header word
	for o := 0; o < p.orders; o++ {
		if p.blockSize(o) >= need {
			return o
		}
	}
	return -1
}

func (p *BuddyPool) headAddr(order int) uint64 {
	return p.meta.Base() + uint64(order)*simheap.WordSize
}

// push/pop maintain the per-order LIFO lists with charging.
func (p *BuddyPool) push(b *buddyBlock) {
	p.ctx.Read(p.params.Layer, p.headAddr(b.order), 1)
	p.ctx.Write(p.params.Layer, b.addr, 1) // link word in block
	p.ctx.Write(p.params.Layer, p.headAddr(b.order), 1)
	b.flNext = p.heads[b.order]
	b.flPrev = nil
	if b.flNext != nil {
		b.flNext.flPrev = b
	}
	p.heads[b.order] = b
	b.free = true
}

func (p *BuddyPool) pop(order int) *buddyBlock {
	p.ctx.Read(p.params.Layer, p.headAddr(order), 1)
	b := p.heads[order]
	if b == nil {
		return nil
	}
	p.ctx.Read(p.params.Layer, b.addr, 1)             // next link
	p.ctx.Write(p.params.Layer, p.headAddr(order), 1) // new head
	p.unlink(b)
	return b
}

// unlinkCharged removes a specific block (buddy removal is O(1): the
// buddy's links are read and its neighbours rewritten).
func (p *BuddyPool) unlinkCharged(b *buddyBlock) {
	p.ctx.Read(p.params.Layer, b.addr, 2)
	if b.flPrev == nil {
		p.ctx.Write(p.params.Layer, p.headAddr(b.order), 1)
	} else {
		p.ctx.Write(p.params.Layer, b.flPrev.addr, 1)
	}
	if b.flNext != nil {
		p.ctx.Write(p.params.Layer, b.flNext.addr, 1)
	}
	p.unlink(b)
}

func (p *BuddyPool) unlink(b *buddyBlock) {
	if b.flPrev == nil {
		p.heads[b.order] = b.flNext
	} else {
		b.flPrev.flNext = b.flNext
	}
	if b.flNext != nil {
		b.flNext.flPrev = b.flPrev
	}
	b.flNext, b.flPrev = nil, nil
	b.free = false
}

// Malloc allocates payload bytes, returning the payload pointer and the
// block size consumed.
func (p *BuddyPool) Malloc(size int64) (Ptr, int64, error) {
	if err := checkSize(size); err != nil {
		return Ptr{}, 0, err
	}
	order := p.orderFor(size)
	if order < 0 {
		return Ptr{}, 0, fmt.Errorf("%w: %d exceeds buddy max block", ErrBadSize, size)
	}
	p.ctx.Compute(2) // order computation (clz)

	// Find the smallest non-empty order >= requested.
	from := -1
	for o := order; o < p.orders; o++ {
		p.ctx.Read(p.params.Layer, p.headAddr(o), 1)
		if p.heads[o] != nil {
			from = o
			break
		}
	}
	var b *buddyBlock
	if from < 0 {
		var err error
		b, err = p.grow()
		if err != nil {
			return Ptr{}, 0, err
		}
	} else {
		b = p.pop(from)
	}

	// Split down to the requested order; each split writes the new
	// buddy's header and pushes it.
	for b.order > order {
		b.order--
		buddy := &buddyBlock{addr: b.addr + uint64(p.blockSize(b.order)), order: b.order}
		p.blocks[buddy.addr] = buddy
		p.ctx.Write(p.params.Layer, buddy.addr, 1) // buddy header
		p.push(buddy)
	}
	b.free = false
	p.ctx.Write(p.params.Layer, b.addr, 1) // allocated header
	payloadAddr := b.addr + simheap.WordSize
	p.live[payloadAddr] = b
	return Ptr{Layer: p.params.Layer, Addr: payloadAddr}, p.blockSize(b.order), nil
}

// grow reserves one MaxBlock-sized arena and returns its spanning block.
func (p *BuddyPool) grow() (*buddyBlock, error) {
	size := p.params.MaxBlock
	if p.params.MaxBytes > 0 && p.arenaBytes+size > p.params.MaxBytes {
		return nil, fmt.Errorf("%w: buddy budget exhausted", ErrOutOfMemory)
	}
	region, err := p.ctx.Reserve(p.params.Layer, size)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrOutOfMemory, err)
	}
	p.arenas = append(p.arenas, region)
	p.arenaBytes += size
	b := &buddyBlock{addr: region.Base(), order: p.orders - 1}
	p.blocks[b.addr] = b
	p.ctx.Write(p.params.Layer, b.addr, 1)
	return b, nil
}

// Free releases the allocation at payload address addr, merging with the
// buddy chain as far as possible.
func (p *BuddyPool) Free(addr uint64) (int64, error) {
	b, ok := p.live[addr]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	delete(p.live, addr)
	p.ctx.Read(p.params.Layer, b.addr, 1) // header: order/status
	released := p.blockSize(b.order)

	// Merge upward while the buddy is free and of the same order.
	for b.order < p.orders-1 {
		buddyAddr := p.buddyAddr(b)
		buddy, ok := p.blocks[buddyAddr]
		// The buddy header read is how the target checks mergeability.
		p.ctx.Read(p.params.Layer, buddyAddr, 1)
		if !ok || !buddy.free || buddy.order != b.order {
			break
		}
		p.unlinkCharged(buddy)
		// The merged block starts at the lower of the two addresses.
		if buddy.addr < b.addr {
			delete(p.blocks, b.addr)
			b = buddy
		} else {
			delete(p.blocks, buddy.addr)
		}
		b.order++
		p.ctx.Write(p.params.Layer, b.addr, 1) // merged header
	}
	p.push(b)
	return released, nil
}

// buddyAddr computes the sibling address by XOR on the arena-relative
// offset — the constant-time trick that defines the buddy system.
func (p *BuddyPool) buddyAddr(b *buddyBlock) uint64 {
	base := p.arenaBase(b.addr)
	off := b.addr - base
	return base + (off ^ uint64(p.blockSize(b.order)))
}

func (p *BuddyPool) arenaBase(addr uint64) uint64 {
	for _, a := range p.arenas {
		if a.Contains(addr) {
			return a.Base()
		}
	}
	panic(fmt.Sprintf("alloc: address %#x outside buddy arenas", addr))
}

// Owns reports whether addr is a live allocation of this pool.
func (p *BuddyPool) Owns(addr uint64) bool {
	_, ok := p.live[addr]
	return ok
}

// LiveBlocks returns the number of live allocations.
func (p *BuddyPool) LiveBlocks() int { return len(p.live) }

// ArenaBytes returns the total reserved arena bytes.
func (p *BuddyPool) ArenaBytes() int64 { return p.arenaBytes }

// FreeBlocksByOrder returns the free-list length per order (simulator
// introspection).
func (p *BuddyPool) FreeBlocksByOrder() []int {
	out := make([]int, p.orders)
	for o := 0; o < p.orders; o++ {
		for b := p.heads[o]; b != nil; b = b.flNext {
			out[o]++
		}
	}
	return out
}

// checkInvariants verifies buddy-system consistency: blocks tile each
// arena exactly, free blocks are on the list of their order, and no two
// free buddies coexist unmerged... except transiently never — after any
// Free the structure must be fully merged.
func (p *BuddyPool) checkInvariants() error {
	for i, a := range p.arenas {
		var covered int64
		addr := a.Base()
		for covered < a.Size() {
			b, ok := p.blocks[addr]
			if !ok {
				return fmt.Errorf("buddy arena %d: no block at %#x", i, addr)
			}
			size := p.blockSize(b.order)
			covered += size
			addr += uint64(size)
			if b.free {
				buddy := p.blocks[p.buddyAddr(b)]
				if buddy != nil && buddy.free && buddy.order == b.order && b.order < p.orders-1 {
					return fmt.Errorf("buddy arena %d: unmerged free buddies at %#x", i, b.addr)
				}
			}
		}
		if covered != a.Size() {
			return fmt.Errorf("buddy arena %d: blocks cover %d of %d bytes", i, covered, a.Size())
		}
	}
	return nil
}
