package alloc

import (
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
	"dmexplore/internal/stats"
)

// Micro-benchmarks: simulator throughput of the allocator building
// blocks. These measure how fast dmexplore explores (simulated ops/sec),
// not target-hardware performance.

func benchCtx(b *testing.B) *simheap.Context {
	b.Helper()
	h, err := memhier.New(memhier.Layer{
		Name: "mem", ReadEnergy: 1, WriteEnergy: 1, ReadCycles: 1, WriteCycles: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return simheap.NewContext(h)
}

func BenchmarkFixedPoolMallocFree(b *testing.B) {
	ctx := benchCtx(b)
	p, err := NewFixedPool(ctx, FixedPoolParams{
		Layer: 0, SlotBytes: 74, MatchLo: 74, MatchHi: 74,
		Order: LIFO, Links: SingleLink, Growth: GrowFixedChunk, ChunkSlots: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, _, err := p.Malloc(74)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Free(ptr.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralPoolMallocFree(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mut  func(*GeneralPoolParams)
	}{
		{"firstfit-single", nil},
		{"bestfit-single", func(g *GeneralPoolParams) { g.Fit = BestFit }},
		{"segstorage-pow2", func(g *GeneralPoolParams) {
			classes, _ := NewPow2Classes(16, 65536)
			g.Classes = classes
			g.Fit = ExactFit
			g.Split = SplitNever
			g.Coalesce = CoalesceNever
			g.RoundToClass = true
		}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			ctx := benchCtx(b)
			params := GeneralPoolParams{
				Layer: 0, Classes: SingleClass{}, Fit: FirstFit, Order: LIFO,
				Links: SingleLink, Split: SplitAlways, Coalesce: CoalesceImmediate,
				Headers: HeaderBoundaryTag, Growth: GrowFixedChunk, ChunkBytes: 64 * 1024,
			}
			if cfg.mut != nil {
				cfg.mut(&params)
			}
			p, err := NewGeneralPool(ctx, params)
			if err != nil {
				b.Fatal(err)
			}
			r := stats.NewRNG(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ptr, _, err := p.Malloc(int64(r.Intn(1000)) + 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.Free(ptr.Addr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuddyMallocFree(b *testing.B) {
	ctx := benchCtx(b)
	p, err := NewBuddyPool(ctx, BuddyPoolParams{Layer: 0, MinBlock: 64, MaxBlock: 64 * 1024})
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, _, err := p.Malloc(int64(r.Intn(4000)) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Free(ptr.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComposedChurn(b *testing.B) {
	ctx := simheap.NewContext(memhier.EmbeddedSoC())
	cfg := Config{
		Fixed: []FixedConfig{{
			SlotBytes: 74, MatchLo: 74, MatchHi: 74, Layer: memhier.LayerScratchpad,
			Order: LIFO, Links: SingleLink, Growth: GrowFixedChunk, ChunkSlots: 256,
			MaxBytes: 48 * 1024,
		}},
		General: GeneralConfig{
			Layer: memhier.LayerDRAM, Classes: "pow2:16:65536", RoundToClass: true,
			Fit: FirstFit, Order: LIFO, Links: SingleLink,
			Split: SplitNever, Coalesce: CoalesceNever,
			Headers: HeaderMinimal, Growth: GrowFixedChunk, ChunkBytes: 64 * 1024,
		},
	}
	a, err := cfg.Build(ctx)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(1)
	var live []Ptr
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) > 64 && r.Bool(0.55) {
			k := r.Intn(len(live))
			if err := a.Free(live[k]); err != nil {
				b.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			size := int64(74)
			if r.Bool(0.3) {
				size = int64(r.Intn(1500)) + 1
			}
			ptr, err := a.Malloc(size)
			if err != nil {
				b.Fatal(err)
			}
			live = append(live, ptr)
		}
	}
}
