package alloc

import "fmt"

// The policy enumerations below are the orthogonal "modules" an allocator
// configuration is assembled from. Each corresponds to one parameter axis
// of the exploration space (the paper's "list of arrays with the parameter
// values to be explored").

// FitPolicy selects how a general pool searches its free structure.
type FitPolicy int

// Fit policies.
const (
	FirstFit FitPolicy = iota // first block large enough
	NextFit                   // first fit resuming at a roving pointer
	BestFit                   // smallest block large enough (full scan)
	WorstFit                  // largest block (full scan)
	ExactFit                  // only a block of exactly the right size
)

var fitNames = map[FitPolicy]string{
	FirstFit: "first", NextFit: "next", BestFit: "best",
	WorstFit: "worst", ExactFit: "exact",
}

func (f FitPolicy) String() string { return enumName(fitNames, f, "fit") }

// Valid reports whether f is a known policy.
func (f FitPolicy) Valid() bool { _, ok := fitNames[f]; return ok }

// ParseFitPolicy parses the textual form produced by String.
func ParseFitPolicy(s string) (FitPolicy, error) {
	for k, v := range fitNames {
		if v == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("alloc: unknown fit policy %q", s)
}

// ListOrder selects the discipline of a free list.
type ListOrder int

// Free-list orders.
const (
	LIFO      ListOrder = iota // push/pop at head: cheapest, best locality
	FIFO                       // push at tail, pop at head
	AddrOrder                  // keep sorted by address: O(n) insert, best coalescing
)

var orderNames = map[ListOrder]string{LIFO: "lifo", FIFO: "fifo", AddrOrder: "addr"}

func (o ListOrder) String() string { return enumName(orderNames, o, "order") }

// Valid reports whether o is a known order.
func (o ListOrder) Valid() bool { _, ok := orderNames[o]; return ok }

// ParseListOrder parses the textual form produced by String.
func ParseListOrder(s string) (ListOrder, error) {
	for k, v := range orderNames {
		if v == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("alloc: unknown list order %q", s)
}

// ListLinks selects single or double linkage of free-list nodes. Double
// linkage costs one extra word write per insert but makes arbitrary
// removal (needed by coalescing and best-fit) O(1) instead of O(n).
type ListLinks int

// Linkage options.
const (
	SingleLink ListLinks = iota
	DoubleLink
)

var linkNames = map[ListLinks]string{SingleLink: "single", DoubleLink: "double"}

func (l ListLinks) String() string { return enumName(linkNames, l, "links") }

// Valid reports whether l is a known linkage.
func (l ListLinks) Valid() bool { _, ok := linkNames[l]; return ok }

// ParseListLinks parses the textual form produced by String.
func ParseListLinks(s string) (ListLinks, error) {
	for k, v := range linkNames {
		if v == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("alloc: unknown linkage %q", s)
}

// CoalesceMode selects when adjacent free blocks are merged.
type CoalesceMode int

// Coalescing modes.
const (
	CoalesceNever     CoalesceMode = iota
	CoalesceImmediate              // merge neighbours on every free
	CoalesceDeferred               // sweep the arena every K frees
)

var coalesceNames = map[CoalesceMode]string{
	CoalesceNever: "never", CoalesceImmediate: "immediate", CoalesceDeferred: "deferred",
}

func (c CoalesceMode) String() string { return enumName(coalesceNames, c, "coalesce") }

// Valid reports whether c is a known mode.
func (c CoalesceMode) Valid() bool { _, ok := coalesceNames[c]; return ok }

// SplitMode selects when an over-sized free block is split on allocation.
type SplitMode int

// Splitting modes.
const (
	SplitNever     SplitMode = iota
	SplitAlways              // split whenever a viable remainder exists
	SplitThreshold           // split only when the remainder >= threshold
)

var splitNames = map[SplitMode]string{
	SplitNever: "never", SplitAlways: "always", SplitThreshold: "threshold",
}

func (s SplitMode) String() string { return enumName(splitNames, s, "split") }

// Valid reports whether s is a known mode.
func (s SplitMode) Valid() bool { _, ok := splitNames[s]; return ok }

// HeaderMode selects the per-block metadata layout of a general pool.
type HeaderMode int

// Header layouts.
const (
	// HeaderMinimal is a single size+status word before the payload.
	// Backward coalescing is impossible (the previous block's header
	// cannot be located), so only forward merges happen.
	HeaderMinimal HeaderMode = iota
	// HeaderBoundaryTag adds a footer word (Knuth boundary tag), enabling
	// O(1) backward coalescing at one extra word per block.
	HeaderBoundaryTag
)

var headerNames = map[HeaderMode]string{
	HeaderMinimal: "minimal", HeaderBoundaryTag: "btag",
}

func (h HeaderMode) String() string { return enumName(headerNames, h, "header") }

// Valid reports whether h is a known layout.
func (h HeaderMode) Valid() bool { _, ok := headerNames[h]; return ok }

// Words returns the per-block metadata overhead in words.
func (h HeaderMode) Words() int64 {
	if h == HeaderBoundaryTag {
		return 2
	}
	return 1
}

// GrowthMode selects how a pool extends itself when exhausted.
type GrowthMode int

// Growth modes.
const (
	// GrowFixedChunk reserves a constant-size arena each time.
	GrowFixedChunk GrowthMode = iota
	// GrowDouble doubles the arena size on each extension (first arena =
	// the configured chunk size), trading footprint for fewer extensions.
	GrowDouble
)

var growthNames = map[GrowthMode]string{GrowFixedChunk: "chunk", GrowDouble: "double"}

func (g GrowthMode) String() string { return enumName(growthNames, g, "growth") }

// Valid reports whether g is a known mode.
func (g GrowthMode) Valid() bool { _, ok := growthNames[g]; return ok }

func enumName[K ~int](names map[K]string, v K, kind string) string {
	if s, ok := names[v]; ok {
		return s
	}
	return fmt.Sprintf("%s(invalid:%d)", kind, int(v))
}
