package alloc

import (
	"fmt"
	"strings"

	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
)

// Config is the complete parameter vector of one allocator configuration —
// the unit the exploration tool enumerates. A Config is declarative: Build
// instantiates it against a simulation context and hierarchy.
type Config struct {
	// Label is an optional human-readable tag (presets set it; the
	// explorer generates one from the parameters otherwise).
	Label string `json:"label,omitempty"`

	// Fixed lists the dedicated pools in routing order.
	Fixed []FixedConfig `json:"fixed,omitempty"`

	// General configures the fallback pool (required).
	General GeneralConfig `json:"general"`
}

// FixedConfig declares one dedicated pool.
type FixedConfig struct {
	SlotBytes int64  `json:"slot_bytes"`
	MatchLo   int64  `json:"match_lo"`
	MatchHi   int64  `json:"match_hi"`
	Layer     string `json:"layer"` // hierarchy layer name

	Order  ListOrder  `json:"order"`
	Links  ListLinks  `json:"links"`
	Growth GrowthMode `json:"growth"`

	ChunkSlots int   `json:"chunk_slots"`
	MaxBytes   int64 `json:"max_bytes,omitempty"` // 0 = unlimited
	Reclaim    bool  `json:"reclaim,omitempty"`   // release fully-free chunks
}

// GeneralConfig declares the general pool.
type GeneralConfig struct {
	Layer string `json:"layer"`

	// Classes selects the size-class map: "single", "pow2:min:max" or
	// "linear:step:max".
	Classes string `json:"classes"`

	Fit   FitPolicy `json:"fit"`
	Order ListOrder `json:"order"`
	Links ListLinks `json:"links"`

	Split          SplitMode `json:"split"`
	SplitThreshold int64     `json:"split_threshold,omitempty"`

	Coalesce      CoalesceMode `json:"coalesce"`
	CoalesceEvery int          `json:"coalesce_every,omitempty"`

	Headers HeaderMode `json:"headers"`
	Growth  GrowthMode `json:"growth"`

	ChunkBytes   int64 `json:"chunk_bytes"`
	MaxBytes     int64 `json:"max_bytes,omitempty"`
	RoundToClass bool  `json:"round_to_class,omitempty"`
}

// ParseClasses builds the SizeClasser described by spec.
func ParseClasses(spec string) (SizeClasser, error) {
	switch {
	case spec == "single":
		return SingleClass{}, nil
	case strings.HasPrefix(spec, "pow2:"):
		var min, max int64
		if _, err := fmt.Sscanf(spec, "pow2:%d:%d", &min, &max); err != nil {
			return nil, fmt.Errorf("alloc: bad class spec %q: %v", spec, err)
		}
		return NewPow2Classes(min, max)
	case strings.HasPrefix(spec, "linear:"):
		var step, max int64
		if _, err := fmt.Sscanf(spec, "linear:%d:%d", &step, &max); err != nil {
			return nil, fmt.Errorf("alloc: bad class spec %q: %v", spec, err)
		}
		return NewLinearClasses(step, max)
	default:
		return nil, fmt.Errorf("alloc: unknown class spec %q", spec)
	}
}

// Validate checks the configuration against a hierarchy without building.
func (c Config) Validate(h *memhier.Hierarchy) error {
	for i, f := range c.Fixed {
		if _, ok := h.ByName(f.Layer); !ok {
			return fmt.Errorf("alloc: fixed pool %d: unknown layer %q", i, f.Layer)
		}
		p := f.params(0)
		if err := p.Validate(); err != nil {
			return fmt.Errorf("alloc: fixed pool %d: %w", i, err)
		}
	}
	if _, ok := h.ByName(c.General.Layer); !ok {
		return fmt.Errorf("alloc: general pool: unknown layer %q", c.General.Layer)
	}
	if bp, ok := c.General.buddyParams(0); ok {
		if err := bp.Validate(); err != nil {
			return fmt.Errorf("alloc: general pool: %w", err)
		}
		return nil
	}
	classes, err := ParseClasses(c.General.Classes)
	if err != nil {
		return err
	}
	gp := c.General.params(0, classes)
	if err := gp.Validate(); err != nil {
		return fmt.Errorf("alloc: general pool: %w", err)
	}
	return nil
}

// buddyParams recognizes the "buddy:min:max" class spec, which selects a
// binary-buddy fallback pool instead of a segregated general pool. The
// remaining GeneralConfig policy fields do not apply (the buddy system
// fixes its own fit, split and coalesce rules); MaxBytes carries over as
// the pool budget.
func (g GeneralConfig) buddyParams(layer memhier.LayerID) (BuddyPoolParams, bool) {
	if !strings.HasPrefix(g.Classes, "buddy:") {
		return BuddyPoolParams{}, false
	}
	var min, max int64
	// Scan errors surface via Validate on the zero params.
	fmt.Sscanf(g.Classes, "buddy:%d:%d", &min, &max)
	return BuddyPoolParams{Layer: layer, MinBlock: min, MaxBlock: max, MaxBytes: g.MaxBytes}, true
}

func (f FixedConfig) params(layer memhier.LayerID) FixedPoolParams {
	return FixedPoolParams{
		Layer:      layer,
		SlotBytes:  f.SlotBytes,
		MatchLo:    f.MatchLo,
		MatchHi:    f.MatchHi,
		Order:      f.Order,
		Links:      f.Links,
		Growth:     f.Growth,
		ChunkSlots: f.ChunkSlots,
		MaxBytes:   f.MaxBytes,
		Reclaim:    f.Reclaim,
	}
}

func (g GeneralConfig) params(layer memhier.LayerID, classes SizeClasser) GeneralPoolParams {
	return GeneralPoolParams{
		Layer:          layer,
		Classes:        classes,
		Fit:            g.Fit,
		Order:          g.Order,
		Links:          g.Links,
		Split:          g.Split,
		SplitThreshold: g.SplitThreshold,
		Coalesce:       g.Coalesce,
		CoalesceEvery:  g.CoalesceEvery,
		Headers:        g.Headers,
		Growth:         g.Growth,
		ChunkBytes:     g.ChunkBytes,
		MaxBytes:       g.MaxBytes,
		RoundToClass:   g.RoundToClass,
	}
}

// Build instantiates the configuration on ctx. The returned allocator is
// bound to ctx's hierarchy and counters.
func (c Config) Build(ctx *simheap.Context) (*Composed, error) {
	h := ctx.Hierarchy()
	if err := c.Validate(h); err != nil {
		return nil, err
	}
	fixed := make([]*FixedPool, 0, len(c.Fixed))
	for i, fc := range c.Fixed {
		layer, _ := h.ByName(fc.Layer)
		fp, err := NewFixedPool(ctx, fc.params(layer))
		if err != nil {
			return nil, fmt.Errorf("alloc: building fixed pool %d: %w", i, err)
		}
		fixed = append(fixed, fp)
	}
	layer, _ := h.ByName(c.General.Layer)
	var general FallbackPool
	if bp, ok := c.General.buddyParams(layer); ok {
		pool, err := NewBuddyPool(ctx, bp)
		if err != nil {
			return nil, fmt.Errorf("alloc: building buddy pool: %w", err)
		}
		general = pool
	} else {
		classes, err := ParseClasses(c.General.Classes)
		if err != nil {
			return nil, err
		}
		pool, err := NewGeneralPool(ctx, c.General.params(layer, classes))
		if err != nil {
			return nil, fmt.Errorf("alloc: building general pool: %w", err)
		}
		general = pool
	}
	name := c.Label
	if name == "" {
		name = c.ID()
	}
	return NewComposed(name, ctx, fixed, general)
}

// BuildWithFallback instantiates the configuration's fixed pools on ctx
// (in routing order, exactly as Build would) and composes them over the
// supplied fallback pool instead of building the general pool. The
// incremental evaluator pairs the real fixed pools with an inert
// recording fallback to replay the fixed-side-invariant part of a trace
// once per fixed-pool signature.
func (c Config) BuildWithFallback(ctx *simheap.Context, general FallbackPool) (*Composed, error) {
	h := ctx.Hierarchy()
	if err := c.Validate(h); err != nil {
		return nil, err
	}
	fixed := make([]*FixedPool, 0, len(c.Fixed))
	for i, fc := range c.Fixed {
		layer, _ := h.ByName(fc.Layer)
		fp, err := NewFixedPool(ctx, fc.params(layer))
		if err != nil {
			return nil, fmt.Errorf("alloc: building fixed pool %d: %w", i, err)
		}
		fixed = append(fixed, fp)
	}
	name := c.Label
	if name == "" {
		name = c.ID()
	}
	return NewComposed(name, ctx, fixed, general)
}

// BuildGeneral instantiates only the configuration's general (fallback)
// pool on ctx, with no fixed pools in front of it. The incremental
// evaluator replays a partition's recorded fallback ops against this
// standalone pool; the pool code paths are identical to a full Build,
// only the context it charges is private to the partial replay.
func (c Config) BuildGeneral(ctx *simheap.Context) (FallbackPool, error) {
	h := ctx.Hierarchy()
	if err := c.Validate(h); err != nil {
		return nil, err
	}
	layer, _ := h.ByName(c.General.Layer)
	if bp, ok := c.General.buddyParams(layer); ok {
		pool, err := NewBuddyPool(ctx, bp)
		if err != nil {
			return nil, fmt.Errorf("alloc: building buddy pool: %w", err)
		}
		return pool, nil
	}
	classes, err := ParseClasses(c.General.Classes)
	if err != nil {
		return nil, err
	}
	pool, err := NewGeneralPool(ctx, c.General.params(layer, classes))
	if err != nil {
		return nil, fmt.Errorf("alloc: building general pool: %w", err)
	}
	return pool, nil
}

// ID returns a canonical compact identifier of the parameter vector,
// stable across runs; the explorer uses it as the configuration key.
func (c Config) ID() string {
	var b strings.Builder
	c.writeFixedID(&b)
	c.General.writeID(&b)
	return b.String()
}

// FixedID returns the canonical identifier of the fixed-pool half of the
// parameter vector (the routing-determining axes), a prefix of ID().
func (c Config) FixedID() string {
	var b strings.Builder
	c.writeFixedID(&b)
	return b.String()
}

// ID returns the canonical identifier of the general-pool parameter
// vector — the suffix of Config.ID past the fixed pools. The incremental
// evaluator keys shared standalone general-pool runs by it: two
// configurations with equal GeneralConfig IDs build byte-for-byte
// identical fallback pools.
func (g GeneralConfig) ID() string {
	var b strings.Builder
	g.writeID(&b)
	return b.String()
}

func (c Config) writeFixedID(b *strings.Builder) {
	for _, f := range c.Fixed {
		fmt.Fprintf(b, "F%d@%s[%d-%d]%s%s%s×%d/%d",
			f.SlotBytes, f.Layer, f.MatchLo, f.MatchHi,
			f.Order, f.Links, f.Growth, f.ChunkSlots, f.MaxBytes)
		if f.Reclaim {
			b.WriteString("r")
		}
		b.WriteString("|")
	}
}

func (g GeneralConfig) writeID(b *strings.Builder) {
	fmt.Fprintf(b, "G@%s:%s:%s:%s:%s:%s%d:%s%d:%s:%s:%d/%d",
		g.Layer, g.Classes, g.Fit, g.Order, g.Links,
		g.Split, g.SplitThreshold, g.Coalesce, g.CoalesceEvery,
		g.Headers, g.Growth, g.ChunkBytes, g.MaxBytes)
	if g.RoundToClass {
		b.WriteString(":round")
	}
}
