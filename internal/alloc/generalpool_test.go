package alloc

import (
	"errors"
	"testing"

	"dmexplore/internal/simheap"
	"dmexplore/internal/stats"
)

func gpParams() GeneralPoolParams {
	return GeneralPoolParams{
		Layer:      0,
		Classes:    SingleClass{},
		Fit:        FirstFit,
		Order:      LIFO,
		Links:      SingleLink,
		Split:      SplitAlways,
		Coalesce:   CoalesceImmediate,
		Headers:    HeaderBoundaryTag,
		Growth:     GrowFixedChunk,
		ChunkBytes: 4096,
	}
}

func newGP(t *testing.T, mut func(*GeneralPoolParams)) (*simheap.Context, *GeneralPool) {
	t.Helper()
	ctx := testCtx(t)
	params := gpParams()
	if mut != nil {
		mut(&params)
	}
	p, err := NewGeneralPool(ctx, params)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, p
}

func TestGeneralPoolParamsValidate(t *testing.T) {
	if err := gpParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []func(*GeneralPoolParams){
		func(p *GeneralPoolParams) { p.Classes = nil },
		func(p *GeneralPoolParams) { p.Fit = FitPolicy(99) },
		func(p *GeneralPoolParams) { p.Split = SplitThreshold; p.SplitThreshold = 0 },
		func(p *GeneralPoolParams) { p.Coalesce = CoalesceDeferred; p.CoalesceEvery = 0 },
		func(p *GeneralPoolParams) { p.ChunkBytes = 64 },
		func(p *GeneralPoolParams) { p.MaxBytes = -1 },
	}
	for i, mut := range cases {
		params := gpParams()
		mut(&params)
		if err := params.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestGeneralPoolMallocFree(t *testing.T) {
	ctx, p := newGP(t, nil)
	ptr, allocated, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if allocated < 100 {
		t.Fatalf("allocated %d < requested", allocated)
	}
	if !p.Owns(ptr.Addr) || p.LiveBlocks() != 1 {
		t.Fatal("ownership wrong")
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	released, err := p.Free(ptr.Addr)
	if err != nil || released != allocated {
		t.Fatalf("free: %d vs %d, %v", released, allocated, err)
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if ctx.Counters(0).Accesses() == 0 {
		t.Fatal("no accesses charged")
	}
}

func TestGeneralPoolBadOps(t *testing.T) {
	_, p := newGP(t, nil)
	if _, _, err := p.Malloc(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("size 0: %v", err)
	}
	if _, _, err := p.Malloc(-5); !errors.Is(err, ErrBadSize) {
		t.Fatalf("negative: %v", err)
	}
	if _, err := p.Free(0xbeef); !errors.Is(err, ErrBadFree) {
		t.Fatalf("bad free: %v", err)
	}
	ptr, _, _ := p.Malloc(64)
	p.Free(ptr.Addr)
	if _, err := p.Free(ptr.Addr); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err)
	}
}

func TestGeneralPoolSplitReusesRemainder(t *testing.T) {
	_, p := newGP(t, nil)
	// One chunk is 4096; allocating 1000 with SplitAlways leaves a big
	// remainder that must serve the next allocation without growth.
	p.Malloc(1000)
	p.Malloc(1000)
	p.Malloc(1000)
	if p.ArenaBytes() != 4096 {
		t.Fatalf("arena bytes %d, want one chunk", p.ArenaBytes())
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralPoolNoSplitWastes(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) { g.Split = SplitNever })
	// Without splitting, the 4096-byte chunk is consumed whole.
	_, allocated, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if allocated != 4096 {
		t.Fatalf("allocated %d, want whole chunk", allocated)
	}
	p.Malloc(100) // must trigger a second chunk
	if p.ArenaBytes() != 8192 {
		t.Fatalf("arena bytes %d", p.ArenaBytes())
	}
}

func TestGeneralPoolSplitThreshold(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) {
		g.Split = SplitThreshold
		g.SplitThreshold = 2048
	})
	// Remainder after a 1000-byte alloc is ~3080 >= 2048: split happens.
	_, a1, _ := p.Malloc(1000)
	if a1 > 1100 {
		t.Fatalf("big remainder not split: %d", a1)
	}
	// Now free block ~3080; allocating 2000 leaves ~1080 < 2048: no split.
	_, a2, _ := p.Malloc(2000)
	if a2 < 3000 {
		t.Fatalf("small remainder split anyway: %d", a2)
	}
}

func TestGeneralPoolCoalesceImmediate(t *testing.T) {
	_, p := newGP(t, nil)
	p1, _, _ := p.Malloc(512)
	p2, _, _ := p.Malloc(512)
	p3, _, _ := p.Malloc(512)
	p.Free(p1.Addr)
	p.Free(p2.Addr) // must merge backward with p1's block
	p.Free(p3.Addr) // must merge with the p1+p2 block and the tail
	// Everything coalesced back: exactly one free block spanning the arena.
	if n := p.FreeBlocks(); n != 1 {
		t.Fatalf("free blocks %d, want 1 (coalesced)", n)
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// The whole chunk is available again for a large allocation.
	if _, _, err := p.Malloc(3500); err != nil {
		t.Fatal(err)
	}
	if p.ArenaBytes() != 4096 {
		t.Fatalf("arena grew: %d", p.ArenaBytes())
	}
}

func TestGeneralPoolCoalesceNeverFragments(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) { g.Coalesce = CoalesceNever })
	var ptrs []Ptr
	for i := 0; i < 7; i++ {
		ptr, _, _ := p.Malloc(500)
		ptrs = append(ptrs, ptr)
	}
	for _, ptr := range ptrs {
		p.Free(ptr.Addr)
	}
	if n := p.FreeBlocks(); n < 7 {
		t.Fatalf("free blocks %d, want >= 7 (uncoalesced)", n)
	}
	// A 3500-byte allocation cannot be satisfied from the fragments: the
	// pool must grow even though total free space is plentiful.
	before := p.ArenaBytes()
	if _, _, err := p.Malloc(3500); err != nil {
		t.Fatal(err)
	}
	if p.ArenaBytes() <= before {
		t.Fatal("fragmented pool did not grow")
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralPoolCoalesceForwardOnlyWithMinimalHeaders(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) { g.Headers = HeaderMinimal })
	p1, _, _ := p.Malloc(512)
	p2, _, _ := p.Malloc(512)
	p.Malloc(512) // plug so the tail free block is not adjacent
	// Free p1 then p2: forward merge would need p2 -> p1 direction
	// (backward), impossible with minimal headers.
	p.Free(p1.Addr)
	p.Free(p2.Addr)
	if n := p.FreeBlocks(); n < 2 {
		t.Fatalf("minimal headers merged backward: %d free blocks", n)
	}

	// Now the opposite order on fresh allocations: freeing the earlier
	// block second merges forward into the later one.
	_, q := newGP(t, func(g *GeneralPoolParams) { g.Headers = HeaderMinimal })
	q1, _, _ := q.Malloc(512)
	q2, _, _ := q.Malloc(512)
	q.Malloc(512)
	q.Free(q2.Addr)
	q.Free(q1.Addr)                  // q1 merges forward with q2's block
	if n := q.FreeBlocks(); n != 2 { // merged block + arena tail
		t.Fatalf("forward merge failed: %d free blocks", n)
	}
}

func TestGeneralPoolCoalesceDeferred(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) {
		g.Coalesce = CoalesceDeferred
		g.CoalesceEvery = 4
	})
	var ptrs []Ptr
	for i := 0; i < 4; i++ {
		ptr, _, _ := p.Malloc(500)
		ptrs = append(ptrs, ptr)
	}
	p.Free(ptrs[0].Addr)
	p.Free(ptrs[1].Addr)
	p.Free(ptrs[2].Addr)
	if n := p.FreeBlocks(); n < 3 {
		t.Fatalf("deferred mode merged early: %d", n)
	}
	p.Free(ptrs[3].Addr) // 4th free triggers the sweep
	if n := p.FreeBlocks(); n != 1 {
		t.Fatalf("sweep did not coalesce: %d free blocks", n)
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralPoolRoundToClass(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) {
		classes, err := NewPow2Classes(16, 4096)
		if err != nil {
			t.Fatal(err)
		}
		g.Classes = classes
		g.Fit = ExactFit
		g.Split = SplitNever
		g.Coalesce = CoalesceNever
		g.Headers = HeaderMinimal
		g.RoundToClass = true
	})
	_, allocated, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	// 100 rounds to 128 plus one header word.
	if allocated != 128+simheap.WordSize {
		t.Fatalf("allocated %d, want %d", allocated, 128+simheap.WordSize)
	}
}

func TestGeneralPoolSegregatedReuse(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) {
		classes, err := NewPow2Classes(16, 4096)
		if err != nil {
			t.Fatal(err)
		}
		g.Classes = classes
		g.Fit = ExactFit
		g.Split = SplitNever
		g.Coalesce = CoalesceNever
		g.RoundToClass = true
	})
	ptr, _, _ := p.Malloc(100)
	p.Free(ptr.Addr)
	ptr2, _, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if ptr2.Addr != ptr.Addr {
		t.Fatalf("class bin did not recycle: %#x vs %#x", ptr2.Addr, ptr.Addr)
	}
}

func TestGeneralPoolEscalatesToLargerBin(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) {
		classes, err := NewPow2Classes(16, 4096)
		if err != nil {
			t.Fatal(err)
		}
		g.Classes = classes
		g.Fit = ExactFit // home bin is exact, escalation is first-fit
		g.Split = SplitAlways
		g.Coalesce = CoalesceNever
	})
	// Free a 1024-class block, then allocate 100: home bin (128) is
	// empty, so the allocator must split the 1024 block rather than grow.
	big, _, _ := p.Malloc(1000)
	before := p.ArenaBytes()
	p.Free(big.Addr)
	if _, _, err := p.Malloc(100); err != nil {
		t.Fatal(err)
	}
	if p.ArenaBytes() != before {
		t.Fatal("escalation failed: pool grew")
	}
}

func TestGeneralPoolBudgetExhaustion(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) { g.MaxBytes = 8192 })
	var live []Ptr
	for {
		ptr, _, err := p.Malloc(1024)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		live = append(live, ptr)
		if len(live) > 16 {
			t.Fatal("budget never enforced")
		}
	}
	// Approximately 7 × 1KB fit into 8KB with overhead.
	if len(live) < 6 {
		t.Fatalf("only %d allocations before OOM", len(live))
	}
	// Freeing and reallocating within the budget must succeed.
	p.Free(live[0].Addr)
	if _, _, err := p.Malloc(512); err != nil {
		t.Fatalf("post-free alloc failed: %v", err)
	}
}

func TestGeneralPoolLayerCapacityOOM(t *testing.T) {
	ctx := twoLayerCtx(t, 2048)
	params := gpParams() // layer 0 = 2KB scratchpad, chunk 4KB
	_, err := NewGeneralPool(ctx, params)
	if err != nil {
		t.Fatal(err) // metadata fits
	}
	p, _ := NewGeneralPool(ctx, params)
	if _, _, err := p.Malloc(64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want OOM, got %v", err)
	}
}

func TestGeneralPoolOversizeRequest(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) {
		classes, err := NewPow2Classes(16, 256)
		if err != nil {
			t.Fatal(err)
		}
		g.Classes = classes
	})
	// Request above the largest class routes to the last bin and grows.
	ptr, allocated, err := p.Malloc(10000)
	if err != nil {
		t.Fatal(err)
	}
	if allocated < 10000 {
		t.Fatalf("allocated %d", allocated)
	}
	if _, err := p.Free(ptr.Addr); err != nil {
		t.Fatal(err)
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralPoolGrowDouble(t *testing.T) {
	_, p := newGP(t, func(g *GeneralPoolParams) {
		g.Growth = GrowDouble
		g.Split = SplitNever
		g.Coalesce = CoalesceNever
	})
	p.Malloc(4000) // chunk 1: 4096
	p.Malloc(4000) // chunk 2: 8192
	p.Malloc(4000) // fits in chunk 2 remainder? No: SplitNever consumed it. chunk 3: 16384
	if p.ArenaBytes() != 4096+8192+16384 {
		t.Fatalf("arena bytes %d", p.ArenaBytes())
	}
}

// Randomized stress: any policy combination must preserve heap invariants
// and never lose or duplicate blocks.
func TestGeneralPoolStressAllPolicies(t *testing.T) {
	fits := []FitPolicy{FirstFit, NextFit, BestFit, WorstFit}
	orders := []ListOrder{LIFO, FIFO, AddrOrder}
	links := []ListLinks{SingleLink, DoubleLink}
	coalesce := []CoalesceMode{CoalesceNever, CoalesceImmediate, CoalesceDeferred}
	splits := []SplitMode{SplitNever, SplitAlways, SplitThreshold}
	headers := []HeaderMode{HeaderMinimal, HeaderBoundaryTag}

	rng := stats.NewRNG(2024)
	for _, fit := range fits {
		for _, co := range coalesce {
			for _, sp := range splits {
				// Sample the remaining axes to keep the matrix tractable.
				order := orders[rng.Intn(len(orders))]
				link := links[rng.Intn(len(links))]
				hdr := headers[rng.Intn(len(headers))]
				name := fit.String() + "/" + co.String() + "/" + sp.String()
				t.Run(name, func(t *testing.T) {
					_, p := newGP(t, func(g *GeneralPoolParams) {
						g.Fit = fit
						g.Order = order
						g.Links = link
						g.Coalesce = co
						g.CoalesceEvery = 8
						g.Split = sp
						g.SplitThreshold = 64
						g.Headers = hdr
					})
					r := stats.NewRNG(uint64(fit)*100 + uint64(co)*10 + uint64(sp))
					live := make(map[uint64]bool)
					var addrs []uint64
					for i := 0; i < 2000; i++ {
						if len(addrs) > 0 && r.Bool(0.45) {
							k := r.Intn(len(addrs))
							addr := addrs[k]
							addrs = append(addrs[:k], addrs[k+1:]...)
							delete(live, addr)
							if _, err := p.Free(addr); err != nil {
								t.Fatalf("op %d: free: %v", i, err)
							}
						} else {
							size := int64(r.Intn(900)) + 1
							ptr, _, err := p.Malloc(size)
							if err != nil {
								t.Fatalf("op %d: malloc(%d): %v", i, size, err)
							}
							if live[ptr.Addr] {
								t.Fatalf("op %d: duplicate address %#x", i, ptr.Addr)
							}
							live[ptr.Addr] = true
							addrs = append(addrs, ptr.Addr)
						}
					}
					if err := p.checkInvariants(); err != nil {
						t.Fatal(err)
					}
					if p.LiveBlocks() != len(live) {
						t.Fatalf("live %d vs %d", p.LiveBlocks(), len(live))
					}
				})
			}
		}
	}
}
