package alloc

import (
	"encoding/json"
	"errors"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/stats"
)

// buildTestAllocator assembles a two-pool allocator on a two-layer
// hierarchy: a 74-byte dedicated pool on the scratchpad, general pool in
// DRAM.
func buildTestAllocator(t *testing.T, spBytes int64) (*Composed, *memhier.Hierarchy) {
	t.Helper()
	ctx := twoLayerCtx(t, spBytes)
	fp, err := NewFixedPool(ctx, FixedPoolParams{
		Layer: 0, SlotBytes: 74, MatchLo: 74, MatchHi: 74,
		Order: LIFO, Links: SingleLink, Growth: GrowFixedChunk, ChunkSlots: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := NewGeneralPool(ctx, GeneralPoolParams{
		Layer: 1, Classes: SingleClass{}, Fit: FirstFit, Order: LIFO,
		Links: SingleLink, Split: SplitAlways, Coalesce: CoalesceImmediate,
		Headers: HeaderBoundaryTag, Growth: GrowFixedChunk, ChunkBytes: 16 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewComposed("test", ctx, []*FixedPool{fp}, gp)
	if err != nil {
		t.Fatal(err)
	}
	return a, ctx.Hierarchy()
}

func TestComposedRouting(t *testing.T) {
	a, _ := buildTestAllocator(t, 64*1024)
	p74, err := a.Malloc(74)
	if err != nil {
		t.Fatal(err)
	}
	if p74.Layer != 0 {
		t.Fatalf("74-byte request landed on layer %d, want scratchpad", p74.Layer)
	}
	p200, err := a.Malloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if p200.Layer != 1 {
		t.Fatalf("200-byte request landed on layer %d, want dram", p200.Layer)
	}
	if err := a.Free(p74); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p200); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestComposedFallbackOnScratchpadOverflow(t *testing.T) {
	// Scratchpad too small for even one chunk: 74-byte requests must
	// still succeed, served by the DRAM general pool.
	a, _ := buildTestAllocator(t, 256)
	ptr, err := a.Malloc(74)
	if err != nil {
		t.Fatal(err)
	}
	if ptr.Layer != 1 {
		t.Fatalf("overflowed request on layer %d, want dram fallback", ptr.Layer)
	}
	st := a.Stats()
	if st.Failures != 0 {
		t.Fatalf("fallback recorded as failure: %+v", st)
	}
}

func TestComposedStats(t *testing.T) {
	a, _ := buildTestAllocator(t, 64*1024)
	p1, _ := a.Malloc(74)
	p2, _ := a.Malloc(100)
	st := a.Stats()
	if st.Mallocs != 2 || st.LiveBlocks != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.RequestedLive != 174 {
		t.Fatalf("requested %d", st.RequestedLive)
	}
	if st.AllocatedLive < st.RequestedLive {
		t.Fatalf("allocated %d < requested %d", st.AllocatedLive, st.RequestedLive)
	}
	frag := st.InternalFragmentation()
	if frag < 0 || frag >= 1 {
		t.Fatalf("fragmentation %v", frag)
	}
	a.Free(p1)
	a.Free(p2)
	st = a.Stats()
	if st.Frees != 2 || st.LiveBlocks != 0 || st.RequestedLive != 0 || st.AllocatedLive != 0 {
		t.Fatalf("stats after frees %+v", st)
	}
}

func TestComposedWhereAndSizeOf(t *testing.T) {
	a, _ := buildTestAllocator(t, 64*1024)
	ptr, _ := a.Malloc(100)
	if got, ok := a.Where(ptr); !ok || got != ptr {
		t.Fatal("Where failed for live ptr")
	}
	if size, ok := a.SizeOf(ptr); !ok || size != 100 {
		t.Fatalf("SizeOf = %d,%v", size, ok)
	}
	a.Free(ptr)
	if _, ok := a.Where(ptr); ok {
		t.Fatal("Where found freed ptr")
	}
	if _, ok := a.SizeOf(ptr); ok {
		t.Fatal("SizeOf found freed ptr")
	}
}

func TestComposedErrors(t *testing.T) {
	a, _ := buildTestAllocator(t, 64*1024)
	if _, err := a.Malloc(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("size 0: %v", err)
	}
	if err := a.Free(Ptr{Layer: 1, Addr: 0x999}); !errors.Is(err, ErrBadFree) {
		t.Fatalf("bad free: %v", err)
	}
	ptr, _ := a.Malloc(50)
	a.Free(ptr)
	if err := a.Free(ptr); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err)
	}
}

func TestComposedNeedsGeneralPool(t *testing.T) {
	ctx := testCtx(t)
	if _, err := NewComposed("x", ctx, nil, nil); err == nil {
		t.Fatal("nil general pool accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	h := memhier.EmbeddedSoC()
	good := Config{
		Fixed: []FixedConfig{{
			SlotBytes: 74, MatchLo: 74, MatchHi: 74,
			Layer: memhier.LayerScratchpad,
			Order: LIFO, Links: SingleLink, Growth: GrowFixedChunk, ChunkSlots: 32,
		}},
		General: GeneralConfig{
			Layer: memhier.LayerDRAM, Classes: "pow2:16:65536",
			Fit: FirstFit, Order: LIFO, Links: SingleLink,
			Split: SplitAlways, Coalesce: CoalesceImmediate,
			Headers: HeaderBoundaryTag, Growth: GrowFixedChunk, ChunkBytes: 16 * 1024,
		},
	}
	if err := good.Validate(h); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}

	bad := good
	bad.Fixed = []FixedConfig{good.Fixed[0]}
	bad.Fixed[0].Layer = "nowhere"
	if err := bad.Validate(h); err == nil {
		t.Fatal("unknown fixed layer accepted")
	}

	bad = good
	bad.General.Layer = "nowhere"
	if err := bad.Validate(h); err == nil {
		t.Fatal("unknown general layer accepted")
	}

	bad = good
	bad.General.Classes = "garbage"
	if err := bad.Validate(h); err == nil {
		t.Fatal("bad class spec accepted")
	}
}

func TestConfigBuildAndRun(t *testing.T) {
	h := memhier.EmbeddedSoC()
	cfg := Config{
		Label: "unit",
		Fixed: []FixedConfig{{
			SlotBytes: 74, MatchLo: 70, MatchHi: 74,
			Layer: memhier.LayerScratchpad,
			Order: LIFO, Links: SingleLink, Growth: GrowFixedChunk, ChunkSlots: 32,
			MaxBytes: 32 * 1024,
		}},
		General: GeneralConfig{
			Layer: memhier.LayerDRAM, Classes: "linear:8:2048",
			Fit: BestFit, Order: FIFO, Links: DoubleLink,
			Split: SplitAlways, Coalesce: CoalesceImmediate,
			Headers: HeaderBoundaryTag, Growth: GrowFixedChunk, ChunkBytes: 32 * 1024,
		},
	}
	ctx := newCtx(t, h)
	a, err := cfg.Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "unit" {
		t.Fatalf("name %q", a.Name())
	}
	r := stats.NewRNG(7)
	var live []Ptr
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && r.Bool(0.48) {
			k := r.Intn(len(live))
			if err := a.Free(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		} else {
			size := int64(r.Intn(1500)) + 1
			if r.Bool(0.5) {
				size = 74
			}
			ptr, err := a.Malloc(size)
			if err != nil {
				t.Fatalf("malloc(%d): %v", size, err)
			}
			live = append(live, ptr)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Scratchpad must have been used for the 74-byte traffic.
	if ctx.Counters(0).PeakBytes == 0 {
		t.Fatal("scratchpad unused")
	}
}

func TestConfigIDStableAndDistinct(t *testing.T) {
	a := KingsleyConfig("dram")
	b := KingsleyConfig("dram")
	if a.ID() != b.ID() {
		t.Fatal("identical configs with different IDs")
	}
	c := LeaConfig("dram")
	if a.ID() == c.ID() {
		t.Fatal("different configs with same ID")
	}
	d := KingsleyConfig("dram")
	d.General.Fit = FirstFit
	if a.ID() == d.ID() {
		t.Fatal("fit change not reflected in ID")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	in := LeaConfig(memhier.LayerDRAM)
	in.Fixed = []FixedConfig{{
		SlotBytes: 1500, MatchLo: 1400, MatchHi: 1500,
		Layer: memhier.LayerDRAM, Order: FIFO, Links: DoubleLink,
		Growth: GrowDouble, ChunkSlots: 8, MaxBytes: 1 << 20,
	}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Config
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID() != in.ID() {
		t.Fatalf("round trip changed ID:\n%s\n%s", in.ID(), out.ID())
	}
}

func TestPresetsBuildAndWork(t *testing.T) {
	h := memhier.FlatDRAM()
	for _, cfg := range []Config{
		KingsleyConfig(memhier.LayerDRAM),
		LeaConfig(memhier.LayerDRAM),
		SimpleFirstFitConfig(memhier.LayerDRAM),
	} {
		t.Run(cfg.Label, func(t *testing.T) {
			ctx := newCtx(t, h)
			a, err := cfg.Build(ctx)
			if err != nil {
				t.Fatal(err)
			}
			r := stats.NewRNG(11)
			var live []Ptr
			for i := 0; i < 2000; i++ {
				if len(live) > 0 && r.Bool(0.5) {
					k := r.Intn(len(live))
					if err := a.Free(live[k]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:k], live[k+1:]...)
				} else {
					ptr, err := a.Malloc(int64(r.Intn(2000)) + 1)
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, ptr)
				}
			}
			if err := a.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestKingsleyCheaperButFatterThanLea(t *testing.T) {
	// The canonical trade-off: Kingsley does fewer accesses, Lea keeps a
	// smaller footprint. This is the axis the whole paper explores.
	h := memhier.FlatDRAM()
	run := func(cfg Config) (accesses uint64, footprint int64) {
		ctx := newCtx(t, h)
		a, err := cfg.Build(ctx)
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRNG(99)
		var live []Ptr
		for i := 0; i < 5000; i++ {
			if len(live) > 0 && r.Bool(0.5) {
				k := r.Intn(len(live))
				a.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			} else {
				ptr, err := a.Malloc(int64(r.Intn(1000)) + 1)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, ptr)
			}
		}
		return ctx.TotalAccesses(), ctx.TotalPeakBytes()
	}
	kAcc, kFoot := run(KingsleyConfig(memhier.LayerDRAM))
	lAcc, lFoot := run(LeaConfig(memhier.LayerDRAM))
	if kAcc >= lAcc {
		t.Errorf("kingsley accesses %d not below lea %d", kAcc, lAcc)
	}
	if kFoot <= lFoot {
		t.Errorf("kingsley footprint %d not above lea %d", kFoot, lFoot)
	}
}
