package alloc

import "fmt"

// Text marshalling for the policy enums so configurations round-trip
// through JSON parameter files with readable values ("best", "lifo", …)
// instead of bare integers.

// MarshalText implements encoding.TextMarshaler.
func (f FitPolicy) MarshalText() ([]byte, error) { return enumText(fitNames, f) }

// UnmarshalText implements encoding.TextUnmarshaler.
func (f *FitPolicy) UnmarshalText(b []byte) error {
	v, err := ParseFitPolicy(string(b))
	if err != nil {
		return err
	}
	*f = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (o ListOrder) MarshalText() ([]byte, error) { return enumText(orderNames, o) }

// UnmarshalText implements encoding.TextUnmarshaler.
func (o *ListOrder) UnmarshalText(b []byte) error {
	v, err := ParseListOrder(string(b))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (l ListLinks) MarshalText() ([]byte, error) { return enumText(linkNames, l) }

// UnmarshalText implements encoding.TextUnmarshaler.
func (l *ListLinks) UnmarshalText(b []byte) error {
	v, err := ParseListLinks(string(b))
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (c CoalesceMode) MarshalText() ([]byte, error) { return enumText(coalesceNames, c) }

// UnmarshalText implements encoding.TextUnmarshaler.
func (c *CoalesceMode) UnmarshalText(b []byte) error {
	return parseInto(coalesceNames, string(b), c, "coalesce mode")
}

// MarshalText implements encoding.TextMarshaler.
func (s SplitMode) MarshalText() ([]byte, error) { return enumText(splitNames, s) }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *SplitMode) UnmarshalText(b []byte) error {
	return parseInto(splitNames, string(b), s, "split mode")
}

// MarshalText implements encoding.TextMarshaler.
func (h HeaderMode) MarshalText() ([]byte, error) { return enumText(headerNames, h) }

// UnmarshalText implements encoding.TextUnmarshaler.
func (h *HeaderMode) UnmarshalText(b []byte) error {
	return parseInto(headerNames, string(b), h, "header mode")
}

// MarshalText implements encoding.TextMarshaler.
func (g GrowthMode) MarshalText() ([]byte, error) { return enumText(growthNames, g) }

// UnmarshalText implements encoding.TextUnmarshaler.
func (g *GrowthMode) UnmarshalText(b []byte) error {
	return parseInto(growthNames, string(b), g, "growth mode")
}

func enumText[K comparable](names map[K]string, v K) ([]byte, error) {
	s, ok := names[v]
	if !ok {
		return nil, fmt.Errorf("alloc: invalid enum value %v", v)
	}
	return []byte(s), nil
}

func parseInto[K comparable](names map[K]string, s string, dst *K, kind string) error {
	for k, v := range names {
		if v == s {
			*dst = k
			return nil
		}
	}
	return fmt.Errorf("alloc: unknown %s %q", kind, s)
}
