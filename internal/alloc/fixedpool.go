package alloc

import (
	"fmt"

	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
)

// FixedPoolParams configures a dedicated pool serving one block size.
// Dedicated pools are the paper's central customization: the dominant
// allocation sizes of an application (74-byte control blocks, 1500-byte
// frames in the Easyport study) get headerless O(1) pools, optionally
// placed on the scratchpad layer.
type FixedPoolParams struct {
	Layer     memhier.LayerID
	SlotBytes int64 // payload capacity of each slot (word multiple after rounding)

	// MatchLo..MatchHi is the inclusive request-size range routed to this
	// pool by the composed allocator. Requests above SlotBytes are never
	// routed here regardless of the range.
	MatchLo, MatchHi int64

	Order  ListOrder
	Links  ListLinks
	Growth GrowthMode

	ChunkSlots int   // slots added per arena extension
	MaxBytes   int64 // cap on total arena bytes; 0 = unlimited

	// Reclaim releases a whole chunk back to its layer when every slot in
	// it is free again — trading extra free-path work (unlinking the
	// chunk's slots from the free list) for footprint after bursts.
	Reclaim bool
}

// Validate reports configuration errors.
func (p FixedPoolParams) Validate() error {
	if p.SlotBytes <= 0 {
		return fmt.Errorf("alloc: fixed pool slot size %d", p.SlotBytes)
	}
	if p.MatchLo <= 0 || p.MatchHi < p.MatchLo {
		return fmt.Errorf("alloc: fixed pool match range [%d,%d]", p.MatchLo, p.MatchHi)
	}
	if p.MatchHi > p.SlotBytes {
		return fmt.Errorf("alloc: fixed pool match range [%d,%d] exceeds slot size %d",
			p.MatchLo, p.MatchHi, p.SlotBytes)
	}
	if !p.Order.Valid() || !p.Links.Valid() || !p.Growth.Valid() {
		return fmt.Errorf("alloc: fixed pool has an invalid policy value")
	}
	if p.ChunkSlots <= 0 {
		return fmt.Errorf("alloc: fixed pool chunk slots %d", p.ChunkSlots)
	}
	if p.MaxBytes < 0 {
		return fmt.Errorf("alloc: negative fixed pool cap")
	}
	return nil
}

// fixedArena is one slot chunk with its occupancy bookkeeping.
type fixedArena struct {
	region *simheap.Region
	live   int // slots currently allocated
	slots  int // slots carved so far
}

// FixedPool is a headerless pool of equal-size slots: allocation pops the
// free list or bumps a frontier pointer; free pushes. Both are O(1) —
// the cheapest allocator the framework can assemble.
type FixedPool struct {
	params    FixedPoolParams
	slotBytes int64 // word-aligned slot size
	ctx       *simheap.Context

	meta *simheap.Region
	list *FreeList

	arenas     []*fixedArena
	arenaBytes int64
	bump       uint64 // next unused slot address in the newest arena
	bumpEnd    uint64 // end of the newest arena
	nextSlots  int

	live       map[uint64]*fixedArena // live slot address -> its arena
	slotBlocks map[uint64]*Block      // persistent Block per freed slot

	reclaims int // chunks returned to the layer
}

// fixedMetaWords: free-list words plus the bump frontier pointer.
const fixedMetaWords = MetaWords + 1

// NewFixedPool reserves the pool's metadata and returns the pool. No slot
// memory is reserved until the first allocation.
func NewFixedPool(ctx *simheap.Context, params FixedPoolParams) (*FixedPool, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	meta, err := ctx.Reserve(params.Layer, fixedMetaWords*simheap.WordSize)
	if err != nil {
		return nil, fmt.Errorf("alloc: reserving fixed pool metadata: %w", err)
	}
	p := &FixedPool{
		params:     params,
		slotBytes:  align(params.SlotBytes, simheap.WordSize),
		ctx:        ctx,
		meta:       meta,
		nextSlots:  params.ChunkSlots,
		live:       make(map[uint64]*fixedArena),
		slotBlocks: make(map[uint64]*Block),
	}
	p.list = NewFreeList(ctx, params.Layer, meta.Base(), params.Order, params.Links)
	return p, nil
}

// Layer returns the hierarchy layer the pool's slots live in.
func (p *FixedPool) Layer() memhier.LayerID { return p.params.Layer }

// SlotBytes returns the word-aligned slot capacity.
func (p *FixedPool) SlotBytes() int64 { return p.slotBytes }

// Matches reports whether a request of the given size is routed here.
func (p *FixedPool) Matches(size int64) bool {
	return size >= p.params.MatchLo && size <= p.params.MatchHi
}

// bumpAddr is the metadata address of the frontier pointer.
func (p *FixedPool) bumpAddr() uint64 {
	return p.meta.Base() + MetaWords*simheap.WordSize
}

// arenaOf locates the arena containing addr (few arenas; linear scan).
func (p *FixedPool) arenaOf(addr uint64) *fixedArena {
	for _, a := range p.arenas {
		if a.region.Contains(addr) {
			return a
		}
	}
	return nil
}

// Malloc allocates one slot. The returned int64 is the slot capacity
// actually consumed (always SlotBytes).
func (p *FixedPool) Malloc(size int64) (Ptr, int64, error) {
	if err := checkSize(size); err != nil {
		return Ptr{}, 0, err
	}
	if size > p.slotBytes {
		return Ptr{}, 0, fmt.Errorf("%w: request %d exceeds slot size %d",
			ErrBadSize, size, p.slotBytes)
	}
	// Recycled slot first.
	if b := p.list.PopHead(); b != nil {
		b.free = false
		a := p.arenaOf(b.addr)
		a.live++
		p.live[b.addr] = a
		return Ptr{Layer: p.params.Layer, Addr: b.addr}, p.slotBytes, nil
	}
	// Bump-carve from the newest arena.
	p.ctx.Read(p.params.Layer, p.bumpAddr(), 1)
	if p.bump >= p.bumpEnd {
		if err := p.grow(); err != nil {
			return Ptr{}, 0, err
		}
	}
	addr := p.bump
	p.bump += uint64(p.slotBytes)
	p.ctx.Write(p.params.Layer, p.bumpAddr(), 1)
	a := p.arenas[len(p.arenas)-1]
	a.live++
	a.slots++
	p.live[addr] = a
	return Ptr{Layer: p.params.Layer, Addr: addr}, p.slotBytes, nil
}

// grow reserves a new arena of ChunkSlots (doubling under GrowDouble).
func (p *FixedPool) grow() error {
	size := int64(p.nextSlots) * p.slotBytes
	if p.params.MaxBytes > 0 && p.arenaBytes+size > p.params.MaxBytes {
		size = p.params.MaxBytes - p.arenaBytes
		size -= size % p.slotBytes
		if size < p.slotBytes {
			return fmt.Errorf("%w: fixed pool budget exhausted", ErrOutOfMemory)
		}
	}
	region, err := p.ctx.Reserve(p.params.Layer, size)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrOutOfMemory, err)
	}
	p.arenas = append(p.arenas, &fixedArena{region: region})
	p.arenaBytes += size
	p.bump = region.Base()
	p.bumpEnd = region.End()
	if p.params.Growth == GrowDouble {
		p.nextSlots *= 2
	}
	return nil
}

// Free releases the slot at addr. Under Reclaim, a chunk whose last live
// slot just died is unlinked slot-by-slot from the free list and its
// memory returned to the layer.
func (p *FixedPool) Free(addr uint64) (int64, error) {
	a, ok := p.live[addr]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	delete(p.live, addr)
	a.live--

	b := p.slotBlocks[addr]
	if b == nil {
		b = &Block{addr: addr, size: p.slotBytes}
		p.slotBlocks[addr] = b
	}
	b.free = true
	p.list.Push(b)

	if p.params.Reclaim && a.live == 0 && !p.isBumpArena(a) {
		p.reclaim(a)
	}
	return p.slotBytes, nil
}

// isBumpArena reports whether a is the arena the frontier carves from.
func (p *FixedPool) isBumpArena(a *fixedArena) bool {
	return len(p.arenas) > 0 && p.arenas[len(p.arenas)-1] == a
}

// reclaim unlinks every slot of a fully-free arena and releases it.
func (p *FixedPool) reclaim(a *fixedArena) {
	base := a.region.Base()
	for i := 0; i < a.slots; i++ {
		addr := base + uint64(int64(i)*p.slotBytes)
		if b := p.slotBlocks[addr]; b != nil && b.list != nil {
			p.list.Remove(b)
		}
		delete(p.slotBlocks, addr)
	}
	for i, other := range p.arenas {
		if other == a {
			p.arenas = append(p.arenas[:i], p.arenas[i+1:]...)
			break
		}
	}
	p.arenaBytes -= a.region.Size()
	a.region.Release()
	p.reclaims++
}

// Owns reports whether addr is a live allocation of this pool.
func (p *FixedPool) Owns(addr uint64) bool {
	_, ok := p.live[addr]
	return ok
}

// LiveBlocks returns the number of live slots.
func (p *FixedPool) LiveBlocks() int { return len(p.live) }

// ArenaBytes returns the total bytes reserved for slot arenas.
func (p *FixedPool) ArenaBytes() int64 { return p.arenaBytes }

// FreeSlots returns the length of the recycle list.
func (p *FixedPool) FreeSlots() int { return p.list.Len() }

// Reclaims returns the number of chunks returned to the layer.
func (p *FixedPool) Reclaims() int { return p.reclaims }
