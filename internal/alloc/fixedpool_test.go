package alloc

import (
	"errors"
	"testing"

	"dmexplore/internal/simheap"
)

func fixedParams() FixedPoolParams {
	return FixedPoolParams{
		Layer: 0, SlotBytes: 74, MatchLo: 74, MatchHi: 74,
		Order: LIFO, Links: SingleLink, Growth: GrowFixedChunk,
		ChunkSlots: 8,
	}
}

func TestFixedPoolParamsValidate(t *testing.T) {
	ok := fixedParams()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []func(*FixedPoolParams){
		func(p *FixedPoolParams) { p.SlotBytes = 0 },
		func(p *FixedPoolParams) { p.MatchLo = 0 },
		func(p *FixedPoolParams) { p.MatchHi = p.MatchLo - 1 },
		func(p *FixedPoolParams) { p.MatchHi = p.SlotBytes + 1 },
		func(p *FixedPoolParams) { p.Order = ListOrder(99) },
		func(p *FixedPoolParams) { p.ChunkSlots = 0 },
		func(p *FixedPoolParams) { p.MaxBytes = -1 },
	}
	for i, mut := range cases {
		p := fixedParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestFixedPoolMallocFree(t *testing.T) {
	ctx := testCtx(t)
	p, err := NewFixedPool(ctx, fixedParams())
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotBytes() != 80 { // 74 rounded to 8-byte words
		t.Fatalf("slot bytes %d", p.SlotBytes())
	}
	ptr, allocated, err := p.Malloc(74)
	if err != nil {
		t.Fatal(err)
	}
	if allocated != 80 {
		t.Fatalf("allocated %d", allocated)
	}
	if !p.Owns(ptr.Addr) || p.LiveBlocks() != 1 {
		t.Fatal("ownership wrong")
	}
	released, err := p.Free(ptr.Addr)
	if err != nil || released != 80 {
		t.Fatalf("free: %d %v", released, err)
	}
	if p.Owns(ptr.Addr) || p.LiveBlocks() != 0 || p.FreeSlots() != 1 {
		t.Fatal("state after free wrong")
	}
}

func TestFixedPoolRecyclesSlots(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewFixedPool(ctx, fixedParams())
	ptr, _, _ := p.Malloc(74)
	p.Free(ptr.Addr)
	ptr2, _, _ := p.Malloc(74)
	if ptr2.Addr != ptr.Addr {
		t.Fatalf("LIFO pool did not recycle: %#x vs %#x", ptr2.Addr, ptr.Addr)
	}
	if p.ArenaBytes() != 8*80 {
		t.Fatalf("arena grew unnecessarily: %d", p.ArenaBytes())
	}
}

func TestFixedPoolGrowth(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewFixedPool(ctx, fixedParams())
	for i := 0; i < 9; i++ { // one more than a chunk
		if _, _, err := p.Malloc(74); err != nil {
			t.Fatal(err)
		}
	}
	if p.ArenaBytes() != 2*8*80 {
		t.Fatalf("arena bytes %d, want two chunks", p.ArenaBytes())
	}
}

func TestFixedPoolDoubleGrowth(t *testing.T) {
	ctx := testCtx(t)
	params := fixedParams()
	params.Growth = GrowDouble
	p, _ := NewFixedPool(ctx, params)
	for i := 0; i < 8+16+1; i++ {
		if _, _, err := p.Malloc(74); err != nil {
			t.Fatal(err)
		}
	}
	// Chunks of 8, 16, 32 slots.
	if p.ArenaBytes() != int64(8+16+32)*80 {
		t.Fatalf("arena bytes %d", p.ArenaBytes())
	}
}

func TestFixedPoolBudget(t *testing.T) {
	ctx := testCtx(t)
	params := fixedParams()
	params.MaxBytes = 4 * 80 // room for 4 slots despite ChunkSlots=8
	p, _ := NewFixedPool(ctx, params)
	for i := 0; i < 4; i++ {
		if _, _, err := p.Malloc(74); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	_, _, err := p.Malloc(74)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("budget overrun error: %v", err)
	}
}

func TestFixedPoolLayerCapacity(t *testing.T) {
	// Scratchpad of 512 bytes: metadata (4 words) + 8-slot chunk of 80B
	// does not fit; allocation must fail with OOM.
	ctx := twoLayerCtx(t, 512)
	p, err := NewFixedPool(ctx, fixedParams())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = p.Malloc(74)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want OOM on full scratchpad, got %v", err)
	}
}

func TestFixedPoolRejects(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewFixedPool(ctx, fixedParams())
	if _, _, err := p.Malloc(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("size 0: %v", err)
	}
	if _, _, err := p.Malloc(100); !errors.Is(err, ErrBadSize) {
		t.Fatalf("oversize: %v", err)
	}
	if _, err := p.Free(0xdead); !errors.Is(err, ErrBadFree) {
		t.Fatalf("bad free: %v", err)
	}
	ptr, _, _ := p.Malloc(74)
	p.Free(ptr.Addr)
	if _, err := p.Free(ptr.Addr); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err)
	}
}

func TestFixedPoolMatches(t *testing.T) {
	ctx := testCtx(t)
	params := fixedParams()
	params.MatchLo, params.MatchHi = 64, 74
	p, _ := NewFixedPool(ctx, params)
	for _, c := range []struct {
		size int64
		want bool
	}{{63, false}, {64, true}, {74, true}, {75, false}} {
		if got := p.Matches(c.size); got != c.want {
			t.Errorf("Matches(%d) = %v", c.size, got)
		}
	}
}

func TestFixedPoolO1Accesses(t *testing.T) {
	// The cost of malloc/free must not grow with the number of live or
	// freed slots — the whole point of a dedicated pool.
	ctx := testCtx(t)
	params := fixedParams()
	params.ChunkSlots = 1024
	p, _ := NewFixedPool(ctx, params)
	var ptrs []Ptr
	for i := 0; i < 1000; i++ {
		ptr, _, err := p.Malloc(74)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
	}
	before := ctx.Counters(0).Accesses()
	p.Free(ptrs[500].Addr)
	freeCost := ctx.Counters(0).Accesses() - before

	before = ctx.Counters(0).Accesses()
	if _, _, err := p.Malloc(74); err != nil {
		t.Fatal(err)
	}
	mallocCost := ctx.Counters(0).Accesses() - before

	if freeCost > 4 || mallocCost > 4 {
		t.Fatalf("fixed pool not O(1): free=%d malloc=%d accesses", freeCost, mallocCost)
	}
	_ = simheap.WordSize
}
