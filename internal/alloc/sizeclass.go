package alloc

import (
	"fmt"

	"dmexplore/internal/simheap"
)

// SizeClasser maps requested sizes to the segregated bins of a general
// pool. Implementations must be pure functions of the size: the class of
// a block never changes over its lifetime.
type SizeClasser interface {
	// NumClasses returns the number of bins.
	NumClasses() int
	// ClassOf returns the bin index for a requested payload size, or
	// -1 when the size exceeds the largest class (routed to the last bin
	// by callers that allow oversize blocks).
	ClassOf(size int64) int
	// ClassSize returns the payload capacity of blocks in class c.
	ClassSize(c int) int64
	// String describes the map for configuration IDs.
	String() string
}

// Pow2Classes bins sizes by the next power of two, the classic Kingsley
// organisation: fast class computation, up to ~50% internal fragmentation.
type Pow2Classes struct {
	MinSize int64 // payload capacity of class 0 (power of two)
	MaxSize int64 // payload capacity of the last class (power of two)

	classes int
}

// NewPow2Classes builds a power-of-two map covering [minSize, maxSize].
func NewPow2Classes(minSize, maxSize int64) (*Pow2Classes, error) {
	if minSize <= 0 || maxSize < minSize {
		return nil, fmt.Errorf("alloc: bad pow2 class range [%d,%d]", minSize, maxSize)
	}
	if minSize&(minSize-1) != 0 || maxSize&(maxSize-1) != 0 {
		return nil, fmt.Errorf("alloc: pow2 class bounds must be powers of two")
	}
	n := 1
	for s := minSize; s < maxSize; s <<= 1 {
		n++
	}
	return &Pow2Classes{MinSize: minSize, MaxSize: maxSize, classes: n}, nil
}

// NumClasses implements SizeClasser.
func (p *Pow2Classes) NumClasses() int { return p.classes }

// ClassOf implements SizeClasser.
func (p *Pow2Classes) ClassOf(size int64) int {
	if size > p.MaxSize {
		return -1
	}
	c := 0
	s := p.MinSize
	for s < size {
		s <<= 1
		c++
	}
	return c
}

// ClassSize implements SizeClasser.
func (p *Pow2Classes) ClassSize(c int) int64 { return p.MinSize << uint(c) }

func (p *Pow2Classes) String() string {
	return fmt.Sprintf("pow2[%d..%d]", p.MinSize, p.MaxSize)
}

// LinearClasses bins sizes in fixed-width steps, trading more bins for
// bounded internal fragmentation (at most Step-1 bytes per block).
type LinearClasses struct {
	Step    int64 // bin width in bytes (word multiple)
	MaxSize int64 // payload capacity of the last class

	classes int
}

// NewLinearClasses builds a linear map with the given step covering
// (0, maxSize].
func NewLinearClasses(step, maxSize int64) (*LinearClasses, error) {
	if step <= 0 || maxSize < step {
		return nil, fmt.Errorf("alloc: bad linear class params step=%d max=%d", step, maxSize)
	}
	if step%simheap.WordSize != 0 {
		return nil, fmt.Errorf("alloc: linear class step %d not word-aligned", step)
	}
	if maxSize%step != 0 {
		return nil, fmt.Errorf("alloc: linear class max %d not a multiple of step %d", maxSize, step)
	}
	return &LinearClasses{Step: step, MaxSize: maxSize, classes: int(maxSize / step)}, nil
}

// NumClasses implements SizeClasser.
func (l *LinearClasses) NumClasses() int { return l.classes }

// ClassOf implements SizeClasser.
func (l *LinearClasses) ClassOf(size int64) int {
	if size > l.MaxSize {
		return -1
	}
	return int((size+l.Step-1)/l.Step) - 1
}

// ClassSize implements SizeClasser.
func (l *LinearClasses) ClassSize(c int) int64 { return int64(c+1) * l.Step }

func (l *LinearClasses) String() string {
	return fmt.Sprintf("linear[%d,%d]", l.Step, l.MaxSize)
}

// SingleClass places every size in one bin: the degenerate map used by
// unsegregated pools (a single free list for all sizes).
type SingleClass struct{}

// NumClasses implements SizeClasser.
func (SingleClass) NumClasses() int { return 1 }

// ClassOf implements SizeClasser.
func (SingleClass) ClassOf(size int64) int { return 0 }

// ClassSize returns 0: a single class has no fixed capacity; blocks keep
// their own sizes.
func (SingleClass) ClassSize(c int) int64 { return 0 }

func (SingleClass) String() string { return "single" }
