package alloc

import (
	"fmt"

	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
)

// GeneralPoolParams configures a variable-size (segregated-fit) pool.
type GeneralPoolParams struct {
	Layer   memhier.LayerID
	Classes SizeClasser
	Fit     FitPolicy
	Order   ListOrder
	Links   ListLinks

	Split          SplitMode
	SplitThreshold int64 // min remainder bytes for SplitThreshold

	Coalesce      CoalesceMode
	CoalesceEvery int // sweep period in frees for CoalesceDeferred

	Headers HeaderMode
	Growth  GrowthMode

	ChunkBytes int64 // first/constant arena extension size
	MaxBytes   int64 // cap on total arena bytes; 0 = unlimited

	// RoundToClass rounds every request up to its class capacity, turning
	// the pool into segregated storage (Kingsley-style) when combined
	// with ExactFit and no split/coalesce.
	RoundToClass bool
}

// Validate reports configuration errors.
func (p GeneralPoolParams) Validate() error {
	if p.Classes == nil {
		return fmt.Errorf("alloc: general pool needs a size-class map")
	}
	if !p.Fit.Valid() || !p.Order.Valid() || !p.Links.Valid() ||
		!p.Split.Valid() || !p.Coalesce.Valid() || !p.Headers.Valid() || !p.Growth.Valid() {
		return fmt.Errorf("alloc: general pool has an invalid policy value")
	}
	if p.Split == SplitThreshold && p.SplitThreshold <= 0 {
		return fmt.Errorf("alloc: split threshold must be positive")
	}
	if p.Coalesce == CoalesceDeferred && p.CoalesceEvery <= 0 {
		return fmt.Errorf("alloc: deferred coalesce period must be positive")
	}
	if p.ChunkBytes < 256 {
		return fmt.Errorf("alloc: chunk size %d too small", p.ChunkBytes)
	}
	if p.MaxBytes < 0 {
		return fmt.Errorf("alloc: negative arena cap")
	}
	return nil
}

// GeneralPool is a variable-size pool assembled from the policy modules.
type GeneralPool struct {
	params GeneralPoolParams
	ctx    *simheap.Context

	meta       *simheap.Region
	bins       []*FreeList
	arenas     []*arena
	arenaBytes int64
	nextChunk  int64

	liveByAddr map[uint64]*Block // payload address -> block
	frees      int               // since last deferred sweep

	// spare recycles Block objects between merges and splits (linked via
	// flNext), so steady-state split/coalesce churn allocates nothing.
	spare *Block
}

// takeSpare pops a recycled Block, or nil when none is available.
func (p *GeneralPool) takeSpare() *Block {
	n := p.spare
	if n != nil {
		p.spare = n.flNext
		n.flNext = nil
	}
	return n
}

// putSpare stashes an absorbed Block for reuse by the next split.
func (p *GeneralPool) putSpare(n *Block) {
	*n = Block{flNext: p.spare}
	p.spare = n
}

// NewGeneralPool reserves the pool's metadata area and returns the pool.
// The pool holds no arena memory until the first allocation forces growth.
func NewGeneralPool(ctx *simheap.Context, params GeneralPoolParams) (*GeneralPool, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := params.Classes.NumClasses()
	metaBytes := int64(n) * MetaWords * simheap.WordSize
	meta, err := ctx.Reserve(params.Layer, metaBytes)
	if err != nil {
		return nil, fmt.Errorf("alloc: reserving pool metadata: %w", err)
	}
	p := &GeneralPool{
		params:     params,
		ctx:        ctx,
		meta:       meta,
		bins:       make([]*FreeList, n),
		nextChunk:  params.ChunkBytes,
		liveByAddr: make(map[uint64]*Block),
	}
	for c := 0; c < n; c++ {
		addr := meta.Base() + uint64(c)*MetaWords*simheap.WordSize
		p.bins[c] = NewFreeList(ctx, params.Layer, addr, params.Order, params.Links)
	}
	return p, nil
}

// Layer returns the hierarchy layer the pool's arenas live in.
func (p *GeneralPool) Layer() memhier.LayerID { return p.params.Layer }

// overheadBytes is the per-block metadata size under the header mode.
func (p *GeneralPool) overheadBytes() int64 {
	return p.params.Headers.Words() * simheap.WordSize
}

// classOf returns the bin for a payload size, clamping oversize requests
// into the last bin.
func (p *GeneralPool) classOf(payload int64) int {
	c := p.params.Classes.ClassOf(payload)
	if c < 0 {
		return p.params.Classes.NumClasses() - 1
	}
	return c
}

// Malloc allocates size payload bytes.
func (p *GeneralPool) Malloc(size int64) (Ptr, int64, error) {
	if err := checkSize(size); err != nil {
		return Ptr{}, 0, err
	}
	payload := align(size, simheap.WordSize)
	class := p.params.Classes.ClassOf(payload)
	if class < 0 {
		class = p.params.Classes.NumClasses() - 1
	} else if p.params.RoundToClass {
		if cs := p.params.Classes.ClassSize(class); cs > payload {
			payload = cs
		}
	}
	need := payload + p.overheadBytes()
	p.ctx.Compute(2) // size-class computation

	b := p.bins[class].Take(p.params.Fit, need)
	if b == nil {
		// Escalate to larger bins; any block there fits, so first-fit.
		for c := class + 1; c < len(p.bins) && b == nil; c++ {
			b = p.bins[c].Take(FirstFit, need)
		}
	}
	if b == nil {
		var err error
		if p.params.RoundToClass && p.params.Classes.ClassOf(payload) >= 0 {
			// Segregated storage: carve the new chunk into class-size
			// blocks up front (Kingsley page refill).
			b, err = p.growCarved(need)
		} else {
			b, err = p.grow(need)
		}
		if err != nil {
			return Ptr{}, 0, err
		}
	}

	p.maybeSplit(b, need)
	b.free = false
	p.writeBlockMeta(b) // allocated header (+footer)
	payloadAddr := b.addr + simheap.WordSize
	p.liveByAddr[payloadAddr] = b
	return Ptr{Layer: p.params.Layer, Addr: payloadAddr}, b.size, nil
}

// maybeSplit splits b down to need bytes under the split policy.
func (p *GeneralPool) maybeSplit(b *Block, need int64) {
	rem := b.size - need
	minRem := p.overheadBytes() + simheap.WordSize
	split := false
	switch p.params.Split {
	case SplitAlways:
		split = rem >= minRem
	case SplitThreshold:
		t := p.params.SplitThreshold
		if t < minRem {
			t = minRem
		}
		split = rem >= t
	}
	if !split {
		return
	}
	rest := splitBlock(b, need, p.takeSpare())
	p.writeBlockMeta(rest) // remainder's header (+footer)
	p.pushToBin(rest)
}

// pushToBin inserts a free block into the bin for its payload capacity.
func (p *GeneralPool) pushToBin(b *Block) {
	capacity := b.size - p.overheadBytes()
	p.bins[p.classOf(capacity)].Push(b)
}

// writeBlockMeta charges the header (and footer) writes for b.
func (p *GeneralPool) writeBlockMeta(b *Block) {
	p.ctx.Write(p.params.Layer, b.addr, 1)
	if p.params.Headers == HeaderBoundaryTag {
		p.ctx.Write(p.params.Layer, b.End()-simheap.WordSize, 1)
	}
}

// grow reserves a new arena able to hold at least need bytes and returns
// its spanning free block (not yet on any bin).
func (p *GeneralPool) grow(need int64) (*Block, error) {
	size := p.nextChunk
	if size < need {
		size = align(need, simheap.WordSize)
	}
	if p.params.MaxBytes > 0 && p.arenaBytes+size > p.params.MaxBytes {
		// Try a last exact-size extension inside the budget.
		size = p.params.MaxBytes - p.arenaBytes
		if size < need {
			return nil, fmt.Errorf("%w: pool budget exhausted", ErrOutOfMemory)
		}
	}
	a, b, err := newArena(p.ctx, p.params.Layer, size)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrOutOfMemory, err)
	}
	p.arenas = append(p.arenas, a)
	p.arenaBytes += size
	if p.params.Growth == GrowDouble {
		p.nextChunk *= 2
	}
	p.writeBlockMeta(b) // initialise the spanning block's header
	return b, nil
}

// growCarved reserves a new arena and pre-splits it into blocks of
// exactly need bytes (the last one absorbs any sub-block tail), pushing
// all but the returned block onto their bin. This is the page-refill
// behaviour of segregated-storage allocators.
func (p *GeneralPool) growCarved(need int64) (*Block, error) {
	b, err := p.grow(need)
	if err != nil {
		return nil, err
	}
	first := b
	for b.size >= 2*need {
		rest := splitBlock(b, need, p.takeSpare())
		p.writeBlockMeta(b)
		if b != first {
			p.pushToBin(b)
		}
		b = rest
	}
	p.writeBlockMeta(b)
	if b != first {
		p.pushToBin(b)
	}
	return first, nil
}

// Free releases the allocation at payload address addr.
func (p *GeneralPool) Free(addr uint64) (int64, error) {
	b, ok := p.liveByAddr[addr]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	delete(p.liveByAddr, addr)
	p.ctx.Read(p.params.Layer, b.addr, 1) // header read: size/status
	released := b.size
	b.free = true
	p.writeBlockMeta(b) // mark free

	if p.params.Coalesce == CoalesceImmediate {
		b = p.coalesceNeighbours(b)
	}
	p.pushToBin(b)

	if p.params.Coalesce == CoalesceDeferred {
		p.frees++
		if p.frees >= p.params.CoalesceEvery {
			p.frees = 0
			p.sweep()
		}
	}
	return released, nil
}

// coalesceNeighbours merges b with its free physical neighbours and
// returns the merged block (not on any bin). Backward merging needs the
// boundary-tag footer to locate the predecessor.
func (p *GeneralPool) coalesceNeighbours(b *Block) *Block {
	if p.params.Headers == HeaderBoundaryTag && b.prevAdj != nil {
		// Read the predecessor's footer, sitting just before b.
		p.ctx.Read(p.params.Layer, b.addr-simheap.WordSize, 1)
		if prev := b.prevAdj; prev.free && prev.list != nil {
			prev.list.Remove(prev)
			p.putSpare(mergeWithNext(prev))
			b = prev
			p.writeBlockMeta(b)
		}
	}
	if next := b.nextAdj; next != nil {
		// Read the successor's header at addr+size.
		p.ctx.Read(p.params.Layer, b.End(), 1)
		if next.free && next.list != nil {
			next.list.Remove(next)
			p.putSpare(mergeWithNext(b))
			p.writeBlockMeta(b)
		}
	}
	return b
}

// sweep walks every arena merging runs of adjacent free blocks — the
// deferred-coalescing pass.
func (p *GeneralPool) sweep() {
	for _, a := range p.arenas {
		for b := a.first; b != nil; b = b.nextAdj {
			p.ctx.Read(p.params.Layer, b.addr, 1) // header read
			if !b.free {
				continue
			}
			merged := false
			for n := b.nextAdj; n != nil && n.free; n = b.nextAdj {
				p.ctx.Read(p.params.Layer, n.addr, 1)
				if n.list != nil {
					n.list.Remove(n)
				}
				if b.list != nil {
					b.list.Remove(b)
				}
				p.putSpare(mergeWithNext(b))
				merged = true
			}
			if merged {
				p.writeBlockMeta(b)
				if b.list == nil {
					p.pushToBin(b)
				}
			}
		}
	}
}

// Owns reports whether addr is a live allocation of this pool.
func (p *GeneralPool) Owns(addr uint64) bool {
	_, ok := p.liveByAddr[addr]
	return ok
}

// LiveBlocks returns the number of live allocations.
func (p *GeneralPool) LiveBlocks() int { return len(p.liveByAddr) }

// ArenaBytes returns the total bytes reserved for arenas.
func (p *GeneralPool) ArenaBytes() int64 { return p.arenaBytes }

// FreeBlocks returns the total number of blocks across all bins
// (simulator introspection; charges nothing).
func (p *GeneralPool) FreeBlocks() int {
	n := 0
	for _, bin := range p.bins {
		n += bin.Len()
	}
	return n
}

// checkInvariants verifies simulator-side consistency: adjacency chains
// cover each arena exactly, free blocks are on bins, live blocks are not.
// Tests call it after operation sequences.
func (p *GeneralPool) checkInvariants() error {
	for i, a := range p.arenas {
		addr := a.region.Base()
		var total int64
		for b := a.first; b != nil; b = b.nextAdj {
			if b.addr != addr {
				return fmt.Errorf("arena %d: block at %#x, expected %#x", i, b.addr, addr)
			}
			if b.size <= 0 {
				return fmt.Errorf("arena %d: non-positive block size %d", i, b.size)
			}
			if b.free && b.list == nil {
				return fmt.Errorf("arena %d: free block %v not on a bin", i, b)
			}
			if !b.free && b.list != nil {
				return fmt.Errorf("arena %d: live block %v on a bin", i, b)
			}
			if b.nextAdj != nil && b.nextAdj.prevAdj != b {
				return fmt.Errorf("arena %d: adjacency links broken at %v", i, b)
			}
			addr = b.End()
			total += b.size
		}
		if total != a.region.Size() {
			return fmt.Errorf("arena %d: blocks cover %d of %d bytes", i, total, a.region.Size())
		}
	}
	return nil
}
