package alloc_test

import (
	"fmt"
	"log"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
)

// Build a custom allocator — a dedicated 74-byte pool on the scratchpad
// over a Kingsley-style general pool — and run a few operations on the
// simulated heap.
func ExampleConfig_Build() {
	hier := memhier.EmbeddedSoC()
	ctx := simheap.NewContext(hier)

	cfg := alloc.Config{
		Label: "example",
		Fixed: []alloc.FixedConfig{{
			SlotBytes: 74, MatchLo: 74, MatchHi: 74,
			Layer: memhier.LayerScratchpad,
			Order: alloc.LIFO, Links: alloc.SingleLink,
			Growth: alloc.GrowFixedChunk, ChunkSlots: 32, MaxBytes: 16 * 1024,
		}},
		General: alloc.GeneralConfig{
			Layer: memhier.LayerDRAM, Classes: "pow2:16:65536", RoundToClass: true,
			Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
			Split: alloc.SplitNever, Coalesce: alloc.CoalesceNever,
			Headers: alloc.HeaderMinimal, Growth: alloc.GrowFixedChunk,
			ChunkBytes: 8 * 1024,
		},
	}
	a, err := cfg.Build(ctx)
	if err != nil {
		log.Fatal(err)
	}

	control, _ := a.Malloc(74) // routed to the scratchpad pool
	frame, _ := a.Malloc(1500) // falls through to the DRAM general pool
	fmt.Println("control on layer", control.Layer)
	fmt.Println("frame on layer", frame.Layer)

	a.Free(control)
	a.Free(frame)
	fmt.Println("live blocks:", a.Stats().LiveBlocks)
	// Output:
	// control on layer 0
	// frame on layer 1
	// live blocks: 0
}

// The classic OS allocators are presets of the same framework.
func ExampleKingsleyConfig() {
	cfg := alloc.KingsleyConfig(memhier.LayerDRAM)
	fmt.Println(cfg.Label, cfg.General.Classes, cfg.General.RoundToClass)
	// Output: kingsley pow2:16:65536 true
}
