package alloc

import (
	"fmt"

	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
)

// FreeList simulates one intrusive free list of a pool. On the target the
// head/tail/rover pointers live in the pool's metadata area and the link
// words live inside the free blocks themselves; every operation charges
// the word reads and writes the chosen discipline (order × linkage) would
// perform. The Go-side doubly-linked representation exists only so the
// simulator itself stays O(1) where the target is O(1).
type FreeList struct {
	ctx      *simheap.Context
	layer    memhier.LayerID
	metaAddr uint64 // address of the head word; tail at +1 word, rover at +2

	order ListOrder
	links ListLinks

	head, tail *Block
	rover      *Block // next-fit resume point
	count      int
}

// MetaWords is the number of metadata words each FreeList occupies in its
// pool's metadata area (head, tail, rover).
const MetaWords = 3

// NewFreeList returns an empty free list whose pointers live at metaAddr
// in the given layer.
func NewFreeList(ctx *simheap.Context, layer memhier.LayerID, metaAddr uint64, order ListOrder, links ListLinks) *FreeList {
	return &FreeList{ctx: ctx, layer: layer, metaAddr: metaAddr, order: order, links: links}
}

// Len returns the number of blocks on the list.
func (l *FreeList) Len() int { return l.count }

// Empty reports whether the list has no blocks.
func (l *FreeList) Empty() bool { return l.count == 0 }

// Head returns the first block without charging accesses (simulator
// introspection only).
func (l *FreeList) Head() *Block { return l.head }

// metaRead charges one pool-metadata word read (head/tail/rover).
func (l *FreeList) metaRead(word uint64)  { l.ctx.Read(l.layer, l.metaAddr+word*simheap.WordSize, 1) }
func (l *FreeList) metaWrite(word uint64) { l.ctx.Write(l.layer, l.metaAddr+word*simheap.WordSize, 1) }

// blockRead charges n word reads inside block b (header or link words).
func (l *FreeList) blockRead(b *Block, n uint64)  { l.ctx.Read(l.layer, b.addr, n) }
func (l *FreeList) blockWrite(b *Block, n uint64) { l.ctx.Write(l.layer, b.addr, n) }

// Push inserts b according to the list order, charging the discipline's
// accesses. b must be free and not on any list.
func (l *FreeList) Push(b *Block) {
	if b.list != nil {
		panic(fmt.Sprintf("alloc: %v already on a list", b))
	}
	if !b.free {
		panic(fmt.Sprintf("alloc: push of allocated %v", b))
	}
	switch l.order {
	case LIFO:
		// new.next = head; head = new.
		l.metaRead(0)
		l.blockWrite(b, 1) // link word
		l.metaWrite(0)
		if l.links == DoubleLink {
			l.blockWrite(b, 1) // prev = nil
			if l.head != nil {
				l.blockWrite(l.head, 1) // old head's prev = new
			}
		}
		l.insertFront(b)
	case FIFO:
		// tail.next = new; tail = new.
		l.metaRead(1)
		l.blockWrite(b, 1) // new.next = nil
		if l.tail == nil {
			l.metaWrite(0) // head = new
		} else {
			l.blockWrite(l.tail, 1) // old tail's next
		}
		l.metaWrite(1) // tail = new
		if l.links == DoubleLink {
			l.blockWrite(b, 1) // prev link
		}
		l.insertBack(b)
	case AddrOrder:
		// Walk from head to the insertion point.
		l.metaRead(0)
		var prev *Block
		cur := l.head
		for cur != nil && cur.addr < b.addr {
			l.blockRead(cur, 1) // read cur.next
			prev = cur
			cur = cur.flNext
		}
		l.blockWrite(b, 1) // b.next = cur
		if prev == nil {
			l.metaWrite(0)
		} else {
			l.blockWrite(prev, 1)
		}
		if l.links == DoubleLink {
			l.blockWrite(b, 1) // b.prev
			if cur != nil {
				l.blockWrite(cur, 1) // cur.prev = b
			}
		}
		l.insertBetween(prev, b, cur)
	default:
		panic("alloc: unknown list order")
	}
	b.list = l
	l.count++
}

// PopHead removes and returns the first block, or nil (charging only the
// head read) when empty.
func (l *FreeList) PopHead() *Block {
	l.metaRead(0)
	b := l.head
	if b == nil {
		return nil
	}
	l.blockRead(b, 1) // read b.next
	l.metaWrite(0)    // head = b.next
	if l.links == DoubleLink && b.flNext != nil {
		l.blockWrite(b.flNext, 1) // new head's prev = nil
	}
	if l.order == FIFO && b.flNext == nil {
		l.metaWrite(1) // tail = nil
	}
	l.unlink(b)
	return b
}

// Remove unlinks b from the list. With single linkage the target must
// rescan from the head to find the predecessor, and the scan is charged;
// with double linkage removal is O(1).
func (l *FreeList) Remove(b *Block) {
	if b.list != l {
		panic(fmt.Sprintf("alloc: %v not on this list", b))
	}
	switch l.links {
	case DoubleLink:
		l.blockRead(b, 2) // prev and next links
		if b.flPrev == nil {
			l.metaWrite(0)
		} else {
			l.blockWrite(b.flPrev, 1)
		}
		if b.flNext != nil {
			l.blockWrite(b.flNext, 1)
		}
	default: // SingleLink: scan for predecessor
		l.metaRead(0)
		cur := l.head
		for cur != nil && cur != b {
			l.blockRead(cur, 1)
			cur = cur.flNext
		}
		l.blockRead(b, 1) // b.next
		if b.flPrev == nil {
			l.metaWrite(0)
		} else {
			l.blockWrite(b.flPrev, 1)
		}
	}
	if l.order == FIFO && b.flNext == nil {
		l.metaWrite(1) // tail moved
	}
	l.unlink(b)
}

// removeAfterScan unlinks b when the caller's search already visited its
// predecessor (so no rescan is charged even with single linkage).
func (l *FreeList) removeAfterScan(b *Block) {
	if b.list != l {
		panic(fmt.Sprintf("alloc: %v not on this list", b))
	}
	if b.flPrev == nil {
		l.metaWrite(0)
	} else {
		l.blockWrite(b.flPrev, 1)
	}
	if l.links == DoubleLink && b.flNext != nil {
		l.blockWrite(b.flNext, 1)
	}
	if l.order == FIFO && b.flNext == nil {
		l.metaWrite(1)
	}
	l.unlink(b)
}

// Take searches the list under the fit policy for a block with total size
// >= need (== need for ExactFit), unlinks and returns it; nil when no
// block qualifies. The traversal charges two word reads per visited block
// (header for the size, link word to advance).
func (l *FreeList) Take(fit FitPolicy, need int64) *Block {
	l.metaRead(0)
	if l.head == nil {
		return nil
	}
	var found *Block
	switch fit {
	case FirstFit, ExactFit:
		for cur := l.head; cur != nil; cur = cur.flNext {
			l.blockRead(cur, 2)
			if fits(fit, cur.size, need) {
				found = cur
				break
			}
		}
	case NextFit:
		l.metaRead(2) // rover
		start := l.rover
		if start == nil || start.list != l {
			start = l.head
		}
		cur := start
		for {
			l.blockRead(cur, 2)
			if fits(fit, cur.size, need) {
				found = cur
				break
			}
			cur = cur.flNext
			if cur == nil {
				cur = l.head // wrap: re-read head pointer
				l.metaRead(0)
			}
			if cur == start {
				break
			}
		}
		if found != nil {
			l.rover = found.flNext
			l.metaWrite(2)
		}
	case BestFit, WorstFit:
		for cur := l.head; cur != nil; cur = cur.flNext {
			l.blockRead(cur, 2)
			if cur.size < need {
				continue
			}
			if found == nil ||
				(fit == BestFit && cur.size < found.size) ||
				(fit == WorstFit && cur.size > found.size) {
				found = cur
			}
		}
	default:
		panic("alloc: unknown fit policy")
	}
	if found == nil {
		return nil
	}
	// The search already visited the winner's predecessor (fit scans
	// remember it on the target), so unlinking is O(1) in all cases.
	l.removeAfterScan(found)
	return found
}

func fits(fit FitPolicy, have, need int64) bool {
	if fit == ExactFit {
		return have == need
	}
	return have >= need
}

// --- Go-side linkage maintenance (no charging) ---

func (l *FreeList) insertFront(b *Block) { l.insertBetween(nil, b, l.head) }
func (l *FreeList) insertBack(b *Block)  { l.insertBetween(l.tail, b, nil) }

func (l *FreeList) insertBetween(prev, b, next *Block) {
	b.flPrev, b.flNext = prev, next
	if prev == nil {
		l.head = b
	} else {
		prev.flNext = b
	}
	if next == nil {
		l.tail = b
	} else {
		next.flPrev = b
	}
}

func (l *FreeList) unlink(b *Block) {
	if b.flPrev == nil {
		l.head = b.flNext
	} else {
		b.flPrev.flNext = b.flNext
	}
	if b.flNext == nil {
		l.tail = b.flPrev
	} else {
		b.flNext.flPrev = b.flPrev
	}
	if l.rover == b {
		l.rover = b.flNext
	}
	b.flPrev, b.flNext, b.list = nil, nil, nil
	l.count--
}
