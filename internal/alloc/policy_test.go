package alloc

import (
	"encoding/json"
	"testing"
)

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, f := range []FitPolicy{FirstFit, NextFit, BestFit, WorstFit, ExactFit} {
		got, err := ParseFitPolicy(f.String())
		if err != nil || got != f {
			t.Errorf("fit %v round trip: %v %v", f, got, err)
		}
	}
	for _, o := range []ListOrder{LIFO, FIFO, AddrOrder} {
		got, err := ParseListOrder(o.String())
		if err != nil || got != o {
			t.Errorf("order %v round trip: %v %v", o, got, err)
		}
	}
	for _, l := range []ListLinks{SingleLink, DoubleLink} {
		got, err := ParseListLinks(l.String())
		if err != nil || got != l {
			t.Errorf("links %v round trip: %v %v", l, got, err)
		}
	}
}

func TestPolicyParseErrors(t *testing.T) {
	if _, err := ParseFitPolicy("bogus"); err == nil {
		t.Error("bogus fit accepted")
	}
	if _, err := ParseListOrder("bogus"); err == nil {
		t.Error("bogus order accepted")
	}
	if _, err := ParseListLinks("bogus"); err == nil {
		t.Error("bogus links accepted")
	}
}

func TestPolicyValid(t *testing.T) {
	if !BestFit.Valid() || FitPolicy(99).Valid() {
		t.Error("fit Valid wrong")
	}
	if !AddrOrder.Valid() || ListOrder(99).Valid() {
		t.Error("order Valid wrong")
	}
	if !DoubleLink.Valid() || ListLinks(99).Valid() {
		t.Error("links Valid wrong")
	}
	if !CoalesceDeferred.Valid() || CoalesceMode(99).Valid() {
		t.Error("coalesce Valid wrong")
	}
	if !SplitThreshold.Valid() || SplitMode(99).Valid() {
		t.Error("split Valid wrong")
	}
	if !HeaderBoundaryTag.Valid() || HeaderMode(99).Valid() {
		t.Error("header Valid wrong")
	}
	if !GrowDouble.Valid() || GrowthMode(99).Valid() {
		t.Error("growth Valid wrong")
	}
}

func TestHeaderWords(t *testing.T) {
	if HeaderMinimal.Words() != 1 || HeaderBoundaryTag.Words() != 2 {
		t.Fatal("header words wrong")
	}
}

func TestInvalidEnumString(t *testing.T) {
	if s := FitPolicy(42).String(); s != "fit(invalid:42)" {
		t.Fatalf("invalid enum string %q", s)
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	type all struct {
		F FitPolicy    `json:"f"`
		O ListOrder    `json:"o"`
		L ListLinks    `json:"l"`
		C CoalesceMode `json:"c"`
		S SplitMode    `json:"s"`
		H HeaderMode   `json:"h"`
		G GrowthMode   `json:"g"`
	}
	in := all{BestFit, AddrOrder, DoubleLink, CoalesceDeferred, SplitThreshold, HeaderBoundaryTag, GrowDouble}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"f":"best","o":"addr","l":"double","c":"deferred","s":"threshold","h":"btag","g":"double"}`
	if string(data) != want {
		t.Fatalf("json %s want %s", data, want)
	}
	var out all
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestPolicyJSONBadValue(t *testing.T) {
	var f FitPolicy
	if err := json.Unmarshal([]byte(`"nope"`), &f); err == nil {
		t.Fatal("bad fit value accepted")
	}
	var c CoalesceMode
	if err := json.Unmarshal([]byte(`"nope"`), &c); err == nil {
		t.Fatal("bad coalesce value accepted")
	}
}

func TestPolicyMarshalInvalid(t *testing.T) {
	if _, err := FitPolicy(42).MarshalText(); err == nil {
		t.Fatal("invalid enum marshalled")
	}
}
