package alloc

// Config presets for the OS-style general-purpose baselines the paper's
// custom configurations are compared against. Expressing them as presets
// of the same parameterized framework mirrors the composable-allocator
// observation (Berger et al., PLDI'01) that classic allocators are points
// in the same design space.

// KingsleyConfig returns a Kingsley-style power-of-two segregated-storage
// allocator (the BSD 4.2 malloc family): requests round up to the next
// power of two, each class keeps its own LIFO free list, blocks are never
// split or coalesced. Very fast, worst-case ~2x internal fragmentation.
// layer names the hierarchy layer the whole heap lives in.
func KingsleyConfig(layer string) Config {
	return Config{
		Label: "kingsley",
		General: GeneralConfig{
			Layer:        layer,
			Classes:      "pow2:16:65536",
			Fit:          ExactFit,
			Order:        LIFO,
			Links:        SingleLink,
			Split:        SplitNever,
			Coalesce:     CoalesceNever,
			Headers:      HeaderMinimal,
			Growth:       GrowFixedChunk,
			ChunkBytes:   16 * 1024,
			RoundToClass: true,
		},
	}
}

// LeaConfig returns a Lea-style (dlmalloc-like) allocator: segregated
// best-fit over fine-grained classes, boundary tags, immediate
// coalescing and always-split — the de facto general-purpose heap in
// embedded OS C libraries. Low fragmentation, more bookkeeping accesses.
func LeaConfig(layer string) Config {
	return Config{
		Label: "lea",
		General: GeneralConfig{
			Layer:      layer,
			Classes:    "linear:8:512",
			Fit:        BestFit,
			Order:      FIFO,
			Links:      DoubleLink,
			Split:      SplitAlways,
			Coalesce:   CoalesceImmediate,
			Headers:    HeaderBoundaryTag,
			Growth:     GrowFixedChunk,
			ChunkBytes: 16 * 1024,
		},
	}
}

// SimpleFirstFitConfig returns the most naive heap: one address-ordered
// free list, first fit, immediate coalescing — the textbook K&R malloc.
func SimpleFirstFitConfig(layer string) Config {
	return Config{
		Label: "firstfit",
		General: GeneralConfig{
			Layer:      layer,
			Classes:    "single",
			Fit:        FirstFit,
			Order:      AddrOrder,
			Links:      SingleLink,
			Split:      SplitAlways,
			Coalesce:   CoalesceImmediate,
			Headers:    HeaderBoundaryTag,
			Growth:     GrowFixedChunk,
			ChunkBytes: 16 * 1024,
		},
	}
}
