// Package alloc implements the parameterized dynamic-memory allocator
// framework — the Go counterpart of the paper's C++ template/mixin library
// of ">50 modules". Allocators are assembled from orthogonal policy
// modules (free-list order and linkage, fit policy, size-class map,
// splitting, coalescing, header layout, pool growth) into any number of
// custom configurations, each of which can map its pools onto arbitrary
// layers of the simulated memory hierarchy.
//
// Allocators do not manage real memory: they run on the simheap substrate
// and charge every word of metadata they would touch on the target, so
// profiled access counts, footprint, energy and cycle figures reflect the
// behaviour of the modelled implementation.
package alloc

import (
	"errors"
	"fmt"

	"dmexplore/internal/memhier"
)

// Ptr identifies a live allocation: the layer holding it and the payload
// address within that layer's address space. The zero Ptr is never a
// valid allocation result.
type Ptr struct {
	Layer memhier.LayerID
	Addr  uint64
}

// Stats is a point-in-time summary of an allocator's internal accounting.
// Footprint lives in the simheap counters; these figures add the
// allocator's own view: live allocations, requested bytes (for
// fragmentation analysis) and operation counts.
type Stats struct {
	Mallocs       uint64 // successful Malloc calls
	Frees         uint64 // successful Free calls
	Failures      uint64 // Malloc calls that returned ErrOutOfMemory
	LiveBlocks    int64  // currently allocated blocks
	RequestedLive int64  // sum of requested sizes of live blocks
	AllocatedLive int64  // sum of actually reserved block sizes (>= requested)
}

// InternalFragmentation returns the fraction of live allocated bytes lost
// to rounding (0 when nothing is live).
func (s Stats) InternalFragmentation() float64 {
	if s.AllocatedLive == 0 {
		return 0
	}
	return 1 - float64(s.RequestedLive)/float64(s.AllocatedLive)
}

// Allocator is a dynamic-memory allocator configuration under simulation.
type Allocator interface {
	// Name returns a short human-readable identifier of the configuration.
	Name() string
	// Malloc allocates size bytes and returns the payload pointer.
	// It returns ErrOutOfMemory when no pool can satisfy the request.
	Malloc(size int64) (Ptr, error)
	// Free releases a pointer previously returned by Malloc. Freeing an
	// unknown or already-freed pointer returns ErrBadFree.
	Free(p Ptr) error
	// Where reports whether p is a live allocation and, if so, echoes it
	// (profiling uses it to charge application data accesses).
	Where(p Ptr) (Ptr, bool)
	// SizeOf returns the requested size of the live allocation p.
	SizeOf(p Ptr) (int64, bool)
	// Stats returns the allocator's accounting snapshot.
	Stats() Stats
}

// Allocation errors.
var (
	// ErrOutOfMemory reports that no pool could satisfy a request, e.g.
	// because a bounded layer is exhausted.
	ErrOutOfMemory = errors.New("alloc: out of memory")
	// ErrBadFree reports a free of an unknown or already-freed pointer.
	ErrBadFree = errors.New("alloc: bad free")
	// ErrBadSize reports a non-positive allocation size.
	ErrBadSize = errors.New("alloc: bad size")
)

// align rounds n up to the next multiple of a (a must be a power of two).
func align(n int64, a int64) int64 {
	return (n + a - 1) &^ (a - 1)
}

// checkSize validates a requested allocation size.
func checkSize(size int64) error {
	if size <= 0 {
		return fmt.Errorf("%w: %d", ErrBadSize, size)
	}
	return nil
}
