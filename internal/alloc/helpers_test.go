package alloc

import (
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
)

// newCtx returns a fresh simulation context over h.
func newCtx(t *testing.T, h *memhier.Hierarchy) *simheap.Context {
	t.Helper()
	return simheap.NewContext(h)
}
