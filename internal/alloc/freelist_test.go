package alloc

import (
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/simheap"
)

// testCtx returns a context over a single unbounded test layer.
func testCtx(t *testing.T) *simheap.Context {
	t.Helper()
	h, err := memhier.New(memhier.Layer{
		Name: "mem", ReadEnergy: 1, WriteEnergy: 1, ReadCycles: 1, WriteCycles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return simheap.NewContext(h)
}

// twoLayerCtx returns a context with a tiny bounded "sp" layer (index 0)
// and an unbounded "dram" layer (index 1).
func twoLayerCtx(t *testing.T, spBytes int64) *simheap.Context {
	t.Helper()
	h, err := memhier.New(
		memhier.Layer{Name: "sp", Capacity: spBytes, ReadEnergy: 0.3, WriteEnergy: 0.3, ReadCycles: 1, WriteCycles: 1},
		memhier.Layer{Name: "dram", ReadEnergy: 8, WriteEnergy: 8, ReadCycles: 16, WriteCycles: 16},
	)
	if err != nil {
		t.Fatal(err)
	}
	return simheap.NewContext(h)
}

func freeBlock(addr uint64, size int64) *Block {
	return &Block{addr: addr, size: size, free: true}
}

func newTestList(ctx *simheap.Context, order ListOrder, links ListLinks) *FreeList {
	return NewFreeList(ctx, 0, 0, order, links)
}

func TestFreeListLIFO(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, LIFO, SingleLink)
	a, b, c := freeBlock(0, 32), freeBlock(32, 32), freeBlock(64, 32)
	l.Push(a)
	l.Push(b)
	l.Push(c)
	if l.Len() != 3 {
		t.Fatalf("len %d", l.Len())
	}
	// LIFO: pops in reverse push order.
	if l.PopHead() != c || l.PopHead() != b || l.PopHead() != a {
		t.Fatal("LIFO order wrong")
	}
	if !l.Empty() || l.PopHead() != nil {
		t.Fatal("not empty after pops")
	}
}

func TestFreeListFIFO(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, FIFO, SingleLink)
	a, b, c := freeBlock(0, 32), freeBlock(32, 32), freeBlock(64, 32)
	l.Push(a)
	l.Push(b)
	l.Push(c)
	if l.PopHead() != a || l.PopHead() != b || l.PopHead() != c {
		t.Fatal("FIFO order wrong")
	}
}

func TestFreeListAddrOrder(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, AddrOrder, SingleLink)
	b1, b2, b3 := freeBlock(64, 32), freeBlock(0, 32), freeBlock(32, 32)
	l.Push(b1)
	l.Push(b2)
	l.Push(b3)
	// Must pop in ascending address order regardless of push order.
	if got := l.PopHead(); got != b2 {
		t.Fatalf("first pop %v", got)
	}
	if got := l.PopHead(); got != b3 {
		t.Fatalf("second pop %v", got)
	}
	if got := l.PopHead(); got != b1 {
		t.Fatalf("third pop %v", got)
	}
}

func TestFreeListPushPanics(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, LIFO, SingleLink)
	b := freeBlock(0, 32)
	l.Push(b)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double push did not panic")
			}
		}()
		l.Push(b)
	}()
	allocated := &Block{addr: 64, size: 32, free: false}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("push of allocated block did not panic")
			}
		}()
		l.Push(allocated)
	}()
}

func TestFreeListRemove(t *testing.T) {
	for _, links := range []ListLinks{SingleLink, DoubleLink} {
		ctx := testCtx(t)
		l := newTestList(ctx, LIFO, links)
		a, b, c := freeBlock(0, 32), freeBlock(32, 32), freeBlock(64, 32)
		l.Push(a)
		l.Push(b)
		l.Push(c)
		l.Remove(b) // middle
		if l.Len() != 2 {
			t.Fatalf("%v: len %d", links, l.Len())
		}
		if l.PopHead() != c || l.PopHead() != a {
			t.Fatalf("%v: wrong survivors", links)
		}
	}
}

func TestFreeListRemoveHeadAndTail(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, FIFO, DoubleLink)
	a, b, c := freeBlock(0, 32), freeBlock(32, 32), freeBlock(64, 32)
	l.Push(a)
	l.Push(b)
	l.Push(c)
	l.Remove(a) // head
	l.Remove(c) // tail
	if l.Len() != 1 || l.Head() != b {
		t.Fatal("head/tail removal wrong")
	}
	l.Remove(b)
	if !l.Empty() {
		t.Fatal("not empty")
	}
	// Push after emptying must work (tail pointer reset).
	l.Push(freeBlock(96, 32))
	if l.Len() != 1 {
		t.Fatal("push after empty failed")
	}
}

func TestFreeListRemoveWrongListPanics(t *testing.T) {
	ctx := testCtx(t)
	l1 := newTestList(ctx, LIFO, SingleLink)
	l2 := NewFreeList(ctx, 0, 64, LIFO, SingleLink)
	b := freeBlock(0, 32)
	l1.Push(b)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-list remove did not panic")
		}
	}()
	l2.Remove(b)
}

func TestTakeFirstFit(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, FIFO, SingleLink)
	l.Push(freeBlock(0, 16))
	l.Push(freeBlock(16, 64))
	l.Push(freeBlock(80, 32))
	got := l.Take(FirstFit, 32)
	if got == nil || got.size != 64 {
		t.Fatalf("first fit took %v", got)
	}
	if l.Len() != 2 {
		t.Fatalf("len %d", l.Len())
	}
}

func TestTakeBestFit(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, FIFO, SingleLink)
	l.Push(freeBlock(0, 128))
	l.Push(freeBlock(128, 40))
	l.Push(freeBlock(168, 64))
	got := l.Take(BestFit, 32)
	if got == nil || got.size != 40 {
		t.Fatalf("best fit took %v", got)
	}
}

func TestTakeWorstFit(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, FIFO, SingleLink)
	l.Push(freeBlock(0, 128))
	l.Push(freeBlock(128, 40))
	got := l.Take(WorstFit, 32)
	if got == nil || got.size != 128 {
		t.Fatalf("worst fit took %v", got)
	}
}

func TestTakeExactFit(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, LIFO, SingleLink)
	l.Push(freeBlock(0, 64))
	if got := l.Take(ExactFit, 32); got != nil {
		t.Fatalf("exact fit matched %v for 32", got)
	}
	if got := l.Take(ExactFit, 64); got == nil || got.size != 64 {
		t.Fatalf("exact fit missed: %v", got)
	}
}

func TestTakeNoFit(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, LIFO, SingleLink)
	l.Push(freeBlock(0, 16))
	if got := l.Take(FirstFit, 32); got != nil {
		t.Fatalf("took too-small block %v", got)
	}
	if l.Len() != 1 {
		t.Fatal("failed take modified list")
	}
}

func TestTakeNextFitRoves(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, FIFO, SingleLink)
	a, b, c := freeBlock(0, 32), freeBlock(32, 32), freeBlock(64, 32)
	l.Push(a)
	l.Push(b)
	l.Push(c)
	first := l.Take(NextFit, 32)
	if first != a {
		t.Fatalf("first next-fit take %v", first)
	}
	// Rover advanced past a: the next take starts at b.
	second := l.Take(NextFit, 32)
	if second != b {
		t.Fatalf("second next-fit take %v (rover did not advance)", second)
	}
	third := l.Take(NextFit, 32)
	if third != c {
		t.Fatalf("third next-fit take %v", third)
	}
}

func TestTakeNextFitWraps(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, FIFO, SingleLink)
	a := freeBlock(0, 64)
	b := freeBlock(64, 16)
	l.Push(a)
	l.Push(b)
	if got := l.Take(NextFit, 48); got != a {
		t.Fatalf("take %v", got)
	}
	// Rover now points at b (16 bytes). A request for 48 must wrap and
	// fail (nothing fits), not loop forever.
	if got := l.Take(NextFit, 48); got != nil {
		t.Fatalf("wrapped take found %v", got)
	}
	// A request for 16 starting at rover should find b.
	if got := l.Take(NextFit, 16); got != b {
		t.Fatalf("rover take %v", got)
	}
}

// Access accounting checks: the discipline determines the charge.
func TestFreeListChargesLIFOPush(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, LIFO, SingleLink)
	before := ctx.Counters(0)
	l.Push(freeBlock(0, 32))
	after := ctx.Counters(0)
	// LIFO single push: 1 meta read, 1 block write + 1 meta write.
	if r := after.Reads - before.Reads; r != 1 {
		t.Errorf("push charged %d reads, want 1", r)
	}
	if w := after.Writes - before.Writes; w != 2 {
		t.Errorf("push charged %d writes, want 2", w)
	}
}

func TestFreeListChargesAddrOrderScales(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, AddrOrder, SingleLink)
	for i := 0; i < 50; i++ {
		l.Push(freeBlock(uint64(i*32), 32))
	}
	before := ctx.Counters(0).Reads
	// Inserting at the end must walk all 50 nodes.
	l.Push(freeBlock(50*32, 32))
	walked := ctx.Counters(0).Reads - before
	if walked < 50 {
		t.Errorf("addr-order insert read %d words, want >= 50", walked)
	}

	ctx2 := testCtx(t)
	l2 := newTestList(ctx2, LIFO, SingleLink)
	for i := 0; i < 50; i++ {
		l2.Push(freeBlock(uint64(i*32), 32))
	}
	before2 := ctx2.Counters(0).Reads
	l2.Push(freeBlock(50*32, 32))
	if lifoReads := ctx2.Counters(0).Reads - before2; lifoReads >= walked {
		t.Errorf("LIFO push (%d reads) not cheaper than addr-order (%d)", lifoReads, walked)
	}
}

func TestFreeListChargesSingleVsDoubleRemove(t *testing.T) {
	charge := func(links ListLinks) uint64 {
		ctx := testCtx(t)
		l := newTestList(ctx, FIFO, links)
		var target *Block
		for i := 0; i < 40; i++ {
			b := freeBlock(uint64(i*32), 32)
			l.Push(b)
			if i == 39 {
				target = b
			}
		}
		before := ctx.Counters(0).Accesses()
		l.Remove(target)
		return ctx.Counters(0).Accesses() - before
	}
	single := charge(SingleLink)
	double := charge(DoubleLink)
	if double >= single {
		t.Errorf("double-link remove (%d) not cheaper than single-link (%d)", double, single)
	}
	if single < 40 {
		t.Errorf("single-link remove of tail charged %d accesses, want >= 40 (scan)", single)
	}
}

func TestTakeChargesScanLength(t *testing.T) {
	ctx := testCtx(t)
	l := newTestList(ctx, FIFO, SingleLink)
	for i := 0; i < 30; i++ {
		l.Push(freeBlock(uint64(i*32), 16)) // all too small
	}
	l.Push(freeBlock(1000, 64))
	before := ctx.Counters(0).Reads
	if got := l.Take(FirstFit, 64); got == nil {
		t.Fatal("take failed")
	}
	reads := ctx.Counters(0).Reads - before
	// 31 visited blocks × 2 reads each, plus meta.
	if reads < 60 {
		t.Errorf("first-fit scan charged %d reads, want >= 60", reads)
	}
}
