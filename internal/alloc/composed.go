package alloc

import (
	"fmt"

	"dmexplore/internal/simheap"
)

// FallbackPool is the contract a pool must satisfy to serve as the
// composed allocator's general fallback. Both GeneralPool (segregated
// fit/storage) and BuddyPool implement it.
type FallbackPool interface {
	// Malloc allocates size payload bytes, returning the payload pointer
	// and the block bytes actually consumed.
	Malloc(size int64) (Ptr, int64, error)
	// Free releases the allocation at payload address addr, returning the
	// block bytes released.
	Free(addr uint64) (int64, error)
	// Owns reports whether addr is a live allocation of this pool.
	Owns(addr uint64) bool
	// LiveBlocks returns the number of live allocations.
	LiveBlocks() int
	// ArenaBytes returns the total reserved arena bytes.
	ArenaBytes() int64
}

// Composed is a complete custom allocator: an ordered set of dedicated
// fixed-size pools backed by a general fallback pool. Requests are routed
// to the first matching fixed pool; when a fixed pool cannot grow (its
// layer or budget is exhausted) the request falls back to the general
// pool, which models scratchpad-overflow behaviour on the target.
type Composed struct {
	name    string
	ctx     *simheap.Context
	fixed   []*FixedPool
	general FallbackPool

	// owner tracks which pool each live payload address belongs to so Free
	// can dispatch. On the target this dispatch is an address-range check
	// per pool, charged as compute cycles.
	owner     map[Ptr]*poolRef
	requested map[Ptr]int64

	stats Stats
}

// poolRef identifies the owning pool of a live allocation.
type poolRef struct {
	fixed   *FixedPool   // nil when general
	general FallbackPool // nil when fixed
}

// NewComposed assembles an allocator from already-constructed pools.
// general may not be nil: every configuration needs a fallback pool.
func NewComposed(name string, ctx *simheap.Context, fixed []*FixedPool, general FallbackPool) (*Composed, error) {
	if general == nil {
		return nil, fmt.Errorf("alloc: composed allocator needs a general pool")
	}
	return &Composed{
		name:      name,
		ctx:       ctx,
		fixed:     fixed,
		general:   general,
		owner:     make(map[Ptr]*poolRef),
		requested: make(map[Ptr]int64),
	}, nil
}

// Name implements Allocator.
func (c *Composed) Name() string { return c.name }

// FixedPools returns the dedicated pools in routing order.
func (c *Composed) FixedPools() []*FixedPool { return c.fixed }

// Fallback returns the general fallback pool.
func (c *Composed) Fallback() FallbackPool { return c.general }

// Malloc implements Allocator.
func (c *Composed) Malloc(size int64) (Ptr, error) {
	if err := checkSize(size); err != nil {
		return Ptr{}, err
	}
	for _, fp := range c.fixed {
		c.ctx.Compute(1) // routing check: size range compare
		if !fp.Matches(size) {
			continue
		}
		ptr, allocated, err := fp.Malloc(size)
		if err == nil {
			c.commit(ptr, &poolRef{fixed: fp}, size, allocated)
			return ptr, nil
		}
		// Dedicated pool exhausted: fall back to the general pool.
		break
	}
	ptr, allocated, err := c.general.Malloc(size)
	if err != nil {
		c.stats.Failures++
		return Ptr{}, err
	}
	c.commit(ptr, &poolRef{general: c.general}, size, allocated)
	return ptr, nil
}

func (c *Composed) commit(ptr Ptr, ref *poolRef, requested, allocated int64) {
	c.owner[ptr] = ref
	c.requested[ptr] = requested
	c.stats.Mallocs++
	c.stats.LiveBlocks++
	c.stats.RequestedLive += requested
	c.stats.AllocatedLive += allocated
}

// Free implements Allocator.
func (c *Composed) Free(p Ptr) error {
	ref, ok := c.owner[p]
	if !ok {
		return fmt.Errorf("%w: %+v", ErrBadFree, p)
	}
	c.ctx.Compute(uint64(len(c.fixed) + 1)) // address-range dispatch
	var (
		released int64
		err      error
	)
	if ref.fixed != nil {
		released, err = ref.fixed.Free(p.Addr)
	} else {
		released, err = ref.general.Free(p.Addr)
	}
	if err != nil {
		return err
	}
	delete(c.owner, p)
	c.stats.Frees++
	c.stats.LiveBlocks--
	c.stats.RequestedLive -= c.requested[p]
	c.stats.AllocatedLive -= released
	delete(c.requested, p)
	return nil
}

// Where implements Allocator.
func (c *Composed) Where(p Ptr) (Ptr, bool) {
	_, ok := c.owner[p]
	return p, ok
}

// SizeOf implements Allocator.
func (c *Composed) SizeOf(p Ptr) (int64, bool) {
	size, ok := c.requested[p]
	return size, ok
}

// Stats implements Allocator.
func (c *Composed) Stats() Stats { return c.stats }

// CheckInvariants verifies the allocator's simulator-side consistency.
func (c *Composed) CheckInvariants() error {
	live := 0
	for _, fp := range c.fixed {
		live += fp.LiveBlocks()
	}
	live += c.general.LiveBlocks()
	if int64(live) != c.stats.LiveBlocks {
		return fmt.Errorf("alloc: %d live in pools, %d in stats", live, c.stats.LiveBlocks)
	}
	switch g := c.general.(type) {
	case *GeneralPool:
		return g.checkInvariants()
	case *BuddyPool:
		return g.checkInvariants()
	default:
		return nil
	}
}
