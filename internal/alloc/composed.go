package alloc

import (
	"fmt"

	"dmexplore/internal/simheap"
)

// FallbackPool is the contract a pool must satisfy to serve as the
// composed allocator's general fallback. Both GeneralPool (segregated
// fit/storage) and BuddyPool implement it.
type FallbackPool interface {
	// Malloc allocates size payload bytes, returning the payload pointer
	// and the block bytes actually consumed.
	Malloc(size int64) (Ptr, int64, error)
	// Free releases the allocation at payload address addr, returning the
	// block bytes released.
	Free(addr uint64) (int64, error)
	// Owns reports whether addr is a live allocation of this pool.
	Owns(addr uint64) bool
	// LiveBlocks returns the number of live allocations.
	LiveBlocks() int
	// ArenaBytes returns the total reserved arena bytes.
	ArenaBytes() int64
}

// Composed is a complete custom allocator: an ordered set of dedicated
// fixed-size pools backed by a general fallback pool. Requests are routed
// to the first matching fixed pool; when a fixed pool cannot grow (its
// layer or budget is exhausted) the request falls back to the general
// pool, which models scratchpad-overflow behaviour on the target.
type Composed struct {
	name    string
	ctx     *simheap.Context
	fixed   []*FixedPool
	general FallbackPool

	// live tracks, per live payload address, the owning pool (so Free can
	// dispatch) and the requested size. On the target the dispatch is an
	// address-range check per pool, charged as compute cycles. A single
	// value-typed map with a packed uint64 key keeps the malloc/free hot
	// path on the fast integer map routines and free of Go heap
	// allocations in steady state.
	live map[uint64]liveAlloc

	stats Stats
}

// liveAlloc is the per-allocation bookkeeping entry.
type liveAlloc struct {
	requested int64
	pool      int32 // index into fixed; generalPool for the fallback
}

// generalPool marks an allocation served by the general fallback pool.
const generalPool int32 = -1

// liveKey packs a pointer into one map key: layer index in the top byte,
// address below. Layer address spaces are bump-allocated from zero and
// bounded by the run's total reservations, so addresses never approach
// 2^56 in simulation.
func liveKey(p Ptr) uint64 {
	return uint64(p.Layer)<<56 | p.Addr
}

// NewComposed assembles an allocator from already-constructed pools.
// general may not be nil: every configuration needs a fallback pool.
func NewComposed(name string, ctx *simheap.Context, fixed []*FixedPool, general FallbackPool) (*Composed, error) {
	if general == nil {
		return nil, fmt.Errorf("alloc: composed allocator needs a general pool")
	}
	return &Composed{
		name:    name,
		ctx:     ctx,
		fixed:   fixed,
		general: general,
		live:    make(map[uint64]liveAlloc),
	}, nil
}

// Name implements Allocator.
func (c *Composed) Name() string { return c.name }

// FixedPools returns the dedicated pools in routing order.
func (c *Composed) FixedPools() []*FixedPool { return c.fixed }

// Fallback returns the general fallback pool.
func (c *Composed) Fallback() FallbackPool { return c.general }

// Malloc implements Allocator.
func (c *Composed) Malloc(size int64) (Ptr, error) {
	if err := checkSize(size); err != nil {
		return Ptr{}, err
	}
	for i, fp := range c.fixed {
		c.ctx.Compute(1) // routing check: size range compare
		if !fp.Matches(size) {
			continue
		}
		ptr, allocated, err := fp.Malloc(size)
		if err == nil {
			c.commit(ptr, int32(i), size, allocated)
			return ptr, nil
		}
		// Dedicated pool exhausted: fall back to the general pool.
		break
	}
	ptr, allocated, err := c.general.Malloc(size)
	if err != nil {
		c.stats.Failures++
		return Ptr{}, err
	}
	c.commit(ptr, generalPool, size, allocated)
	return ptr, nil
}

func (c *Composed) commit(ptr Ptr, pool int32, requested, allocated int64) {
	c.live[liveKey(ptr)] = liveAlloc{requested: requested, pool: pool}
	c.stats.Mallocs++
	c.stats.LiveBlocks++
	c.stats.RequestedLive += requested
	c.stats.AllocatedLive += allocated
}

// Free implements Allocator.
func (c *Composed) Free(p Ptr) error {
	la, ok := c.live[liveKey(p)]
	if !ok {
		return fmt.Errorf("%w: %+v", ErrBadFree, p)
	}
	c.ctx.Compute(uint64(len(c.fixed) + 1)) // address-range dispatch
	var (
		released int64
		err      error
	)
	if la.pool >= 0 {
		released, err = c.fixed[la.pool].Free(p.Addr)
	} else {
		released, err = c.general.Free(p.Addr)
	}
	if err != nil {
		return err
	}
	delete(c.live, liveKey(p))
	c.stats.Frees++
	c.stats.LiveBlocks--
	c.stats.RequestedLive -= la.requested
	c.stats.AllocatedLive -= released
	return nil
}

// Where implements Allocator.
func (c *Composed) Where(p Ptr) (Ptr, bool) {
	_, ok := c.live[liveKey(p)]
	return p, ok
}

// SizeOf implements Allocator.
func (c *Composed) SizeOf(p Ptr) (int64, bool) {
	la, ok := c.live[liveKey(p)]
	return la.requested, ok
}

// Stats implements Allocator.
func (c *Composed) Stats() Stats { return c.stats }

// CheckInvariants verifies the allocator's simulator-side consistency.
func (c *Composed) CheckInvariants() error {
	live := 0
	for _, fp := range c.fixed {
		live += fp.LiveBlocks()
	}
	live += c.general.LiveBlocks()
	if int64(live) != c.stats.LiveBlocks {
		return fmt.Errorf("alloc: %d live in pools, %d in stats", live, c.stats.LiveBlocks)
	}
	switch g := c.general.(type) {
	case *GeneralPool:
		return g.checkInvariants()
	case *BuddyPool:
		return g.checkInvariants()
	default:
		return nil
	}
}
