package alloc

import (
	"errors"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/stats"
)

func buddyParams() BuddyPoolParams {
	return BuddyPoolParams{Layer: 0, MinBlock: 64, MaxBlock: 64 * 1024}
}

func TestBuddyParamsValidate(t *testing.T) {
	if err := buddyParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []func(*BuddyPoolParams){
		func(p *BuddyPoolParams) { p.MinBlock = 0 },
		func(p *BuddyPoolParams) { p.MinBlock = 48 },
		func(p *BuddyPoolParams) { p.MinBlock = 8 }, // below header+payload
		func(p *BuddyPoolParams) { p.MaxBlock = 32 },
		func(p *BuddyPoolParams) { p.MaxBlock = 3000 },
		func(p *BuddyPoolParams) { p.MaxBytes = -1 },
	}
	for i, mut := range cases {
		p := buddyParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestBuddyMallocFree(t *testing.T) {
	ctx := testCtx(t)
	p, err := NewBuddyPool(ctx, buddyParams())
	if err != nil {
		t.Fatal(err)
	}
	ptr, allocated, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	// 100+8 header -> 128-byte block.
	if allocated != 128 {
		t.Fatalf("allocated %d, want 128", allocated)
	}
	if !p.Owns(ptr.Addr) || p.LiveBlocks() != 1 {
		t.Fatal("ownership wrong")
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	released, err := p.Free(ptr.Addr)
	if err != nil || released != 128 {
		t.Fatalf("free: %d %v", released, err)
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// After freeing the only allocation, everything must have merged
	// back to a single max-order block.
	byOrder := p.FreeBlocksByOrder()
	for o, n := range byOrder {
		want := 0
		if o == len(byOrder)-1 {
			want = 1
		}
		if n != want {
			t.Fatalf("order %d has %d free blocks, want %d (%v)", o, n, want, byOrder)
		}
	}
}

func TestBuddySplitChain(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewBuddyPool(ctx, buddyParams())
	// First allocation of the minimum order splits all the way down:
	// one buddy freed at every order below the max.
	_, allocated, err := p.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if allocated != 64 {
		t.Fatalf("allocated %d, want min block", allocated)
	}
	byOrder := p.FreeBlocksByOrder()
	for o := 0; o < len(byOrder)-1; o++ {
		if byOrder[o] != 1 {
			t.Fatalf("order %d has %d free blocks, want 1 (%v)", o, byOrder[o], byOrder)
		}
	}
	if byOrder[len(byOrder)-1] != 0 {
		t.Fatalf("max order occupied: %v", byOrder)
	}
}

func TestBuddyPow2Fragmentation(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewBuddyPool(ctx, buddyParams())
	// 65-byte payload needs 128-byte block (64+8 > 64+... header): the
	// canonical buddy waste.
	_, allocated, _ := p.Malloc(57) // 57+8 = 65 > 64
	if allocated != 128 {
		t.Fatalf("allocated %d, want 128", allocated)
	}
	_, allocated, _ = p.Malloc(56) // 56+8 = 64: fits min block
	if allocated != 64 {
		t.Fatalf("allocated %d, want 64", allocated)
	}
}

func TestBuddyOversize(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewBuddyPool(ctx, buddyParams())
	if _, _, err := p.Malloc(64 * 1024); !errors.Is(err, ErrBadSize) {
		t.Fatalf("oversize: %v", err)
	}
	if _, _, err := p.Malloc(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("zero: %v", err)
	}
}

func TestBuddyBadFree(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewBuddyPool(ctx, buddyParams())
	if _, err := p.Free(0x40); !errors.Is(err, ErrBadFree) {
		t.Fatalf("bad free: %v", err)
	}
	ptr, _, _ := p.Malloc(64)
	p.Free(ptr.Addr)
	if _, err := p.Free(ptr.Addr); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err)
	}
}

func TestBuddyBudget(t *testing.T) {
	ctx := testCtx(t)
	params := buddyParams()
	params.MaxBytes = 64 * 1024 // exactly one arena
	p, _ := NewBuddyPool(ctx, params)
	// Fill the arena with max-order/2 blocks.
	var ptrs []Ptr
	for i := 0; i < 2; i++ {
		ptr, _, err := p.Malloc(32*1024 - 8)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
	}
	if _, _, err := p.Malloc(64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("budget overrun accepted")
	}
	p.Free(ptrs[0].Addr)
	if _, _, err := p.Malloc(64); err != nil {
		t.Fatalf("post-free alloc: %v", err)
	}
}

func TestBuddyMergeAcrossOrders(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewBuddyPool(ctx, buddyParams())
	// Allocate four sibling min-blocks, free them all: must merge back.
	var ptrs []Ptr
	for i := 0; i < 4; i++ {
		ptr, _, err := p.Malloc(48)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
	}
	for _, ptr := range ptrs {
		if _, err := p.Free(ptr.Addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	byOrder := p.FreeBlocksByOrder()
	if byOrder[len(byOrder)-1] != 1 {
		t.Fatalf("full merge failed: %v", byOrder)
	}
}

func TestBuddyStress(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewBuddyPool(ctx, buddyParams())
	r := stats.NewRNG(404)
	live := make(map[uint64]bool)
	var addrs []uint64
	for i := 0; i < 5000; i++ {
		if len(addrs) > 0 && r.Bool(0.48) {
			k := r.Intn(len(addrs))
			addr := addrs[k]
			addrs = append(addrs[:k], addrs[k+1:]...)
			delete(live, addr)
			if _, err := p.Free(addr); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		} else {
			size := int64(r.Intn(4000)) + 1
			ptr, allocated, err := p.Malloc(size)
			if err != nil {
				t.Fatalf("op %d: malloc(%d): %v", i, size, err)
			}
			if allocated < size {
				t.Fatalf("op %d: allocated %d < %d", i, allocated, size)
			}
			if live[ptr.Addr] {
				t.Fatalf("op %d: duplicate address", i)
			}
			live[ptr.Addr] = true
			addrs = append(addrs, ptr.Addr)
		}
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.LiveBlocks() != len(live) {
		t.Fatalf("live %d vs %d", p.LiveBlocks(), len(live))
	}
	// Drain and verify full merge per arena.
	for _, addr := range addrs {
		if _, err := p.Free(addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	byOrder := p.FreeBlocksByOrder()
	arenas := len(p.arenas)
	if byOrder[len(byOrder)-1] != arenas {
		t.Fatalf("drained pool not fully merged: %v (%d arenas)", byOrder, arenas)
	}
}

func TestBuddyO1ishAccesses(t *testing.T) {
	// Buddy ops must stay O(log n): bounded accesses regardless of the
	// number of free blocks.
	ctx := testCtx(t)
	p, _ := NewBuddyPool(ctx, buddyParams())
	var ptrs []Ptr
	for i := 0; i < 2000; i++ {
		ptr, _, err := p.Malloc(48)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
	}
	before := ctx.Counters(0).Accesses()
	p.Malloc(48)
	mallocCost := ctx.Counters(0).Accesses() - before
	before = ctx.Counters(0).Accesses()
	p.Free(ptrs[1000].Addr)
	freeCost := ctx.Counters(0).Accesses() - before
	// log2(64K/64) = 10 orders; generous bound of 4 accesses per level.
	if mallocCost > 40 || freeCost > 40 {
		t.Fatalf("buddy not O(log n): malloc=%d free=%d", mallocCost, freeCost)
	}
}

func TestBuddyViaConfig(t *testing.T) {
	h := memhier.EmbeddedSoC()
	cfg := Config{
		Label: "buddy",
		General: GeneralConfig{
			Layer:   memhier.LayerDRAM,
			Classes: "buddy:64:65536",
		},
	}
	if err := cfg.Validate(h); err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, h)
	a, err := cfg.Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Fallback().(*BuddyPool); !ok {
		t.Fatalf("fallback is %T, want *BuddyPool", a.Fallback())
	}
	r := stats.NewRNG(7)
	var live []Ptr
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && r.Bool(0.5) {
			k := r.Intn(len(live))
			if err := a.Free(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		} else {
			ptr, err := a.Malloc(int64(r.Intn(2000)) + 1)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, ptr)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyConfigValidation(t *testing.T) {
	h := memhier.EmbeddedSoC()
	bad := Config{General: GeneralConfig{Layer: memhier.LayerDRAM, Classes: "buddy:48:1024"}}
	if err := bad.Validate(h); err == nil {
		t.Fatal("non-pow2 buddy min accepted")
	}
	bad = Config{General: GeneralConfig{Layer: memhier.LayerDRAM, Classes: "buddy:nonsense"}}
	if err := bad.Validate(h); err == nil {
		t.Fatal("garbage buddy spec accepted")
	}
}
