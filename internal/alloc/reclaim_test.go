package alloc

import (
	"testing"

	"dmexplore/internal/stats"
)

func reclaimParams() FixedPoolParams {
	p := fixedParams()
	p.Reclaim = true
	p.ChunkSlots = 4
	return p
}

func TestReclaimReleasesEmptyChunk(t *testing.T) {
	ctx := testCtx(t)
	p, err := NewFixedPool(ctx, reclaimParams())
	if err != nil {
		t.Fatal(err)
	}
	// Fill two chunks.
	var ptrs []Ptr
	for i := 0; i < 8; i++ {
		ptr, _, err := p.Malloc(74)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
	}
	if p.ArenaBytes() != 2*4*80 {
		t.Fatalf("arena bytes %d", p.ArenaBytes())
	}
	// Free the first chunk's slots: it must be reclaimed (it is not the
	// bump arena).
	for _, ptr := range ptrs[:4] {
		if _, err := p.Free(ptr.Addr); err != nil {
			t.Fatal(err)
		}
	}
	if p.Reclaims() != 1 {
		t.Fatalf("reclaims %d", p.Reclaims())
	}
	if p.ArenaBytes() != 4*80 {
		t.Fatalf("arena bytes after reclaim %d", p.ArenaBytes())
	}
	// The reclaimed slots must be gone from the free list.
	if p.FreeSlots() != 0 {
		t.Fatalf("free slots %d after reclaim", p.FreeSlots())
	}
	// Allocating again must work (new chunk or bump arena).
	if _, _, err := p.Malloc(74); err != nil {
		t.Fatal(err)
	}
}

func TestReclaimSparesBumpArena(t *testing.T) {
	ctx := testCtx(t)
	p, _ := NewFixedPool(ctx, reclaimParams())
	// One chunk only: freeing everything must NOT reclaim it (it is the
	// carving frontier).
	ptr, _, _ := p.Malloc(74)
	p.Free(ptr.Addr)
	if p.Reclaims() != 0 {
		t.Fatal("bump arena reclaimed")
	}
	if p.ArenaBytes() == 0 {
		t.Fatal("arena released")
	}
}

func TestReclaimOffKeepsChunks(t *testing.T) {
	ctx := testCtx(t)
	params := reclaimParams()
	params.Reclaim = false
	p, _ := NewFixedPool(ctx, params)
	var ptrs []Ptr
	for i := 0; i < 8; i++ {
		ptr, _, _ := p.Malloc(74)
		ptrs = append(ptrs, ptr)
	}
	for _, ptr := range ptrs {
		p.Free(ptr.Addr)
	}
	if p.Reclaims() != 0 || p.ArenaBytes() != 2*4*80 {
		t.Fatalf("non-reclaiming pool released memory: %d bytes, %d reclaims",
			p.ArenaBytes(), p.Reclaims())
	}
}

func TestReclaimCutsFootprintAfterBurst(t *testing.T) {
	// A burst fills many chunks; after the burst drains, the reclaiming
	// pool's footprint must fall back while the keeping pool stays at
	// peak.
	run := func(reclaim bool) (peak, final int64) {
		ctx := testCtx(t)
		params := reclaimParams()
		params.Reclaim = reclaim
		params.ChunkSlots = 16
		p, err := NewFixedPool(ctx, params)
		if err != nil {
			t.Fatal(err)
		}
		var ptrs []Ptr
		for i := 0; i < 320; i++ {
			ptr, _, err := p.Malloc(74)
			if err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, ptr)
		}
		peak = p.ArenaBytes()
		for _, ptr := range ptrs {
			p.Free(ptr.Addr)
		}
		return peak, p.ArenaBytes()
	}
	peakR, finalR := run(true)
	peakK, finalK := run(false)
	if peakR != peakK {
		t.Fatalf("peaks differ: %d vs %d", peakR, peakK)
	}
	if finalR >= finalK {
		t.Fatalf("reclaim did not reduce steady footprint: %d vs %d", finalR, finalK)
	}
	if finalR > peakR/4 {
		t.Fatalf("reclaimed pool kept %d of %d bytes", finalR, peakR)
	}
}

func TestReclaimStress(t *testing.T) {
	ctx := testCtx(t)
	params := reclaimParams()
	params.ChunkSlots = 8
	p, _ := NewFixedPool(ctx, params)
	r := stats.NewRNG(99)
	live := make(map[uint64]bool)
	var addrs []uint64
	for i := 0; i < 8000; i++ {
		if len(addrs) > 0 && r.Bool(0.5) {
			k := r.Intn(len(addrs))
			addr := addrs[k]
			addrs = append(addrs[:k], addrs[k+1:]...)
			delete(live, addr)
			if _, err := p.Free(addr); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		} else {
			ptr, _, err := p.Malloc(74)
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if live[ptr.Addr] {
				t.Fatalf("op %d: duplicate slot %#x", i, ptr.Addr)
			}
			live[ptr.Addr] = true
			addrs = append(addrs, ptr.Addr)
		}
	}
	if p.LiveBlocks() != len(live) {
		t.Fatalf("live %d vs %d", p.LiveBlocks(), len(live))
	}
	// Consistency: every live slot must still be owned.
	for addr := range live {
		if !p.Owns(addr) {
			t.Fatalf("live slot %#x lost", addr)
		}
	}
}

func TestReclaimChargesUnlinkWork(t *testing.T) {
	// Reclaiming a chunk must cost accesses (unlinking its slots), not be
	// free — the trade-off the reclaim axis explores.
	ctx := testCtx(t)
	params := reclaimParams()
	params.ChunkSlots = 16
	p, _ := NewFixedPool(ctx, params)
	var ptrs []Ptr
	for i := 0; i < 32; i++ {
		ptr, _, _ := p.Malloc(74)
		ptrs = append(ptrs, ptr)
	}
	// Free first chunk except one slot.
	for _, ptr := range ptrs[:15] {
		p.Free(ptr.Addr)
	}
	before := ctx.Counters(0).Accesses()
	p.Free(ptrs[15].Addr) // triggers reclamation of chunk 1
	cost := ctx.Counters(0).Accesses() - before
	if p.Reclaims() != 1 {
		t.Fatalf("reclaims %d", p.Reclaims())
	}
	if cost < 16 {
		t.Fatalf("reclaim charged only %d accesses for 16 slots", cost)
	}
}
