package alloc

import (
	"testing"
	"testing/quick"
)

func TestPow2Classes(t *testing.T) {
	p, err := NewPow2Classes(16, 256)
	if err != nil {
		t.Fatal(err)
	}
	// 16, 32, 64, 128, 256 -> 5 classes.
	if p.NumClasses() != 5 {
		t.Fatalf("classes %d", p.NumClasses())
	}
	cases := []struct {
		size int64
		want int
	}{{1, 0}, {16, 0}, {17, 1}, {32, 1}, {33, 2}, {256, 4}, {257, -1}}
	for _, c := range cases {
		if got := p.ClassOf(c.size); got != c.want {
			t.Errorf("ClassOf(%d) = %d want %d", c.size, got, c.want)
		}
	}
	for c := 0; c < p.NumClasses(); c++ {
		if got, want := p.ClassSize(c), int64(16)<<uint(c); got != want {
			t.Errorf("ClassSize(%d) = %d want %d", c, got, want)
		}
	}
}

func TestPow2ClassesErrors(t *testing.T) {
	if _, err := NewPow2Classes(0, 64); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := NewPow2Classes(64, 16); err == nil {
		t.Error("max < min accepted")
	}
	if _, err := NewPow2Classes(24, 64); err == nil {
		t.Error("non-pow2 min accepted")
	}
	if _, err := NewPow2Classes(16, 96); err == nil {
		t.Error("non-pow2 max accepted")
	}
}

func TestPow2SingleClassRange(t *testing.T) {
	p, err := NewPow2Classes(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumClasses() != 1 || p.ClassOf(64) != 0 || p.ClassOf(65) != -1 {
		t.Fatal("degenerate pow2 range wrong")
	}
}

func TestLinearClasses(t *testing.T) {
	l, err := NewLinearClasses(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumClasses() != 8 {
		t.Fatalf("classes %d", l.NumClasses())
	}
	cases := []struct {
		size int64
		want int
	}{{1, 0}, {8, 0}, {9, 1}, {16, 1}, {63, 7}, {64, 7}, {65, -1}}
	for _, c := range cases {
		if got := l.ClassOf(c.size); got != c.want {
			t.Errorf("ClassOf(%d) = %d want %d", c.size, got, c.want)
		}
	}
	if l.ClassSize(0) != 8 || l.ClassSize(7) != 64 {
		t.Fatal("class sizes wrong")
	}
}

func TestLinearClassesErrors(t *testing.T) {
	if _, err := NewLinearClasses(0, 64); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := NewLinearClasses(7, 63); err == nil {
		t.Error("unaligned step accepted")
	}
	if _, err := NewLinearClasses(8, 60); err == nil {
		t.Error("non-multiple max accepted")
	}
	if _, err := NewLinearClasses(16, 8); err == nil {
		t.Error("max < step accepted")
	}
}

func TestSingleClass(t *testing.T) {
	s := SingleClass{}
	if s.NumClasses() != 1 || s.ClassOf(1) != 0 || s.ClassOf(1<<40) != 0 || s.ClassSize(0) != 0 {
		t.Fatal("single class wrong")
	}
}

// Property: ClassSize(ClassOf(s)) >= s for all in-range sizes, and class
// indices are monotone in size.
func TestClassMapProperties(t *testing.T) {
	p, _ := NewPow2Classes(16, 4096)
	l, _ := NewLinearClasses(8, 4096)
	for _, m := range []SizeClasser{p, l} {
		if err := quick.Check(func(raw uint16) bool {
			size := int64(raw%4096) + 1
			c := m.ClassOf(size)
			if c < 0 || c >= m.NumClasses() {
				return false
			}
			if m.ClassSize(c) < size {
				return false
			}
			// The previous class (if any) must be too small.
			if c > 0 && m.ClassSize(c-1) >= size {
				return false
			}
			return true
		}, nil); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}

func TestParseClasses(t *testing.T) {
	m, err := ParseClasses("single")
	if err != nil || m.NumClasses() != 1 {
		t.Fatalf("single: %v %v", m, err)
	}
	m, err = ParseClasses("pow2:16:1024")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*Pow2Classes); !ok {
		t.Fatalf("pow2 spec built %T", m)
	}
	m, err = ParseClasses("linear:8:512")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*LinearClasses); !ok {
		t.Fatalf("linear spec built %T", m)
	}
	for _, bad := range []string{"", "pow2", "pow2:x:y", "linear:8", "huh:1:2"} {
		if _, err := ParseClasses(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
