package memhier

// Preset hierarchies. The per-access energy and latency constants follow
// the published embedded SRAM vs. off-chip SDRAM ratios used in the
// IMEC/DACYA methodology papers (CACTI-style SRAM models, ~0.2-0.4 nJ per
// on-chip scratchpad access, a few nJ plus tens of cycles per external
// SDRAM access). Absolute values are representative, not testbed-exact;
// the reproduction targets trade-off shape, not joules.

// LayerScratchpad and friends name the layers of the preset hierarchies.
const (
	LayerScratchpad = "L1-scratchpad"
	LayerSRAM       = "L2-sram"
	LayerDRAM       = "main-dram"
)

// EmbeddedSoC returns the platform of the paper's running example: a
// 64 KB L1 software-controlled scratchpad plus 4 MB external SDRAM.
func EmbeddedSoC() *Hierarchy {
	h, err := New(
		Layer{
			Name:         LayerScratchpad,
			Capacity:     64 * 1024,
			ReadEnergy:   0.31,
			WriteEnergy:  0.35,
			ReadCycles:   1,
			WriteCycles:  1,
			LeakagePower: 0.0002,
		},
		Layer{
			Name:        LayerDRAM,
			Capacity:    4 * 1024 * 1024,
			ReadEnergy:  7.9,
			WriteEnergy: 8.4,
			ReadCycles:  16,
			WriteCycles: 18,
		},
	)
	if err != nil {
		panic("memhier: invalid EmbeddedSoC preset: " + err.Error())
	}
	return h
}

// EmbeddedSoC3Level adds a 256 KB on-chip SRAM between scratchpad and
// SDRAM, for the mapping-ablation experiments.
func EmbeddedSoC3Level() *Hierarchy {
	h, err := New(
		Layer{
			Name:         LayerScratchpad,
			Capacity:     64 * 1024,
			ReadEnergy:   0.31,
			WriteEnergy:  0.35,
			ReadCycles:   1,
			WriteCycles:  1,
			LeakagePower: 0.0002,
		},
		Layer{
			Name:         LayerSRAM,
			Capacity:     256 * 1024,
			ReadEnergy:   1.1,
			WriteEnergy:  1.3,
			ReadCycles:   4,
			WriteCycles:  5,
			LeakagePower: 0.0004,
		},
		Layer{
			Name:        LayerDRAM,
			Capacity:    4 * 1024 * 1024,
			ReadEnergy:  7.9,
			WriteEnergy: 8.4,
			ReadCycles:  16,
			WriteCycles: 18,
		},
	)
	if err != nil {
		panic("memhier: invalid EmbeddedSoC3Level preset: " + err.Error())
	}
	return h
}

// FlatDRAM returns a single-layer hierarchy (everything in main memory),
// the baseline an OS-based allocator effectively sees.
func FlatDRAM() *Hierarchy {
	h, err := New(Layer{
		Name:        LayerDRAM,
		Capacity:    0, // unbounded
		ReadEnergy:  7.9,
		WriteEnergy: 8.4,
		ReadCycles:  16,
		WriteCycles: 18,
	})
	if err != nil {
		panic("memhier: invalid FlatDRAM preset: " + err.Error())
	}
	return h
}
