package memhier

import (
	"testing"
	"testing/quick"
)

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(0, 4, 1); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewCache(64, 0, 1); err == nil {
		t.Fatal("zero line accepted")
	}
	if _, err := NewCache(64, 4, 0); err == nil {
		t.Fatal("zero ways accepted")
	}
	if _, err := NewCache(64, 3, 1); err == nil {
		t.Fatal("non-pow2 line accepted")
	}
	if _, err := NewCache(12, 4, 2); err == nil {
		t.Fatal("indivisible sets accepted")
	}
	if _, err := NewCache(64, 4, 2); err != nil {
		t.Fatalf("valid cache rejected: %v", err)
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c, _ := NewCache(64, 4, 2)
	r := c.Access(10, false)
	if r.Hit || r.BackingReads != 4 || r.BackingWrite != 0 {
		t.Fatalf("cold access: %+v", r)
	}
	// Same line (words 8..11).
	r = c.Access(11, false)
	if !r.Hit || r.BackingReads != 0 {
		t.Fatalf("second access: %+v", r)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	// Direct-mapped, 2 sets of 4-word lines: addresses that share
	// line%2 collide.
	c, _ := NewCache(8, 4, 1)
	c.Access(0, true) // line 0 -> set 0, dirty
	r := c.Access(8, false)
	// line 2 -> set 0: evicts dirty line 0.
	if r.Hit {
		t.Fatal("expected miss")
	}
	if r.BackingWrite != 4 {
		t.Fatalf("expected 4-word writeback, got %+v", r)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Writebacks != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheCleanEvictionNoWriteback(t *testing.T) {
	c, _ := NewCache(8, 4, 1)
	c.Access(0, false)
	r := c.Access(8, false)
	if r.BackingWrite != 0 {
		t.Fatalf("clean eviction wrote back: %+v", r)
	}
}

func TestCacheLRU(t *testing.T) {
	// One set, 2 ways, 4-word lines.
	c, _ := NewCache(8, 4, 2)
	c.Access(0, false)  // line 0 -> way A
	c.Access(32, false) // line 8 -> way B (set 0 since sets=1)
	c.Access(0, false)  // touch line 0: line 8 is now LRU
	c.Access(64, false) // line 16: must evict line 8
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("LRU evicted the recently used line")
	}
	if r := c.Access(32, false); r.Hit {
		t.Fatal("LRU kept the least recently used line")
	}
}

func TestCacheFlush(t *testing.T) {
	c, _ := NewCache(64, 4, 2)
	c.Access(0, true)
	c.Access(16, false)
	words := c.Flush()
	if words != 4 {
		t.Fatalf("flush wrote %d words, want 4", words)
	}
	if r := c.Access(0, false); r.Hit {
		t.Fatal("access hit after flush")
	}
	if c.Flush() != 0 {
		t.Fatal("second flush wrote data")
	}
}

func TestCacheHitRate(t *testing.T) {
	c, _ := NewCache(64, 4, 2)
	if c.HitRate() != 0 {
		t.Fatal("hit rate before accesses")
	}
	c.Access(0, false)
	c.Access(1, false)
	c.Access(2, false)
	c.Access(3, false)
	if hr := c.HitRate(); hr != 0.75 {
		t.Fatalf("hit rate %v, want 0.75", hr)
	}
}

func TestCachePropertyRepeatedAccessAlwaysHits(t *testing.T) {
	c, _ := NewCache(1024, 8, 4)
	if err := quick.Check(func(addr uint32) bool {
		a := uint64(addr)
		c.Access(a, false)
		return c.Access(a, false).Hit
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCachePropertyConservation(t *testing.T) {
	// hits + misses == total accesses.
	c, _ := NewCache(256, 4, 2)
	n := 0
	if err := quick.Check(func(addr uint16, w bool) bool {
		c.Access(uint64(addr), w)
		n++
		s := c.Stats()
		return s.Hits+s.Misses == uint64(n)
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
