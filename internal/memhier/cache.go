package memhier

import "fmt"

// Cache simulates a set-associative cache with LRU replacement in front of
// a backing layer. The paper's platform uses a software-controlled
// scratchpad rather than a cache for L1, but the exploration tool supports
// cached hierarchies too; dmexplore uses this model for the cache-mapping
// ablation (A1 variants) and to demonstrate per-layer accounting with a
// hardware-managed level.
//
// The model is trace-exact for hits/misses given word-granular addresses:
// each access touches one line; a miss evicts the LRU way of the set and
// fetches the line from the backing layer (counted as LineWords backing
// reads, plus LineWords backing writes if the victim was dirty).
type Cache struct {
	lineWords uint64
	sets      uint64
	ways      int

	// tags[set][way], valid[set][way], dirty[set][way], age[set][way]
	tags  [][]uint64
	valid [][]bool
	dirty [][]bool
	age   [][]uint64

	clock uint64

	hits        uint64
	misses      uint64
	evictions   uint64
	writebacks  uint64
	fetchWords  uint64
	writeBWords uint64
}

// NewCache builds a cache of the given total size in words, line size in
// words, and associativity. sizeWords must be divisible by lineWords*ways.
func NewCache(sizeWords, lineWords uint64, ways int) (*Cache, error) {
	if sizeWords == 0 || lineWords == 0 || ways <= 0 {
		return nil, fmt.Errorf("memhier: cache parameters must be positive")
	}
	if lineWords&(lineWords-1) != 0 {
		return nil, fmt.Errorf("memhier: line size %d not a power of two", lineWords)
	}
	lines := sizeWords / lineWords
	if lines == 0 || lines%uint64(ways) != 0 {
		return nil, fmt.Errorf("memhier: %d words / %d-word lines not divisible into %d ways",
			sizeWords, lineWords, ways)
	}
	sets := lines / uint64(ways)
	c := &Cache{lineWords: lineWords, sets: sets, ways: ways}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.dirty = make([][]bool, sets)
	c.age = make([][]uint64, sets)
	for s := uint64(0); s < sets; s++ {
		c.tags[s] = make([]uint64, ways)
		c.valid[s] = make([]bool, ways)
		c.dirty[s] = make([]bool, ways)
		c.age[s] = make([]uint64, ways)
	}
	return c, nil
}

// AccessResult describes the backing-layer traffic one access caused.
type AccessResult struct {
	Hit          bool
	BackingReads uint64 // words fetched from the backing layer
	BackingWrite uint64 // words written back to the backing layer
}

// Access simulates one word access at addr (word-granular address).
// write marks the line dirty on stores.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.clock++
	line := addr / c.lineWords
	set := line % c.sets
	tag := line / c.sets

	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.hits++
			c.age[set][w] = c.clock
			if write {
				c.dirty[set][w] = true
			}
			return AccessResult{Hit: true}
		}
	}

	c.misses++
	// Choose victim: first invalid way, else LRU.
	victim := 0
	found := false
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			found = true
			break
		}
	}
	if !found {
		oldest := c.age[set][0]
		for w := 1; w < c.ways; w++ {
			if c.age[set][w] < oldest {
				oldest = c.age[set][w]
				victim = w
			}
		}
	}

	res := AccessResult{BackingReads: c.lineWords}
	if c.valid[set][victim] {
		c.evictions++
		if c.dirty[set][victim] {
			c.writebacks++
			res.BackingWrite = c.lineWords
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.dirty[set][victim] = write
	c.age[set][victim] = c.clock
	c.fetchWords += res.BackingReads
	c.writeBWords += res.BackingWrite
	return res
}

// Flush writes back all dirty lines and invalidates the cache, returning
// the number of words written back.
func (c *Cache) Flush() uint64 {
	var words uint64
	for s := uint64(0); s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			if c.valid[s][w] && c.dirty[s][w] {
				words += c.lineWords
				c.writebacks++
			}
			c.valid[s][w] = false
			c.dirty[s][w] = false
		}
	}
	c.writeBWords += words
	return words
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	Hits, Misses, Evictions, Writebacks uint64
	FetchWords, WritebackWords          uint64
}

// Stats returns the counter snapshot.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Writebacks: c.writebacks,
		FetchWords: c.fetchWords, WritebackWords: c.writeBWords,
	}
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
