package memhier

import "math"

// First-order energy/latency estimators for building custom layers, in
// the spirit of the CACTI-style models the paper's methodology relies on:
// per-access energy and latency of an on-chip SRAM grow roughly with the
// square root of its capacity (wordline/bitline length), while off-chip
// DRAM cost is dominated by the interface and is nearly capacity-flat.
// Constants are anchored to the EmbeddedSoC preset values (64 KB
// scratchpad: 0.31 nJ / 1 cycle) — representative 90-130 nm era figures
// consistent with the paper's platform, not a process-exact model.

// sramAnchorBytes is the capacity the anchor constants refer to.
const sramAnchorBytes = 64 * 1024

// EstimateSRAM returns a Layer modelling an on-chip SRAM/scratchpad of
// the given capacity. Capacity must be positive.
func EstimateSRAM(name string, capacityBytes int64) Layer {
	if capacityBytes <= 0 {
		capacityBytes = sramAnchorBytes
	}
	scale := math.Sqrt(float64(capacityBytes) / float64(sramAnchorBytes))
	readCycles := int64(math.Max(1, math.Round(scale)))
	return Layer{
		Name:         name,
		Capacity:     capacityBytes,
		ReadEnergy:   0.31 * scale,
		WriteEnergy:  0.35 * scale,
		ReadCycles:   readCycles,
		WriteCycles:  readCycles,
		LeakagePower: 0.0002, // per KB, so total leakage already scales
	}
}

// EstimateDRAM returns a Layer modelling an external SDRAM of the given
// capacity (0 = unbounded). Access cost is capacity-independent.
func EstimateDRAM(name string, capacityBytes int64) Layer {
	return Layer{
		Name:        name,
		Capacity:    capacityBytes,
		ReadEnergy:  7.9,
		WriteEnergy: 8.4,
		ReadCycles:  16,
		WriteCycles: 18,
	}
}
