// Package memhier models the target platform's memory hierarchy: the
// ordered set of physical memories (scratchpads, on-chip SRAM, off-chip
// SDRAM) that dynamic-memory pools can be mapped onto, together with the
// per-access energy and latency cost model used to turn profiled access
// counts into energy and execution-time estimates.
//
// The paper maps allocator pools onto hierarchy layers explicitly ("a
// dedicated pool for 74-byte blocks must be placed onto the L1 64 KB
// scratchpad memory, while a general pool and a dedicated pool for
// 1500-byte blocks must use the 4 MB main memory") and reports metrics per
// layer. This package provides exactly that facility for the simulator.
package memhier

import (
	"fmt"
	"strings"
)

// LayerID identifies a layer within a Hierarchy by index, ordered from the
// closest/cheapest memory (index 0) to the furthest/most expensive.
type LayerID int

// Layer describes one physical memory in the hierarchy and its access
// cost model. Energy is in nanojoules per word access; latency in CPU
// cycles per word access. Capacity is in bytes; a Capacity of 0 means
// unbounded (useful for modelling large external DRAM).
type Layer struct {
	Name        string
	Capacity    int64   // bytes; 0 = unbounded
	ReadEnergy  float64 // nJ per word read
	WriteEnergy float64 // nJ per word write
	ReadCycles  int64   // CPU cycles per word read
	WriteCycles int64   // CPU cycles per word write
	// LeakagePower is the static power in nJ per kilocycle per KB of
	// capacity actually reserved; it lets energy depend (weakly) on both
	// footprint and runtime, as in SRAM leakage models.
	LeakagePower float64
}

// Validate reports whether the layer's cost model is self-consistent.
func (l Layer) Validate() error {
	if strings.TrimSpace(l.Name) == "" {
		return fmt.Errorf("memhier: layer has empty name")
	}
	if l.Capacity < 0 {
		return fmt.Errorf("memhier: layer %s has negative capacity %d", l.Name, l.Capacity)
	}
	if l.ReadEnergy < 0 || l.WriteEnergy < 0 {
		return fmt.Errorf("memhier: layer %s has negative access energy", l.Name)
	}
	if l.ReadCycles < 0 || l.WriteCycles < 0 {
		return fmt.Errorf("memhier: layer %s has negative access latency", l.Name)
	}
	if l.LeakagePower < 0 {
		return fmt.Errorf("memhier: layer %s has negative leakage", l.Name)
	}
	return nil
}

// Bounded reports whether the layer has a finite capacity.
func (l Layer) Bounded() bool { return l.Capacity > 0 }

// Hierarchy is an ordered list of layers, cheapest first. The zero value
// is an empty hierarchy; use New or a preset constructor.
type Hierarchy struct {
	layers []Layer
}

// New builds a hierarchy from the given layers (cheapest first). Layer
// names must be unique.
func New(layers ...Layer) (*Hierarchy, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("memhier: hierarchy needs at least one layer")
	}
	seen := make(map[string]bool, len(layers))
	for _, l := range layers {
		if err := l.Validate(); err != nil {
			return nil, err
		}
		if seen[l.Name] {
			return nil, fmt.Errorf("memhier: duplicate layer name %q", l.Name)
		}
		seen[l.Name] = true
	}
	h := &Hierarchy{layers: make([]Layer, len(layers))}
	copy(h.layers, layers)
	return h, nil
}

// NumLayers returns the number of layers.
func (h *Hierarchy) NumLayers() int { return len(h.layers) }

// Layer returns the layer with the given id. It panics on out-of-range
// ids; ids always originate from the same hierarchy in correct programs.
func (h *Hierarchy) Layer(id LayerID) Layer {
	return h.layers[id]
}

// Layers returns a copy of the ordered layer list.
func (h *Hierarchy) Layers() []Layer {
	out := make([]Layer, len(h.layers))
	copy(out, h.layers)
	return out
}

// ByName returns the id of the layer with the given name.
func (h *Hierarchy) ByName(name string) (LayerID, bool) {
	for i, l := range h.layers {
		if l.Name == name {
			return LayerID(i), true
		}
	}
	return 0, false
}

// Cheapest returns the id of the first (cheapest) layer.
func (h *Hierarchy) Cheapest() LayerID { return 0 }

// Largest returns the id of the last layer, conventionally the main
// memory, which presets model as unbounded.
func (h *Hierarchy) Largest() LayerID { return LayerID(len(h.layers) - 1) }

// Valid reports whether id refers to a layer of h.
func (h *Hierarchy) Valid(id LayerID) bool {
	return id >= 0 && int(id) < len(h.layers)
}

// String renders a one-line description of the hierarchy.
func (h *Hierarchy) String() string {
	parts := make([]string, len(h.layers))
	for i, l := range h.layers {
		cap := "∞"
		if l.Bounded() {
			cap = fmt.Sprintf("%dKB", l.Capacity/1024)
		}
		parts[i] = fmt.Sprintf("%s(%s)", l.Name, cap)
	}
	return strings.Join(parts, " → ")
}
