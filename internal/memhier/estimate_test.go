package memhier

import "testing"

func TestEstimateSRAMAnchor(t *testing.T) {
	l := EstimateSRAM("sp", 64*1024)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// At the anchor capacity the estimate must match the preset.
	preset := EmbeddedSoC().Layer(0)
	if l.ReadEnergy != preset.ReadEnergy || l.ReadCycles != preset.ReadCycles {
		t.Fatalf("anchor mismatch: %+v vs %+v", l, preset)
	}
}

func TestEstimateSRAMScalesWithCapacity(t *testing.T) {
	small := EstimateSRAM("s", 16*1024)
	large := EstimateSRAM("l", 1024*1024)
	if small.ReadEnergy >= large.ReadEnergy {
		t.Fatalf("energy not increasing: %v vs %v", small.ReadEnergy, large.ReadEnergy)
	}
	if small.ReadCycles > large.ReadCycles {
		t.Fatalf("latency decreasing: %v vs %v", small.ReadCycles, large.ReadCycles)
	}
	// sqrt scaling: 64x capacity -> 8x energy.
	ratio := large.ReadEnergy / small.ReadEnergy
	if ratio < 7 || ratio > 9 {
		t.Fatalf("scaling ratio %v, want ~8", ratio)
	}
	if small.ReadCycles < 1 {
		t.Fatal("latency below one cycle")
	}
}

func TestEstimateSRAMBelowDRAM(t *testing.T) {
	// Any plausible on-chip SRAM must stay cheaper than DRAM per access.
	for _, cap := range []int64{4 * 1024, 64 * 1024, 512 * 1024} {
		s := EstimateSRAM("s", cap)
		d := EstimateDRAM("d", 0)
		if s.ReadEnergy >= d.ReadEnergy {
			t.Fatalf("%dKB SRAM energy %v >= DRAM %v", cap/1024, s.ReadEnergy, d.ReadEnergy)
		}
		if s.ReadCycles >= d.ReadCycles {
			t.Fatalf("%dKB SRAM latency %v >= DRAM %v", cap/1024, s.ReadCycles, d.ReadCycles)
		}
	}
}

func TestEstimateSRAMZeroCapacity(t *testing.T) {
	l := EstimateSRAM("s", 0)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Capacity != sramAnchorBytes {
		t.Fatalf("default capacity %d", l.Capacity)
	}
}

func TestEstimateDRAM(t *testing.T) {
	d := EstimateDRAM("d", 4*1024*1024)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Capacity != 4*1024*1024 {
		t.Fatalf("capacity %d", d.Capacity)
	}
	unbounded := EstimateDRAM("u", 0)
	if unbounded.Bounded() {
		t.Fatal("zero capacity not unbounded")
	}
	// Capacity does not change access cost.
	if d.ReadEnergy != unbounded.ReadEnergy {
		t.Fatal("DRAM energy depends on capacity")
	}
}

func TestEstimatedHierarchyWorks(t *testing.T) {
	h, err := New(
		EstimateSRAM("tcm", 8*1024),
		EstimateSRAM("sram", 256*1024),
		EstimateDRAM("dram", 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Cost must be monotone across the constructed hierarchy.
	for i := 1; i < h.NumLayers(); i++ {
		if h.Layer(LayerID(i)).ReadEnergy <= h.Layer(LayerID(i-1)).ReadEnergy {
			t.Fatalf("energy not monotone at layer %d", i)
		}
	}
}
