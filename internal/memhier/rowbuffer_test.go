package memhier

import "testing"

func TestNewRowBufferValidation(t *testing.T) {
	if _, err := NewRowBuffer(0, 4); err == nil {
		t.Fatal("zero row accepted")
	}
	if _, err := NewRowBuffer(100, 4); err == nil {
		t.Fatal("non-pow2 row accepted")
	}
	if _, err := NewRowBuffer(128, 0); err == nil {
		t.Fatal("zero banks accepted")
	}
	if _, err := NewRowBuffer(128, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRowBufferSequentialHits(t *testing.T) {
	rb, _ := NewRowBuffer(128, 4)
	// Sequential sweep: one miss per row, 127 hits.
	for addr := uint64(0); addr < 512; addr++ {
		rb.Access(addr)
	}
	hits, misses := rb.Stats()
	if misses != 4 {
		t.Fatalf("misses %d, want 4 (one per row)", misses)
	}
	if hits != 508 {
		t.Fatalf("hits %d", hits)
	}
	if hr := rb.HitRate(); hr < 0.99 {
		t.Fatalf("hit rate %v", hr)
	}
}

func TestRowBufferStridedMisses(t *testing.T) {
	rb, _ := NewRowBuffer(128, 2)
	// Stride of 2 rows with 2 banks: every access maps to the same bank
	// but alternating rows... row = addr/128; bank = row % 2. Stride 256
	// words = 2 rows => same bank parity, different rows => all miss.
	for i := uint64(0); i < 100; i++ {
		rb.Access(i * 256 * 2)
	}
	if hr := rb.HitRate(); hr != 0 {
		t.Fatalf("strided hit rate %v, want 0", hr)
	}
}

func TestRowBufferBanksRetainRows(t *testing.T) {
	rb, _ := NewRowBuffer(128, 2)
	rb.Access(0)       // row 0, bank 0: miss
	rb.Access(128)     // row 1, bank 1: miss
	if !rb.Access(1) { // row 0 still open in bank 0
		t.Fatal("bank 0 lost its row")
	}
	if !rb.Access(129) { // row 1 still open in bank 1
		t.Fatal("bank 1 lost its row")
	}
}

func TestRowBufferEmptyHitRate(t *testing.T) {
	rb, _ := NewRowBuffer(128, 1)
	if rb.HitRate() != 0 {
		t.Fatal("hit rate before any access")
	}
}
