package memhier

import "fmt"

// RowBuffer models SDRAM open-page behaviour: the sense amplifiers hold
// one open row per bank, and an access falling into the open row (a "row
// hit") skips the precharge/activate sequence — substantially cheaper in
// both latency and energy than a row miss. Sequential buffer traffic
// (packet payloads, texture rows) hits; pointer-chasing allocator
// metadata mostly misses, so the model sharpens exactly the contrast the
// paper's exploration trades on.
//
// The model is deliberately first-order: RowWords-sized rows,
// BankCount banks selected by row index, one open row per bank, no
// refresh. Attach to a simheap context via AttachRowBuffer.
type RowBuffer struct {
	rowWords uint64
	banks    uint64

	openRow []uint64 // per bank; rowInvalid when closed
	hits    uint64
	misses  uint64
}

const rowInvalid = ^uint64(0)

// NewRowBuffer builds the model. rowWords must be a power of two;
// banks must be positive.
func NewRowBuffer(rowWords uint64, banks int) (*RowBuffer, error) {
	if rowWords == 0 || rowWords&(rowWords-1) != 0 {
		return nil, errBadRow(rowWords)
	}
	if banks <= 0 {
		return nil, errBadBanks(banks)
	}
	rb := &RowBuffer{rowWords: rowWords, banks: uint64(banks)}
	rb.openRow = make([]uint64, banks)
	for i := range rb.openRow {
		rb.openRow[i] = rowInvalid
	}
	return rb, nil
}

// Access records one word access and reports whether it hit an open row.
func (rb *RowBuffer) Access(addr uint64) bool {
	row := addr / rb.rowWords
	bank := row % rb.banks
	if rb.openRow[bank] == row {
		rb.hits++
		return true
	}
	rb.openRow[bank] = row
	rb.misses++
	return false
}

// HitRate returns hits/(hits+misses), 0 before any access.
func (rb *RowBuffer) HitRate() float64 {
	total := rb.hits + rb.misses
	if total == 0 {
		return 0
	}
	return float64(rb.hits) / float64(total)
}

// Stats returns (hits, misses).
func (rb *RowBuffer) Stats() (hits, misses uint64) { return rb.hits, rb.misses }

func errBadRow(words uint64) error {
	return fmt.Errorf("memhier: row size %d must be a power of two words", words)
}

func errBadBanks(banks int) error {
	return fmt.Errorf("memhier: bank count %d must be positive", banks)
}
