package memhier

import (
	"strings"
	"testing"
)

func validLayer(name string) Layer {
	return Layer{Name: name, Capacity: 1024, ReadEnergy: 1, WriteEnergy: 1, ReadCycles: 1, WriteCycles: 1}
}

func TestLayerValidate(t *testing.T) {
	cases := []struct {
		name  string
		mutic func(*Layer)
		ok    bool
	}{
		{"valid", func(l *Layer) {}, true},
		{"empty name", func(l *Layer) { l.Name = "  " }, false},
		{"negative capacity", func(l *Layer) { l.Capacity = -1 }, false},
		{"negative read energy", func(l *Layer) { l.ReadEnergy = -0.1 }, false},
		{"negative write energy", func(l *Layer) { l.WriteEnergy = -0.1 }, false},
		{"negative read cycles", func(l *Layer) { l.ReadCycles = -1 }, false},
		{"negative write cycles", func(l *Layer) { l.WriteCycles = -1 }, false},
		{"negative leakage", func(l *Layer) { l.LeakagePower = -1 }, false},
		{"unbounded ok", func(l *Layer) { l.Capacity = 0 }, true},
	}
	for _, c := range cases {
		l := validLayer("x")
		c.mutic(&l)
		err := l.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestLayerBounded(t *testing.T) {
	if !validLayer("a").Bounded() {
		t.Fatal("capacity 1024 not bounded")
	}
	l := validLayer("a")
	l.Capacity = 0
	if l.Bounded() {
		t.Fatal("capacity 0 reported bounded")
	}
}

func TestNewHierarchy(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty hierarchy accepted")
	}
	if _, err := New(validLayer("a"), validLayer("a")); err == nil {
		t.Fatal("duplicate layer names accepted")
	}
	bad := validLayer("b")
	bad.ReadEnergy = -1
	if _, err := New(validLayer("a"), bad); err == nil {
		t.Fatal("invalid layer accepted")
	}
	h, err := New(validLayer("a"), validLayer("b"))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLayers() != 2 {
		t.Fatalf("layers %d", h.NumLayers())
	}
}

func TestHierarchyLookup(t *testing.T) {
	h, err := New(validLayer("sp"), validLayer("dram"))
	if err != nil {
		t.Fatal(err)
	}
	id, ok := h.ByName("dram")
	if !ok || id != 1 {
		t.Fatalf("ByName(dram) = %v,%v", id, ok)
	}
	if _, ok := h.ByName("nope"); ok {
		t.Fatal("found nonexistent layer")
	}
	if h.Cheapest() != 0 || h.Largest() != 1 {
		t.Fatal("cheapest/largest wrong")
	}
	if !h.Valid(0) || !h.Valid(1) || h.Valid(2) || h.Valid(-1) {
		t.Fatal("Valid wrong")
	}
	if h.Layer(1).Name != "dram" {
		t.Fatal("Layer(1) wrong")
	}
}

func TestHierarchyLayersIsCopy(t *testing.T) {
	h, _ := New(validLayer("a"))
	ls := h.Layers()
	ls[0].Name = "mutated"
	if h.Layer(0).Name != "a" {
		t.Fatal("Layers() aliases internal state")
	}
}

func TestPresets(t *testing.T) {
	soc := EmbeddedSoC()
	if soc.NumLayers() != 2 {
		t.Fatalf("EmbeddedSoC layers %d", soc.NumLayers())
	}
	sp, ok := soc.ByName(LayerScratchpad)
	if !ok {
		t.Fatal("no scratchpad layer")
	}
	if soc.Layer(sp).Capacity != 64*1024 {
		t.Fatalf("scratchpad capacity %d", soc.Layer(sp).Capacity)
	}
	dram, ok := soc.ByName(LayerDRAM)
	if !ok {
		t.Fatal("no dram layer")
	}
	// Scratchpad must be much cheaper than DRAM in both energy and time.
	if soc.Layer(sp).ReadEnergy*5 > soc.Layer(dram).ReadEnergy {
		t.Fatal("scratchpad/dram energy ratio implausible")
	}
	if soc.Layer(sp).ReadCycles >= soc.Layer(dram).ReadCycles {
		t.Fatal("scratchpad not faster than dram")
	}

	if EmbeddedSoC3Level().NumLayers() != 3 {
		t.Fatal("3-level preset wrong")
	}
	flat := FlatDRAM()
	if flat.NumLayers() != 1 || flat.Layer(0).Bounded() {
		t.Fatal("flat preset wrong")
	}
}

func TestHierarchyString(t *testing.T) {
	s := EmbeddedSoC().String()
	if !strings.Contains(s, LayerScratchpad) || !strings.Contains(s, "64KB") {
		t.Fatalf("string %q", s)
	}
	if !strings.Contains(FlatDRAM().String(), "∞") {
		t.Fatal("unbounded marker missing")
	}
}
