package blockio

import (
	"bytes"
	"encoding/binary"
	"io"
	"sync/atomic"
	"testing"
)

// countingStats is a test Stats sink.
type countingStats struct {
	blocks, bytes, records, crcFails atomic.Int64
}

func (s *countingStats) ObserveBlock(payloadBytes, records int) {
	s.blocks.Add(1)
	s.bytes.Add(int64(payloadBytes))
	s.records.Add(int64(records))
}
func (s *countingStats) CRCFailure() { s.crcFails.Add(1) }

// writeRecords frames n small records (uvarint i) with the given block
// target and returns the file bytes and the record payload total.
func writeRecords(t *testing.T, n, target int, header []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, target)
	w.WriteHeader(header)
	var scratch [binary.MaxVarintLen64]byte
	for i := 0; i < n; i++ {
		k := binary.PutUvarint(scratch[:], uint64(i))
		w.Record(scratch[:k])
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundtripSequential(t *testing.T) {
	header := []byte("HDRX")
	data := writeRecords(t, 10000, 64, header)
	if !bytes.Equal(data[:4], header) {
		t.Fatalf("header not first: %q", data[:8])
	}
	stats := &countingStats{}
	r := NewReader(bytes.NewReader(data[4:]), stats)
	var got []uint64
	for {
		records, payload, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < records; i++ {
			v, n := binary.Uvarint(payload)
			if n <= 0 {
				t.Fatalf("bad record at %d", len(got))
			}
			payload = payload[n:]
			got = append(got, v)
		}
		if len(payload) != 0 {
			t.Fatalf("%d leftover payload bytes", len(payload))
		}
	}
	if len(got) != 10000 {
		t.Fatalf("got %d records", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("record %d = %d", i, v)
		}
	}
	if stats.records.Load() != 10000 || stats.blocks.Load() < 2 || stats.crcFails.Load() != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestIndexMatchesSequential(t *testing.T) {
	header := []byte("HH")
	data := writeRecords(t, 5000, 128, header)
	blocks, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 2 {
		t.Fatalf("only %d blocks", len(blocks))
	}
	var total int64
	prevEnd := int64(len(header))
	for i, blk := range blocks {
		if blk.Offset != prevEnd {
			t.Fatalf("block %d offset %d, want %d (blocks must be contiguous)", i, blk.Offset, prevEnd)
		}
		// Parse the block straight out of the file bytes.
		records, payload, _, err := ParseBlock(data[blk.Offset:], nil)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if records != blk.Records || int64(len(payload)) != blk.PayloadLen {
			t.Fatalf("block %d: parsed %d/%d, index %d/%d", i, records, len(payload), blk.Records, blk.PayloadLen)
		}
		total += records
		prevEnd = blk.Offset + blk.DataLen()
	}
	if total != 5000 {
		t.Fatalf("index records %d", total)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	data := writeRecords(t, 1000, 256, nil)
	// Flip a byte in the middle of the first block's payload.
	corrupt := bytes.Clone(data)
	corrupt[20] ^= 0xFF
	stats := &countingStats{}
	r := NewReader(bytes.NewReader(corrupt), stats)
	_, _, err := r.Next()
	if err == nil {
		t.Fatal("corrupted block accepted")
	}
	if stats.crcFails.Load() != 1 {
		t.Fatalf("crc failures %d", stats.crcFails.Load())
	}
	if _, _, _, err := ParseBlock(corrupt, stats); err == nil {
		t.Fatal("ParseBlock accepted corruption")
	}
}

func TestTruncationErrors(t *testing.T) {
	data := writeRecords(t, 1000, 256, nil)
	for _, cut := range []int{1, 7, len(data) / 2} {
		r := NewReader(bytes.NewReader(data[:cut]), nil)
		for {
			_, _, err := r.Next()
			if err == io.EOF {
				t.Fatalf("cut at %d read cleanly", cut)
			}
			if err != nil {
				break
			}
		}
	}
	if _, err := ReadIndex(bytes.NewReader(data[:len(data)-3]), int64(len(data)-3)); err == nil {
		t.Fatal("truncated footer accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(data[:4]), 4); err == nil {
		t.Fatal("4-byte file accepted")
	}
}

func TestEmptyFile(t *testing.T) {
	data := writeRecords(t, 0, 256, nil)
	r := NewReader(bytes.NewReader(data), nil)
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty file: %v", err)
	}
	blocks, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil || len(blocks) != 0 {
		t.Fatalf("empty index: %v %v", blocks, err)
	}
}

// failAfter fails every write once n bytes have been accepted.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterSurfacesDeferredError(t *testing.T) {
	fw := &failAfter{n: 512, err: io.ErrShortWrite}
	w := NewWriter(fw, 64) // small blocks so the bufio drains early
	var scratch [8]byte
	sawErr := false
	for i := 0; i < 1_000_000; i++ {
		n := binary.PutUvarint(scratch[:], uint64(i))
		w.Record(scratch[:n])
		if w.Err() != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("writer never surfaced the deferred error")
	}
	if err := w.Close(); err == nil {
		t.Fatal("close swallowed the error")
	}
}
