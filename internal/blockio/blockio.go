// Package blockio implements the self-delimiting block framing shared by
// the v2 trace codec and the v2 raw profile log. Records are grouped into
// blocks — header (record count, payload byte length), CRC32C, payload —
// followed by an end marker and a seekable footer index, so a reader can
// either stream the file front to back or split a multi-gigabyte file
// into independent chunks and decode them on every core.
//
// On-disk layout, after a format-specific header the caller writes:
//
//	block*:  uvarint recordCount (>= 1)
//	         uvarint payloadLen
//	         4-byte little-endian CRC32C of the payload
//	         payload (recordCount records, format-specific encoding)
//	end:     a single 0x00 byte (a zero record count terminates the blocks)
//	footer:  payload: uvarint blockCount, then per block
//	             uvarint offset delta from the previous entry
//	             uvarint recordCount
//	             uvarint payloadLen
//	         4-byte little-endian CRC32C of the footer payload
//	         8-byte little-endian footer payload length
//	         "DMBX" (4-byte trailing magic)
//
// The trailing fixed-size fields let ReadIndex find the footer from the
// end of the file without scanning; the per-block entries let a parallel
// reader place every block's records into a preallocated slab before any
// payload byte is decoded.
package blockio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// footerMagic closes every block-framed file.
	footerMagic = "DMBX"

	// DefaultTargetBlockBytes is the payload size a Writer aims for. Big
	// enough that the ~10-byte block header is noise and a CRC pass runs
	// at memory bandwidth, small enough that thousands of independent
	// chunks exist in a gigabyte file.
	DefaultTargetBlockBytes = 256 * 1024

	// maxPayloadLen bounds a single block's payload: a larger claim is
	// corruption, not data.
	maxPayloadLen = 1 << 30

	// footerTrailerLen is the fixed-size tail: CRC32C + payload length +
	// magic.
	footerTrailerLen = 4 + 8 + 4
)

// castagnoli is the CRC32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats receives ingestion observations from readers. Implementations
// must be safe for concurrent use: a parallel reader reports from every
// worker. telemetry.Ingest satisfies it.
type Stats interface {
	// ObserveBlock records one successfully verified block.
	ObserveBlock(payloadBytes, records int)
	// CRCFailure records a block whose checksum did not match.
	CRCFailure()
}

// Block describes one block from the footer index.
type Block struct {
	Offset     int64 // file offset of the block header
	Records    int64
	PayloadLen int64
}

// DataLen returns the block's full on-disk length: header, CRC, payload.
func (b Block) DataLen() int64 {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(b.Records))
	n += binary.PutUvarint(tmp[:], uint64(b.PayloadLen))
	return int64(n) + 4 + b.PayloadLen
}

// Writer frames records into blocks. It buffers one block's payload at a
// time and tracks every block for the footer index. Errors are sticky:
// the first underlying write error is kept and every later call is a
// no-op, so emitters on a hot path can check Err at their own cadence.
type Writer struct {
	bw      *bufio.Writer
	off     int64 // bytes emitted so far (headers, blocks)
	target  int
	payload []byte
	records int64
	index   []Block
	scratch [binary.MaxVarintLen64]byte
	err     error
	closed  bool
}

// NewWriter returns a block writer emitting to w. target is the payload
// size a block aims for; <= 0 selects DefaultTargetBlockBytes.
func NewWriter(w io.Writer, target int) *Writer {
	if target <= 0 {
		target = DefaultTargetBlockBytes
	}
	return &Writer{
		bw:      bufio.NewWriterSize(w, 1<<20),
		target:  target,
		payload: make([]byte, 0, target+4096),
	}
}

// WriteHeader emits the caller's format-specific header bytes. It must be
// called before the first Record.
func (w *Writer) WriteHeader(b []byte) {
	if w.err != nil {
		return
	}
	if w.records > 0 || len(w.payload) > 0 || len(w.index) > 0 {
		w.err = fmt.Errorf("blockio: WriteHeader after records")
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return
	}
	w.off += int64(len(b))
}

// Record appends one record's encoded bytes to the current block,
// flushing a full block first. The bytes are copied; the caller may reuse
// its scratch buffer.
func (w *Writer) Record(b []byte) {
	if w.err != nil {
		return
	}
	if len(w.payload) >= w.target {
		w.emitBlock()
	}
	w.payload = append(w.payload, b...)
	w.records++
}

// Err returns the first underlying write error, if any, without waiting
// for Close — an emitter streaming gigabytes can abort as soon as the
// disk fills instead of simulating on against a dead file.
func (w *Writer) Err() error { return w.err }

// emitBlock writes the buffered payload as one block and records it in
// the index.
func (w *Writer) emitBlock() {
	if w.err != nil || w.records == 0 {
		return
	}
	blk := Block{Offset: w.off, Records: w.records, PayloadLen: int64(len(w.payload))}
	n := binary.PutUvarint(w.scratch[:], uint64(w.records))
	if _, err := w.bw.Write(w.scratch[:n]); err != nil {
		w.err = err
		return
	}
	w.off += int64(n)
	n = binary.PutUvarint(w.scratch[:], uint64(len(w.payload)))
	if _, err := w.bw.Write(w.scratch[:n]); err != nil {
		w.err = err
		return
	}
	w.off += int64(n)
	binary.LittleEndian.PutUint32(w.scratch[:4], crc32.Checksum(w.payload, castagnoli))
	if _, err := w.bw.Write(w.scratch[:4]); err != nil {
		w.err = err
		return
	}
	w.off += 4
	if _, err := w.bw.Write(w.payload); err != nil {
		w.err = err
		return
	}
	w.off += int64(len(w.payload))
	w.index = append(w.index, blk)
	w.payload = w.payload[:0]
	w.records = 0
}

// Close flushes the final block, the end marker and the footer index.
// The underlying writer is not closed.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.emitBlock()
	if w.err != nil {
		return w.err
	}
	if err := w.bw.WriteByte(0); err != nil { // end marker
		w.err = err
		return w.err
	}
	footer := make([]byte, 0, 16+len(w.index)*6)
	footer = binary.AppendUvarint(footer, uint64(len(w.index)))
	prev := int64(0)
	for _, blk := range w.index {
		footer = binary.AppendUvarint(footer, uint64(blk.Offset-prev))
		footer = binary.AppendUvarint(footer, uint64(blk.Records))
		footer = binary.AppendUvarint(footer, uint64(blk.PayloadLen))
		prev = blk.Offset
	}
	if _, err := w.bw.Write(footer); err != nil {
		w.err = err
		return w.err
	}
	var tail [footerTrailerLen]byte
	binary.LittleEndian.PutUint32(tail[0:4], crc32.Checksum(footer, castagnoli))
	binary.LittleEndian.PutUint64(tail[4:12], uint64(len(footer)))
	copy(tail[12:], footerMagic)
	if _, err := w.bw.Write(tail[:]); err != nil {
		w.err = err
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
	}
	return w.err
}

// Reader streams blocks front to back. The caller positions r just after
// the format-specific header.
type Reader struct {
	br      *bufio.Reader
	payload []byte
	stats   Stats
	block   int64
	done    bool
}

// NewReader returns a sequential block reader. stats may be nil.
func NewReader(r io.Reader, stats Stats) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<20)
	}
	return &Reader{br: br, stats: stats}
}

// Next returns the next block's record count and payload (valid until the
// following call), verifying its CRC. It returns io.EOF at the end
// marker; the footer is left unread.
func (r *Reader) Next() (int, []byte, error) {
	if r.done {
		return 0, nil, io.EOF
	}
	records, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, nil, fmt.Errorf("blockio: block %d: reading record count: %w", r.block, unexpectedEOF(err))
	}
	if records == 0 { // end marker
		r.done = true
		return 0, nil, io.EOF
	}
	payloadLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, nil, fmt.Errorf("blockio: block %d: reading payload length: %w", r.block, unexpectedEOF(err))
	}
	if payloadLen > maxPayloadLen {
		return 0, nil, fmt.Errorf("blockio: block %d: implausible payload length %d (max %d)", r.block, payloadLen, maxPayloadLen)
	}
	if records > payloadLen {
		return 0, nil, fmt.Errorf("blockio: block %d: %d records cannot fit in %d payload bytes", r.block, records, payloadLen)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.br, crcBuf[:]); err != nil {
		return 0, nil, fmt.Errorf("blockio: block %d: reading crc: %w", r.block, unexpectedEOF(err))
	}
	if int64(payloadLen) <= int64(cap(r.payload)) {
		r.payload = r.payload[:payloadLen]
		if _, err := io.ReadFull(r.br, r.payload); err != nil {
			return 0, nil, fmt.Errorf("blockio: block %d: reading %d payload bytes: %w", r.block, payloadLen, unexpectedEOF(err))
		}
	} else {
		// Grow the buffer only as bytes actually arrive: a corrupt or
		// hostile header may claim up to maxPayloadLen, and trusting it
		// for one up-front allocation would let a 30-byte file demand a
		// gigabyte buffer.
		const growStep = 4 << 20
		r.payload = r.payload[:0]
		for uint64(len(r.payload)) < payloadLen {
			n := payloadLen - uint64(len(r.payload))
			if n > growStep {
				n = growStep
			}
			start := len(r.payload)
			r.payload = append(r.payload, make([]byte, n)...)
			if _, err := io.ReadFull(r.br, r.payload[start:]); err != nil {
				return 0, nil, fmt.Errorf("blockio: block %d: reading %d payload bytes: %w", r.block, payloadLen, unexpectedEOF(err))
			}
		}
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.Checksum(r.payload, castagnoli); got != want {
		if r.stats != nil {
			r.stats.CRCFailure()
		}
		return 0, nil, fmt.Errorf("blockio: block %d: crc mismatch (stored %08x, computed %08x)", r.block, want, got)
	}
	if r.stats != nil {
		r.stats.ObserveBlock(len(r.payload), int(records))
	}
	r.block++
	return int(records), r.payload, nil
}

// ParseBlock parses one block at the start of buf (header, CRC, payload),
// verifies the CRC, and returns the record count, the payload (aliasing
// buf) and the remaining bytes. Parallel readers run it over in-memory
// fetch windows. stats may be nil.
func ParseBlock(buf []byte, stats Stats) (records int64, payload, rest []byte, err error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("blockio: truncated block header")
	}
	buf = buf[n:]
	records = int64(u)
	if records == 0 {
		return 0, nil, nil, fmt.Errorf("blockio: unexpected end marker inside a fetch window")
	}
	u, n = binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("blockio: truncated payload length")
	}
	buf = buf[n:]
	payloadLen := int64(u)
	if payloadLen > maxPayloadLen || payloadLen > int64(len(buf))-4 {
		return 0, nil, nil, fmt.Errorf("blockio: payload length %d exceeds window", payloadLen)
	}
	want := binary.LittleEndian.Uint32(buf)
	payload = buf[4 : 4+payloadLen]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		if stats != nil {
			stats.CRCFailure()
		}
		return 0, nil, nil, fmt.Errorf("blockio: crc mismatch (stored %08x, computed %08x)", want, got)
	}
	if stats != nil {
		stats.ObserveBlock(len(payload), int(records))
	}
	return records, payload, buf[4+payloadLen:], nil
}

// ReadIndex reads the footer index from the end of a block-framed file
// and returns the block descriptors in file order.
func ReadIndex(ra io.ReaderAt, size int64) ([]Block, error) {
	if size < footerTrailerLen {
		return nil, fmt.Errorf("blockio: file of %d bytes cannot hold a footer", size)
	}
	var tail [footerTrailerLen]byte
	if _, err := ra.ReadAt(tail[:], size-footerTrailerLen); err != nil {
		return nil, fmt.Errorf("blockio: reading footer trailer: %w", err)
	}
	if string(tail[12:]) != footerMagic {
		return nil, fmt.Errorf("blockio: missing footer magic (got %q)", tail[12:])
	}
	payloadLen := int64(binary.LittleEndian.Uint64(tail[4:12]))
	if payloadLen < 1 || payloadLen > size-footerTrailerLen {
		return nil, fmt.Errorf("blockio: implausible footer length %d in a %d-byte file", payloadLen, size)
	}
	footer := make([]byte, payloadLen)
	if _, err := ra.ReadAt(footer, size-footerTrailerLen-payloadLen); err != nil {
		return nil, fmt.Errorf("blockio: reading footer: %w", err)
	}
	if got := crc32.Checksum(footer, castagnoli); got != binary.LittleEndian.Uint32(tail[0:4]) {
		return nil, fmt.Errorf("blockio: footer crc mismatch")
	}
	count, n := binary.Uvarint(footer)
	if n <= 0 {
		return nil, fmt.Errorf("blockio: truncated footer block count")
	}
	footer = footer[n:]
	if count > uint64(size) { // every block needs at least one byte
		return nil, fmt.Errorf("blockio: implausible block count %d in a %d-byte file", count, size)
	}
	blocks := make([]Block, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		var blk Block
		var fields [3]uint64
		for f := range fields {
			u, n := binary.Uvarint(footer)
			if n <= 0 {
				return nil, fmt.Errorf("blockio: truncated footer entry %d", i)
			}
			fields[f] = u
			footer = footer[n:]
		}
		blk.Offset = prev + int64(fields[0])
		blk.Records = int64(fields[1])
		blk.PayloadLen = int64(fields[2])
		prev = blk.Offset
		if blk.PayloadLen > maxPayloadLen || blk.Offset+blk.PayloadLen > size {
			return nil, fmt.Errorf("blockio: footer entry %d (offset %d, payload %d) exceeds the %d-byte file", i, blk.Offset, blk.PayloadLen, size)
		}
		blocks = append(blocks, blk)
	}
	if len(footer) != 0 {
		return nil, fmt.Errorf("blockio: %d trailing footer bytes", len(footer))
	}
	return blocks, nil
}

// unexpectedEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// block structure, running out of bytes is truncation, not a clean end.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
