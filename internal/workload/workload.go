// Package workload generates the dynamic-application allocation traces the
// exploration tool profiles configurations against.
//
// The paper's two case studies are proprietary applications (the Infineon
// Easyport wireless network application and the MPEG-4 Visual Texture
// deCoder). dmexplore substitutes synthetic generators that reproduce the
// allocation behaviour those applications are reported to exhibit — the
// size spectrum (dominant 74-byte control blocks and 1500-byte frames for
// Easyport; a wide, phase-structured spectrum for VTC), burstiness and
// lifetime structure — which is what drives every metric the paper
// explores. See DESIGN.md §2 for the substitution rationale.
package workload

import (
	"fmt"
	"sort"

	"dmexplore/internal/trace"
)

// Generator produces a deterministic trace from its parameters.
type Generator interface {
	// Name identifies the workload (trace names embed it).
	Name() string
	// Generate builds the trace. Implementations must be deterministic:
	// equal parameters yield identical traces.
	Generate() (*trace.Trace, error)
}

// Registry maps workload names to default-parameter constructors, used by
// the CLI tools.
var registry = map[string]func(seed uint64, scale int) Generator{
	"easyport": func(seed uint64, scale int) Generator {
		p := DefaultEasyportParams()
		p.Seed = seed
		p.Packets = p.Packets * scale / 100
		return p
	},
	"vtc": func(seed uint64, scale int) Generator {
		p := DefaultVTCParams()
		p.Seed = seed
		p.Tiles = max(1, p.Tiles*scale/100)
		return p
	},
	"synthetic": func(seed uint64, scale int) Generator {
		p := DefaultSyntheticParams()
		p.Seed = seed
		p.Ops = p.Ops * scale / 100
		return p
	},
}

// Names returns the registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New returns the named workload with default parameters at the given
// scale (percent of the default trace length) and seed.
func New(name string, seed uint64, scale int) (Generator, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	if scale <= 0 {
		return nil, fmt.Errorf("workload: scale must be positive, got %d", scale)
	}
	return ctor(seed, scale), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
