package workload

import "testing"

func BenchmarkEasyportGenerate(b *testing.B) {
	p := DefaultEasyportParams()
	p.Packets = 5000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := p.Generate()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(tr.Len()))
	}
}

func BenchmarkVTCGenerate(b *testing.B) {
	p := DefaultVTCParams()
	p.Tiles = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyntheticGenerate(b *testing.B) {
	p := DefaultSyntheticParams()
	p.Ops = 5000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}
