package workload

import (
	"fmt"

	"dmexplore/internal/stats"
	"dmexplore/internal/trace"
)

// EasyportParams parameterizes the wireless-network workload modelled on
// the Infineon Easyport application (an access-port packet engine).
//
// The allocation profile the generator reproduces:
//
//   - Two dominant block sizes: 74-byte control/signalling blocks and
//     1500-byte (Ethernet MTU) frame buffers, plus a minor tail of other
//     sizes (fragment descriptors, session contexts).
//   - Bursty arrivals: packets arrive in Poisson-sized bursts, so the
//     number of live buffers oscillates — the fragmentation stressor.
//   - Short, FIFO-ish residency for packets; a small population of
//     long-lived session contexts.
//   - Per-packet protocol processing: header/payload touches plus CPU
//     cycles, so execution time is not a pure function of allocator
//     accesses (as in the paper, where time moves far less than energy).
type EasyportParams struct {
	Seed    uint64
	Packets int // total packets to process

	BurstMean   float64 // mean extra arrivals per step
	QueueTarget int     // drain threshold: frames resident per port
	Sessions    int     // long-lived session contexts

	ControlFrac float64 // fraction of packets that are 74-byte control
	DataFrac    float64 // fraction that are 1500-byte data frames
	// Remaining packets draw from the minor size tail.

	CyclesPerPacket uint64 // CPU work per packet (protocol processing)
}

// DefaultEasyportParams returns the calibrated defaults used by the
// experiments (see EXPERIMENTS.md).
func DefaultEasyportParams() EasyportParams {
	return EasyportParams{
		Seed:            1,
		Packets:         30000,
		BurstMean:       4.0,
		QueueTarget:     420,
		Sessions:        24,
		ControlFrac:     0.62,
		DataFrac:        0.30,
		CyclesPerPacket: 4000,
	}
}

// Name implements Generator.
func (p EasyportParams) Name() string { return "easyport" }

// Easyport block sizes.
const (
	EasyportControlBytes = 74   // signalling/control block
	EasyportFrameBytes   = 1500 // MTU frame buffer (dominant data size)
	easyportSessionBytes = 256  // session context

	// Data frames vary: most run at (or near) the MTU, the rest spread
	// down to the minimum payload — the variability that makes splitting,
	// coalescing and size-class policy matter.
	easyportFrameMin  = 256
	easyportMTUBandLo = 1300
)

// minor size tail: fragment descriptors, reassembly buffers, timers.
var easyportTailSizes = []int64{32, 128, 512}

// Validate reports parameter errors.
func (p EasyportParams) Validate() error {
	if p.Packets <= 0 {
		return fmt.Errorf("workload: easyport needs packets > 0")
	}
	if p.BurstMean <= 0 {
		return fmt.Errorf("workload: easyport burst mean must be positive")
	}
	if p.QueueTarget <= 0 || p.Sessions < 0 {
		return fmt.Errorf("workload: easyport queue/session params invalid")
	}
	if p.ControlFrac < 0 || p.DataFrac < 0 || p.ControlFrac+p.DataFrac > 1 {
		return fmt.Errorf("workload: easyport size fractions invalid")
	}
	return nil
}

// Generate implements Generator.
func (p EasyportParams) Generate() (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(p.Seed)
	b := trace.NewBuilder(fmt.Sprintf("easyport[p=%d,seed=%d]", p.Packets, p.Seed))

	// Long-lived session contexts, allocated at port bring-up.
	sessions := make([]uint64, 0, p.Sessions)
	for i := 0; i < p.Sessions; i++ {
		id := b.Alloc(easyportSessionBytes)
		b.Access(id, 0, easyportSessionBytes/8)
		sessions = append(sessions, id)
	}

	type packet struct {
		id   uint64
		size int64
	}
	var queue []packet // FIFO residency
	processed := 0

	for processed < p.Packets {
		// Burst arrival.
		burst := 1 + rng.Poisson(p.BurstMean)
		for i := 0; i < burst && processed < p.Packets; i++ {
			size := p.pickSize(rng)
			id := b.Alloc(size)
			// Control blocks are built word-by-word by the CPU; data
			// frames arrive by cut-through DMA and the CPU only writes
			// the descriptor and header fields.
			if size <= EasyportControlBytes {
				b.Access(id, 0, uint64(size+7)/8)
			} else {
				b.Access(id, 0, 16)
			}
			queue = append(queue, packet{id: id, size: size})
			processed++
		}
		// Protocol processing for the burst.
		b.Tick(uint64(burst) * p.CyclesPerPacket)

		// Occasionally touch a session context (lookup + update).
		if len(sessions) > 0 && rng.Bool(0.35) {
			sid := sessions[rng.Intn(len(sessions))]
			b.Access(sid, 6, 2)
		}
		// Session churn: rarely, a session ends and a new one starts.
		if len(sessions) > 0 && rng.Bool(0.01) {
			k := rng.Intn(len(sessions))
			b.Free(sessions[k])
			nid := b.Alloc(easyportSessionBytes)
			b.Access(nid, 0, easyportSessionBytes/8)
			sessions[k] = nid
		}

		// Drain: forward packets FIFO until the queue is at target. The
		// CPU re-reads control blocks fully (protocol state machine) but
		// only the headers of data frames (cut-through transmit).
		for len(queue) > p.QueueTarget || (len(queue) > 0 && rng.Bool(0.25)) {
			pk := queue[0]
			queue = queue[1:]
			if pk.size <= EasyportControlBytes {
				b.Access(pk.id, uint64(pk.size+7)/8+4, 0)
			} else {
				b.Access(pk.id, 20, 0)
			}
			b.Free(pk.id)
		}
	}

	// Port shutdown: drain the queue and close sessions.
	for _, pk := range queue {
		b.Access(pk.id, 8, 0)
		b.Free(pk.id)
	}
	for _, sid := range sessions {
		b.Free(sid)
	}
	return b.Build(), nil
}

// pickSize draws a packet's buffer size. Control blocks are fixed-size;
// data frames are MTU-heavy but variable (60% full MTU, 25% in the
// near-MTU band, 15% spread down to the minimum payload).
func (p EasyportParams) pickSize(rng *stats.RNG) int64 {
	x := rng.Float64()
	switch {
	case x < p.ControlFrac:
		return EasyportControlBytes
	case x < p.ControlFrac+p.DataFrac:
		d := rng.Float64()
		switch {
		case d < 0.60:
			return EasyportFrameBytes
		case d < 0.85:
			return easyportMTUBandLo + rng.Int64n(EasyportFrameBytes-easyportMTUBandLo)
		default:
			return easyportFrameMin + rng.Int64n(easyportMTUBandLo-easyportFrameMin)
		}
	default:
		return easyportTailSizes[rng.Intn(len(easyportTailSizes))]
	}
}
