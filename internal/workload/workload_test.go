package workload

import (
	"testing"

	"dmexplore/internal/trace"
)

func TestEasyportValidTrace(t *testing.T) {
	p := DefaultEasyportParams()
	p.Packets = 2000
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(tr)
	if prof.FinalLiveBytes != 0 {
		t.Fatalf("trace leaks %d bytes", prof.FinalLiveBytes)
	}
	if prof.Allocs < 2000 {
		t.Fatalf("allocs %d", prof.Allocs)
	}
}

func TestEasyportDeterministic(t *testing.T) {
	p := DefaultEasyportParams()
	p.Packets = 1000
	a, _ := p.Generate()
	b, _ := p.Generate()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestEasyportSeedChangesTrace(t *testing.T) {
	p := DefaultEasyportParams()
	p.Packets = 1000
	a, _ := p.Generate()
	p.Seed = 2
	b, _ := p.Generate()
	if len(a.Events) == len(b.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestEasyportDominantSizes(t *testing.T) {
	p := DefaultEasyportParams()
	p.Packets = 5000
	tr, _ := p.Generate()
	prof := trace.Analyze(tr)
	top := prof.DominantSizes(2)
	if len(top) != 2 {
		t.Fatal("no dominant sizes")
	}
	if top[0].Value != EasyportControlBytes {
		t.Fatalf("dominant size %d, want 74", top[0].Value)
	}
	if top[1].Value != EasyportFrameBytes {
		t.Fatalf("second size %d, want 1500", top[1].Value)
	}
	// Control blocks are ~62% of packets: counts must reflect that.
	if top[0].Count < 2*top[1].Count {
		t.Fatalf("74B count %d not dominant over 1500B count %d", top[0].Count, top[1].Count)
	}
}

func TestEasyportBurstinessCreatesLivePressure(t *testing.T) {
	p := DefaultEasyportParams()
	p.Packets = 5000
	tr, _ := p.Generate()
	prof := trace.Analyze(tr)
	if prof.PeakLiveBlocks < int64(p.QueueTarget) {
		t.Fatalf("peak live blocks %d below queue target %d", prof.PeakLiveBlocks, p.QueueTarget)
	}
	if prof.TickCycles == 0 {
		t.Fatal("no CPU work generated")
	}
}

func TestEasyportValidation(t *testing.T) {
	bad := []func(*EasyportParams){
		func(p *EasyportParams) { p.Packets = 0 },
		func(p *EasyportParams) { p.BurstMean = 0 },
		func(p *EasyportParams) { p.QueueTarget = 0 },
		func(p *EasyportParams) { p.ControlFrac = 0.8; p.DataFrac = 0.5 },
		func(p *EasyportParams) { p.ControlFrac = -0.1 },
	}
	for i, mut := range bad {
		p := DefaultEasyportParams()
		mut(&p)
		if _, err := p.Generate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestVTCValidTrace(t *testing.T) {
	p := DefaultVTCParams()
	p.Tiles = 10
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(tr)
	if prof.FinalLiveBytes != 0 {
		t.Fatalf("trace leaks %d bytes", prof.FinalLiveBytes)
	}
}

func TestVTCDeterministic(t *testing.T) {
	p := DefaultVTCParams()
	p.Tiles = 5
	a, _ := p.Generate()
	b, _ := p.Generate()
	if len(a.Events) != len(b.Events) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestVTCWideSizeSpectrum(t *testing.T) {
	p := DefaultVTCParams()
	p.Tiles = 10
	tr, _ := p.Generate()
	prof := trace.Analyze(tr)
	if got := len(prof.Sizes.Values()); got < 8 {
		t.Fatalf("only %d distinct sizes, want a wide spectrum", got)
	}
	// Both tiny nodes and full-tile buffers must appear.
	if prof.Sizes.Min() > 64 {
		t.Fatalf("min size %d, want zerotree nodes", prof.Sizes.Min())
	}
	if prof.Sizes.Max() < int64(p.TileDim*p.TileDim) {
		t.Fatalf("max size %d, want output textures", prof.Sizes.Max())
	}
}

func TestVTCCPUDominated(t *testing.T) {
	// VTC's trace must be CPU-heavy relative to its access traffic; this
	// is what compresses execution-time spreads in the paper (5.4% vs
	// 82.4% energy).
	p := DefaultVTCParams()
	p.Tiles = 10
	tr, _ := p.Generate()
	prof := trace.Analyze(tr)
	if prof.TickCycles < prof.AccessWords {
		t.Fatalf("tick cycles %d below access words %d: not CPU-dominated",
			prof.TickCycles, prof.AccessWords)
	}
}

func TestVTCValidation(t *testing.T) {
	bad := []func(*VTCParams){
		func(p *VTCParams) { p.Tiles = 0 },
		func(p *VTCParams) { p.Levels = 0 },
		func(p *VTCParams) { p.Levels = 9 },
		func(p *VTCParams) { p.TileDim = 4 },
		func(p *VTCParams) { p.QueueDepth = 0 },
	}
	for i, mut := range bad {
		p := DefaultVTCParams()
		mut(&p)
		if _, err := p.Generate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestSyntheticValidTrace(t *testing.T) {
	p := DefaultSyntheticParams()
	p.Ops = 3000
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(tr)
	if prof.Allocs != 3000 {
		t.Fatalf("allocs %d", prof.Allocs)
	}
	if prof.FinalLiveBytes != 0 {
		t.Fatal("synthetic trace leaks")
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []func(*SyntheticParams){
		func(p *SyntheticParams) { p.Ops = 0 },
		func(p *SyntheticParams) { p.Sizes = nil },
		func(p *SyntheticParams) { p.Weights = p.Weights[:1] },
		func(p *SyntheticParams) { p.Sizes[0] = 0 },
		func(p *SyntheticParams) { p.FreeProb = 1.0 },
		func(p *SyntheticParams) { p.MinLive = -1 },
	}
	for i, mut := range bad {
		p := DefaultSyntheticParams()
		mut(&p)
		if _, err := p.Generate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("names %v", names)
	}
	for _, name := range names {
		g, err := New(name, 7, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := g.Generate()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := New("nope", 1, 100); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := New("easyport", 1, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}
