package workload

import (
	"fmt"

	"dmexplore/internal/stats"
	"dmexplore/internal/trace"
)

// VTCParams parameterizes the multimedia workload modelled on the MPEG-4
// Visual Texture deCoder (still-texture wavelet decoding).
//
// The allocation profile the generator reproduces:
//
//   - Phase structure: per decoded tile, a bitstream buffer and per-level
//     wavelet subband arrays are allocated, used heavily, and freed at
//     phase end (phase-correlated lifetimes).
//   - A churn of small zerotree-node allocations during coefficient
//     decoding: many sizes in the tens of bytes, very short-lived.
//   - Large output texture buffers that outlive their tile (a short
//     display queue).
//   - Heavy arithmetic (inverse wavelet transform) between memory phases:
//     most of the execution time is CPU work, so allocator choice moves
//     energy much more than time — the 82.4% vs 5.4% asymmetry of the
//     paper's VTC results.
type VTCParams struct {
	Seed  uint64
	Tiles int // texture tiles to decode

	Levels     int // wavelet decomposition levels
	TileDim    int // tile dimension in pixels (square tiles)
	QueueDepth int // decoded tiles kept alive (display queue)

	NodesPerTile   int    // zerotree node churn per tile
	CyclesPerPixel uint64 // inverse-transform CPU cost
}

// DefaultVTCParams returns the calibrated defaults used by the
// experiments (see EXPERIMENTS.md).
func DefaultVTCParams() VTCParams {
	return VTCParams{
		Seed:           1,
		Tiles:          96,
		Levels:         4,
		TileDim:        64,
		QueueDepth:     2,
		NodesPerTile:   400,
		CyclesPerPixel: 700,
	}
}

// Name implements Generator.
func (p VTCParams) Name() string { return "vtc" }

// Validate reports parameter errors.
func (p VTCParams) Validate() error {
	if p.Tiles <= 0 {
		return fmt.Errorf("workload: vtc needs tiles > 0")
	}
	if p.Levels < 1 || p.Levels > 8 {
		return fmt.Errorf("workload: vtc levels %d out of range", p.Levels)
	}
	if p.TileDim < 8 || p.TileDim > 1024 {
		return fmt.Errorf("workload: vtc tile dim %d out of range", p.TileDim)
	}
	if p.QueueDepth < 1 || p.NodesPerTile < 0 {
		return fmt.Errorf("workload: vtc queue/nodes params invalid")
	}
	return nil
}

// zerotree node sizes (bytes): decoder bookkeeping structures.
var vtcNodeSizes = []int64{24, 40, 56, 64}

// Generate implements Generator.
func (p VTCParams) Generate() (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(p.Seed)
	b := trace.NewBuilder(fmt.Sprintf("vtc[t=%d,seed=%d]", p.Tiles, p.Seed))

	// Decoder-lifetime tables: quantization and Huffman/arith models.
	quant := b.Alloc(2048)
	b.Access(quant, 0, 256)
	model := b.Alloc(4096)
	b.Access(model, 0, 512)

	pixels := int64(p.TileDim) * int64(p.TileDim)
	var displayQueue []uint64

	for tile := 0; tile < p.Tiles; tile++ {
		// Bitstream buffer: compressed size varies around pixels/4 bytes.
		bsSize := int64(rng.Normal(float64(pixels)/4, float64(pixels)/16))
		if bsSize < 512 {
			bsSize = 512
		}
		bs := b.Alloc(bsSize)
		b.Access(bs, 0, uint64(bsSize+7)/8) // fill from input

		// Subband coefficient arrays per decomposition level. Level l
		// covers (dim>>l)^2 coefficients × 2 bytes, three subbands plus
		// one LL band at the coarsest level.
		var subbands []uint64
		for l := 1; l <= p.Levels; l++ {
			side := int64(p.TileDim >> l)
			if side < 1 {
				side = 1
			}
			sbSize := side * side * 2
			bands := 3
			if l == p.Levels {
				bands = 4
			}
			for s := 0; s < bands; s++ {
				id := b.Alloc(sbSize)
				subbands = append(subbands, id)
			}
		}

		// Zerotree decoding: churn of short-lived nodes interleaved with
		// bitstream reads and coefficient writes.
		var nodes []uint64
		for n := 0; n < p.NodesPerTile; n++ {
			id := b.Alloc(vtcNodeSizes[rng.Intn(len(vtcNodeSizes))])
			b.Access(id, 2, 3)
			nodes = append(nodes, id)
			b.Access(bs, 4, 0) // bitstream read
			if len(subbands) > 0 {
				b.Access(subbands[rng.Intn(len(subbands))], 1, 2)
			}
			// Most nodes die quickly; a fraction persists to tile end.
			if len(nodes) > 4 && rng.Bool(0.8) {
				k := rng.Intn(len(nodes))
				b.Free(nodes[k])
				nodes = append(nodes[:k], nodes[k+1:]...)
			}
			b.Tick(30)
		}
		// Model adaptation touches.
		b.Access(model, 32, 8)
		b.Access(quant, 16, 0)

		// Inverse wavelet transform: read every subband, write the
		// output texture, heavy CPU work.
		out := b.Alloc(pixels) // 8bpp output texture
		for _, sb := range subbands {
			b.Access(sb, 64, 16)
		}
		b.Access(out, 0, uint64(pixels+7)/8)
		b.Tick(uint64(pixels) * p.CyclesPerPixel)

		// Tile teardown: nodes, subbands, bitstream die with the phase.
		for _, id := range nodes {
			b.Free(id)
		}
		for _, id := range subbands {
			b.Free(id)
		}
		b.Free(bs)

		// Display queue keeps the last QueueDepth textures alive.
		displayQueue = append(displayQueue, out)
		if len(displayQueue) > p.QueueDepth {
			old := displayQueue[0]
			displayQueue = displayQueue[1:]
			b.Access(old, uint64(pixels+7)/8, 0) // scan-out read
			b.Free(old)
		}
	}

	for _, out := range displayQueue {
		b.Free(out)
	}
	b.Free(model)
	b.Free(quant)
	return b.Build(), nil
}
