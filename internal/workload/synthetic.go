package workload

import (
	"fmt"

	"dmexplore/internal/stats"
	"dmexplore/internal/trace"
)

// SyntheticParams parameterizes a generic allocation mix for unit tests,
// micro-benchmarks and quick explorations: sizes drawn from a weighted
// palette, exponential-ish lifetimes, optional access traffic.
type SyntheticParams struct {
	Seed uint64
	Ops  int // total malloc operations

	// Sizes and Weights define the size palette (parallel slices).
	Sizes   []int64
	Weights []float64

	// FreeProb is the per-step probability of freeing a random live block
	// (after a warm-up of MinLive allocations).
	FreeProb float64
	MinLive  int

	// AccessWordsPerAlloc charges this many application word-writes on
	// allocation and word-reads on free (0 disables access traffic).
	AccessWordsPerAlloc uint64

	// TickCycles charges CPU work every step (0 disables ticks).
	TickCycles uint64
}

// DefaultSyntheticParams returns a mixed small/large palette.
func DefaultSyntheticParams() SyntheticParams {
	return SyntheticParams{
		Seed:                1,
		Ops:                 20000,
		Sizes:               []int64{16, 48, 74, 128, 512, 1500, 4096},
		Weights:             []float64{3, 4, 6, 3, 2, 3, 0.5},
		FreeProb:            0.5,
		MinLive:             64,
		AccessWordsPerAlloc: 8,
		TickCycles:          20,
	}
}

// Name implements Generator.
func (p SyntheticParams) Name() string { return "synthetic" }

// Validate reports parameter errors.
func (p SyntheticParams) Validate() error {
	if p.Ops <= 0 {
		return fmt.Errorf("workload: synthetic needs ops > 0")
	}
	if len(p.Sizes) == 0 || len(p.Sizes) != len(p.Weights) {
		return fmt.Errorf("workload: synthetic sizes/weights mismatch")
	}
	for _, s := range p.Sizes {
		if s <= 0 {
			return fmt.Errorf("workload: synthetic size %d invalid", s)
		}
	}
	if p.FreeProb < 0 || p.FreeProb >= 1 {
		return fmt.Errorf("workload: synthetic free probability %v invalid", p.FreeProb)
	}
	if p.MinLive < 0 {
		return fmt.Errorf("workload: synthetic min live %d invalid", p.MinLive)
	}
	return nil
}

// Generate implements Generator.
func (p SyntheticParams) Generate() (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	choice, err := stats.NewWeightedChoice(p.Weights)
	if err != nil {
		return nil, fmt.Errorf("workload: synthetic weights: %w", err)
	}
	rng := stats.NewRNG(p.Seed)
	b := trace.NewBuilder(fmt.Sprintf("synthetic[ops=%d,seed=%d]", p.Ops, p.Seed))

	var live []uint64
	for op := 0; op < p.Ops; op++ {
		size := p.Sizes[choice.Sample(rng)]
		id := b.Alloc(size)
		if p.AccessWordsPerAlloc > 0 {
			b.Access(id, 0, p.AccessWordsPerAlloc)
		}
		live = append(live, id)
		b.Tick(p.TickCycles)

		for len(live) > p.MinLive && rng.Bool(p.FreeProb) {
			k := rng.Intn(len(live))
			id := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if p.AccessWordsPerAlloc > 0 {
				b.Access(id, p.AccessWordsPerAlloc, 0)
			}
			b.Free(id)
		}
	}
	b.FreeAll()
	return b.Build(), nil
}
