package pareto_test

import (
	"fmt"

	"dmexplore/internal/pareto"
)

func ExampleFront() {
	points := []pareto.Point{
		{Tag: "fast-but-fat", Values: []float64{10, 900}},
		{Tag: "balanced", Values: []float64{40, 400}},
		{Tag: "dominated", Values: []float64{50, 500}},
		{Tag: "slim-but-slow", Values: []float64{90, 100}},
	}
	for _, p := range pareto.Front(points) {
		fmt.Println(p.Tag)
	}
	// Output:
	// fast-but-fat
	// balanced
	// slim-but-slow
}

func ExampleDominates() {
	a := pareto.Point{Tag: "a", Values: []float64{1, 2}}
	b := pareto.Point{Tag: "b", Values: []float64{2, 2}}
	fmt.Println(pareto.Dominates(a, b), pareto.Dominates(b, a))
	// Output: true false
}

func ExampleKnee() {
	front := []pareto.Point{
		{Tag: "extreme-x", Values: []float64{0, 100}},
		{Tag: "knee", Values: []float64{15, 20}},
		{Tag: "extreme-y", Values: []float64{100, 0}},
	}
	fmt.Println(front[pareto.Knee(front)].Tag)
	// Output: knee
}
