// Package pareto implements the multi-objective machinery of the
// exploration tool: dominance tests, Pareto-front extraction over any
// number of minimization objectives, and front quality indicators
// (2-D hypervolume, knee point). The tool's final step — reducing a full
// configuration sweep to the Pareto-optimal set for the designer — lives
// here.
package pareto

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Point is one candidate in objective space. All objectives are
// minimized. Tag carries the candidate's identity (configuration index or
// ID) through the reduction.
type Point struct {
	Tag    string
	Values []float64
}

// Dominates reports whether a dominates b: a is no worse in every
// objective and strictly better in at least one. Points of differing
// dimensionality never dominate each other.
func Dominates(a, b Point) bool {
	if len(a.Values) != len(b.Values) || len(a.Values) == 0 {
		return false
	}
	strict := false
	for i := range a.Values {
		if a.Values[i] > b.Values[i] {
			return false
		}
		if a.Values[i] < b.Values[i] {
			strict = true
		}
	}
	return strict
}

// Front extracts the Pareto-optimal subset of points. For two objectives
// it uses an O(n log n) sweep; otherwise the general O(n²) filter.
// Duplicate objective vectors are all kept (they are mutually
// non-dominating); order within the front follows ascending first
// objective, ties broken by the remaining objectives then Tag, so output
// is deterministic.
func Front(points []Point) []Point {
	if len(points) <= 1 {
		out := make([]Point, len(points))
		copy(out, points)
		return out
	}
	dim := len(points[0].Values)
	for _, p := range points {
		if len(p.Values) != dim {
			panic(fmt.Sprintf("pareto: mixed dimensionality: %d vs %d", len(p.Values), dim))
		}
	}
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })

	if dim == 2 {
		return front2D(sorted)
	}
	return frontND(sorted)
}

// less orders points lexicographically by objectives then Tag.
func less(a, b Point) bool {
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return a.Values[i] < b.Values[i]
		}
	}
	return a.Tag < b.Tag
}

// front2D sweeps points sorted by (x, y): a point is on the front iff its
// y strictly improves on the best y seen so far (equal vectors kept).
func front2D(sorted []Point) []Point {
	var out []Point
	bestY := math.Inf(1)
	for _, p := range sorted {
		y := p.Values[1]
		switch {
		case y < bestY:
			out = append(out, p)
			bestY = y
		case y == bestY && len(out) > 0 && sameValues(out[len(out)-1], p):
			// Exact duplicate of the last front point: keep it.
			out = append(out, p)
		}
	}
	return out
}

func sameValues(a, b Point) bool {
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

// frontNDComparisons counts the dominance tests frontND performs, for the
// complexity-bound guard test (TestFrontNDComparisonBound). Atomic so a
// caller running Front concurrently never races the instrumentation.
var frontNDComparisons atomic.Int64

// frontND is the general (>= 3 objectives) filter. It exploits the
// lexicographic sort: any dominator of p is componentwise <= p, hence
// lexicographically before p, and because dominance is transitive every
// dominated point is dominated by some *front* member that precedes it.
// So each point is tested only against the front accumulated so far —
// O(n·f) dominance tests for n points and a final front of size f,
// instead of the naive all-pairs O(n²) over the sorted tail. The worst
// case (every point non-dominated, f = n) remains quadratic, which is
// inherent to pairwise filtering; BenchmarkFrontND tracks it and
// TestFrontNDComparisonBound pins the O(n·f) behaviour on
// dominated-heavy inputs.
func frontND(sorted []Point) []Point {
	var out []Point
	comparisons := int64(0)
	for _, p := range sorted {
		dominated := false
		for _, q := range out {
			comparisons++
			if Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	frontNDComparisons.Add(comparisons)
	return out
}

// Normalize rescales each objective of the points to [0, 1] over the
// point set (degenerate objectives — constant across points — map to 0).
// It returns fresh points; inputs are not modified.
func Normalize(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	dim := len(points[0].Values)
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for d := 0; d < dim; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range points {
		for d, v := range p.Values {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	out := make([]Point, len(points))
	for i, p := range points {
		vals := make([]float64, dim)
		for d, v := range p.Values {
			if hi[d] > lo[d] {
				vals[d] = (v - lo[d]) / (hi[d] - lo[d])
			}
		}
		out[i] = Point{Tag: p.Tag, Values: vals}
	}
	return out
}

// Hypervolume2D returns the area dominated by the front between the
// origin-ward envelope and the reference point (both objectives
// minimized; ref must be dominated by every front point for a meaningful
// result). Non-front points are filtered first.
func Hypervolume2D(points []Point, ref [2]float64) float64 {
	front := Front(points)
	if len(front) == 0 {
		return 0
	}
	// front is sorted by ascending x, descending y.
	hv := 0.0
	prevY := ref[1]
	for _, p := range front {
		x, y := p.Values[0], p.Values[1]
		if x >= ref[0] || y >= prevY {
			continue
		}
		hv += (ref[0] - x) * (prevY - y)
		prevY = y
	}
	return hv
}

// Knee returns the front point closest (Euclidean, after normalization)
// to the ideal corner — the conventional "balanced" pick offered to the
// designer. It returns the index into the supplied front slice, or -1
// for an empty front.
func Knee(front []Point) int {
	if len(front) == 0 {
		return -1
	}
	norm := Normalize(front)
	best, bestDist := -1, math.Inf(1)
	for i, p := range norm {
		var d float64
		for _, v := range p.Values {
			d += v * v
		}
		if d < bestDist {
			bestDist = d
			best = i
		}
	}
	return best
}

// MergeFronts reduces per-island (or per-shard) fronts to the global
// Pareto front of their union — the coordinator's migration merge. Tags
// deduplicate across inputs (islands commonly rediscover the same
// configuration; the first occurrence wins), then one Front pass over
// the union extracts the survivors. Output order is Front's
// deterministic order, so the merge is a pure function of the input
// fronts regardless of which island reported first.
func MergeFronts(fronts ...[]Point) []Point {
	var union []Point
	seen := make(map[string]bool)
	for _, f := range fronts {
		for _, p := range f {
			if seen[p.Tag] {
				continue
			}
			seen[p.Tag] = true
			union = append(union, p)
		}
	}
	return Front(union)
}
