package pareto

import (
	"fmt"
	"testing"

	"dmexplore/internal/stats"
)

func randomPoints(n, dim int, seed uint64) []Point {
	rng := stats.NewRNG(seed)
	pts := make([]Point, n)
	for i := range pts {
		vals := make([]float64, dim)
		for d := range vals {
			vals[d] = rng.Float64() * 1e6
		}
		pts[i] = Point{Tag: fmt.Sprintf("p%d", i), Values: vals}
	}
	return pts
}

func BenchmarkFront2D(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := randomPoints(n, 2, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Front(pts)
			}
		})
	}
}

func BenchmarkFront3D(b *testing.B) {
	pts := randomPoints(1000, 3, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Front(pts)
	}
}

func BenchmarkHypervolume2D(b *testing.B) {
	pts := randomPoints(1000, 2, 3)
	ref := [2]float64{1e6, 1e6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hypervolume2D(pts, ref)
	}
}

// BenchmarkFrontND pins the >= 3-objective filter. Random uniform points
// stress the front-heavy regime (f grows with n); the dominated-heavy
// inputs show the O(n + f²) fast path the bound test guards.
func BenchmarkFrontND(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("random/n=%d", n), func(b *testing.B) {
			pts := randomPoints(n, 3, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Front(pts)
			}
		})
	}
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("dominated/n=%d", n), func(b *testing.B) {
			pts := dominatedHeavy(n, 100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Front(pts)
			}
		})
	}
}
