package pareto

import (
	"fmt"
	"testing"
	"testing/quick"

	"dmexplore/internal/stats"
)

func pt(tag string, vals ...float64) Point { return Point{Tag: tag, Values: vals} }

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{pt("a", 1, 1), pt("b", 2, 2), true},
		{pt("a", 1, 2), pt("b", 2, 1), false},
		{pt("a", 1, 1), pt("b", 1, 1), false}, // equal: no strict improvement
		{pt("a", 1, 1), pt("b", 1, 2), true},
		{pt("a", 2, 2), pt("b", 1, 1), false},
		{pt("a", 1), pt("b", 1, 2), false}, // mixed dims
		{pt("a"), pt("b"), false},          // empty
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Dominates = %v", i, got)
		}
	}
}

func TestFront2D(t *testing.T) {
	points := []Point{
		pt("a", 1, 10),
		pt("b", 2, 8),
		pt("c", 3, 9), // dominated by b
		pt("d", 4, 4),
		pt("e", 5, 5), // dominated by d
		pt("f", 6, 1),
	}
	front := Front(points)
	want := []string{"a", "b", "d", "f"}
	if len(front) != len(want) {
		t.Fatalf("front %v", front)
	}
	for i, tag := range want {
		if front[i].Tag != tag {
			t.Fatalf("front[%d] = %s want %s", i, front[i].Tag, tag)
		}
	}
}

func TestFrontKeepsDuplicates(t *testing.T) {
	points := []Point{pt("a", 1, 1), pt("b", 1, 1), pt("c", 2, 2)}
	front := Front(points)
	if len(front) != 2 {
		t.Fatalf("front %v, want both duplicates", front)
	}
}

func TestFrontEdgeCases(t *testing.T) {
	if got := Front(nil); len(got) != 0 {
		t.Fatal("nil input")
	}
	one := []Point{pt("a", 5, 5)}
	if got := Front(one); len(got) != 1 || got[0].Tag != "a" {
		t.Fatal("single point")
	}
}

func TestFrontDoesNotMutateInput(t *testing.T) {
	points := []Point{pt("b", 2, 2), pt("a", 1, 3)}
	Front(points)
	if points[0].Tag != "b" {
		t.Fatal("input reordered")
	}
}

func TestFront3D(t *testing.T) {
	points := []Point{
		pt("a", 1, 5, 5),
		pt("b", 5, 1, 5),
		pt("c", 5, 5, 1),
		pt("d", 6, 6, 6), // dominated by all
		pt("e", 1, 5, 5), // duplicate of a
	}
	front := Front(points)
	if len(front) != 4 {
		t.Fatalf("3D front size %d: %v", len(front), front)
	}
	for _, p := range front {
		if p.Tag == "d" {
			t.Fatal("dominated point on front")
		}
	}
}

func TestFrontMixedDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed dims did not panic")
		}
	}()
	Front([]Point{pt("a", 1, 2), pt("b", 1)})
}

// Property: no front point dominates another; every non-front point is
// dominated by some front point.
func TestFrontProperties(t *testing.T) {
	rng := stats.NewRNG(5)
	if err := quick.Check(func(n uint8, dim3 bool) bool {
		count := int(n%40) + 1
		dim := 2
		if dim3 {
			dim = 3
		}
		points := make([]Point, count)
		for i := range points {
			vals := make([]float64, dim)
			for d := range vals {
				vals[d] = float64(rng.Intn(20))
			}
			points[i] = Point{Tag: string(rune('A' + i%26)), Values: vals}
		}
		front := Front(points)
		if len(front) == 0 {
			return false
		}
		inFront := make(map[*Point]bool)
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i], front[j]) {
					return false
				}
			}
			inFront[&front[i]] = true
		}
		for _, p := range points {
			dominated := false
			onFront := false
			for _, f := range front {
				if sameValues(f, p) {
					onFront = true
					break
				}
				if Dominates(f, p) {
					dominated = true
				}
			}
			if !onFront && !dominated {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check the 2-D sweep against the general N-D filter.
func TestFront2DMatchesND(t *testing.T) {
	rng := stats.NewRNG(77)
	for iter := 0; iter < 100; iter++ {
		n := rng.Intn(50) + 1
		points := make([]Point, n)
		for i := range points {
			points[i] = pt(string(rune('a'+i%26))+string(rune('0'+i/26)),
				float64(rng.Intn(15)), float64(rng.Intn(15)))
		}
		sweep := Front(points)
		sorted := make([]Point, len(points))
		copy(sorted, points)
		// Use the same ordering then the quadratic filter.
		general := frontND(sortedCopy(sorted))
		if len(sweep) != len(general) {
			t.Fatalf("iter %d: sweep %d vs general %d", iter, len(sweep), len(general))
		}
		for i := range sweep {
			if !sameValues(sweep[i], general[i]) || sweep[i].Tag != general[i].Tag {
				t.Fatalf("iter %d: point %d differs", iter, i)
			}
		}
	}
}

func sortedCopy(points []Point) []Point {
	out := make([]Point, len(points))
	copy(out, points)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestNormalize(t *testing.T) {
	points := []Point{pt("a", 0, 100), pt("b", 10, 200), pt("c", 5, 150)}
	norm := Normalize(points)
	if norm[0].Values[0] != 0 || norm[1].Values[0] != 1 || norm[2].Values[0] != 0.5 {
		t.Fatalf("normalized x: %v", norm)
	}
	if norm[0].Values[1] != 0 || norm[1].Values[1] != 1 {
		t.Fatalf("normalized y: %v", norm)
	}
	// Constant objective maps to zero.
	flat := Normalize([]Point{pt("a", 7, 1), pt("b", 7, 2)})
	if flat[0].Values[0] != 0 || flat[1].Values[0] != 0 {
		t.Fatal("constant objective not zeroed")
	}
	// Input unchanged.
	if points[0].Values[1] != 100 {
		t.Fatal("input mutated")
	}
	if Normalize(nil) != nil {
		t.Fatal("nil input")
	}
}

func TestHypervolume2D(t *testing.T) {
	// Single point at (1,1) with ref (3,3): area 2x2 = 4.
	hv := Hypervolume2D([]Point{pt("a", 1, 1)}, [2]float64{3, 3})
	if hv != 4 {
		t.Fatalf("hv %v want 4", hv)
	}
	// Staircase: (1,2) and (2,1), ref (3,3): 2*1 + 1*... = (3-1)*(3-2) + (3-2)*(2-1) = 2+1 = 3.
	hv = Hypervolume2D([]Point{pt("a", 1, 2), pt("b", 2, 1)}, [2]float64{3, 3})
	if hv != 3 {
		t.Fatalf("hv %v want 3", hv)
	}
	// Dominated points do not add volume.
	hv2 := Hypervolume2D([]Point{pt("a", 1, 2), pt("b", 2, 1), pt("c", 2, 2)}, [2]float64{3, 3})
	if hv2 != hv {
		t.Fatalf("dominated point changed hv: %v vs %v", hv2, hv)
	}
	// Point outside ref contributes nothing.
	if got := Hypervolume2D([]Point{pt("a", 5, 5)}, [2]float64{3, 3}); got != 0 {
		t.Fatalf("outside point hv %v", got)
	}
	if Hypervolume2D(nil, [2]float64{1, 1}) != 0 {
		t.Fatal("empty hv")
	}
}

func TestHypervolumeMoreIsBetter(t *testing.T) {
	// A front closer to the origin must enclose more volume.
	far := []Point{pt("a", 2, 8), pt("b", 8, 2)}
	near := []Point{pt("a", 1, 4), pt("b", 4, 1)}
	ref := [2]float64{10, 10}
	if Hypervolume2D(near, ref) <= Hypervolume2D(far, ref) {
		t.Fatal("nearer front has less hypervolume")
	}
}

func TestKnee(t *testing.T) {
	front := []Point{pt("a", 0, 10), pt("b", 3, 3), pt("c", 10, 0)}
	if got := Knee(front); front[got].Tag != "b" {
		t.Fatalf("knee %s", front[got].Tag)
	}
	if Knee(nil) != -1 {
		t.Fatal("empty knee")
	}
	single := []Point{pt("only", 5, 5)}
	if Knee(single) != 0 {
		t.Fatal("single-point knee")
	}
}

func TestKneeExtremesNotPicked(t *testing.T) {
	// With a balanced middle point, neither axis extreme should win.
	front := []Point{pt("x", 0, 100), pt("m", 20, 20), pt("y", 100, 0)}
	k := Knee(front)
	if front[k].Tag != "m" {
		t.Fatalf("knee picked extreme %s", front[k].Tag)
	}
}

// naiveFront is the reference all-pairs filter frontND is checked against.
func naiveFront(points []Point) []Point {
	sorted := sortedCopy(points)
	var out []Point
	for i, p := range sorted {
		dominated := false
		for j, q := range sorted {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// TestFrontNDMatchesNaive cross-checks the front-members-only scan in
// frontND against the naive all-pairs filter on random 3-D and 4-D sets.
func TestFrontNDMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(31)
	for iter := 0; iter < 100; iter++ {
		dim := 3 + iter%2
		n := rng.Intn(60) + 1
		points := make([]Point, n)
		for i := range points {
			vals := make([]float64, dim)
			for d := range vals {
				vals[d] = float64(rng.Intn(12))
			}
			points[i] = Point{Tag: fmt.Sprintf("p%d", i), Values: vals}
		}
		got := Front(points)
		want := naiveFront(points)
		if len(got) != len(want) {
			t.Fatalf("iter %d: frontND %d vs naive %d", iter, len(got), len(want))
		}
		for i := range got {
			if !sameValues(got[i], want[i]) || got[i].Tag != want[i].Tag {
				t.Fatalf("iter %d: point %d differs: %+v vs %+v", iter, i, got[i], want[i])
			}
		}
	}
}

// dominatedHeavy builds n 3-D points of which exactly f form the front
// (an antichain on the first two coordinates) and the remaining n-f are
// dominated by every front member.
func dominatedHeavy(n, f int) []Point {
	pts := make([]Point, 0, n)
	for j := 0; j < f; j++ {
		pts = append(pts, Point{Tag: fmt.Sprintf("f%d", j),
			Values: []float64{float64(j), float64(f - j), 0}})
	}
	for k := 0; f+k < n; k++ {
		pts = append(pts, Point{Tag: fmt.Sprintf("d%d", k),
			Values: []float64{float64(f + k), float64(f + k), 1}})
	}
	return pts
}

// TestFrontNDComparisonBound is the quadratic-blowup guard: on a
// dominated-heavy input the filter must stay within its documented
// O(n + f²) dominance tests — each dominated point is killed by the
// first front member it meets, each front member scans at most the front
// built so far. The previous all-pairs implementation scanned every
// point per front member (~f·n tests) and would exceed this bound by two
// orders of magnitude.
func TestFrontNDComparisonBound(t *testing.T) {
	const n, f = 50000, 100
	pts := dominatedHeavy(n, f)
	frontNDComparisons.Store(0)
	front := Front(pts)
	if len(front) != f {
		t.Fatalf("front size %d, want %d", len(front), f)
	}
	comparisons := frontNDComparisons.Load()
	bound := int64(n + f*f)
	if comparisons > bound {
		t.Fatalf("frontND made %d dominance tests on n=%d f=%d, bound %d",
			comparisons, n, f, bound)
	}
}

func TestMergeFronts(t *testing.T) {
	a := []Point{pt("1", 1, 10), pt("2", 5, 5)}
	b := []Point{pt("3", 10, 1), pt("4", 6, 6)} // 4 dominated by 2
	c := []Point{pt("2", 5, 5), pt("5", 2, 9)}  // 2 duplicates island a's export

	merged := MergeFronts(a, b, c)
	want := map[string]bool{"1": true, "2": true, "3": true, "5": true}
	if len(merged) != len(want) {
		t.Fatalf("merged front has %d members: %v", len(merged), merged)
	}
	seen := map[string]int{}
	for _, p := range merged {
		if !want[p.Tag] {
			t.Fatalf("dominated or unknown tag %q survived the merge", p.Tag)
		}
		seen[p.Tag]++
		if seen[p.Tag] > 1 {
			t.Fatalf("tag %q duplicated in merged front", p.Tag)
		}
	}

	// Deterministic regardless of reporting order.
	again := MergeFronts(c, b, a)
	if len(again) != len(merged) {
		t.Fatalf("merge is order-sensitive: %d vs %d members", len(again), len(merged))
	}
	got := map[string]bool{}
	for _, p := range again {
		got[p.Tag] = true
	}
	for tag := range want {
		if !got[tag] {
			t.Fatalf("tag %q lost when islands report in a different order", tag)
		}
	}

	if out := MergeFronts(); out != nil && len(out) != 0 {
		t.Fatalf("empty merge returned %v", out)
	}
}
