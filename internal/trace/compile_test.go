package trace

import (
	"testing"
)

// buildSample returns a trace exercising every op kind with sparse,
// out-of-order IDs (the builder hands out 1,2,3... so we craft events by
// hand to get a sparse ID space).
func buildSample() *Trace {
	return &Trace{Name: "sample", Events: []Event{
		{Kind: KindAlloc, ID: 100, Size: 64},
		{Kind: KindAlloc, ID: 7, Size: 16},
		{Kind: KindAccess, ID: 100, Reads: 3, Writes: 1},
		{Kind: KindTick, Cycles: 10},
		{Kind: KindFree, ID: 100},
		{Kind: KindAlloc, ID: 900, Size: 32},
		{Kind: KindAccess, ID: 7, Writes: 2},
		{Kind: KindFree, ID: 7},
		{Kind: KindFree, ID: 900},
	}}
}

func TestCompileRenumbersDense(t *testing.T) {
	c, err := Compile(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumIDs != 3 {
		t.Fatalf("NumIDs = %d, want 3", c.NumIDs)
	}
	if c.Len() != 9 {
		t.Fatalf("Len = %d, want 9", c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		op := c.At(i)
		if op.Kind == KindTick {
			continue
		}
		if int(op.ID) >= c.NumIDs {
			t.Fatalf("op %d: id %d outside dense range [0,%d)", i, op.ID, c.NumIDs)
		}
	}
	// IDs are assigned in first-alloc order: 100 -> 0, 7 -> 1, 900 -> 2.
	if c.At(0).ID != 0 || c.At(1).ID != 1 || c.At(5).ID != 2 {
		t.Fatalf("dense assignment: %d %d %d", c.At(0).ID, c.At(1).ID, c.At(5).ID)
	}
	if c.At(2).ID != 0 || c.At(6).ID != 1 {
		t.Fatalf("access renumbering: %d %d", c.At(2).ID, c.At(6).ID)
	}
}

func TestCompileResolvesFreeSizes(t *testing.T) {
	c, err := Compile(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	frees := map[uint32]int64{}
	for i := 0; i < c.Len(); i++ {
		op := c.At(i)
		if op.Kind == KindFree {
			frees[op.ID] = op.Size
		}
	}
	want := map[uint32]int64{0: 64, 1: 16, 2: 32}
	for id, size := range want {
		if frees[id] != size {
			t.Errorf("free of dense id %d carries size %d, want %d", id, frees[id], size)
		}
	}
}

func TestCompileCounts(t *testing.T) {
	c, err := Compile(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	if c.Allocs != 3 || c.Frees != 3 || c.Accesses != 2 || c.Ticks != 1 {
		t.Fatalf("counts %d/%d/%d/%d", c.Allocs, c.Frees, c.Accesses, c.Ticks)
	}
	// Peak live: 100 and 7 overlap; 900 lives alone. Peak demand 64+16.
	if c.PeakLive != 2 {
		t.Fatalf("PeakLive = %d, want 2", c.PeakLive)
	}
	if c.PeakRequestedBytes != 80 {
		t.Fatalf("PeakRequestedBytes = %d, want 80", c.PeakRequestedBytes)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	cases := map[string]*Trace{
		"double alloc": {Events: []Event{
			{Kind: KindAlloc, ID: 1, Size: 8},
			{Kind: KindAlloc, ID: 1, Size: 8},
		}},
		"reuse after free": {Events: []Event{
			{Kind: KindAlloc, ID: 1, Size: 8},
			{Kind: KindFree, ID: 1},
			{Kind: KindAlloc, ID: 1, Size: 8},
		}},
		"free dead": {Events: []Event{{Kind: KindFree, ID: 1}}},
		"access dead": {Events: []Event{
			{Kind: KindAlloc, ID: 1, Size: 8},
			{Kind: KindFree, ID: 1},
			{Kind: KindAccess, ID: 1, Reads: 1},
		}},
		"empty access": {Events: []Event{
			{Kind: KindAlloc, ID: 1, Size: 8},
			{Kind: KindAccess, ID: 1},
		}},
		"zero tick": {Events: []Event{{Kind: KindTick}}},
		"bad size":  {Events: []Event{{Kind: KindAlloc, ID: 1, Size: 0}}},
		"bad kind":  {Events: []Event{{Kind: EventKind(99)}}},
	}
	for name, tr := range cases {
		if _, err := Compile(tr); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCompileAgreesWithValidate pins Compile's validation to the original
// Validate: a trace is compilable iff it is valid.
func TestCompileAgreesWithValidate(t *testing.T) {
	b := NewBuilder("agree")
	a := b.Alloc(100)
	bID := b.Alloc(200)
	b.Access(a, 4, 2)
	b.Tick(7)
	b.Free(a)
	b.Access(bID, 0, 1)
	b.FreeAll()
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(tr); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderFreeAllAscending(t *testing.T) {
	b := NewBuilder("freeall")
	for i := 0; i < 100; i++ {
		b.Alloc(8)
	}
	// Free a few in the middle so Live() is a strict subset.
	b.Free(50)
	b.Free(10)
	b.FreeAll()
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	var started bool
	for _, e := range tr.Events[102:] { // after 100 allocs + 2 manual frees
		if e.Kind != KindFree {
			t.Fatalf("unexpected %v after FreeAll", e.Kind)
		}
		if started && e.ID <= prev {
			t.Fatalf("FreeAll out of order: %d after %d", e.ID, prev)
		}
		prev, started = e.ID, true
	}
	if b.NumLive() != 0 {
		t.Fatalf("%d still live", b.NumLive())
	}
}
