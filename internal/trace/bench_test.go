package trace

import (
	"bytes"
	"testing"
)

func benchTrace(n int) *Trace {
	b := NewBuilder("bench")
	for i := 0; i < n; i++ {
		id := b.Alloc(int64(i%1500 + 1))
		b.Access(id, uint64(i%32+1), 4)
		b.Tick(10)
		b.Free(id)
	}
	return b.Build()
}

func BenchmarkBinaryEncode(b *testing.B) {
	tr := benchTrace(10000)
	var buf bytes.Buffer
	WriteBinary(&buf, tr)
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryDecode(b *testing.B) {
	tr := benchTrace(10000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTextEncode(b *testing.B) {
	tr := benchTrace(10000)
	var buf bytes.Buffer
	WriteText(&buf, tr)
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteText(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	tr := benchTrace(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(tr)
	}
}

func BenchmarkValidate(b *testing.B) {
	tr := benchTrace(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
