package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dmexplore/internal/stats"
)

// randomTrace builds a valid pseudo-random trace of roughly n events.
func randomTrace(name string, n int, seed uint64) *Trace {
	rng := stats.NewRNG(seed)
	b := NewBuilder(name)
	var live []uint64
	for i := 0; i < n; i++ {
		switch {
		case len(live) > 0 && rng.Bool(0.3):
			k := rng.Intn(len(live))
			b.Free(live[k])
			live = append(live[:k], live[k+1:]...)
		case len(live) > 0 && rng.Bool(0.4):
			b.Access(live[rng.Intn(len(live))], uint64(rng.Intn(500)), uint64(rng.Intn(500)+1))
		case rng.Bool(0.1):
			b.Tick(uint64(rng.Intn(100000) + 1))
		default:
			live = append(live, b.Alloc(int64(rng.Intn(1<<20))+1))
		}
	}
	b.FreeAll()
	return b.Build()
}

func TestBinaryV2RoundTrip(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), randomTrace("v2prop", 20000, 7)} {
		var buf bytes.Buffer
		if err := WriteBinaryV2(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != tr.Name || !reflect.DeepEqual(got.Events, tr.Events) {
			t.Fatalf("%s: v2 round trip diverged", tr.Name)
		}
		// ReadAuto must sniff v2 like any other format.
		auto, err := ReadAuto(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(auto.Events, tr.Events) {
			t.Fatalf("%s: ReadAuto diverged on v2", tr.Name)
		}
	}
}

func TestReadBinaryParallelMatchesSequential(t *testing.T) {
	defer func(w int64) { fetchWindowBytes = w }(fetchWindowBytes)
	fetchWindowBytes = 16 << 10 // many fetch groups on a small file

	tr := randomTrace("par", 50000, 11)
	var buf bytes.Buffer
	if err := writeBinaryV2(&buf, tr, 4096); err != nil { // many blocks
		t.Fatal(err)
	}
	data := buf.Bytes()
	seq, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	wantCompiled, err := Compile(seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := ReadBinaryParallel(bytes.NewReader(data), int64(len(data)), workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Name != tr.Name || !reflect.DeepEqual(got.Events, tr.Events) {
			t.Fatalf("workers=%d: parallel read diverged from the source trace", workers)
		}
		gotCompiled, err := Compile(got)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotCompiled, wantCompiled) {
			t.Fatalf("workers=%d: compiled trace diverged", workers)
		}
	}
}

func TestReadBinaryParallelV1Fallback(t *testing.T) {
	tr := randomTrace("v1fb", 5000, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryParallel(bytes.NewReader(buf.Bytes()), int64(buf.Len()), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatal("v1 fallback diverged")
	}
}

func TestReadFileAllFormats(t *testing.T) {
	tr := randomTrace("files", 8000, 5)
	dir := t.TempDir()
	writers := map[string]func(*os.File) error{
		"text": func(f *os.File) error { return WriteText(f, tr) },
		"v1":   func(f *os.File) error { return WriteBinary(f, tr) },
		"v2":   func(f *os.File) error { return WriteBinaryV2(f, tr) },
	}
	for format, write := range writers {
		path := filepath.Join(dir, format+".dmt")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path, 4, nil)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !reflect.DeepEqual(got.Events, tr.Events) {
			t.Fatalf("%s: ReadFile diverged", format)
		}
		c, err := ReadCompiledFile(path, 4, nil)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if c.Len() != tr.Len() {
			t.Fatalf("%s: compiled %d ops for %d events", format, c.Len(), tr.Len())
		}
	}
}

func TestBinaryV2CorruptionDetected(t *testing.T) {
	tr := randomTrace("crc", 10000, 9)
	var buf bytes.Buffer
	if err := writeBinaryV2(&buf, tr, 2048); err != nil {
		t.Fatal(err)
	}
	data := bytes.Clone(buf.Bytes())
	data[len(data)/2] ^= 0x40 // flip a bit mid-file
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("sequential read accepted corruption")
	}
	if _, err := ReadBinaryParallel(bytes.NewReader(data), int64(len(data)), 4, nil); err == nil {
		t.Fatal("parallel read accepted corruption")
	}
}

func TestBinaryV1ImplausibleCountRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("DMTR")
	buf.WriteByte(1)
	buf.WriteByte(0) // empty name
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 1<<40) // claims a trillion events
	buf.Write(tmp[:n])
	_, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "implausible event count") {
		t.Fatalf("hostile count not rejected clearly: %v", err)
	}
}

func TestBinaryV1TruncationNamesOffsetAndEvent(t *testing.T) {
	tr := randomTrace("trunc", 2000, 13)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Len() * 2 / 3
	_, err := ReadBinary(bytes.NewReader(buf.Bytes()[:cut]))
	if err == nil {
		t.Fatal("truncated stream accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "byte offset") || !strings.Contains(msg, "truncated at event") {
		t.Fatalf("truncation error lacks context: %v", err)
	}
}

func TestBinaryV2MissingFooterFailsParallelOnly(t *testing.T) {
	tr := randomTrace("nofoot", 5000, 17)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-8] // chop into the footer trailer
	// The streaming reader never needs the footer...
	got, err := ReadBinary(bytes.NewReader(data))
	if err != nil || !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("streaming read of footer-chopped file: %v", err)
	}
	// ...but the index-driven parallel reader must refuse loudly.
	if _, err := ReadBinaryParallel(bytes.NewReader(data), int64(len(data)), 4, nil); err == nil {
		t.Fatal("parallel read accepted a chopped footer")
	}
}
