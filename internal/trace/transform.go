package trace

import (
	"fmt"

	"dmexplore/internal/stats"
)

// Transforms over traces: slicing a window out of a long capture and
// interleaving several applications into one combined trace (the
// multi-application SoC scenario — several dynamic tasks sharing one
// DM subsystem).

// Slice returns the sub-trace of events [from, to) made self-contained:
// allocations live at 'from' are re-created at the start (so frees and
// accesses inside the window stay valid), and allocations still live at
// 'to' are left unfreed (truncation does not invent frees).
func Slice(t *Trace, from, to int) (*Trace, error) {
	if from < 0 || to > len(t.Events) || from > to {
		return nil, fmt.Errorf("trace: slice [%d,%d) out of range 0..%d", from, to, len(t.Events))
	}
	out := &Trace{Name: fmt.Sprintf("%s[%d:%d]", t.Name, from, to)}

	// Allocations live at the window start, in allocation order.
	live := make(map[uint64]int64)
	var order []uint64
	for _, e := range t.Events[:from] {
		switch e.Kind {
		case KindAlloc:
			live[e.ID] = e.Size
			order = append(order, e.ID)
		case KindFree:
			delete(live, e.ID)
		}
	}
	for _, id := range order {
		if size, ok := live[id]; ok {
			out.Events = append(out.Events, Event{Kind: KindAlloc, ID: id, Size: size})
		}
	}
	out.Events = append(out.Events, t.Events[from:to]...)
	return out, nil
}

// Interleave merges several traces into one combined multi-application
// trace. Events keep their per-trace order; the merge interleaves
// proportionally to the remaining lengths with deterministic
// pseudo-random arbitration (seed). IDs are remapped to avoid collisions.
func Interleave(name string, seed uint64, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: nothing to interleave")
	}
	total := 0
	for _, t := range traces {
		total += len(t.Events)
	}
	out := &Trace{Name: name, Events: make([]Event, 0, total)}
	rng := stats.NewRNG(seed)
	pos := make([]int, len(traces))
	// idBase gives each input trace a disjoint ID namespace.
	idBase := make([]uint64, len(traces))
	for i := 1; i < len(traces); i++ {
		idBase[i] = idBase[i-1] + maxID(traces[i-1]) + 1
	}
	for {
		// Weighted pick proportional to remaining events.
		remaining := 0
		for i, t := range traces {
			remaining += len(t.Events) - pos[i]
		}
		if remaining == 0 {
			return out, nil
		}
		x := rng.Int64n(int64(remaining))
		src := -1
		for i, t := range traces {
			r := int64(len(t.Events) - pos[i])
			if x < r {
				src = i
				break
			}
			x -= r
		}
		e := traces[src].Events[pos[src]]
		pos[src]++
		if e.ID != 0 {
			e.ID += idBase[src]
		}
		out.Events = append(out.Events, e)
	}
}

// maxID returns the largest allocation ID used in t.
func maxID(t *Trace) uint64 {
	var max uint64
	for _, e := range t.Events {
		if e.ID > max {
			max = e.ID
		}
	}
	return max
}

// Concat appends traces back to back with disjoint ID namespaces —
// sequential phases of different applications.
func Concat(name string, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: nothing to concatenate")
	}
	out := &Trace{Name: name}
	var base uint64
	for _, t := range traces {
		for _, e := range t.Events {
			if e.ID != 0 {
				e.ID += base
			}
			out.Events = append(out.Events, e)
		}
		base += maxID(t) + 1
	}
	return out, nil
}
