// Package trace defines the allocation-trace representation shared by the
// workload generators, the profiler and the CLI tools: the sequence of
// dynamic-memory events (allocations, frees, application accesses to
// allocated data and CPU compute ticks) one application run produces.
//
// Traces are the contract that makes the exploration fair: every allocator
// configuration is profiled against the byte-identical event sequence.
package trace

import (
	"fmt"
	"sort"
)

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds.
const (
	// KindAlloc requests Size bytes for allocation ID.
	KindAlloc EventKind = iota + 1
	// KindFree releases allocation ID.
	KindFree
	// KindAccess performs Reads word-reads and Writes word-writes on the
	// data of live allocation ID (charged to the layer holding it).
	KindAccess
	// KindTick advances the CPU by Cycles compute cycles (non-memory
	// application work: protocol processing, IDCT arithmetic, ...).
	KindTick
)

func (k EventKind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindFree:
		return "free"
	case KindAccess:
		return "access"
	case KindTick:
		return "tick"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one trace record. Field use depends on Kind; unused fields are
// zero.
type Event struct {
	Kind   EventKind
	ID     uint64 // allocation id (Alloc/Free/Access)
	Size   int64  // requested bytes (Alloc)
	Reads  uint64 // application word reads (Access)
	Writes uint64 // application word writes (Access)
	Cycles uint64 // CPU cycles (Tick)
}

// Trace is an ordered event sequence with an identifying name.
type Trace struct {
	Name   string
	Events []Event
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Validate checks the trace's referential integrity: IDs allocate before
// they free or access, no double-alloc or double-free, positive sizes.
func (t *Trace) Validate() error {
	live := make(map[uint64]bool)
	freed := make(map[uint64]bool)
	for i, e := range t.Events {
		switch e.Kind {
		case KindAlloc:
			if e.Size <= 0 {
				return fmt.Errorf("trace %s: event %d: alloc %d with size %d", t.Name, i, e.ID, e.Size)
			}
			if live[e.ID] {
				return fmt.Errorf("trace %s: event %d: id %d allocated twice", t.Name, i, e.ID)
			}
			if freed[e.ID] {
				return fmt.Errorf("trace %s: event %d: id %d reused after free", t.Name, i, e.ID)
			}
			live[e.ID] = true
		case KindFree:
			if !live[e.ID] {
				return fmt.Errorf("trace %s: event %d: free of dead id %d", t.Name, i, e.ID)
			}
			delete(live, e.ID)
			freed[e.ID] = true
		case KindAccess:
			if !live[e.ID] {
				return fmt.Errorf("trace %s: event %d: access to dead id %d", t.Name, i, e.ID)
			}
			if e.Reads == 0 && e.Writes == 0 {
				return fmt.Errorf("trace %s: event %d: empty access", t.Name, i)
			}
		case KindTick:
			if e.Cycles == 0 {
				return fmt.Errorf("trace %s: event %d: zero tick", t.Name, i)
			}
		default:
			return fmt.Errorf("trace %s: event %d: unknown kind %d", t.Name, i, e.Kind)
		}
	}
	return nil
}

// Builder incrementally constructs a valid trace, handing out IDs.
type Builder struct {
	t      Trace
	nextID uint64
	live   map[uint64]bool
}

// NewBuilder returns a builder for a trace with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{t: Trace{Name: name}, nextID: 1, live: make(map[uint64]bool)}
}

// Alloc appends an allocation of size bytes and returns its ID.
func (b *Builder) Alloc(size int64) uint64 {
	if size <= 0 {
		panic(fmt.Sprintf("trace: alloc size %d", size))
	}
	id := b.nextID
	b.nextID++
	b.live[id] = true
	b.t.Events = append(b.t.Events, Event{Kind: KindAlloc, ID: id, Size: size})
	return id
}

// Free appends a free of id. It panics when id is not live — generator
// bugs must fail loudly, not produce invalid workloads.
func (b *Builder) Free(id uint64) {
	if !b.live[id] {
		panic(fmt.Sprintf("trace: free of dead id %d", id))
	}
	delete(b.live, id)
	b.t.Events = append(b.t.Events, Event{Kind: KindFree, ID: id})
}

// Access appends an application access to live allocation id.
func (b *Builder) Access(id uint64, reads, writes uint64) {
	if !b.live[id] {
		panic(fmt.Sprintf("trace: access to dead id %d", id))
	}
	if reads == 0 && writes == 0 {
		return
	}
	b.t.Events = append(b.t.Events, Event{Kind: KindAccess, ID: id, Reads: reads, Writes: writes})
}

// Tick appends cycles of CPU compute work (0 is a no-op).
func (b *Builder) Tick(cycles uint64) {
	if cycles == 0 {
		return
	}
	b.t.Events = append(b.t.Events, Event{Kind: KindTick, Cycles: cycles})
}

// Live returns the IDs currently live, in unspecified order.
func (b *Builder) Live() []uint64 {
	ids := make([]uint64, 0, len(b.live))
	for id := range b.live {
		ids = append(ids, id)
	}
	return ids
}

// NumLive returns the number of live allocations.
func (b *Builder) NumLive() int { return len(b.live) }

// FreeAll frees every live allocation (deterministic ascending-ID order)
// so traces end with an empty heap.
func (b *Builder) FreeAll() {
	ids := b.Live()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b.Free(id)
	}
}

// Build finalizes and returns the trace. The builder must not be used
// afterwards.
func (b *Builder) Build() *Trace {
	t := b.t
	return &t
}
