package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Text format: a line-oriented codec easy to inspect and to feed to the
// CLI tools. One event per line:
//
//	# dmtrace <name>
//	a <id> <size>
//	f <id>
//	x <id> <reads> <writes>
//	t <cycles>
//
// Binary format: "DMTR" magic, version byte, name, event count, then one
// varint-packed record per event. Roughly 4-8x denser than text; the
// profiler's raw logs (which reach gigabytes, as in the paper) use the
// same varint framing.

// WriteText writes the trace in the text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dmtrace %s\n", t.Name); err != nil {
		return err
	}
	for i, e := range t.Events {
		var err error
		switch e.Kind {
		case KindAlloc:
			_, err = fmt.Fprintf(bw, "a %d %d\n", e.ID, e.Size)
		case KindFree:
			_, err = fmt.Fprintf(bw, "f %d\n", e.ID)
		case KindAccess:
			_, err = fmt.Fprintf(bw, "x %d %d %d\n", e.ID, e.Reads, e.Writes)
		case KindTick:
			_, err = fmt.Fprintf(bw, "t %d\n", e.Cycles)
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if name, ok := strings.CutPrefix(line, "# dmtrace "); ok && t.Name == "" {
				t.Name = strings.TrimSpace(name)
			}
			continue
		}
		var e Event
		var n int
		var err error
		switch line[0] {
		case 'a':
			e.Kind = KindAlloc
			n, err = fmt.Sscanf(line, "a %d %d", &e.ID, &e.Size)
			if err != nil || n != 2 {
				return nil, fmt.Errorf("trace: line %d: bad alloc %q", lineNo, line)
			}
		case 'f':
			e.Kind = KindFree
			n, err = fmt.Sscanf(line, "f %d", &e.ID)
			if err != nil || n != 1 {
				return nil, fmt.Errorf("trace: line %d: bad free %q", lineNo, line)
			}
		case 'x':
			e.Kind = KindAccess
			n, err = fmt.Sscanf(line, "x %d %d %d", &e.ID, &e.Reads, &e.Writes)
			if err != nil || n != 3 {
				return nil, fmt.Errorf("trace: line %d: bad access %q", lineNo, line)
			}
		case 't':
			e.Kind = KindTick
			n, err = fmt.Sscanf(line, "t %d", &e.Cycles)
			if err != nil || n != 1 {
				return nil, fmt.Errorf("trace: line %d: bad tick %q", lineNo, line)
			}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", lineNo, line)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

const (
	binaryMagic   = "DMTR"
	binaryVersion = 1
)

// ReadAuto sniffs the trace format (binary magic vs text) and parses
// accordingly.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == binaryMagic {
		return ReadBinary(br)
	}
	return ReadText(br)
}

// WriteBinary writes the trace in the varint binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	for i, e := range t.Events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		var fields []uint64
		switch e.Kind {
		case KindAlloc:
			fields = []uint64{e.ID, uint64(e.Size)}
		case KindFree:
			fields = []uint64{e.ID}
		case KindAccess:
			fields = []uint64{e.ID, e.Reads, e.Writes}
		case KindTick:
			fields = []uint64{e.Cycles}
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
		}
		for _, f := range fields {
			if err := putUvarint(f); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the varint binary format.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: string(name)}
	if count < 1<<24 {
		t.Events = make([]Event, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e := Event{Kind: EventKind(kind)}
		read := func() (uint64, error) { return binary.ReadUvarint(br) }
		switch e.Kind {
		case KindAlloc:
			if e.ID, err = read(); err == nil {
				var sz uint64
				sz, err = read()
				e.Size = int64(sz)
			}
		case KindFree:
			e.ID, err = read()
		case KindAccess:
			if e.ID, err = read(); err == nil {
				if e.Reads, err = read(); err == nil {
					e.Writes, err = read()
				}
			}
		case KindTick:
			e.Cycles, err = read()
		default:
			return nil, fmt.Errorf("trace: event %d: unknown kind %d", i, kind)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}
