package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"dmexplore/internal/blockio"
)

// Text format: a line-oriented codec easy to inspect and to feed to the
// CLI tools. One event per line:
//
//	# dmtrace <name>
//	a <id> <size>
//	f <id>
//	x <id> <reads> <writes>
//	t <cycles>
//
// Binary format: "DMTR" magic, version byte, name, then varint-packed
// event records. Roughly 4-8x denser than text; the profiler's raw logs
// (which reach gigabytes, as in the paper) use the same varint framing.
//
// Version 1 is a single unframed record stream prefixed with a total
// event count. Version 2 groups the same records into self-delimiting
// CRC32C blocks with a seekable footer index (internal/blockio), so a
// reader can verify integrity per block and split a multi-gigabyte file
// into independent chunks for parallel decoding (ReadBinaryParallel).

// WriteText writes the trace in the text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dmtrace %s\n", t.Name); err != nil {
		return err
	}
	for i, e := range t.Events {
		var err error
		switch e.Kind {
		case KindAlloc:
			_, err = fmt.Fprintf(bw, "a %d %d\n", e.ID, e.Size)
		case KindFree:
			_, err = fmt.Fprintf(bw, "f %d\n", e.ID)
		case KindAccess:
			_, err = fmt.Fprintf(bw, "x %d %d %d\n", e.ID, e.Reads, e.Writes)
		case KindTick:
			_, err = fmt.Fprintf(bw, "t %d\n", e.Cycles)
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if name, ok := strings.CutPrefix(line, "# dmtrace "); ok && t.Name == "" {
				t.Name = strings.TrimSpace(name)
			}
			continue
		}
		var e Event
		var n int
		var err error
		switch line[0] {
		case 'a':
			e.Kind = KindAlloc
			n, err = fmt.Sscanf(line, "a %d %d", &e.ID, &e.Size)
			if err != nil || n != 2 {
				return nil, fmt.Errorf("trace: line %d: bad alloc %q", lineNo, line)
			}
		case 'f':
			e.Kind = KindFree
			n, err = fmt.Sscanf(line, "f %d", &e.ID)
			if err != nil || n != 1 {
				return nil, fmt.Errorf("trace: line %d: bad free %q", lineNo, line)
			}
		case 'x':
			e.Kind = KindAccess
			n, err = fmt.Sscanf(line, "x %d %d %d", &e.ID, &e.Reads, &e.Writes)
			if err != nil || n != 3 {
				return nil, fmt.Errorf("trace: line %d: bad access %q", lineNo, line)
			}
		case 't':
			e.Kind = KindTick
			n, err = fmt.Sscanf(line, "t %d", &e.Cycles)
			if err != nil || n != 1 {
				return nil, fmt.Errorf("trace: line %d: bad tick %q", lineNo, line)
			}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", lineNo, line)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

const (
	binaryMagic     = "DMTR"
	binaryVersion   = 1
	binaryVersionV2 = 2

	// maxNameLen bounds the embedded trace name.
	maxNameLen = 1 << 16

	// maxBinaryEvents bounds the event count a binary trace may claim.
	// Every event costs at least two bytes on disk, so this cap already
	// admits multi-terabyte files; a larger claim is a corrupt or hostile
	// header and is rejected outright rather than silently tolerated.
	maxBinaryEvents = 1 << 33

	// preallocEvents caps the Events preallocation taken on faith from a
	// v1 header. A plausible-but-wrong count must not commit gigabytes
	// before the first record is decoded; beyond the cap the slice grows
	// with the records that actually parse.
	preallocEvents = 1 << 24
)

// ReadAuto sniffs the trace format (binary magic vs text) and parses
// accordingly. Both binary versions and the text format are accepted.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == binaryMagic {
		return ReadBinary(br)
	}
	return ReadText(br)
}

// appendEvent appends event i's binary record (kind byte plus varint
// fields) to buf. The encoding is shared by both binary versions.
func appendEvent(buf []byte, e *Event, i int) ([]byte, error) {
	buf = append(buf, byte(e.Kind))
	switch e.Kind {
	case KindAlloc:
		buf = binary.AppendUvarint(buf, e.ID)
		buf = binary.AppendUvarint(buf, uint64(e.Size))
	case KindFree:
		buf = binary.AppendUvarint(buf, e.ID)
	case KindAccess:
		buf = binary.AppendUvarint(buf, e.ID)
		buf = binary.AppendUvarint(buf, e.Reads)
		buf = binary.AppendUvarint(buf, e.Writes)
	case KindTick:
		buf = binary.AppendUvarint(buf, e.Cycles)
	default:
		return nil, fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
	}
	return buf, nil
}

// decodeEvent decodes one binary record from the front of buf into e
// (fully assigning it) and returns the bytes consumed.
func decodeEvent(buf []byte, e *Event) (int, error) {
	if len(buf) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	*e = Event{Kind: EventKind(buf[0])}
	n := 1
	bad := false
	get := func() uint64 {
		v, k := binary.Uvarint(buf[n:])
		if k <= 0 {
			bad = true
			return 0
		}
		n += k
		return v
	}
	switch e.Kind {
	case KindAlloc:
		e.ID = get()
		e.Size = int64(get())
	case KindFree:
		e.ID = get()
	case KindAccess:
		e.ID = get()
		e.Reads = get()
		e.Writes = get()
	case KindTick:
		e.Cycles = get()
	default:
		return 0, fmt.Errorf("unknown kind %d", e.Kind)
	}
	if bad {
		return 0, io.ErrUnexpectedEOF
	}
	return n, nil
}

// WriteBinary writes the trace in the v1 (unframed varint stream) binary
// format. New files should prefer WriteBinaryV2; v1 stays as the
// compatibility writer for tools pinned to the old layout.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	scratch := make([]byte, 0, 64)
	scratch = binary.AppendUvarint(scratch, uint64(len(t.Name)))
	if _, err := bw.Write(scratch); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	scratch = binary.AppendUvarint(scratch[:0], uint64(len(t.Events)))
	if _, err := bw.Write(scratch); err != nil {
		return err
	}
	for i := range t.Events {
		var err error
		scratch, err = appendEvent(scratch[:0], &t.Events[i], i)
		if err != nil {
			return err
		}
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinaryV2 writes the trace in the block-framed v2 binary format:
// the v1 record encoding grouped into CRC32C blocks with a seekable
// footer index (see internal/blockio), parseable sequentially or
// block-parallel.
func WriteBinaryV2(w io.Writer, t *Trace) error {
	return writeBinaryV2(w, t, 0)
}

// writeBinaryV2 is WriteBinaryV2 with a tunable block target, so tests
// can force many small blocks.
func writeBinaryV2(w io.Writer, t *Trace, target int) error {
	bw := blockio.NewWriter(w, target)
	if len(t.Name) > maxNameLen {
		return fmt.Errorf("trace: name of %d bytes exceeds the %d-byte cap", len(t.Name), maxNameLen)
	}
	header := make([]byte, 0, len(binaryMagic)+1+binary.MaxVarintLen64+len(t.Name))
	header = append(header, binaryMagic...)
	header = append(header, binaryVersionV2)
	header = binary.AppendUvarint(header, uint64(len(t.Name)))
	header = append(header, t.Name...)
	bw.WriteHeader(header)
	scratch := make([]byte, 0, 64)
	for i := range t.Events {
		var err error
		scratch, err = appendEvent(scratch[:0], &t.Events[i], i)
		if err != nil {
			return err
		}
		bw.Record(scratch)
		if err := bw.Err(); err != nil {
			return err
		}
	}
	return bw.Close()
}

// countingReader counts the bytes its wrappee delivered, so errors deep
// in a gigabyte stream can name the exact byte offset.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ReadBinary parses the binary format, dispatching on the version byte:
// v1 unframed streams and v2 block-framed files are both accepted.
func ReadBinary(r io.Reader) (*Trace, error) {
	return readBinary(r, nil)
}

func readBinary(r io.Reader, stats blockio.Stats) (*Trace, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<20)
	// offset is the stream position of the next unconsumed byte, for
	// error messages that point into the file.
	offset := func() int64 { return cr.n - int64(br.Buffered()) }
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion && version != binaryVersionV2 {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	name, err := readBinaryName(br)
	if err != nil {
		return nil, err
	}
	if version == binaryVersion {
		return readBinaryV1(br, name, offset)
	}
	return readBinaryV2(br, name, offset, stats)
}

// readBinaryName reads the uvarint-prefixed trace name both binary
// versions share.
func readBinaryName(br *bufio.Reader) (string, error) {
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > maxNameLen {
		return "", fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return "", fmt.Errorf("trace: reading name: %w", err)
	}
	return string(name), nil
}

// readBinaryV1 parses the unframed v1 record stream following the header.
func readBinaryV1(br *bufio.Reader, name string, offset func() int64) (*Trace, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading event count: %w", err)
	}
	if count > maxBinaryEvents {
		return nil, fmt.Errorf("trace: implausible event count %d (max %d) — corrupt or hostile header", count, uint64(maxBinaryEvents))
	}
	t := &Trace{Name: name}
	prealloc := count
	if prealloc > preallocEvents {
		prealloc = preallocEvents
	}
	t.Events = make([]Event, 0, prealloc)
	for i := uint64(0); i < count; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: truncated at event %d of %d (byte offset %d): %w", i, count, offset(), unexpectedEOF(err))
		}
		e := Event{Kind: EventKind(kind)}
		read := func() (uint64, error) { return binary.ReadUvarint(br) }
		switch e.Kind {
		case KindAlloc:
			if e.ID, err = read(); err == nil {
				var sz uint64
				sz, err = read()
				e.Size = int64(sz)
			}
		case KindFree:
			e.ID, err = read()
		case KindAccess:
			if e.ID, err = read(); err == nil {
				if e.Reads, err = read(); err == nil {
					e.Writes, err = read()
				}
			}
		case KindTick:
			e.Cycles, err = read()
		default:
			return nil, fmt.Errorf("trace: event %d (byte offset %d): unknown kind %d", i, offset(), kind)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: truncated at event %d of %d (byte offset %d): %w", i, count, offset(), unexpectedEOF(err))
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}

// readBinaryV2 streams the block-framed v2 format following the header.
func readBinaryV2(br *bufio.Reader, name string, offset func() int64, stats blockio.Stats) (*Trace, error) {
	t := &Trace{Name: name}
	blocks := blockio.NewReader(br, stats)
	block := 0
	for {
		records, payload, err := blocks.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: byte offset %d: %w", offset(), err)
		}
		if uint64(len(t.Events))+uint64(records) > maxBinaryEvents {
			return nil, fmt.Errorf("trace: more than %d events — corrupt or hostile file", uint64(maxBinaryEvents))
		}
		for k := 0; k < records; k++ {
			var e Event
			n, err := decodeEvent(payload, &e)
			if err != nil {
				return nil, fmt.Errorf("trace: block %d, record %d (event %d): %w", block, k, len(t.Events), err)
			}
			payload = payload[n:]
			t.Events = append(t.Events, e)
		}
		if len(payload) != 0 {
			return nil, fmt.Errorf("trace: block %d: %d payload bytes beyond its %d records", block, len(payload), records)
		}
		block++
	}
}

// unexpectedEOF converts a clean EOF into io.ErrUnexpectedEOF: running
// out of bytes mid-structure is truncation.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
