package trace

import (
	"testing"
)

func TestSliceSelfContained(t *testing.T) {
	b := NewBuilder("long")
	id1 := b.Alloc(100) // event 0
	id2 := b.Alloc(200) // event 1
	b.Free(id1)         // event 2
	id3 := b.Alloc(300) // event 3
	b.Access(id2, 4, 0) // event 4
	b.Free(id2)         // event 5
	b.Free(id3)         // event 6
	tr := b.Build()

	// Window [3,6): id2 is live at the start and freed inside; id3
	// allocated inside.
	s, err := Slice(tr, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("slice invalid: %v", err)
	}
	// Pre-window live allocation (id2) is re-created first.
	if s.Events[0].Kind != KindAlloc || s.Events[0].ID != id2 || s.Events[0].Size != 200 {
		t.Fatalf("first event %+v", s.Events[0])
	}
	// id3 is left unfreed (the window ends before its free).
	p := Analyze(s)
	if p.FinalLiveBytes != 300 {
		t.Fatalf("final live %d, want 300", p.FinalLiveBytes)
	}
}

func TestSliceFullRangeIsIdentity(t *testing.T) {
	b := NewBuilder("x")
	id := b.Alloc(64)
	b.Free(id)
	tr := b.Build()
	s, err := Slice(tr, 0, tr.Len())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != tr.Len() {
		t.Fatalf("len %d vs %d", s.Len(), tr.Len())
	}
}

func TestSliceErrors(t *testing.T) {
	tr := &Trace{Events: make([]Event, 5)}
	for _, c := range [][2]int{{-1, 3}, {0, 6}, {4, 2}} {
		if _, err := Slice(tr, c[0], c[1]); err == nil {
			t.Errorf("slice %v accepted", c)
		}
	}
}

func twoSmallTraces(t *testing.T) (*Trace, *Trace) {
	t.Helper()
	a := NewBuilder("a")
	for i := 0; i < 50; i++ {
		id := a.Alloc(74)
		a.Access(id, 2, 1)
		a.Free(id)
	}
	b := NewBuilder("b")
	for i := 0; i < 30; i++ {
		id := b.Alloc(1024)
		b.Tick(100)
		b.Free(id)
	}
	return a.Build(), b.Build()
}

func TestInterleaveValidAndComplete(t *testing.T) {
	ta, tb := twoSmallTraces(t)
	merged, err := Interleave("combined", 1, ta, tb)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != ta.Len()+tb.Len() {
		t.Fatalf("len %d, want %d", merged.Len(), ta.Len()+tb.Len())
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged invalid: %v", err)
	}
	// Metric-relevant totals are preserved.
	pa, pb, pm := Analyze(ta), Analyze(tb), Analyze(merged)
	if pm.Allocs != pa.Allocs+pb.Allocs || pm.Frees != pa.Frees+pb.Frees {
		t.Fatal("op counts changed")
	}
	if pm.AccessWords != pa.AccessWords+pb.AccessWords {
		t.Fatal("access words changed")
	}
	if pm.TickCycles != pa.TickCycles+pb.TickCycles {
		t.Fatal("cycles changed")
	}
	// Both size populations present.
	if pm.Sizes.Count(74) != pa.Sizes.Count(74) || pm.Sizes.Count(1024) != pb.Sizes.Count(1024) {
		t.Fatal("size populations changed")
	}
}

func TestInterleaveActuallyInterleaves(t *testing.T) {
	ta, tb := twoSmallTraces(t)
	merged, err := Interleave("combined", 1, ta, tb)
	if err != nil {
		t.Fatal(err)
	}
	// The merged trace must not be a plain concatenation: find a
	// 1024-byte alloc before the last 74-byte alloc.
	last74 := -1
	first1024 := -1
	for i, e := range merged.Events {
		if e.Kind != KindAlloc {
			continue
		}
		if e.Size == 74 {
			last74 = i
		}
		if e.Size == 1024 && first1024 == -1 {
			first1024 = i
		}
	}
	if first1024 == -1 || last74 == -1 || first1024 > last74 {
		t.Fatal("traces were concatenated, not interleaved")
	}
}

func TestInterleaveDeterministic(t *testing.T) {
	ta, tb := twoSmallTraces(t)
	m1, _ := Interleave("c", 9, ta, tb)
	m2, _ := Interleave("c", 9, ta, tb)
	for i := range m1.Events {
		if m1.Events[i] != m2.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	m3, _ := Interleave("c", 10, ta, tb)
	same := m1.Len() == m3.Len()
	if same {
		identical := true
		for i := range m1.Events {
			if m1.Events[i] != m3.Events[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical interleavings")
		}
	}
}

func TestInterleaveErrors(t *testing.T) {
	if _, err := Interleave("x", 1); err == nil {
		t.Fatal("empty interleave accepted")
	}
}

func TestConcat(t *testing.T) {
	ta, tb := twoSmallTraces(t)
	c, err := Concat("seq", ta, tb)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != ta.Len()+tb.Len() {
		t.Fatalf("len %d", c.Len())
	}
	// Order preserved: all of a's events first.
	if c.Events[0] != ta.Events[0] {
		t.Fatal("first trace not first")
	}
	if _, err := Concat("x"); err == nil {
		t.Fatal("empty concat accepted")
	}
}
