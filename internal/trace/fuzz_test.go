package trace_test

// Native fuzz targets for the three trace decoders. The corpus is seeded
// with real easyport and VTC workload traces in every supported encoding
// (text, binary v1, block-framed v2), so the fuzzer starts from deep
// inside the valid format space instead of rediscovering the magic bytes.
// Run continuously with `go test -fuzz`, or as a smoke pass over the
// seeds by the ordinary test run (`make tier1` includes a short real
// fuzz of each target).

import (
	"bytes"
	"testing"

	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// sameEvents compares event sequences by content (a nil and an empty
// slice are the same trace).
func sameEvents(a, b []trace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedTraces returns small real workload traces for corpus seeding.
func seedTraces(f *testing.F) []*trace.Trace {
	f.Helper()
	var traces []*trace.Trace
	for _, name := range []string{"easyport", "vtc"} {
		gen, err := workload.New(name, 1, 2) // 2% scale: a few thousand events
		if err != nil {
			f.Fatal(err)
		}
		tr, err := gen.Generate()
		if err != nil {
			f.Fatal(err)
		}
		traces = append(traces, tr)
	}
	return traces
}

func FuzzReadBinary(f *testing.F) {
	for _, tr := range seedTraces(f) {
		var v1, v2 bytes.Buffer
		if err := trace.WriteBinary(&v1, tr); err != nil {
			f.Fatal(err)
		}
		if err := trace.WriteBinaryV2(&v2, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(v1.Bytes())
		f.Add(v2.Bytes())
	}
	f.Add([]byte("DMTR\x01\x00\x00"))
	f.Add([]byte("DMTR\x02\x00\x00"))
	// Columnar seed: every event kind interleaved with live/dead ID churn,
	// so the slab decode loop's four arms and the finalize validation all
	// run from the corpus itself.
	colSeed := &trace.Trace{Name: "columnar-seed"}
	for i := uint64(1); i <= 32; i++ {
		colSeed.Events = append(colSeed.Events,
			trace.Event{Kind: trace.KindAlloc, ID: i, Size: int64(8 * i)},
			trace.Event{Kind: trace.KindAccess, ID: i, Reads: i, Writes: i % 3},
			trace.Event{Kind: trace.KindTick, Cycles: 100},
		)
		if i%2 == 0 {
			colSeed.Events = append(colSeed.Events,
				trace.Event{Kind: trace.KindFree, ID: i - 1})
		}
	}
	var colBuf bytes.Buffer
	if err := trace.WriteBinaryV2(&colBuf, colSeed); err != nil {
		f.Fatal(err)
	}
	f.Add(colBuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must survive a v2 round trip bit-identically,
		// and the parallel reader must agree with the sequential one.
		var out bytes.Buffer
		if err := trace.WriteBinaryV2(&out, tr); err != nil {
			t.Fatalf("re-encode of parsed trace failed: %v", err)
		}
		again, err := trace.ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Name != tr.Name || !sameEvents(again.Events, tr.Events) {
			t.Fatal("v2 round trip diverged")
		}
		par, err := trace.ReadBinaryParallel(bytes.NewReader(out.Bytes()), int64(out.Len()), 4, nil)
		if err != nil {
			t.Fatalf("parallel re-parse failed: %v", err)
		}
		if !sameEvents(par.Events, tr.Events) {
			t.Fatal("parallel read diverged")
		}
		// The direct-to-slab compiler must agree with compile-after-read:
		// same accept/reject verdict, and identical columns when accepted.
		ref, refErr := trace.Compile(tr)
		slab, slabErr := trace.CompileBinaryParallel(bytes.NewReader(out.Bytes()), int64(out.Len()), 3, nil)
		if (refErr == nil) != (slabErr == nil) {
			t.Fatalf("compile verdicts diverge: ref %v, slab %v", refErr, slabErr)
		}
		if refErr != nil {
			return
		}
		if slab.Len() != ref.Len() || slab.NumIDs != ref.NumIDs ||
			slab.Allocs != ref.Allocs || slab.Frees != ref.Frees ||
			slab.Accesses != ref.Accesses || slab.Ticks != ref.Ticks ||
			slab.PeakLive != ref.PeakLive || slab.PeakRequestedBytes != ref.PeakRequestedBytes {
			t.Fatal("columnar compile counts diverge")
		}
		for i := 0; i < ref.Len(); i++ {
			if slab.At(i) != ref.At(i) {
				t.Fatalf("columnar compile row %d: %+v != %+v", i, slab.At(i), ref.At(i))
			}
		}
	})
}

// FuzzTraceFeatures drives the surrogate feature extraction with the
// same v2 corpus FuzzReadBinary starts from: on every trace the decoder
// accepts, the feature vector must be full-length, finite everywhere and
// deterministic, and the features documented as order-independent must
// survive a free-order perturbation (swapping which of two adjacent
// frees happens first changes interleaving but not the allocation
// multiset or any per-allocation lifetime by more than the swap the
// documentation allows).
func FuzzTraceFeatures(f *testing.F) {
	for _, tr := range seedTraces(f) {
		var v2 bytes.Buffer
		if err := trace.WriteBinaryV2(&v2, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(v2.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		ct, err := trace.Compile(tr)
		if err != nil {
			return
		}
		feats := trace.Features(ct)
		if len(feats) != trace.NumFeatures {
			t.Fatalf("feature length %d, want %d", len(feats), trace.NumFeatures)
		}
		for i, v := range feats {
			if v != v || v > 1e300 || v < -1e300 { // NaN or effectively infinite
				t.Fatalf("feature %d (%s) = %v", i, trace.FeatureNames()[i], v)
			}
		}
		again := trace.Features(ct)
		for i := range feats {
			if feats[i] != again[i] {
				t.Fatalf("feature %d not deterministic", i)
			}
		}
		// Order-independence where documented: renaming allocation IDs is
		// an order-irrelevant relabeling — the multiset features (and in
		// fact the whole vector, which never looks at raw IDs) must be
		// identical on the relabeled trace.
		relabeled := &trace.Trace{Name: tr.Name, Events: make([]trace.Event, len(tr.Events))}
		copy(relabeled.Events, tr.Events)
		for i := range relabeled.Events {
			switch relabeled.Events[i].Kind {
			case trace.KindAlloc, trace.KindFree, trace.KindAccess:
				relabeled.Events[i].ID ^= 0x5a5a5a5a5a5a5a5a // bijective relabeling
			}
		}
		rc, err := trace.Compile(relabeled)
		if err != nil {
			t.Fatalf("relabeled trace rejected: %v", err)
		}
		for i, v := range trace.Features(rc) {
			if v != feats[i] {
				t.Fatalf("feature %d (%s) changed under ID relabeling: %v vs %v",
					i, trace.FeatureNames()[i], v, feats[i])
			}
		}
	})
}

func FuzzReadText(f *testing.F) {
	for _, tr := range seedTraces(f) {
		var txt bytes.Buffer
		if err := trace.WriteText(&txt, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(txt.Bytes())
	}
	f.Add([]byte("# dmtrace x\na 1 8\nx 1 2 3\nf 1\nt 5\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := trace.WriteText(&out, tr); err != nil {
			t.Fatalf("re-encode of parsed trace failed: %v", err)
		}
		again, err := trace.ReadText(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !sameEvents(again.Events, tr.Events) {
			t.Fatal("text round trip diverged")
		}
	})
}
