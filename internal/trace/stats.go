package trace

import "dmexplore/internal/stats"

// Profile summarizes a trace's allocation behaviour. The exploration tool
// derives dedicated-pool candidates (dominant sizes) and pool budgets from
// it — the analysis step of the paper's flow that precedes configuration
// generation.
type Profile struct {
	Allocs      int64
	Frees       int64
	Accesses    int64 // access events
	AccessWords uint64
	TickCycles  uint64

	PeakLiveBytes  int64
	PeakLiveBlocks int64
	FinalLiveBytes int64

	// Sizes counts one observation per allocation, keyed by requested size.
	Sizes *stats.Histogram
	// Lifetimes counts, per allocation, the number of events between its
	// alloc and its free (unfreed allocations are not counted).
	Lifetimes *stats.Histogram
}

// Analyze computes the profile of a valid trace.
func Analyze(t *Trace) *Profile {
	p := &Profile{Sizes: stats.NewHistogram(), Lifetimes: stats.NewHistogram()}
	type liveRec struct {
		size    int64
		bornIdx int
	}
	live := make(map[uint64]liveRec)
	var liveBytes, liveBlocks int64
	for i, e := range t.Events {
		switch e.Kind {
		case KindAlloc:
			p.Allocs++
			p.Sizes.Add(e.Size)
			live[e.ID] = liveRec{size: e.Size, bornIdx: i}
			liveBytes += e.Size
			liveBlocks++
			if liveBytes > p.PeakLiveBytes {
				p.PeakLiveBytes = liveBytes
			}
			if liveBlocks > p.PeakLiveBlocks {
				p.PeakLiveBlocks = liveBlocks
			}
		case KindFree:
			p.Frees++
			rec := live[e.ID]
			p.Lifetimes.Add(int64(i - rec.bornIdx))
			liveBytes -= rec.size
			liveBlocks--
			delete(live, e.ID)
		case KindAccess:
			p.Accesses++
			p.AccessWords += e.Reads + e.Writes
		case KindTick:
			p.TickCycles += e.Cycles
		}
	}
	p.FinalLiveBytes = liveBytes
	return p
}

// DominantSizes returns the n most frequent requested sizes, descending
// by count — the candidates for dedicated pools.
func (p *Profile) DominantSizes(n int) []stats.ValueCount {
	return p.Sizes.TopN(n)
}
