package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"dmexplore/internal/blockio"
)

// fetchWindowBytes is how many contiguous file bytes a parallel worker
// fetches per ReadAt. Coalescing adjacent blocks into one request keeps
// the request count low (it is the dominant cost on high-latency
// storage) while staying small enough to spread a file across workers.
// A variable so tests can exercise multi-window decoding on small files.
var fetchWindowBytes int64 = 4 << 20

// fetchGroup is a contiguous run of blocks one worker decodes from a
// single ReadAt.
type fetchGroup struct {
	off         int64 // file offset of the first block header
	length      int64 // bytes covering every block in the group
	first, last int   // block index range [first, last]
	eventStart  int64 // slab index of the group's first event
}

// groupBlocks coalesces the footer index into fetch windows and computes
// each group's slab start from the per-block record counts.
func groupBlocks(blocks []blockio.Block) (groups []fetchGroup, total int64, err error) {
	for i := 0; i < len(blocks); {
		g := fetchGroup{off: blocks[i].Offset, first: i, eventStart: total}
		end := blocks[i].Offset
		for i < len(blocks) {
			blkEnd := blocks[i].Offset + blocks[i].DataLen()
			if blocks[i].Offset != end {
				return nil, 0, fmt.Errorf("trace: footer index gap at block %d (offset %d, expected %d)", i, blocks[i].Offset, end)
			}
			if blkEnd-g.off > fetchWindowBytes && i > g.first {
				break
			}
			end = blkEnd
			total += blocks[i].Records
			g.last = i
			i++
		}
		g.length = end - g.off
		groups = append(groups, g)
	}
	if total > maxBinaryEvents {
		return nil, 0, fmt.Errorf("trace: implausible event count %d (max %d) — corrupt or hostile footer", total, int64(maxBinaryEvents))
	}
	return groups, total, nil
}

// ReadBinaryParallel parses a binary trace with up to workers goroutines.
// V2 files are split along the footer's block index: every block's
// records are decoded straight into its preallocated slice of the shared
// event slab, so the merge is free and the result is bit-identical to
// the sequential ReadBinary. V1 files (no framing to split on) fall back
// to the sequential reader. stats may be nil.
func ReadBinaryParallel(ra io.ReaderAt, size int64, workers int, stats blockio.Stats) (*Trace, error) {
	header := make([]byte, len(binaryMagic)+1+binary.MaxVarintLen64)
	if int64(len(header)) > size {
		header = header[:size]
	}
	if _, err := ra.ReadAt(header, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) < len(binaryMagic)+1 || string(header[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	if version := header[len(binaryMagic)]; version != binaryVersionV2 || workers <= 1 {
		// Sequential fallback: v1 has no block structure to parallelize.
		return readBinary(io.NewSectionReader(ra, 0, size), stats)
	}
	nameLen, n := binary.Uvarint(header[len(binaryMagic)+1:])
	if n <= 0 {
		return nil, fmt.Errorf("trace: truncated name length")
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	nameOff := int64(len(binaryMagic) + 1 + n)
	name := make([]byte, nameLen)
	if _, err := ra.ReadAt(name, nameOff); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}

	blocks, err := blockio.ReadIndex(ra, size)
	if err != nil {
		return nil, err
	}
	groups, total, err := groupBlocks(blocks)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: string(name)}
	if len(groups) == 0 {
		return t, nil
	}
	t.Events = make([]Event, total)
	if len(blocks) > 0 && blocks[0].Offset != nameOff+int64(nameLen) {
		return nil, fmt.Errorf("trace: first block at offset %d, header ends at %d", blocks[0].Offset, nameOff+int64(nameLen))
	}

	if workers > len(groups) {
		workers = len(groups)
	}
	jobs := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []byte
			for gi := range jobs {
				if err := decodeGroup(ra, blocks, groups[gi], t.Events, &buf, stats); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	for gi := range groups {
		jobs <- gi
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// decodeGroup fetches one window and decodes its blocks into their slab
// slices. buf is per-worker scratch, grown as needed and reused.
func decodeGroup(ra io.ReaderAt, blocks []blockio.Block, g fetchGroup, events []Event, buf *[]byte, stats blockio.Stats) error {
	if int64(cap(*buf)) < g.length {
		*buf = make([]byte, g.length)
	}
	window := (*buf)[:g.length]
	if _, err := ra.ReadAt(window, g.off); err != nil {
		return fmt.Errorf("trace: reading blocks %d-%d (offset %d): %w", g.first, g.last, g.off, unexpectedEOF(err))
	}
	next := g.eventStart
	for b := g.first; b <= g.last; b++ {
		records, payload, rest, err := blockio.ParseBlock(window, stats)
		if err != nil {
			return fmt.Errorf("trace: block %d (offset %d): %w", b, blocks[b].Offset, err)
		}
		if records != blocks[b].Records {
			return fmt.Errorf("trace: block %d: header says %d records, footer says %d", b, records, blocks[b].Records)
		}
		window = rest
		for k := int64(0); k < records; k++ {
			n, err := decodeEvent(payload, &events[next])
			if err != nil {
				return fmt.Errorf("trace: block %d, record %d (event %d): %w", b, k, next, err)
			}
			payload = payload[n:]
			next++
		}
		if len(payload) != 0 {
			return fmt.Errorf("trace: block %d: %d payload bytes beyond its %d records", b, len(payload), records)
		}
	}
	return nil
}

// ReadFile reads a trace file in any supported format, sniffing binary
// (either version) vs text. Binary v2 files are decoded block-parallel
// across workers goroutines (workers <= 1 or v1/text read sequentially).
// stats may be nil.
func ReadFile(path string, workers int, stats blockio.Stats) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var magic [len(binaryMagic)]byte
	if n, _ := f.ReadAt(magic[:], 0); n == len(magic) && string(magic[:]) == binaryMagic {
		return ReadBinaryParallel(f, fi.Size(), workers, stats)
	}
	return ReadText(f)
}

// decodeEventSlab decodes one binary record from the front of buf
// straight into the compiled slabs at index i: the columnar twin of
// decodeEvent, writing kind/raw-ID/arguments without materializing an
// Event.
func decodeEventSlab(buf []byte, kinds []EventKind, rawIDs, argA, argB []uint64, i int64) (int, error) {
	if len(buf) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	kind := EventKind(buf[0])
	kinds[i] = kind
	n := 1
	bad := false
	get := func() uint64 {
		v, k := binary.Uvarint(buf[n:])
		if k <= 0 {
			bad = true
			return 0
		}
		n += k
		return v
	}
	switch kind {
	case KindAlloc:
		rawIDs[i] = get()
		argA[i] = get()
	case KindFree:
		rawIDs[i] = get()
	case KindAccess:
		rawIDs[i] = get()
		argA[i] = get()
		argB[i] = get()
	case KindTick:
		argA[i] = get()
	default:
		return 0, fmt.Errorf("unknown kind %d", kind)
	}
	if bad {
		return 0, io.ErrUnexpectedEOF
	}
	return n, nil
}

// CompileBinaryParallel parses a binary trace and compiles it for replay
// in one step. V2 block-framed files are decoded straight into the
// compiled trace's columnar slabs along the footer's block index — up to
// workers goroutines, no intermediate []Event copy — then finalized
// (validation, dense renumbering) in one sequential pass, so the result
// is bit-identical to ReadBinary + Compile. V1 files fall back to the
// sequential reader. stats may be nil.
func CompileBinaryParallel(ra io.ReaderAt, size int64, workers int, stats blockio.Stats) (*Compiled, error) {
	header := make([]byte, len(binaryMagic)+1+binary.MaxVarintLen64)
	if int64(len(header)) > size {
		header = header[:size]
	}
	if _, err := ra.ReadAt(header, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) < len(binaryMagic)+1 || string(header[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	if version := header[len(binaryMagic)]; version != binaryVersionV2 {
		// V1 has no block structure to split on or decode in place.
		t, err := readBinary(io.NewSectionReader(ra, 0, size), stats)
		if err != nil {
			return nil, err
		}
		return Compile(t)
	}
	nameLen, n := binary.Uvarint(header[len(binaryMagic)+1:])
	if n <= 0 {
		return nil, fmt.Errorf("trace: truncated name length")
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	nameOff := int64(len(binaryMagic) + 1 + n)
	name := make([]byte, nameLen)
	if _, err := ra.ReadAt(name, nameOff); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}

	blocks, err := blockio.ReadIndex(ra, size)
	if err != nil {
		return nil, err
	}
	groups, total, err := groupBlocks(blocks)
	if err != nil {
		return nil, err
	}
	c, rawIDs := newCompiled(string(name), int(total))
	if len(groups) == 0 {
		return c, nil
	}
	if len(blocks) > 0 && blocks[0].Offset != nameOff+int64(nameLen) {
		return nil, fmt.Errorf("trace: first block at offset %d, header ends at %d", blocks[0].Offset, nameOff+int64(nameLen))
	}

	if workers < 1 {
		workers = 1
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	jobs := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []byte
			for gi := range jobs {
				if err := decodeGroupSlab(ra, blocks, groups[gi], c, rawIDs, &buf, stats); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	for gi := range groups {
		jobs <- gi
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := c.finalize(rawIDs); err != nil {
		return nil, err
	}
	return c, nil
}

// decodeGroupSlab fetches one window and decodes its blocks straight
// into the compiled slabs. buf is per-worker scratch, grown as needed
// and reused.
func decodeGroupSlab(ra io.ReaderAt, blocks []blockio.Block, g fetchGroup, c *Compiled, rawIDs []uint64, buf *[]byte, stats blockio.Stats) error {
	if int64(cap(*buf)) < g.length {
		*buf = make([]byte, g.length)
	}
	window := (*buf)[:g.length]
	if _, err := ra.ReadAt(window, g.off); err != nil {
		return fmt.Errorf("trace: reading blocks %d-%d (offset %d): %w", g.first, g.last, g.off, unexpectedEOF(err))
	}
	next := g.eventStart
	for b := g.first; b <= g.last; b++ {
		records, payload, rest, err := blockio.ParseBlock(window, stats)
		if err != nil {
			return fmt.Errorf("trace: block %d (offset %d): %w", b, blocks[b].Offset, err)
		}
		if records != blocks[b].Records {
			return fmt.Errorf("trace: block %d: header says %d records, footer says %d", b, records, blocks[b].Records)
		}
		window = rest
		for k := int64(0); k < records; k++ {
			n, err := decodeEventSlab(payload, c.kinds, rawIDs, c.argA, c.argB, next)
			if err != nil {
				return fmt.Errorf("trace: block %d, record %d (event %d): %w", b, k, next, err)
			}
			payload = payload[n:]
			next++
		}
		if len(payload) != 0 {
			return fmt.Errorf("trace: block %d: %d payload bytes beyond its %d records", b, len(payload), records)
		}
	}
	return nil
}

// ReadCompiledFile reads a trace file and compiles it for replay in one
// step. Binary files go through CompileBinaryParallel, so v2 block-framed
// traces land directly in the columnar slabs without an intermediate
// []Event copy; text files are parsed then compiled.
func ReadCompiledFile(path string, workers int, stats blockio.Stats) (*Compiled, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var magic [len(binaryMagic)]byte
	if n, _ := f.ReadAt(magic[:], 0); n == len(magic) && string(magic[:]) == binaryMagic {
		return CompileBinaryParallel(f, fi.Size(), workers, stats)
	}
	t, err := ReadText(f)
	if err != nil {
		return nil, err
	}
	return Compile(t)
}
