package trace

import "fmt"

// Op is one compiled trace operation. Compared to Event, allocation IDs
// are renumbered into the dense [0..NumIDs) range so replay state fits in
// flat tables instead of maps, and Free carries the size being released
// (resolved at compile time) so the replayer never tracks request sizes.
//
// Op is the row-oriented view over Compiled's columnar slabs, assembled
// on demand by At; hot loops iterate the slabs directly (Slabs).
type Op struct {
	Kind EventKind
	ID   uint32 // dense allocation index (Alloc/Free/Access)
	Size int64  // Alloc: requested bytes; Free: bytes being released

	Reads  uint64 // Access
	Writes uint64 // Access
	Cycles uint64 // Tick
}

// Compiled is a trace preprocessed for replay: validated, densely
// renumbered and annotated with the counts a replayer needs to pre-size
// every buffer. One Compiled trace is built per exploration and shared
// read-only by all workers.
//
// Events are stored structure-of-arrays: one slab per field, so the
// replay loop streams a 1-byte kind column and touches only the argument
// words the kind actually uses, instead of striding over 40-byte AoS
// rows. Block-framed v2 files decode straight into the slabs
// (CompileBinaryParallel) without materializing an []Event copy.
type Compiled struct {
	Name string

	// kinds discriminates each event; ids holds the dense allocation
	// index (Alloc/Free/Access); argA holds the kind's primary argument
	// (Alloc/Free: size bytes; Access: word reads; Tick: cycles); argB
	// holds Access word writes. All four slabs have equal length.
	kinds []EventKind
	ids   []uint32
	argA  []uint64
	argB  []uint64

	// NumIDs is the dense allocation-ID space: every dense ID is < NumIDs.
	NumIDs int

	// Per-kind event counts, for buffer pre-sizing.
	Allocs   int
	Frees    int
	Accesses int
	Ticks    int

	// PeakLive is the maximum number of simultaneously live allocations.
	PeakLive int

	// PeakRequestedBytes is the workload's peak live demand — a pure
	// function of the trace, so it is computed once here instead of per
	// replay.
	PeakRequestedBytes int64
}

// Len returns the number of compiled operations (identical to the source
// trace's event count; At(i) corresponds to Events[i]).
func (c *Compiled) Len() int { return len(c.kinds) }

// Slabs exposes the columnar event slabs for branch-light replay loops.
// All four slices have length Len() and are shared read-only; callers
// must not mutate them.
func (c *Compiled) Slabs() (kinds []EventKind, ids []uint32, argA, argB []uint64) {
	return c.kinds, c.ids, c.argA, c.argB
}

// At reconstructs operation i as a row-oriented Op. It is the
// compatibility view for cold paths and tests; replay loops iterate the
// slabs from Slabs directly.
func (c *Compiled) At(i int) Op {
	op := Op{Kind: c.kinds[i], ID: c.ids[i]}
	switch op.Kind {
	case KindAlloc, KindFree:
		op.Size = int64(c.argA[i])
	case KindAccess:
		op.Reads = c.argA[i]
		op.Writes = c.argB[i]
	case KindTick:
		op.Cycles = c.argA[i]
	}
	return op
}

// newCompiled allocates the slabs for n events plus the temporary
// raw-ID slab finalize consumes.
func newCompiled(name string, n int) (*Compiled, []uint64) {
	c := &Compiled{
		Name:  name,
		kinds: make([]EventKind, n),
		ids:   make([]uint32, n),
		argA:  make([]uint64, n),
		argB:  make([]uint64, n),
	}
	return c, make([]uint64, n)
}

// Compile validates t and builds its compiled representation. The
// returned Compiled is immutable and safe for concurrent replay.
func Compile(t *Trace) (*Compiled, error) {
	c, rawIDs := newCompiled(t.Name, len(t.Events))
	for i, e := range t.Events {
		c.kinds[i] = e.Kind
		rawIDs[i] = e.ID
		switch e.Kind {
		case KindAlloc:
			c.argA[i] = uint64(e.Size)
		case KindAccess:
			c.argA[i] = e.Reads
			c.argB[i] = e.Writes
		case KindTick:
			c.argA[i] = e.Cycles
		}
		// KindFree carries no payload here (finalize resolves the size);
		// unknown kinds are rejected by finalize.
	}
	if err := c.finalize(rawIDs); err != nil {
		return nil, err
	}
	return c, nil
}

// finalize turns raw slabs (kinds/argA/argB filled, rawIDs holding the
// original allocation IDs) into the compiled form: it validates the
// event stream, renumbers IDs densely into c.ids, resolves Free sizes
// into argA and computes the replay counts. Shared by Compile and the
// direct block-parallel path so both produce identical results and
// identical error messages.
func (c *Compiled) finalize(rawIDs []uint64) error {
	// dense maps original IDs to dense indices; size holds the requested
	// bytes of the live allocation so Free ops can carry it.
	dense := make(map[uint64]uint32, 64)
	size := make([]int64, 0, 64)
	live := make([]bool, 0, 64)
	var liveCount, liveBytes int64
	for i, kind := range c.kinds {
		switch kind {
		case KindAlloc:
			sz := int64(c.argA[i])
			if sz <= 0 {
				return fmt.Errorf("trace %s: event %d: alloc %d with size %d", c.Name, i, rawIDs[i], sz)
			}
			if idx, seen := dense[rawIDs[i]]; seen {
				if live[idx] {
					return fmt.Errorf("trace %s: event %d: id %d allocated twice", c.Name, i, rawIDs[i])
				}
				return fmt.Errorf("trace %s: event %d: id %d reused after free", c.Name, i, rawIDs[i])
			}
			idx := uint32(len(size))
			dense[rawIDs[i]] = idx
			size = append(size, sz)
			live = append(live, true)
			c.ids[i] = idx
			c.Allocs++
			liveCount++
			if int(liveCount) > c.PeakLive {
				c.PeakLive = int(liveCount)
			}
			liveBytes += sz
			if liveBytes > c.PeakRequestedBytes {
				c.PeakRequestedBytes = liveBytes
			}
		case KindFree:
			idx, seen := dense[rawIDs[i]]
			if !seen || !live[idx] {
				return fmt.Errorf("trace %s: event %d: free of dead id %d", c.Name, i, rawIDs[i])
			}
			live[idx] = false
			c.ids[i] = idx
			c.argA[i] = uint64(size[idx])
			c.Frees++
			liveCount--
			liveBytes -= size[idx]
		case KindAccess:
			idx, seen := dense[rawIDs[i]]
			if !seen || !live[idx] {
				return fmt.Errorf("trace %s: event %d: access to dead id %d", c.Name, i, rawIDs[i])
			}
			if c.argA[i] == 0 && c.argB[i] == 0 {
				return fmt.Errorf("trace %s: event %d: empty access", c.Name, i)
			}
			c.ids[i] = idx
			c.Accesses++
		case KindTick:
			if c.argA[i] == 0 {
				return fmt.Errorf("trace %s: event %d: zero tick", c.Name, i)
			}
			c.Ticks++
		default:
			return fmt.Errorf("trace %s: event %d: unknown kind %d", c.Name, i, kind)
		}
	}
	c.NumIDs = len(size)
	return nil
}
