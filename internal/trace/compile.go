package trace

import "fmt"

// Op is one compiled trace operation. Compared to Event, allocation IDs
// are renumbered into the dense [0..NumIDs) range so replay state fits in
// flat tables instead of maps, and Free carries the size being released
// (resolved at compile time) so the replayer never tracks request sizes.
type Op struct {
	Kind EventKind
	ID   uint32 // dense allocation index (Alloc/Free/Access)
	Size int64  // Alloc: requested bytes; Free: bytes being released

	Reads  uint64 // Access
	Writes uint64 // Access
	Cycles uint64 // Tick
}

// Compiled is a trace preprocessed for replay: validated, densely
// renumbered and annotated with the counts a replayer needs to pre-size
// every buffer. One Compiled trace is built per exploration and shared
// read-only by all workers.
type Compiled struct {
	Name string
	Ops  []Op

	// NumIDs is the dense allocation-ID space: every Op.ID is < NumIDs.
	NumIDs int

	// Per-kind event counts, for buffer pre-sizing.
	Allocs   int
	Frees    int
	Accesses int
	Ticks    int

	// PeakLive is the maximum number of simultaneously live allocations.
	PeakLive int

	// PeakRequestedBytes is the workload's peak live demand — a pure
	// function of the trace, so it is computed once here instead of per
	// replay.
	PeakRequestedBytes int64
}

// Len returns the number of compiled operations (identical to the source
// trace's event count; Ops[i] corresponds to Events[i]).
func (c *Compiled) Len() int { return len(c.Ops) }

// Compile validates t and builds its compiled representation. The
// returned Compiled is immutable and safe for concurrent replay.
func Compile(t *Trace) (*Compiled, error) {
	c := &Compiled{
		Name: t.Name,
		Ops:  make([]Op, len(t.Events)),
	}
	// dense maps original IDs to dense indices; size holds the requested
	// bytes of the live allocation so Free ops can carry it.
	dense := make(map[uint64]uint32, 64)
	size := make([]int64, 0, 64)
	live := make([]bool, 0, 64)
	var liveCount, liveBytes int64
	for i, e := range t.Events {
		op := Op{Kind: e.Kind}
		switch e.Kind {
		case KindAlloc:
			if e.Size <= 0 {
				return nil, fmt.Errorf("trace %s: event %d: alloc %d with size %d", t.Name, i, e.ID, e.Size)
			}
			if idx, seen := dense[e.ID]; seen {
				if live[idx] {
					return nil, fmt.Errorf("trace %s: event %d: id %d allocated twice", t.Name, i, e.ID)
				}
				return nil, fmt.Errorf("trace %s: event %d: id %d reused after free", t.Name, i, e.ID)
			}
			idx := uint32(len(size))
			dense[e.ID] = idx
			size = append(size, e.Size)
			live = append(live, true)
			op.ID = idx
			op.Size = e.Size
			c.Allocs++
			liveCount++
			if int(liveCount) > c.PeakLive {
				c.PeakLive = int(liveCount)
			}
			liveBytes += e.Size
			if liveBytes > c.PeakRequestedBytes {
				c.PeakRequestedBytes = liveBytes
			}
		case KindFree:
			idx, seen := dense[e.ID]
			if !seen || !live[idx] {
				return nil, fmt.Errorf("trace %s: event %d: free of dead id %d", t.Name, i, e.ID)
			}
			live[idx] = false
			op.ID = idx
			op.Size = size[idx]
			c.Frees++
			liveCount--
			liveBytes -= size[idx]
		case KindAccess:
			idx, seen := dense[e.ID]
			if !seen || !live[idx] {
				return nil, fmt.Errorf("trace %s: event %d: access to dead id %d", t.Name, i, e.ID)
			}
			if e.Reads == 0 && e.Writes == 0 {
				return nil, fmt.Errorf("trace %s: event %d: empty access", t.Name, i)
			}
			op.ID = idx
			op.Reads = e.Reads
			op.Writes = e.Writes
			c.Accesses++
		case KindTick:
			if e.Cycles == 0 {
				return nil, fmt.Errorf("trace %s: event %d: zero tick", t.Name, i)
			}
			op.Cycles = e.Cycles
			c.Ticks++
		default:
			return nil, fmt.Errorf("trace %s: event %d: unknown kind %d", t.Name, i, e.Kind)
		}
		c.Ops[i] = op
	}
	c.NumIDs = len(size)
	return c, nil
}
