package trace

import (
	"math"

	"dmexplore/internal/stats"
)

// Trace feature vector for surrogate-assisted screening: a fixed-length
// numeric summary of a compiled trace's allocation behaviour, computed
// once per exploration from the columnar slabs and fed — alongside the
// candidate's decoded axis digits — to the learned per-objective
// regressors (internal/core.Surrogate). Within one run the vector is a
// constant that anchors the model's intercept; across runs it is what
// lets a model warm-started from another workload's journal transfer:
// two traces with similar size mixes, lifetimes and burstiness get
// similar predictions.
//
// All features are finite for any valid compiled trace (the fuzz target
// FuzzTraceFeatures asserts this over everything the decoders accept),
// and deterministic: the same trace always yields the bit-identical
// vector. Features marked order-independent below depend only on the
// multiset of allocations (size histogram, counts) or on per-allocation
// quantities (lifetime percentiles), not on how unrelated events
// interleave; the live-set and burstiness features are order-dependent
// by design — interleaving is exactly what they measure.

// featureSizeBuckets is the number of log2 size-class histogram buckets:
// bucket i counts allocations with ⌊log2(size)⌋ = i, the last bucket
// absorbing everything ≥ 2^(featureSizeBuckets-1) bytes.
const featureSizeBuckets = 14

// featureWindows is the number of equal-width trace windows the
// burstiness features are computed over.
const featureWindows = 64

// NumFeatures is the length of the vector Features returns.
const NumFeatures = 12 + featureSizeBuckets

// FeatureNames returns the feature labels, index-aligned with Features.
func FeatureNames() []string {
	names := []string{
		"log_events",        // log1p(total events)
		"alloc_frac",        // allocs / events               (order-independent)
		"access_frac",       // access events / events        (order-independent)
		"tick_frac",         // tick events / events          (order-independent)
		"log_mean_size",     // log1p(mean allocation bytes)  (order-independent)
		"log_life_p25",      // log1p(lifetime p25, events)   (order-independent)
		"log_life_p50",      // log1p(lifetime p50, events)   (order-independent)
		"log_life_p90",      // log1p(lifetime p90, events)   (order-independent)
		"log_life_p99",      // log1p(lifetime p99, events)   (order-independent)
		"burstiness",        // cv of per-window alloc counts
		"phase_count",       // live-byte half-peak upcrossings / windows
		"live_mean_of_peak", // mean live bytes / peak live bytes
	}
	for i := 0; i < featureSizeBuckets; i++ {
		names = append(names, "size_class_"+string(rune('a'+i))) // fraction of allocs in log2 bucket i (order-independent)
	}
	return names
}

// Features computes the surrogate feature vector of a compiled trace.
// The result has length NumFeatures; every entry is finite.
func Features(c *Compiled) []float64 {
	f := make([]float64, 0, NumFeatures)
	n := c.Len()
	events := float64(n)
	f = append(f, math.Log1p(events))
	if events == 0 {
		events = 1 // the fraction features of an empty trace are all 0
	}
	f = append(f,
		float64(c.Allocs)/events,
		float64(c.Accesses)/events,
		float64(c.Ticks)/events,
	)

	kinds, ids, argA, _ := c.Slabs()

	// One pass over the slabs: allocation sizes and birth indices (for
	// lifetimes), the live-byte curve summary, and per-window alloc
	// counts. born/sizes are indexed by dense allocation ID.
	born := make([]int64, c.NumIDs)
	var sizeSum float64
	sizeHist := make([]float64, featureSizeBuckets)
	lifetimes := make([]float64, 0, c.Frees)
	var liveBytes, peakLive, liveIntegral float64
	// Half-peak upcrossings need the final peak, so record the curve's
	// value per window boundary instead of a second slab pass.
	windowOf := func(i int) int {
		if n == 0 {
			return 0
		}
		w := i * featureWindows / n
		if w >= featureWindows {
			w = featureWindows - 1
		}
		return w
	}
	windowAllocs := make([]float64, featureWindows)
	windowLive := make([]float64, featureWindows) // max live bytes per window
	for i := 0; i < n; i++ {
		switch kinds[i] {
		case KindAlloc:
			sz := float64(argA[i])
			sizeSum += sz
			b := 0
			for s := int64(argA[i]); s > 1 && b < featureSizeBuckets-1; s >>= 1 {
				b++
			}
			sizeHist[b]++
			born[ids[i]] = int64(i)
			liveBytes += sz
			if liveBytes > peakLive {
				peakLive = liveBytes
			}
			windowAllocs[windowOf(i)]++
		case KindFree:
			lifetimes = append(lifetimes, float64(int64(i)-born[ids[i]]))
			liveBytes -= float64(argA[i])
		}
		liveIntegral += liveBytes
		if w := windowOf(i); liveBytes > windowLive[w] {
			windowLive[w] = liveBytes
		}
	}

	meanSize := 0.0
	if c.Allocs > 0 {
		meanSize = sizeSum / float64(c.Allocs)
	}
	f = append(f, math.Log1p(meanSize))
	for _, q := range []float64{0.25, 0.50, 0.90, 0.99} {
		f = append(f, math.Log1p(stats.Quantile(lifetimes, q)))
	}

	// Burstiness: coefficient of variation of per-window alloc counts.
	var ws stats.Summary
	for _, w := range windowAllocs {
		ws.Add(w)
	}
	burst := 0.0
	if ws.Mean() > 0 {
		burst = ws.StdDev() / ws.Mean()
	}
	f = append(f, burst)

	// Phase count: how many windows the live-byte curve rises above half
	// the trace's peak from below, normalized by the window count. One
	// sustained plateau counts once; an oscillating workload counts per
	// burst.
	phases := 0.0
	above := false
	for _, w := range windowLive {
		up := peakLive > 0 && w >= peakLive/2
		if up && !above {
			phases++
		}
		above = up
	}
	f = append(f, phases/featureWindows)

	liveMean := 0.0
	if n > 0 && peakLive > 0 {
		liveMean = liveIntegral / float64(n) / peakLive
	}
	f = append(f, liveMean)

	for _, h := range sizeHist {
		if c.Allocs > 0 {
			h /= float64(c.Allocs)
		}
		f = append(f, h)
	}
	return f
}
