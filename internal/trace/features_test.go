package trace

import (
	"math"
	"strings"
	"testing"
)

func compileT(t *testing.T, tr *Trace) *Compiled {
	t.Helper()
	c, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFeaturesShapeAndFiniteness(t *testing.T) {
	b := NewBuilder("feat")
	for i := 0; i < 200; i++ {
		id := b.Alloc(int64(16 + 8*(i%10)))
		b.Access(id, 4, 2)
		b.Tick(50)
		if i%3 == 0 {
			b.Free(id)
		}
	}
	b.FreeAll()
	c := compileT(t, b.Build())
	f := Features(c)
	if len(f) != NumFeatures {
		t.Fatalf("feature length %d, want %d", len(f), NumFeatures)
	}
	if len(FeatureNames()) != NumFeatures {
		t.Fatalf("name length %d, want %d", len(FeatureNames()), NumFeatures)
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d (%s) = %v", i, FeatureNames()[i], v)
		}
	}
	// Recompute: bit-identical.
	g := Features(c)
	for i := range f {
		if f[i] != g[i] {
			t.Fatalf("feature %d not deterministic: %v vs %v", i, f[i], g[i])
		}
	}
}

func TestFeaturesEmptyTrace(t *testing.T) {
	c := compileT(t, &Trace{Name: "empty"})
	for i, v := range Features(c) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("empty-trace feature %d = %v", i, v)
		}
	}
}

// TestFeaturesOrderIndependentSubset pins the documented order
// independence: features that depend only on the allocation multiset and
// per-allocation lifetimes (size histogram, kind fractions, mean size,
// lifetime percentiles) must not change when unrelated events are
// interleaved differently; the burstiness/live-curve features may.
func TestFeaturesOrderIndependentSubset(t *testing.T) {
	// Same allocations with identical per-allocation lifetimes (in
	// events) and the same access/tick multiset, interleaved differently:
	// a regular cadence vs a front-loaded burst.
	mk := func(burst bool) *Compiled {
		b := NewBuilder("order")
		var ids []uint64
		if burst {
			for i := 0; i < 32; i++ {
				ids = append(ids, b.Alloc(int64(32*(1+i%4))))
			}
			for _, id := range ids {
				b.Tick(10)
				b.Free(id)
			}
		} else {
			for i := 0; i < 32; i++ {
				id := b.Alloc(int64(32 * (1 + i%4)))
				b.Tick(10)
				b.Free(id)
			}
		}
		return compileT(t, b.Build())
	}
	fa, fb := Features(mk(false)), Features(mk(true))
	names := FeatureNames()
	orderIndependent := map[string]bool{
		"log_events": true, "alloc_frac": true, "access_frac": true,
		"tick_frac": true, "log_mean_size": true,
	}
	for i, name := range names {
		if strings.HasPrefix(name, "size_class") {
			orderIndependent[name] = true
		}
		if orderIndependent[name] && fa[i] != fb[i] {
			t.Errorf("order-independent feature %s differs: %v vs %v", name, fa[i], fb[i])
		}
	}
	// Sanity: the interleaving actually differs where it should.
	burstIdx := -1
	for i, name := range names {
		if name == "burstiness" {
			burstIdx = i
		}
	}
	if fa[burstIdx] == fb[burstIdx] {
		t.Fatalf("burstiness blind to interleaving (%v)", fa[burstIdx])
	}
}

func TestFeaturesSizeHistogram(t *testing.T) {
	b := NewBuilder("hist")
	// 3 allocs of 16 B (bucket 4), 1 of 1024 B (bucket 10).
	for i := 0; i < 3; i++ {
		b.Alloc(16)
	}
	b.Alloc(1024)
	b.FreeAll()
	f := Features(compileT(t, b.Build()))
	names := FeatureNames()
	get := func(name string) float64 {
		for i, n := range names {
			if n == name {
				return f[i]
			}
		}
		t.Fatalf("no feature %s", name)
		return 0
	}
	if got := get("size_class_" + string(rune('a'+4))); got != 0.75 {
		t.Fatalf("16 B bucket = %v, want 0.75", got)
	}
	if got := get("size_class_" + string(rune('a'+10))); got != 0.25 {
		t.Fatalf("1 KiB bucket = %v, want 0.25", got)
	}
}
