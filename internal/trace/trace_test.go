package trace

import (
	"strings"
	"testing"

	"dmexplore/internal/stats"
)

func sampleTrace() *Trace {
	b := NewBuilder("sample")
	id1 := b.Alloc(74)
	b.Access(id1, 10, 5)
	b.Tick(100)
	id2 := b.Alloc(1500)
	b.Access(id2, 200, 180)
	b.Free(id1)
	b.Free(id2)
	return b.Build()
}

func TestBuilderProducesValidTrace(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 7 {
		t.Fatalf("len %d", tr.Len())
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder("x")
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("alloc(0)", func() { b.Alloc(0) })
	mustPanic("free dead", func() { b.Free(42) })
	mustPanic("access dead", func() { b.Access(42, 1, 0) })
}

func TestBuilderNoopEvents(t *testing.T) {
	b := NewBuilder("x")
	id := b.Alloc(10)
	b.Access(id, 0, 0) // no-op
	b.Tick(0)          // no-op
	b.Free(id)
	if got := b.Build().Len(); got != 2 {
		t.Fatalf("len %d, want 2 (no-ops skipped)", got)
	}
}

func TestBuilderFreeAll(t *testing.T) {
	b := NewBuilder("x")
	b.Alloc(1)
	b.Alloc(2)
	b.Alloc(3)
	if b.NumLive() != 3 {
		t.Fatalf("live %d", b.NumLive())
	}
	b.FreeAll()
	if b.NumLive() != 0 {
		t.Fatal("live after FreeAll")
	}
	tr := b.Build()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// FreeAll must be deterministic: ascending IDs.
	var frees []uint64
	for _, e := range tr.Events {
		if e.Kind == KindFree {
			frees = append(frees, e.ID)
		}
	}
	for i := 1; i < len(frees); i++ {
		if frees[i] < frees[i-1] {
			t.Fatalf("frees not ascending: %v", frees)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
	}{
		{"free before alloc", []Event{{Kind: KindFree, ID: 1}}},
		{"double free", []Event{
			{Kind: KindAlloc, ID: 1, Size: 8}, {Kind: KindFree, ID: 1}, {Kind: KindFree, ID: 1}}},
		{"double alloc", []Event{
			{Kind: KindAlloc, ID: 1, Size: 8}, {Kind: KindAlloc, ID: 1, Size: 8}}},
		{"id reuse", []Event{
			{Kind: KindAlloc, ID: 1, Size: 8}, {Kind: KindFree, ID: 1},
			{Kind: KindAlloc, ID: 1, Size: 8}}},
		{"access dead", []Event{{Kind: KindAccess, ID: 1, Reads: 1}}},
		{"zero size", []Event{{Kind: KindAlloc, ID: 1, Size: 0}}},
		{"empty access", []Event{
			{Kind: KindAlloc, ID: 1, Size: 8}, {Kind: KindAccess, ID: 1}}},
		{"zero tick", []Event{{Kind: KindTick}}},
		{"unknown kind", []Event{{Kind: 99}}},
	}
	for _, c := range cases {
		tr := &Trace{Name: c.name, Events: c.events}
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAnalyze(t *testing.T) {
	b := NewBuilder("x")
	id1 := b.Alloc(100) // live bytes 100
	id2 := b.Alloc(200) // 300 <- peak
	b.Access(id1, 5, 3)
	b.Tick(50)
	b.Free(id1) // 200
	id3 := b.Alloc(50)
	b.Free(id2)
	_ = id3 // left live
	p := Analyze(b.Build())
	if p.Allocs != 3 || p.Frees != 2 {
		t.Fatalf("allocs/frees %d/%d", p.Allocs, p.Frees)
	}
	if p.PeakLiveBytes != 300 {
		t.Fatalf("peak %d", p.PeakLiveBytes)
	}
	if p.PeakLiveBlocks != 2 {
		t.Fatalf("peak blocks %d", p.PeakLiveBlocks)
	}
	if p.FinalLiveBytes != 50 {
		t.Fatalf("final live %d", p.FinalLiveBytes)
	}
	if p.AccessWords != 8 || p.Accesses != 1 {
		t.Fatalf("accesses %d/%d", p.Accesses, p.AccessWords)
	}
	if p.TickCycles != 50 {
		t.Fatalf("ticks %d", p.TickCycles)
	}
	if p.Sizes.Total() != 3 || p.Sizes.Count(100) != 1 {
		t.Fatal("size histogram wrong")
	}
	if p.Lifetimes.Total() != 2 {
		t.Fatal("lifetime histogram wrong")
	}
}

func TestDominantSizes(t *testing.T) {
	b := NewBuilder("x")
	for i := 0; i < 10; i++ {
		b.Free(b.Alloc(74))
	}
	for i := 0; i < 5; i++ {
		b.Free(b.Alloc(1500))
	}
	b.Free(b.Alloc(32))
	p := Analyze(b.Build())
	top := p.DominantSizes(2)
	if len(top) != 2 || top[0].Value != 74 || top[1].Value != 1500 {
		t.Fatalf("dominant sizes %v", top)
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := WriteText(&sb, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Fatalf("name %q", got.Name)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events %d vs %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestTextSkipsBlanksAndComments(t *testing.T) {
	in := "# dmtrace demo\n\n# a comment\na 1 74\n\nf 1\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "demo" || tr.Len() != 2 {
		t.Fatalf("%q %d", tr.Name, tr.Len())
	}
}

func TestTextErrors(t *testing.T) {
	for _, in := range []string{
		"a 1\n",       // missing size
		"f\n",         // missing id
		"x 1 2\n",     // missing writes
		"q 1\n",       // unknown record
		"t\n",         // missing cycles
		"a one two\n", // non-numeric
	} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := WriteBinary(&sb, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip mismatch: %q %d", got.Name, len(got.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("DMTR\x09")); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated event stream.
	tr := sampleTrace()
	var sb strings.Builder
	WriteBinary(&sb, tr)
	full := sb.String()
	if _, err := ReadBinary(strings.NewReader(full[:len(full)-3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestBinaryDenserThanText(t *testing.T) {
	b := NewBuilder("density")
	for i := 0; i < 1000; i++ {
		id := b.Alloc(int64(i%512 + 1))
		b.Access(id, uint64(i%64+1), 2)
		b.Free(id)
	}
	tr := b.Build()
	var text, bin strings.Builder
	WriteText(&text, tr)
	WriteBinary(&bin, tr)
	if bin.Len() >= text.Len()/2 {
		t.Fatalf("binary %d not much denser than text %d", bin.Len(), text.Len())
	}
}

func TestReadAuto(t *testing.T) {
	tr := sampleTrace()
	var bin, txt strings.Builder
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{bin.String(), txt.String()} {
		got, err := ReadAuto(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != tr.Len() || got.Name != tr.Name {
			t.Fatalf("auto read: %d events, name %q", got.Len(), got.Name)
		}
	}
	if _, err := ReadAuto(strings.NewReader("q 1 2\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCodecPropertyRandomRoundTrip(t *testing.T) {
	// Random valid traces must survive both codecs byte-exactly.
	rng := stats.NewRNG(31)
	for iter := 0; iter < 25; iter++ {
		b := NewBuilder("prop")
		var live []uint64
		ops := rng.Intn(200) + 1
		for i := 0; i < ops; i++ {
			switch {
			case len(live) > 0 && rng.Bool(0.3):
				k := rng.Intn(len(live))
				b.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			case len(live) > 0 && rng.Bool(0.3):
				b.Access(live[rng.Intn(len(live))], uint64(rng.Intn(100)), uint64(rng.Intn(100)+1))
			case rng.Bool(0.2):
				b.Tick(uint64(rng.Intn(10000) + 1))
			default:
				live = append(live, b.Alloc(int64(rng.Intn(100000))+1))
			}
		}
		tr := b.Build()
		var bin strings.Builder
		if err := WriteBinary(&bin, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(strings.NewReader(bin.String()))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Events) != len(tr.Events) {
			t.Fatalf("iter %d: %d vs %d events", iter, len(got.Events), len(tr.Events))
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				t.Fatalf("iter %d: event %d differs", iter, i)
			}
		}
	}
}
