// Package report renders exploration results in the formats the paper's
// tool emits: CSV/TSV tables "easy to import to Excel", Gnuplot data and
// script files for the Pareto curves, and markdown summaries for
// documentation. It also parses its own CSV back, so downstream tooling
// can post-process sweeps without re-running them.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dmexplore/internal/core"
	"dmexplore/internal/profile"
)

// resultHeader is the fixed metric column block of the results CSV.
var resultHeader = []string{
	"index", "label", "feasible",
	"accesses", "footprint_bytes", "energy_nj", "cycles",
	"mallocs", "frees", "failures", "peak_requested_bytes",
}

// WriteResultsCSV emits one row per result: the axis labels followed by
// the metric block.
func WriteResultsCSV(w io.Writer, axisNames []string, results []core.Result) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, axisNames...), resultHeader...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		if r.Metrics == nil {
			continue
		}
		m := r.Metrics
		row := append(append([]string{}, r.Labels...),
			strconv.Itoa(r.Index),
			m.ConfigLabel,
			strconv.FormatBool(m.Feasible()),
			strconv.FormatUint(m.Accesses, 10),
			strconv.FormatInt(m.FootprintBytes, 10),
			strconv.FormatFloat(m.EnergyNJ, 'f', 3, 64),
			strconv.FormatUint(m.Cycles, 10),
			strconv.FormatUint(m.Mallocs, 10),
			strconv.FormatUint(m.Frees, 10),
			strconv.FormatUint(m.Failures, 10),
			strconv.FormatInt(m.PeakRequestedBytes, 10),
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadResultsCSV parses a file produced by WriteResultsCSV back into
// partially-populated results (labels + metrics; ConfigID is not stored in
// the CSV).
func ReadResultsCSV(r io.Reader, numAxes int) ([]core.Result, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("report: empty CSV")
	}
	if len(rows[0]) != numAxes+len(resultHeader) {
		return nil, fmt.Errorf("report: header has %d columns, want %d",
			len(rows[0]), numAxes+len(resultHeader))
	}
	var out []core.Result
	for i, row := range rows[1:] {
		parse := func(idx int) string { return row[numAxes+idx] }
		index, err := strconv.Atoi(parse(0))
		if err != nil {
			return nil, fmt.Errorf("report: row %d: bad index: %v", i, err)
		}
		accesses, err1 := strconv.ParseUint(parse(3), 10, 64)
		footprint, err2 := strconv.ParseInt(parse(4), 10, 64)
		energy, err3 := strconv.ParseFloat(parse(5), 64)
		cycles, err4 := strconv.ParseUint(parse(6), 10, 64)
		mallocs, err5 := strconv.ParseUint(parse(7), 10, 64)
		frees, err6 := strconv.ParseUint(parse(8), 10, 64)
		failures, err7 := strconv.ParseUint(parse(9), 10, 64)
		peakReq, err8 := strconv.ParseInt(parse(10), 10, 64)
		for _, e := range []error{err1, err2, err3, err4, err5, err6, err7, err8} {
			if e != nil {
				return nil, fmt.Errorf("report: row %d: %v", i, e)
			}
		}
		out = append(out, core.Result{
			Index:  index,
			Labels: append([]string{}, row[:numAxes]...),
			Metrics: &profile.Metrics{
				ConfigLabel:        parse(1),
				Accesses:           accesses,
				FootprintBytes:     footprint,
				EnergyNJ:           energy,
				Cycles:             cycles,
				Mallocs:            mallocs,
				Frees:              frees,
				Failures:           failures,
				PeakRequestedBytes: peakReq,
			},
		})
	}
	return out, nil
}

// WriteParetoDat emits a Gnuplot-ready data file of the sweep: column 1-2
// are the two objectives for all points, and a second indexed block
// repeats the Pareto-optimal subset (Gnuplot `index 1`).
func WriteParetoDat(w io.Writer, all, front []core.Result, objX, objY string) error {
	put := func(rs []core.Result, comment string) error {
		if _, err := fmt.Fprintf(w, "# %s: %s vs %s\n", comment, objX, objY); err != nil {
			return err
		}
		for _, r := range rs {
			if r.Metrics == nil {
				continue
			}
			x, err := r.Metrics.Objective(objX)
			if err != nil {
				return err
			}
			y, err := r.Metrics.Objective(objY)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%.6g %.6g %d\n", x, y, r.Index); err != nil {
				return err
			}
		}
		return nil
	}
	if err := put(all, "all configurations"); err != nil {
		return err
	}
	if _, err := fmt.Fprint(w, "\n\n"); err != nil {
		return err
	}
	return put(front, "pareto front")
}

// WriteGnuplotScript emits a .plt that renders the .dat written by
// WriteParetoDat as the paper's Figure 1 (lower part): the cloud of
// configurations with the Pareto curve highlighted.
func WriteGnuplotScript(w io.Writer, datPath, title, objX, objY string) error {
	_, err := fmt.Fprintf(w, `set title %q
set xlabel %q
set ylabel %q
set key top right
set grid
plot %q index 0 using 1:2 with points pt 7 ps 0.5 lc rgb "#bbbbbb" title "all configurations", \
     %q index 1 using 1:2 with linespoints pt 5 ps 1 lc rgb "#cc0000" title "Pareto-optimal"
`, title, objX, objY, datPath, datPath)
	return err
}

// MarkdownSummary renders the per-experiment summary table used in
// EXPERIMENTS.md: objective ranges across the sweep and the Pareto-set
// improvements.
func MarkdownSummary(name string, feasible, front []core.Result, objectives []string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", name)
	fmt.Fprintf(&b, "- configurations: %d feasible, %d Pareto-optimal\n\n", len(feasible), len(front))
	fmt.Fprintf(&b, "| objective | sweep min | sweep max | sweep factor | pareto factor | pareto reduction |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|\n")
	for _, obj := range objectives {
		sweep, err := core.Range(feasible, obj)
		if err != nil {
			return "", err
		}
		par, err := core.Range(front, obj)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "| %s | %.4g | %.4g | %.2fx | %.2fx | %.1f%% |\n",
			obj, sweep.Min, sweep.Max, sweep.Factor, par.Factor,
			core.ReductionPercent(par.Factor))
	}
	return b.String(), nil
}

// LabelHistogram tallies how often each option label appears among the
// results (e.g. to see which pool choices populate a Pareto front).
func LabelHistogram(results []core.Result, axis int) []string {
	counts := make(map[string]int)
	for _, r := range results {
		if axis < len(r.Labels) {
			counts[r.Labels[axis]]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s:%d", k, counts[k])
	}
	return out
}
