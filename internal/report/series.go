package report

import (
	"fmt"
	"io"

	"dmexplore/internal/profile"
)

// WriteSeriesDat emits a footprint-over-time series as a Gnuplot data
// file: event index, allocator footprint bytes, application demand bytes.
func WriteSeriesDat(w io.Writer, series []profile.FootprintSample) error {
	if len(series) == 0 {
		return fmt.Errorf("report: empty footprint series")
	}
	if _, err := fmt.Fprintln(w, "# event reserved_bytes requested_bytes"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%d %d %d\n", s.Event, s.ReservedBytes, s.RequestedBytes); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesScript emits a .plt rendering a series .dat: allocator
// footprint vs application demand over the run.
func WriteSeriesScript(w io.Writer, datPath, title string) error {
	_, err := fmt.Fprintf(w, `set title %q
set xlabel "trace event"
set ylabel "bytes"
set key top left
set grid
plot %q using 1:2 with lines lw 2 lc rgb "#cc0000" title "allocator footprint", \
     %q using 1:3 with lines lw 1 lc rgb "#555555" title "application demand"
`, title, datPath, datPath)
	return err
}
