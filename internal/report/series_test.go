package report

import (
	"bytes"
	"strings"
	"testing"

	"dmexplore/internal/profile"
)

func TestWriteSeriesDat(t *testing.T) {
	series := []profile.FootprintSample{
		{Event: 0, ReservedBytes: 100, RequestedBytes: 80},
		{Event: 200, ReservedBytes: 5000, RequestedBytes: 4000},
	}
	var buf bytes.Buffer
	if err := WriteSeriesDat(&buf, series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0 100 80\n") || !strings.Contains(out, "200 5000 4000\n") {
		t.Fatalf("series dat:\n%s", out)
	}
	if err := WriteSeriesDat(&buf, nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestWriteSeriesScript(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesScript(&buf, "fp.dat", "Footprint"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fp.dat", "allocator footprint", "application demand"} {
		if !strings.Contains(out, want) {
			t.Fatalf("script missing %q", want)
		}
	}
}
