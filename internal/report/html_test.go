package report

import (
	"bytes"
	"strings"
	"testing"

	"dmexplore/internal/profile"
)

func TestWriteHTML(t *testing.T) {
	all := sampleResults()
	front := all[:1]
	var buf bytes.Buffer
	err := WriteHTML(&buf, "Test Report", []string{"pools", "classes"},
		all, front, profile.ObjAccesses, profile.ObjFootprint)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Test Report",
		"2 feasible configurations, 1 Pareto-optimal",
		"<svg", "<circle", "<path",
		"<th>pools</th>", "<th>classes</th>",
		"accesses", "footprint",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("html missing %q", want)
		}
	}
	// The front config's labels appear in the table.
	if !strings.Contains(out, "<td>none</td>") {
		t.Fatal("front row labels missing")
	}
}

func TestWriteHTMLEscapes(t *testing.T) {
	all := sampleResults()
	all[0].Labels = []string{"<script>alert(1)</script>", "x"}
	var buf bytes.Buffer
	err := WriteHTML(&buf, "esc", []string{"a", "b"}, all, all[:1],
		profile.ObjAccesses, profile.ObjFootprint)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert") {
		t.Fatal("labels not escaped")
	}
}

func TestWriteHTMLErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "x", nil, nil, nil, "accesses", "footprint"); err == nil {
		t.Fatal("empty result set accepted")
	}
	all := sampleResults()
	if err := WriteHTML(&buf, "x", nil, all, nil, "nope", "footprint"); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestNormLog(t *testing.T) {
	if normLog(1, 1, 100) != 0 {
		t.Fatal("lo not 0")
	}
	if normLog(100, 1, 100) != 1 {
		t.Fatal("hi not 1")
	}
	mid := normLog(10, 1, 100)
	if mid < 0.49 || mid > 0.51 {
		t.Fatalf("log midpoint %v", mid)
	}
	// Non-positive range degrades to linear.
	if normLog(0, -10, 10) != 0.5 {
		t.Fatalf("linear fallback %v", normLog(0, -10, 10))
	}
}
