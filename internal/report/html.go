package report

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"strings"

	"dmexplore/internal/core"
)

// WriteHTML renders a self-contained HTML exploration report — the
// open-source stand-in for the paper's GUI: an SVG scatter of every
// feasible configuration in objective space with the Pareto front
// highlighted, followed by the front's configuration table.
func WriteHTML(w io.Writer, title string, axisNames []string, feasible, front []core.Result, objX, objY string) error {
	type pt struct {
		X, Y   float64
		Index  int
		Labels string
		Front  bool
	}
	var (
		pts        []pt
		minX, maxX = math.Inf(1), math.Inf(-1)
		minY, maxY = math.Inf(1), math.Inf(-1)
	)
	onFront := make(map[int]bool, len(front))
	for _, r := range front {
		onFront[r.Index] = true
	}
	for _, r := range feasible {
		if r.Metrics == nil {
			continue
		}
		x, err := r.Metrics.Objective(objX)
		if err != nil {
			return err
		}
		y, err := r.Metrics.Objective(objY)
		if err != nil {
			return err
		}
		pts = append(pts, pt{
			X: x, Y: y, Index: r.Index,
			Labels: strings.Join(r.Labels, ","),
			Front:  onFront[r.Index],
		})
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	if len(pts) == 0 {
		return fmt.Errorf("report: no feasible points to plot")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	// Plot geometry (log-log renders the wide ranges best; guard zeros).
	const width, height, margin = 720.0, 480.0, 60.0
	sx := func(v float64) float64 {
		return margin + (width-2*margin)*normLog(v, minX, maxX)
	}
	sy := func(v float64) float64 {
		return height - margin - (height-2*margin)*normLog(v, minY, maxY)
	}

	type svgPoint struct {
		CX, CY  float64
		Index   int
		Tooltip string
		Front   bool
	}
	var svgPts []svgPoint
	var frontPath strings.Builder
	for _, p := range pts {
		svgPts = append(svgPts, svgPoint{
			CX: sx(p.X), CY: sy(p.Y), Index: p.Index,
			Tooltip: fmt.Sprintf("#%d [%s] %s=%.4g %s=%.4g", p.Index, p.Labels, objX, p.X, objY, p.Y),
			Front:   p.Front,
		})
	}
	for i, r := range front {
		x, _ := r.Metrics.Objective(objX)
		y, _ := r.Metrics.Objective(objY)
		cmd := "L"
		if i == 0 {
			cmd = "M"
		}
		fmt.Fprintf(&frontPath, "%s%.1f %.1f ", cmd, sx(x), sy(y))
	}

	type frontRow struct {
		Index  int
		Labels []string
		X, Y   string
	}
	var rows []frontRow
	for _, r := range front {
		x, _ := r.Metrics.Objective(objX)
		y, _ := r.Metrics.Objective(objY)
		rows = append(rows, frontRow{
			Index: r.Index, Labels: r.Labels,
			X: fmt.Sprintf("%.4g", x), Y: fmt.Sprintf("%.4g", y),
		})
	}

	return htmlTmpl.Execute(w, map[string]any{
		"Title": title, "ObjX": objX, "ObjY": objY,
		"Width": width, "Height": height,
		"Points": svgPts, "FrontPath": frontPath.String(),
		"AxisNames": axisNames, "Rows": rows,
		"Feasible": len(pts), "FrontSize": len(front),
	})
}

// normLog maps v into [0,1] on a log scale over [lo,hi] (linear when the
// range includes non-positive values).
func normLog(v, lo, hi float64) float64 {
	if lo > 0 && hi > lo {
		return (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	}
	return (v - lo) / (hi - lo)
}

var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
svg { border: 1px solid #ccc; background: #fcfcfc; }
table { border-collapse: collapse; margin-top: 1em; }
th, td { border: 1px solid #ccc; padding: 4px 8px; font-size: 13px; }
th { background: #eee; }
.axis-label { font-size: 13px; fill: #555; }
</style></head><body>
<h1>{{.Title}}</h1>
<p>{{.Feasible}} feasible configurations, {{.FrontSize}} Pareto-optimal
({{.ObjX}} vs {{.ObjY}}, log-log).</p>
<svg width="{{.Width}}" height="{{.Height}}" xmlns="http://www.w3.org/2000/svg">
  <path d="{{.FrontPath}}" fill="none" stroke="#cc0000" stroke-width="1.5"/>
  {{- range .Points}}
  <circle cx="{{printf "%.1f" .CX}}" cy="{{printf "%.1f" .CY}}" r="{{if .Front}}4{{else}}2.5{{end}}"
    fill="{{if .Front}}#cc0000{{else}}#9999bb{{end}}" fill-opacity="{{if .Front}}1{{else}}0.55{{end}}">
    <title>{{.Tooltip}}</title>
  </circle>
  {{- end}}
  <text x="{{.Width}}" y="{{.Height}}" dx="-70" dy="-12" class="axis-label">{{.ObjX}} →</text>
  <text x="14" y="40" class="axis-label">{{.ObjY}} ↑</text>
</svg>
<h2>Pareto-optimal configurations</h2>
<table>
<tr><th>#</th>{{range .AxisNames}}<th>{{.}}</th>{{end}}<th>{{.ObjX}}</th><th>{{.ObjY}}</th></tr>
{{- range .Rows}}
<tr><td>{{.Index}}</td>{{range .Labels}}<td>{{.}}</td>{{end}}<td>{{.X}}</td><td>{{.Y}}</td></tr>
{{- end}}
</table>
</body></html>
`))
