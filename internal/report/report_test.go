package report

import (
	"bytes"
	"strings"
	"testing"

	"dmexplore/internal/core"
	"dmexplore/internal/profile"
)

func sampleResults() []core.Result {
	return []core.Result{
		{Index: 0, Labels: []string{"none", "single"}, Metrics: &profile.Metrics{
			ConfigLabel: "cfg0", Accesses: 100, FootprintBytes: 1000,
			EnergyNJ: 12.5, Cycles: 5000, Mallocs: 10, Frees: 10,
			PeakRequestedBytes: 800,
		}},
		{Index: 1, Labels: []string{"d74", "pow2"}, Metrics: &profile.Metrics{
			ConfigLabel: "cfg1", Accesses: 50, FootprintBytes: 2000,
			EnergyNJ: 8.25, Cycles: 4000, Mallocs: 10, Frees: 10, Failures: 2,
			PeakRequestedBytes: 800,
		}},
	}
}

func TestResultsCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, []string{"pools", "classes"}, sampleResults()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "pools,classes,index,label,feasible,accesses") {
		t.Fatalf("header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	got, err := ReadResultsCSV(strings.NewReader(out), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows %d", len(got))
	}
	for i, r := range got {
		want := sampleResults()[i]
		if r.Index != want.Index {
			t.Fatalf("row %d index %d", i, r.Index)
		}
		if r.Labels[0] != want.Labels[0] || r.Labels[1] != want.Labels[1] {
			t.Fatalf("row %d labels %v", i, r.Labels)
		}
		m, wm := r.Metrics, want.Metrics
		if m.Accesses != wm.Accesses || m.FootprintBytes != wm.FootprintBytes ||
			m.EnergyNJ != wm.EnergyNJ || m.Cycles != wm.Cycles ||
			m.Failures != wm.Failures || m.PeakRequestedBytes != wm.PeakRequestedBytes {
			t.Fatalf("row %d metrics %+v != %+v", i, m, wm)
		}
	}
}

func TestReadResultsCSVErrors(t *testing.T) {
	if _, err := ReadResultsCSV(strings.NewReader(""), 2); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadResultsCSV(strings.NewReader("a,b\n"), 2); err == nil {
		t.Fatal("short header accepted")
	}
	var buf bytes.Buffer
	WriteResultsCSV(&buf, []string{"x"}, sampleResults())
	bad := strings.Replace(buf.String(), "100", "oops", 1)
	if _, err := ReadResultsCSV(strings.NewReader(bad), 1); err == nil {
		t.Fatal("corrupt row accepted")
	}
}

func TestWriteParetoDat(t *testing.T) {
	all := sampleResults()
	front := all[:1]
	var buf bytes.Buffer
	if err := WriteParetoDat(&buf, all, front, profile.ObjAccesses, profile.ObjFootprint); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "100 1000 0") || !strings.Contains(out, "50 2000 1") {
		t.Fatalf("data rows missing:\n%s", out)
	}
	// Two gnuplot index blocks separated by a double blank line.
	if !strings.Contains(out, "\n\n\n# pareto front") {
		t.Fatalf("front block missing:\n%s", out)
	}
	if _, err := buf.WriteString(""); err != nil {
		t.Fatal(err)
	}
	if err := WriteParetoDat(&buf, all, front, "nope", profile.ObjFootprint); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestWriteGnuplotScript(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGnuplotScript(&buf, "out/pareto.dat", "Easyport", "accesses", "footprint"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"set title", "out/pareto.dat", "index 1", "Pareto-optimal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("script missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownSummary(t *testing.T) {
	all := sampleResults()
	md, err := MarkdownSummary("test", all, all[:1], []string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### test", "| accesses |", "| footprint |", "2 feasible, 1 Pareto"} {
		if !strings.Contains(md, want) {
			t.Fatalf("summary missing %q:\n%s", want, md)
		}
	}
	if _, err := MarkdownSummary("x", all, all, []string{"nope"}); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestLabelHistogram(t *testing.T) {
	results := []core.Result{
		{Labels: []string{"a"}},
		{Labels: []string{"a"}},
		{Labels: []string{"b"}},
	}
	got := LabelHistogram(results, 0)
	if len(got) != 2 || got[0] != "a:2" || got[1] != "b:1" {
		t.Fatalf("histogram %v", got)
	}
	if out := LabelHistogram(results, 5); len(out) != 0 {
		t.Fatalf("out-of-range axis %v", out)
	}
}
