package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/stats"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/trace"
)

// Result is the outcome of profiling one configuration of a space.
type Result struct {
	Index   int
	Labels  []string // per-axis option labels
	Metrics *profile.Metrics
	Err     error

	// Duration is the wall time this configuration occupied a worker,
	// simulation or cache lookup included.
	Duration time.Duration
	// CacheHit marks a configuration served from the results cache.
	CacheHit bool
	// MemoHit marks a configuration served from the in-run duplicate
	// memo (axis combinations collapsing to the same canonical config).
	MemoHit bool
}

// JournalRecord converts the result to its run-journal form.
func (r Result) JournalRecord() telemetry.Record {
	rec := telemetry.Record{
		Index:      r.Index,
		Labels:     r.Labels,
		DurationMS: float64(r.Duration.Nanoseconds()) / 1e6,
		CacheHit:   r.CacheHit,
		MemoHit:    r.MemoHit,
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
		return rec
	}
	if m := r.Metrics; m != nil {
		rec.Accesses = m.Accesses
		rec.FootprintBytes = m.FootprintBytes
		rec.EnergyNJ = m.EnergyNJ
		rec.Cycles = m.Cycles
		rec.Failures = m.Failures
	}
	return rec
}

// Runner drives an exploration: one trace, one hierarchy, many
// configurations, profiled in parallel.
type Runner struct {
	Hierarchy *memhier.Hierarchy
	Trace     *trace.Trace

	// Compiled, when non-nil, is replayed instead of Trace, skipping the
	// per-exploration compile. Callers exploring many spaces against one
	// trace should trace.Compile once and set this.
	Compiled *trace.Compiled

	// Workers caps the number of concurrent simulations; 0 means
	// GOMAXPROCS.
	Workers int

	// Progress, when non-nil, is called after each configuration
	// completes with (done, total). Calls may arrive from multiple
	// goroutines; implementations must be safe for concurrent use.
	Progress func(done, total int)

	// Observer, when non-nil, is called with every completed Result —
	// the journaling hook. Calls arrive from multiple goroutines;
	// implementations must be safe for concurrent use.
	Observer func(Result)

	// Telemetry, when non-nil, receives per-worker runtime metrics
	// (simulation latency, events/sec, cache hits, errors, utilization).
	// Search strategies issuing several run phases accumulate into the
	// same collector.
	Telemetry *telemetry.Collector

	// Options are passed through to every profiling run.
	Options profile.Options

	// Cache, when non-nil, memoizes profiling results across runs and
	// tool invocations. Cache hits skip the simulation entirely — and
	// therefore any Options side effects (raw logs, series) for that
	// configuration.
	Cache *ResultsCache
}

// Explore profiles every configuration of the space exhaustively and
// returns results indexed identically to the space (result i is
// configuration i).
func (r *Runner) Explore(space *Space) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	indices := make([]int, space.Size())
	for i := range indices {
		indices[i] = i
	}
	return r.run(space, indices)
}

// Sample profiles n distinct configurations drawn uniformly from the
// space (all of them when n >= space.Size()).
func (r *Runner) Sample(space *Space, n int, seed uint64) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: sample size %d", n)
	}
	size := space.Size()
	if n >= size {
		return r.Explore(space)
	}
	rng := stats.NewRNG(seed)
	perm := rng.Perm(size)
	indices := perm[:n]
	return r.run(space, indices)
}

func (r *Runner) run(space *Space, indices []int) ([]Result, error) {
	if r.Hierarchy == nil || (r.Trace == nil && r.Compiled == nil) {
		return nil, fmt.Errorf("core: runner needs a hierarchy and a trace")
	}
	ct := r.Compiled
	if ct == nil {
		var err error
		ct, err = trace.Compile(r.Trace)
		if err != nil {
			return nil, err
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(indices) {
		workers = len(indices)
	}
	col := r.Telemetry
	if col == nil {
		col = telemetry.NewCollector(workers)
	}

	results := make([]Result, len(indices))
	// Work distribution and progress are lock-free: workers claim slots
	// with a fetch-add, so the fan-out scales without a contended mutex.
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		done atomic.Int64
	)
	// Axis combinations can collapse to the same configuration (an axis
	// that is inapplicable under another axis's value, e.g. pool
	// reclamation with no pools). Memoize within the run by canonical
	// configuration ID so duplicates cost one simulation.
	idMemo := make(map[string]*profile.Metrics)
	var memoMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := col.Shard(w)
			// One Replayer per worker: its scratch tables are sized on
			// the first run and reused for every configuration after.
			rep := profile.NewReplayer()
			rep.Shard = shard
			for {
				slot := int(next.Add(1)) - 1
				if slot >= len(indices) {
					return
				}

				start := time.Now()
				idx := indices[slot]
				res := Result{Index: idx}
				cfg, labels, err := space.Config(idx)
				if err != nil {
					res.Err = fmt.Errorf("configuration %d: %w", idx, err)
					shard.ConfigError()
				} else {
					res.Labels = labels
					id := cfg.ID()
					memoMu.Lock()
					memoized := idMemo[id]
					memoMu.Unlock()
					if memoized != nil {
						res.Metrics = memoized
						res.MemoHit = true
						shard.MemoHit()
					}
					key := ""
					if res.Metrics == nil && r.Cache != nil {
						key = CompiledCacheKey(id, ct, r.Hierarchy)
						if m, ok := r.Cache.Get(key); ok {
							res.Metrics = m
							res.CacheHit = true
							shard.CacheHit()
						} else {
							shard.CacheMiss()
						}
					}
					if res.Metrics == nil {
						res.Metrics, res.Err = rep.Run(ct, cfg, r.Hierarchy, r.Options)
						if res.Err != nil {
							// Surface which configuration died, not just
							// how: index and axis labels identify it in
							// the space without a replay.
							res.Err = fmt.Errorf("configuration %d [%s]: %w",
								idx, strings.Join(labels, " "), res.Err)
							shard.SimError()
						} else if r.Cache != nil {
							r.Cache.Put(key, res.Metrics)
						}
					}
					if res.Err == nil && memoized == nil {
						memoMu.Lock()
						idMemo[id] = res.Metrics
						memoMu.Unlock()
					}
				}
				res.Duration = time.Since(start)
				shard.AddBusy(res.Duration)
				results[slot] = res

				if r.Observer != nil {
					r.Observer(res)
				}
				if r.Progress != nil {
					r.Progress(int(done.Add(1)), len(indices))
				}
			}
		}(w)
	}
	wg.Wait()

	for _, res := range results {
		if res.Err != nil {
			return results, fmt.Errorf("core: %w", res.Err)
		}
	}
	return results, nil
}
