package core

import (
	"fmt"
	"time"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/stats"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/telemetry/span"
	"dmexplore/internal/trace"
)

// Result is the outcome of profiling one configuration of a space.
type Result struct {
	Index   int
	Labels  []string // per-axis option labels
	Metrics *profile.Metrics
	Err     error

	// Duration is the wall time this configuration occupied a worker,
	// simulation or cache lookup included.
	Duration time.Duration
	// CacheHit marks a configuration served from the results cache.
	CacheHit bool
	// MemoHit marks a configuration served from the in-run duplicate
	// memo (axis combinations collapsing to the same canonical config).
	MemoHit bool
	// Incremental marks a configuration evaluated by the partial-replay
	// path (bit-identical to a full replay, see Runner.Incremental);
	// EventsSkipped is how many trace events that avoided re-simulating.
	Incremental   bool
	EventsSkipped uint64
	// Composed marks an incremental evaluation served by composing a
	// memoized standalone general-pool run with the configuration's
	// partition — no simulation at all, O(ops) additions. Composed
	// implies Incremental.
	Composed bool
	// Predicted carries the surrogate's per-objective predictions made
	// when this configuration was submitted for exact evaluation (nil
	// outside surrogate-assisted searches). The journal preserves it, so
	// prediction accuracy can be audited offline against the exact
	// metrics on the same record.
	Predicted map[string]float64
	// Origin is the configuration's search provenance (strategy, wave,
	// operator, parents, surrogate decision), stamped by the evaluation
	// pipeline on the first exact evaluation and preserved in the
	// journal for `dmreport -lineage`.
	Origin *telemetry.Origin
}

// JournalRecord converts the result to its run-journal form.
func (r Result) JournalRecord() telemetry.Record {
	rec := telemetry.Record{
		Index:      r.Index,
		Labels:     r.Labels,
		DurationMS: float64(r.Duration.Nanoseconds()) / 1e6,
		CacheHit:   r.CacheHit,
		MemoHit:    r.MemoHit,

		Incremental:   r.Incremental,
		EventsSkipped: r.EventsSkipped,
		Composed:      r.Composed,
	}
	rec.Origin = r.Origin
	if r.Err != nil {
		rec.Error = r.Err.Error()
		return rec
	}
	rec.Predicted = r.Predicted
	if m := r.Metrics; m != nil {
		rec.Accesses = m.Accesses
		rec.FootprintBytes = m.FootprintBytes
		rec.EnergyNJ = m.EnergyNJ
		rec.Cycles = m.Cycles
		rec.Failures = m.Failures
	}
	return rec
}

// Runner drives an exploration: one trace, one hierarchy, many
// configurations, profiled in parallel.
type Runner struct {
	Hierarchy *memhier.Hierarchy
	Trace     *trace.Trace

	// Compiled, when non-nil, is replayed instead of Trace, skipping the
	// per-exploration compile. Callers exploring many spaces against one
	// trace should trace.Compile once and set this.
	Compiled *trace.Compiled

	// Workers caps the number of concurrent simulations; 0 means
	// GOMAXPROCS.
	Workers int

	// Progress, when non-nil, is called after each configuration
	// completes with (done, total). Calls may arrive from multiple
	// goroutines; implementations must be safe for concurrent use.
	Progress func(done, total int)

	// Observer, when non-nil, is called with every completed Result —
	// the journaling hook. Calls arrive from multiple goroutines;
	// implementations must be safe for concurrent use.
	Observer func(Result)

	// Telemetry, when non-nil, receives per-worker runtime metrics
	// (simulation latency, events/sec, cache hits, errors, utilization).
	// Search strategies issuing several run phases accumulate into the
	// same collector.
	Telemetry *telemetry.Collector

	// Spans, when non-nil, is the run's flight recorder: every pipeline
	// stage (simulations, partition builds, cache probes, batch waves,
	// surrogate screens) lands a typed span in a per-worker ring,
	// exportable as a Chrome trace. Recording is allocation-free and
	// purely observational — results are bit-identical with or without
	// it.
	Spans *span.Recorder

	// Options are passed through to every profiling run.
	Options profile.Options

	// Cache, when non-nil, memoizes profiling results across runs and
	// tool invocations. Cache hits skip the simulation entirely — and
	// therefore any Options side effects (raw logs, series) for that
	// configuration.
	Cache *ResultsCache

	// Incremental enables partition-based partial re-evaluation:
	// configurations sharing a fixed-pool signature (same Fixed pools and
	// general-pool layer — e.g. Hamming-1 neighbours along any
	// general-pool axis) replay the full trace once per signature and
	// re-simulate only the ops that reached the general pool thereafter.
	// Results are bit-identical to full replays; runs the partial path
	// cannot reproduce exactly fall back to a full replay automatically.
	// The flag only takes effect under fast-path profiling (no log
	// writer, caches, row buffers or footprint sampling).
	//
	// On top of the per-signature partitions, sessions memoize the
	// standalone general-pool runs by (recorded-op content hash,
	// general-pool parameters): a candidate whose fixed-pool signature
	// records an op sequence already replayed under the same general
	// vector — reclaim-axis neighbours, NSGA-II crossover offspring
	// recombining two seen half-vectors — is served by an O(ops)
	// composition with no simulation at all (Result.Composed).
	Incremental bool

	// PartitionBudgetBytes bounds the session's partition cache
	// (size-aware LRU over the per-signature invariant replays): 0 uses
	// DefaultPartitionBudgetBytes, negative is unbounded. Evicted
	// signatures rebuild on next use; results are unaffected.
	PartitionBudgetBytes int64

	// PoolMemoBudgetBytes bounds the session's pool-run memo the same
	// way: 0 uses DefaultPoolMemoBudgetBytes, negative is unbounded.
	PoolMemoBudgetBytes int64

	// PoolMemo, when non-nil, persists the pool-run memo across tool
	// invocations (see PoolMemoStore): sessions consult it before running
	// a standalone general-pool replay and record every run they build.
	// A store hit composes with zero simulation, exactly like an
	// in-session memo hit (Result.Composed). Only consulted when
	// Incremental is enabled.
	PoolMemo *PoolMemoStore

	// Surrogate, when non-nil, enables surrogate-assisted candidate
	// screening in the guided search strategies (HillClimb, Anneal,
	// ScreenAndRefine, Evolve): online per-objective models trained from
	// every exact result rank candidates so the simulation budget is
	// spent on the most promising ones. See SurrogateOptions. When nil,
	// the strategies take their original exact-only code paths.
	Surrogate *SurrogateOptions

	// EvalLatency, when positive, adds a sleep after every executed
	// simulation. The paper's workflow profiles configurations on real
	// embedded platforms where one evaluation costs seconds to minutes;
	// our in-process replay takes microseconds. The latency model lets
	// benchmarks (scripts/benchsearch.go) and tests exercise the batched
	// evaluation pipeline under backend-bound conditions — where
	// saturating the worker pool, not raw simulation speed, decides
	// wall-clock time. Cache and memo hits skip it, exactly as they skip
	// the backend. Incremental partial evaluations charge it pro-rata to
	// the replayed fraction of the trace: the modelled backend re-runs
	// only the partition's recorded ops, not the whole trace. Composed
	// evaluations (pool-run memo hits) charge only their own composition
	// cost — nothing re-runs on the backend at all.
	//
	// Charges accrue per worker and sleep in EvalLatency quanta (one
	// modelled round-trip): sleeping each sub-millisecond pro-rata slice
	// individually would add the runtime's timer overshoot per call,
	// silently inflating the model. Total slept time equals total charged
	// time; residual debt is flushed when the session drains.
	EvalLatency time.Duration
}

// Explore profiles every configuration of the space exhaustively and
// returns results indexed identically to the space (result i is
// configuration i).
func (r *Runner) Explore(space *Space) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	indices := make([]int, space.Size())
	for i := range indices {
		indices[i] = i
	}
	return r.run(space, indices)
}

// Sample profiles n distinct configurations drawn uniformly from the
// space (all of them when n >= space.Size()).
func (r *Runner) Sample(space *Space, n int, seed uint64) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: sample size %d", n)
	}
	size := space.Size()
	if n >= size {
		return r.Explore(space)
	}
	rng := stats.NewRNG(seed)
	perm := rng.Perm(size)
	indices := perm[:n]
	return r.run(space, indices)
}

// run profiles the given indices in one wave: a throwaway session, one
// batch, workers clamped to the batch size. Guided searches that issue
// many waves open a persistent session instead (see EvalSession).
func (r *Runner) run(space *Space, indices []int) ([]Result, error) {
	s, err := r.newSession(space, len(indices))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	// Sweeps have no ancestry, but stamping a uniform origin keeps the
	// journal's provenance surface total: dmreport -lineage works on
	// exhaustive runs too.
	origins := make([]*telemetry.Origin, len(indices))
	for i := range origins {
		origins[i] = &telemetry.Origin{Strategy: "sweep", Op: "sweep", Wave: 1}
	}
	return s.EvalAnnotated(indices, nil, origins)
}
