package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/stats"
	"dmexplore/internal/trace"
)

// Result is the outcome of profiling one configuration of a space.
type Result struct {
	Index   int
	Labels  []string // per-axis option labels
	Metrics *profile.Metrics
	Err     error
}

// Runner drives an exploration: one trace, one hierarchy, many
// configurations, profiled in parallel.
type Runner struct {
	Hierarchy *memhier.Hierarchy
	Trace     *trace.Trace

	// Compiled, when non-nil, is replayed instead of Trace, skipping the
	// per-exploration compile. Callers exploring many spaces against one
	// trace should trace.Compile once and set this.
	Compiled *trace.Compiled

	// Workers caps the number of concurrent simulations; 0 means
	// GOMAXPROCS.
	Workers int

	// Progress, when non-nil, is called after each configuration
	// completes with (done, total). Calls may arrive from multiple
	// goroutines; implementations must be safe for concurrent use.
	Progress func(done, total int)

	// Options are passed through to every profiling run.
	Options profile.Options

	// Cache, when non-nil, memoizes profiling results across runs and
	// tool invocations. Cache hits skip the simulation entirely — and
	// therefore any Options side effects (raw logs, series) for that
	// configuration.
	Cache *ResultsCache
}

// Explore profiles every configuration of the space exhaustively and
// returns results indexed identically to the space (result i is
// configuration i).
func (r *Runner) Explore(space *Space) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	indices := make([]int, space.Size())
	for i := range indices {
		indices[i] = i
	}
	return r.run(space, indices)
}

// Sample profiles n distinct configurations drawn uniformly from the
// space (all of them when n >= space.Size()).
func (r *Runner) Sample(space *Space, n int, seed uint64) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: sample size %d", n)
	}
	size := space.Size()
	if n >= size {
		return r.Explore(space)
	}
	rng := stats.NewRNG(seed)
	perm := rng.Perm(size)
	indices := perm[:n]
	return r.run(space, indices)
}

func (r *Runner) run(space *Space, indices []int) ([]Result, error) {
	if r.Hierarchy == nil || (r.Trace == nil && r.Compiled == nil) {
		return nil, fmt.Errorf("core: runner needs a hierarchy and a trace")
	}
	ct := r.Compiled
	if ct == nil {
		var err error
		ct, err = trace.Compile(r.Trace)
		if err != nil {
			return nil, err
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(indices) {
		workers = len(indices)
	}

	results := make([]Result, len(indices))
	// Work distribution and progress are lock-free: workers claim slots
	// with a fetch-add, so the fan-out scales without a contended mutex.
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		done atomic.Int64
	)
	// Axis combinations can collapse to the same configuration (an axis
	// that is inapplicable under another axis's value, e.g. pool
	// reclamation with no pools). Memoize within the run by canonical
	// configuration ID so duplicates cost one simulation.
	idMemo := make(map[string]*profile.Metrics)
	var memoMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Replayer per worker: its scratch tables are sized on
			// the first run and reused for every configuration after.
			rep := profile.NewReplayer()
			for {
				slot := int(next.Add(1)) - 1
				if slot >= len(indices) {
					return
				}

				idx := indices[slot]
				res := Result{Index: idx}
				cfg, labels, err := space.Config(idx)
				if err != nil {
					res.Err = err
				} else {
					res.Labels = labels
					id := cfg.ID()
					memoMu.Lock()
					memoized := idMemo[id]
					memoMu.Unlock()
					if memoized != nil {
						res.Metrics = memoized
					}
					key := ""
					if res.Metrics == nil && r.Cache != nil {
						key = CompiledCacheKey(id, ct, r.Hierarchy)
						if m, ok := r.Cache.Get(key); ok {
							res.Metrics = m
						}
					}
					if res.Metrics == nil {
						res.Metrics, res.Err = rep.Run(ct, cfg, r.Hierarchy, r.Options)
						if res.Err == nil && r.Cache != nil {
							r.Cache.Put(key, res.Metrics)
						}
					}
					if res.Err == nil && memoized == nil {
						memoMu.Lock()
						idMemo[id] = res.Metrics
						memoMu.Unlock()
					}
				}
				results[slot] = res

				if r.Progress != nil {
					r.Progress(int(done.Add(1)), len(indices))
				}
			}
		}()
	}
	wg.Wait()

	for _, res := range results {
		if res.Err != nil {
			return results, fmt.Errorf("core: configuration %d: %w", res.Index, res.Err)
		}
	}
	return results, nil
}
