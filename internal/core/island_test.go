package core

import (
	"testing"

	"dmexplore/internal/profile"
)

func TestIslandSeedIdentityAndDispersion(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 40} {
		if got := IslandSeed(seed, 0); got != seed {
			t.Fatalf("IslandSeed(%d, 0) = %d, want the seed unchanged", seed, got)
		}
		seen := map[uint64]bool{}
		for i := 0; i < 16; i++ {
			s := IslandSeed(seed, i)
			if seen[s] {
				t.Fatalf("IslandSeed(%d, %d) collides with an earlier island", seed, i)
			}
			seen[s] = true
		}
	}
}

// TestEvolveIslandZeroIsEvolve is the refactor's contract: the serial
// Evolve walk IS the island walk with zero-value island options — and
// stays so even when a migration cadence is configured but no hook is
// set (island 0 of a 1-island job).
func TestEvolveIslandZeroIsEvolve(t *testing.T) {
	r := searchRunner(t)
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	eo := EvolveOptions{Population: 8, Budget: 40, Seed: 11}

	serial, err := r.Evolve(space, objs, eo)
	if err != nil {
		t.Fatal(err)
	}
	island, err := r.EvolveIsland(space, objs, IslandOptions{
		EvolveOptions: eo, MigrationEvery: 3, MigrationK: 2, // no hook: inert
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "island0", serial, island)
}

// TestEvolveIslandOnResultStreams checks the streaming hook delivers
// every result exactly once, in the deterministic batcher request order
// the returned slice uses too.
func TestEvolveIslandOnResultStreams(t *testing.T) {
	r := searchRunner(t)
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	var streamed []int
	results, err := r.EvolveIsland(space, objs, IslandOptions{
		EvolveOptions: EvolveOptions{Population: 8, Budget: 32, Seed: 7},
		OnResult:      func(res Result) { streamed = append(streamed, res.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(results) {
		t.Fatalf("streamed %d results, returned %d", len(streamed), len(results))
	}
	for i, res := range results {
		if streamed[i] != res.Index {
			t.Fatalf("stream order diverges at %d: %d vs %d", i, streamed[i], res.Index)
		}
	}
}

// TestEvolveIslandsDiverge: distinct islands at the same base seed must
// walk different trajectories — the whole point of the seed split.
func TestEvolveIslandsDiverge(t *testing.T) {
	r := searchRunner(t)
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	eo := EvolveOptions{Population: 8, Budget: 40, Seed: 11}

	walk := func(island int) []int {
		t.Helper()
		rs, err := r.EvolveIsland(space, objs, IslandOptions{EvolveOptions: eo, Island: island})
		if err != nil {
			t.Fatal(err)
		}
		idx := make([]int, len(rs))
		for i, res := range rs {
			idx[i] = res.Index
		}
		return idx
	}
	a, b := walk(0), walk(1)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("islands 0 and 1 walked identical trajectories")
	}
}

// TestEvolveIslandMigration drives the hook directly: it must fire at
// the configured cadence with a non-empty rank-0 front carrying
// objective values, the injected immigrants must be evaluated, and the
// budget must hold.
func TestEvolveIslandMigration(t *testing.T) {
	r := searchRunner(t)
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	const budget = 48

	var gens []int
	migrant := space.Size() - 1 // a config the small walk is unlikely to reach alone
	results, err := r.EvolveIsland(space, objs, IslandOptions{
		EvolveOptions:  EvolveOptions{Population: 8, Budget: budget, Seed: 11},
		MigrationEvery: 2,
		MigrationK:     3,
		Migrate: func(gen int, front []IslandMember) ([]int, error) {
			gens = append(gens, gen)
			if len(front) == 0 || len(front) > 3 {
				t.Errorf("gen %d: front size %d, want 1..3", gen, len(front))
			}
			for _, m := range front {
				if len(m.Values) != len(objs) {
					t.Errorf("gen %d: member %d carries %d values", gen, m.Index, len(m.Values))
				}
			}
			return []int{migrant}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) == 0 {
		t.Fatal("migration hook never fired")
	}
	for i, g := range gens {
		if g%2 != 0 {
			t.Fatalf("hook fired at gen %d, cadence is 2", g)
		}
		if i > 0 && gens[i] <= gens[i-1] {
			t.Fatalf("generations not increasing: %v", gens)
		}
	}
	if len(results) > budget {
		t.Fatalf("evaluated %d > budget %d", len(results), budget)
	}
	found := false
	for _, res := range results {
		if res.Index == migrant {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("injected migrant was never evaluated")
	}

	// Determinism: the same hook responses reproduce the same walk.
	again, err := r.EvolveIsland(space, objs, IslandOptions{
		EvolveOptions:  EvolveOptions{Population: 8, Budget: budget, Seed: 11},
		MigrationEvery: 2,
		MigrationK:     3,
		Migrate: func(gen int, front []IslandMember) ([]int, error) {
			return []int{migrant}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "migrating-replay", results, again)
}
