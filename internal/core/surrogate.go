package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"dmexplore/internal/profile"
	"dmexplore/internal/stats"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/telemetry/span"
	"dmexplore/internal/trace"
)

// Surrogate-assisted candidate screening: an online model learns each
// objective from the exact simulations a search has already paid for, and
// the strategies use its predictions to decide which candidates deserve
// the next real simulation. The model is a per-objective incremental
// ridge regression (stats.Ridge) over a fixed encoding:
//
//	x = [bias | trace feature vector | one-hot axis digits]
//
// The trace features (trace.Features) are constant within one run — they
// anchor the intercept and let a model warm-started from another
// journal's observations transfer across workloads — while the one-hot
// digits carry the per-candidate signal. Targets are log1p(objective)
// (objective values span orders of magnitude); a separate ridge predicts
// infeasibility (1 = allocation failures) and its output penalizes the
// scalarized score so the screen does not chase configurations that look
// cheap because they fail.
//
// Determinism: every prediction and every training update happens on the
// strategy's coordinating goroutine — predictions when a wave is
// assembled, training when the wave's results land, both in batcher
// request order. No randomness is consumed: the ε-exploration slice is
// filled with the highest-leverage (most informative under the ridge
// posterior) candidates instead of random draws. A fixed seed therefore
// yields the identical search for any worker count, and with
// Runner.Surrogate nil the strategies take their original code paths
// untouched.

// surrogateMinTrain is the number of exact results the models must absorb
// before predictions participate in ranking; below it the screen passes
// candidates through in their given order.
const surrogateMinTrain = 8

// surrogateBootstrapProbes is the uniform probe wave the scalarized
// strategies evaluate to seed an untrained surrogate (on top of the
// referenceScales probes).
const surrogateBootstrapProbes = 16

// surrogateClimbChunk is how many top-ranked neighbours a surrogate-
// assisted hill-climb step evaluates per wave before consulting the
// ranking again.
const surrogateClimbChunk = 8

// surrogateOversample is how many candidate offspring (in units of the
// population size) a surrogate-assisted NSGA-II generation breeds before
// screening them down to one generation's worth of real simulations.
const surrogateOversample = 4

// SurrogateOptions enable and tune surrogate-assisted screening on a
// Runner. The zero value of each field picks the documented default.
type SurrogateOptions struct {
	// Epsilon is the fraction of every screened wave reserved for
	// exploration: candidates with the highest model uncertainty
	// (ridge leverage) rather than the best predicted score.
	// Default 0.125.
	Epsilon float64

	// PoolCap caps how many candidates one ranking call scores (the
	// screening pool the strategies draw from). Default 4096.
	PoolCap int

	// Lambda is the ridge regularization strength. Default 1e-3.
	Lambda float64

	// WarmStart replays prior journal records (same space and workload)
	// into the models before the search begins, so the first waves are
	// already guided.
	WarmStart []telemetry.Record

	// Report, when non-nil, is filled with the run's surrogate accuracy
	// digest when the strategy returns.
	Report *SurrogateReport
}

func (o SurrogateOptions) withDefaults() SurrogateOptions {
	if o.Epsilon == 0 {
		o.Epsilon = 0.125
	}
	if o.PoolCap == 0 {
		o.PoolCap = 4096
	}
	if o.Lambda == 0 {
		o.Lambda = 1e-3
	}
	return o
}

// SurrogateReport is the post-run accuracy digest: how much the models
// were used and how well their predictions tracked the exact results.
type SurrogateReport struct {
	Trained     int    // exact results absorbed (online + warm start)
	Predictions uint64 // candidate scores computed
	ScreenedOut uint64 // candidates dropped from evaluation waves
	Pairs       int    // (prediction, exact) pairs the digest covers

	// Spearman and MAE compare journaled predictions against the exact
	// values later measured for the same configurations, per objective.
	Spearman map[string]float64
	MAE      map[string]float64
}

// surrogate is the per-search instance: models, encoding buffers and the
// accuracy ledger. All methods are nil-safe so strategies can thread one
// pointer through without branching on every call; only the ranking
// entry points (rank, screen) require a non-nil receiver.
type surrogate struct {
	space   *Space
	weights []Weighted
	opts    SurrogateOptions
	col     *telemetry.Collector
	spans   *span.Ring   // coordinator flight-recorder ring (nil-safe)
	b       *evalBatcher // attached batcher, for lineage annotations

	feats   []float64 // trace feature block, constant per run
	axisOff []int     // one-hot offset of each axis within the digit block
	dim     int

	models  map[string]*stats.Ridge // per-objective value models
	infeas  *stats.Ridge            // feasibility model (1 = infeasible)
	maxSeen map[string]float64      // running per-objective scale
	penalty float64                 // infeasibility score penalty
	trained int
	pareto  bool // rank by interleaved scalarization directions

	predictions uint64
	screenedOut uint64

	// Accuracy ledger: journaled predictions paired with the exact
	// values measured for the same configurations, per objective.
	preds   map[string][]float64
	actuals map[string][]float64

	x      []float64 // encode scratch
	digits []int
}

// newSurrogate builds the surrogate for one search, or returns nil when
// the runner has screening disabled — the strategies' original code paths
// run untouched in that case.
func (r *Runner) newSurrogate(sess *EvalSession, weights []Weighted) *surrogate {
	if r.Surrogate == nil {
		return nil
	}
	opts := r.Surrogate.withDefaults()
	space := sess.space
	axisOff := make([]int, len(space.Axes))
	oneHot := 0
	for i, ax := range space.Axes {
		axisOff[i] = oneHot
		oneHot += len(ax.Options)
	}
	feats := trace.Features(sess.ct)
	s := &surrogate{
		space:   space,
		weights: weights,
		opts:    opts,
		col:     sess.col,
		spans:   r.Spans.Coord(),
		feats:   feats,
		axisOff: axisOff,
		dim:     1 + len(feats) + oneHot,
		models:  make(map[string]*stats.Ridge, len(weights)),
		maxSeen: make(map[string]float64, len(weights)),
		preds:   make(map[string][]float64, len(weights)),
		actuals: make(map[string][]float64, len(weights)),
		digits:  make([]int, len(space.Axes)),
	}
	s.x = make([]float64, s.dim)
	s.infeas = stats.NewRidge(s.dim, opts.Lambda)
	for _, w := range weights {
		if s.models[w.Objective] == nil {
			s.models[w.Objective] = stats.NewRidge(s.dim, opts.Lambda)
		}
		s.penalty += 4 * math.Abs(w.Weight)
	}
	for _, rec := range opts.WarmStart {
		s.warmStart(rec)
	}
	return s
}

// attach wires the surrogate into a batcher: fresh evaluations carry the
// model's predictions into the journal, and every exact result trains
// the models in request order.
func (s *surrogate) attach(b *evalBatcher) {
	if s == nil {
		return
	}
	s.b = b
	b.predict = s.predictAt
	b.onResult = s.observe
}

// encode builds the feature vector of configuration idx into the scratch
// buffer; the result is valid until the next encode call.
func (s *surrogate) encode(idx int) []float64 {
	x := s.x
	for i := range x {
		x[i] = 0
	}
	x[0] = 1
	copy(x[1:], s.feats)
	s.space.digitsInto(s.digits, idx)
	base := 1 + len(s.feats)
	for ax, d := range s.digits {
		x[base+s.axisOff[ax]+d] = 1
	}
	return x
}

// ready reports whether the models have seen enough exact results for
// their predictions to participate in ranking.
func (s *surrogate) ready() bool {
	return s != nil && s.trained >= surrogateMinTrain
}

// observe absorbs one exact result: feasibility and (when feasible) every
// objective value, plus the accuracy ledger when the result carried a
// journaled prediction.
func (s *surrogate) observe(res Result) {
	if s == nil || res.Err != nil || res.Metrics == nil {
		return
	}
	x := s.encode(res.Index)
	feasible := res.Metrics.Feasible()
	target := 0.0
	if !feasible {
		target = 1
	}
	s.infeas.Observe(x, target)
	if feasible {
		for _, w := range s.weights {
			v, err := res.Metrics.Objective(w.Objective)
			if err != nil {
				continue
			}
			if v > s.maxSeen[w.Objective] {
				s.maxSeen[w.Objective] = v
			}
			s.models[w.Objective].Observe(x, math.Log1p(math.Max(v, 0)))
			if res.Predicted != nil {
				if p, ok := res.Predicted[w.Objective]; ok {
					s.preds[w.Objective] = append(s.preds[w.Objective], p)
					s.actuals[w.Objective] = append(s.actuals[w.Objective], v)
				}
			}
		}
	}
	s.trained++
	s.col.AddSurrogateTrained(1)
}

// warmStart replays one prior journal record into the models.
func (s *surrogate) warmStart(rec telemetry.Record) {
	if rec.Error != "" || rec.Index < 0 || rec.Index >= s.space.Size() {
		return
	}
	s.observe(Result{Index: rec.Index, Metrics: &profile.Metrics{
		Accesses:       rec.Accesses,
		FootprintBytes: rec.FootprintBytes,
		EnergyNJ:       rec.EnergyNJ,
		Cycles:         rec.Cycles,
		Failures:       rec.Failures,
	}})
}

// predictAt returns the per-objective predicted values for idx (the
// journal payload), or nil while the models are still warming up.
func (s *surrogate) predictAt(idx int) map[string]float64 {
	if !s.ready() {
		return nil
	}
	x := s.encode(idx)
	out := make(map[string]float64, len(s.models))
	for obj, m := range s.models {
		mean, _ := m.Predict(x)
		out[obj] = math.Expm1(mean)
	}
	return out
}

// score is the scalarized predicted objective of idx (lower is better):
// the weighted sum of predicted values normalized by the running
// per-objective scale, plus the infeasibility penalty.
func (s *surrogate) score(idx int) float64 {
	if !s.ready() {
		return 0
	}
	x := s.encode(idx)
	var score float64
	for _, w := range s.weights {
		mean, _ := s.models[w.Objective].Predict(x)
		scale := s.maxSeen[w.Objective]
		if scale <= 0 {
			scale = 1
		}
		score += w.Weight * math.Expm1(mean) / scale
	}
	p, _ := s.infeas.Predict(x)
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	return score + p*s.penalty
}

// leverage is the model uncertainty at idx: the ridge leverage of its
// encoding under the feasibility model (which sees every observation).
func (s *surrogate) leverage(idx int) float64 {
	_, lev := s.infeas.Predict(s.encode(idx))
	return lev
}

// paretoRank switches the ranking entry points to the multi-direction
// interleave (rankPareto): the mode the Pareto-front strategies use,
// where a single scalarized ordering would funnel every wave toward the
// knee of the trade-off.
func (s *surrogate) paretoRank() {
	if s != nil {
		s.pareto = true
	}
}

// rank returns cands ordered by predicted score ascending (ties broken
// by index, so the order is total and deterministic). While the models
// are warming up the input order is returned unchanged. Each ranking
// lands one surrogate-screen span on the coordinator ring and stamps
// every candidate's pending origin with its 1-based position.
func (s *surrogate) rank(cands []int) []int {
	if !s.ready() || len(cands) < 2 {
		return cands
	}
	var start time.Time
	if s.spans != nil {
		start = time.Now()
	}
	var out []int
	if s.pareto && len(s.weights) > 1 {
		out = s.rankPareto(cands)
	} else {
		scores := make(map[int]float64, len(cands))
		for _, idx := range cands {
			if _, ok := scores[idx]; !ok {
				scores[idx] = s.score(idx)
			}
		}
		s.predictions += uint64(len(scores))
		s.col.AddSurrogatePredictions(uint64(len(scores)))
		out = append([]int(nil), cands...)
		sort.SliceStable(out, func(i, j int) bool {
			si, sj := scores[out[i]], scores[out[j]]
			if si != sj {
				return si < sj
			}
			return out[i] < out[j]
		})
	}
	s.spans.Since(span.StageSurrogateScreen, start, int64(len(cands)))
	if s.b != nil {
		for i, idx := range out {
			s.b.noteRank(idx, i+1)
		}
	}
	return out
}

// rankPareto orders cands for a multi-objective search: one ranking per
// scalarization direction — the weighted blend plus each objective on
// its own — merged round-robin with duplicates dropped. The blend alone
// would concentrate every wave on the knee of the trade-off; the
// single-objective directions keep candidates that extend the front's
// extremes in the evaluated prefix, which is where the hypervolume
// lives. Fully deterministic: directions are fixed, every sort is total
// (score, then index), and the merge order is positional.
func (s *surrogate) rankPareto(cands []int) []int {
	m := len(s.weights)
	// Predict once per distinct candidate: the normalized value per
	// objective plus the shared infeasibility penalty.
	type row struct {
		vals []float64
		pen  float64
	}
	rows := make(map[int]*row, len(cands))
	uniq := make([]int, 0, len(cands))
	for _, idx := range cands {
		if _, ok := rows[idx]; ok {
			continue
		}
		x := s.encode(idx)
		rw := &row{vals: make([]float64, m)}
		for i, w := range s.weights {
			mean, _ := s.models[w.Objective].Predict(x)
			scale := s.maxSeen[w.Objective]
			if scale <= 0 {
				scale = 1
			}
			rw.vals[i] = math.Expm1(mean) / scale
		}
		p, _ := s.infeas.Predict(x)
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		rw.pen = p * s.penalty
		rows[idx] = rw
		uniq = append(uniq, idx)
	}
	s.predictions += uint64(len(uniq))
	s.col.AddSurrogatePredictions(uint64(len(uniq)))

	dirs := make([][]float64, 0, m+1)
	blend := make([]float64, m)
	for i, w := range s.weights {
		blend[i] = w.Weight
	}
	dirs = append(dirs, blend)
	for i := 0; i < m; i++ {
		d := make([]float64, m)
		d[i] = 1
		dirs = append(dirs, d)
	}
	rankings := make([][]int, len(dirs))
	for di, d := range dirs {
		score := func(idx int) float64 {
			rw := rows[idx]
			v := rw.pen
			for i, wt := range d {
				v += wt * rw.vals[i]
			}
			return v
		}
		order := append([]int(nil), uniq...)
		sort.SliceStable(order, func(a, b int) bool {
			sa, sb := score(order[a]), score(order[b])
			if sa != sb {
				return sa < sb
			}
			return order[a] < order[b]
		})
		rankings[di] = order
	}
	out := make([]int, 0, len(uniq))
	picked := make(map[int]bool, len(uniq))
	for pos := 0; len(out) < len(uniq); pos++ {
		for _, rk := range rankings {
			idx := rk[pos]
			if !picked[idx] {
				picked[idx] = true
				out = append(out, idx)
			}
		}
	}

	// Spread predicted twins: many configurations differ only in axes the
	// simulator is indifferent to, so the model scores them identically
	// and a plain ranking stacks a whole wave with equivalents. Push every
	// candidate whose quantized prediction repeats an earlier pick behind
	// the first representative of its bucket, so a budget-capped prefix
	// covers distinct predicted outcomes.
	bucket := func(idx int) string {
		rw := rows[idx]
		var sb strings.Builder
		for _, v := range rw.vals {
			fmt.Fprintf(&sb, "%.3f,", v)
		}
		fmt.Fprintf(&sb, "%.2f", rw.pen)
		return sb.String()
	}
	depth := make(map[string]int, len(out))
	var tiers [][]int
	for _, idx := range out {
		k := bucket(idx)
		t := depth[k]
		depth[k] = t + 1
		if t >= len(tiers) {
			tiers = append(tiers, nil)
		}
		tiers[t] = append(tiers[t], idx)
	}
	out = out[:0]
	for _, tier := range tiers {
		out = append(out, tier...)
	}
	return out
}

// dedupFrontMetrics keeps one representative per distinct metric vector
// of a Pareto front (ParetoSet keeps every co-frontal duplicate). The
// surrogate's refinement rings expand from the deduplicated front: the
// neighbourhoods of metric-identical members are near-identical too, and
// expanding all of them spends the ring budget re-simulating equivalents.
func dedupFrontMetrics(front []Result) []Result {
	type key struct {
		acc, cyc, fail uint64
		foot           int64
		energy         uint64
	}
	seen := make(map[key]bool, len(front))
	out := make([]Result, 0, len(front))
	for _, f := range front {
		m := f.Metrics
		k := key{m.Accesses, m.Cycles, m.Failures, m.FootprintBytes, math.Float64bits(m.EnergyNJ)}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// screen picks k of cands for exact evaluation: the best predicted
// scores, with an Epsilon fraction of the slots going to the
// highest-leverage (most informative) candidates instead — the
// deterministic ε-exploration that keeps the models from locking onto
// their own early bias. The dropped remainder is counted as screened out.
func (s *surrogate) screen(cands []int, k int) []int {
	if s == nil || k >= len(cands) {
		return s.rank(cands)
	}
	if k <= 0 {
		s.screenedOut += uint64(len(cands))
		s.col.AddSurrogateScreened(uint64(len(cands)))
		return nil
	}
	if !s.ready() {
		return cands[:k]
	}
	ranked := s.rank(cands)
	nExplore := int(s.opts.Epsilon * float64(k))
	picked := append([]int(nil), ranked[:k-nExplore]...)
	if s.b != nil {
		for _, idx := range picked {
			s.b.noteAdmit(idx, "score")
		}
	}
	if nExplore > 0 {
		rest := append([]int(nil), ranked[k-nExplore:]...)
		lev := make(map[int]float64, len(rest))
		for _, idx := range rest {
			lev[idx] = s.leverage(idx)
		}
		sort.SliceStable(rest, func(i, j int) bool {
			li, lj := lev[rest[i]], lev[rest[j]]
			if li != lj {
				return li > lj
			}
			return rest[i] < rest[j]
		})
		picked = append(picked, rest[:nExplore]...)
		if s.b != nil {
			for _, idx := range rest[:nExplore] {
				s.b.noteAdmit(idx, "explore")
			}
		}
	}
	dropped := uint64(len(cands) - len(picked))
	s.screenedOut += dropped
	s.col.AddSurrogateScreened(dropped)
	return picked
}

// finish fills the caller's SurrogateReport, if one was requested.
func (s *surrogate) finish() {
	if s == nil || s.opts.Report == nil {
		return
	}
	rep := s.opts.Report
	rep.Trained = s.trained
	rep.Predictions = s.predictions
	rep.ScreenedOut = s.screenedOut
	rep.Spearman = make(map[string]float64)
	rep.MAE = make(map[string]float64)
	for obj, ps := range s.preds {
		if len(ps) == 0 {
			continue
		}
		rep.Spearman[obj] = stats.Spearman(ps, s.actuals[obj])
		rep.MAE[obj] = stats.MeanAbsError(ps, s.actuals[obj])
		if len(ps) > rep.Pairs {
			rep.Pairs = len(ps)
		}
	}
}

// equalWeights adapts a Pareto objective list to the scalarized form the
// surrogate scores with: unit weight per objective.
func equalWeights(objectives []string) []Weighted {
	ws := make([]Weighted, len(objectives))
	for i, obj := range objectives {
		ws[i] = Weighted{Objective: obj, Weight: 1}
	}
	return ws
}
