package core

import (
	"sync"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/telemetry"
)

func TestObjectiveScalesDegenerate(t *testing.T) {
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	mk := func(acc uint64, fp int64, failures uint64) Result {
		return Result{Metrics: &profile.Metrics{
			Accesses: acc, FootprintBytes: fp, Failures: failures,
		}}
	}
	cases := []struct {
		name    string
		results []Result
		want    map[string]float64
	}{
		{"empty sample", nil,
			map[string]float64{profile.ObjAccesses: 1, profile.ObjFootprint: 1}},
		{"all infeasible", []Result{mk(100, 100, 3), mk(200, 50, 1)},
			map[string]float64{profile.ObjAccesses: 1, profile.ObjFootprint: 1}},
		{"identical zero metrics", []Result{mk(0, 0, 0), mk(0, 0, 0), mk(0, 0, 0)},
			map[string]float64{profile.ObjAccesses: 1, profile.ObjFootprint: 1}},
		{"one objective degenerate", []Result{mk(40, 0, 0), mk(90, 0, 0)},
			map[string]float64{profile.ObjAccesses: 90, profile.ObjFootprint: 1}},
		{"normal", []Result{mk(40, 64, 0), mk(90, 32, 0)},
			map[string]float64{profile.ObjAccesses: 90, profile.ObjFootprint: 64}},
	}
	for _, c := range cases {
		got, err := objectiveScales(c.results, objs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for obj, want := range c.want {
			if got[obj] != want {
				t.Errorf("%s: scale[%s] = %v, want %v", c.name, obj, got[obj], want)
			}
		}
	}
	// Scalarizing against a degenerate sample must stay finite: the
	// zero-scale division the clamp exists to prevent.
	scales, err := objectiveScales(nil, objs)
	if err != nil {
		t.Fatal(err)
	}
	m := &profile.Metrics{Accesses: 123, FootprintBytes: 456}
	score, err := scalarize(m, []Weighted{{profile.ObjAccesses, 1}, {profile.ObjFootprint, 1}}, scales)
	if err != nil {
		t.Fatal(err)
	}
	if score != 123+456 {
		t.Fatalf("degenerate-scale score %v, want %v", score, 123+456)
	}
}

// TestSurrogateScreenAndRefine exercises the full surrogate loop on a
// real (small) space: the search must stay within budget, produce a
// feasible front, journal its predictions, and fill the accuracy report.
func TestSurrogateScreenAndRefine(t *testing.T) {
	var mu sync.Mutex
	var recs []telemetry.Record
	rep := &SurrogateReport{}
	r := &Runner{
		Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: 4,
		Telemetry: telemetry.NewCollector(4),
		Surrogate: &SurrogateOptions{Report: rep},
		Observer: func(res Result) {
			mu.Lock()
			recs = append(recs, res.JournalRecord())
			mu.Unlock()
		},
	}
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	const screen, budget = 24, 96
	results, err := r.ScreenAndRefine(space, objs, screen, budget, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) > budget {
		t.Fatalf("profiled %d > budget %d", len(results), budget)
	}
	front, _, err := ParetoSet(Feasible(results), objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("no feasible front found")
	}
	if rep.Trained == 0 || rep.Predictions == 0 {
		t.Fatalf("report not filled: %+v", rep)
	}
	if rep.Pairs == 0 {
		t.Fatal("no (prediction, exact) accuracy pairs recorded")
	}
	for _, obj := range objs {
		if _, ok := rep.MAE[obj]; !ok {
			t.Fatalf("report has no MAE for %s: %+v", obj, rep)
		}
	}
	predicted := 0
	for _, rec := range recs {
		if len(rec.Predicted) > 0 {
			predicted++
		}
	}
	if predicted == 0 {
		t.Fatal("no journal record carries surrogate predictions")
	}
	// The bootstrap prefix evaluates before the models are ready, so not
	// every record can carry a prediction.
	if predicted == len(recs) {
		t.Fatal("bootstrap records unexpectedly carry predictions")
	}
	// Telemetry mirrors the report.
	snap := r.Telemetry.Snapshot()
	if snap.SurrogatePredictions != rep.Predictions || snap.SurrogateTrained == 0 {
		t.Fatalf("telemetry surrogate counters diverge from report: %+v vs %+v", snap, rep)
	}
	if snap.SurrogateScreened != rep.ScreenedOut {
		t.Fatalf("screened-out %d in telemetry, %d in report", snap.SurrogateScreened, rep.ScreenedOut)
	}
}

// TestSurrogateOffLeavesNoTrace pins the oracle contract: with
// Runner.Surrogate nil, no record carries predictions and no surrogate
// telemetry accumulates.
func TestSurrogateOffLeavesNoTrace(t *testing.T) {
	var mu sync.Mutex
	var recs []telemetry.Record
	r := searchRunner(t)
	r.Observer = func(res Result) {
		mu.Lock()
		recs = append(recs, res.JournalRecord())
		mu.Unlock()
	}
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	if _, err := r.ScreenAndRefine(EasyportSpace(), objs, 16, 48, 42); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Predicted != nil {
			t.Fatalf("surrogate-off record %d carries predictions", rec.Index)
		}
	}
}

// TestSurrogateAllStrategies runs every guided strategy with screening on
// and checks the shared invariants: budget respected, a best/front found,
// models actually trained and consulted.
func TestSurrogateAllStrategies(t *testing.T) {
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	weights := []Weighted{{profile.ObjAccesses, 1}, {profile.ObjFootprint, 0.5}}
	const budget = 72

	runs := map[string]func(r *Runner) (int, bool, error){
		"hillclimb": func(r *Runner) (int, bool, error) {
			sr, err := r.HillClimb(space, weights, budget, 17)
			if err != nil {
				return 0, false, err
			}
			return len(sr.Evaluated), sr.Best.Metrics != nil, nil
		},
		"anneal": func(r *Runner) (int, bool, error) {
			sr, err := r.Anneal(space, weights, budget, 17)
			if err != nil {
				return 0, false, err
			}
			return len(sr.Evaluated), sr.Best.Metrics != nil, nil
		},
		"screen": func(r *Runner) (int, bool, error) {
			results, err := r.ScreenAndRefine(space, objs, 16, budget, 17)
			if err != nil {
				return 0, false, err
			}
			front, _, err := ParetoSet(Feasible(results), objs)
			return len(results), len(front) > 0, err
		},
		"evolve": func(r *Runner) (int, bool, error) {
			results, err := r.Evolve(space, objs, EvolveOptions{Population: 8, Budget: budget, Seed: 17})
			if err != nil {
				return 0, false, err
			}
			front, _, err := ParetoSet(Feasible(results), objs)
			return len(results), len(front) > 0, err
		},
	}
	for name, run := range runs {
		rep := &SurrogateReport{}
		r := searchRunner(t)
		r.Surrogate = &SurrogateOptions{Report: rep}
		evals, found, err := run(r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if evals == 0 || evals > budget {
			t.Fatalf("%s: %d evaluations for budget %d", name, evals, budget)
		}
		if !found {
			t.Fatalf("%s: no result found", name)
		}
		if rep.Trained == 0 {
			t.Fatalf("%s: surrogate never trained", name)
		}
		if rep.Predictions == 0 {
			t.Fatalf("%s: surrogate never consulted", name)
		}
	}
}

// TestSurrogateWarmStart replays a prior run's journal into a fresh
// search: every valid record must train the models before the first
// wave, so the new run starts ready.
func TestSurrogateWarmStart(t *testing.T) {
	var mu sync.Mutex
	var recs []telemetry.Record
	first := searchRunner(t)
	first.Observer = func(res Result) {
		mu.Lock()
		recs = append(recs, res.JournalRecord())
		mu.Unlock()
	}
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	if _, err := first.ScreenAndRefine(space, objs, 16, 48, 42); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("first run journaled nothing")
	}

	rep := &SurrogateReport{}
	second := searchRunner(t)
	second.Surrogate = &SurrogateOptions{WarmStart: recs, Report: rep}
	var secondRecs []telemetry.Record
	second.Observer = func(res Result) {
		mu.Lock()
		secondRecs = append(secondRecs, res.JournalRecord())
		mu.Unlock()
	}
	if _, err := second.ScreenAndRefine(space, objs, 16, 48, 7); err != nil {
		t.Fatal(err)
	}
	if rep.Trained < len(recs) {
		t.Fatalf("trained on %d results, warm start had %d records", rep.Trained, len(recs))
	}
	// A warm-started model is past its warm-up before the first wave, so
	// even the bootstrap's fresh evaluations carry predictions.
	for _, rec := range secondRecs {
		if len(rec.Predicted) == 0 {
			t.Fatalf("warm-started run journaled record %d without predictions", rec.Index)
		}
	}
}
