package core

import (
	"fmt"
	"math"
	"sort"

	"dmexplore/internal/stats"
)

// Island-model NSGA-II: the distributed-service form of Evolve. Each
// island runs the identical generation loop as the serial search over its
// own seed-split RNG; every MigrationEvery generations it exports its
// current local Pareto front through the Migrate hook and absorbs the
// immigrants the hook returns (in the service, the coordinator merges
// every island's export with pareto.Front and hands the global elite
// back). With no hook and Island 0 the loop is byte-for-byte the serial
// Evolve walk — the bit-identity contract the distributed determinism
// tests pin.

// IslandMember is one exported front member: the configuration index and
// its objective vector in the search's objective order. The coordinator
// merges members from every island with the O(n·f) pareto front scan.
type IslandMember struct {
	Index  int       `json:"index"`
	Values []float64 `json:"values"`
}

// MigrationHook exchanges front members with the coordinator at one
// migration point: gen is the island's generation counter, front its
// current local Pareto elite (rank 0, best-crowded first). The returned
// indices are the immigrants to absorb; the call may block until every
// island in the job reaches the same generation (the coordinator's
// barrier). Returning an empty slice is a valid outcome (the merged
// front contained nothing new for this island).
type MigrationHook func(gen int, front []IslandMember) ([]int, error)

// IslandOptions tune one island of an island-model NSGA-II search.
type IslandOptions struct {
	EvolveOptions

	// Island is this island's 0-based ID. Island 0 uses Seed unchanged —
	// a 1-island run is bit-identical to the serial Evolve walk — and
	// island i > 0 derives its RNG stream with IslandSeed.
	Island int

	// MigrationEvery is the generation period between Migrate calls
	// (default 4 when a hook is set; 0 with no hook).
	MigrationEvery int

	// MigrationK caps the members exported per exchange (default
	// Population/4, at least 1).
	MigrationK int

	// Migrate, when non-nil, is called at every migration point. Nil
	// disables migration entirely (the serial Evolve path).
	Migrate MigrationHook

	// OnResult, when non-nil, receives every fresh successful evaluation
	// in batcher request order, on the island's coordinating goroutine —
	// the worker's streaming hook. Unlike Runner.Observer it carries the
	// island's identity by construction and its order is deterministic
	// at any session worker count.
	OnResult func(Result)
}

func (o IslandOptions) withIslandDefaults() IslandOptions {
	o.EvolveOptions = o.EvolveOptions.withDefaults()
	if o.Migrate != nil && o.MigrationEvery <= 0 {
		o.MigrationEvery = 4
	}
	if o.MigrationK <= 0 {
		o.MigrationK = o.Population / 4
		if o.MigrationK < 1 {
			o.MigrationK = 1
		}
	}
	return o
}

// IslandSeed derives island i's RNG seed from the job seed. Island 0
// inherits the seed unchanged (the 1-island bit-identity contract);
// higher islands get a splitmix64-style finalized stream so sibling
// populations are decorrelated but still a pure function of (seed, i).
func IslandSeed(seed uint64, island int) uint64 {
	if island <= 0 {
		return seed
	}
	z := seed + 0x9e3779b97f4a7c15*uint64(island)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// EvolveIsland runs one island of an island-model NSGA-II search in its
// own session. See EvolveIslandSession for the shared-session form the
// distributed workers use.
func (r *Runner) EvolveIsland(space *Space, objectives []string, opts IslandOptions) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	sess, err := r.NewSession(space)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return r.EvolveIslandSession(sess, space, objectives, opts)
}

// EvolveIslandSession runs one island of an island-model NSGA-II search
// over an existing session (which it does not close). A worker hosting
// several islands of one job runs each as a goroutine over one shared
// session, so the islands multiplex one bounded simulation pool and one
// memo — sharing costs nothing in determinism because every served
// result is exact.
func (r *Runner) EvolveIslandSession(sess *EvalSession, space *Space, objectives []string, opts IslandOptions) ([]Result, error) {
	if len(objectives) < 2 {
		return nil, fmt.Errorf("core: evolve needs at least two objectives")
	}
	opts = opts.withIslandDefaults()
	if opts.Population < 4 || opts.Population%2 != 0 {
		return nil, fmt.Errorf("core: population %d must be an even number >= 4", opts.Population)
	}
	if opts.Budget < opts.Population {
		return nil, fmt.Errorf("core: budget %d below population %d", opts.Budget, opts.Population)
	}
	if opts.Island < 0 {
		return nil, fmt.Errorf("core: island %d must be >= 0", opts.Island)
	}

	batcher := newEvalBatcher(sess)
	batcher.strategy = "nsga2"
	rng := stats.NewRNG(IslandSeed(opts.Seed, opts.Island))
	sur := r.newSurrogate(sess, equalWeights(objectives))
	sur.paretoRank()
	sur.attach(batcher)
	defer sur.finish()
	if opts.OnResult != nil {
		// Chain behind any surrogate hook: the models train first, then
		// the result streams out, both in batcher request order.
		prev := batcher.onResult
		hook := opts.OnResult
		batcher.onResult = func(res Result) {
			if prev != nil {
				prev(res)
			}
			hook(res)
		}
	}

	// Initial population: uniform random genomes, one evaluation wave.
	pop := make([]int, 0, opts.Population)
	seen := make(map[int]bool)
	for len(pop) < opts.Population {
		idx := rng.Intn(space.Size())
		if seen[idx] && len(seen) < space.Size() {
			continue
		}
		seen[idx] = true
		pop = append(pop, idx)
	}
	for _, idx := range pop {
		batcher.tag(idx, "seed")
	}
	if _, err := batcher.getBatch(pop); err != nil {
		return nil, err
	}

	gen := 0
	dryGenerations := 0
	for batcher.len() < opts.Budget && batcher.len() < space.Size() {
		evalsBefore := batcher.len()
		gen++
		// Offspring via binary tournaments, crossover, mutation.
		ranks, crowd, err := rankAndCrowd(batcher, pop, objectives)
		if err != nil {
			return nil, err
		}
		var offspring []int
		remaining := opts.Budget - batcher.len()
		if sur != nil {
			// Surrogate path: breed an oversampled candidate wave, let the
			// already-profiled genomes through for free, and screen the
			// unseen ones down to at most one generation of real
			// simulations — the models pre-filter the offspring before the
			// batcher ever sees them.
			cands := make([]int, 0, surrogateOversample*opts.Population)
			for len(cands) < surrogateOversample*opts.Population {
				a := tournament(rng, pop, ranks, crowd)
				b := tournament(rng, pop, ranks, crowd)
				child := mutate(rng, space, crossover(rng, space, a, b), opts.MutationRate)
				batcher.tag(child, "crossover", a, b)
				cands = append(cands, child)
			}
			cands = dedupInts(cands)
			var unseen []int
			for _, c := range cands {
				if batcher.has(c) {
					offspring = append(offspring, c)
				} else {
					unseen = append(unseen, c)
				}
			}
			k := opts.Population
			if k > remaining {
				k = remaining
			}
			offspring = append(offspring, sur.screen(unseen, k)...)
		} else {
			offspring = make([]int, 0, opts.Population)
			newEvals := 0
			for len(offspring) < opts.Population && newEvals < remaining {
				a := tournament(rng, pop, ranks, crowd)
				b := tournament(rng, pop, ranks, crowd)
				child := crossover(rng, space, a, b)
				child = mutate(rng, space, child, opts.MutationRate)
				if !batcher.has(child) {
					newEvals++
				}
				batcher.tag(child, "crossover", a, b)
				offspring = append(offspring, child)
			}
		}
		// One wave for the whole generation — including offspring that
		// environmental selection will discard; they still join the
		// result set and the journal.
		if _, err := batcher.getBatch(offspring); err != nil {
			return nil, err
		}

		// Environmental selection over parents + offspring.
		pop, err = selectPopulation(batcher, append(append([]int(nil), pop...), offspring...), objectives, opts.Population)
		if err != nil {
			return nil, err
		}

		// Migration point: export the local elite, absorb the hook's
		// immigrants, and re-select. With no hook the branch is inert —
		// no RNG draws, no evaluations — so the serial walk is untouched.
		if opts.Migrate != nil && opts.MigrationEvery > 0 && gen%opts.MigrationEvery == 0 {
			front, err := islandFront(batcher, pop, objectives, opts.MigrationK)
			if err != nil {
				return nil, err
			}
			imm, err := opts.Migrate(gen, front)
			if err != nil {
				return nil, err
			}
			imm = dedupInts(imm)
			valid := imm[:0]
			for _, m := range imm {
				if m >= 0 && m < space.Size() {
					valid = append(valid, m)
				}
			}
			// Immigrants count toward the island's budget like any other
			// candidate; cap the wave at what remains.
			imm = batcher.limit(valid, opts.Budget-batcher.len())
			if len(imm) > 0 {
				for _, m := range imm {
					batcher.tag(m, "migrant")
				}
				if _, err := batcher.getBatch(imm); err != nil {
					return nil, err
				}
				pop, err = selectPopulation(batcher, append(append([]int(nil), pop...), imm...), objectives, opts.Population)
				if err != nil {
					return nil, err
				}
			}
		}

		if batcher.len() == evalsBefore {
			// No unseen configuration this generation: converged (or a
			// small space is nearly saturated). Allow a few dry
			// generations before giving up — mutation may still escape.
			dryGenerations++
			if dryGenerations >= 3 {
				break
			}
		} else {
			dryGenerations = 0
		}
	}
	return batcher.all(), nil
}

// selectPopulation is NSGA-II environmental selection: dedup the union,
// sort by (rank, crowding) and truncate to size.
func selectPopulation(b *evalBatcher, union []int, objectives []string, size int) ([]int, error) {
	union = dedupInts(union)
	ranks, crowd, err := rankAndCrowd(b, union, objectives)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(union, func(i, j int) bool {
		a, c := union[i], union[j]
		if ranks[a] != ranks[c] {
			return ranks[a] < ranks[c]
		}
		return crowd[a] > crowd[c]
	})
	if len(union) > size {
		union = union[:size]
	}
	return union, nil
}

// islandFront extracts the island's current elite for export: the rank-0
// members of pop, best crowding first (ties by index), capped at k, each
// carrying its objective vector. Deterministic given pop and the
// batcher's results.
func islandFront(b *evalBatcher, pop []int, objectives []string, k int) ([]IslandMember, error) {
	ranks, crowd, err := rankAndCrowd(b, pop, objectives)
	if err != nil {
		return nil, err
	}
	var elite []int
	for _, idx := range pop {
		if ranks[idx] == 0 {
			elite = append(elite, idx)
		}
	}
	sort.SliceStable(elite, func(i, j int) bool {
		a, c := elite[i], elite[j]
		if crowd[a] != crowd[c] {
			return crowd[a] > crowd[c]
		}
		return a < c
	})
	if len(elite) > k {
		elite = elite[:k]
	}
	out := make([]IslandMember, 0, len(elite))
	for _, idx := range elite {
		res, ok := b.lookup(idx)
		if !ok || res.Metrics == nil {
			continue
		}
		vals := make([]float64, len(objectives))
		skip := false
		for d, obj := range objectives {
			v, err := res.Metrics.Objective(obj)
			if err != nil {
				return nil, err
			}
			if math.IsNaN(v) {
				skip = true
				break
			}
			vals[d] = v
		}
		if skip {
			continue
		}
		out = append(out, IslandMember{Index: idx, Values: vals})
	}
	return out, nil
}
