package core

import (
	"strings"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

func easyportProfile(t *testing.T) *trace.Profile {
	t.Helper()
	p := workload.DefaultEasyportParams()
	p.Packets = 3000
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return trace.Analyze(tr)
}

func TestSuggestSpaceFromEasyport(t *testing.T) {
	prof := easyportProfile(t)
	h := memhier.EmbeddedSoC()
	space, err := SuggestSpace("auto", prof, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Validate(); err != nil {
		t.Fatal(err)
	}
	// The dominant 74-byte size must drive a pool option, including a
	// scratchpad placement (the 64 KB scratchpad affords it).
	labels := make([]string, 0)
	for _, opt := range space.Axes[0].Options {
		labels = append(labels, opt.Label)
	}
	joined := strings.Join(labels, " ")
	if !strings.Contains(joined, "d74") {
		t.Fatalf("no 74-byte pool option: %v", labels)
	}
	if !strings.Contains(joined, "d74@"+memhier.LayerScratchpad) {
		t.Fatalf("no scratchpad placement option: %v", labels)
	}
	if !strings.Contains(joined, "d74+d1500") {
		t.Fatalf("no two-pool option: %v", labels)
	}

	// Every suggested configuration must validate and build.
	for i := 0; i < space.Size(); i += space.Size()/37 + 1 {
		cfg, _, err := space.Config(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(h); err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
	}
}

func TestSuggestSpaceExploresToAGoodFront(t *testing.T) {
	p := workload.DefaultEasyportParams()
	p.Packets = 3000
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	prof := trace.Analyze(tr)
	h := memhier.EmbeddedSoC()
	space, err := SuggestSpace("auto", prof, h)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Hierarchy: h, Trace: tr}
	results, err := runner.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	feasible := Feasible(results)
	front, _, err := ParetoSet(feasible, []string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("front size %d", len(front))
	}
	// The suggested space must contain configurations that clearly beat
	// the no-pool baseline on accesses.
	accRange, err := Range(feasible, profile.ObjAccesses)
	if err != nil {
		t.Fatal(err)
	}
	if accRange.Factor < 2 {
		t.Fatalf("suggested space accesses factor %.2f — pools not helping", accRange.Factor)
	}
	best := results[accRange.BestIndex]
	if best.Labels[0] == "none" {
		t.Fatalf("access-optimal config has no pools: %v", best.Labels)
	}
}

func TestSuggestSpaceSmallScratchpad(t *testing.T) {
	// A 1 KB scratchpad cannot host a useful pool: no placement option.
	h, err := memhier.New(
		memhier.Layer{Name: "tiny", Capacity: 1024, ReadEnergy: 0.3, WriteEnergy: 0.3, ReadCycles: 1, WriteCycles: 1},
		memhier.Layer{Name: "dram", ReadEnergy: 8, WriteEnergy: 8, ReadCycles: 16, WriteCycles: 16},
	)
	if err != nil {
		t.Fatal(err)
	}
	space, err := SuggestSpace("auto", easyportProfile(t), h)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range space.Axes[0].Options {
		if strings.Contains(opt.Label, "@tiny") {
			t.Fatalf("placement on 1KB scratchpad suggested: %s", opt.Label)
		}
	}
}

func TestSuggestSpaceErrors(t *testing.T) {
	h := memhier.EmbeddedSoC()
	if _, err := SuggestSpace("x", nil, h); err == nil {
		t.Fatal("nil profile accepted")
	}
	empty := trace.Analyze(&trace.Trace{})
	if _, err := SuggestSpace("x", empty, h); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestSuggestChunkBounds(t *testing.T) {
	small := &trace.Profile{PeakLiveBytes: 1000}
	if got := suggestChunk(small); got != 4*1024 {
		t.Fatalf("small chunk %d", got)
	}
	huge := &trace.Profile{PeakLiveBytes: 100 << 20}
	if got := suggestChunk(huge); got != 64*1024 {
		t.Fatalf("huge chunk %d", got)
	}
	mid := &trace.Profile{PeakLiveBytes: 300 * 1024}
	got := suggestChunk(mid)
	if got < 16*1024 || got > 32*1024 || got&(got-1) != 0 {
		t.Fatalf("mid chunk %d", got)
	}
}
