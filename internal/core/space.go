// Package core implements the paper's primary contribution: the automated
// exploration of parameterized dynamic-memory allocator configurations.
//
// A Space is literally the paper's input — "the list of arrays with the
// parameter values to be explored": a base configuration plus one Axis per
// parameter, each carrying the array of values for that parameter. The
// Runner enumerates the cartesian product (exhaustively or by sampling),
// profiles every configuration against the case-study trace on the target
// hierarchy, and the analysis helpers reduce the sweep to Pareto-optimal
// sets and range statistics.
package core

import (
	"fmt"
	"strings"

	"dmexplore/internal/alloc"
)

// Option is one value of a parameter axis: a label plus the mutation it
// applies to the configuration under construction.
type Option struct {
	Label string
	Apply func(*alloc.Config)
}

// Axis is one explored parameter: a name and its array of values.
type Axis struct {
	Name    string
	Options []Option
}

// Space is the full exploration input.
type Space struct {
	Name string
	Base alloc.Config
	Axes []Axis
}

// Validate reports structural problems (empty axes, duplicate labels).
func (s *Space) Validate() error {
	if len(s.Axes) == 0 {
		return fmt.Errorf("core: space %q has no axes", s.Name)
	}
	for _, ax := range s.Axes {
		if len(ax.Options) == 0 {
			return fmt.Errorf("core: axis %q has no options", ax.Name)
		}
		seen := make(map[string]bool, len(ax.Options))
		for _, opt := range ax.Options {
			if opt.Label == "" || opt.Apply == nil {
				return fmt.Errorf("core: axis %q has an incomplete option", ax.Name)
			}
			if seen[opt.Label] {
				return fmt.Errorf("core: axis %q has duplicate option %q", ax.Name, opt.Label)
			}
			seen[opt.Label] = true
		}
	}
	return nil
}

// Size returns the cardinality of the cartesian product.
func (s *Space) Size() int {
	n := 1
	for _, ax := range s.Axes {
		n *= len(ax.Options)
	}
	return n
}

// Config materializes configuration idx (mixed-radix decode over the
// axes) and returns it with the per-axis option labels.
func (s *Space) Config(idx int) (alloc.Config, []string, error) {
	if idx < 0 || idx >= s.Size() {
		return alloc.Config{}, nil, fmt.Errorf("core: index %d out of range [0,%d)", idx, s.Size())
	}
	cfg := cloneConfig(s.Base)
	labels := make([]string, len(s.Axes))
	rem := idx
	for i := len(s.Axes) - 1; i >= 0; i-- {
		ax := s.Axes[i]
		k := rem % len(ax.Options)
		rem /= len(ax.Options)
		labels[i] = ax.Options[k].Label
		ax.Options[k].Apply(&cfg)
	}
	if cfg.Label == "" {
		cfg.Label = fmt.Sprintf("%s#%d[%s]", s.Name, idx, strings.Join(labels, ","))
	}
	return cfg, labels, nil
}

// cloneConfig deep-copies a configuration so Apply mutations cannot leak
// into the base through the Fixed slice.
func cloneConfig(c alloc.Config) alloc.Config {
	out := c
	out.Fixed = make([]alloc.FixedConfig, len(c.Fixed))
	copy(out.Fixed, c.Fixed)
	return out
}

// AxisLabels returns the axis names in order (CSV headers etc.).
func (s *Space) AxisLabels() []string {
	names := make([]string, len(s.Axes))
	for i, ax := range s.Axes {
		names[i] = ax.Name
	}
	return names
}
