package core

// lruCache is a size-aware least-recently-used cache bounding the
// session's partition cache and pool-run memo: entries carry a byte
// cost, a budget caps the total, and inserts evict from the cold end
// until the total fits. Eviction only drops the cache's reference —
// workers holding a pointer to an evicted entry keep using it safely
// (partitions and pool runs are immutable); a later lookup simply
// rebuilds. Not safe for concurrent use; callers hold their own mutex.
type lruCache[V any] struct {
	budget    int64 // max total bytes; <= 0 means unbounded
	size      int64
	evictions uint64

	entries    map[string]*lruNode[V]
	head, tail *lruNode[V] // head = most recently used
}

// lruNode is one resident entry in the cache's recency list.
type lruNode[V any] struct {
	key        string
	val        V
	bytes      int64
	prev, next *lruNode[V]
}

// newLRUCache returns a cache bounded to budget bytes (<= 0: unbounded).
func newLRUCache[V any](budget int64) *lruCache[V] {
	return &lruCache[V]{budget: budget, entries: make(map[string]*lruNode[V])}
}

// get returns the entry for key, marking it most recently used.
func (c *lruCache[V]) get(key string) (V, bool) {
	n, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.touch(n)
	return n.val, true
}

// put inserts (or replaces) key at the hot end with the given byte cost,
// then evicts cold entries until the budget holds. The entry just put is
// never evicted, even when it alone exceeds the budget — the caller is
// about to use it.
func (c *lruCache[V]) put(key string, v V, bytes int64) {
	if n, ok := c.entries[key]; ok {
		c.size += bytes - n.bytes
		n.val = v
		n.bytes = bytes
		c.touch(n)
		c.evict(n)
		return
	}
	n := &lruNode[V]{key: key, val: v, bytes: bytes}
	c.entries[key] = n
	c.size += bytes
	c.pushFront(n)
	c.evict(n)
}

// resize updates key's byte cost once its real size is known (entries
// are claimed before their builds complete) and applies the budget. A
// key already evicted is left alone.
func (c *lruCache[V]) resize(key string, bytes int64) {
	n, ok := c.entries[key]
	if !ok {
		return
	}
	c.size += bytes - n.bytes
	n.bytes = bytes
	c.touch(n)
	c.evict(n)
}

// len returns the resident entry count.
func (c *lruCache[V]) len() int { return len(c.entries) }

// bytes returns the accounted resident size.
func (c *lruCache[V]) bytes() int64 { return c.size }

// evicted returns how many entries the budget has pushed out.
func (c *lruCache[V]) evicted() uint64 { return c.evictions }

// evict drops cold-end entries until the budget holds, sparing keep.
func (c *lruCache[V]) evict(keep *lruNode[V]) {
	if c.budget <= 0 {
		return
	}
	for c.size > c.budget && c.tail != nil && c.tail != keep {
		n := c.tail
		c.unlink(n)
		delete(c.entries, n.key)
		c.size -= n.bytes
		c.evictions++
	}
}

func (c *lruCache[V]) touch(n *lruNode[V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *lruCache[V]) pushFront(n *lruNode[V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache[V]) unlink(n *lruNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
