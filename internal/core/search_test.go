package core

import (
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/stats"
)

func searchRunner(t *testing.T) *Runner {
	t.Helper()
	return &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: 2}
}

func TestDigitsRoundTrip(t *testing.T) {
	s := EasyportSpace()
	for _, idx := range []int{0, 1, 17, 100, s.Size() - 1} {
		d := s.digits(idx)
		if got := s.index(d); got != idx {
			t.Fatalf("digits round trip %d -> %v -> %d", idx, d, got)
		}
		for ax, v := range d {
			if v < 0 || v >= len(s.Axes[ax].Options) {
				t.Fatalf("digit %d of index %d out of range", ax, idx)
			}
		}
	}
}

func TestNeighbors(t *testing.T) {
	s := tinySpace() // 2 x 3
	ns := s.neighbors(0)
	// Axis 0 has 1 alternative, axis 1 has 2: three neighbours.
	if len(ns) != 3 {
		t.Fatalf("neighbors %v", ns)
	}
	seen := map[int]bool{}
	for _, n := range ns {
		if n == 0 || n < 0 || n >= s.Size() || seen[n] {
			t.Fatalf("bad neighbour set %v", ns)
		}
		seen[n] = true
		// Hamming distance exactly 1.
		d0, dn := s.digits(0), s.digits(n)
		diff := 0
		for i := range d0 {
			if d0[i] != dn[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("neighbour %d at distance %d", n, diff)
		}
	}
}

func TestNeighborsPreallocated(t *testing.T) {
	// neighbors must allocate exactly its two buffers (digits + output,
	// sized up front); appendNeighbors with caller buffers must allocate
	// nothing at all.
	s := EasyportSpace()
	if allocs := testing.AllocsPerRun(100, func() { s.neighbors(17) }); allocs > 2 {
		t.Fatalf("neighbors allocates %v times per call, want <= 2", allocs)
	}
	scratch := newNeighborScratch(s)
	if allocs := testing.AllocsPerRun(100, func() { scratch.neighbors(s, 17) }); allocs != 0 {
		t.Fatalf("scratch neighbors allocates %v times per call, want 0", allocs)
	}
	// The preallocation bound is exact: every configuration has
	// neighborCount neighbours.
	for _, idx := range []int{0, 1, 17, s.Size() - 1} {
		if got := len(s.neighbors(idx)); got != s.neighborCount() {
			t.Fatalf("index %d: %d neighbours, want %d", idx, got, s.neighborCount())
		}
	}
}

func TestHillClimbFindsGoodConfig(t *testing.T) {
	r := searchRunner(t)
	space := tinySpace()
	weights := []Weighted{{profile.ObjAccesses, 1}}
	res, err := r.HillClimb(space, weights, space.Size(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Metrics == nil {
		t.Fatal("no best found")
	}
	// With budget >= space size the climb must find the global optimum.
	all, err := r.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	best := mustRangeT(t, Feasible(all), profile.ObjAccesses).Min
	if got := float64(res.Best.Metrics.Accesses); got != best {
		t.Fatalf("hill climb best %v, global best %v", got, best)
	}
	if len(res.Evaluated) > space.Size() {
		t.Fatalf("evaluated %d > space size (no dedup)", len(res.Evaluated))
	}
}

func TestHillClimbValidation(t *testing.T) {
	r := searchRunner(t)
	if _, err := r.HillClimb(tinySpace(), nil, 10, 1); err == nil {
		t.Fatal("no weights accepted")
	}
	if _, err := r.HillClimb(tinySpace(), []Weighted{{profile.ObjAccesses, 1}}, 0, 1); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestAnnealRespectsBudget(t *testing.T) {
	r := searchRunner(t)
	space := tinySpace()
	res, err := r.Anneal(space, []Weighted{{profile.ObjFootprint, 1}}, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluated) > 5 {
		t.Fatalf("evaluated %d > budget", len(res.Evaluated))
	}
	if res.Best.Metrics == nil {
		t.Fatal("no best")
	}
}

func TestScreenAndRefineApproximatesFront(t *testing.T) {
	r := searchRunner(t)
	space := tinySpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	// Budget = whole space: the approximation must equal the true front.
	results, err := r.ScreenAndRefine(space, objs, 2, space.Size(), 3)
	if err != nil {
		t.Fatal(err)
	}
	approxFront, _, err := ParetoSet(Feasible(results), objs)
	if err != nil {
		t.Fatal(err)
	}
	all, err := r.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	trueFront, _, err := ParetoSet(Feasible(all), objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(approxFront) != len(trueFront) {
		t.Fatalf("approx front %d vs true %d", len(approxFront), len(trueFront))
	}
	for i := range trueFront {
		if approxFront[i].Index != trueFront[i].Index {
			t.Fatalf("front mismatch at %d", i)
		}
	}
}

func TestScreenAndRefineValidation(t *testing.T) {
	r := searchRunner(t)
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	if _, err := r.ScreenAndRefine(tinySpace(), objs, 0, 10, 1); err == nil {
		t.Fatal("zero screen accepted")
	}
	if _, err := r.ScreenAndRefine(tinySpace(), objs, 10, 5, 1); err == nil {
		t.Fatal("budget < screen accepted")
	}
}

func mustRangeT(t *testing.T, rs []Result, obj string) ObjectiveRange {
	t.Helper()
	r, err := Range(rs, obj)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// newTestRNG returns a deterministic RNG for grid-operation tests.
func newTestRNG() *stats.RNG { return stats.NewRNG(12345) }
