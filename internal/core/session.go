package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmexplore/internal/alloc"
	"dmexplore/internal/profile"
	"dmexplore/internal/telemetry"
	"dmexplore/internal/telemetry/span"
	"dmexplore/internal/trace"
)

// EvalSession is a persistent evaluation pipeline over one (space, trace,
// hierarchy) triple: the trace is compiled once, a pool of long-lived
// workers is spawned once, and every worker keeps its Replayer — scratch
// tables sized on the first configuration and reused for all that follow.
// Batches of configuration indices are fed to the pool over a channel, so
// a guided search issuing hundreds of small evaluation waves (one per
// NSGA-II generation, one per hill-climb neighbourhood, one per annealing
// speculation window) pays the pool spin-up cost exactly once instead of
// once per wave.
//
// Eval is safe for concurrent use; results come back in request order, so
// callers see a deterministic reduction order regardless of Workers.
type EvalSession struct {
	r       *Runner
	space   *Space
	ct      *trace.Compiled
	col     *telemetry.Collector
	workers int

	jobs chan evalJob
	wg   sync.WaitGroup

	// Axis combinations can collapse to the same canonical configuration
	// (an axis that is inapplicable under another axis's value). The memo
	// spans the whole session, so duplicates cost one simulation across
	// every batch of a search, not just within one.
	memoMu sync.Mutex
	memo   map[string]*profile.Metrics

	// incremental gates the partial-replay path: Runner.Incremental set
	// and fast-path profiling options (the partial path's exactness
	// argument holds only for the flat cost model).
	incremental bool

	// parts caches the invariant partition per fixed-pool signature; the
	// entry's once makes concurrent workers build it exactly once. The
	// cache is a size-aware LRU bounded by Runner.PartitionBudgetBytes so
	// long NSGA-II runs over signature-rich spaces cannot grow it without
	// limit; an evicted signature simply rebuilds on next use.
	partsMu sync.Mutex
	parts   *lruCache[*partitionEntry]

	// runs memoizes standalone general-pool replays by (recorded-op
	// content hash, general-pool parameters). A hit composes cached
	// per-gap reserve levels and metric components with the candidate's
	// partition in O(ops) additions — no simulation. Bounded like parts,
	// by Runner.PoolMemoBudgetBytes.
	runsMu sync.Mutex
	runs   *lruCache[*poolRunEntry]

	// total/done drive the Progress callback: total grows as batches are
	// submitted, done as configurations complete.
	total atomic.Int64
	done  atomic.Int64

	closed atomic.Bool
}

// partitionEntry is one signature's cached partition build.
type partitionEntry struct {
	once sync.Once
	part *profile.Partition
	err  error
}

// poolRunEntry is one (ops hash, general vector) key's cached standalone
// general-pool replay. ok is false when the replay declined (a pool
// error only a full replay may surface) — cached so the key is not
// retried.
type poolRunEntry struct {
	once sync.Once
	run  *profile.PoolRun
	ok   bool
}

// Default byte budgets for the session's incremental caches. At typical
// trace scales (10^5–10^6 recorded ops, ~16 bytes per op across the
// partition's slices) the defaults hold hundreds of partitions and
// thousands of pool runs — far past what a guided search touches — while
// keeping a week-long NSGA-II service run bounded.
const (
	DefaultPartitionBudgetBytes = 256 << 20
	DefaultPoolMemoBudgetBytes  = 128 << 20
)

// cacheBudget resolves a Runner budget knob: 0 means the default,
// negative means unbounded (the lruCache convention for <= 0).
func cacheBudget(knob, def int64) int64 {
	if knob == 0 {
		return def
	}
	if knob < 0 {
		return 0
	}
	return knob
}

// IncrementalCacheStats reports the occupancy of the session's bounded
// incremental caches (partition cache and pool-run memo).
type IncrementalCacheStats struct {
	PartitionEntries   int
	PartitionBytes     int64
	PartitionEvictions uint64
	PoolRunEntries     int
	PoolRunBytes       int64
	PoolRunEvictions   uint64
}

// IncrementalCacheStats snapshots the bounded incremental caches. Zero
// for sessions running without the incremental path.
func (s *EvalSession) IncrementalCacheStats() IncrementalCacheStats {
	var st IncrementalCacheStats
	if !s.incremental {
		return st
	}
	s.partsMu.Lock()
	st.PartitionEntries = s.parts.len()
	st.PartitionBytes = s.parts.bytes()
	st.PartitionEvictions = s.parts.evicted()
	s.partsMu.Unlock()
	s.runsMu.Lock()
	st.PoolRunEntries = s.runs.len()
	st.PoolRunBytes = s.runs.bytes()
	st.PoolRunEvictions = s.runs.evicted()
	s.runsMu.Unlock()
	return st
}

// evalJob is one configuration handed to a session worker: where to write
// the result and which batch to signal when done. predicted, when
// non-nil, is the surrogate's forecast for this configuration, stamped
// onto the result so the journal pairs it with the exact metrics; origin
// is its search provenance, stamped the same way.
type evalJob struct {
	idx       int
	out       *Result
	wg        *sync.WaitGroup
	predicted map[string]float64
	origin    *telemetry.Origin
}

// NewSession opens a persistent evaluation session for the space. Callers
// must Close it to release the worker pool.
func (r *Runner) NewSession(space *Space) (*EvalSession, error) {
	return r.newSession(space, 0)
}

// newSession opens a session; maxWorkers > 0 caps the pool (the one-shot
// run path clamps to the batch size so a 6-configuration sweep does not
// spawn idle goroutines).
func (r *Runner) newSession(space *Space, maxWorkers int) (*EvalSession, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if r.Hierarchy == nil || (r.Trace == nil && r.Compiled == nil) {
		return nil, fmt.Errorf("core: runner needs a hierarchy and a trace")
	}
	ct := r.Compiled
	if ct == nil {
		var err error
		ct, err = trace.Compile(r.Trace)
		if err != nil {
			return nil, err
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxWorkers > 0 && workers > maxWorkers {
		workers = maxWorkers
	}
	col := r.Telemetry
	if col == nil {
		col = telemetry.NewCollector(workers)
	}
	s := &EvalSession{
		r:       r,
		space:   space,
		ct:      ct,
		col:     col,
		workers: workers,
		jobs:    make(chan evalJob, 2*workers),
		memo:    make(map[string]*profile.Metrics),
	}
	opts := r.Options
	s.incremental = r.Incremental && opts.LogWriter == nil &&
		opts.SampleEvery == 0 && len(opts.Caches) == 0 && len(opts.RowBuffers) == 0
	if s.incremental {
		s.parts = newLRUCache[*partitionEntry](
			cacheBudget(r.PartitionBudgetBytes, DefaultPartitionBudgetBytes))
		s.runs = newLRUCache[*poolRunEntry](
			cacheBudget(r.PoolMemoBudgetBytes, DefaultPoolMemoBudgetBytes))
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// Workers returns the size of the session's worker pool.
func (s *EvalSession) Workers() int { return s.workers }

// Warm pre-fills the session memo with known-exact metrics, keyed by
// configuration index. The distributed service uses it to resume: a
// worker re-leasing a half-finished island loads the job's checkpointed
// results, then replays the island's deterministic walk — every
// already-evaluated configuration is served from the memo (bit-identical
// metrics, no simulation, no modelled backend latency), so the walk
// fast-forwards to where the dead worker stopped. First write wins, as
// with any memo fill; indices that fail to materialize are skipped (the
// live walk will surface the error itself if it reaches them).
func (s *EvalSession) Warm(results map[int]*profile.Metrics) {
	for idx, m := range results {
		if m == nil {
			continue
		}
		cfg, _, err := s.space.Config(idx)
		if err != nil {
			continue
		}
		id := cfg.ID()
		s.memoMu.Lock()
		if s.memo[id] == nil {
			s.memo[id] = m
		}
		s.memoMu.Unlock()
	}
}

// Eval profiles the given configuration indices as one wave across the
// worker pool and returns results in request order (result i is
// configuration indices[i]), making the reduction order deterministic
// regardless of worker count. Duplicate indices within the wave are
// evaluated independently; use an evalBatcher for deduplication.
//
// On failure every slot is still populated (per-result Err) and the
// returned error wraps the first failure in request order.
func (s *EvalSession) Eval(indices []int) ([]Result, error) {
	return s.EvalPredicted(indices, nil)
}

// EvalPredicted is Eval with per-index surrogate predictions attached:
// preds, when non-nil, must have one entry per index (entries may be
// nil); each is stamped onto the corresponding Result before the
// Observer sees it, so journals record what the surrogate forecast
// alongside what the simulation measured.
func (s *EvalSession) EvalPredicted(indices []int, preds []map[string]float64) ([]Result, error) {
	return s.EvalAnnotated(indices, preds, nil)
}

// EvalAnnotated is EvalPredicted with per-index provenance attached:
// origins, when non-nil, must have one entry per index (entries may be
// nil); each is stamped onto the corresponding Result, journaled with
// it, and reconstructed by `dmreport -lineage`. The wave itself lands
// one batch-wave span on the coordinator ring.
func (s *EvalSession) EvalAnnotated(indices []int, preds []map[string]float64, origins []*telemetry.Origin) ([]Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("core: eval on closed session")
	}
	if len(indices) == 0 {
		return nil, nil
	}
	if preds != nil && len(preds) != len(indices) {
		return nil, fmt.Errorf("core: %d predictions for %d indices", len(preds), len(indices))
	}
	if origins != nil && len(origins) != len(indices) {
		return nil, fmt.Errorf("core: %d origins for %d indices", len(origins), len(indices))
	}
	coord := s.r.Spans.Coord()
	var waveStart time.Time
	if coord != nil {
		waveStart = time.Now()
	}
	results := make([]Result, len(indices))
	s.total.Add(int64(len(indices)))
	var batch sync.WaitGroup
	batch.Add(len(indices))
	for i, idx := range indices {
		job := evalJob{idx: idx, out: &results[i], wg: &batch}
		if preds != nil {
			job.predicted = preds[i]
		}
		if origins != nil {
			job.origin = origins[i]
		}
		s.jobs <- job
	}
	batch.Wait()
	coord.Since(span.StageBatchWave, waveStart, int64(len(indices)))
	for _, res := range results {
		if res.Err != nil {
			return results, fmt.Errorf("core: %w", res.Err)
		}
	}
	return results, nil
}

// Close shuts the worker pool down and waits for it to drain. A closed
// session rejects further Eval calls; Close is idempotent.
func (s *EvalSession) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.jobs)
	s.wg.Wait()
}

// worker is one long-lived pool member: a telemetry shard and a Replayer
// whose scratch tables persist across every batch of the session.
func (s *EvalSession) worker(w int) {
	defer s.wg.Done()
	shard := s.col.Shard(w)
	rep := profile.NewReplayer()
	rep.Shard = shard
	rep.Spans = s.r.Spans.Ring(w)
	var debt time.Duration
	for job := range s.jobs {
		res := s.evalOne(job.idx, rep, shard, &debt)
		res.Predicted = job.predicted
		res.Origin = job.origin
		*job.out = res
		if s.r.Observer != nil {
			s.r.Observer(res)
		}
		if s.r.Progress != nil {
			s.r.Progress(int(s.done.Add(1)), int(s.total.Load()))
		}
		job.wg.Done()
	}
	if debt > 0 {
		// Flush the worker's residual modelled-backend time (at most one
		// round-trip) so total slept time equals total charged time.
		time.Sleep(debt)
	}
}

// chargeLatency accrues modelled backend time and sleeps once the debt
// reaches one backend round-trip (EvalLatency). Partial evaluations
// charge sub-millisecond pro-rata slices; sleeping each individually
// would overshoot by the runtime's timer granularity per call, silently
// inflating the modelled backend by tens of percent. Accumulating to one
// round-trip keeps the total slept time equal to the total charged time
// regardless of how finely the charges are sliced.
func (s *EvalSession) chargeLatency(debt *time.Duration, d time.Duration) {
	*debt += d
	if *debt >= s.r.EvalLatency {
		time.Sleep(*debt)
		*debt = 0
	}
}

// evalOne profiles one configuration: materialize, memo lookup, results
// cache lookup, simulate on miss.
func (s *EvalSession) evalOne(idx int, rep *profile.Replayer, shard *telemetry.Shard, debt *time.Duration) Result {
	r := s.r
	start := time.Now()
	res := Result{Index: idx}
	cfg, labels, err := s.space.Config(idx)
	if err != nil {
		res.Err = fmt.Errorf("configuration %d: %w", idx, err)
		shard.ConfigError()
	} else {
		res.Labels = labels
		id := cfg.ID()
		s.memoMu.Lock()
		memoized := s.memo[id]
		s.memoMu.Unlock()
		if memoized != nil {
			res.Metrics = memoized
			res.MemoHit = true
			shard.MemoHit()
		}
		key := ""
		if res.Metrics == nil && r.Cache != nil {
			var probeStart time.Time
			if rep.Spans != nil {
				probeStart = time.Now()
			}
			key = CompiledCacheKey(id, s.ct, r.Hierarchy)
			hit := int64(0)
			if m, ok := r.Cache.Get(key); ok {
				res.Metrics = m
				res.CacheHit = true
				hit = 1
				shard.CacheHit()
			} else {
				shard.CacheMiss()
			}
			if rep.Spans != nil {
				rep.Spans.Since(span.StageCacheProbe, probeStart, hit)
			}
		}
		if res.Metrics == nil && s.incremental {
			// Partial re-evaluation: configurations sharing a fixed-pool
			// signature reuse one invariant partition; the standalone
			// general-pool run is memoized by recorded-op content, so a
			// candidate whose sequence was already replayed under the same
			// general vector composes in O(ops) with no simulation. A
			// declined partial (capacity interaction, pool failure the
			// failure-replay path cannot reproduce) falls through to the
			// full replay below.
			if part := s.partition(cfg, rep); part != nil {
				pstart := time.Now()
				if run, built := s.poolRun(part, cfg, rep); run != nil {
					if m, ok := rep.Compose(s.ct, part, run, cfg, r.Hierarchy); ok {
						res.Metrics = m
						res.Incremental = true
						if built {
							res.EventsSkipped = uint64(part.SkippedEvents())
							shard.ObservePartialSim(time.Since(pstart), part.Ops(), part.SkippedEvents())
							rep.Spans.Since(span.StagePartialSim, pstart, int64(part.Ops()))
							if r.EvalLatency > 0 {
								// The modelled backend replays only the partition's
								// recorded ops, so it charges latency pro-rata to the
								// replayed fraction of the trace.
								s.chargeLatency(debt, time.Duration(float64(r.EvalLatency)*
									float64(part.Ops())/float64(part.Events())))
							}
						} else {
							// Memo hit: the evaluation is a pure composition.
							// It charges its own (microsecond) cost and no
							// modelled backend latency — nothing re-ran.
							res.Composed = true
							res.EventsSkipped = uint64(part.Events())
							shard.ObserveCompose(time.Since(pstart), part.Events())
							rep.Spans.Since(span.StageCompose, pstart, int64(part.Ops()))
						}
						if r.Cache != nil {
							r.Cache.Put(key, res.Metrics)
						}
					}
				}
			}
		}
		if res.Metrics == nil {
			res.Metrics, res.Err = rep.Run(s.ct, cfg, r.Hierarchy, r.Options)
			if res.Err != nil {
				// Surface which configuration died, not just how: index
				// and axis labels identify it in the space without a
				// replay.
				res.Err = fmt.Errorf("configuration %d [%s]: %w",
					idx, strings.Join(labels, " "), res.Err)
				shard.SimError()
			} else {
				if r.EvalLatency > 0 {
					// Model an external evaluation backend (see the
					// EvalLatency doc comment).
					s.chargeLatency(debt, r.EvalLatency)
				}
				if r.Cache != nil {
					r.Cache.Put(key, res.Metrics)
				}
			}
		}
		if res.Err == nil && memoized == nil {
			s.memoMu.Lock()
			s.memo[id] = res.Metrics
			s.memoMu.Unlock()
		}
	}
	res.Duration = time.Since(start)
	shard.AddBusy(res.Duration)
	return res
}

// partition returns the invariant partition for cfg's fixed-pool
// signature, building it on first use — one full-trace replay per
// signature, shared by every worker for the rest of the session. A nil
// return means the partition could not be built (a fault the full
// replay path will surface per configuration).
func (s *EvalSession) partition(cfg alloc.Config, rep *profile.Replayer) *profile.Partition {
	sig := partitionKey(cfg)
	s.partsMu.Lock()
	e, ok := s.parts.get(sig)
	if !ok {
		e = &partitionEntry{}
		s.parts.put(sig, e, partitionEntryBytes)
	}
	s.partsMu.Unlock()
	e.once.Do(func() {
		e.part, e.err = rep.Partition(s.ct, cfg, s.r.Hierarchy)
		if e.part != nil {
			// Account the built partition's real size; the budget may
			// evict colder signatures (never this one — it is in use).
			s.partsMu.Lock()
			s.parts.resize(sig, partitionEntryBytes+e.part.MemBytes())
			s.partsMu.Unlock()
		}
	})
	if e.err != nil {
		return nil
	}
	return e.part
}

// Baseline byte costs of a cache entry before (or beyond) its payload:
// map slot, recency-list node, entry struct.
const (
	partitionEntryBytes = 128
	poolRunEntryBytes   = 128
)

// poolRun returns the memoized standalone general-pool run for part's
// recorded op sequence under cfg's general-pool parameters, building it
// on first use; concurrent workers claiming the same key build exactly
// once. built reports whether this call executed the standalone replay
// (false: served by the memo — the caller's composition is the whole
// evaluation). A nil run means the replay declined and only a full
// replay can evaluate the configuration.
func (s *EvalSession) poolRun(part *profile.Partition, cfg alloc.Config, rep *profile.Replayer) (run *profile.PoolRun, built bool) {
	key := poolRunKey(part, cfg)
	s.runsMu.Lock()
	e, ok := s.runs.get(key)
	if !ok {
		e = &poolRunEntry{}
		s.runs.put(key, e, poolRunEntryBytes)
	}
	s.runsMu.Unlock()
	e.once.Do(func() {
		if store := s.r.PoolMemo; store != nil {
			// Persistent memo probe: a run recorded by a previous tool
			// invocation under the same content key serves this session
			// like an in-session hit (the caller's composition is the
			// whole evaluation). MatchesOps guards the hash key exactly as
			// it does for in-session reuse; a collision falls through to a
			// fresh replay.
			if run, ok := store.Get(key); ok && run.MatchesOps(part) {
				e.run, e.ok = run, true
				s.runsMu.Lock()
				s.runs.resize(key, poolRunEntryBytes+run.MemBytes())
				s.runsMu.Unlock()
				return
			}
		}
		built = true
		e.run, e.ok = rep.PoolReplay(part, cfg, s.r.Hierarchy)
		if e.ok {
			s.runsMu.Lock()
			s.runs.resize(key, poolRunEntryBytes+e.run.MemBytes())
			s.runsMu.Unlock()
			if store := s.r.PoolMemo; store != nil {
				store.Put(key, e.run)
			}
		}
	})
	if !e.ok {
		return nil, built
	}
	if !built && !e.run.MatchesOps(part) {
		// Content-hash collision: the cached run replayed a different op
		// sequence. Compute privately rather than trust or replace it.
		if r2, ok2 := rep.PoolReplay(part, cfg, s.r.Hierarchy); ok2 {
			return r2, true
		}
		return nil, true
	}
	return e.run, built
}

// poolRunKey keys the pool-run memo: the recorded op sequence's content
// hash and length plus the canonical general-pool parameter vector.
// Everything a standalone replay depends on is in the key; the sequence
// itself is verified on reuse (PoolRun.MatchesOps) so a hash collision
// degrades to a private rebuild, never a wrong composition.
func poolRunKey(part *profile.Partition, cfg alloc.Config) string {
	return fmt.Sprintf("%016x·%d·%s", part.OpsHash(), part.Ops(), cfg.General.ID())
}

// partitionKey canonicalizes the fixed-pool signature: the fixed pools
// (which fully determine request routing and the fixed-side simulation)
// plus the general pool's layer (which determines where fallback ops
// land). Configurations sharing a key share one Partition.
func partitionKey(cfg alloc.Config) string {
	var b strings.Builder
	for _, f := range cfg.Fixed {
		fmt.Fprintf(&b, "F%d@%s[%d-%d]%s%s%s×%d/%d;%t|",
			f.SlotBytes, f.Layer, f.MatchLo, f.MatchHi,
			f.Order, f.Links, f.Growth, f.ChunkSlots, f.MaxBytes, f.Reclaim)
	}
	b.WriteString("G@")
	b.WriteString(cfg.General.Layer)
	return b.String()
}
