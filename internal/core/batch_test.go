package core

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/telemetry"
)

// countingRunner wires an Observer that counts simulated (non-memo,
// non-cache) evaluations per index.
func countingRunner(t *testing.T, workers int) (*Runner, *sync.Mutex, map[int]int) {
	t.Helper()
	var mu sync.Mutex
	counts := make(map[int]int)
	r := &Runner{
		Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: workers,
		Observer: func(res Result) {
			mu.Lock()
			counts[res.Index]++
			mu.Unlock()
		},
	}
	return r, &mu, counts
}

func TestBatcherDedupesWithinAndAcrossBatches(t *testing.T) {
	r, mu, counts := countingRunner(t, 2)
	space := EasyportSpace()
	sess, err := r.NewSession(space)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	b := newEvalBatcher(sess)

	// Duplicates within one batch: one evaluation each.
	res, err := b.getBatch([]int{5, 9, 5, 9, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("batch returned %d results", len(res))
	}
	for i, want := range []int{5, 9, 5, 9, 5} {
		if res[i].Index != want {
			t.Fatalf("slot %d: index %d want %d (request order lost)", i, res[i].Index, want)
		}
	}
	if res[0].Metrics != res[2].Metrics || res[1].Metrics != res[3].Metrics {
		t.Fatal("duplicate request slots did not share one result")
	}
	// Overlapping second batch: only the unseen index evaluates.
	if _, err := b.getBatch([]int{9, 11, 5}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, idx := range []int{5, 9, 11} {
		if counts[idx] != 1 {
			t.Fatalf("index %d evaluated %d times", idx, counts[idx])
		}
	}
	if len(counts) != 3 {
		t.Fatalf("evaluated %d distinct indices, want 3", len(counts))
	}
	if b.len() != 3 {
		t.Fatalf("batcher len %d, want 3", b.len())
	}
}

func TestBatcherConcurrentOverlapEvaluatesOnce(t *testing.T) {
	r, mu, counts := countingRunner(t, 4)
	space := EasyportSpace()
	sess, err := r.NewSession(space)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	b := newEvalBatcher(sess)

	// Many goroutines requesting heavily overlapping batches: in-flight
	// deduplication must keep every index at exactly one evaluation.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]int, 0, 16)
			for i := 0; i < 16; i++ {
				batch = append(batch, (g+i)%20)
			}
			res, err := b.getBatch(batch)
			if err != nil {
				t.Error(err)
				return
			}
			for i, idx := range batch {
				if res[i].Index != idx || res[i].Metrics == nil {
					t.Errorf("goroutine %d slot %d: bad result %+v", g, i, res[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for idx, n := range counts {
		if n != 1 {
			t.Fatalf("index %d evaluated %d times under concurrency", idx, n)
		}
	}
	if len(counts) != 20 {
		t.Fatalf("evaluated %d distinct indices, want 20", len(counts))
	}
}

func TestBatcherLimit(t *testing.T) {
	r, _, _ := countingRunner(t, 1)
	space := EasyportSpace()
	sess, err := r.NewSession(space)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	b := newEvalBatcher(sess)
	if _, err := b.getBatch([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in     []int
		maxNew int
		want   int // prefix length
	}{
		{[]int{1, 2, 3, 4}, 1, 3}, // cached, cached, 1 new, cut
		{[]int{3, 3, 4}, 1, 2},    // duplicate new counts once
		{[]int{1, 2}, 0, 2},       // all cached: nothing new to cap
		{[]int{3, 1}, 0, 0},       // first is new, no budget
		{[]int{3, 4, 5}, 10, 3},   // budget beyond batch
		{nil, 5, 0},               // empty in, empty out
		{[]int{5, 1, 6, 7}, 2, 3}, // two new allowed, third cut
	}
	for i, c := range cases {
		if got := b.limit(c.in, c.maxNew); len(got) != c.want {
			t.Fatalf("case %d: limit(%v, %d) = %v, want prefix of %d",
				i, c.in, c.maxNew, got, c.want)
		}
	}
}

// TestBatcherLimitPreRanked pins limit's budget-prefix semantics for the
// inputs the surrogate produces: slices ordered by predicted score (or
// any other deterministic, non-shuffled order), possibly interleaving
// cached and unseen indices. The prefix rule and the new-index dedup must
// not depend on the input having been shuffled.
func TestBatcherLimitPreRanked(t *testing.T) {
	r, mu, counts := countingRunner(t, 2)
	space := EasyportSpace()
	sess, err := r.NewSession(space)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	b := newEvalBatcher(sess)
	if _, err := b.getBatch([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		in     []int
		maxNew int
		want   []int
	}{
		{"ascending ranked", []int{1, 2, 3, 4, 5, 6}, 2, []int{1, 2, 3, 4, 5}},
		{"descending ranked", []int{6, 5, 4, 3, 2, 1}, 2, []int{6, 5}},
		{"cached interleaved", []int{2, 7, 3, 7, 1, 8, 9}, 2, []int{2, 7, 3, 7, 1, 8}},
		{"all cached ranked", []int{3, 2, 1}, 0, []int{3, 2, 1}},
	}
	for _, c := range cases {
		got := b.limit(c.in, c.maxNew)
		if len(got) != len(c.want) {
			t.Fatalf("%s: limit(%v, %d) = %v, want %v", c.name, c.in, c.maxNew, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: limit(%v, %d) = %v, want %v", c.name, c.in, c.maxNew, got, c.want)
			}
		}
	}
	// Evaluating a limited pre-ranked batch must still dedup: the cached
	// members cost nothing, each new member exactly one simulation.
	if _, err := b.getBatch(b.limit([]int{2, 7, 3, 7, 1, 8, 9}, 2)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, idx := range []int{1, 2, 3, 7, 8} {
		if counts[idx] != 1 {
			t.Fatalf("index %d evaluated %d times", idx, counts[idx])
		}
	}
	if counts[9] != 0 {
		t.Fatalf("index 9 beyond the budget prefix was evaluated %d times", counts[9])
	}
}

// TestBatcherConcurrentPreRankedOverlap is the in-flight partitioning
// contract under non-shuffled input: goroutines submitting identically
// ordered (pre-ranked) overlapping slices — the worst case for claim
// contention, since every goroutine walks the same order — must still
// evaluate each index exactly once.
func TestBatcherConcurrentPreRankedOverlap(t *testing.T) {
	r, mu, counts := countingRunner(t, 4)
	space := EasyportSpace()
	sess, err := r.NewSession(space)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	b := newEvalBatcher(sess)
	ranked := make([]int, 24)
	for i := range ranked {
		ranked[i] = i
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine takes an overlapping window of the shared
			// ranking, in ranked (ascending) order.
			batch := ranked[g : g+16]
			res, err := b.getBatch(batch)
			if err != nil {
				t.Error(err)
				return
			}
			for i, idx := range batch {
				if res[i].Index != idx || res[i].Metrics == nil {
					t.Errorf("goroutine %d slot %d: bad result %+v", g, i, res[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for idx, n := range counts {
		if n != 1 {
			t.Fatalf("index %d evaluated %d times under pre-ranked overlap", idx, n)
		}
	}
	if len(counts) != 23 {
		t.Fatalf("evaluated %d distinct indices, want 23", len(counts))
	}
}

func TestSessionEvalAfterClose(t *testing.T) {
	r := searchRunner(t)
	sess, err := r.NewSession(tinySpace())
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	sess.Close() // idempotent
	if _, err := sess.Eval([]int{0}); err == nil {
		t.Fatal("eval on closed session accepted")
	}
}

func TestSessionReusesWorkersAcrossBatches(t *testing.T) {
	// A session must keep the full worker pool alive between waves: the
	// telemetry collector is per-session here, so every shard having sims
	// after many small batches proves the waves actually fanned out.
	col := telemetry.NewCollector(2)
	r := &Runner{
		Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t),
		Workers: 2, Telemetry: col,
	}
	space := tinySpace()
	sess, err := r.NewSession(space)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for i := 0; i < space.Size(); i += 2 {
		if _, err := sess.Eval([]int{i, i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	snap := col.Snapshot()
	if int(snap.Sims) != space.Size() {
		t.Fatalf("sims %d, want %d", snap.Sims, space.Size())
	}
}

// TestGuidedSearchJournalComplete pins the journal contract for guided
// searches: every configuration the search profiled — including
// batch-evaluated offspring that environmental selection later discarded
// — appears exactly once in the journal with its axis labels, and
// nothing else does.
func TestGuidedSearchJournalComplete(t *testing.T) {
	var buf bytes.Buffer
	journal := telemetry.NewJournal(&buf)
	r := &Runner{
		Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: 4,
		Observer: func(res Result) {
			if err := journal.Record(res.JournalRecord()); err != nil {
				t.Error(err)
			}
		},
	}
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	evolved, err := r.Evolve(space, objs, EvolveOptions{Population: 8, Budget: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}

	profiled := make(map[int]bool)
	for _, res := range evolved {
		if profiled[res.Index] {
			t.Fatalf("Evolve returned index %d twice", res.Index)
		}
		profiled[res.Index] = true
	}
	journaled := make(map[int]int)
	for _, rec := range recs {
		journaled[rec.Index]++
		if len(rec.Labels) != len(space.Axes) {
			t.Fatalf("record %d has labels %v, want one per axis", rec.Index, rec.Labels)
		}
	}
	if len(recs) != len(evolved) {
		t.Fatalf("journal has %d records for %d profiled configurations", len(recs), len(evolved))
	}
	for idx := range profiled {
		if journaled[idx] != 1 {
			t.Fatalf("configuration %d journaled %d times", idx, journaled[idx])
		}
	}
	for idx := range journaled {
		if !profiled[idx] {
			t.Fatalf("journal has index %d the search never returned", idx)
		}
	}
}

// TestSearchDeterministicAcrossWorkers is the determinism contract of the
// batched evaluation layer: for a fixed seed, every guided strategy must
// produce the identical evaluation sequence, metrics, best pick, and
// Pareto front for any worker count — the batch reduction order, not
// completion order, decides everything the search observes.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	tr := tinyTrace(t)
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	weights := []Weighted{{profile.ObjAccesses, 1}, {profile.ObjFootprint, 0.5}}
	const seed, budget = 17, 72

	type outcome struct {
		name      string
		indices   []int
		accesses  []uint64
		footprint []int64
		bestIndex int
		bestScore float64
	}
	capture := func(name string, evaluated []Result, best Result, score float64) outcome {
		o := outcome{name: name, bestIndex: best.Index, bestScore: score}
		for _, res := range evaluated {
			o.indices = append(o.indices, res.Index)
			o.accesses = append(o.accesses, res.Metrics.Accesses)
			o.footprint = append(o.footprint, res.Metrics.FootprintBytes)
		}
		return o
	}

	runAll := func(workers int, surrogate bool) []outcome {
		r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Workers: workers}
		if surrogate {
			r.Surrogate = &SurrogateOptions{}
		}
		var out []outcome
		sr, err := r.HillClimb(space, weights, budget, seed)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, capture("hillclimb", sr.Evaluated, sr.Best, sr.BestScore))
		sr, err = r.Anneal(space, weights, budget, seed)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, capture("anneal", sr.Evaluated, sr.Best, sr.BestScore))
		results, err := r.ScreenAndRefine(space, objs, 16, budget, seed)
		if err != nil {
			t.Fatal(err)
		}
		front, _, err := ParetoSet(Feasible(results), objs)
		if err != nil {
			t.Fatal(err)
		}
		bestIdx := -1
		if len(front) > 0 {
			bestIdx = front[0].Index
		}
		out = append(out, capture("screen", results, Result{Index: bestIdx}, 0))
		results, err = r.Evolve(space, objs, EvolveOptions{Population: 8, Budget: budget, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		front, _, err = ParetoSet(Feasible(results), objs)
		if err != nil {
			t.Fatal(err)
		}
		bestIdx = -1
		if len(front) > 0 {
			bestIdx = front[0].Index
		}
		out = append(out, capture("evolve", results, Result{Index: bestIdx}, 0))
		return out
	}

	// Exact strategies and their surrogate-screened variants must both be
	// bit-deterministic: the surrogate's training and predictions happen
	// on the coordinating goroutine in batcher request order, so worker
	// count cannot leak into them either.
	for _, surrogate := range []bool{false, true} {
		ref := runAll(1, surrogate)
		for _, workers := range []int{2, 4, 8, runtime.GOMAXPROCS(0)} {
			got := runAll(workers, surrogate)
			for i, o := range got {
				want := ref[i]
				if o.bestIndex != want.bestIndex || o.bestScore != want.bestScore {
					t.Fatalf("%s (surrogate=%t): best %d/%v with %d workers, %d/%v with 1",
						o.name, surrogate, o.bestIndex, o.bestScore, workers, want.bestIndex, want.bestScore)
				}
				if len(o.indices) != len(want.indices) {
					t.Fatalf("%s (surrogate=%t): %d evaluations with %d workers, %d with 1",
						o.name, surrogate, len(o.indices), workers, len(want.indices))
				}
				for j := range o.indices {
					if o.indices[j] != want.indices[j] {
						t.Fatalf("%s (surrogate=%t): evaluation order diverges at %d with %d workers",
							o.name, surrogate, j, workers)
					}
					if o.accesses[j] != want.accesses[j] || o.footprint[j] != want.footprint[j] {
						t.Fatalf("%s (surrogate=%t): metrics diverge at %d with %d workers",
							o.name, surrogate, j, workers)
					}
				}
			}
		}
	}
}
