package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/trace"
)

// ResultsCache persists profiling results across tool invocations so an
// interrupted or repeated exploration only simulates configurations it
// has not seen before. Entries are keyed by the (configuration ID,
// trace, hierarchy) triple — any change to the workload or platform
// invalidates naturally because the key changes.
//
// On disk the cache is a JSON-lines file, appended in memory and written
// atomically by Save.
type ResultsCache struct {
	path string

	mu      sync.Mutex
	entries map[string]*profile.Metrics
	dirty   bool

	// Accounting, atomically updated so Stats can be read while an
	// exploration's workers are hitting the cache concurrently.
	hits   atomic.Uint64 // Get found the key
	misses atomic.Uint64 // Get found nothing
	stale  atomic.Uint64 // entries dropped at load (version skew) or superseded by Put
	loaded uint64        // entries read from disk at open
}

// cacheVersion is the on-disk schema version. Entries recorded under a
// different version are dropped at load and counted as stale instead of
// poisoning a sweep with results whose semantics have drifted. Entries
// with no version field (seed-era caches) predate the versioning and are
// accepted as current.
const cacheVersion = 1

// cacheEntry is the on-disk record.
type cacheEntry struct {
	Version int              `json:"v,omitempty"`
	Key     string           `json:"key"`
	Metrics *profile.Metrics `json:"metrics"`
}

// OpenResultsCache loads the cache at path, creating an empty one when
// the file does not exist yet.
func OpenResultsCache(path string) (*ResultsCache, error) {
	c := &ResultsCache{path: path, entries: make(map[string]*profile.Metrics)}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e cacheEntry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("core: cache %s line %d: %w", path, line, err)
		}
		if e.Key == "" || e.Metrics == nil {
			return nil, fmt.Errorf("core: cache %s line %d: incomplete entry", path, line)
		}
		if e.Version != 0 && e.Version != cacheVersion {
			c.stale.Add(1)
			c.dirty = true // dropping stale entries rewrites the file on Save
			continue
		}
		c.entries[e.Key] = e.Metrics
		c.loaded++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// CacheKey builds the lookup key for one profiling run.
func CacheKey(configID string, tr *trace.Trace, h *memhier.Hierarchy) string {
	return fmt.Sprintf("%s\x1f%s(%d)\x1f%s", configID, tr.Name, tr.Len(), h.String())
}

// CompiledCacheKey builds the same key from a compiled trace: compilation
// preserves the event count and name, so entries cached under either form
// of the trace are interchangeable.
func CompiledCacheKey(configID string, ct *trace.Compiled, h *memhier.Hierarchy) string {
	return fmt.Sprintf("%s\x1f%s(%d)\x1f%s", configID, ct.Name, ct.Len(), h.String())
}

// Get returns the cached metrics for key, if present.
func (c *ResultsCache) Get(key string) (*profile.Metrics, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.entries[key]
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return m, ok
}

// Put stores metrics under key. Overwriting an existing entry counts the
// old one as stale (it was superseded by a recomputation).
func (c *ResultsCache) Put(key string, m *profile.Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok && old != m {
		c.stale.Add(1)
	}
	c.entries[key] = m
	c.dirty = true
}

// Len returns the number of cached entries.
func (c *ResultsCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStats is the cache's own accounting: lookup outcomes since open,
// plus entries loaded from disk and entries that went stale.
type CacheStats struct {
	Hits   uint64 // Get found the key
	Misses uint64 // Get found nothing
	Stale  uint64 // dropped at load or superseded by Put
	Loaded uint64 // entries read from disk at open
}

// Stats returns a snapshot of the accounting. Safe to call while an
// exploration is using the cache.
func (c *ResultsCache) Stats() CacheStats {
	return CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Stale:  c.stale.Load(),
		Loaded: c.loaded,
	}
}

// Save writes the cache atomically (write temp, rename). A clean cache is
// a no-op.
func (c *ResultsCache) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirty {
		return nil
	}
	tmp := c.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.writeAll(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.path); err != nil {
		os.Remove(tmp)
		return err
	}
	c.dirty = false
	return nil
}

func (c *ResultsCache) writeAll(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for key, m := range c.entries {
		if err := enc.Encode(cacheEntry{Version: cacheVersion, Key: key, Metrics: m}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
