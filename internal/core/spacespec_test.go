package core

import (
	"strings"
	"testing"

	"dmexplore/internal/memhier"
)

const validSpec = `{
  "name": "spec-test",
  "base": {
    "general": {
      "layer": "main-dram",
      "classes": "single",
      "fit": "first",
      "order": "lifo",
      "links": "single",
      "split": "always",
      "coalesce": "immediate",
      "headers": "btag",
      "growth": "chunk",
      "chunk_bytes": 8192
    }
  },
  "axes": [
    {"name": "fit", "options": [
      {"label": "first", "general": {"fit": "first"}},
      {"label": "best",  "general": {"fit": "best"}}
    ]},
    {"name": "pools", "options": [
      {"label": "none"},
      {"label": "d74", "fixed": [{
        "slot_bytes": 74, "match_lo": 74, "match_hi": 74,
        "layer": "L1-scratchpad", "order": "lifo", "links": "single",
        "growth": "chunk", "chunk_slots": 64, "max_bytes": 16384
      }]}
    ]}
  ]
}`

func TestParseSpaceSpec(t *testing.T) {
	space, err := ParseSpaceSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if space.Name != "spec-test" || space.Size() != 4 {
		t.Fatalf("space %s size %d", space.Name, space.Size())
	}
	h := memhier.EmbeddedSoC()
	seen := map[string]bool{}
	for i := 0; i < space.Size(); i++ {
		cfg, labels, err := space.Config(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(h); err != nil {
			t.Fatalf("config %d (%v): %v", i, labels, err)
		}
		seen[cfg.ID()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("duplicate configs: %d distinct", len(seen))
	}

	// The fit patch must only change the fit.
	cfg, labels, _ := space.Config(space.Size() - 1) // best + d74
	if labels[0] != "best" || labels[1] != "d74" {
		t.Fatalf("labels %v", labels)
	}
	if cfg.General.Fit.String() != "best" {
		t.Fatalf("fit not patched: %v", cfg.General.Fit)
	}
	if cfg.General.Order.String() != "lifo" || cfg.General.ChunkBytes != 8192 {
		t.Fatal("patch clobbered unrelated fields")
	}
	if len(cfg.Fixed) != 1 || cfg.Fixed[0].SlotBytes != 74 {
		t.Fatalf("fixed pool missing: %+v", cfg.Fixed)
	}
}

func TestParseSpaceSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"garbage", `{`},
		{"no name", `{"axes":[{"name":"a","options":[{"label":"x"}]}]}`},
		{"no axes", `{"name":"x"}`},
		{"empty axis", `{"name":"x","axes":[{"name":"a"}]}`},
		{"bad patch json", `{"name":"x","axes":[{"name":"a","options":[
			{"label":"x","general":{"fit": 3.14}}]}]}`},
		{"unknown patch field", `{"name":"x","axes":[{"name":"a","options":[
			{"label":"x","general":{"fits":"first"}}]}]}`},
		{"bad enum in patch", `{"name":"x","axes":[{"name":"a","options":[
			{"label":"x","general":{"fit":"bogus"}}]}]}`},
		{"dup labels", `{"name":"x","axes":[{"name":"a","options":[
			{"label":"x"},{"label":"x"}]}]}`},
		{"unknown top field", `{"name":"x","nope":1,"axes":[{"name":"a","options":[{"label":"x"}]}]}`},
	}
	for _, c := range cases {
		if _, err := ParseSpaceSpec([]byte(c.spec)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLoadSpaceSpec(t *testing.T) {
	space, err := LoadSpaceSpec(strings.NewReader(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if space.Size() != 4 {
		t.Fatalf("size %d", space.Size())
	}
}

func TestSpaceSpecExplores(t *testing.T) {
	space, err := ParseSpaceSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t)}
	results, err := r.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	for _, res := range results {
		if res.Metrics == nil || res.Metrics.Accesses == 0 {
			t.Fatalf("config %d empty", res.Index)
		}
	}
}
