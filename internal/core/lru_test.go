package core

import "testing"

// TestLRUEvictsColdEntries pins the size-aware bound: inserts past the
// budget drop the least-recently-used entries first, and a get refreshes
// recency.
func TestLRUEvictsColdEntries(t *testing.T) {
	c := newLRUCache[int](100)
	c.put("a", 1, 40)
	c.put("b", 2, 40)
	if _, ok := c.get("a"); !ok { // a is now hotter than b
		t.Fatal("a missing before any eviction")
	}
	c.put("c", 3, 40) // 120 > 100: evicts b (the cold end)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past the budget")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted out of recency order", k)
		}
	}
	if c.len() != 2 || c.bytes() != 80 {
		t.Fatalf("len %d bytes %d, want 2/80", c.len(), c.bytes())
	}
	if c.evicted() != 1 {
		t.Fatalf("evictions %d, want 1", c.evicted())
	}
}

// TestLRUResizeAppliesBudget covers the two-phase sizing the session
// uses: entries are claimed at a placeholder cost and resized once
// built; the resize itself must enforce the budget without evicting the
// entry just resized.
func TestLRUResizeAppliesBudget(t *testing.T) {
	c := newLRUCache[int](100)
	c.put("a", 1, 10)
	c.put("b", 2, 10)
	c.resize("b", 95) // 105 > 100: evicts a, never b
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived the resize overflow")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("resize evicted the entry being resized")
	}
	if c.bytes() != 95 {
		t.Fatalf("bytes %d, want 95", c.bytes())
	}
	// Resizing an evicted key is a no-op, not a resurrection.
	c.resize("a", 1)
	if c.len() != 1 {
		t.Fatalf("resize of an evicted key changed the cache: len %d", c.len())
	}
}

// TestLRUKeepsOversizedNewest: an entry bigger than the whole budget is
// still admitted (the caller is about to use it) and everything else
// goes.
func TestLRUKeepsOversizedNewest(t *testing.T) {
	c := newLRUCache[int](100)
	c.put("a", 1, 50)
	c.put("big", 2, 500)
	if _, ok := c.get("big"); !ok {
		t.Fatal("oversized entry evicted on insert")
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("cold entry survived an oversized insert")
	}
	if c.len() != 1 {
		t.Fatalf("len %d, want 1", c.len())
	}
}

// TestLRUUnbounded: budget <= 0 never evicts.
func TestLRUUnbounded(t *testing.T) {
	c := newLRUCache[int](0)
	for i, k := range []string{"a", "b", "c", "d"} {
		c.put(k, i, 1 << 30)
	}
	if c.len() != 4 || c.evicted() != 0 {
		t.Fatalf("unbounded cache evicted: len %d evictions %d", c.len(), c.evicted())
	}
}

// TestLRUReplace: re-putting a key updates value and size in place.
func TestLRUReplace(t *testing.T) {
	c := newLRUCache[int](100)
	c.put("a", 1, 30)
	c.put("a", 2, 60)
	if v, ok := c.get("a"); !ok || v != 2 {
		t.Fatalf("replaced entry reads %d/%v, want 2/true", v, ok)
	}
	if c.len() != 1 || c.bytes() != 60 {
		t.Fatalf("len %d bytes %d, want 1/60", c.len(), c.bytes())
	}
}
