package core

import (
	"fmt"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
)

// Case-study exploration spaces. Each function returns the "list of
// arrays" for one application, expressed against the EmbeddedSoC
// hierarchy preset (64 KB scratchpad + SDRAM). The Full variants span the
// complete parameter product the paper's tooling would generate ("tens of
// thousands of highly customized DM allocators"); the narrow variants are
// the curated sub-spaces the benchmark harness sweeps exhaustively.

// baseGeneral returns the general-pool starting point shared by spaces.
func baseGeneral() alloc.GeneralConfig {
	return alloc.GeneralConfig{
		Layer:      memhier.LayerDRAM,
		Classes:    "single",
		Fit:        alloc.FirstFit,
		Order:      alloc.LIFO,
		Links:      alloc.SingleLink,
		Split:      alloc.SplitAlways,
		Coalesce:   alloc.CoalesceImmediate,
		Headers:    alloc.HeaderBoundaryTag,
		Growth:     alloc.GrowFixedChunk,
		ChunkBytes: 8 * 1024,
	}
}

// dedicatedPool builds a dedicated pool serving exactly one block size on
// the given layer.
func dedicatedPool(size int64, layer string, chunkSlots int, maxBytes int64) alloc.FixedConfig {
	return alloc.FixedConfig{
		SlotBytes: size, MatchLo: size, MatchHi: size,
		Layer: layer,
		Order: alloc.LIFO, Links: alloc.SingleLink,
		Growth: alloc.GrowFixedChunk, ChunkSlots: chunkSlots,
		MaxBytes: maxBytes,
	}
}

// mtuPool builds a buffer pool serving the near-MTU band [mtu-200, mtu]
// from mtu-sized slots — O(1) like any fixed pool, but paying internal
// fragmentation on the variable frame sizes it absorbs.
func mtuPool(mtu int64, layer string, chunkSlots int) alloc.FixedConfig {
	return alloc.FixedConfig{
		SlotBytes: mtu, MatchLo: mtu - 200, MatchHi: mtu,
		Layer: layer,
		Order: alloc.LIFO, Links: alloc.SingleLink,
		Growth: alloc.GrowFixedChunk, ChunkSlots: chunkSlots,
	}
}

// poolsAxis enumerates dedicated-pool selections for the dominant sizes
// of a workload: none, each alone, both; the @sp variants additionally
// place the small-block pool on the scratchpad. Dedicated pools reserve
// generously-sized slabs (the embedded practice: provision for the burst
// peak), which buys their O(1) speed at a footprint premium — the
// fast-but-fat end of the trade-off curve.
func poolsAxis(small, large int64) Axis {
	spBudget := int64(48 * 1024) // scratchpad pool budget
	return Axis{
		Name: "pools",
		Options: []Option{
			{Label: "none", Apply: func(c *alloc.Config) {}},
			{Label: fmt.Sprintf("d%d", small), Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed, dedicatedPool(small, memhier.LayerDRAM, 512, 0))
			}},
			{Label: fmt.Sprintf("d%d@sp", small), Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed, dedicatedPool(small, memhier.LayerScratchpad, 512, spBudget))
			}},
			{Label: fmt.Sprintf("d%d+d%d", small, large), Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed,
					dedicatedPool(small, memhier.LayerDRAM, 512, 0),
					mtuPool(large, memhier.LayerDRAM, 128))
			}},
			{Label: fmt.Sprintf("d%d@sp+d%d", small, large), Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed,
					dedicatedPool(small, memhier.LayerScratchpad, 512, spBudget),
					mtuPool(large, memhier.LayerDRAM, 128))
			}},
		},
	}
}

func classesAxis() Axis {
	return Axis{
		Name: "classes",
		Options: []Option{
			// One unsegregated list: slowest searches, tightest packing.
			{Label: "single", Apply: func(c *alloc.Config) { c.General.Classes = "single" }},
			// Segregated storage, Kingsley-style: O(1) bins, up to 2x
			// internal fragmentation.
			{Label: "pow2", Apply: func(c *alloc.Config) {
				c.General.Classes = "pow2:16:65536"
				c.General.RoundToClass = true
			}},
			// Segregated storage with fine classes: fast bins, bounded
			// per-block waste, but memory strands in per-size islands.
			{Label: "linear", Apply: func(c *alloc.Config) {
				c.General.Classes = "linear:64:2048"
				c.General.RoundToClass = true
			}},
			// Segregated fit, dlmalloc-style: variable blocks indexed by
			// size range.
			{Label: "segfit", Apply: func(c *alloc.Config) { c.General.Classes = "pow2:16:65536" }},
			// Binary-buddy system: O(log n) with pow2 fragmentation.
			{Label: "buddy", Apply: func(c *alloc.Config) { c.General.Classes = "buddy:64:65536" }},
		},
	}
}

func fitAxis() Axis {
	mk := func(f alloc.FitPolicy) Option {
		return Option{Label: f.String(), Apply: func(c *alloc.Config) { c.General.Fit = f }}
	}
	return Axis{Name: "fit", Options: []Option{
		mk(alloc.FirstFit), mk(alloc.NextFit), mk(alloc.BestFit), mk(alloc.WorstFit),
	}}
}

func orderAxis() Axis {
	mk := func(o alloc.ListOrder) Option {
		return Option{Label: o.String(), Apply: func(c *alloc.Config) { c.General.Order = o }}
	}
	return Axis{Name: "order", Options: []Option{mk(alloc.LIFO), mk(alloc.FIFO), mk(alloc.AddrOrder)}}
}

func linksAxis() Axis {
	mk := func(l alloc.ListLinks) Option {
		return Option{Label: l.String(), Apply: func(c *alloc.Config) { c.General.Links = l }}
	}
	return Axis{Name: "links", Options: []Option{mk(alloc.SingleLink), mk(alloc.DoubleLink)}}
}

func coalesceAxis() Axis {
	return Axis{Name: "coalesce", Options: []Option{
		{Label: "never", Apply: func(c *alloc.Config) { c.General.Coalesce = alloc.CoalesceNever }},
		{Label: "immediate", Apply: func(c *alloc.Config) { c.General.Coalesce = alloc.CoalesceImmediate }},
		{Label: "deferred", Apply: func(c *alloc.Config) {
			c.General.Coalesce = alloc.CoalesceDeferred
			c.General.CoalesceEvery = 32
		}},
	}}
}

func splitAxis() Axis {
	return Axis{Name: "split", Options: []Option{
		{Label: "never", Apply: func(c *alloc.Config) { c.General.Split = alloc.SplitNever }},
		{Label: "always", Apply: func(c *alloc.Config) { c.General.Split = alloc.SplitAlways }},
		{Label: "thresh", Apply: func(c *alloc.Config) {
			c.General.Split = alloc.SplitThreshold
			c.General.SplitThreshold = 128
		}},
	}}
}

// reclaimAxis toggles chunk reclamation on every dedicated pool.
func reclaimAxis() Axis {
	return Axis{Name: "reclaim", Options: []Option{
		{Label: "keep", Apply: func(c *alloc.Config) {}},
		{Label: "reclaim", Apply: func(c *alloc.Config) {
			for i := range c.Fixed {
				c.Fixed[i].Reclaim = true
			}
		}},
	}}
}

func headersAxis() Axis {
	return Axis{Name: "headers", Options: []Option{
		{Label: "minimal", Apply: func(c *alloc.Config) { c.General.Headers = alloc.HeaderMinimal }},
		{Label: "btag", Apply: func(c *alloc.Config) { c.General.Headers = alloc.HeaderBoundaryTag }},
	}}
}

func growthAxis() Axis {
	return Axis{Name: "growth", Options: []Option{
		{Label: "chunk8k", Apply: func(c *alloc.Config) {
			c.General.Growth = alloc.GrowFixedChunk
			c.General.ChunkBytes = 8 * 1024
		}},
		{Label: "chunk64k", Apply: func(c *alloc.Config) {
			c.General.Growth = alloc.GrowFixedChunk
			c.General.ChunkBytes = 64 * 1024
		}},
		{Label: "double", Apply: func(c *alloc.Config) {
			c.General.Growth = alloc.GrowDouble
			c.General.ChunkBytes = 8 * 1024
		}},
	}}
}

// FullEasyportSpace is the complete parameter product for the Easyport
// case study: 5·2·5·4·3·2·3·3·2·3 = 64,800 configurations (experiment E5's
// "tens of thousands").
func FullEasyportSpace() *Space {
	return &Space{
		Name: "easyport-full",
		Base: alloc.Config{General: baseGeneral()},
		Axes: []Axis{
			poolsAxis(74, 1500),
			reclaimAxis(),
			classesAxis(),
			fitAxis(),
			orderAxis(),
			linksAxis(),
			coalesceAxis(),
			splitAxis(),
			headersAxis(),
			growthAxis(),
		},
	}
}

// EasyportSpace is the curated sub-space the benchmark harness sweeps
// exhaustively (E1-E3, F1): the axes that move the Easyport metrics most,
// 5·4·2·2·2·2·2 = 640 configurations.
func EasyportSpace() *Space {
	return &Space{
		Name: "easyport",
		Base: alloc.Config{General: baseGeneral()},
		Axes: []Axis{
			poolsAxis(74, 1500),
			{Name: "classes", Options: classesAxis().Options[:4]},                              // single, pow2, linear, segfit
			{Name: "fit", Options: []Option{fitAxis().Options[0], fitAxis().Options[2]}},       // first, best
			{Name: "order", Options: []Option{orderAxis().Options[0], orderAxis().Options[2]}}, // lifo, addr
			{Name: "coalesce", Options: coalesceAxis().Options[:2]},
			{Name: "split", Options: splitAxis().Options[:2]},
			{Name: "growth", Options: []Option{growthAxis().Options[0], growthAxis().Options[2]}}, // chunk16k, double
		},
	}
}

// VTCSpace is the curated sub-space for the MPEG-4 VTC case study (E4).
// VTC's dominant small sizes are the zerotree node records; its large
// buffers stay in DRAM. 4·3·2·2·3·2 = 288 configurations.
func VTCSpace() *Space {
	spBudget := int64(40 * 1024)
	pools := Axis{
		Name: "pools",
		Options: []Option{
			{Label: "none", Apply: func(c *alloc.Config) {}},
			{Label: "dnodes", Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed,
					alloc.FixedConfig{SlotBytes: 64, MatchLo: 17, MatchHi: 64,
						Layer: memhier.LayerDRAM, Order: alloc.LIFO, Links: alloc.SingleLink,
						Growth: alloc.GrowFixedChunk, ChunkSlots: 128})
			}},
			{Label: "dnodes@sp", Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed,
					alloc.FixedConfig{SlotBytes: 64, MatchLo: 17, MatchHi: 64,
						Layer: memhier.LayerScratchpad, Order: alloc.LIFO, Links: alloc.SingleLink,
						Growth: alloc.GrowFixedChunk, ChunkSlots: 128, MaxBytes: spBudget})
			}},
			{Label: "dnodes@sp+d16", Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed,
					alloc.FixedConfig{SlotBytes: 16, MatchLo: 1, MatchHi: 16,
						Layer: memhier.LayerScratchpad, Order: alloc.LIFO, Links: alloc.SingleLink,
						Growth: alloc.GrowFixedChunk, ChunkSlots: 128, MaxBytes: 16 * 1024},
					alloc.FixedConfig{SlotBytes: 64, MatchLo: 17, MatchHi: 64,
						Layer: memhier.LayerScratchpad, Order: alloc.LIFO, Links: alloc.SingleLink,
						Growth: alloc.GrowFixedChunk, ChunkSlots: 128, MaxBytes: spBudget})
			}},
		},
	}
	return &Space{
		Name: "vtc",
		Base: alloc.Config{General: baseGeneral()},
		Axes: []Axis{
			pools,
			{Name: "classes", Options: classesAxis().Options[:3]},
			{Name: "fit", Options: fitAxis().Options[:2]},
			{Name: "coalesce", Options: coalesceAxis().Options[:2]},
			splitAxis(),
			{Name: "growth", Options: []Option{growthAxis().Options[0], growthAxis().Options[1]}},
		},
	}
}
