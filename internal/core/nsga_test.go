package core

import (
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/pareto"
	"dmexplore/internal/profile"
)

func TestEvolveValidation(t *testing.T) {
	r := searchRunner(t)
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	if _, err := r.Evolve(tinySpace(), []string{profile.ObjAccesses}, EvolveOptions{}); err == nil {
		t.Fatal("single objective accepted")
	}
	if _, err := r.Evolve(tinySpace(), objs, EvolveOptions{Population: 3, Budget: 100}); err == nil {
		t.Fatal("odd population accepted")
	}
	if _, err := r.Evolve(tinySpace(), objs, EvolveOptions{Population: 8, Budget: 4}); err == nil {
		t.Fatal("budget below population accepted")
	}
}

func TestEvolveTinySpaceFindsTrueFront(t *testing.T) {
	r := searchRunner(t)
	space := tinySpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	results, err := r.Evolve(space, objs, EvolveOptions{Population: 4, Budget: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny space (6 configs) with budget 24: everything gets evaluated.
	approx, _, err := ParetoSet(Feasible(results), objs)
	if err != nil {
		t.Fatal(err)
	}
	all, err := r.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	truth, _, err := ParetoSet(Feasible(all), objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) != len(truth) {
		t.Fatalf("front %d vs true %d", len(approx), len(truth))
	}
}

func TestEvolveApproximatesLargeFront(t *testing.T) {
	// On the 640-config Easyport space with a small trace, the
	// evolutionary front's hypervolume must dominate random sampling at
	// the same budget.
	r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: 4}
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	const budget = 128

	evolved, err := r.Evolve(space, objs, EvolveOptions{Population: 16, Budget: budget, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(evolved) > budget {
		t.Fatalf("evolve used %d > budget %d", len(evolved), budget)
	}
	sampled, err := r.Sample(space, budget, 5)
	if err != nil {
		t.Fatal(err)
	}

	_, ePoints, err := ParetoSet(Feasible(evolved), objs)
	if err != nil {
		t.Fatal(err)
	}
	_, sPoints, err := ParetoSet(Feasible(sampled), objs)
	if err != nil {
		t.Fatal(err)
	}
	ref := [2]float64{}
	for _, pts := range [][]pareto.Point{ePoints, sPoints} {
		for _, p := range pts {
			for d := 0; d < 2; d++ {
				if p.Values[d] > ref[d] {
					ref[d] = p.Values[d]
				}
			}
		}
	}
	ref[0] *= 1.01
	ref[1] *= 1.01
	ehv := pareto.Hypervolume2D(ePoints, ref)
	shv := pareto.Hypervolume2D(sPoints, ref)
	if ehv < shv*0.98 {
		t.Fatalf("evolved hypervolume %.4g clearly below random %.4g", ehv, shv)
	}
}

func TestEvolveDeterministic(t *testing.T) {
	r := searchRunner(t)
	space := EasyportSpace()
	objs := []string{profile.ObjAccesses, profile.ObjFootprint}
	opts := EvolveOptions{Population: 8, Budget: 40, Seed: 11}
	a, err := r.Evolve(space, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Evolve(space, objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Index != b[i].Index {
			t.Fatalf("evaluation order differs at %d", i)
		}
	}
}

func TestMustAtoi(t *testing.T) {
	for _, c := range []struct {
		s    string
		want int
	}{{"0", 0}, {"7", 7}, {"123", 123}, {"45678", 45678}} {
		if got := mustAtoi(c.s); got != c.want {
			t.Fatalf("mustAtoi(%q) = %d", c.s, got)
		}
	}
}

func TestCrossoverAndMutateStayInSpace(t *testing.T) {
	space := EasyportSpace()
	rng := newTestRNG()
	for i := 0; i < 500; i++ {
		a := rng.Intn(space.Size())
		b := rng.Intn(space.Size())
		child := crossover(rng, space, a, b)
		if child < 0 || child >= space.Size() {
			t.Fatalf("crossover escaped: %d", child)
		}
		m := mutate(rng, space, child, 0.3)
		if m < 0 || m >= space.Size() {
			t.Fatalf("mutation escaped: %d", m)
		}
	}
}
