package core

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/telemetry"
)

// TestRunnerTelemetryAccounting runs a cold sweep, then a fully cached
// one, and requires the merged snapshot to account for every
// configuration exactly: sims + cache hits + memo hits == sweep size,
// per phase.
func TestRunnerTelemetryAccounting(t *testing.T) {
	tr := tinyTrace(t)
	space := tinySpace()
	size := space.Size()
	cache, err := OpenResultsCache(filepath.Join(t.TempDir(), "cache.jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	col := telemetry.NewCollector(4)
	r := &Runner{
		Hierarchy: memhier.EmbeddedSoC(), Trace: tr,
		Cache: cache, Telemetry: col, Workers: 4,
	}
	cold, err := r.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	if int(s.Sims+s.CacheHits+s.MemoHits) != size {
		t.Fatalf("cold sweep unaccounted: %+v", s)
	}
	if s.CacheHits != 0 || int(s.CacheMisses) != int(s.Sims) {
		t.Fatalf("cold sweep cache counts: %+v", s)
	}
	if s.Events == 0 || s.SimSecTotal <= 0 {
		t.Fatalf("no replay telemetry: %+v", s)
	}
	for _, res := range cold {
		if res.Duration <= 0 {
			t.Fatalf("config %d: no duration", res.Index)
		}
		if res.CacheHit {
			t.Fatalf("config %d: phantom cache hit", res.Index)
		}
	}

	// Warm phase into the same collector: every configuration must be a
	// cache or memo hit, zero new simulations.
	warm, err := r.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	s2 := col.Snapshot()
	if s2.Sims != s.Sims {
		t.Fatalf("warm sweep simulated: %+v", s2)
	}
	if int(s2.CacheHits+s2.MemoHits-s.MemoHits) != size {
		t.Fatalf("warm sweep not cache-served: %+v", s2)
	}
	hits := 0
	for _, res := range warm {
		if res.CacheHit {
			hits++
		}
	}
	if hits != int(s2.CacheHits) {
		t.Fatalf("result flags (%d) disagree with telemetry (%d)", hits, s2.CacheHits)
	}
	cs := cache.Stats()
	if cs.Hits != s2.CacheHits || cs.Misses != s2.CacheMisses {
		t.Fatalf("cache stats %+v disagree with telemetry %+v", cs, s2)
	}
}

// TestRunnerObserverJournals wires the Observer to a journal and checks
// one record per configuration with matching flags.
func TestRunnerObserverJournals(t *testing.T) {
	tr := tinyTrace(t)
	space := tinySpace()
	var (
		mu   sync.Mutex
		recs []telemetry.Record
	)
	r := &Runner{
		Hierarchy: memhier.EmbeddedSoC(), Trace: tr,
		Observer: func(res Result) {
			rec := res.JournalRecord()
			mu.Lock()
			recs = append(recs, rec)
			mu.Unlock()
		},
	}
	if _, err := r.Explore(space); err != nil {
		t.Fatal(err)
	}
	if len(recs) != space.Size() {
		t.Fatalf("journaled %d records for %d configurations", len(recs), space.Size())
	}
	seen := make(map[int]bool)
	for _, rec := range recs {
		if seen[rec.Index] {
			t.Fatalf("configuration %d journaled twice", rec.Index)
		}
		seen[rec.Index] = true
		if rec.Error != "" || rec.Accesses == 0 || rec.DurationMS <= 0 {
			t.Fatalf("bad record: %+v", rec)
		}
		if len(rec.Labels) != 2 {
			t.Fatalf("record labels: %+v", rec)
		}
	}
}

// TestRunnerErrorCarriesLabels pins the error-reporting fix: a failing
// configuration surfaces its index and axis labels in both the returned
// error and the journaled record.
func TestRunnerErrorCarriesLabels(t *testing.T) {
	tr := tinyTrace(t)
	space := tinySpace()
	// Sabotage the space: option "best" of axis "fit" now yields a
	// configuration that cannot build (unknown size-class spec).
	space.Axes[0].Options[1].Apply = func(c *alloc.Config) { c.General.Classes = "bogus" }

	col := telemetry.NewCollector(2)
	r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Telemetry: col, Workers: 2}
	var (
		mu   sync.Mutex
		recs []telemetry.Record
	)
	r.Observer = func(res Result) {
		mu.Lock()
		recs = append(recs, res.JournalRecord())
		mu.Unlock()
	}
	_, err := r.Explore(space)
	if err == nil {
		t.Fatal("sabotaged space explored cleanly")
	}
	msg := err.Error()
	if !strings.Contains(msg, "configuration") || !strings.Contains(msg, "best") {
		t.Fatalf("error lacks index/labels: %q", msg)
	}
	if s := col.Snapshot(); s.ErrorsSim == 0 {
		t.Fatalf("sim error not counted: %+v", s)
	}
	found := false
	for _, rec := range recs {
		if rec.Error != "" {
			found = true
			if !strings.Contains(rec.Error, "best") {
				t.Fatalf("journaled error lacks labels: %q", rec.Error)
			}
		}
	}
	if !found {
		t.Fatal("error never journaled")
	}
}
