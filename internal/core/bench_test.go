package core

import (
	"fmt"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// BenchmarkRunnerFanout measures exploration scaling: one compiled trace,
// a fixed 64-configuration sample of the Easyport space, profiled with
// 1/2/4/8 workers. The configs/sec metric tracks how well the lock-free
// work distribution and per-worker replayers convert cores to throughput.
func BenchmarkRunnerFanout(b *testing.B) {
	p := workload.DefaultEasyportParams()
	p.Packets = 1500
	tr, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		b.Fatal(err)
	}
	space := EasyportSpace()
	const sampleN = 64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := &Runner{
				Hierarchy: memhier.EmbeddedSoC(),
				Trace:     tr,
				Compiled:  ct,
				Workers:   workers,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Sample(space, sampleN, 7); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			configsPerSec := float64(sampleN) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(configsPerSec, "configs/sec")
		})
	}
}
