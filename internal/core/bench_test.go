package core

import (
	"fmt"
	"testing"
	"time"

	"dmexplore/internal/memhier"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// BenchmarkNeighbors pins the neighbourhood-enumeration fast path: the
// scratch variant must run allocation-free, which the guided strategies
// rely on when they enumerate a neighbourhood per climb step.
func BenchmarkNeighbors(b *testing.B) {
	s := FullEasyportSpace()
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.neighbors(i % s.Size())
		}
	})
	b.Run("scratch", func(b *testing.B) {
		scratch := newNeighborScratch(s)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch.neighbors(s, i%s.Size())
		}
	})
}

// BenchmarkRunnerFanout measures exploration scaling: one compiled trace,
// a fixed 64-configuration sample of the Easyport space, profiled with
// 1/2/4/8 workers. The configs/sec metric tracks how well the lock-free
// work distribution and per-worker replayers convert cores to throughput.
func BenchmarkRunnerFanout(b *testing.B) {
	p := workload.DefaultEasyportParams()
	p.Packets = 1500
	tr, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		b.Fatal(err)
	}
	space := EasyportSpace()
	const sampleN = 64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := &Runner{
				Hierarchy: memhier.EmbeddedSoC(),
				Trace:     tr,
				Compiled:  ct,
				Workers:   workers,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Sample(space, sampleN, 7); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			configsPerSec := float64(sampleN) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(configsPerSec, "configs/sec")
		})
	}
}

// BenchmarkEvolveWorkers measures generation-batched NSGA-II under a
// latency-modelled evaluation backend (see Runner.EvalLatency): with the
// per-generation offspring wave spread across the pool, wall-clock should
// shrink near-linearly in workers until the wave width is exhausted.
func BenchmarkEvolveWorkers(b *testing.B) {
	p := workload.DefaultEasyportParams()
	p.Packets = 400
	tr, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		b.Fatal(err)
	}
	space := FullEasyportSpace()
	objs := []string{"accesses", "footprint"}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := &Runner{
				Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Compiled: ct,
				Workers: workers, EvalLatency: 2 * time.Millisecond,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := r.Evolve(space, objs, EvolveOptions{
					Population: 16, Budget: 64, Seed: 9,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}
