package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"dmexplore/internal/profile"
)

// PoolMemoStore persists the session pool-run memo across tool
// invocations, next to the results cache. The memo key — FNV-1a content
// hash of the recorded fallback op sequence plus the canonical
// general-pool parameter vector (see poolRunKey) — is process-
// independent, so a run recorded by yesterday's sweep composes today's
// crossover offspring with zero simulation. Reuse stays collision-safe:
// the session verifies the full op sequence against the probing
// partition (PoolRun.MatchesOps) before composing, exactly as it does
// for in-session memo hits.
//
// On disk the store is a JSON-lines file (one PoolRunState per line),
// schema-versioned like ResultsCache: entries recorded under a different
// version are dropped at load and counted stale. The store honors the
// same byte budget as the in-session memo (-pool-memo-mb): oldest
// entries beyond the budget are dropped at load and before Save.
type PoolMemoStore struct {
	path   string
	budget int64 // retained-bytes bound; 0 = unbounded

	mu      sync.Mutex
	entries map[string]*profile.PoolRun
	order   []string // insertion order, oldest first — the eviction order
	bytes   int64
	dirty   bool

	hits    atomic.Uint64
	misses  atomic.Uint64
	stale   atomic.Uint64 // version skew at load
	dropped atomic.Uint64 // budget evictions (load or Put)
	loaded  uint64
}

// poolMemoVersion is the on-disk schema version of the persistent
// pool-run memo. Any change to PoolRunState or to the key derivation
// must bump it so stale entries are purged instead of composing wrong
// metrics.
const poolMemoVersion = 1

// poolMemoEntry is the on-disk record.
type poolMemoEntry struct {
	Version int                   `json:"v"`
	Key     string                `json:"key"`
	Run     *profile.PoolRunState `json:"run"`
}

// OpenPoolMemoStore loads the persistent pool-run memo at path, creating
// an empty store when the file does not exist yet. budgetBytes bounds
// the retained entries (oldest dropped first); <= 0 is unbounded.
func OpenPoolMemoStore(path string, budgetBytes int64) (*PoolMemoStore, error) {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	st := &PoolMemoStore{
		path:    path,
		budget:  budgetBytes,
		entries: make(map[string]*profile.PoolRun),
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e poolMemoEntry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("core: pool memo %s line %d: %w", path, line, err)
		}
		if e.Key == "" || e.Run == nil {
			return nil, fmt.Errorf("core: pool memo %s line %d: incomplete entry", path, line)
		}
		if e.Version != poolMemoVersion {
			st.stale.Add(1)
			st.dirty = true // dropping stale entries rewrites the file on Save
			continue
		}
		run := profile.PoolRunFromState(*e.Run)
		if run == nil {
			// Shape-invalid state (truncated or hand-edited): drop it.
			st.stale.Add(1)
			st.dirty = true
			continue
		}
		if _, ok := st.entries[e.Key]; ok {
			continue
		}
		st.entries[e.Key] = run
		st.order = append(st.order, e.Key)
		st.bytes += poolMemoEntryBytes(run)
		st.loaded++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	st.enforceBudget()
	return st, nil
}

// poolMemoEntryBytes is the budget charge for one stored run: the run's
// own footprint plus its ops slice (which, unlike the in-session memo,
// is owned by the store, not shared with a live partition) and the map
// and order-list slots.
func poolMemoEntryBytes(run *profile.PoolRun) int64 {
	return run.MemBytes() + int64(run.Ops())*8 + 128
}

// enforceBudget drops oldest entries until the store fits. Callers hold mu.
func (st *PoolMemoStore) enforceBudget() {
	if st.budget <= 0 {
		return
	}
	for st.bytes > st.budget && len(st.order) > 0 {
		key := st.order[0]
		st.order = st.order[1:]
		if run, ok := st.entries[key]; ok {
			st.bytes -= poolMemoEntryBytes(run)
			delete(st.entries, key)
			st.dropped.Add(1)
			st.dirty = true
		}
	}
}

// Get returns the stored run for key, if present. The caller must verify
// the run against its partition (MatchesOps) before composing with it.
func (st *PoolMemoStore) Get(key string) (*profile.PoolRun, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	run, ok := st.entries[key]
	if ok {
		st.hits.Add(1)
	} else {
		st.misses.Add(1)
	}
	return run, ok
}

// Put stores a freshly built run under key. First write wins: runs are
// content-keyed, so a duplicate Put carries an identical run.
func (st *PoolMemoStore) Put(key string, run *profile.PoolRun) {
	if run == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.entries[key]; ok {
		return
	}
	st.entries[key] = run
	st.order = append(st.order, key)
	st.bytes += poolMemoEntryBytes(run)
	st.dirty = true
	st.enforceBudget()
}

// Len returns the number of stored runs.
func (st *PoolMemoStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// PoolMemoStats is the store's accounting since open.
type PoolMemoStats struct {
	Hits    uint64 // Get found the key
	Misses  uint64 // Get found nothing
	Stale   uint64 // version-skewed or shape-invalid entries dropped at load
	Dropped uint64 // budget evictions
	Loaded  uint64 // entries read from disk at open
	Bytes   int64  // current retained-byte estimate
}

// Stats returns a snapshot of the accounting. Safe to call while an
// exploration is using the store.
func (st *PoolMemoStore) Stats() PoolMemoStats {
	st.mu.Lock()
	bytes := st.bytes
	st.mu.Unlock()
	return PoolMemoStats{
		Hits:    st.hits.Load(),
		Misses:  st.misses.Load(),
		Stale:   st.stale.Load(),
		Dropped: st.dropped.Load(),
		Loaded:  st.loaded,
		Bytes:   bytes,
	}
}

// Save writes the store atomically (write temp, rename), oldest entry
// first so a later load under the same budget keeps the same survivors.
// A clean store is a no-op.
func (st *PoolMemoStore) Save() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.dirty {
		return nil
	}
	tmp := st.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := st.writeAll(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, st.path); err != nil {
		os.Remove(tmp)
		return err
	}
	st.dirty = false
	return nil
}

func (st *PoolMemoStore) writeAll(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, key := range st.order {
		run, ok := st.entries[key]
		if !ok {
			continue
		}
		state := run.State()
		if err := enc.Encode(poolMemoEntry{Version: poolMemoVersion, Key: key, Run: &state}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
