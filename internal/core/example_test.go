package core_test

import (
	"fmt"
	"log"

	"dmexplore/internal/alloc"
	"dmexplore/internal/core"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/workload"
)

// Explore a two-axis space exhaustively and reduce it to the Pareto
// front — the whole tool flow in a few lines.
func ExampleRunner_Explore() {
	params := workload.DefaultSyntheticParams()
	params.Ops = 2000
	tr, err := params.Generate()
	if err != nil {
		log.Fatal(err)
	}

	base := alloc.Config{General: alloc.GeneralConfig{
		Layer: memhier.LayerDRAM, Classes: "single",
		Fit: alloc.FirstFit, Order: alloc.LIFO, Links: alloc.SingleLink,
		Split: alloc.SplitAlways, Coalesce: alloc.CoalesceImmediate,
		Headers: alloc.HeaderBoundaryTag, Growth: alloc.GrowFixedChunk,
		ChunkBytes: 8 * 1024,
	}}
	space := &core.Space{
		Name: "demo",
		Base: base,
		Axes: []core.Axis{
			{Name: "fit", Options: []core.Option{
				{Label: "first", Apply: func(c *alloc.Config) { c.General.Fit = alloc.FirstFit }},
				{Label: "best", Apply: func(c *alloc.Config) { c.General.Fit = alloc.BestFit }},
			}},
			{Name: "coalesce", Options: []core.Option{
				{Label: "never", Apply: func(c *alloc.Config) { c.General.Coalesce = alloc.CoalesceNever }},
				{Label: "immediate", Apply: func(c *alloc.Config) { c.General.Coalesce = alloc.CoalesceImmediate }},
			}},
		},
	}

	runner := &core.Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Workers: 1}
	results, err := runner.Explore(space)
	if err != nil {
		log.Fatal(err)
	}
	front, _, err := core.ParetoSet(core.Feasible(results),
		[]string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("configurations:", space.Size())
	fmt.Println("front size >= 1:", len(front) >= 1)
	// Output:
	// configurations: 4
	// front size >= 1: true
}

// ReductionPercent converts the paper's "factor N" phrasing into its
// "% decrease" phrasing.
func ExampleReductionPercent() {
	fmt.Printf("%.0f%% %.0f%%\n",
		core.ReductionPercent(4.1), core.ReductionPercent(2.9))
	// Output: 76% 66%
}
