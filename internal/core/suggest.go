package core

import (
	"fmt"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/trace"
)

// SuggestSpace closes the paper's automation loop: given the application's
// allocation profile (from one profiling run of the unmodified program)
// and the target hierarchy, it derives the exploration input — dedicated
// pool candidates for the dominant block sizes (sized to the observed
// peaks, placed on every affordable layer), plus the standard policy axes.
// The returned Space is ready for Runner.Explore.
func SuggestSpace(name string, prof *trace.Profile, h *memhier.Hierarchy) (*Space, error) {
	if prof == nil || prof.Allocs == 0 {
		return nil, fmt.Errorf("core: empty profile")
	}
	dominant := prof.DominantSizes(2)
	if len(dominant) == 0 {
		return nil, fmt.Errorf("core: no dominant sizes")
	}

	mainLayer := h.Layer(h.Largest()).Name

	// Pool axis: none, each dominant size alone, both; each bounded layer
	// that could hold a meaningful share of the small pool gets a
	// placement variant.
	poolFor := func(vc dominantSize, layer string, budget int64) alloc.FixedConfig {
		chunk := int(vc.Count / 8)
		if chunk < 16 {
			chunk = 16
		}
		if chunk > 512 {
			chunk = 512
		}
		return alloc.FixedConfig{
			SlotBytes: vc.Value, MatchLo: vc.Value, MatchHi: vc.Value,
			Layer: layer,
			Order: alloc.LIFO, Links: alloc.SingleLink,
			Growth: alloc.GrowFixedChunk, ChunkSlots: chunk,
			MaxBytes: budget,
		}
	}

	small := dominantSize{Value: dominant[0].Value, Count: dominant[0].Count}
	poolOpts := []Option{{Label: "none", Apply: func(c *alloc.Config) {}}}
	poolOpts = append(poolOpts, Option{
		Label: fmt.Sprintf("d%d", small.Value),
		Apply: func(c *alloc.Config) {
			c.Fixed = append(c.Fixed, poolFor(small, mainLayer, 0))
		},
	})
	// Placement variants on cheaper bounded layers with enough capacity
	// for at least a quarter of the observed peak small-block demand.
	for i := 0; i < h.NumLayers()-1; i++ {
		layer := h.Layer(memhier.LayerID(i))
		if !layer.Bounded() {
			continue
		}
		demand := small.Value * prof.PeakLiveBlocks // pessimistic upper bound
		budget := layer.Capacity * 3 / 4
		if budget < small.Value*16 || budget*4 < demand {
			continue
		}
		layerName := layer.Name
		poolOpts = append(poolOpts, Option{
			Label: fmt.Sprintf("d%d@%s", small.Value, layerName),
			Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed, poolFor(small, layerName, budget))
			},
		})
	}
	if len(dominant) > 1 {
		large := dominantSize{Value: dominant[1].Value, Count: dominant[1].Count}
		poolOpts = append(poolOpts, Option{
			Label: fmt.Sprintf("d%d+d%d", small.Value, large.Value),
			Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed,
					poolFor(small, mainLayer, 0),
					poolFor(large, mainLayer, 0))
			},
		})
	}

	base := alloc.Config{General: alloc.GeneralConfig{
		Layer:      mainLayer,
		Classes:    "single",
		Fit:        alloc.FirstFit,
		Order:      alloc.LIFO,
		Links:      alloc.SingleLink,
		Split:      alloc.SplitAlways,
		Coalesce:   alloc.CoalesceImmediate,
		Headers:    alloc.HeaderBoundaryTag,
		Growth:     alloc.GrowFixedChunk,
		ChunkBytes: suggestChunk(prof),
	}}

	space := &Space{
		Name: name,
		Base: base,
		Axes: []Axis{
			{Name: "pools", Options: poolOpts},
			{Name: "classes", Options: classesAxis().Options[:4]},
			{Name: "fit", Options: []Option{fitAxis().Options[0], fitAxis().Options[2]}},
			coalesceAxis(),
			splitAxis(),
		},
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	return space, nil
}

// dominantSize mirrors stats.ValueCount without importing it here.
type dominantSize struct {
	Value int64
	Count int64
}

// suggestChunk picks the general pool's growth quantum from the observed
// peak demand: roughly 1/16 of the peak, clamped to [4 KB, 64 KB] and
// rounded to a power of two.
func suggestChunk(prof *trace.Profile) int64 {
	chunk := prof.PeakLiveBytes / 16
	if chunk < 4*1024 {
		chunk = 4 * 1024
	}
	if chunk > 64*1024 {
		chunk = 64 * 1024
	}
	pow := int64(4 * 1024)
	for pow < chunk {
		pow <<= 1
	}
	return pow
}
