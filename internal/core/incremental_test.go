package core

import (
	"math"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// easyportRunner returns a Runner over a scaled-down easyport trace —
// the workload whose spaces carry fixed-pool axes, so guided searches
// cross partition signatures while walking general-pool axes.
func easyportRunner(t *testing.T, incremental bool) *Runner {
	t.Helper()
	p := workload.DefaultEasyportParams()
	p.Packets = 300
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	return &Runner{
		Hierarchy:   memhier.EmbeddedSoC(),
		Trace:       tr,
		Compiled:    ct,
		Workers:     4,
		Incremental: incremental,
	}
}

// assertResultsIdentical compares two strategy runs field by field,
// requiring bit-identical metrics (the incremental path's contract).
// Bookkeeping that legitimately differs between the paths — Duration,
// Incremental, EventsSkipped — is excluded.
func assertResultsIdentical(t *testing.T, strategy string, full, inc []Result) {
	t.Helper()
	if len(full) != len(inc) {
		t.Fatalf("%s: %d full results vs %d incremental", strategy, len(full), len(inc))
	}
	for i := range full {
		f, g := full[i], inc[i]
		if f.Index != g.Index {
			t.Fatalf("%s: result %d evaluated config %d full vs %d incremental — the walks diverged",
				strategy, i, f.Index, g.Index)
		}
		if (f.Err == nil) != (g.Err == nil) {
			t.Fatalf("%s: config %d: err %v vs %v", strategy, f.Index, f.Err, g.Err)
		}
		if f.Metrics == nil || g.Metrics == nil {
			if f.Metrics != g.Metrics {
				t.Fatalf("%s: config %d: one path missing metrics", strategy, f.Index)
			}
			continue
		}
		fm, gm := f.Metrics, g.Metrics
		if math.Float64bits(fm.EnergyNJ) != math.Float64bits(gm.EnergyNJ) {
			t.Errorf("%s: config %d: energy bits %v vs %v", strategy, f.Index, fm.EnergyNJ, gm.EnergyNJ)
		}
		if fm.Accesses != gm.Accesses || fm.FootprintBytes != gm.FootprintBytes ||
			fm.Cycles != gm.Cycles || fm.Mallocs != gm.Mallocs || fm.Frees != gm.Frees ||
			fm.Failures != gm.Failures || fm.PeakRequestedBytes != gm.PeakRequestedBytes {
			t.Errorf("%s: config %d: headline metrics diverge\n  full %+v\n  incr %+v",
				strategy, f.Index, fm, gm)
		}
		if len(fm.PerLayer) != len(gm.PerLayer) {
			t.Fatalf("%s: config %d: layer count diverges", strategy, f.Index)
		}
		for l := range fm.PerLayer {
			if fm.PerLayer[l] != gm.PerLayer[l] {
				t.Errorf("%s: config %d layer %s: %+v vs %+v", strategy, f.Index,
					fm.PerLayer[l].Name, fm.PerLayer[l], gm.PerLayer[l])
			}
		}
	}
}

// countIncremental returns how many results the partial path served.
func countIncremental(rs []Result) int {
	n := 0
	for _, r := range rs {
		if r.Incremental {
			n++
		}
	}
	return n
}

// TestIncrementalEquivalenceAcrossStrategies runs all four guided
// strategies with and without incremental re-evaluation and requires the
// exact same walk and bit-identical metrics — Runner.Incremental must be
// a pure performance switch.
func TestIncrementalEquivalenceAcrossStrategies(t *testing.T) {
	space := EasyportSpace()
	objectives := []string{"accesses", "footprint"}
	weights := []Weighted{{Objective: "accesses", Weight: 1}, {Objective: "footprint", Weight: 1}}

	servedPartial := 0
	for _, seed := range []uint64{1, 7} {
		run := func(incremental bool, strategy string) []Result {
			r := easyportRunner(t, incremental)
			switch strategy {
			case "hillclimb", "anneal":
				var (
					sr  *SearchResult
					err error
				)
				if strategy == "hillclimb" {
					sr, err = r.HillClimb(space, weights, 60, seed)
				} else {
					sr, err = r.Anneal(space, weights, 60, seed)
				}
				if err != nil {
					t.Fatalf("%s seed %d: %v", strategy, seed, err)
				}
				return append([]Result{sr.Best}, sr.Evaluated...)
			case "evolve":
				rs, err := r.Evolve(space, objectives, EvolveOptions{
					Population: 8, Budget: 48, Seed: seed,
				})
				if err != nil {
					t.Fatalf("evolve seed %d: %v", seed, err)
				}
				return rs
			case "screen":
				rs, err := r.ScreenAndRefine(space, objectives, 16, 48, seed)
				if err != nil {
					t.Fatalf("screen seed %d: %v", seed, err)
				}
				return rs
			}
			t.Fatalf("unknown strategy %q", strategy)
			return nil
		}
		for _, strategy := range []string{"hillclimb", "anneal", "evolve", "screen"} {
			full := run(false, strategy)
			inc := run(true, strategy)
			assertResultsIdentical(t, strategy, full, inc)
			if n := countIncremental(full); n != 0 {
				t.Errorf("%s seed %d: full run marked %d results incremental", strategy, seed, n)
			}
			servedPartial += countIncremental(inc)
		}
	}
	if servedPartial == 0 {
		t.Fatal("incremental runs never took the partial path")
	}
	t.Logf("partial path served %d evaluations across strategies and seeds", servedPartial)
}

// TestIncrementalDisabledUnderRichOptions: footprint sampling (and any
// other non-fast-path option) must force full replays — the partial
// path's synthetic addresses are only valid under the flat cost model.
func TestIncrementalDisabledUnderRichOptions(t *testing.T) {
	r := easyportRunner(t, true)
	r.Options.SampleEvery = 64
	space := EasyportSpace()
	rs, err := r.Sample(space, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rs {
		if res.Incremental {
			t.Fatalf("config %d took the partial path with SampleEvery set", res.Index)
		}
		if res.Err == nil && res.Metrics.Series == nil {
			t.Fatalf("config %d lost its footprint series", res.Index)
		}
	}
}

// TestIncrementalExploreMatchesFull sweeps a slice of the easyport space
// exhaustively both ways: identical metrics, and the incremental run must
// serve a substantial share of configurations from partial replays.
func TestIncrementalExploreMatchesFull(t *testing.T) {
	space := EasyportSpace()
	full, err := easyportRunner(t, false).Sample(space, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := easyportRunner(t, true).Sample(space, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "sample", full, inc)
	n := countIncremental(inc)
	if n == 0 {
		t.Fatal("no configuration served incrementally")
	}
	skipped := uint64(0)
	for _, r := range inc {
		skipped += r.EventsSkipped
	}
	if skipped == 0 {
		t.Fatal("incremental results report zero skipped events")
	}
	t.Logf("%d/%d configurations served incrementally, %d events skipped", n, len(inc), skipped)
}
