package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"dmexplore/internal/memhier"
	"dmexplore/internal/stats"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// easyportRunner returns a Runner over a scaled-down easyport trace —
// the workload whose spaces carry fixed-pool axes, so guided searches
// cross partition signatures while walking general-pool axes.
func easyportRunner(t *testing.T, incremental bool) *Runner {
	t.Helper()
	p := workload.DefaultEasyportParams()
	p.Packets = 300
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	return &Runner{
		Hierarchy:   memhier.EmbeddedSoC(),
		Trace:       tr,
		Compiled:    ct,
		Workers:     4,
		Incremental: incremental,
	}
}

// assertResultsIdentical compares two strategy runs field by field,
// requiring bit-identical metrics (the incremental path's contract).
// Bookkeeping that legitimately differs between the paths — Duration,
// Incremental, EventsSkipped — is excluded.
func assertResultsIdentical(t *testing.T, strategy string, full, inc []Result) {
	t.Helper()
	if len(full) != len(inc) {
		t.Fatalf("%s: %d full results vs %d incremental", strategy, len(full), len(inc))
	}
	for i := range full {
		f, g := full[i], inc[i]
		if f.Index != g.Index {
			t.Fatalf("%s: result %d evaluated config %d full vs %d incremental — the walks diverged",
				strategy, i, f.Index, g.Index)
		}
		if (f.Err == nil) != (g.Err == nil) {
			t.Fatalf("%s: config %d: err %v vs %v", strategy, f.Index, f.Err, g.Err)
		}
		if f.Metrics == nil || g.Metrics == nil {
			if f.Metrics != g.Metrics {
				t.Fatalf("%s: config %d: one path missing metrics", strategy, f.Index)
			}
			continue
		}
		fm, gm := f.Metrics, g.Metrics
		if math.Float64bits(fm.EnergyNJ) != math.Float64bits(gm.EnergyNJ) {
			t.Errorf("%s: config %d: energy bits %v vs %v", strategy, f.Index, fm.EnergyNJ, gm.EnergyNJ)
		}
		if fm.Accesses != gm.Accesses || fm.FootprintBytes != gm.FootprintBytes ||
			fm.Cycles != gm.Cycles || fm.Mallocs != gm.Mallocs || fm.Frees != gm.Frees ||
			fm.Failures != gm.Failures || fm.PeakRequestedBytes != gm.PeakRequestedBytes {
			t.Errorf("%s: config %d: headline metrics diverge\n  full %+v\n  incr %+v",
				strategy, f.Index, fm, gm)
		}
		if len(fm.PerLayer) != len(gm.PerLayer) {
			t.Fatalf("%s: config %d: layer count diverges", strategy, f.Index)
		}
		for l := range fm.PerLayer {
			if fm.PerLayer[l] != gm.PerLayer[l] {
				t.Errorf("%s: config %d layer %s: %+v vs %+v", strategy, f.Index,
					fm.PerLayer[l].Name, fm.PerLayer[l], gm.PerLayer[l])
			}
		}
	}
}

// countIncremental returns how many results the partial path served.
func countIncremental(rs []Result) int {
	n := 0
	for _, r := range rs {
		if r.Incremental {
			n++
		}
	}
	return n
}

// TestIncrementalEquivalenceAcrossStrategies runs all four guided
// strategies with and without incremental re-evaluation and requires the
// exact same walk and bit-identical metrics — Runner.Incremental must be
// a pure performance switch.
func TestIncrementalEquivalenceAcrossStrategies(t *testing.T) {
	space := EasyportSpace()
	objectives := []string{"accesses", "footprint"}
	weights := []Weighted{{Objective: "accesses", Weight: 1}, {Objective: "footprint", Weight: 1}}

	servedPartial := 0
	for _, seed := range []uint64{1, 7} {
		run := func(incremental bool, strategy string) []Result {
			r := easyportRunner(t, incremental)
			switch strategy {
			case "hillclimb", "anneal":
				var (
					sr  *SearchResult
					err error
				)
				if strategy == "hillclimb" {
					sr, err = r.HillClimb(space, weights, 60, seed)
				} else {
					sr, err = r.Anneal(space, weights, 60, seed)
				}
				if err != nil {
					t.Fatalf("%s seed %d: %v", strategy, seed, err)
				}
				return append([]Result{sr.Best}, sr.Evaluated...)
			case "evolve":
				rs, err := r.Evolve(space, objectives, EvolveOptions{
					Population: 8, Budget: 48, Seed: seed,
				})
				if err != nil {
					t.Fatalf("evolve seed %d: %v", seed, err)
				}
				return rs
			case "screen":
				rs, err := r.ScreenAndRefine(space, objectives, 16, 48, seed)
				if err != nil {
					t.Fatalf("screen seed %d: %v", seed, err)
				}
				return rs
			}
			t.Fatalf("unknown strategy %q", strategy)
			return nil
		}
		for _, strategy := range []string{"hillclimb", "anneal", "evolve", "screen"} {
			full := run(false, strategy)
			inc := run(true, strategy)
			assertResultsIdentical(t, strategy, full, inc)
			if n := countIncremental(full); n != 0 {
				t.Errorf("%s seed %d: full run marked %d results incremental", strategy, seed, n)
			}
			servedPartial += countIncremental(inc)
		}
	}
	if servedPartial == 0 {
		t.Fatal("incremental runs never took the partial path")
	}
	t.Logf("partial path served %d evaluations across strategies and seeds", servedPartial)
}

// countComposed returns how many results the pool-run memo composed
// without any simulation.
func countComposed(rs []Result) int {
	n := 0
	for _, r := range rs {
		if r.Composed {
			n++
		}
	}
	return n
}

// vtcRunner returns a Runner over a scaled-down VTC trace — the second
// workload the multi-axis decomposition property is seeded across.
func vtcRunner(t *testing.T, incremental bool) *Runner {
	t.Helper()
	p := workload.DefaultVTCParams()
	p.Tiles = 24
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	return &Runner{
		Hierarchy:   memhier.EmbeddedSoC(),
		Trace:       tr,
		Compiled:    ct,
		Workers:     4,
		Incremental: incremental,
	}
}

// TestMultiAxisDecompositionBitIdentical is the decomposition property
// test: sweeping a whole space visits every multi-axis delta between
// configurations — including the decomposable ones (a fixed-axis move
// crossed with a general-axis move, the NSGA-II crossover shape) that
// the pool-run memo turns into pure compositions. Every metric must stay
// bit-identical to the full-replay sweep (EnergyNJ compared as float
// bits), and both seeded workloads must actually exercise the composed
// path.
func TestMultiAxisDecompositionBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		space  *Space
		runner func(*testing.T, bool) *Runner
	}{
		{"easyport", EasyportSpace(), easyportRunner},
		{"vtc", VTCSpace(), vtcRunner},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full, err := tc.runner(t, false).Explore(tc.space)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := tc.runner(t, true).Explore(tc.space)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, tc.name, full, inc)
			composed := countComposed(inc)
			if composed == 0 {
				t.Fatal("sweep never composed an evaluation from the pool-run memo")
			}
			if n := countComposed(full); n != 0 {
				t.Errorf("full sweep marked %d results composed", n)
			}
			t.Logf("%s: %d/%d composed, %d partial", tc.name, composed,
				len(inc), countIncremental(inc)-composed)
		})
	}
}

// TestIncrementalEquivalenceAcrossWorkerCounts locks the concurrency
// contract: hill-climb and NSGA-II walks stay bit-identical to the full
// replay path at every worker count. Which evaluation is composed vs
// partial may vary with scheduling (whoever claims a memo entry first
// builds it), but metrics — and therefore the walk — may not.
func TestIncrementalEquivalenceAcrossWorkerCounts(t *testing.T) {
	space := EasyportSpace()
	weights := []Weighted{{Objective: "accesses", Weight: 1}, {Objective: "footprint", Weight: 1}}
	objectives := []string{"accesses", "footprint"}

	for _, workers := range []int{1, 2, 4, 8} {
		runner := func(incremental bool) *Runner {
			r := easyportRunner(t, incremental)
			r.Workers = workers
			return r
		}
		hcFull, err := runner(false).HillClimb(space, weights, 48, 3)
		if err != nil {
			t.Fatal(err)
		}
		hcInc, err := runner(true).HillClimb(space, weights, 48, 3)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, "hillclimb",
			append([]Result{hcFull.Best}, hcFull.Evaluated...),
			append([]Result{hcInc.Best}, hcInc.Evaluated...))

		evFull, err := runner(false).Evolve(space, objectives, EvolveOptions{Population: 8, Budget: 40, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		evInc, err := runner(true).Evolve(space, objectives, EvolveOptions{Population: 8, Budget: 40, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, "evolve", evFull, evInc)
	}
}

// composablePair finds two configurations in the easyport space that
// share their general-pool vector but place the dedicated packet pool on
// different layers ("d74" vs "d74@sp") — routing-identical fixed
// signatures, so the second evaluation composes from the first's
// memoized pool run.
func composablePair(t *testing.T, space *Space) (int, int) {
	t.Helper()
	d74, sp := -1, -1
	for i := 0; i < space.Size(); i++ {
		_, labels, err := space.Config(i)
		if err != nil {
			t.Fatal(err)
		}
		rest := strings.Join(labels[1:], " ")
		if rest != "single first lifo never never chunk8k" {
			continue
		}
		switch labels[0] {
		case "d74":
			d74 = i
		case "d74@sp":
			sp = i
		}
	}
	if d74 < 0 || sp < 0 {
		t.Fatal("easyport space lost its d74/d74@sp pools options")
	}
	return d74, sp
}

// TestEvalLatencyComposedChargesCompositionOnly is the latency-model
// regression test: under Runner.EvalLatency, a partial evaluation
// charges latency pro-rata to the replayed ops, and a composed (memo
// hit) evaluation charges only its own composition cost — no modelled
// backend time at all.
func TestEvalLatencyComposedChargesCompositionOnly(t *testing.T) {
	const latency = 80 * time.Millisecond
	space := EasyportSpace()
	d74, sp := composablePair(t, space)

	r := easyportRunner(t, true)
	r.Workers = 1
	r.EvalLatency = latency
	sess, err := r.NewSession(space)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	first, err := sess.Eval([]int{d74})
	if err != nil {
		t.Fatal(err)
	}
	if !first[0].Incremental || first[0].Composed {
		t.Fatalf("first eval not a built partial: %+v", first[0])
	}
	if first[0].Duration >= latency {
		t.Errorf("partial eval charged %v, want pro-rata under the full %v",
			first[0].Duration, latency)
	}

	second, err := sess.Eval([]int{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !second[0].Composed {
		t.Fatalf("second eval not composed from the memo: %+v", second[0])
	}
	// The composition is O(ops) arithmetic; anything near the modelled
	// latency means the backend was charged.
	if second[0].Duration >= latency/4 {
		t.Errorf("composed eval took %v, want composition cost only (well under %v)",
			second[0].Duration, latency)
	}
}

// TestSessionCacheEviction bounds the incremental caches with budgets
// small enough to churn: the sweep must stay bit-identical to the full
// path (an evicted partition or pool run rebuilds, never corrupts) while
// the stats report real evictions and a bounded resident set.
func TestSessionCacheEviction(t *testing.T) {
	space := EasyportSpace()
	full, err := easyportRunner(t, false).Sample(space, 64, 5)
	if err != nil {
		t.Fatal(err)
	}

	r := easyportRunner(t, true)
	r.PartitionBudgetBytes = 2 * 1024 // holds roughly one easyport partition
	r.PoolMemoBudgetBytes = 2 * 1024
	sess, err := r.NewSession(space)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	indices := stats.NewRNG(5).Perm(space.Size())[:64] // Sample's draw, same seed
	inc, err := sess.Eval(indices)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "evicting-sample", full, inc)

	st := sess.IncrementalCacheStats()
	if st.PartitionEvictions == 0 && st.PoolRunEvictions == 0 {
		t.Fatalf("tiny budgets evicted nothing: %+v", st)
	}
	if st.PartitionBytes > 64*1024 || st.PoolRunBytes > 64*1024 {
		t.Fatalf("resident bytes unbounded under budget: %+v", st)
	}
	t.Logf("stats after churn: %+v", st)
}

// TestIncrementalDisabledUnderRichOptions: footprint sampling (and any
// other non-fast-path option) must force full replays — the partial
// path's synthetic addresses are only valid under the flat cost model.
func TestIncrementalDisabledUnderRichOptions(t *testing.T) {
	r := easyportRunner(t, true)
	r.Options.SampleEvery = 64
	space := EasyportSpace()
	rs, err := r.Sample(space, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rs {
		if res.Incremental {
			t.Fatalf("config %d took the partial path with SampleEvery set", res.Index)
		}
		if res.Err == nil && res.Metrics.Series == nil {
			t.Fatalf("config %d lost its footprint series", res.Index)
		}
	}
}

// TestIncrementalExploreMatchesFull sweeps a slice of the easyport space
// exhaustively both ways: identical metrics, and the incremental run must
// serve a substantial share of configurations from partial replays.
func TestIncrementalExploreMatchesFull(t *testing.T) {
	space := EasyportSpace()
	full, err := easyportRunner(t, false).Sample(space, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := easyportRunner(t, true).Sample(space, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "sample", full, inc)
	n := countIncremental(inc)
	if n == 0 {
		t.Fatal("no configuration served incrementally")
	}
	skipped := uint64(0)
	for _, r := range inc {
		skipped += r.EventsSkipped
	}
	if skipped == 0 {
		t.Fatal("incremental results report zero skipped events")
	}
	t.Logf("%d/%d configurations served incrementally, %d events skipped", n, len(inc), skipped)
}
