package core

import (
	"fmt"
	"math"

	"dmexplore/internal/profile"
	"dmexplore/internal/stats"
)

// Search strategies for spaces too large to sweep exhaustively. The
// paper's tool enumerates the full product; these extend it with the
// standard design-space-exploration alternatives so a front can be
// approximated at a fraction of the simulations:
//
//   - HillClimb: scalarized (weighted-sum) local search over the axis
//     grid.
//   - Anneal: simulated annealing over the same neighbourhood.
//   - ScreenAndRefine: uniform screening sample, then exhaustive
//     Hamming-1 neighbourhoods around the screened Pareto front — the
//     strategy best matched to Pareto exploration.
//
// All strategies deduplicate configuration evaluations and return every
// result they profiled (so fronts/ranges can be computed over the union).

// Objective weights for scalarized search.
type Weighted struct {
	Objective string
	Weight    float64
}

// evalCache memoizes profiled configurations by space index.
type evalCache struct {
	runner  *Runner
	space   *Space
	results map[int]Result
	order   []int
}

func newEvalCache(r *Runner, s *Space) *evalCache {
	return &evalCache{runner: r, space: s, results: make(map[int]Result)}
}

// get profiles configuration idx (once).
func (c *evalCache) get(idx int) (Result, error) {
	if res, ok := c.results[idx]; ok {
		return res, nil
	}
	res, err := c.runner.run(c.space, []int{idx})
	if err != nil {
		return Result{}, err
	}
	c.results[idx] = res[0]
	c.order = append(c.order, idx)
	return res[0], nil
}

// all returns every profiled result in evaluation order.
func (c *evalCache) all() []Result {
	out := make([]Result, 0, len(c.order))
	for _, idx := range c.order {
		out = append(out, c.results[idx])
	}
	return out
}

// scalarize computes the weighted sum of normalized-by-reference
// objectives; infeasible configurations score +Inf.
func scalarize(m *profile.Metrics, weights []Weighted, ref map[string]float64) (float64, error) {
	if !m.Feasible() {
		return math.Inf(1), nil
	}
	var sum float64
	for _, w := range weights {
		v, err := m.Objective(w.Objective)
		if err != nil {
			return 0, err
		}
		r := ref[w.Objective]
		if r <= 0 {
			r = 1
		}
		sum += w.Weight * v / r
	}
	return sum, nil
}

// digits decodes a space index into per-axis option indices and back.
func (s *Space) digits(idx int) []int {
	out := make([]int, len(s.Axes))
	for i := len(s.Axes) - 1; i >= 0; i-- {
		n := len(s.Axes[i].Options)
		out[i] = idx % n
		idx /= n
	}
	return out
}

func (s *Space) index(digits []int) int {
	idx := 0
	for i, d := range digits {
		idx = idx*len(s.Axes[i].Options) + d
	}
	return idx
}

// neighbors returns all Hamming-1 neighbours of idx in the axis grid.
func (s *Space) neighbors(idx int) []int {
	base := s.digits(idx)
	var out []int
	for ax := range s.Axes {
		for v := 0; v < len(s.Axes[ax].Options); v++ {
			if v == base[ax] {
				continue
			}
			d := append([]int(nil), base...)
			d[ax] = v
			out = append(out, s.index(d))
		}
	}
	return out
}

// SearchResult is the outcome of a heuristic search.
type SearchResult struct {
	Best      Result   // best configuration under the scalarized objective
	BestScore float64  // its score
	Evaluated []Result // every profiled configuration, in evaluation order
}

// HillClimb performs steepest-descent local search from a random start,
// restarting until the simulation budget is used. budget counts profiled
// configurations.
func (r *Runner) HillClimb(space *Space, weights []Weighted, budget int, seed uint64) (*SearchResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(weights) == 0 || budget <= 0 {
		return nil, fmt.Errorf("core: hill climb needs weights and a positive budget")
	}
	cache := newEvalCache(r, space)
	rng := stats.NewRNG(seed)
	ref, err := referenceScales(r, space, cache, weights, rng)
	if err != nil {
		return nil, err
	}

	best := Result{Index: -1}
	bestScore := math.Inf(1)
	for len(cache.results) < budget {
		cur, err := cache.get(rng.Intn(space.Size()))
		if err != nil {
			return nil, err
		}
		curScore, err := scalarize(cur.Metrics, weights, ref)
		if err != nil {
			return nil, err
		}
		for len(cache.results) < budget {
			improved := false
			for _, n := range shuffled(rng, space.neighbors(cur.Index)) {
				if len(cache.results) >= budget {
					break
				}
				cand, err := cache.get(n)
				if err != nil {
					return nil, err
				}
				score, err := scalarize(cand.Metrics, weights, ref)
				if err != nil {
					return nil, err
				}
				if score < curScore {
					cur, curScore = cand, score
					improved = true
					break // steepest-enough: first improvement
				}
			}
			if !improved {
				break
			}
		}
		if curScore < bestScore {
			best, bestScore = cur, curScore
		}
	}
	return &SearchResult{Best: best, BestScore: bestScore, Evaluated: cache.all()}, nil
}

// Anneal performs simulated annealing over the axis grid.
func (r *Runner) Anneal(space *Space, weights []Weighted, budget int, seed uint64) (*SearchResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(weights) == 0 || budget <= 0 {
		return nil, fmt.Errorf("core: annealing needs weights and a positive budget")
	}
	cache := newEvalCache(r, space)
	rng := stats.NewRNG(seed)
	ref, err := referenceScales(r, space, cache, weights, rng)
	if err != nil {
		return nil, err
	}

	cur, err := cache.get(rng.Intn(space.Size()))
	if err != nil {
		return nil, err
	}
	curScore, err := scalarize(cur.Metrics, weights, ref)
	if err != nil {
		return nil, err
	}
	best, bestScore := cur, curScore

	temp := 1.0
	cooling := math.Pow(0.01, 1/float64(budget)) // reach temp 0.01 at budget
	for len(cache.results) < budget {
		ns := space.neighbors(cur.Index)
		cand, err := cache.get(ns[rng.Intn(len(ns))])
		if err != nil {
			return nil, err
		}
		score, err := scalarize(cand.Metrics, weights, ref)
		if err != nil {
			return nil, err
		}
		accept := score < curScore
		if !accept && !math.IsInf(score, 1) {
			accept = rng.Float64() < math.Exp((curScore-score)/temp)
		}
		if accept {
			cur, curScore = cand, score
			if curScore < bestScore {
				best, bestScore = cur, curScore
			}
		}
		temp *= cooling
	}
	return &SearchResult{Best: best, BestScore: bestScore, Evaluated: cache.all()}, nil
}

// ScreenAndRefine approximates the Pareto front without a full sweep:
// profile a uniform screening sample, reduce it to its front, then
// exhaustively profile the Hamming-1 neighbourhood of every front member
// (repeating until the front stops improving or the budget is spent).
// Returns every profiled configuration; callers run ParetoSet over it.
func (r *Runner) ScreenAndRefine(space *Space, objectives []string, screen, budget int, seed uint64) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if screen <= 0 || budget < screen {
		return nil, fmt.Errorf("core: screen %d / budget %d invalid", screen, budget)
	}
	cache := newEvalCache(r, space)
	rng := stats.NewRNG(seed)

	// Screening sample.
	perm := rng.Perm(space.Size())
	if screen > len(perm) {
		screen = len(perm)
	}
	for _, idx := range perm[:screen] {
		if _, err := cache.get(idx); err != nil {
			return nil, err
		}
	}

	for len(cache.results) < budget {
		front, _, err := ParetoSet(Feasible(cache.all()), objectives)
		if err != nil {
			return nil, err
		}
		grew := false
		for _, f := range front {
			for _, n := range space.neighbors(f.Index) {
				if len(cache.results) >= budget {
					break
				}
				if _, ok := cache.results[n]; ok {
					continue
				}
				if _, err := cache.get(n); err != nil {
					return nil, err
				}
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	return cache.all(), nil
}

// referenceScales profiles a few random configurations to establish the
// normalization scale per objective for scalarized search.
func referenceScales(r *Runner, space *Space, cache *evalCache, weights []Weighted, rng *stats.RNG) (map[string]float64, error) {
	ref := make(map[string]float64)
	for i := 0; i < 3; i++ {
		res, err := cache.get(rng.Intn(space.Size()))
		if err != nil {
			return nil, err
		}
		if !res.Metrics.Feasible() {
			continue
		}
		for _, w := range weights {
			v, err := res.Metrics.Objective(w.Objective)
			if err != nil {
				return nil, err
			}
			if v > ref[w.Objective] {
				ref[w.Objective] = v
			}
		}
	}
	return ref, nil
}

func shuffled(rng *stats.RNG, xs []int) []int {
	out := append([]int(nil), xs...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
