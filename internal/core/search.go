package core

import (
	"fmt"
	"math"

	"dmexplore/internal/profile"
	"dmexplore/internal/stats"
)

// Search strategies for spaces too large to sweep exhaustively. The
// paper's tool enumerates the full product; these extend it with the
// standard design-space-exploration alternatives so a front can be
// approximated at a fraction of the simulations:
//
//   - HillClimb: scalarized (weighted-sum) local search over the axis
//     grid.
//   - Anneal: simulated annealing over the same neighbourhood.
//   - ScreenAndRefine: uniform screening sample, then exhaustive
//     Hamming-1 neighbourhoods around the screened Pareto front — the
//     strategy best matched to Pareto exploration.
//
// All strategies deduplicate configuration evaluations and return every
// result they profiled (so fronts/ranges can be computed over the union).
//
// Every strategy evaluates through an evalBatcher over one persistent
// EvalSession, exposing its natural batch width — the whole Hamming-1
// neighbourhood per climb step, the screening sample and each refinement
// ring, a speculative window of annealing proposals, an NSGA-II offspring
// generation — so the full worker pool stays saturated instead of
// funnelling one configuration at a time. Outcomes are deterministic for
// a given seed regardless of Runner.Workers: every random draw happens on
// the coordinating goroutine, and batch results come back in request
// order.

// Objective weights for scalarized search.
type Weighted struct {
	Objective string
	Weight    float64
}

// scalarize computes the weighted sum of normalized-by-reference
// objectives; infeasible configurations score +Inf.
func scalarize(m *profile.Metrics, weights []Weighted, ref map[string]float64) (float64, error) {
	if !m.Feasible() {
		return math.Inf(1), nil
	}
	var sum float64
	for _, w := range weights {
		v, err := m.Objective(w.Objective)
		if err != nil {
			return 0, err
		}
		r := ref[w.Objective]
		if r <= 0 {
			r = 1
		}
		sum += w.Weight * v / r
	}
	return sum, nil
}

// digits decodes a space index into per-axis option indices and back.
func (s *Space) digits(idx int) []int {
	out := make([]int, len(s.Axes))
	s.digitsInto(out, idx)
	return out
}

// digitsInto decodes idx into dst, which must have len(s.Axes) elements.
func (s *Space) digitsInto(dst []int, idx int) {
	for i := len(s.Axes) - 1; i >= 0; i-- {
		n := len(s.Axes[i].Options)
		dst[i] = idx % n
		idx /= n
	}
}

func (s *Space) index(digits []int) int {
	idx := 0
	for i, d := range digits {
		idx = idx*len(s.Axes[i].Options) + d
	}
	return idx
}

// neighborCount returns the number of Hamming-1 neighbours every
// configuration has: sum over axes of (options - 1).
func (s *Space) neighborCount() int {
	n := 0
	for _, ax := range s.Axes {
		n += len(ax.Options) - 1
	}
	return n
}

// appendNeighbors appends all Hamming-1 neighbours of idx to dst and
// returns the extended slice. scratch must have len(s.Axes) elements; it
// is the digit buffer, mutated one axis at a time and restored, so the
// whole enumeration allocates nothing beyond dst growth.
func (s *Space) appendNeighbors(dst []int, scratch []int, idx int) []int {
	s.digitsInto(scratch, idx)
	for ax := range s.Axes {
		base := scratch[ax]
		for v := 0; v < len(s.Axes[ax].Options); v++ {
			if v == base {
				continue
			}
			scratch[ax] = v
			dst = append(dst, s.index(scratch))
		}
		scratch[ax] = base
	}
	return dst
}

// neighbors returns all Hamming-1 neighbours of idx in the axis grid.
// Hot loops should hold their own buffers and call appendNeighbors.
func (s *Space) neighbors(idx int) []int {
	return s.appendNeighbors(make([]int, 0, s.neighborCount()), make([]int, len(s.Axes)), idx)
}

// neighborScratch bundles the reusable buffers a strategy needs to
// enumerate neighbourhoods without per-step allocation.
type neighborScratch struct {
	digits []int
	out    []int
}

func newNeighborScratch(s *Space) *neighborScratch {
	return &neighborScratch{
		digits: make([]int, len(s.Axes)),
		out:    make([]int, 0, s.neighborCount()),
	}
}

// neighbors enumerates idx's neighbourhood into the scratch buffer; the
// returned slice is valid until the next call.
func (ns *neighborScratch) neighbors(s *Space, idx int) []int {
	ns.out = s.appendNeighbors(ns.out[:0], ns.digits, idx)
	return ns.out
}

// SearchResult is the outcome of a heuristic search.
type SearchResult struct {
	Best      Result   // best configuration under the scalarized objective
	BestScore float64  // its score
	Evaluated []Result // every profiled configuration, in evaluation order
}

// HillClimb performs steepest-descent local search from a random start,
// restarting until the simulation budget is used. budget counts profiled
// configurations.
//
// Each climb step batches the entire (budget-capped) Hamming-1
// neighbourhood of the current point in one evaluation wave, then applies
// the first-improvement rule over the shuffled order — so the walk is
// identical for any worker count while the simulations run in parallel.
func (r *Runner) HillClimb(space *Space, weights []Weighted, budget int, seed uint64) (*SearchResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(weights) == 0 || budget <= 0 {
		return nil, fmt.Errorf("core: hill climb needs weights and a positive budget")
	}
	sess, err := r.NewSession(space)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	b := newEvalBatcher(sess)
	b.strategy = "hillclimb"
	rng := stats.NewRNG(seed)
	sur := r.newSurrogate(sess, weights)
	sur.attach(b)
	defer sur.finish()
	ref, err := referenceScales(space, b, weights, rng)
	if err != nil {
		return nil, err
	}
	if sur != nil && !sur.ready() {
		// Bootstrap the models past their warm-up threshold with one
		// uniform probe wave (shared with the scales sampler), so the
		// very first neighbourhood is already ranked.
		if _, err := probeSample(space, b, rng, surrogateBootstrapProbes); err != nil {
			return nil, err
		}
	}
	scratch := newNeighborScratch(space)

	best := Result{Index: -1}
	bestScore := math.Inf(1)
	for b.len() < budget {
		start := rng.Intn(space.Size())
		b.tag(start, "restart")
		cur, err := b.getOne(start)
		if err != nil {
			return nil, err
		}
		curScore, err := scalarize(cur.Metrics, weights, ref)
		if err != nil {
			return nil, err
		}
		for b.len() < budget {
			improved := false
			if sur != nil {
				// Surrogate path: evaluate the neighbourhood best-predicted
				// first, a chunk at a time, so an accepted move costs a few
				// simulations instead of the whole Hamming-1 ring.
				ranked := sur.rank(scratch.neighbors(space, cur.Index))
				for off := 0; off < len(ranked) && b.len() < budget && !improved; off += surrogateClimbChunk {
					end := off + surrogateClimbChunk
					if end > len(ranked) {
						end = len(ranked)
					}
					wave := b.limit(ranked[off:end], budget-b.len())
					for _, n := range wave {
						b.tag(n, "neighbor", cur.Index)
					}
					cands, err := b.getBatch(wave)
					if err != nil {
						return nil, err
					}
					for _, cand := range cands {
						score, err := scalarize(cand.Metrics, weights, ref)
						if err != nil {
							return nil, err
						}
						if score < curScore {
							cur, curScore = cand, score
							improved = true
							break // first improvement in predicted-best order
						}
					}
				}
			} else {
				ns := shuffled(rng, scratch.neighbors(space, cur.Index))
				ns = b.limit(ns, budget-b.len())
				for _, n := range ns {
					b.tag(n, "neighbor", cur.Index)
				}
				cands, err := b.getBatch(ns)
				if err != nil {
					return nil, err
				}
				for _, cand := range cands {
					score, err := scalarize(cand.Metrics, weights, ref)
					if err != nil {
						return nil, err
					}
					if score < curScore {
						cur, curScore = cand, score
						improved = true
						break // first improvement in shuffled order
					}
				}
			}
			if !improved {
				break
			}
		}
		if curScore < bestScore {
			best, bestScore = cur, curScore
		}
	}
	return &SearchResult{Best: best, BestScore: bestScore, Evaluated: b.all()}, nil
}

// annealSpeculation is the number of proposals Anneal batches per wave.
// It is a fixed constant — not derived from Runner.Workers — so the
// search trajectory is identical for any worker count.
const annealSpeculation = 8

// Anneal performs simulated annealing over the axis grid.
//
// Proposals are drawn from a dedicated RNG stream and speculatively
// batched annealSpeculation at a time: all candidates of a wave are
// profiled in parallel, then accept/reject decisions replay sequentially
// over the wave. An acceptance abandons the rest of the wave (those
// proposals came from the superseded state) and re-speculates from the
// new state; rejected-wave evaluations stay in the result set and count
// against the budget, exactly like their serial counterparts.
func (r *Runner) Anneal(space *Space, weights []Weighted, budget int, seed uint64) (*SearchResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if len(weights) == 0 || budget <= 0 {
		return nil, fmt.Errorf("core: annealing needs weights and a positive budget")
	}
	sess, err := r.NewSession(space)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	b := newEvalBatcher(sess)
	b.strategy = "anneal"
	rng := stats.NewRNG(seed)
	sur := r.newSurrogate(sess, weights)
	sur.attach(b)
	defer sur.finish()
	ref, err := referenceScales(space, b, weights, rng)
	if err != nil {
		return nil, err
	}
	if sur != nil && !sur.ready() {
		if _, err := probeSample(space, b, rng, surrogateBootstrapProbes); err != nil {
			return nil, err
		}
	}
	// The proposal stream is split off the main RNG: accept/reject draws
	// stay on rng, neighbour picks on propRNG, so speculation depth never
	// perturbs the acceptance randomness.
	propRNG := rng.Split()
	scratch := newNeighborScratch(space)

	startIdx := rng.Intn(space.Size())
	b.tag(startIdx, "restart")
	cur, err := b.getOne(startIdx)
	if err != nil {
		return nil, err
	}
	curScore, err := scalarize(cur.Metrics, weights, ref)
	if err != nil {
		return nil, err
	}
	best, bestScore := cur, curScore

	temp := 1.0
	cooling := math.Pow(0.01, 1/float64(budget)) // reach temp 0.01 at budget
	proposals := make([]int, 0, annealSpeculation)
	for b.len() < budget {
		ns := scratch.neighbors(space, cur.Index)
		proposals = proposals[:0]
		for len(proposals) < annealSpeculation {
			proposals = append(proposals, ns[propRNG.Intn(len(ns))])
		}
		wave := proposals
		if sur != nil {
			// Predicted-best first: the acceptance scan meets the most
			// promising proposal earliest, so an accepted move abandons
			// (and never pays for) fewer speculative simulations.
			wave = sur.rank(proposals)
		}
		wave = b.limit(wave, budget-b.len())
		for _, p := range wave {
			b.tag(p, "propose", cur.Index)
		}
		cands, err := b.getBatch(wave)
		if err != nil {
			return nil, err
		}
		for _, cand := range cands {
			score, err := scalarize(cand.Metrics, weights, ref)
			if err != nil {
				return nil, err
			}
			accept := score < curScore
			if !accept && !math.IsInf(score, 1) {
				accept = rng.Float64() < math.Exp((curScore-score)/temp)
			}
			temp *= cooling
			if accept {
				cur, curScore = cand, score
				if curScore < bestScore {
					best, bestScore = cur, curScore
				}
				break // re-speculate from the accepted state
			}
		}
	}
	return &SearchResult{Best: best, BestScore: bestScore, Evaluated: b.all()}, nil
}

// ScreenAndRefine approximates the Pareto front without a full sweep:
// profile a uniform screening sample, reduce it to its front, then
// exhaustively profile the Hamming-1 neighbourhood of every front member
// (repeating until the front stops improving or the budget is spent).
// Returns every profiled configuration; callers run ParetoSet over it.
//
// The screening sample is one evaluation wave; each refinement ring (the
// union of all unseen front-member neighbours, budget-capped) is another.
func (r *Runner) ScreenAndRefine(space *Space, objectives []string, screen, budget int, seed uint64) ([]Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if screen <= 0 || budget < screen {
		return nil, fmt.Errorf("core: screen %d / budget %d invalid", screen, budget)
	}
	sess, err := r.NewSession(space)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	b := newEvalBatcher(sess)
	b.strategy = "screen-refine"
	rng := stats.NewRNG(seed)
	sur := r.newSurrogate(sess, equalWeights(objectives))
	sur.paretoRank()
	sur.attach(b)
	defer sur.finish()
	scratch := newNeighborScratch(space)

	// Screening sample: one wave. With a surrogate, a quarter of the wave
	// evaluates exactly as the training bootstrap; the remaining slots are
	// surrogate-picked from a pool far larger than the wave — the same
	// number of simulations covers the best of PoolCap candidates instead
	// of a blind uniform sample.
	perm := rng.Perm(space.Size())
	if screen > len(perm) {
		screen = len(perm)
	}
	if sur != nil {
		nBoot := screen / 4
		if nBoot < surrogateMinTrain {
			nBoot = surrogateMinTrain
		}
		if nBoot > screen {
			nBoot = screen
		}
		for _, idx := range perm[:nBoot] {
			b.tag(idx, "screen")
		}
		if _, err := b.getBatch(perm[:nBoot]); err != nil {
			return nil, err
		}
		pool := perm[nBoot:]
		if len(pool) > sur.opts.PoolCap {
			pool = pool[:sur.opts.PoolCap]
		}
		picks := sur.screen(pool, screen-nBoot)
		for _, idx := range picks {
			b.tag(idx, "screen")
		}
		if _, err := b.getBatch(picks); err != nil {
			return nil, err
		}
	} else {
		for _, idx := range perm[:screen] {
			b.tag(idx, "screen")
		}
		if _, err := b.getBatch(perm[:screen]); err != nil {
			return nil, err
		}
	}

	for b.len() < budget {
		front, _, err := ParetoSet(Feasible(b.all()), objectives)
		if err != nil {
			return nil, err
		}
		// Refinement ring: every unseen neighbour of every front member,
		// deduplicated, capped at the remaining budget. The surrogate
		// gathers a larger ring (up to PoolCap) and ranks it, so the
		// budget-capped prefix lands on the predicted-best neighbours
		// instead of whichever front members were enumerated first.
		var ring []int
		inRing := make(map[int]bool)
		remaining := budget - b.len()
		ringCap := remaining
		if sur != nil && ringCap < sur.opts.PoolCap {
			ringCap = sur.opts.PoolCap
			front = dedupFrontMetrics(front)
		}
		for _, f := range front {
			for _, n := range scratch.neighbors(space, f.Index) {
				if len(ring) >= ringCap {
					break
				}
				if inRing[n] || b.has(n) {
					continue
				}
				inRing[n] = true
				b.tag(n, "refine", f.Index)
				ring = append(ring, n)
			}
		}
		if len(ring) == 0 {
			break
		}
		if sur != nil {
			ring = sur.rank(ring)
			if len(ring) > remaining {
				ring = ring[:remaining]
			}
		}
		if _, err := b.getBatch(ring); err != nil {
			return nil, err
		}
	}
	return b.all(), nil
}

// referenceProbes is how many random configurations referenceScales
// profiles to establish the scalarization scales.
const referenceProbes = 3

// probeSample profiles n uniformly random configurations as one wave and
// returns their results. It draws exactly one rng.Intn(Size) per probe —
// callers relying on reproducible RNG streams (every scalarized search)
// get the same draws for the same n.
func probeSample(space *Space, b *evalBatcher, rng *stats.RNG, n int) ([]Result, error) {
	probes := make([]int, n)
	for i := range probes {
		probes[i] = rng.Intn(space.Size())
	}
	return b.getBatch(probes)
}

// objectiveScales reduces profiled results to one normalization scale
// per objective: the largest feasible value observed. An objective with
// no positive feasible value — every probe infeasible, or a metric that
// is identically zero across the sample — gets scale 1, so downstream
// divisions are always well-defined.
func objectiveScales(results []Result, objectives []string) (map[string]float64, error) {
	ref := make(map[string]float64, len(objectives))
	for _, obj := range objectives {
		ref[obj] = 0
	}
	for _, res := range results {
		if res.Metrics == nil || !res.Metrics.Feasible() {
			continue
		}
		for _, obj := range objectives {
			v, err := res.Metrics.Objective(obj)
			if err != nil {
				return nil, err
			}
			if v > ref[obj] {
				ref[obj] = v
			}
		}
	}
	for obj, v := range ref {
		if v <= 0 {
			ref[obj] = 1
		}
	}
	return ref, nil
}

// objectiveNames extracts the objective list from scalarization weights.
func objectiveNames(weights []Weighted) []string {
	names := make([]string, len(weights))
	for i, w := range weights {
		names[i] = w.Objective
	}
	return names
}

// referenceScales profiles a few random configurations (one wave) to
// establish the normalization scale per objective for scalarized search.
func referenceScales(space *Space, b *evalBatcher, weights []Weighted, rng *stats.RNG) (map[string]float64, error) {
	results, err := probeSample(space, b, rng, referenceProbes)
	if err != nil {
		return nil, err
	}
	return objectiveScales(results, objectiveNames(weights))
}

func shuffled(rng *stats.RNG, xs []int) []int {
	out := append([]int(nil), xs...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
