package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
)

func TestResultsCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("fresh cache not empty")
	}
	m := &profile.Metrics{Accesses: 42, FootprintBytes: 1000, EnergyNJ: 1.5, Cycles: 99}
	c.Put("k1", m)
	c.Put("k2", &profile.Metrics{Accesses: 7})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d entries", re.Len())
	}
	got, ok := re.Get("k1")
	if !ok || got.Accesses != 42 || got.EnergyNJ != 1.5 {
		t.Fatalf("entry k1: %+v %v", got, ok)
	}
	if _, ok := re.Get("nope"); ok {
		t.Fatal("phantom entry")
	}
}

func TestResultsCacheSaveNoopWhenClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, _ := OpenResultsCache(path)
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("clean save created a file")
	}
}

func TestResultsCacheRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	os.WriteFile(path, []byte("not json\n"), 0o644)
	if _, err := OpenResultsCache(path); err == nil {
		t.Fatal("corrupt cache accepted")
	}
	os.WriteFile(path, []byte(`{"key":"","metrics":null}`+"\n"), 0o644)
	if _, err := OpenResultsCache(path); err == nil {
		t.Fatal("incomplete entry accepted")
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	tr := tinyTrace(t)
	h := memhier.EmbeddedSoC()
	k1 := CacheKey("cfgA", tr, h)
	k2 := CacheKey("cfgB", tr, h)
	if k1 == k2 {
		t.Fatal("config not in key")
	}
	if CacheKey("cfgA", tr, memhier.FlatDRAM()) == k1 {
		t.Fatal("hierarchy not in key")
	}
}

func TestRunnerUsesCache(t *testing.T) {
	tr := tinyTrace(t)
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	cache, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	space := tinySpace()
	r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Cache: cache}
	first, err := r.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != space.Size() {
		t.Fatalf("cache has %d entries after sweep of %d", cache.Len(), space.Size())
	}
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}

	// Re-open and re-run: results must be identical and come from cache
	// (verified by poisoning one entry and seeing it surface).
	cache2, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, _ := space.Config(0)
	key := CacheKey(cfg.ID(), tr, r.Hierarchy)
	poisoned := &profile.Metrics{Accesses: 123456789}
	cache2.Put(key, poisoned)
	r2 := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Cache: cache2}
	second, err := r2.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Metrics.Accesses != 123456789 {
		t.Fatal("cache not consulted")
	}
	for i := 1; i < len(first); i++ {
		if first[i].Metrics.Accesses != second[i].Metrics.Accesses {
			t.Fatalf("config %d differs across cached runs", i)
		}
	}
}

func TestResultsCacheStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	m1 := &profile.Metrics{Accesses: 1}
	c.Put("k1", m1)
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	if _, ok := c.Get("k2"); ok {
		t.Fatal("phantom k2")
	}
	c.Put("k1", m1)                            // same metrics pointer: not stale
	c.Put("k1", &profile.Metrics{Accesses: 2}) // superseded: stale
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stale != 1 || s.Loaded != 0 {
		t.Fatalf("stats %+v", s)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if s := re.Stats(); s.Loaded != 1 || s.Stale != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("reloaded stats %+v", s)
	}
}

// TestResultsCacheStaleVersionDropped pins the version gate: entries
// recorded under a different schema version are dropped at load, counted
// as stale, and purged from disk by the next Save. Version-less entries
// (seed-era caches) stay valid.
func TestResultsCacheStaleVersionDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	lines := `{"v":99,"key":"old","metrics":{"Accesses":1}}
{"key":"legacy","metrics":{"Accesses":2}}
{"v":1,"key":"current","metrics":{"Accesses":3}}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("kept %d entries, want 2", c.Len())
	}
	if s := c.Stats(); s.Stale != 1 || s.Loaded != 2 {
		t.Fatalf("stats %+v", s)
	}
	if _, ok := c.Get("old"); ok {
		t.Fatal("stale entry served")
	}
	if _, ok := c.Get("legacy"); !ok {
		t.Fatal("legacy version-less entry dropped")
	}
	// Dropping stale entries marks the cache dirty: Save rewrites the
	// file without them, versioning every surviving entry.
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("rewritten cache has %d entries", re.Len())
	}
	if s := re.Stats(); s.Stale != 0 {
		t.Fatalf("stale entry survived the rewrite: %+v", s)
	}
}

// TestResultsCacheConcurrentAccounting hammers Get/Put from many
// goroutines — the -race guard for the accounting counters.
func TestResultsCacheConcurrentAccounting(t *testing.T) {
	c, err := OpenResultsCache(filepath.Join(t.TempDir(), "cache.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := &profile.Metrics{Accesses: uint64(w)}
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				c.Get(key) // always a miss: keys are per-goroutine unique
				c.Put(key, m)
				c.Get(key) // always a hit
				_ = c.Stats()
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits != workers*each || s.Misses != workers*each || s.Stale != 0 {
		t.Fatalf("stats %+v", s)
	}
	if c.Len() != workers*each {
		t.Fatalf("entries %d", c.Len())
	}
}
