package core

import (
	"os"
	"path/filepath"
	"testing"

	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
)

func TestResultsCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("fresh cache not empty")
	}
	m := &profile.Metrics{Accesses: 42, FootprintBytes: 1000, EnergyNJ: 1.5, Cycles: 99}
	c.Put("k1", m)
	c.Put("k2", &profile.Metrics{Accesses: 7})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d entries", re.Len())
	}
	got, ok := re.Get("k1")
	if !ok || got.Accesses != 42 || got.EnergyNJ != 1.5 {
		t.Fatalf("entry k1: %+v %v", got, ok)
	}
	if _, ok := re.Get("nope"); ok {
		t.Fatal("phantom entry")
	}
}

func TestResultsCacheSaveNoopWhenClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, _ := OpenResultsCache(path)
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("clean save created a file")
	}
}

func TestResultsCacheRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	os.WriteFile(path, []byte("not json\n"), 0o644)
	if _, err := OpenResultsCache(path); err == nil {
		t.Fatal("corrupt cache accepted")
	}
	os.WriteFile(path, []byte(`{"key":"","metrics":null}`+"\n"), 0o644)
	if _, err := OpenResultsCache(path); err == nil {
		t.Fatal("incomplete entry accepted")
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	tr := tinyTrace(t)
	h := memhier.EmbeddedSoC()
	k1 := CacheKey("cfgA", tr, h)
	k2 := CacheKey("cfgB", tr, h)
	if k1 == k2 {
		t.Fatal("config not in key")
	}
	if CacheKey("cfgA", tr, memhier.FlatDRAM()) == k1 {
		t.Fatal("hierarchy not in key")
	}
}

func TestRunnerUsesCache(t *testing.T) {
	tr := tinyTrace(t)
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	cache, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	space := tinySpace()
	r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Cache: cache}
	first, err := r.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != space.Size() {
		t.Fatalf("cache has %d entries after sweep of %d", cache.Len(), space.Size())
	}
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}

	// Re-open and re-run: results must be identical and come from cache
	// (verified by poisoning one entry and seeing it surface).
	cache2, err := OpenResultsCache(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, _ := space.Config(0)
	key := CacheKey(cfg.ID(), tr, r.Hierarchy)
	poisoned := &profile.Metrics{Accesses: 123456789}
	cache2.Put(key, poisoned)
	r2 := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Cache: cache2}
	second, err := r2.Explore(space)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Metrics.Accesses != 123456789 {
		t.Fatal("cache not consulted")
	}
	for i := 1; i < len(first); i++ {
		if first[i].Metrics.Accesses != second[i].Metrics.Accesses {
			t.Fatalf("config %d differs across cached runs", i)
		}
	}
}
