package core

import (
	"sync"
	"testing"

	"dmexplore/internal/alloc"
	"dmexplore/internal/memhier"
	"dmexplore/internal/profile"
	"dmexplore/internal/trace"
	"dmexplore/internal/workload"
)

// tinySpace returns a 2x3 space over the general pool's fit and coalesce.
func tinySpace() *Space {
	base := alloc.Config{General: baseGeneral()}
	return &Space{
		Name: "tiny",
		Base: base,
		Axes: []Axis{
			{Name: "fit", Options: []Option{
				{Label: "first", Apply: func(c *alloc.Config) { c.General.Fit = alloc.FirstFit }},
				{Label: "best", Apply: func(c *alloc.Config) { c.General.Fit = alloc.BestFit }},
			}},
			{Name: "coalesce", Options: []Option{
				{Label: "never", Apply: func(c *alloc.Config) { c.General.Coalesce = alloc.CoalesceNever }},
				{Label: "immediate", Apply: func(c *alloc.Config) { c.General.Coalesce = alloc.CoalesceImmediate }},
				{Label: "deferred", Apply: func(c *alloc.Config) {
					c.General.Coalesce = alloc.CoalesceDeferred
					c.General.CoalesceEvery = 16
				}},
			}},
		},
	}
}

func tinyTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := workload.DefaultSyntheticParams()
	p.Ops = 1500
	tr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSpaceSizeAndDecode(t *testing.T) {
	s := tinySpace()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 6 {
		t.Fatalf("size %d", s.Size())
	}
	seen := make(map[string]bool)
	for i := 0; i < s.Size(); i++ {
		cfg, labels, err := s.Config(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(labels) != 2 {
			t.Fatalf("labels %v", labels)
		}
		if seen[cfg.ID()] {
			t.Fatalf("config %d duplicates ID %s", i, cfg.ID())
		}
		seen[cfg.ID()] = true
	}
	if _, _, err := s.Config(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, _, err := s.Config(6); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestSpaceBaseNotMutated(t *testing.T) {
	s := &Space{
		Name: "mut",
		Base: alloc.Config{General: baseGeneral()},
		Axes: []Axis{{Name: "pools", Options: []Option{
			{Label: "add", Apply: func(c *alloc.Config) {
				c.Fixed = append(c.Fixed, dedicatedPool(74, memhier.LayerDRAM, 8, 0))
			}},
		}}},
	}
	for i := 0; i < 3; i++ {
		cfg, _, err := s.Config(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg.Fixed) != 1 {
			t.Fatalf("iteration %d: %d fixed pools (base leaked)", i, len(cfg.Fixed))
		}
	}
	if len(s.Base.Fixed) != 0 {
		t.Fatal("base config mutated")
	}
}

func TestSpaceValidateErrors(t *testing.T) {
	bad := []*Space{
		{Name: "noaxes"},
		{Name: "emptyaxis", Axes: []Axis{{Name: "a"}}},
		{Name: "dup", Axes: []Axis{{Name: "a", Options: []Option{
			{Label: "x", Apply: func(*alloc.Config) {}},
			{Label: "x", Apply: func(*alloc.Config) {}},
		}}}},
		{Name: "nilapply", Axes: []Axis{{Name: "a", Options: []Option{{Label: "x"}}}}},
		{Name: "nolabel", Axes: []Axis{{Name: "a", Options: []Option{{Apply: func(*alloc.Config) {}}}}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("space %q accepted", s.Name)
		}
	}
}

func TestExploreExhaustive(t *testing.T) {
	r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: 4}
	results, err := r.Explore(tinySpace())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results %d", len(results))
	}
	for i, res := range results {
		if res.Index != i {
			t.Fatalf("result %d has index %d", i, res.Index)
		}
		if res.Metrics == nil || res.Err != nil {
			t.Fatalf("result %d: %v", i, res.Err)
		}
		if res.Metrics.Accesses == 0 {
			t.Fatalf("result %d empty", i)
		}
	}
}

func TestExploreDeterministicAcrossWorkerCounts(t *testing.T) {
	tr := tinyTrace(t)
	run := func(workers int) []Result {
		r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tr, Workers: workers}
		results, err := r.Explore(tinySpace())
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	seq := run(1)
	par := run(8)
	for i := range seq {
		if seq[i].Metrics.Accesses != par[i].Metrics.Accesses ||
			seq[i].Metrics.FootprintBytes != par[i].Metrics.FootprintBytes {
			t.Fatalf("config %d differs across worker counts", i)
		}
	}
}

func TestExploreProgress(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	last := 0
	r := &Runner{
		Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: 2,
		Progress: func(done, total int) {
			mu.Lock()
			calls++
			if done > last {
				last = done
			}
			if total != 6 {
				t.Errorf("total %d", total)
			}
			mu.Unlock()
		},
	}
	if _, err := r.Explore(tinySpace()); err != nil {
		t.Fatal(err)
	}
	if calls != 6 || last != 6 {
		t.Fatalf("progress calls %d last %d", calls, last)
	}
}

func TestSample(t *testing.T) {
	r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t)}
	results, err := r.Sample(tinySpace(), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("sampled %d", len(results))
	}
	seen := make(map[int]bool)
	for _, res := range results {
		if seen[res.Index] {
			t.Fatal("duplicate sample")
		}
		seen[res.Index] = true
	}
	// Sampling more than the space size degrades to exhaustive.
	all, err := r.Sample(tinySpace(), 100, 42)
	if err != nil || len(all) != 6 {
		t.Fatalf("oversample: %d %v", len(all), err)
	}
	if _, err := r.Sample(tinySpace(), 0, 1); err == nil {
		t.Fatal("zero sample accepted")
	}
}

func TestRunnerValidation(t *testing.T) {
	r := &Runner{}
	if _, err := r.Explore(tinySpace()); err == nil {
		t.Fatal("runner without trace/hierarchy accepted")
	}
}

func TestRangeAndPareto(t *testing.T) {
	r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t)}
	results, err := r.Explore(tinySpace())
	if err != nil {
		t.Fatal(err)
	}
	feasible := Feasible(results)
	if len(feasible) == 0 {
		t.Fatal("no feasible configurations")
	}
	orange, err := Range(feasible, profile.ObjAccesses)
	if err != nil {
		t.Fatal(err)
	}
	if orange.Min <= 0 || orange.Max < orange.Min || orange.Factor < 1 {
		t.Fatalf("range %+v", orange)
	}
	if orange.BestIndex < 0 || orange.WorstIndex < 0 {
		t.Fatalf("range indices %+v", orange)
	}

	front, points, err := ParetoSet(feasible, []string{profile.ObjAccesses, profile.ObjFootprint})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 || len(front) > len(feasible) {
		t.Fatalf("front size %d", len(front))
	}
	if len(points) < len(front) {
		t.Fatalf("points %d < front %d", len(points), len(front))
	}
	// Front results sorted by accesses ascending.
	for i := 1; i < len(front); i++ {
		if front[i].Metrics.Accesses < front[i-1].Metrics.Accesses {
			t.Fatal("front not sorted")
		}
	}
	// No front member dominated by any feasible result.
	for _, f := range front {
		for _, r := range feasible {
			if r.Metrics.Accesses < f.Metrics.Accesses &&
				r.Metrics.FootprintBytes < f.Metrics.FootprintBytes {
				t.Fatalf("front config %d dominated by %d", f.Index, r.Index)
			}
		}
	}

	if _, _, err := ParetoSet(feasible, []string{profile.ObjAccesses}); err == nil {
		t.Fatal("single-objective pareto accepted")
	}
	if _, _, err := ParetoSet(feasible, []string{"nope", "nah"}); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestReductionPercent(t *testing.T) {
	if got := ReductionPercent(4.1); got < 75 || got > 76 {
		t.Fatalf("4.1x -> %v%%", got)
	}
	if got := ReductionPercent(2.9); got < 65 || got > 66 {
		t.Fatalf("2.9x -> %v%%", got)
	}
	if ReductionPercent(1) != 0 {
		t.Fatal("factor 1 not 0%")
	}
	if ReductionPercent(0) != 0 {
		t.Fatal("factor 0 not 0%")
	}
}

func TestCaseStudySpacesValid(t *testing.T) {
	for _, s := range []*Space{EasyportSpace(), FullEasyportSpace(), VTCSpace()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		// Every configuration must validate against the SoC hierarchy.
		h := memhier.EmbeddedSoC()
		step := s.Size()/97 + 1 // spot-check a spread of indices
		for i := 0; i < s.Size(); i += step {
			cfg, _, err := s.Config(i)
			if err != nil {
				t.Fatalf("%s[%d]: %v", s.Name, i, err)
			}
			if err := cfg.Validate(h); err != nil {
				t.Fatalf("%s[%d]: %v", s.Name, i, err)
			}
		}
	}
}

func TestFullSpaceCardinality(t *testing.T) {
	if n := FullEasyportSpace().Size(); n < 10000 {
		t.Fatalf("full space %d configurations, want tens of thousands", n)
	}
	if n := EasyportSpace().Size(); n < 100 || n > 2000 {
		t.Fatalf("narrow space %d configurations", n)
	}
}

func TestExploreMemoizesDuplicateConfigs(t *testing.T) {
	// An axis that is a no-op under another axis's value produces
	// duplicate configurations; they must share one simulation result.
	s := &Space{
		Name: "dup",
		Base: alloc.Config{General: baseGeneral()},
		Axes: []Axis{
			{Name: "pools", Options: []Option{
				{Label: "none", Apply: func(c *alloc.Config) {}},
			}},
			{Name: "reclaim", Options: []Option{ // no-op without pools
				{Label: "keep", Apply: func(c *alloc.Config) {}},
				{Label: "reclaim", Apply: func(c *alloc.Config) {
					for i := range c.Fixed {
						c.Fixed[i].Reclaim = true
					}
				}},
			}},
		},
	}
	r := &Runner{Hierarchy: memhier.EmbeddedSoC(), Trace: tinyTrace(t), Workers: 1}
	results, err := r.Explore(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	if results[0].Metrics != results[1].Metrics {
		t.Fatal("duplicate configurations did not share one simulation")
	}
}
