package core

import (
	"fmt"
	"sync"

	"dmexplore/internal/telemetry"
)

// evalBatcher is the deduplicating evaluation layer under the guided
// search strategies. A strategy exposes its natural batch width — an
// NSGA-II offspring generation, a hill-climb neighbourhood, an annealing
// speculation window — and the batcher evaluates only the indices it has
// never seen, in one wave across the session's full worker pool.
//
// The batcher is safe for concurrent use: overlapping getBatch calls
// dedupe against both completed results and in-flight indices, so a
// configuration is profiled at most once per search no matter how the
// caller fans out.
type evalBatcher struct {
	sess *EvalSession

	// predict and onResult, when set, wire a surrogate into the batcher:
	// predict supplies the per-objective forecast journaled with every
	// fresh evaluation, onResult receives every fresh successful result
	// in request order (the surrogate's online-training hook). Both run
	// on the getBatch caller's goroutine with no lock held, so a batcher
	// carrying them must be driven from a single coordinating goroutine
	// — which is how every guided strategy drives it.
	predict  func(idx int) map[string]float64
	onResult func(Result)

	// strategy names the owning search in every origin the batcher
	// emits; it is set once, right after construction, before any
	// evaluation.
	strategy string

	mu       sync.Mutex
	results  map[int]Result
	inflight map[int]chan struct{} // closed when the owning batch lands
	order    []int                 // successful first evaluations, in request order

	// Lineage state: pending holds the provenance strategies tagged onto
	// candidates that have not been evaluated yet (first tag wins, so a
	// deduplicated candidate keeps the operator that bred it first);
	// wave counts fresh-evaluation waves, stamping every origin with the
	// generation it was profiled in.
	pending map[int]*telemetry.Origin
	wave    int
}

func newEvalBatcher(sess *EvalSession) *evalBatcher {
	return &evalBatcher{
		sess:     sess,
		results:  make(map[int]Result),
		inflight: make(map[int]chan struct{}),
		pending:  make(map[int]*telemetry.Origin),
	}
}

// tag records the search provenance of a candidate before evaluation:
// the operator that produced it and the configuration(s) it derives
// from. The first tag for an index wins — when two operators breed the
// same genome, the journal attributes it to the first — and tags on
// already-profiled indices are dropped (their provenance is already
// journaled).
func (b *evalBatcher) tag(idx int, op string, parents ...int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, done := b.results[idx]; done {
		return
	}
	o := b.pending[idx]
	if o == nil {
		o = &telemetry.Origin{}
		b.pending[idx] = o
	}
	if o.Op == "" {
		o.Op = op
		if len(parents) > 0 {
			o.Parents = append([]int(nil), parents...)
		}
	}
}

// noteRank annotates a pending candidate with its 1-based position in
// the latest surrogate ranking; the last ranking before evaluation is
// the one journaled.
func (b *evalBatcher) noteRank(idx, rank int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, done := b.results[idx]; done {
		return
	}
	o := b.pending[idx]
	if o == nil {
		o = &telemetry.Origin{}
		b.pending[idx] = o
	}
	o.SurrogateRank = rank
}

// noteAdmit annotates how a surrogate screen admitted a pending
// candidate ("score" or "explore").
func (b *evalBatcher) noteAdmit(idx int, admit string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, done := b.results[idx]; done {
		return
	}
	o := b.pending[idx]
	if o == nil {
		o = &telemetry.Origin{}
		b.pending[idx] = o
	}
	o.Admit = admit
}

// getBatch returns a result per requested index, in request order. Indices
// already profiled are served from memory; indices being profiled by a
// concurrent getBatch are waited on; the remainder is evaluated in one
// session wave. The error is the first per-result failure in request
// order, if any.
func (b *evalBatcher) getBatch(indices []int) ([]Result, error) {
	if len(indices) == 0 {
		return nil, nil
	}
	// Claim: split the request into cached / someone-else's / ours.
	b.mu.Lock()
	var todo []int
	claimed := make(map[int]bool)
	var waits []chan struct{}
	waitSeen := make(map[chan struct{}]bool)
	mine := make(chan struct{})
	for _, idx := range indices {
		if _, ok := b.results[idx]; ok || claimed[idx] {
			continue
		}
		if ch, ok := b.inflight[idx]; ok {
			if !waitSeen[ch] {
				waitSeen[ch] = true
				waits = append(waits, ch)
			}
			continue
		}
		claimed[idx] = true
		b.inflight[idx] = mine
		todo = append(todo, idx)
	}
	// Consume the claimed candidates' pending provenance, stamping the
	// strategy and the fresh-evaluation wave number. Untagged indices
	// (reference probes, test-driven batches) fall back to a bare
	// "probe" origin so every journaled evaluation has one.
	var origins []*telemetry.Origin
	if len(todo) > 0 {
		b.wave++
		origins = make([]*telemetry.Origin, len(todo))
		for i, idx := range todo {
			o := b.pending[idx]
			if o == nil {
				o = &telemetry.Origin{}
			}
			delete(b.pending, idx)
			if o.Op == "" {
				o.Op = "probe"
			}
			o.Strategy = b.strategy
			o.Wave = b.wave
			origins[i] = o
		}
	}
	b.mu.Unlock()

	if len(todo) > 0 {
		var preds []map[string]float64
		if b.predict != nil {
			preds = make([]map[string]float64, len(todo))
			for i, idx := range todo {
				preds[i] = b.predict(idx)
			}
		}
		res, err := b.sess.EvalAnnotated(todo, preds, origins)
		b.mu.Lock()
		for i, idx := range todo {
			if res != nil {
				b.results[idx] = res[i]
				if res[i].Err == nil {
					b.order = append(b.order, idx)
				}
			} else {
				// Eval failed before producing results (closed session):
				// record the failure so waiters see a terminal state.
				b.results[idx] = Result{Index: idx, Err: err}
			}
			delete(b.inflight, idx)
		}
		b.mu.Unlock()
		close(mine)
		if b.onResult != nil && res != nil {
			for _, r := range res {
				if r.Err == nil {
					b.onResult(r)
				}
			}
		}
	}
	for _, ch := range waits {
		<-ch
	}

	out := make([]Result, len(indices))
	b.mu.Lock()
	for i, idx := range indices {
		out[i] = b.results[idx]
	}
	b.mu.Unlock()
	for _, res := range out {
		if res.Err != nil {
			return out, fmt.Errorf("core: %w", res.Err)
		}
	}
	return out, nil
}

// getOne is the single-index convenience over getBatch.
func (b *evalBatcher) getOne(idx int) (Result, error) {
	res, err := b.getBatch([]int{idx})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// limit returns the longest prefix of indices whose evaluation would
// profile at most maxNew previously unseen configurations. Strategies use
// it to cap a batch at the remaining simulation budget without losing the
// already-profiled (free) members of the prefix.
func (b *evalBatcher) limit(indices []int, maxNew int) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	newSeen := make(map[int]bool)
	for i, idx := range indices {
		if _, ok := b.results[idx]; ok || newSeen[idx] {
			continue
		}
		if len(newSeen) == maxNew {
			return indices[:i]
		}
		newSeen[idx] = true
	}
	return indices
}

// lookup returns the recorded result for idx, if any.
func (b *evalBatcher) lookup(idx int) (Result, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	res, ok := b.results[idx]
	return res, ok
}

// has reports whether idx has already been profiled (or failed).
func (b *evalBatcher) has(idx int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.results[idx]
	return ok
}

// len returns the number of distinct configurations profiled so far —
// the quantity search budgets count.
func (b *evalBatcher) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.results)
}

// all returns every successfully profiled result in first-evaluation
// order.
func (b *evalBatcher) all() []Result {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Result, 0, len(b.order))
	for _, idx := range b.order {
		out = append(out, b.results[idx])
	}
	return out
}
